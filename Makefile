# Convenience targets; everything is plain dune underneath.

.PHONY: all check build test bench perf perf-smoke trace-smoke chaos-smoke clean

all: build

build:
	dune build

test:
	dune runtest

# The tier-1 gate: build everything, run every test suite.
check:
	dune build
	dune runtest

bench:
	dune exec bench/main.exe

# Perf regression harness: engine steps/sec + domain-parallel sweep
# speedup, written to BENCH_sim_perf.json.
perf:
	dune exec bench/perf.exe

# Reduced-size variant for CI: same scenarios, fewer repeats/seeds.
perf-smoke:
	dune exec bench/perf.exe -- --fast

# Run the shootdown scenario with tracing, export Chrome trace-event
# JSON, and verify it parses and contains the shootdown events (machsim
# re-reads and validates its own output; the greps double-check from the
# outside).
trace-smoke:
	dune exec bin/machsim.exe -- trace shootdown --cpus 4 --out /tmp/machsim-trace.json \
		| grep "trace JSON ok"
	grep -q "Tlb_shootdown_start" /tmp/machsim-trace.json
	grep -q "Tlb_shootdown_done" /tmp/machsim-trace.json
	@echo "trace-smoke passed"

# Fault-injection smoke: reproduce and detect the section 7 interrupt
# deadlock (waits-for cycle) and the section 6 lost wakeup (orphaned
# waiter) under seeded injection, then regenerate the E13 detection
# table.  The greps verify the detector actually named each hazard.
chaos-smoke:
	dune exec bin/machsim.exe -- chaos --seeds 10 | tee /tmp/machsim-chaos.out
	grep -q "waits-for cycle" /tmp/machsim-chaos.out
	grep -q "never arrived" /tmp/machsim-chaos.out
	dune exec bench/main.exe -- E13
	test -f BENCH_chaos.json
	@echo "chaos-smoke passed"

clean:
	dune clean
