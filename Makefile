# Convenience targets; everything is plain dune underneath.

.PHONY: all check build test bench perf perf-smoke perf-gate perf-gate-selftest perf-reference trace-smoke report-smoke chaos-smoke mc-smoke vm-smoke cache-smoke rpc-smoke smoke-all clean

all: build

build:
	dune build

test:
	dune runtest

# The tier-1 gate: build everything, run every test suite.
check:
	dune build
	dune runtest

bench:
	dune exec bench/main.exe

# Perf regression harness: engine steps/sec + domain-parallel sweep
# speedup, written to BENCH_sim_perf.json.
perf:
	dune exec bench/perf.exe

# Reduced-size variant for CI: same scenarios, fewer repeats/seeds.
perf-smoke:
	dune exec bench/perf.exe -- --fast

# Perf-regression gate: re-measure engine throughput (engine-only, fast)
# and fail if engine.vs_baseline drops below 0.9x the committed
# reference (bench/perf_reference.json).
# Full repeats even in CI: the gated statistic is best-of-N steps/sec
# (noise only slows a run), and --engine-only keeps 10 repeats ~2s —
# best-of-3 under --fast was inside the noise floor of the 3% check.
perf-gate:
	dune exec bench/perf.exe -- --engine-only
	dune exec bench/perf_gate.exe

# Prove the gate trips: inject a 2x slowdown into the measured values and
# require exit code 1 (a gate that cannot fail gates nothing).  Each
# deterministic row (vm, cache, rpc) is additionally injected on its own
# so a row the gate silently stopped reading cannot pass the selftest.
perf-gate-selftest:
	dune exec bench/perf_gate.exe -- --inject-slowdown; test $$? -eq 1
	dune exec bench/perf_gate.exe -- --inject-row vm; test $$? -eq 1
	dune exec bench/perf_gate.exe -- --inject-row cache; test $$? -eq 1
	dune exec bench/perf_gate.exe -- --inject-row rpc; test $$? -eq 1
	@echo "perf-gate-selftest passed (gate trips on injected 2x slowdown, every row)"

# Regenerate the committed gate reference after an INTENTIONAL perf
# change: run the full engine measurement, then edit
# bench/perf_reference.json's engine.vs_baseline to the new value
# (rounded down to absorb runner jitter).
perf-reference:
	dune exec bench/perf.exe -- --engine-only
	@echo "update bench/perf_reference.json from BENCH_sim_perf.json's engine.vs_baseline"

# Run the shootdown scenario with tracing, export Chrome trace-event
# JSON, and verify it parses and contains the shootdown events (machsim
# re-reads and validates its own output; the greps double-check from the
# outside).
trace-smoke:
	dune exec bin/machsim.exe -- trace shootdown --cpus 4 --out /tmp/machsim-trace.json \
		| grep "trace JSON ok"
	grep -q "Tlb_shootdown_start" /tmp/machsim-trace.json
	grep -q "Tlb_shootdown_done" /tmp/machsim-trace.json
	grep -q "Span_close" /tmp/machsim-trace.json
	grep -q '"span:' /tmp/machsim-trace.json
	@echo "trace-smoke passed"

# Causal-observability smoke: the report subcommand must attribute the
# contention workload's critical path to the contended lock class and
# print the blocked-by table, and a chaos-detected hang must carry the
# flight-recorder dump (closed-span tails + each thread's still-open
# spans — the section 7 cycle's evidence).
report-smoke:
	dune exec bin/machsim.exe -- report contention --cpus 16 \
		| tee /tmp/machsim-report.out
	grep -q "blocked-by edges" /tmp/machsim-report.out
	grep -q "dominant: contended" /tmp/machsim-report.out
	grep -q "flight recorder" /tmp/machsim-report.out
	dune exec bin/machsim.exe -- chaos --seeds 5 > /tmp/machsim-chaos-flight.out
	grep -q "open spans at the hang" /tmp/machsim-chaos-flight.out
	grep -q "lock:the-lock" /tmp/machsim-chaos-flight.out
	@echo "report-smoke passed"

# Fault-injection smoke: reproduce and detect the section 7 interrupt
# deadlock (waits-for cycle) and the section 6 lost wakeup (orphaned
# waiter) under seeded injection, then regenerate the E13 detection
# table.  The greps verify the detector actually named each hazard.
chaos-smoke:
	dune exec bin/machsim.exe -- chaos --seeds 10 | tee /tmp/machsim-chaos.out
	grep -q "waits-for cycle" /tmp/machsim-chaos.out
	grep -q "never arrived" /tmp/machsim-chaos.out
	grep -q "lost handoff" /tmp/machsim-chaos.out
	grep -q "scache lost writer handoff" /tmp/machsim-chaos.out
	dune exec bench/main.exe -- E13
	test -f BENCH_chaos.json
	@echo "chaos-smoke passed"

# Model-checking smoke (<60s on one core): exhaustively verify the
# section 7 same-spl rule, find the section 7 deadlocks WITHOUT fault
# injection (two-cpu handler-vs-holder and the three-processor barrier
# cycle), then regenerate the E14 exploration table.  Exit codes: mc
# returns 0 verified / 1 failure found / 2 incomplete.
mc-smoke:
	dune exec bin/machsim.exe -- mc same-spl --no-baseline | grep -q "VERIFIED"
	dune exec bin/machsim.exe -- mc same-spl-buggy --no-baseline > /tmp/machsim-mc.out; \
		test $$? -eq 1
	grep -q "0 preemption" /tmp/machsim-mc.out
	dune exec bin/machsim.exe -- mc interrupt-deadlock --cpus 3 --no-baseline \
		| grep -q "waits-for cycle"
	dune exec bench/main.exe -- E14
	test -f BENCH_mc.json
	@echo "mc-smoke passed"

# Range-lock smoke (<60s): model-check the 2-cpu range matrix (an
# overlapping pair serializes on every schedule, a disjoint pair
# completes on every schedule), prove the ABBA deadlock report names
# the exact ranges, then regenerate the E16 storm sweep.
vm-smoke:
	dune exec bin/machsim.exe -- mc range-overlap --cpus 2 --no-baseline | grep -q "VERIFIED"
	dune exec bin/machsim.exe -- mc range-disjoint --cpus 2 --no-baseline | grep -q "VERIFIED"
	dune exec bin/machsim.exe -- report range-deadlock | grep -q "range lock abba.range"
	dune exec bench/main.exe -- E16
	test -f BENCH_vm.json
	@echo "vm-smoke passed"

# Page-cache smoke (<90s): model-check the scache handoff matrix — the
# 2-cpu cells (reader-vs-writer and writer-vs-writer serialize on every
# schedule, two readers overlap on some schedule) plus the 3-cpu
# two-readers-vs-one-writer cell — reproduce the lost writer handoff
# under drop-handoff injection, then regenerate the E19 read-mostly
# lookup sweep.
cache-smoke:
	dune exec bin/machsim.exe -- mc scache-rw --cpus 2 --no-baseline | grep -q "VERIFIED"
	dune exec bin/machsim.exe -- mc scache-ww --cpus 2 --no-baseline | grep -q "VERIFIED"
	dune exec bin/machsim.exe -- mc scache-rr --cpus 2 --no-baseline | grep -q "VERIFIED"
	dune exec bin/machsim.exe -- mc scache-rrw --cpus 3 --no-baseline | grep -q "VERIFIED"
	dune exec bin/machsim.exe -- chaos --seeds 10 | grep -q "scache lost writer handoff"
	dune exec bench/main.exe -- E19
	test -f BENCH_cache.json
	@echo "cache-smoke passed"

# RPC-serving smoke (<60s): the E20 smoke variant (4 cpus, all four
# configs + a drain leg) must sustain a nonzero RPCs/sec, record zero
# refcount panics, and drain cleanly on shutdown under load.
rpc-smoke:
	dune exec bench/main.exe -- E20-smoke | tee /tmp/machsim-rpc.out
	grep -qE "sustained: [0-9]+ RPCs in [0-9]+ cycles = [1-9][0-9]* RPCs/sec" /tmp/machsim-rpc.out
	grep -q "refcount panics: 0" /tmp/machsim-rpc.out
	grep -q "shutdown drain: clean" /tmp/machsim-rpc.out
	test -f BENCH_rpc.json
	@echo "rpc-smoke passed"

# Every *-smoke target, so a local `make smoke-all` runs exactly what CI
# runs.  Each smoke's log goes to /tmp/smoke-<target>.log; a pass/fail
# table is printed and, when $GITHUB_STEP_SUMMARY is set (CI), appended
# to the job's step summary.  Exits nonzero if any smoke failed.
SMOKE_TARGETS = trace-smoke report-smoke chaos-smoke mc-smoke vm-smoke cache-smoke rpc-smoke perf-smoke

smoke-all:
	@status=0; summary=/tmp/smoke-summary.md; \
	printf "| smoke | result |\n|---|---|\n" > $$summary; \
	for t in $(SMOKE_TARGETS); do \
		if $(MAKE) --no-print-directory $$t > /tmp/smoke-$$t.log 2>&1; \
		then r=pass; else r=FAIL; status=1; fi; \
		printf "%-14s %s\n" "$$t" "$$r"; \
		printf "| %s | %s |\n" "$$t" "$$r" >> $$summary; \
		if [ "$$r" = FAIL ]; then \
			echo "--- $$t log tail ---"; tail -40 /tmp/smoke-$$t.log; \
		fi; \
	done; \
	if [ -n "$$GITHUB_STEP_SUMMARY" ]; then \
		{ printf "### Smoke results\n\n"; cat $$summary; printf "\n"; } \
			>> "$$GITHUB_STEP_SUMMARY"; \
	fi; \
	test $$status -eq 0
	@echo "smoke-all passed"

clean:
	dune clean
