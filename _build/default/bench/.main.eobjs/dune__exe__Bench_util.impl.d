bench/bench_util.ml: Analyze Bechamel Benchmark Instance List Mach_sim Measure Printf String Test Time Toolkit
