bench/main.ml: Array Bechamel Bench_util List Mach_core Mach_hw Mach_kern Mach_kernel Mach_ksync Mach_sim Mach_vm Option Printf Staged String Sys Test
