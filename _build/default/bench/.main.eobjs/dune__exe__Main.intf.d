bench/main.mli:
