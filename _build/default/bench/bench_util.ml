(* Shared infrastructure for the experiment harness: table printing, sim
   runs with fixed configurations, and a thin Bechamel wrapper for native
   per-operation costs. *)

module Engine = Mach_sim.Sim_engine
module Config = Mach_sim.Sim_config

let printf = Printf.printf

let section ~id ~title ~claim =
  printf "\n%s\n" (String.make 78 '=');
  printf "%s: %s\n" id title;
  printf "paper claim: %s\n" claim;
  printf "%s\n" (String.make 78 '-')

let table ~header rows =
  let widths =
    List.fold_left
      (fun acc row ->
        List.map2 (fun w cell -> max w (String.length cell)) acc row)
      (List.map String.length header)
      rows
  in
  let print_row row =
    List.iter2 (fun w cell -> printf "%-*s  " w cell) widths row;
    printf "\n"
  in
  print_row header;
  print_row (List.map (fun w -> String.make w '-') widths);
  List.iter print_row rows

(* Run a workload on the simulated machine with the bench configuration
   and return the stats. *)
let sim_run ?(cpus = 8) ?(seed = 3) f =
  let cfg = { (Config.bench ~cpus ()) with Config.seed } in
  Engine.run ~cfg f

let f1 x = Printf.sprintf "%.1f" x
let f2 x = Printf.sprintf "%.2f" x
let i = string_of_int

(* ------------------------------------------------------------------ *)
(* Bechamel: native per-operation costs                                 *)
(* ------------------------------------------------------------------ *)

(* Returns (name, ns/run) for each test. *)
let bechamel_run tests =
  let open Bechamel in
  let open Toolkit in
  let instance = Instance.monotonic_clock in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.25) ~kde:None ()
  in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  List.map
    (fun test ->
      let results =
        List.concat_map
          (fun t ->
            let raw = Benchmark.run cfg [ instance ] t in
            let est = Analyze.one ols instance raw in
            match Analyze.OLS.estimates est with
            | Some [ ns ] -> [ (Test.Elt.name t, ns) ]
            | _ -> [ (Test.Elt.name t, nan) ])
          (Test.elements test)
      in
      (Test.name test, results))
    tests
