(* machsim: command-line driver for the simulated Mach multiprocessor.

   Subcommands:
     run       -- run a named scenario once and print the run statistics
     explore   -- run a scenario across many schedule seeds, tally outcomes
     trace     -- run a scenario with event tracing and dump the trace *)

module Engine = Mach_sim.Sim_engine
module Config = Mach_sim.Sim_config
module Explore = Mach_sim.Sim_explore
module Trace = Mach_sim.Sim_trace
module Scenarios = Mach_kernel.Scenarios
module Kernel = Mach_kernel.Kernel
module Vm = Mach_vm
open Cmdliner

(* ------------------------------------------------------------------ *)
(* Scenario registry                                                    *)
(* ------------------------------------------------------------------ *)

let pageable_scenario ~use_recursive () =
  let ctx = Vm.Vm_map.make_context ~pages:4 () in
  let map = Vm.Vm_map.create ctx in
  let reclaimable = Vm.Vm_map.vm_allocate map ~size:3 in
  for i = 0 to 2 do
    match Vm.Vm_fault.fault map ~va:(reclaimable + i) with
    | Ok _ -> ()
    | Error _ -> Engine.fatal "populate failed"
  done;
  let wired_va = Vm.Vm_map.vm_allocate map ~size:3 in
  let daemon = Vm.Vm_pageout.start_daemon ~victims:[ map ] in
  let wire =
    if use_recursive then Vm.Vm_pageable.wire_recursive
    else Vm.Vm_pageable.wire_rewritten
  in
  (match wire map ~va:wired_va ~pages:3 with
  | Ok () -> ()
  | Error _ -> Engine.fatal "wire failed");
  Vm.Vm_pageout.stop_daemon daemon;
  Vm.Vm_map.release map

let scenarios : (string * (string * (unit -> unit))) list =
  [
    ( "rpc",
      ( "boot the kernel; 4 clients make null RPCs to the host port",
        fun () ->
          let kernel = Kernel.start ~pages:64 () in
          Scenarios.null_rpc_workload kernel ~clients:4 ~calls_each:25;
          Kernel.shutdown kernel ) );
    ( "task-lifecycle",
      ( "create tasks over RPC, allocate+wire memory, terminate them",
        fun () ->
          let kernel = Kernel.start ~pages:128 () in
          let ports =
            List.init 4 (fun _ ->
                match Kernel.rpc_task_create kernel with
                | Ok p -> p
                | Error e -> Engine.fatal e)
          in
          List.iter
            (fun p ->
              (match Kernel.rpc_vm_allocate p ~size:8 with
              | Ok va -> (
                  match Kernel.rpc_vm_wire p ~va ~pages:4 with
                  | Ok () -> ()
                  | Error e -> Engine.fatal e)
              | Error e -> Engine.fatal e);
              (match Kernel.rpc_task_terminate p with
              | Ok () -> ()
              | Error e -> Engine.fatal e);
              Mach_ipc.Port.release p)
            ports;
          Kernel.shutdown kernel ) );
    ( "coarse",
      ( "object operations under one global kernel lock",
        fun () ->
          Scenarios.object_ops_workload Scenarios.Coarse ~objects:16
            ~workers:(Engine.cpu_count ()) ~ops_per_worker:30 ) );
    ( "fine",
      ( "object operations under per-object locks (the Mach way)",
        fun () ->
          Scenarios.object_ops_workload Scenarios.Fine ~objects:16
            ~workers:(Engine.cpu_count ()) ~ops_per_worker:30 ) );
    ( "funnel",
      ( "object operations funnelled through a master processor",
        fun () ->
          Scenarios.object_ops_workload Scenarios.Master_funnel ~objects:16
            ~workers:(Engine.cpu_count ()) ~ops_per_worker:30 ) );
    ( "interrupt-deadlock",
      ( "the section 7 three-processor barrier deadlock (buggy variant)",
        Scenarios.interrupt_barrier_scenario ~disciplined:false ) );
    ( "interrupt-disciplined",
      ( "the same scenario under the same-spl rule (never deadlocks)",
        Scenarios.interrupt_barrier_scenario ~disciplined:true ) );
    ( "wire-recursive",
      ( "vm_map_pageable with recursive locks vs pageout (section 7.1 bug)",
        pageable_scenario ~use_recursive:true ) );
    ( "wire-rewritten",
      ( "the Mach 3.0 vm_map_pageable rewrite vs pageout (deadlock-free)",
        pageable_scenario ~use_recursive:false ) );
  ]

let scenario_names = List.map fst scenarios

let lookup_scenario name =
  match List.assoc_opt name scenarios with
  | Some (_, f) -> f
  | None ->
      Printf.eprintf "unknown scenario %S; known scenarios:\n" name;
      List.iter
        (fun (n, (d, _)) -> Printf.eprintf "  %-22s %s\n" n d)
        scenarios;
      exit 2

(* ------------------------------------------------------------------ *)
(* Common options                                                       *)
(* ------------------------------------------------------------------ *)

let scenario_arg =
  let doc =
    "Scenario to run. One of: " ^ String.concat ", " scenario_names ^ "."
  in
  Arg.(required & pos 0 (some string) None & info [] ~docv:"SCENARIO" ~doc)

let cpus_arg =
  Arg.(value & opt int 4 & info [ "cpus"; "c" ] ~docv:"N" ~doc:"Virtual cpus.")

let seed_arg =
  Arg.(value & opt int 1 & info [ "seed"; "s" ] ~docv:"SEED" ~doc:"Schedule seed.")

let policy_arg =
  let parse = function
    | "random" -> Ok Config.Random_policy
    | "round-robin" -> Ok Config.Round_robin
    | "timed" -> Ok Config.Timed
    | s -> Error (`Msg (Printf.sprintf "unknown policy %S" s))
  in
  let print ppf p = Format.pp_print_string ppf (Config.policy_name p) in
  Arg.(
    value
    & opt (conv (parse, print)) Config.Timed
    & info [ "policy"; "p" ] ~docv:"POLICY"
        ~doc:"Scheduling policy: random, round-robin or timed.")

(* ------------------------------------------------------------------ *)
(* Subcommands                                                          *)
(* ------------------------------------------------------------------ *)

let run_cmd =
  let run scenario cpus seed policy =
    let cfg = { Config.default with Config.cpus; seed; policy } in
    match Engine.run_outcome ~cfg (lookup_scenario scenario) with
    | Engine.Completed stats ->
        Format.printf "completed: %a@." Engine.pp_stats stats;
        0
    | Engine.Deadlocked (kind, report) ->
        Format.printf "DEADLOCK (%s):@.%s@."
          (match kind with
          | Engine.Sleep_deadlock -> "sleep"
          | Engine.Spin_deadlock -> "spin/livelock")
          report;
        1
    | Engine.Panicked msg ->
        Format.printf "KERNEL PANIC: %s@." msg;
        1
    | Engine.Hit_step_limit ->
        Format.printf "step limit reached@.";
        1
  in
  let term = Term.(const run $ scenario_arg $ cpus_arg $ seed_arg $ policy_arg) in
  Cmd.v
    (Cmd.info "run" ~doc:"Run a scenario once and print the run statistics.")
    term

let explore_cmd =
  let seeds_arg =
    Arg.(
      value & opt int 100
      & info [ "seeds"; "n" ] ~docv:"N" ~doc:"Number of schedule seeds.")
  in
  let run scenario cpus seeds =
    let v =
      Explore.run ~cpus
        ~seeds:(List.init seeds (fun i -> i + 1))
        (lookup_scenario scenario)
    in
    Format.printf "%a@." Explore.pp_verdict v;
    (match v.Explore.failures with
    | (seed, report) :: _ ->
        Format.printf "@.first failure (seed %d):@.%s@." seed report
    | [] -> ());
    if Explore.all_completed v then 0 else 1
  in
  let term = Term.(const run $ scenario_arg $ cpus_arg $ seeds_arg) in
  Cmd.v
    (Cmd.info "explore"
       ~doc:
         "Run a scenario across many schedule seeds and tally completions, \
          deadlocks and panics.")
    term

let trace_cmd =
  let limit_arg =
    Arg.(
      value & opt int 60
      & info [ "limit"; "l" ] ~docv:"N" ~doc:"Trace lines to print (tail).")
  in
  let run scenario cpus seed limit =
    let cfg = { Config.default with Config.cpus; seed; trace = true } in
    let outcome = Engine.run_outcome ~cfg (lookup_scenario scenario) in
    let events = Engine.trace_events () in
    let total = List.length events in
    let tail =
      if total <= limit then events
      else
        List.filteri (fun idx _ -> idx >= total - limit) events
    in
    List.iter (fun e -> Format.printf "%a@." Trace.pp_event e) tail;
    Format.printf "(%d of %d events shown)@." (List.length tail) total;
    (match outcome with
    | Engine.Completed stats -> Format.printf "completed: %a@." Engine.pp_stats stats
    | Engine.Deadlocked (_, r) -> Format.printf "deadlocked:@.%s@." r
    | Engine.Panicked m -> Format.printf "panicked: %s@." m
    | Engine.Hit_step_limit -> Format.printf "step limit@.");
    0
  in
  let term = Term.(const run $ scenario_arg $ cpus_arg $ seed_arg $ limit_arg) in
  Cmd.v
    (Cmd.info "trace" ~doc:"Run a scenario with event tracing and dump the tail.")
    term

let list_cmd =
  let run () =
    List.iter (fun (n, (d, _)) -> Printf.printf "%-22s %s\n" n d) scenarios;
    0
  in
  Cmd.v (Cmd.info "list" ~doc:"List available scenarios.") Term.(const run $ const ())

let () =
  let doc = "Drive the simulated Mach multiprocessor (locking/refcount repro)." in
  let info = Cmd.info "machsim" ~version:"1.0" ~doc in
  exit (Cmd.eval' (Cmd.group info [ run_cmd; explore_cmd; trace_cmd; list_cmd ]))
