examples/deadlock_detective.ml: Format List Mach_kernel Mach_sim Mach_vm Printf
