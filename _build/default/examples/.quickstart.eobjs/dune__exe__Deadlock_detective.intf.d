examples/deadlock_detective.mli:
