examples/locking_tour.ml: Format List Mach_core Mach_ksync Mach_sim Printf
