examples/locking_tour.mli:
