examples/quickstart.ml: Format Mach_ipc Mach_kernel Mach_sim Printf
