examples/quickstart.mli:
