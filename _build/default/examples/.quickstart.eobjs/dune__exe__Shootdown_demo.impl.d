examples/shootdown_demo.ml: List Mach_sim Mach_vm Printf
