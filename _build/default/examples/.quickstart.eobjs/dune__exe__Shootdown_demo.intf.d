examples/shootdown_demo.mli:
