(* Deadlock detective: the two famous deadlocks the paper documents,
   reproduced by schedule exploration, and their fixes shown deadlock-free
   over the same schedules.

   1. Section 7: the three-processor interrupt/barrier deadlock caused by
      inconsistent interrupt protection, prevented by the same-spl rule.
   2. Section 7.1: the vm_map_pageable recursive-lock deadlock against
      the pageout path, fixed by the non-recursive rewrite.

   Run with: dune exec examples/deadlock_detective.exe *)

module Engine = Mach_sim.Sim_engine
module Explore = Mach_sim.Sim_explore
module Scenarios = Mach_kernel.Scenarios
module Vm = Mach_vm

let say fmt = Printf.printf (fmt ^^ "\n%!")

let investigate ~culprit ~fix ~buggy ~fixed =
  say "---------------------------------------------------------------";
  say "Suspect: %s" culprit;
  (match Explore.find_first_deadlock ~cpus:3 ~max_seeds:100 buggy with
  | Some (seed, report) ->
      say "Deadlock found (schedule seed %d). Machine state at detection:"
        seed;
      print_string report
  | None -> say "No deadlock found (unexpected!)");
  say "";
  say "Fix: %s" fix;
  let v = Explore.run ~cpus:3 ~seeds:(List.init 100 (fun i -> i + 1)) fixed in
  say "Fixed variant over 100 schedules: %s"
    (Format.asprintf "%a" Explore.pp_verdict v);
  say ""

let pageable_scenario ~use_recursive () =
  let ctx = Vm.Vm_map.make_context ~pages:4 () in
  let map = Vm.Vm_map.create ctx in
  let reclaimable = Vm.Vm_map.vm_allocate map ~size:3 in
  for i = 0 to 2 do
    match Vm.Vm_fault.fault map ~va:(reclaimable + i) with
    | Ok _ -> ()
    | Error _ -> Engine.fatal "populate failed"
  done;
  let wired_va = Vm.Vm_map.vm_allocate map ~size:3 in
  let daemon = Vm.Vm_pageout.start_daemon ~victims:[ map ] in
  let wire =
    if use_recursive then Vm.Vm_pageable.wire_recursive
    else Vm.Vm_pageable.wire_rewritten
  in
  (match wire map ~va:wired_va ~pages:3 with
  | Ok () -> ()
  | Error _ -> Engine.fatal "wire failed");
  Vm.Vm_pageout.stop_daemon daemon;
  Vm.Vm_map.release map

let () =
  say "DEADLOCK DETECTIVE -- reproducing the paper's war stories";
  say "";
  investigate
    ~culprit:
      "inconsistent interrupt protection around a spin lock (section 7):\n\
      \  P1 holds the lock with interrupts ENABLED, P2 spins for it with\n\
      \  interrupts disabled, P3 starts barrier synchronization at\n\
      \  interrupt level"
    ~fix:
      "acquire every lock at the same interrupt priority level\n\
      \  (and hold it at that level or higher)"
    ~buggy:(Scenarios.interrupt_barrier_scenario ~disciplined:false)
    ~fixed:(Scenarios.interrupt_barrier_scenario ~disciplined:true);
  investigate
    ~culprit:
      "vm_map_pageable holding a recursive read lock on the map while a\n\
      \  fault waits for memory, against a pageout needing the write lock\n\
      \  (section 7.1: \"difficult to cause, [but] observed in practice\")"
    ~fix:
      "the Mach 3.0 rewrite: mark entries under the write lock, release\n\
      \  the map completely, fault with no lock held, relock and revalidate"
    ~buggy:(pageable_scenario ~use_recursive:true)
    ~fixed:(pageable_scenario ~use_recursive:false);
  say "Case closed."
