(* Quickstart: boot the simulated multiprocessor, start the kernel, and
   drive it the way Mach user programs do — by sending messages to ports
   (paper, section 3).

   Run with: dune exec examples/quickstart.exe *)

module Engine = Mach_sim.Sim_engine
module Config = Mach_sim.Sim_config
module Port = Mach_ipc.Port
module Kernel = Mach_kernel.Kernel

let say fmt = Printf.printf (fmt ^^ "\n%!")

let () =
  say "Booting a 4-cpu simulated multiprocessor...";
  let cfg = { Config.default with Config.cpus = 4; seed = 42 } in
  let stats =
    Engine.run ~cfg (fun () ->
        let kernel = Kernel.start ~pages:64 () in
        say "Kernel is up; host port is %s." (Port.name (Kernel.host_port kernel));

        (* Every kernel operation below is a real RPC: request message,
           port-to-object translation with a reference, operation under
           the object's locks, reply message (section 10). *)
        say "Creating a task over RPC...";
        let task_port =
          match Kernel.rpc_task_create kernel with
          | Ok p -> p
          | Error e -> failwith ("task_create failed: " ^ e)
        in
        say "Got the new task's port: %s." (Port.name task_port);

        say "Allocating 8 pages of zero-filled memory in the task...";
        let va =
          match Kernel.rpc_vm_allocate task_port ~size:8 with
          | Ok va -> va
          | Error e -> failwith ("vm_allocate failed: " ^ e)
        in
        say "  -> region at virtual address 0x%x." va;

        say "Wiring 4 of those pages (vm_wire uses the rewritten,";
        say "non-recursive vm_map_pageable of section 7.1)...";
        (match Kernel.rpc_vm_wire task_port ~va ~pages:4 with
        | Ok () -> say "  -> wired."
        | Error e -> failwith ("vm_wire failed: " ^ e));

        say "Terminating the task (the section 10 shutdown protocol:";
        say "deactivate -> strip the port -> destroy -> release)...";
        (match Kernel.rpc_task_terminate task_port with
        | Ok () -> say "  -> terminated."
        | Error e -> failwith ("task_terminate failed: " ^ e));

        (match Kernel.rpc_vm_allocate task_port ~size:1 with
        | Error _ -> say "A later operation on the dead port fails, as it must."
        | Ok _ -> failwith "operation on a terminated task succeeded!");

        Port.release task_port;
        Kernel.shutdown kernel;
        say "Kernel shut down cleanly.")
  in
  say "";
  say "Run statistics: %s" (Format.asprintf "%a" Engine.pp_stats stats)
