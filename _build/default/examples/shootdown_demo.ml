(* TLB shootdown in action (paper, section 7): threads on several cpus
   share an address space; when one removes a mapping, every processor
   using the pmap is interrupted at splvm and rendezvouses in the barrier
   before the page table changes.

   Run with: dune exec examples/shootdown_demo.exe *)

module Engine = Mach_sim.Sim_engine
module Config = Mach_sim.Sim_config
module Vm = Mach_vm

let say fmt = Printf.printf (fmt ^^ "\n%!")

let () =
  let cpus = 6 in
  say "A %d-cpu machine; one shared address space used on every cpu." cpus;
  let cfg = { Config.default with Config.cpus = cpus; seed = 11 } in
  let stats =
    Engine.run ~cfg (fun () ->
        let ctx = Vm.Vm_map.make_context ~pages:64 () in
        let map = Vm.Vm_map.create ~name:"shared" ctx in
        let pm = Vm.Vm_map.pmap map in
        let base = Vm.Vm_map.vm_allocate map ~size:16 in

        (* Fault the pages in from the boot thread. *)
        for i = 0 to 15 do
          match Vm.Vm_fault.fault map ~va:(base + i) with
          | Ok _ -> ()
          | Error _ -> failwith "populate fault failed"
        done;
        say "16 pages resident; pmap has %d translations."
          (Vm.Pmap.resident_count pm);

        (* Readers on cpus 1..4 touch the pages, loading their TLBs. *)
        let stop = Engine.Cell.make 0 in
        let touches = Engine.Cell.make 0 in
        let readers =
          List.init 4 (fun i ->
              let cpu = i + 1 in
              Engine.spawn ~name:(Printf.sprintf "reader-cpu%d" cpu)
                ~bound:cpu (fun () ->
                  Vm.Pmap.activate pm ~cpu;
                  while Engine.Cell.get stop = 0 do
                    for j = 0 to 15 do
                      ignore (Vm.Pmap.translate pm ~va:(base + j))
                    done;
                    ignore (Engine.Cell.fetch_and_add touches 1);
                    Engine.pause ()
                  done;
                  Vm.Pmap.deactivate pm ~cpu))
        in

        (* The remover deletes half the mappings, one at a time; each
           removal shoots down the remote TLBs. *)
        let remover =
          Engine.spawn ~name:"remover" ~bound:5 (fun () ->
              (* let the readers warm their TLBs *)
              Engine.spin_hint "warmup";
              while Engine.Cell.get touches < 8 do
                Engine.pause ()
              done;
              for j = 0 to 7 do
                ignore (Vm.Pmap.remove pm ~va:(base + (2 * j)))
              done;
              Engine.Cell.set stop 1)
        in
        Engine.join remover;
        List.iter Engine.join readers;
        say "Removed 8 mappings; %d shootdowns performed so far."
          (Vm.Tlb_shootdown.shootdowns_performed ());
        say "Remaining translations: %d." (Vm.Pmap.resident_count pm);
        Vm.Vm_map.release map)
  in
  say "";
  say "Interrupts delivered: %d; makespan: %d cycles."
    stats.Engine.interrupts_delivered stats.Engine.makespan;
  say "(Barrier synchronization at interrupt level is a costly operation --";
  say " the paper actively discourages it; bench experiment E10 quantifies it.)"
