lib/core/complex_lock.ml: Atomic Event Lock_stats Machine_intf Printf Simple_lock
