lib/core/complex_lock.mli: Event Lock_stats Machine_intf Simple_lock
