lib/core/deactivate.ml:
