lib/core/deactivate.mli:
