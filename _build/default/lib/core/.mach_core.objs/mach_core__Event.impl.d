lib/core/event.ml: Array Atomic Format Hashtbl List Machine_intf Printf Simple_lock
