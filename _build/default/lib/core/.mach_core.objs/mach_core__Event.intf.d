lib/core/event.mli: Format Machine_intf Simple_lock
