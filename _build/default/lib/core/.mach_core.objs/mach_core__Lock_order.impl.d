lib/core/lock_order.ml: Atomic Hashtbl Machine_intf Printf Simple_lock
