lib/core/lock_order.mli: Machine_intf Simple_lock
