lib/core/lock_stats.ml: Atomic Format
