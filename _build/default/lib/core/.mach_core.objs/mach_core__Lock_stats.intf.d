lib/core/lock_stats.mli: Format
