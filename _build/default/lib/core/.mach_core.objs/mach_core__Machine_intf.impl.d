lib/core/machine_intf.ml: Spl
