lib/core/refcount.ml: Atomic Event Machine_intf Printf Simple_lock
