lib/core/refcount.mli: Event Machine_intf Simple_lock
