lib/core/simple_lock.ml: Atomic Lock_stats Machine_intf Printf Spin Spl
