lib/core/simple_lock.mli: Lock_stats Machine_intf Spin Spl
