lib/core/spin.ml: Machine_intf Stdlib
