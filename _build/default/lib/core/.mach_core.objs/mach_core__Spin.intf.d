lib/core/spin.mli: Machine_intf
