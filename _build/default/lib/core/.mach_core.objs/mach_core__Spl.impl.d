lib/core/spl.ml: Format Printf Stdlib
