lib/core/spl.mli: Format
