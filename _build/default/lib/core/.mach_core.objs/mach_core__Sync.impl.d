lib/core/sync.ml: Complex_lock Event Lock_order Machine_intf Refcount Simple_lock Spin
