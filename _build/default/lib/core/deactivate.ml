type t = { mutable active : bool }

let make () = { active = true }
let is_active t = t.active

let deactivate t =
  if t.active then begin
    t.active <- false;
    true
  end
  else false

type 'a checked = ('a, [ `Deactivated ]) result

let check t = if t.active then Ok () else Error `Deactivated
let guard t f = if t.active then Ok (f ()) else Error `Deactivated
