(** Deactivated objects (paper, section 9).

    An object that consists only of a data structure — on which essentially
    no operation can be performed — is {e deactivated}.  The data structure
    survives as long as references to it exist, but operations fail because
    the structure records that the object has been deactivated.  Used for
    objects that are actively terminated (tasks, threads, ports) rather
    than passively vanishing with their last reference (memory maps).

    The flag must only be inspected and changed while holding the object's
    lock; because the object can be deactivated at any moment it is
    unlocked, the check must be repeated every time the object is relocked
    during an operation. *)

type t

val make : unit -> t
(** A new, active flag. *)

val is_active : t -> bool

val deactivate : t -> bool
(** Set the flag; returns [true] if this call performed the transition
    (false when already deactivated — termination races are resolved by
    whoever gets the object lock first). *)

type 'a checked = ('a, [ `Deactivated ]) result

val check : t -> unit checked
(** [Ok ()] when active; [Error `Deactivated] otherwise.  An operation that
    fails because the object is deactivated performs whatever recovery is
    required and returns a failure code (section 9). *)

val guard : t -> (unit -> 'a) -> 'a checked
(** Run the function only when active. *)
