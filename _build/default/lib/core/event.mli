(** The Mach event-wait mechanism (paper, section 6).

    Waiting is split into a declaration component ([assert_wait]) and a
    conditional wait component ([thread_block]); event occurrence
    ([thread_wakeup], [clear_wait]) synchronizes with the declaration.  A
    thread that must release locks to wait for an event calls [assert_wait]
    {e before} releasing the locks and [thread_block] afterwards; if the
    event occurs in the interim the block is converted into a non-blocking
    no-op that leaves the thread runnable — this is what makes
    "release locks and wait" atomic with respect to event occurrence.

    Events are identified by integers (Mach used kernel addresses).
    [null_event] (0) is the conventional event from which only [clear_wait]
    can awaken a thread. *)

type wait_result =
  | Awakened     (** the event occurred ([thread_wakeup]) *)
  | Cleared      (** thread-based occurrence ([clear_wait]) *)
  | Interrupted  (** an interruptible wait was interrupted *)
  | Restart      (** the operation should be restarted from the top *)

val pp_wait_result : Format.formatter -> wait_result -> unit
val wait_result_to_string : wait_result -> string

module Make
    (M : Machine_intf.MACHINE)
    (Slock : module type of Simple_lock.Make (M)) : sig
  type event = int

  val null_event : event
  (** Event 0: threads blocked here are awakened only by [clear_wait]. *)

  val fresh_event : unit -> event
  (** Allocate a unique event id (never 0). *)

  val assert_wait : ?interruptible:bool -> event -> unit
  (** Declare the event the current thread is about to wait for.  Fatal if
      the thread already has a wait asserted (the paper calls a second
      [assert_wait] before the block "fatal", section 8). *)

  val thread_block : unit -> wait_result
  (** Block if the asserted event has not occurred since [assert_wait];
      otherwise return immediately.  Fatal if called while holding simple
      locks (checking mode) or without an asserted wait. *)

  val cancel_assert : unit -> unit
  (** Withdraw the current thread's asserted wait without blocking (used
      when re-checking under a lock shows the wait is no longer needed). *)

  val thread_wakeup : ?result:wait_result -> event -> int
  (** Event-based occurrence: awaken {e all} threads waiting on the event
      (Mach's wakeup is broadcast); returns how many were awakened. *)

  val thread_wakeup_one : ?result:wait_result -> event -> bool
  (** Awaken at most one waiting thread. *)

  val clear_wait : M.thread -> wait_result -> bool
  (** Thread-based occurrence: awaken the given thread regardless of the
      event it waits on.  Returns false if the thread was not waiting. *)

  val thread_interrupt : M.thread -> bool
  (** [clear_wait] with result [Interrupted], honored only when the wait
      was asserted interruptible. *)

  val thread_sleep : event -> Slock.t -> wait_result
  (** The common case of releasing a single simple lock to wait for an
      event: [assert_wait]; unlock; [thread_block].  The lock is {e not}
      reacquired. *)

  val waiting_on : M.thread -> event option
  (** Diagnostic: the event the thread currently waits on, if any. *)

  val waiters_count : event -> int
  (** Diagnostic: momentary number of waiters on an event. *)
end
