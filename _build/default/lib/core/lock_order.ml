module Make
    (M : Machine_intf.MACHINE)
    (Slock : module type of Simple_lock.Make (M)) =
struct
  type cls = { cname : string; rank : int }

  let define_class ~name ~rank = { cname = name; rank }
  let class_name c = c.cname
  let class_rank c = c.rank

  (* Per-thread stack of held classes; consulted only from the owning
     thread, but the table itself is shared. *)
  let held : (int, cls list ref) Hashtbl.t = Hashtbl.create 64
  let held_lock = Slock.make ~name:"lock-order-held" ()

  let my_stack () =
    let tid = M.thread_id (M.self ()) in
    Slock.with_lock held_lock (fun () ->
        match Hashtbl.find_opt held tid with
        | Some r -> r
        | None ->
            let r = ref [] in
            Hashtbl.add held tid r;
            r)

  let violation_log : string list Atomic.t = Atomic.make []
  let fatal_violations = Atomic.make false
  let set_fatal_violations b = Atomic.set fatal_violations b

  let record_violation msg =
    if Atomic.get fatal_violations then M.fatal msg
    else begin
      let rec push () =
        let old = Atomic.get violation_log in
        if not (Atomic.compare_and_set violation_log old (msg :: old)) then
          push ()
      in
      push ()
    end

  let violations () = Atomic.get violation_log
  let clear_violations () = Atomic.set violation_log []

  let note_acquire c =
    let stack = my_stack () in
    (match !stack with
    | top :: _ when top.rank > c.rank ->
        record_violation
          (Printf.sprintf
             "lock order violation: thread %s acquired class %s (rank %d) \
              while holding class %s (rank %d)"
             (M.thread_name (M.self ()))
             c.cname c.rank top.cname top.rank)
    | _ -> ());
    stack := c :: !stack

  let note_release c =
    let stack = my_stack () in
    let rec remove_first = function
      | [] ->
          record_violation
            (Printf.sprintf
               "lock order: thread %s released class %s it does not hold"
               (M.thread_name (M.self ()))
               c.cname);
          []
      | top :: rest when top.cname = c.cname -> rest
      | top :: rest -> top :: remove_first rest
    in
    stack := remove_first !stack

  let lock_both_by_uid a b =
    if Slock.uid a = Slock.uid b then Slock.lock a
    else if Slock.uid a < Slock.uid b then begin
      Slock.lock a;
      Slock.lock b
    end
    else begin
      Slock.lock b;
      Slock.lock a
    end

  let unlock_both a b =
    if Slock.uid a = Slock.uid b then Slock.unlock a
    else begin
      Slock.unlock a;
      Slock.unlock b
    end

  let backout_lock_pair ~first ~second =
    let rec attempt backouts =
      Slock.lock first;
      if Slock.try_lock second then backouts
      else begin
        Slock.unlock first;
        M.spin_pause ();
        attempt (backouts + 1)
      end
    in
    attempt 0
end
