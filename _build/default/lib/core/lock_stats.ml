type t = {
  acquisitions : int Atomic.t;
  contentions : int Atomic.t;
  total_spins : int Atomic.t;
  tries : int Atomic.t;
  failed_tries : int Atomic.t;
  sleeps : int Atomic.t;
  reads : int Atomic.t;
  writes : int Atomic.t;
  upgrades : int Atomic.t;
  failed_upgrades : int Atomic.t;
  downgrades : int Atomic.t;
  recursive_acquires : int Atomic.t;
  held_cycles : int Atomic.t;
}

let make () =
  {
    acquisitions = Atomic.make 0;
    contentions = Atomic.make 0;
    total_spins = Atomic.make 0;
    tries = Atomic.make 0;
    failed_tries = Atomic.make 0;
    sleeps = Atomic.make 0;
    reads = Atomic.make 0;
    writes = Atomic.make 0;
    upgrades = Atomic.make 0;
    failed_upgrades = Atomic.make 0;
    downgrades = Atomic.make 0;
    recursive_acquires = Atomic.make 0;
    held_cycles = Atomic.make 0;
  }

let add c n = ignore (Atomic.fetch_and_add c n)
let incr c = add c 1

let record_acquire t ~contended ~spins =
  incr t.acquisitions;
  if contended then incr t.contentions;
  if spins > 0 then add t.total_spins spins

let record_release t ~held_cycles =
  if held_cycles > 0 then add t.held_cycles held_cycles

let record_try t ~success =
  incr t.tries;
  if not success then incr t.failed_tries

let record_sleep t = incr t.sleeps
let record_read t = incr t.reads
let record_write t = incr t.writes

let record_upgrade t ~success =
  incr t.upgrades;
  if not success then incr t.failed_upgrades

let record_downgrade t = incr t.downgrades
let record_recursive t = incr t.recursive_acquires

let acquisitions t = Atomic.get t.acquisitions
let contentions t = Atomic.get t.contentions
let total_spins t = Atomic.get t.total_spins
let tries t = Atomic.get t.tries
let failed_tries t = Atomic.get t.failed_tries
let sleeps t = Atomic.get t.sleeps
let reads t = Atomic.get t.reads
let writes t = Atomic.get t.writes
let upgrades t = Atomic.get t.upgrades
let failed_upgrades t = Atomic.get t.failed_upgrades
let downgrades t = Atomic.get t.downgrades
let recursive_acquires t = Atomic.get t.recursive_acquires
let held_cycles t = Atomic.get t.held_cycles

let first_attempt_rate t =
  let a = acquisitions t in
  if a = 0 then 1.0 else float_of_int (a - contentions t) /. float_of_int a

let reset t =
  let z c = Atomic.set c 0 in
  z t.acquisitions;
  z t.contentions;
  z t.total_spins;
  z t.tries;
  z t.failed_tries;
  z t.sleeps;
  z t.reads;
  z t.writes;
  z t.upgrades;
  z t.failed_upgrades;
  z t.downgrades;
  z t.recursive_acquires;
  z t.held_cycles

let merge_into ~dst src =
  let m d s = add d (Atomic.get s) in
  m dst.acquisitions src.acquisitions;
  m dst.contentions src.contentions;
  m dst.total_spins src.total_spins;
  m dst.tries src.tries;
  m dst.failed_tries src.failed_tries;
  m dst.sleeps src.sleeps;
  m dst.reads src.reads;
  m dst.writes src.writes;
  m dst.upgrades src.upgrades;
  m dst.failed_upgrades src.failed_upgrades;
  m dst.downgrades src.downgrades;
  m dst.recursive_acquires src.recursive_acquires;
  m dst.held_cycles src.held_cycles

let pp ppf t =
  Format.fprintf ppf
    "acq=%d cont=%d spins=%d tries=%d(-%d) sleeps=%d r=%d w=%d up=%d(-%d) \
     down=%d rec=%d first-attempt=%.3f"
    (acquisitions t) (contentions t) (total_spins t) (tries t)
    (failed_tries t) (sleeps t) (reads t) (writes t) (upgrades t)
    (failed_upgrades t) (downgrades t) (recursive_acquires t)
    (first_attempt_rate t)
