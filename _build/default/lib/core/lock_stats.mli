(** Per-lock statistics.

    The simple-lock declaration macro in the paper's Appendix A stores the
    lock "in a structure to allow the simple addition of debugging and
    statistics information"; this module is that structure.  Counters are
    updated with [Atomic] so they are exact on the simulator and on native
    multicore. *)

type t

val make : unit -> t

(** {1 Recording} *)

val record_acquire : t -> contended:bool -> spins:int -> unit
val record_release : t -> held_cycles:int -> unit
val record_try : t -> success:bool -> unit
val record_sleep : t -> unit
val record_read : t -> unit
val record_write : t -> unit
val record_upgrade : t -> success:bool -> unit
val record_downgrade : t -> unit
val record_recursive : t -> unit

(** {1 Reading} *)

val acquisitions : t -> int
val contentions : t -> int
val total_spins : t -> int
val tries : t -> int
val failed_tries : t -> int
val sleeps : t -> int
val reads : t -> int
val writes : t -> int
val upgrades : t -> int
val failed_upgrades : t -> int
val downgrades : t -> int
val recursive_acquires : t -> int
val held_cycles : t -> int

val first_attempt_rate : t -> float
(** Fraction of acquisitions that succeeded without contention — the
    quantity behind the paper's "most locks in a well designed system are
    acquired on the first attempt" (section 2). *)

val reset : t -> unit

val merge_into : dst:t -> t -> unit
(** Add every counter of the source into [dst]. *)

val pp : Format.formatter -> t -> unit
