(** Reference counting for existence coordination (paper, sections 2, 8).

    A reference guarantees that the data structure representing an object
    exists — it is safe to dereference a pointer to it — but makes no
    guarantee about the state of the object (alive, deactivated, ...).

    Rules enforced in checking mode, straight from section 8:
    - cloning requires an existing reference (the count can never come back
      from zero — no resurrection);
    - acquiring a reference never blocks and so may be done while holding
      other locks;
    - releasing a reference may destroy the object and hence block, so it
      may not be done while holding non-sleep locks nor between an
      [assert_wait] and the corresponding [thread_block]. *)

module Make
    (M : Machine_intf.MACHINE)
    (Slock : module type of Simple_lock.Make (M))
    (E : module type of Event.Make (M) (Slock)) : sig
  type t

  val make : ?name:string -> ?initial:int -> unit -> t
  (** An object is created with a single reference held by its creator
      ([initial] defaults to 1). *)

  val clone : t -> unit
  (** Acquire an additional reference.  Never blocks.  Fatal (checking
      mode) if the count is zero — the caller did not hold the existing
      reference section 8 requires for cloning. *)

  val release : t -> [ `Live | `Last ]
  (** Drop a reference.  [`Last] means the count reached zero: there are no
      operations in progress, no pointers, and no way to invoke new
      operations — the caller must destroy the object.  Fatal (checking
      mode) when called while holding simple locks / non-sleep complex
      locks, or between [assert_wait] and [thread_block]. *)

  val release_not_last : t -> unit
  (** Drop a reference the caller knows is not the last (e.g. it holds
      another one); exempt from the blocking-context checks, fatal if it
      does turn out to be last. *)

  val count : t -> int
  val name : t -> string

  val set_checking : bool -> unit
  val checking : unit -> bool

  (** A hybrid of a reference and a lock (section 8): counts operations in
      progress {e and} excludes operations — such as object termination —
      that cannot proceed while the count is non-zero.  This is the
      memory object's paging-operations count.  All operations require the
      caller to hold the object's simple lock, which is released and
      reacquired around any wait. *)
  module Gated : sig
    type g

    val make : ?name:string -> object_lock:Slock.t -> unit -> g

    val enter : g -> bool
    (** Begin an operation: increment, unless the gate has been closed by
        {!close_and_drain} (returns false). *)

    val exit : g -> unit
    (** End an operation: decrement; at zero, wake any drainer. *)

    val in_progress : g -> int

    val wait_until_zero : g -> unit
    (** Wait (without closing the gate) until no operation is in progress.
        The object lock is dropped while waiting and held on return. *)

    val close_and_drain : g -> unit
    (** Forbid new entries, then wait for in-progress operations to finish
        — the termination side of the hybrid. *)

    val reopen : g -> unit
  end
end
