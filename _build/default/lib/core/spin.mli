(** Spin-acquisition protocols over a test-and-set cell.

    Section 2 of the paper describes the progression of spin protocols on
    cached multiprocessors: plain test-and-set wastes bus bandwidth while
    spinning; test-and-test-and-set spins on an ordinary (cacheable) read
    and attempts the atomic instruction only when the lock appears free; a
    further refinement attempts the atomic instruction first, resorting to
    test-and-test-and-set only if that fails — exploiting the observation
    that most locks in a well designed system are acquired on the first
    attempt.  [Ttas_backoff] adds bounded exponential backoff as a modern
    extension (flagged as such in DESIGN.md). *)

type protocol =
  | Tas            (** always spin on the atomic test-and-set *)
  | Ttas           (** test and test-and-set *)
  | Tas_then_ttas  (** one test-and-set attempt, then test-and-test-and-set *)
  | Ttas_backoff   (** test-and-test-and-set with exponential backoff *)

val all_protocols : protocol list

val protocol_name : protocol -> string

val protocol_of_string : string -> protocol option

module Make (M : Machine_intf.MACHINE) : sig
  val acquire : ?hint:string -> protocol -> M.Cell.t -> int
  (** Spin until the cell is acquired (0 -> 1); returns the number of spin
      iterations that were needed (0 = acquired on the first attempt). *)

  val try_acquire : M.Cell.t -> bool
  (** A single test-and-set attempt. *)

  val release : M.Cell.t -> unit
  (** Reset the cell to 0. *)
end
