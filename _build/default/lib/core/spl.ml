type t =
  | Spl0
  | Splsoftclock
  | Splnet
  | Splbio
  | Splvm
  | Splclock
  | Splhigh

let all = [ Spl0; Splsoftclock; Splnet; Splbio; Splvm; Splclock; Splhigh ]

let rank = function
  | Spl0 -> 0
  | Splsoftclock -> 1
  | Splnet -> 2
  | Splbio -> 3
  | Splvm -> 4
  | Splclock -> 5
  | Splhigh -> 6

let of_rank = function
  | 0 -> Spl0
  | 1 -> Splsoftclock
  | 2 -> Splnet
  | 3 -> Splbio
  | 4 -> Splvm
  | 5 -> Splclock
  | 6 -> Splhigh
  | n -> invalid_arg (Printf.sprintf "Spl.of_rank: %d" n)

let compare a b = Stdlib.compare (rank a) (rank b)
let equal a b = rank a = rank b
let max a b = if rank a >= rank b then a else b
let min a b = if rank a > rank b then b else a
let ( <= ) a b = rank a <= rank b
let ( < ) a b = rank a < rank b

(* An interrupt of priority [level] is accepted only when it is strictly
   above the cpu's current priority. *)
let masks ~at level = Stdlib.( <= ) (rank level) (rank at)

let to_string = function
  | Spl0 -> "spl0"
  | Splsoftclock -> "splsoftclock"
  | Splnet -> "splnet"
  | Splbio -> "splbio"
  | Splvm -> "splvm"
  | Splclock -> "splclock"
  | Splhigh -> "splhigh"

let pp ppf t = Format.pp_print_string ppf (to_string t)
