(** Interrupt priority levels (spl -- "set priority level").

    The Mach kernel associates a single interrupt priority level with each
    lock: a lock must always be acquired at the same spl and held at that
    level or higher (paper, section 7).  This module defines the level
    lattice used throughout the reproduction.  Levels are totally ordered;
    [Spl0] masks nothing, [Splhigh] masks everything. *)

type t =
  | Spl0          (** all interrupts enabled *)
  | Splsoftclock  (** software clock interrupts masked *)
  | Splnet        (** network interrupts masked *)
  | Splbio        (** block i/o interrupts masked *)
  | Splvm         (** vm / tlb-shootdown interprocessor interrupts masked *)
  | Splclock      (** hardware clock interrupts masked *)
  | Splhigh       (** all interrupts masked *)

val all : t list
(** Every level, in increasing order of priority. *)

val rank : t -> int
(** Numeric rank; [rank Spl0 = 0], strictly increasing along [all]. *)

val of_rank : int -> t
(** Inverse of [rank].  @raise Invalid_argument on out-of-range input. *)

val compare : t -> t -> int
(** Total order by rank. *)

val equal : t -> t -> bool

val ( <= ) : t -> t -> bool

val ( < ) : t -> t -> bool

val max : t -> t -> t

val min : t -> t -> t

val masks : at:t -> t -> bool
(** [masks ~at level] is true when a cpu running at spl [at] does not accept
    an interrupt of priority [level]: interrupts are delivered only when
    their level is strictly above the current spl. *)

val to_string : t -> string

val pp : Format.formatter -> t -> unit
