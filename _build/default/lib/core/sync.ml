module Make (M : Machine_intf.MACHINE) = struct
  module Machine = M
  module Slock = Simple_lock.Make (M)
  module Ev = Event.Make (M) (Slock)
  module Clock = Complex_lock.Make (M) (Slock) (Ev)
  module Ref = Refcount.Make (M) (Slock) (Ev)
  module Order = Lock_order.Make (M) (Slock)
  module Sp = Spin.Make (M)

  let set_checking b =
    Slock.set_checking b;
    Ref.set_checking b
end
