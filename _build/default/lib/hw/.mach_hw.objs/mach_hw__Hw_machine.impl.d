lib/hw/hw_machine.ml: Array Atomic Condition Domain Hashtbl Mach_core Mutex Printf Sys Thread
