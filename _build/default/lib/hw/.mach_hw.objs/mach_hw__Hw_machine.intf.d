lib/hw/hw_machine.mli: Mach_core
