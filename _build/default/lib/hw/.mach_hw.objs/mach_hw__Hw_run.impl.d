lib/hw/hw_run.ml: Atomic Domain List
