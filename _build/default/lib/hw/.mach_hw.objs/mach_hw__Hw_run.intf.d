lib/hw/hw_run.mli:
