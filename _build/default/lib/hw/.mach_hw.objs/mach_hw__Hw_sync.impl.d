lib/hw/hw_sync.ml: Hw_machine Mach_core
