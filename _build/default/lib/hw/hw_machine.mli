(** The native machine: {!Mach_core.Machine_intf.MACHINE} implemented on
    OCaml 5 domains and [Atomic].

    This is the "machine dependent" layer for real multicore hardware,
    used by the native benchmarks (experiments E1/E2 wall-clock columns).
    There are no simulated interrupts natively: [set_spl] tracks the level
    per thread purely so the same-spl assertion machinery is exercised,
    and interrupt-dependent subsystems (TLB shootdown) run only on the
    simulated machine. *)

include Mach_core.Machine_intf.MACHINE

val register : ?name:string -> unit -> thread
(** Explicitly register the calling domain as a kernel thread; implicit on
    first use of [self ()]. *)

exception Kernel_panic of string
(** Raised by [fatal]. *)
