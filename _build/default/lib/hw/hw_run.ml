let parallel n f =
  let domains =
    List.init n (fun i -> Domain.spawn (fun () -> f i))
  in
  List.map Domain.join domains

let parallel_with_barrier n f =
  let ready = Atomic.make 0 in
  let go = Atomic.make false in
  let body i =
    let thunk = f i in
    ignore (Atomic.fetch_and_add ready 1);
    while not (Atomic.get go) do
      Domain.cpu_relax ()
    done;
    thunk ()
  in
  let domains = List.init n (fun i -> Domain.spawn (fun () -> body i)) in
  while Atomic.get ready < n do
    Domain.cpu_relax ()
  done;
  Atomic.set go true;
  List.map Domain.join domains
