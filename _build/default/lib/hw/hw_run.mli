(** Helpers to run workloads across OCaml domains for the native
    benchmarks: spawn [n] domains, run [f] in each, join all. *)

val parallel : int -> (int -> 'a) -> 'a list
(** [parallel n f] runs [f i] for [i] in [0 .. n-1], each in its own
    domain, and returns the results in index order.  [f 0] runs on a
    fresh domain as well, so all participants are symmetric. *)

val parallel_with_barrier : int -> (int -> unit -> 'a) -> 'a list
(** Like {!parallel} but [f i] is applied to [i] first (setup phase); the
    returned thunks then start together after all domains finish setup —
    for contention benchmarks that need a simultaneous start. *)
