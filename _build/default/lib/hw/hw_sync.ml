(** The machine-independent synchronization layer instantiated on the
    native machine — used by the real-multicore benchmarks and tests. *)

include Mach_core.Sync.Make (Hw_machine)
