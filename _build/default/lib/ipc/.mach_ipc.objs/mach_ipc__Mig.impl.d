lib/ipc/mig.ml: Hashtbl List Mach_ksync Port Printf
