lib/ipc/mig.mli: Mach_ksync Port
