lib/ipc/port.ml: List Mach_ksync
