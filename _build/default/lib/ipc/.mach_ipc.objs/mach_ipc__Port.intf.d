lib/ipc/port.mli: Mach_ksync
