module Kobj = Mach_ksync.Kobj

type args = Port.element list
type reply = (args, int) result

type routine = {
  routine_id : int;
  routine_name : string;
  handler : Kobj.t option -> args -> reply;
  consumes_reference : bool;
}

type registry = (int, routine) Hashtbl.t

let make_registry () = Hashtbl.create 32

let register reg ?(consumes_reference = false) ~id ~name handler =
  if Hashtbl.mem reg id then
    invalid_arg (Printf.sprintf "Mig.register: duplicate routine id %d" id);
  Hashtbl.replace reg id
    { routine_id = id; routine_name = name; handler; consumes_reference }

let lookup reg id = Hashtbl.find_opt reg id

let err_deactivated = 1001
let err_no_such_routine = 1002
let err_bad_arguments = 1003

(* Replies are encoded as: Int status :: results.  Status 0 = success. *)

type call_error = [ `Dead_port | `Server_failure of int ]

let call port ~id args =
  let reply_port = Port.create ~name:"reply" ~queue_limit:1 () in
  let finish r =
    Port.destroy reply_port;
    Port.release reply_port;
    r
  in
  match
    Port.send port { Port.msg_op = id; reply_to = Some reply_port; body = args }
  with
  | Error `Dead_port -> finish (Error `Dead_port)
  | Ok () -> (
      match Port.receive reply_port with
      | Error `Dead_port | Error `Would_block -> finish (Error `Dead_port)
      | Ok msg -> (
          (* Ownership of any port rights in the reply body transfers to
             the caller, which must release them when done. *)
          match msg.Port.body with
          | Port.Int 0 :: results -> finish (Ok results)
          | Port.Int code :: _ -> finish (Error (`Server_failure code))
          | _ -> finish (Error (`Server_failure err_bad_arguments))))

let send_async port ~id args =
  match Port.send port { Port.msg_op = id; reply_to = None; body = args } with
  | Error `Dead_port -> Error `Dead_port
  | Ok () -> Ok ()

let reply_to_message msg result =
  match msg.Port.reply_to with
  | None -> ()
  | Some rp ->
      let body =
        match result with
        | Ok results -> Port.Int 0 :: results
        | Error code -> [ Port.Int code ]
      in
      (* A dead reply port just drops the reply. *)
      ignore (Port.send rp { Port.msg_op = msg.Port.msg_op; reply_to = None; body });
      (* The receiver owned the reply-port reference carried by the
         request; sending cloned what it needed. *)
      Port.release rp

let serve_one reg port =
  match Port.receive port with
  | Error `Dead_port | Error `Would_block -> Error `Dead_port
  | Ok msg -> (
      (* Step 2: determine the represented object from the port and obtain
         a reference to it. *)
      let obj = Port.translate port in
      let release_body () =
        List.iter
          (function
            | Port.Port_right p -> Port.release p
            | Port.Int _ | Port.Str _ -> ())
          msg.Port.body
      in
      match lookup reg msg.Port.msg_op with
      | None ->
          reply_to_message msg (Error err_no_such_routine);
          release_body ();
          (match obj with Some o -> Kobj.release o | None -> ());
          Ok ()
      | Some routine ->
          (* Step 3: the operation executes with the object reference
             preventing the object and its port from vanishing. *)
          let result = routine.handler obj msg.Port.body in
          (* Step 4: release the object reference.  Mach 3.0 style: a
             successful operation consumed it; release only on failure. *)
          (match (obj, result, routine.consumes_reference) with
          | Some o, Ok _, true -> ignore o
          | Some o, _, _ -> Kobj.release o
          | None, _, _ -> ());
          (* Step 5: the reply message returns the result. *)
          reply_to_message msg result;
          release_body ();
          Ok ())

let serve_loop ?(stop = fun () -> false) reg port =
  let rec loop () =
    if stop () then ()
    else
      match serve_one reg port with Ok () -> loop () | Error `Dead_port -> ()
  in
  loop ()
