lib/kern/task.ml: List Mach_ipc Mach_ksync Mach_sim Mach_vm Printf
