lib/kern/task.mli: Mach_ipc Mach_ksync Mach_vm
