lib/kern/timer.ml: Array Mach_sim Printf
