lib/kern/timer.mli:
