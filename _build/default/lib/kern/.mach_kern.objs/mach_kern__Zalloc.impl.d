lib/kern/zalloc.ml: List Mach_ksync Printf
