lib/kern/zalloc.mli:
