module Engine = Mach_sim.Sim_engine
module K = Mach_ksync.Ksync
module Kobj = Mach_ksync.Kobj
module Port = Mach_ipc.Port

type t = {
  tobj : Kobj.t; (* the task lock is the kernel-object lock *)
  tilock : K.Slock.t; (* second lock: ipc translations (section 5) *)
  tmap : Mach_vm.Vm_map.t;
  mutable tport : Port.t option;
  mutable port_names : (string * Port.t) list; (* under tilock *)
  mutable task_threads : thread list; (* under tobj lock *)
  mutable suspends : int;
}

and thread = {
  thobj : Kobj.t;
  parent : t;
  mutable sim : Engine.thread option;
  mutable th_port : Port.t option;
}

type Kobj.payload += Task_payload of t | Thread_payload of thread

let name t = Kobj.name t.tobj
let kobj t = t.tobj
let map t = t.tmap
let self_port t = t.tport
let reference t = Kobj.reference t.tobj
let release t = Kobj.release t.tobj
let is_active t = Kobj.is_active t.tobj
let ipc_lock t = t.tilock

let thread_count t =
  Kobj.with_lock t.tobj (fun () -> List.length t.task_threads)

let threads t = Kobj.with_lock t.tobj (fun () -> t.task_threads)

let create ?name ctx =
  let tobj = Kobj.make ?name Kobj.No_payload in
  let tname = Kobj.name tobj in
  let t =
    {
      tobj;
      tilock = K.Slock.make ~name:(tname ^ ".ipc-lock") ();
      tmap = Mach_vm.Vm_map.create ~name:(tname ^ ".map") ctx;
      tport = None;
      port_names = [];
      task_threads = [];
      suspends = 0;
    }
  in
  Kobj.set_payload tobj (Task_payload t);
  (* The self port's object pointer carries its own task reference. *)
  let port = Port.create ~name:(tname ^ ".port") () in
  Kobj.reference tobj;
  Port.set_object port tobj;
  t.tport <- Some port;
  t

(* ------------------------------------------------------------------ *)
(* Port-name table: guarded by the ipc lock so translations proceed in
   parallel with task operations under the task lock (section 5).       *)
(* ------------------------------------------------------------------ *)

let register_port_name t pname port =
  Port.reference port;
  K.Slock.with_lock t.tilock (fun () ->
      t.port_names <- (pname, port) :: t.port_names)

let lookup_port_name t pname =
  K.Slock.lock t.tilock;
  let found = List.assoc_opt pname t.port_names in
  (* Clone the table's reference under the lock: the table's own
     reference cannot vanish while we hold the lock (section 8). *)
  (match found with Some p -> Port.reference p | None -> ());
  K.Slock.unlock t.tilock;
  found

(* ------------------------------------------------------------------ *)
(* Suspension                                                           *)
(* ------------------------------------------------------------------ *)

let suspend t =
  Kobj.with_lock t.tobj (fun () ->
      match Kobj.check_active t.tobj with
      | Error `Deactivated -> Error `Deactivated
      | Ok () ->
          t.suspends <- t.suspends + 1;
          Ok ())

let resume t =
  Kobj.with_lock t.tobj (fun () ->
      match Kobj.check_active t.tobj with
      | Error `Deactivated -> Error `Deactivated
      | Ok () ->
          if t.suspends = 0 then Error `Not_suspended
          else begin
            t.suspends <- t.suspends - 1;
            Ok ()
          end)

let suspend_count t = t.suspends

(* ------------------------------------------------------------------ *)
(* Threads                                                              *)
(* ------------------------------------------------------------------ *)

let thread_name th = Kobj.name th.thobj
let thread_kobj th = th.thobj
let thread_task th = th.parent
let thread_is_active th = Kobj.is_active th.thobj

let thread_join th =
  match th.sim with Some s -> Engine.join s | None -> ()

let thread_create ?name t body =
  Kobj.lock t.tobj;
  match Kobj.check_active t.tobj with
  | Error `Deactivated ->
      Kobj.unlock t.tobj;
      Error `Deactivated
  | Ok () ->
      let thobj =
        Kobj.make
          ?name:
            (match name with
            | Some n -> Some n
            | None ->
                Some
                  (Printf.sprintf "%s.thread%d" (Kobj.name t.tobj)
                     (List.length t.task_threads)))
          Kobj.No_payload
      in
      let th = { thobj; parent = t; sim = None; th_port = None } in
      Kobj.set_payload thobj (Thread_payload th);
      (* The thread holds a reference to its task (inter-object pointer,
         section 8). *)
      Kobj.reference t.tobj;
      t.task_threads <- th :: t.task_threads;
      Kobj.unlock t.tobj;
      let port = Port.create ~name:(Kobj.name thobj ^ ".port") () in
      Kobj.reference thobj;
      Port.set_object port thobj;
      th.th_port <- Some port;
      let sim =
        Engine.spawn ~name:(Kobj.name thobj) (fun () -> body th)
      in
      th.sim <- Some sim;
      Ok th

(* Shutdown of one thread, following the section 10 sequence. *)
let thread_terminate th =
  (* Step 1: deactivate under the object lock. *)
  Kobj.lock th.thobj;
  if not (Kobj.deactivate th.thobj) then begin
    Kobj.unlock th.thobj;
    Error `Deactivated
  end
  else begin
    Kobj.unlock th.thobj;
    (* Step 2: strip the port's object pointer; translation now fails. *)
    (match th.th_port with
    | Some port -> (
        match Port.clear_object port with
        | Some o -> Kobj.release o
        | None -> ())
    | None -> ());
    (* Step 3: shut down the execution: interrupt an interruptible wait
       so the body can observe deactivation and exit. *)
    (match th.sim with
    | Some s -> ignore (K.Ev.thread_interrupt s)
    | None -> ());
    (* Step 4 happens when the creator releases its reference. *)
    (match th.th_port with
    | Some port ->
        Port.destroy port;
        Port.release port;
        th.th_port <- None
    | None -> ());
    (* Remove from the task's thread list and drop the thread's task
       reference. *)
    let t = th.parent in
    Kobj.with_lock t.tobj (fun () ->
        t.task_threads <- List.filter (fun th' -> th' != th) t.task_threads);
    Kobj.release t.tobj;
    Ok ()
  end

(* ------------------------------------------------------------------ *)
(* Task termination: the full section 10 shutdown protocol.             *)
(* ------------------------------------------------------------------ *)

let terminate t =
  (* Step 1: lock the object, set the deactivated flag, unlock. *)
  Kobj.lock t.tobj;
  if not (Kobj.deactivate t.tobj) then begin
    Kobj.unlock t.tobj;
    Error `Deactivated
  end
  else begin
    let doomed = t.task_threads in
    Kobj.unlock t.tobj;
    (* Step 2: lock the port, remove the object pointer and its
       reference, unlock: port-to-object translation is now disabled. *)
    (match t.tport with
    | Some port -> (
        match Port.clear_object port with
        | Some o -> Kobj.release o
        | None -> ())
    | None -> ());
    (* Step 3: shutdown/destroy the object. *)
    List.iter (fun th -> ignore (thread_terminate th)) doomed;
    (match t.tport with
    | Some port ->
        Port.destroy port;
        Port.release port;
        t.tport <- None
    | None -> ());
    let names = K.Slock.with_lock t.tilock (fun () ->
        let n = t.port_names in
        t.port_names <- [];
        n)
    in
    List.iter (fun (_, p) -> Port.release p) names;
    Mach_vm.Vm_map.release t.tmap;
    (* Step 4: release the reference originally returned by creation;
       final deletion happens when all other references are released. *)
    Kobj.release t.tobj;
    Ok ()
  end
