(** Tasks and threads: the execution abstractions (paper, sections 3, 5,
    9, 10).

    A task is an execution environment and resource-allocation unit: a
    memory map plus access to resources via ports.  A task carries {e two}
    simple locks "to allow task operations and ipc translations to occur
    in parallel" (section 5): the task lock (the kernel object lock)
    protects thread lists and suspend counts, while the ipc lock protects
    the task's port-name table.

    Tasks and threads are {e actively terminated} (deactivated,
    section 9), via the section 10 shutdown sequence:
    + lock the object, set the deactivated flag, unlock;
    + lock the corresponding port, remove the object pointer and
      reference, unlock — disabling port-to-object translation;
    + shut down / destroy the object (locked as needed);
    + release the reference returned by object creation — final deletion
      happens when every other reference is released. *)

type t
type thread

type Mach_ksync.Kobj.payload +=
  | Task_payload of t
  | Thread_payload of thread

val create : ?name:string -> Mach_vm.Vm_map.context -> t
(** A new active task with a fresh memory map, a self port representing
    it, and one reference held by the creator. *)

val name : t -> string
val kobj : t -> Mach_ksync.Kobj.t
val map : t -> Mach_vm.Vm_map.t
val self_port : t -> Mach_ipc.Port.t option
val reference : t -> unit
val release : t -> unit
val is_active : t -> bool
val thread_count : t -> int
val threads : t -> thread list

val ipc_lock : t -> Mach_ksync.Ksync.Slock.t
(** The second task lock (port-name translations). *)

val register_port_name : t -> string -> Mach_ipc.Port.t -> unit
(** Insert into the task's port-name table (under the ipc lock); the
    table holds a port reference. *)

val lookup_port_name : t -> string -> Mach_ipc.Port.t option
(** Name-to-port translation: clones the table's port reference under the
    ipc lock (the section 8 "name to object translation" clone). *)

val suspend : t -> (unit, [ `Deactivated ]) result
val resume : t -> (unit, [ `Deactivated | `Not_suspended ]) result
val suspend_count : t -> int

val terminate : t -> (unit, [ `Deactivated ]) result
(** The section 10 shutdown protocol.  Terminates every thread, destroys
    the self port and the port-name table, releases the map, then drops
    the creation reference.  Returns [`Deactivated] if someone else
    already terminated the task (resolved by who gets the task lock
    first). *)

(** {1 Threads} *)

val thread_create :
  ?name:string -> t -> (thread -> unit) -> (thread, [ `Deactivated ]) result
(** Create a thread in the task, running [body] on a simulated kernel
    thread.  The thread holds a reference to its task. *)

val thread_name : thread -> string
val thread_kobj : thread -> Mach_ksync.Kobj.t
val thread_task : thread -> t
val thread_is_active : thread -> bool
val thread_join : thread -> unit

val thread_terminate : thread -> (unit, [ `Deactivated ]) result
(** Deactivate the thread and interrupt any interruptible wait it is in;
    the thread body observes {!thread_is_active} and exits. *)
