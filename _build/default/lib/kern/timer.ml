module Engine = Mach_sim.Sim_engine

let low_modulus = 1024

type t = {
  tname : string;
  owner : int;
  low : Engine.Cell.t;
  high : Engine.Cell.t;
  check : Engine.Cell.t; (* copy of [high], written after it *)
  mutable retried : int;
}

let create ?(name = "timer") ~owner_cpu () =
  {
    tname = name;
    owner = owner_cpu;
    low = Engine.Cell.make ~name:(name ^ ".low") 0;
    high = Engine.Cell.make ~name:(name ^ ".high") 0;
    check = Engine.Cell.make ~name:(name ^ ".check") 0;
    retried = 0;
  }

let owner_cpu t = t.owner

let tick t ~cycles =
  if Engine.current_cpu () <> t.owner then
    Engine.fatal
      (Printf.sprintf
         "timer %s: tick from cpu %d but the single writer is cpu %d \
          (lock-free timers rely on single-writer discipline, section 2)"
         t.tname (Engine.current_cpu ()) t.owner);
  (* The low word is stored FIRST, possibly exceeding the modulus: an
     un-normalized (high, low) pair is still numerically correct, so a
     reader that catches this state computes the right total.  Only the
     normalization window (high bumped, low not yet wrapped, or wrapped
     low with the old high... ) is inconsistent, and it is bracketed by
     high <> check: high is updated before low wraps and check last. *)
  let v = Engine.Cell.get t.low + cycles in
  Engine.Cell.set t.low v;
  if v >= low_modulus then begin
    Engine.Cell.set t.high (Engine.Cell.get t.high + (v / low_modulus));
    Engine.Cell.set t.low (v mod low_modulus);
    Engine.Cell.set t.check (Engine.Cell.get t.high)
  end

(* Reader order: check first, low, high LAST; accept iff high = check.
   The writer bumps high before normalizing low and publishes check last,
   and high is monotonic, so high = check proves no normalization window
   overlapped the snapshot; the one harmless overlap (low stored
   un-normalized, nothing else yet) yields a numerically correct total. *)
let read t =
  let rec snapshot () =
    let c = Engine.Cell.get t.check in
    let low = Engine.Cell.get t.low in
    let high = Engine.Cell.get t.high in
    if high = c then (high * low_modulus) + low
    else begin
      t.retried <- t.retried + 1;
      Engine.spin_hint (t.tname ^ ".read");
      Engine.pause ();
      snapshot ()
    end
  in
  snapshot ()

let read_unchecked t =
  (* Reads the words in the torn-prone order: a carry between the two
     reads yields a value ~low_modulus off. *)
  let low = Engine.Cell.get t.low in
  let high = Engine.Cell.get t.high in
  (high * low_modulus) + low

let reads_retried t = t.retried

module Usage = struct
  type u = { timers : t array }

  let create ~cpus =
    {
      timers =
        Array.init cpus (fun cpu ->
            create ~name:(Printf.sprintf "usage-cpu%d" cpu) ~owner_cpu:cpu ());
    }

  let timer u ~cpu = u.timers.(cpu)

  let charge_current_cpu u ~cycles =
    tick u.timers.(Engine.current_cpu ()) ~cycles

  let total u = Array.fold_left (fun acc t -> acc + read t) 0 u.timers
end
