(** The Mach timing facility: lock-free usage timers (paper, section 2;
    Black, "The Mach Timing Facility", USENIX Mach Workshop 1990).

    Section 2 notes that the Mach kernel's operation coordination is based
    on multiprocessor locking "with the exception of access to timer data
    structures in its usage timing subsystem": timers are charged on every
    context switch and interrupt, so a lock would be paid constantly.
    Instead, each timer has a {e single writer} (the processor that owns
    it) and uses a checked multi-word read so that readers on other
    processors detect torn reads and retry — coordination that works
    precisely because "other restrictions ensure that only a single
    processor can attempt to change the data structure at a time".

    The value is held as [high * low_modulus + low]; the writer bumps
    [low], and on carry updates [high] first and a [check] copy of [high]
    second.  A reader snapshots [check], then [low], then [high]: if
    [high = check] no carry happened in the window and the snapshot is
    consistent.  {!read_unchecked} omits the protocol — the anti-test and
    the benchmark use it to show both why the check is needed and how
    little it costs. *)

type t

val low_modulus : int
(** Carry boundary for the low word (small, so that the torn-read window
    is easy to demonstrate; the original used the hardware tick width). *)

val create : ?name:string -> owner_cpu:int -> unit -> t
val owner_cpu : t -> int

val tick : t -> cycles:int -> unit
(** Charge usage.  Writer side: may only be called on the owning cpu
    (panic otherwise — this is the "other restriction" that stands in for
    a lock). *)

val read : t -> int
(** Reader side, any cpu: the checked snapshot protocol; retries until
    consistent.  Never blocks, takes no lock. *)

val read_unchecked : t -> int
(** A deliberately naive reader that can return torn values during a
    carry.  For demonstration only. *)

val reads_retried : t -> int
(** How many reader snapshots were discarded by the check (diagnostic). *)

(** {1 Per-processor usage aggregation} *)

module Usage : sig
  type u

  val create : cpus:int -> u
  val timer : u -> cpu:int -> t
  val charge_current_cpu : u -> cycles:int -> unit
  val total : u -> int
  (** Sum of all processors' timers, each read with the checked
      protocol. *)
end
