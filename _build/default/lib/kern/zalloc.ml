module K = Mach_ksync.Ksync

type t = {
  zname : string;
  zlock : K.Slock.t;
  mutable free_elements : int list;
  zcapacity : int;
  event : K.Ev.event;
  mutable waits : int;
}

let create ?(name = "zone") ~capacity () =
  {
    zname = name;
    zlock = K.Slock.make ~name:(name ^ ".lock") ();
    free_elements = List.init capacity (fun i -> i);
    zcapacity = capacity;
    event = K.Ev.fresh_event ();
    waits = 0;
  }

let name t = t.zname
let capacity t = t.zcapacity

let in_use t =
  K.Slock.with_lock t.zlock (fun () ->
      t.zcapacity - List.length t.free_elements)

let try_alloc t =
  K.Slock.with_lock t.zlock (fun () ->
      match t.free_elements with
      | [] -> None
      | e :: rest ->
          t.free_elements <- rest;
          Some e)

let alloc t =
  let rec attempt () =
    K.Slock.lock t.zlock;
    match t.free_elements with
    | e :: rest ->
        t.free_elements <- rest;
        K.Slock.unlock t.zlock;
        e
    | [] ->
        t.waits <- t.waits + 1;
        ignore (K.Ev.thread_sleep t.event t.zlock);
        attempt ()
  in
  attempt ()

let free t e =
  K.Slock.lock t.zlock;
  if e < 0 || e >= t.zcapacity || List.mem e t.free_elements then begin
    K.Slock.unlock t.zlock;
    K.Machine.fatal (Printf.sprintf "zone %s: bad free of %d" t.zname e)
  end
  else begin
    t.free_elements <- e :: t.free_elements;
    ignore (K.Ev.thread_wakeup t.event);
    K.Slock.unlock t.zlock
  end

let exhausted_waits t = t.waits
