(** Zone allocator: fixed-size kernel object allocation.

    Memory allocation is the paper's canonical example of an operation
    that "blocks if memory is not available" (section 4) and therefore
    may only run under sleep locks.  A zone holds a bounded number of
    elements; [alloc] blocks when the zone is exhausted until someone
    frees. *)

type t

val create : ?name:string -> capacity:int -> unit -> t
val name : t -> string
val capacity : t -> int
val in_use : t -> int

val alloc : t -> int
(** Take an element (an opaque id in [0, capacity)); blocks while the
    zone is exhausted.  Must not be called with simple locks held. *)

val try_alloc : t -> int option
val free : t -> int -> unit

val exhausted_waits : t -> int
(** How many allocations had to sleep (diagnostics). *)
