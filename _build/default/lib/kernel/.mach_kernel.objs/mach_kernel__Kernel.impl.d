lib/kernel/kernel.ml: List Mach_ipc Mach_kern Mach_ksync Mach_sim Mach_vm Option Printf
