lib/kernel/kernel.mli: Mach_ipc Mach_kern Mach_vm
