lib/kernel/scenarios.ml: Array Fun Kernel List Mach_core Mach_ipc Mach_ksync Mach_sim Printf
