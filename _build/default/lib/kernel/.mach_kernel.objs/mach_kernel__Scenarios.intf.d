lib/kernel/scenarios.mli: Kernel
