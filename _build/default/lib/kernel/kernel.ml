module Engine = Mach_sim.Sim_engine
module Kobj = Mach_ksync.Kobj
module Port = Mach_ipc.Port
module Mig = Mach_ipc.Mig
module Task = Mach_kern.Task
module Vm_map = Mach_vm.Vm_map

module Op = struct
  let host_info = 1
  let task_create = 2
  let task_terminate = 3
  let task_suspend = 4
  let task_resume = 5
  let task_info = 6
  let vm_allocate = 10
  let vm_deallocate = 11
  let vm_wire = 12
  let null_op = 99
end

type t = {
  ctx : Vm_map.context;
  ktask : Task.t;
  host : Port.t;
  reg : Mig.registry;
  stop : bool ref;
  mutable servers : Engine.thread list;
  mutable served_ports : Port.t list;
}

let host_port t = t.host
let vm_context t = t.ctx
let kernel_task t = t.ktask
let registry t = t.reg

let serve_port t port =
  Port.reference port;
  t.served_ports <- port :: t.served_ports;
  let server =
    Engine.spawn ~name:("server:" ^ Port.name port) (fun () ->
        Mig.serve_loop ~stop:(fun () -> !(t.stop)) t.reg port)
  in
  t.servers <- server :: t.servers

let task_of_obj obj =
  match Kobj.payload obj with
  | Task.Task_payload task -> Some task
  | _ -> None

let err_wrong_object = 1010
let err_vm = 1011

let install_routines t =
  let reg = t.reg in
  Mig.register reg ~id:Op.null_op ~name:"null_op" (fun _obj _args -> Ok []);
  Mig.register reg ~id:Op.host_info ~name:"host_info" (fun _obj _args ->
      Ok
        [
          Port.Int (Engine.cpu_count ());
          Port.Int (Mach_vm.Vm_page.total t.ctx.Vm_map.pool);
        ]);
  Mig.register reg ~id:Op.task_create ~name:"task_create"
    (fun _obj _args ->
      let task = Task.create t.ctx in
      let port = Option.get (Task.self_port task) in
      serve_port t port;
      (* The reply carries a right to the new task's port; the creator's
         task reference stays with the task until termination. *)
      Ok [ Port.Port_right port ]);
  Mig.register reg ~id:Op.task_terminate ~name:"task_terminate"
    ~consumes_reference:true (fun obj _args ->
      match Option.map task_of_obj obj |> Option.join with
      | None -> Error err_wrong_object
      | Some task -> (
          match Task.terminate task with
          | Ok () ->
              (* Mach 3.0 convention: success consumes the translation
                 reference (the interface code will not release it). *)
              (match obj with Some o -> Kobj.release o | None -> ());
              Ok []
          | Error `Deactivated -> Error Mig.err_deactivated));
  Mig.register reg ~id:Op.task_suspend ~name:"task_suspend"
    (fun obj _args ->
      match Option.map task_of_obj obj |> Option.join with
      | None -> Error err_wrong_object
      | Some task -> (
          match Task.suspend task with
          | Ok () -> Ok []
          | Error `Deactivated -> Error Mig.err_deactivated));
  Mig.register reg ~id:Op.task_resume ~name:"task_resume" (fun obj _args ->
      match Option.map task_of_obj obj |> Option.join with
      | None -> Error err_wrong_object
      | Some task -> (
          match Task.resume task with
          | Ok () -> Ok []
          | Error `Deactivated -> Error Mig.err_deactivated
          | Error `Not_suspended -> Error Mig.err_bad_arguments));
  Mig.register reg ~id:Op.task_info ~name:"task_info" (fun obj _args ->
      match Option.map task_of_obj obj |> Option.join with
      | None -> Error err_wrong_object
      | Some task ->
          Ok
            [
              Port.Int (Task.thread_count task);
              Port.Int (Vm_map.size (Task.map task));
              Port.Int (Task.suspend_count task);
            ]);
  Mig.register reg ~id:Op.vm_allocate ~name:"vm_allocate" (fun obj args ->
      match (Option.map task_of_obj obj |> Option.join, args) with
      | Some task, [ Port.Int size ] when size > 0 ->
          if not (Task.is_active task) then Error Mig.err_deactivated
          else Ok [ Port.Int (Vm_map.vm_allocate (Task.map task) ~size) ]
      | Some _, _ -> Error Mig.err_bad_arguments
      | None, _ -> Error err_wrong_object);
  Mig.register reg ~id:Op.vm_deallocate ~name:"vm_deallocate"
    (fun obj args ->
      match (Option.map task_of_obj obj |> Option.join, args) with
      | Some task, [ Port.Int va ] -> (
          match Vm_map.vm_deallocate (Task.map task) ~va with
          | Ok () -> Ok []
          | Error `No_entry -> Error err_vm)
      | Some _, _ -> Error Mig.err_bad_arguments
      | None, _ -> Error err_wrong_object);
  Mig.register reg ~id:Op.vm_wire ~name:"vm_wire" (fun obj args ->
      match (Option.map task_of_obj obj |> Option.join, args) with
      | Some task, [ Port.Int va; Port.Int pages ] -> (
          match Mach_vm.Vm_pageable.wire_rewritten (Task.map task) ~va ~pages with
          | Ok () -> Ok []
          | Error (`Bad_address | `Object_terminated | `Map_changed) ->
              Error err_vm)
      | Some _, _ -> Error Mig.err_bad_arguments
      | None, _ -> Error err_wrong_object)

let start ?cpus_hint ?(pages = 256) ?(name = "kernel") () =
  ignore cpus_hint;
  let ctx = Vm_map.make_context ~name ~pages () in
  let ktask = Task.create ~name:(name ^ ".task") ctx in
  let host = Port.create ~name:(name ^ ".host") () in
  let t =
    {
      ctx;
      ktask;
      host;
      reg = Mig.make_registry ();
      stop = ref false;
      servers = [];
      served_ports = [];
    }
  in
  install_routines t;
  serve_port t host;
  t

let shutdown t =
  t.stop := true;
  (* Killing the ports unblocks the servers' receives. *)
  List.iter Port.destroy t.served_ports;
  List.iter Engine.join t.servers;
  List.iter Port.release t.served_ports;
  t.served_ports <- [];
  t.servers <- [];
  Port.release t.host;
  ignore (Task.terminate t.ktask)

(* ------------------------------------------------------------------ *)
(* Client wrappers                                                      *)
(* ------------------------------------------------------------------ *)

let string_of_call_error = function
  | `Dead_port -> "dead port"
  | `Server_failure code -> Printf.sprintf "server failure %d" code

let rpc_task_create t =
  match Mig.call t.host ~id:Op.task_create [] with
  | Ok [ Port.Port_right p ] -> Ok p
  | Ok _ -> Error "malformed task_create reply"
  | Error e -> Error (string_of_call_error e)

let rpc_task_terminate port =
  match Mig.call port ~id:Op.task_terminate [] with
  | Ok _ -> Ok ()
  | Error e -> Error (string_of_call_error e)

let rpc_vm_allocate port ~size =
  match Mig.call port ~id:Op.vm_allocate [ Port.Int size ] with
  | Ok [ Port.Int va ] -> Ok va
  | Ok _ -> Error "malformed vm_allocate reply"
  | Error e -> Error (string_of_call_error e)

let rpc_vm_wire port ~va ~pages =
  match Mig.call port ~id:Op.vm_wire [ Port.Int va; Port.Int pages ] with
  | Ok _ -> Ok ()
  | Error e -> Error (string_of_call_error e)

let rpc_null t =
  match Mig.call t.host ~id:Op.null_op [] with
  | Ok _ -> Ok ()
  | Error e -> Error (string_of_call_error e)
