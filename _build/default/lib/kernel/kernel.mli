(** The kernel facade: boot, the host port, and the kernel RPC server.

    "Most kernel operations are invoked by sending messages to the
    kernel" (paper, section 3); this module wires the pieces together: a
    host port for machine-wide operations, per-object ports for object
    operations, and a kernel server thread executing the section 10
    sequence via {!Mach_ipc.Mig}.

    Must be used inside a running simulation ({!Mach_sim.Sim_engine.run}). *)

type t

(** Routine ids understood by the kernel server.

    [host_info], [task_create] and [null_op] are invoked on the host
    port; the rest on a task port.  [task_terminate] follows the
    Mach 3.0 convention of consuming the translated object reference on
    success (section 10). *)
module Op : sig
  val host_info : int
  val task_create : int
  val task_terminate : int
  val task_suspend : int
  val task_resume : int
  val task_info : int
  val vm_allocate : int
  val vm_deallocate : int
  val vm_wire : int
  val null_op : int
end

val start : ?cpus_hint:int -> ?pages:int -> ?name:string -> unit -> t
(** Create the kernel: VM context, kernel task, host port, dispatch
    table, and a kernel server thread serving the host port and every
    task port registered through {!serve_port}. *)

val shutdown : t -> unit
(** Stop the server threads and destroy the host port. *)

val host_port : t -> Mach_ipc.Port.t
val vm_context : t -> Mach_vm.Vm_map.context
val kernel_task : t -> Mach_kern.Task.t
val registry : t -> Mach_ipc.Mig.registry

val serve_port : t -> Mach_ipc.Port.t -> unit
(** Spawn an additional kernel server thread on the given port (task
    ports need one so operations on them are dispatched). *)

(** {1 Convenience client wrappers (they perform real RPCs)} *)

val rpc_task_create : t -> (Mach_ipc.Port.t, string) result
(** Returns the new task's port (a send right). *)

val rpc_task_terminate : Mach_ipc.Port.t -> (unit, string) result
val rpc_vm_allocate : Mach_ipc.Port.t -> size:int -> (int, string) result
val rpc_vm_wire : Mach_ipc.Port.t -> va:int -> pages:int -> (unit, string) result
val rpc_null : t -> (unit, string) result
