lib/ksync/kobj.ml: Atomic Ksync Mach_core Printf
