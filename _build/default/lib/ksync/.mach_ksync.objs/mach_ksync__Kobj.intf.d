lib/ksync/kobj.mli: Ksync Mach_core
