lib/ksync/ksync.ml: Mach_core Mach_sim
