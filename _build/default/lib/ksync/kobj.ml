type payload = ..
type payload += No_payload

type t = {
  kname : string;
  kuid : int;
  klock : Ksync.Slock.t;
  refs : Ksync.Ref.t;
  active : Mach_core.Deactivate.t;
  destroy : (t -> unit) option;
  mutable payload : payload;
}

let uid_counter = Atomic.make 0

let make ?name ?destroy payload =
  let kuid = Atomic.fetch_and_add uid_counter 1 in
  let kname =
    match name with Some n -> n | None -> Printf.sprintf "kobj%d" kuid
  in
  {
    kname;
    kuid;
    klock = Ksync.Slock.make ~name:(kname ^ ".lock") ();
    refs = Ksync.Ref.make ~name:(kname ^ ".refs") ();
    active = Mach_core.Deactivate.make ();
    destroy;
    payload;
  }

let name t = t.kname
let uid t = t.kuid
let lock t = Ksync.Slock.lock t.klock
let unlock t = Ksync.Slock.unlock t.klock
let try_lock t = Ksync.Slock.try_lock t.klock
let with_lock t f = Ksync.Slock.with_lock t.klock f
let object_lock t = t.klock
let reference t = Ksync.Ref.clone t.refs

let reference_under lock t =
  if Ksync.Slock.checking () && not (Ksync.Slock.held_by_self lock) then
    Ksync.Machine.fatal
      (Printf.sprintf
         "kobj %s: reference_under without holding the guaranteeing lock %s"
         t.kname (Ksync.Slock.name lock));
  Ksync.Ref.clone t.refs

let reference_locked t = reference_under t.klock t

let release t =
  match Ksync.Ref.release t.refs with
  | `Live -> ()
  | `Last -> ( match t.destroy with Some d -> d t | None -> ())

let ref_count t = Ksync.Ref.count t.refs
let is_active t = Mach_core.Deactivate.is_active t.active

let deactivate t =
  if Ksync.Slock.checking () && not (Ksync.Slock.held_by_self t.klock) then
    Ksync.Machine.fatal
      (Printf.sprintf "kobj %s: deactivate without the object lock" t.kname);
  Mach_core.Deactivate.deactivate t.active

let check_active t = Mach_core.Deactivate.check t.active
let payload t = t.payload
let set_payload t p = t.payload <- p
