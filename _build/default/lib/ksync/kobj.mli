(** The kernel object base: the pattern every Mach kernel data structure
    follows (paper, sections 3, 8, 9, 10).

    A kernel object is a data structure with
    - a simple lock protecting its state,
    - a reference count governing the data structure's existence (the
      object is created with one reference held by its creator),
    - a deactivation flag for objects that are actively terminated, and
    - a payload: the subsystem-specific state, attached through an
      extensible variant so that ipc can point at objects of types defined
      by later subsystems (task, thread, memory object, ...).

    When the reference count reaches zero there are no operations in
    progress, no pointers and no way to invoke new operations, so the
    object is destroyed (its registered destructor runs). *)

type payload = ..

type payload += No_payload

type t

val make : ?name:string -> ?destroy:(t -> unit) -> payload -> t
(** Create with a single reference to the creator.  [destroy] runs when
    the last reference is released. *)

val name : t -> string
val uid : t -> int

(** {1 Locking} *)

val lock : t -> unit
val unlock : t -> unit
val try_lock : t -> bool
val with_lock : t -> (unit -> 'a) -> 'a
val object_lock : t -> Ksync.Slock.t
(** The underlying simple lock (for [thread_sleep], gated counts...). *)

(** {1 References} *)

val reference : t -> unit
(** Clone a reference the caller already holds (never blocks; legal while
    holding locks). *)

val reference_locked : t -> unit
(** Clone under the object's own lock. *)

val reference_under : Ksync.Slock.t -> t -> unit
(** Clone a reference held in a data structure protected by [lock] — the
    caller must hold that lock, which is what guarantees the source
    reference cannot vanish during the clone (section 8; e.g. a port's
    object pointer is cloned under the port lock). *)

val release : t -> unit
(** Drop a reference; on the last one the object is destroyed.  Subject to
    the section 8 blocking-context rules. *)

val ref_count : t -> int

(** {1 Deactivation} *)

val is_active : t -> bool
(** Must be called with the object locked to be meaningful. *)

val deactivate : t -> bool
(** Mark deactivated (caller must hold the object lock); true when this
    call made the transition. *)

val check_active : t -> unit Mach_core.Deactivate.checked

(** {1 Payload} *)

val payload : t -> payload
val set_payload : t -> payload -> unit
