(** The kernel's synchronization layer: the machine-independent lock /
    event / refcount modules instantiated once on the simulated machine.
    Every kernel subsystem (ipc, vm, kern) shares this instance so that
    lock checking, events and TLS counters compose across subsystems. *)

include Mach_core.Sync.Make (Mach_sim.Sim_machine)
