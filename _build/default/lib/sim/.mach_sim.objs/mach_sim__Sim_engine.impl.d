lib/sim/sim_engine.ml: Array Atomic Buffer Effect Format Lazy List Mach_core Printexc Printf Sim_config Sim_rng Sim_trace String
