lib/sim/sim_engine.mli: Format Mach_core Sim_config Sim_trace
