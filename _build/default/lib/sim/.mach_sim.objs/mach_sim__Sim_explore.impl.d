lib/sim/sim_explore.ml: Format Fun List Sim_config Sim_engine
