lib/sim/sim_explore.mli: Format Sim_config
