lib/sim/sim_machine.ml: Sim_engine
