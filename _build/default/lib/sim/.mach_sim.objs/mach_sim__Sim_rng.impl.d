lib/sim/sim_rng.ml: Int64 List
