type verdict = {
  seeds_run : int;
  completed : int;
  sleep_deadlocks : int;
  spin_deadlocks : int;
  panics : int;
  step_limits : int;
  failures : (int * string) list;
}

let pp_verdict ppf v =
  Format.fprintf ppf
    "seeds=%d completed=%d sleep-deadlocks=%d spin-deadlocks=%d panics=%d \
     step-limits=%d"
    v.seeds_run v.completed v.sleep_deadlocks v.spin_deadlocks v.panics
    v.step_limits

let default_seeds = List.init 100 (fun i -> i + 1)

let run ?(cpus = 4) ?policy ?(seeds = default_seeds) ?(tweak = Fun.id)
    scenario =
  let outcome_of seed =
    let cfg = Sim_config.exploration ~cpus ~seed () in
    let cfg =
      match policy with Some p -> { cfg with Sim_config.policy = p } | None -> cfg
    in
    Sim_engine.run_outcome ~cfg:(tweak cfg) scenario
  in
  List.fold_left
    (fun v seed ->
      let add_failure report v =
        if List.length v.failures >= 16 then v
        else { v with failures = (seed, report) :: v.failures }
      in
      let v = { v with seeds_run = v.seeds_run + 1 } in
      match outcome_of seed with
      | Sim_engine.Completed _ -> { v with completed = v.completed + 1 }
      | Sim_engine.Deadlocked (Sim_engine.Sleep_deadlock, r) ->
          add_failure r { v with sleep_deadlocks = v.sleep_deadlocks + 1 }
      | Sim_engine.Deadlocked (Sim_engine.Spin_deadlock, r) ->
          add_failure r { v with spin_deadlocks = v.spin_deadlocks + 1 }
      | Sim_engine.Panicked r ->
          add_failure r { v with panics = v.panics + 1 }
      | Sim_engine.Hit_step_limit ->
          add_failure "step limit" { v with step_limits = v.step_limits + 1 })
    {
      seeds_run = 0;
      completed = 0;
      sleep_deadlocks = 0;
      spin_deadlocks = 0;
      panics = 0;
      step_limits = 0;
      failures = [];
    }
    seeds

let all_completed v = v.completed = v.seeds_run && v.panics = 0

let some_deadlock v = v.sleep_deadlocks > 0 || v.spin_deadlocks > 0

let find_first_deadlock ?(cpus = 4) ?(max_seeds = 200) scenario =
  let rec search seed =
    if seed > max_seeds then None
    else
      let cfg = Sim_config.exploration ~cpus ~seed () in
      match Sim_engine.run_outcome ~cfg scenario with
      | Sim_engine.Deadlocked (_, report) -> Some (seed, report)
      | _ -> search (seed + 1)
  in
  search 1
