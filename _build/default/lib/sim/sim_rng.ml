type t = { mutable state : int64 }

let make seed = { state = Int64.of_int (seed lxor 0x5DEECE66D) }
let copy t = { state = t.state }

let next_int64 t =
  let open Int64 in
  t.state <- add t.state 0x9E3779B97F4A7C15L;
  let z = t.state in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let next t = Int64.to_int (Int64.shift_right_logical (next_int64 t) 2)

let int t bound =
  if bound <= 0 then invalid_arg "Sim_rng.int: bound must be positive";
  next t mod bound

let bool t = next t land 1 = 1
let float t = float_of_int (next t) /. 4611686018427387904.0

let pick t = function
  | [] -> invalid_arg "Sim_rng.pick: empty list"
  | l -> List.nth l (int t (List.length l))

let shuffle t l =
  let tagged = List.map (fun x -> (next t, x)) l in
  List.map snd (List.sort (fun (a, _) (b, _) -> compare a b) tagged)
