(** Deterministic pseudo-random numbers (splitmix64) for the simulator.

    Every source of scheduling nondeterminism draws from one of these
    generators, so a (seed, config) pair fully determines a run — the
    property the schedule-exploration tests rely on. *)

type t

val make : int -> t
(** Seeded generator. *)

val copy : t -> t

val next : t -> int
(** Uniform non-negative int (62 bits). *)

val int : t -> int -> int
(** [int t bound] in [0, bound); [bound] must be positive. *)

val bool : t -> bool

val float : t -> float
(** Uniform in [0, 1). *)

val pick : t -> 'a list -> 'a
(** Uniform choice from a non-empty list. *)

val shuffle : t -> 'a list -> 'a list
