type event = {
  step : int;
  clock : int;
  cpu : int;
  context : string;
  tag : string;
  detail : string;
}

type t = {
  capacity : int;
  on : bool;
  buf : event option array;
  mutable next : int;
  mutable count : int;
  mutable dropped : int;
}

let make ~capacity ~enabled =
  {
    capacity = max 1 capacity;
    on = enabled;
    buf = Array.make (max 1 capacity) None;
    next = 0;
    count = 0;
    dropped = 0;
  }

let enabled t = t.on

let record t e =
  if t.on then begin
    if t.count = t.capacity then t.dropped <- t.dropped + 1
    else t.count <- t.count + 1;
    t.buf.(t.next) <- Some e;
    t.next <- (t.next + 1) mod t.capacity
  end

let events t =
  let out = ref [] in
  for i = 0 to t.capacity - 1 do
    let idx = (t.next + i) mod t.capacity in
    match t.buf.(idx) with Some e -> out := e :: !out | None -> ()
  done;
  List.rev !out

let dropped t = t.dropped

let clear t =
  Array.fill t.buf 0 t.capacity None;
  t.next <- 0;
  t.count <- 0;
  t.dropped <- 0

let pp_event ppf e =
  Format.fprintf ppf "[%8d c%d @%8d] %-12s %-8s %s" e.step e.cpu e.clock
    e.context e.tag e.detail

let dump ppf t =
  List.iter (fun e -> Format.fprintf ppf "%a@." pp_event e) (events t);
  if t.dropped > 0 then Format.fprintf ppf "... (%d earlier events dropped)@." t.dropped
