(** Bounded event trace for the simulator: a ring buffer of structured
    events, readable after a run for debugging and for tests that assert
    orderings (e.g. "no reader ran while the writer held the lock"). *)

type event = {
  step : int;          (** scheduler step at which the event occurred *)
  clock : int;         (** the cpu's cycle clock *)
  cpu : int;
  context : string;    (** thread or interrupt name *)
  tag : string;        (** event class: "spawn", "park", "tas", ... *)
  detail : string;
}

type t

val make : capacity:int -> enabled:bool -> t
val enabled : t -> bool
val record : t -> event -> unit
val events : t -> event list
(** Oldest first; at most [capacity] most recent events. *)

val dropped : t -> int
val clear : t -> unit
val pp_event : Format.formatter -> event -> unit
val dump : Format.formatter -> t -> unit
