lib/vm/pmap.ml: Atomic Hashtbl List Mach_core Mach_ksync Mach_sim Printf Tlb Tlb_shootdown
