lib/vm/pmap.mli: Tlb
