lib/vm/pmap_system.ml: Mach_core Mach_ksync
