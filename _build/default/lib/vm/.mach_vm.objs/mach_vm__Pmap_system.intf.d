lib/vm/pmap_system.mli:
