lib/vm/pv_list.ml: Array List Mach_core Mach_ksync Mach_sim Pmap Printf
