lib/vm/pv_list.mli: Pmap
