lib/vm/tlb.ml: Array Hashtbl List
