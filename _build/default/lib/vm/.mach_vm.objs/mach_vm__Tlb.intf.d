lib/vm/tlb.mli:
