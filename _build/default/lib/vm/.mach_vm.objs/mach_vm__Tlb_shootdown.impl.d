lib/vm/tlb_shootdown.ml: Array Atomic List Mach_core Mach_sim
