lib/vm/tlb_shootdown.mli:
