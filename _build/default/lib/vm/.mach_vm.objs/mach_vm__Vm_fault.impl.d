lib/vm/vm_fault.ml: Atomic Mach_ksync Vm_map Vm_object Vm_page
