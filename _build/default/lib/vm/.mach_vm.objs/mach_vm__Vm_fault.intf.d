lib/vm/vm_fault.mli: Vm_map
