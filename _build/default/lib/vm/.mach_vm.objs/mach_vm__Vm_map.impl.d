lib/vm/vm_map.ml: Atomic List Mach_ksync Pmap Pmap_system Printf Pv_list Tlb Vm_object Vm_page
