lib/vm/vm_map.mli: Mach_ksync Pmap Pmap_system Pv_list Tlb Vm_object Vm_page
