lib/vm/vm_object.ml: Hashtbl List Mach_ipc Mach_ksync Mach_sim Option Printf Vm_page
