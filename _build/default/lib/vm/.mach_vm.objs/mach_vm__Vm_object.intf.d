lib/vm/vm_object.mli: Mach_ipc Mach_ksync Vm_page
