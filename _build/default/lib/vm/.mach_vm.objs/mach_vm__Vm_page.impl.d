lib/vm/vm_page.ml: List Mach_ksync Printf
