lib/vm/vm_page.mli:
