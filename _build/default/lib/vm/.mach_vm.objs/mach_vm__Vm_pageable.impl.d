lib/vm/vm_pageable.ml: List Mach_ksync Vm_fault Vm_map Vm_object
