lib/vm/vm_pageable.mli: Vm_map
