lib/vm/vm_pageout.ml: List Mach_ksync Mach_sim Pmap_system Pv_list Vm_map Vm_object Vm_page
