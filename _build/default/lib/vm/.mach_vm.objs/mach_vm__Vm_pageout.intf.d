lib/vm/vm_pageout.mli: Vm_map
