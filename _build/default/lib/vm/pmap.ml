module Engine = Mach_sim.Sim_engine
module K = Mach_ksync.Ksync
module Spl = Mach_core.Spl

type t = {
  pid : int;
  pname : string;
  lock : K.Slock.t; (* pinned at splvm, section 7 *)
  table : (int, Tlb.entry) Hashtbl.t; (* va -> entry *)
  mutable cpus : int list;
}

let id_counter = Atomic.make 0

let create ?name () =
  let pid = Atomic.fetch_and_add id_counter 1 in
  let pname =
    match name with Some n -> n | None -> Printf.sprintf "pmap%d" pid
  in
  {
    pid;
    pname;
    lock = K.Slock.make ~name:(pname ^ ".lock") ~spl:Spl.Splvm ();
    table = Hashtbl.create 64;
    cpus = [];
  }

let id t = t.pid
let name t = t.pname

(* Every pmap critical section follows the same shape: raise spl to splvm,
   flag the cpu as pmap-critical (for the shootdown special logic), take
   the pmap lock, work, release, unflag, restore spl.  The flag goes up
   BEFORE the spin on the lock: a processor spinning for a pmap lock with
   interrupts masked is exactly the case the section 7 special logic
   removes from the barrier set. *)
let with_pmap_lock t f =
  let old = Engine.set_spl Spl.Splvm in
  let cpu = Engine.current_cpu () in
  Tlb_shootdown.note_pmap_critical_enter ~cpu;
  K.Slock.lock t.lock;
  let finish () =
    K.Slock.unlock t.lock;
    (* The thread cannot have migrated: it ran at splvm throughout. *)
    Tlb_shootdown.note_pmap_critical_exit ~cpu;
    ignore (Engine.set_spl old)
  in
  match f () with
  | v ->
      finish ();
      v
  | exception e ->
      finish ();
      raise e

let activate t ~cpu =
  with_pmap_lock t (fun () ->
      if not (List.mem cpu t.cpus) then t.cpus <- cpu :: t.cpus)

let deactivate t ~cpu =
  with_pmap_lock t (fun () ->
      t.cpus <- List.filter (fun c -> c <> cpu) t.cpus;
      Tlb.flush_pmap ~cpu ~pmap_id:t.pid)

let active_cpus t = t.cpus

let enter t ~va ~ppn ~prot =
  with_pmap_lock t (fun () ->
      Hashtbl.replace t.table va { Tlb.ppn; prot };
      Tlb.load ~cpu:(Engine.current_cpu ()) ~pmap_id:t.pid ~va
        { Tlb.ppn; prot })

let remove t ~va =
  with_pmap_lock t (fun () ->
      match Hashtbl.find_opt t.table va with
      | None -> None
      | Some e ->
          Tlb_shootdown.shootdown ~pmap_id:t.pid ~targets:t.cpus
            ~invalidate:(fun ~cpu -> Tlb.flush_entry ~cpu ~pmap_id:t.pid ~va)
            ~commit:(fun () -> Hashtbl.remove t.table va);
          Some e.Tlb.ppn)

let protect t ~va ~prot =
  with_pmap_lock t (fun () ->
      match Hashtbl.find_opt t.table va with
      | None -> ()
      | Some e ->
          Tlb_shootdown.shootdown ~pmap_id:t.pid ~targets:t.cpus
            ~invalidate:(fun ~cpu -> Tlb.flush_entry ~cpu ~pmap_id:t.pid ~va)
            ~commit:(fun () ->
              Hashtbl.replace t.table va { e with Tlb.prot }))

let translate t ~va =
  let cpu = Engine.current_cpu () in
  match Tlb.lookup ~cpu ~pmap_id:t.pid ~va with
  | Some e -> Some e
  | None ->
      with_pmap_lock t (fun () ->
          match Hashtbl.find_opt t.table va with
          | Some e ->
              Tlb.load ~cpu:(Engine.current_cpu ()) ~pmap_id:t.pid ~va e;
              Some e
          | None -> None)

let resident_count t = with_pmap_lock t (fun () -> Hashtbl.length t.table)

let remove_all t =
  with_pmap_lock t (fun () ->
      Tlb_shootdown.shootdown ~pmap_id:t.pid ~targets:t.cpus
        ~invalidate:(fun ~cpu -> Tlb.flush_pmap ~cpu ~pmap_id:t.pid)
        ~commit:(fun () -> Hashtbl.reset t.table))
