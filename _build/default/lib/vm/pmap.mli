(** Physical maps: the machine dependent side of the Mach VM system
    (paper, section 5; Tevanian's thesis [15]).

    A pmap maintains virtual-to-physical mappings in the format the MMU
    requires, protected by a simple lock held at [splvm].  Mapping removal
    and protection reduction on a pmap that is active on other processors
    trigger a TLB shootdown.

    Lock ordering with the pv lists is the section 5 conflict this module
    is famous for; the ordering is arbitrated by {!Pmap_system} — pmap
    code itself only asserts that its own lock discipline (spl, critical
    section flags) holds. *)

type t

val create : ?name:string -> unit -> t
val id : t -> int
val name : t -> string

(** {1 Processor activation} *)

val activate : t -> cpu:int -> unit
(** The pmap is in use on the cpu (a thread of a task using this address
    space runs there): shootdowns must reach it. *)

val deactivate : t -> cpu:int -> unit

val active_cpus : t -> int list

(** {1 Mapping operations} *)

val enter : t -> va:int -> ppn:int -> prot:Tlb.prot -> unit
(** Install a translation (no shootdown needed: adding permissions or a
    fresh mapping cannot make a remote TLB stale in a harmful way for
    this model). *)

val remove : t -> va:int -> int option
(** Remove a translation, returning the physical page it mapped.
    Performs a TLB shootdown across the pmap's active cpus. *)

val protect : t -> va:int -> prot:Tlb.prot -> unit
(** Reduce protection; shoots down remote TLBs. *)

val translate : t -> va:int -> Tlb.entry option
(** MMU translation: per-cpu TLB first, then the page table (loading the
    TLB on the way). *)

val resident_count : t -> int

val remove_all : t -> unit
(** Tear down every mapping (address-space destruction), with a single
    flush-style shootdown. *)
