module K = Mach_ksync.Ksync

type t = { lock : K.Clock.t }

let create ?(name = "pmap-system") () =
  { lock = K.Clock.make ~name ~can_sleep:false () }

let forward t f =
  K.Clock.lock_read t.lock;
  match f () with
  | v ->
      K.Clock.lock_done t.lock;
      v
  | exception e ->
      K.Clock.lock_done t.lock;
      raise e

let reverse t f =
  K.Clock.lock_write t.lock;
  match f () with
  | v ->
      K.Clock.lock_done t.lock;
      v
  | exception e ->
      K.Clock.lock_done t.lock;
      raise e

let reads t = Mach_core.Lock_stats.reads (K.Clock.stats t.lock)
let writes t = Mach_core.Lock_stats.writes (K.Clock.stats t.lock)
