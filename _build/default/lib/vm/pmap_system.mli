(** The pmap system lock: the section 5 arbiter between the two orders in
    which pmap and pv-list locks must be acquired.

    The fault path needs pmap-then-pv (it knows the pmap and learns the
    physical page); the pageout path needs pv-then-pmap (it knows the
    physical page and learns the pmaps).  Rather than a single hierarchy,
    a third lock arbitrates: the forward order runs under a read lock, and
    a procedure holding the write lock "can assume exclusive access to the
    pv lists" and may therefore use the reverse order safely.

    The lock is a non-sleep (spin) complex lock: both paths run at splvm
    with interrupts masked and may not block.

    {!backout_reverse} is the alternative the paper also describes — a
    single attempt on the second lock with release-and-retry on failure —
    used by the E12 ablation. *)

type t

val create : ?name:string -> unit -> t

val forward : t -> (unit -> 'a) -> 'a
(** Run [f] under the read side: pmap-then-pv order allowed. *)

val reverse : t -> (unit -> 'a) -> 'a
(** Run [f] under the write side: exclusive; pv-then-pmap order allowed. *)

val reads : t -> int
val writes : t -> int
