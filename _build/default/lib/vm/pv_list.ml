module K = Mach_ksync.Ksync
module Spl = Mach_core.Spl
module Engine = Mach_sim.Sim_engine

type bucket = { block : K.Slock.t; mutable entries : (int * Pmap.t * int) list }

type t = { buckets : bucket array }

let n_buckets = 32

let create ?(name = "pv") () =
  {
    buckets =
      Array.init n_buckets (fun i ->
          {
            block =
              K.Slock.make
                ~name:(Printf.sprintf "%s.bucket%d" name i)
                ~spl:Spl.Splvm ();
            entries = [];
          });
  }

let bucket_of t ppn = t.buckets.(ppn land (n_buckets - 1))

let with_bucket t ppn f =
  let old = Engine.set_spl Spl.Splvm in
  let b = bucket_of t ppn in
  K.Slock.lock b.block;
  let finish () =
    K.Slock.unlock b.block;
    ignore (Engine.set_spl old)
  in
  match f b with
  | v ->
      finish ();
      v
  | exception e ->
      finish ();
      raise e

let enter t ~ppn ~pmap ~va =
  with_bucket t ppn (fun b -> b.entries <- (ppn, pmap, va) :: b.entries)

let remove t ~ppn ~pmap ~va =
  with_bucket t ppn (fun b ->
      b.entries <-
        List.filter
          (fun (p, pm, v) ->
            not (p = ppn && Pmap.id pm = Pmap.id pmap && v = va))
          b.entries)

let mappings t ~ppn =
  with_bucket t ppn (fun b ->
      List.filter_map
        (fun (p, pm, v) -> if p = ppn then Some (pm, v) else None)
        b.entries)

let remove_all_mappings t ~ppn =
  (* pv list first, then each pmap: the reverse order — legal only under
     the write side of the pmap system lock. *)
  let maps =
    with_bucket t ppn (fun b ->
        let mine, rest =
          List.partition (fun (p, _, _) -> p = ppn) b.entries
        in
        b.entries <- rest;
        mine)
  in
  List.iter (fun (_, pmap, va) -> ignore (Pmap.remove pmap ~va)) maps;
  List.length maps
