(** Physical-to-virtual (pv) lists: the inverted page table (paper,
    section 5).

    For each physical page, the pv list records every (pmap, virtual
    address) that maps it, so pageout can find and break all mappings of a
    page it wants to reclaim.  Buckets are protected by simple locks held
    at [splvm], like the pmap locks they interleave with; the two lock
    orders (pmap→pv on the fault path, pv→pmap on the pageout path) are
    arbitrated by {!Pmap_system}. *)

type t

val create : ?name:string -> unit -> t
val enter : t -> ppn:int -> pmap:Pmap.t -> va:int -> unit
val remove : t -> ppn:int -> pmap:Pmap.t -> va:int -> unit
val mappings : t -> ppn:int -> (Pmap.t * int) list

val remove_all_mappings : t -> ppn:int -> int
(** Break every mapping of the page via [Pmap.remove] (each one shooting
    down TLBs) and clear the list; returns how many mappings were broken.
    Caller must hold the reverse (write) side of the pmap system lock:
    this walks pv-then-pmap. *)
