type prot = Read_only | Read_write

let prot_to_string = function
  | Read_only -> "r"
  | Read_write -> "rw"

type entry = { ppn : int; prot : prot }

let max_cpus = 64

(* (pmap_id, va) -> entry, one table per cpu.  Only the owning cpu reads
   or writes its table (shootdown handlers run *on* the target cpu), so no
   locking is needed — faithfully to hardware. *)
let tlbs : (int * int, entry) Hashtbl.t array =
  Array.init max_cpus (fun _ -> Hashtbl.create 64)

let load ~cpu ~pmap_id ~va e = Hashtbl.replace tlbs.(cpu) (pmap_id, va) e
let lookup ~cpu ~pmap_id ~va = Hashtbl.find_opt tlbs.(cpu) (pmap_id, va)
let flush_entry ~cpu ~pmap_id ~va = Hashtbl.remove tlbs.(cpu) (pmap_id, va)

let flush_pmap ~cpu ~pmap_id =
  let doomed =
    Hashtbl.fold
      (fun (p, va) _ acc -> if p = pmap_id then (p, va) :: acc else acc)
      tlbs.(cpu) []
  in
  List.iter (Hashtbl.remove tlbs.(cpu)) doomed

let flush_all ~cpu = Hashtbl.reset tlbs.(cpu)

let entries ~cpu ~pmap_id =
  Hashtbl.fold
    (fun (p, _) _ acc -> if p = pmap_id then acc + 1 else acc)
    tlbs.(cpu) 0
