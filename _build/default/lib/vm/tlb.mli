(** Per-processor translation lookaside buffers (software model).

    Each virtual cpu caches (pmap, virtual address) -> (physical page,
    protection) translations.  A cpu loads its own TLB on use; {e no}
    hardware invalidates remote TLBs — that is exactly why TLB shootdown
    (paper, section 7 and reference [2]) exists. *)

type prot = Read_only | Read_write

val prot_to_string : prot -> string

type entry = { ppn : int; prot : prot }

val load : cpu:int -> pmap_id:int -> va:int -> entry -> unit
val lookup : cpu:int -> pmap_id:int -> va:int -> entry option
val flush_entry : cpu:int -> pmap_id:int -> va:int -> unit
val flush_pmap : cpu:int -> pmap_id:int -> unit
val flush_all : cpu:int -> unit
val entries : cpu:int -> pmap_id:int -> int
(** Number of cached translations for the pmap (diagnostics). *)
