(** TLB shootdown: barrier synchronization at interrupt level (paper,
    section 7; Black et al., ASPLOS 1989).

    When a mapping is changed or removed, remote processors may still hold
    the stale translation in their TLBs.  The initiator interrupts every
    processor using the pmap; {e all involved processors must enter the
    interrupt service routine before any can leave} (the barrier), the
    initiator then commits the page-table update, releases the
    participants, and everyone invalidates the stale entry.

    The section 7 special logic is implemented: a processor currently
    attempting to acquire or holding a pmap lock is removed from the set
    of processors that must participate in the barrier (it could never
    take the interrupt, since pmap locks are held at splvm) — the TLB
    update is still posted for it and it flushes when it re-enables
    interrupts.

    The whole protocol runs at [Splvm]; the initiator must have raised its
    priority before calling (the paper's rule that the lock and the
    interrupt priority go together).  Barrier synchronization at interrupt
    level "is a costly operation" — experiment E10 measures it. *)

val note_pmap_critical_enter : cpu:int -> unit
(** Mark the cpu as attempting/holding a pmap lock (called by [Pmap]). *)

val note_pmap_critical_exit : cpu:int -> unit

val in_pmap_critical : cpu:int -> bool

val shootdown :
  pmap_id:int ->
  targets:int list ->
  invalidate:(cpu:int -> unit) ->
  commit:(unit -> unit) ->
  unit
(** Run the protocol: interrupt [targets] (excluding the current cpu and
    any cpu in a pmap critical section), rendezvous, run [commit] (the
    page-table update) while everyone is parked in the barrier, release,
    and have every cpu (including the initiator and the lazily-interrupted
    pmap-critical ones) run [invalidate ~cpu] on its own cpu. *)

val shootdowns_performed : unit -> int
(** Cumulative count (diagnostics / benchmarks). *)
