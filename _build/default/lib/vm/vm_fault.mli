(** The page-fault path (paper, sections 5, 7.1).

    Lock choreography, following the section 5 conventions:
    - map lock (read) before object lock (type order: map before object);
    - object simple lock around page lookup/insertion, with the paging
      count held across the mapping step (the hybrid reference excluding
      termination);
    - pmap and pv-list updates in the forward order under the read side
      of the pmap system lock.

    On a physical-memory shortage the fault routine {e drops its lock} to
    wait for memory (section 7.1) and retries — under vm_map_pageable's
    recursive read lock this is precisely what leaves the outer read lock
    held and deadlocks against a pageout needing the write lock
    (experiment E6). *)

type fault_error = [ `Bad_address | `Object_terminated ]

val fault : ?wire:bool -> Vm_map.t -> va:int -> (int, fault_error) result
(** Resolve a fault at [va]: find the entry, find or zero-fill-allocate
    the page, map it, and return the physical page number.  [wire] also
    wires the page (the vm_map_pageable path).  Blocks (dropping all
    locks) while physical memory is short. *)

val faults_retried : unit -> int
(** How many faults had to wait for memory (diagnostics/benchmarks). *)
