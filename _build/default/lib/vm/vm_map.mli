(** Memory maps: the address-space data structure (paper, sections 3, 5).

    A map is a sorted list of entries, each mapping a virtual range onto a
    memory object, protected by a {e sleep} complex lock (most complex
    locks use the Sleep option, "including the lock on a memory map
    data structure", section 4).  Maps are passively destroyed when their
    last reference vanishes (they are {e not} deactivated, section 9).

    The section 5 type-order convention applies: always lock the memory
    map before the memory object. *)

type context = {
  pool : Vm_page.t;
  pv : Pv_list.t;
  psys : Pmap_system.t;
}
(** Machine-wide VM state shared by all maps. *)

val make_context : ?name:string -> pages:int -> unit -> context

type entry = {
  mutable va_start : int;
  mutable va_end : int; (* exclusive *)
  e_object : Vm_object.t;
  mutable e_offset : int; (* offset of va_start within the object *)
  mutable e_wired : bool; (* wiring requested for the whole entry *)
  mutable e_prot : Tlb.prot;
}

type t

val create : ?name:string -> context -> t
val name : t -> string
val context : t -> context
val pmap : t -> Pmap.t
val map_lock : t -> Mach_ksync.Ksync.Clock.t
val reference : t -> unit

val release : t -> unit
(** Drop a reference; the last one tears the map down (entries, mappings,
    pages, pmap) — passive destruction. *)

val version : t -> int
(** Incremented by every structural modification; the rewritten
    vm_map_pageable uses it to revalidate after relocking (section 7.1). *)

val bump_version : t -> unit

(** {1 Entry management (caller holds the map lock as noted)} *)

val vm_allocate : t -> size:int -> int
(** Allocate a fresh zero-filled region backed by a new memory object;
    returns its start address.  Takes the map lock for writing. *)

val vm_allocate_at : t -> va:int -> size:int -> (int, [ `Overlap ]) result

val vm_deallocate : t -> va:int -> (unit, [ `No_entry ]) result
(** Remove the entry containing [va]: break its mappings (with
    shootdowns), free its pages, release the object.  Takes the map lock
    for writing. *)

val lookup_entry : t -> va:int -> entry option
(** Caller must hold the map lock (read suffices). *)

val entries : t -> entry list
(** Caller must hold the map lock. *)

val size : t -> int
(** Total mapped bytes (pages in this model). *)

(** {1 Mapping helper (used by the fault path)} *)

val map_page : t -> entry -> va:int -> ppn:int -> unit
(** Install va -> ppn in the pmap and the pv list, in the forward
    (pmap-then-pv) order under the read side of the pmap system lock. *)

val unmap_page : t -> va:int -> ppn:int -> unit
(** Break one mapping in the forward order. *)
