module Engine = Mach_sim.Sim_engine
module K = Mach_ksync.Ksync
module Kobj = Mach_ksync.Kobj
module Port = Mach_ipc.Port

type page = {
  offset : int;
  mutable ppn : int;
  mutable wired : int;
  mutable dirty : bool;
}

type t = {
  obj : Kobj.t;
  pool : Vm_page.t;
  mutable osize : int;
  pages : (int, page) Hashtbl.t;
  paging : K.Ref.Gated.g;
  (* Pager ports, created lazily via the two-flag customized lock. *)
  mutable pager : Port.t option;
  mutable pager_request : Port.t option;
  mutable pager_name : Port.t option;
  mutable ports_created : bool;
  mutable ports_creating : bool;
  ports_event : K.Ev.event;
}

type Kobj.payload += Vm_object_payload of t

let create ?name ~pool ~size () =
  let obj = Kobj.make ?name Kobj.No_payload in
  let t =
    {
      obj;
      pool;
      osize = size;
      pages = Hashtbl.create 16;
      paging =
        K.Ref.Gated.make ~name:"paging" ~object_lock:(Kobj.object_lock obj) ();
      pager = None;
      pager_request = None;
      pager_name = None;
      ports_created = false;
      ports_creating = false;
      ports_event = K.Ev.fresh_event ();
    }
  in
  Kobj.set_payload obj (Vm_object_payload t);
  t

let name t = Kobj.name t.obj
let size t = t.osize
let kobj t = t.obj
let reference t = Kobj.reference t.obj
let release t = Kobj.release t.obj
let ref_count t = Kobj.ref_count t.obj
let lock t = Kobj.lock t.obj
let unlock t = Kobj.unlock t.obj
let with_lock t f = Kobj.with_lock t.obj f

let check_locked t what =
  if
    K.Slock.checking ()
    && not (K.Slock.held_by_self (Kobj.object_lock t.obj))
  then
    K.Machine.fatal
      (Printf.sprintf "vm_object %s: %s without the object lock" (name t)
         what)

let page_at t ~offset =
  check_locked t "page_at";
  Hashtbl.find_opt t.pages offset

let insert_page t ~offset ~ppn =
  check_locked t "insert_page";
  if Hashtbl.mem t.pages offset then
    K.Machine.fatal
      (Printf.sprintf "vm_object %s: duplicate page at offset %d" (name t)
         offset);
  let page = { offset; ppn; wired = 0; dirty = false } in
  Hashtbl.replace t.pages offset page;
  page

let remove_page t ~offset =
  check_locked t "remove_page";
  match Hashtbl.find_opt t.pages offset with
  | None -> None
  | Some page ->
      if page.wired > 0 then
        K.Machine.fatal
          (Printf.sprintf "vm_object %s: removing wired page at %d" (name t)
             offset);
      Hashtbl.remove t.pages offset;
      Some page.ppn

let resident_pages t =
  check_locked t "resident_pages";
  Hashtbl.fold (fun _ p acc -> p :: acc) t.pages []

let resident_count t = Hashtbl.length t.pages
let wire page = page.wired <- page.wired + 1

let unwire page =
  if page.wired <= 0 then
    K.Machine.fatal "vm_object: unwiring a page that is not wired";
  page.wired <- page.wired - 1

let paging_begin t =
  check_locked t "paging_begin";
  K.Ref.Gated.enter t.paging

let paging_end t =
  check_locked t "paging_end";
  K.Ref.Gated.exit t.paging

let paging_in_progress t = K.Ref.Gated.in_progress t.paging

(* The section 5 customized lock: the port allocations may block, so they
   run outside the object's simple lock, guarded by the two flags. *)
let ensure_pager_ports t =
  let rec wait_created () =
    lock t;
    if t.ports_created then begin
      unlock t;
      (Option.get t.pager, Option.get t.pager_request, Option.get t.pager_name)
    end
    else if t.ports_creating then begin
      (* Someone else is creating them: wait. *)
      ignore (K.Ev.thread_sleep t.ports_event (Kobj.object_lock t.obj));
      wait_created ()
    end
    else begin
      t.ports_creating <- true;
      unlock t;
      (* Blocking allocations, performed with no simple lock held. *)
      let mk suffix = Port.create ~name:(name t ^ suffix) () in
      Engine.cycles 200;
      Engine.pause ();
      let pager = mk ".pager" in
      let request = mk ".pager-request" in
      let pname = mk ".pager-name" in
      (* The port's object pointer holds its own reference (section 10). *)
      Kobj.reference t.obj;
      Port.set_object pager t.obj;
      lock t;
      t.pager <- Some pager;
      t.pager_request <- Some request;
      t.pager_name <- Some pname;
      t.ports_created <- true;
      t.ports_creating <- false;
      unlock t;
      ignore (K.Ev.thread_wakeup t.ports_event);
      (pager, request, pname)
    end
  in
  wait_created ()

let pager_ports_created t = t.ports_created

let terminate t =
  lock t;
  if Kobj.deactivate t.obj then begin
    (* Termination is excluded while paging operations are in progress:
       close the gate and drain (the hybrid count's lock half). *)
    K.Ref.Gated.close_and_drain t.paging;
    let doomed = Hashtbl.fold (fun _ p acc -> p :: acc) t.pages [] in
    Hashtbl.reset t.pages;
    let ports = [ t.pager; t.pager_request; t.pager_name ] in
    t.pager <- None;
    t.pager_request <- None;
    t.pager_name <- None;
    unlock t;
    List.iter (fun p -> Vm_page.free t.pool p.ppn) doomed;
    List.iter
      (function
        | Some p ->
            Port.destroy p;
            Port.release p
        | None -> ())
      ports
  end
  else unlock t

let is_active t = Kobj.is_active t.obj
