(** Memory objects (paper, sections 3, 5, 8).

    A memory object is represented by a data structure and three
    associated ports: two pager ports for kernel/pager communication and a
    name port serving as a unique identifier.  It carries {e two}
    independent reference counts (section 8): the ordinary count for the
    data structure's existence, and a paging-operations-in-progress count
    that is a hybrid of a reference and a lock — it excludes operations
    such as object termination that cannot run while paging is in
    progress.

    Pager-port creation exhibits the section 5 {e customized lock}: a
    simple lock cannot be held across the (blocking) port allocation, so
    two boolean flags set under the object's simple lock — "being
    created" and "created" — extend the simple lock's functionality and
    ensure the ports are created at most once. *)

type t

type page = {
  offset : int;
  mutable ppn : int;
  mutable wired : int;
  mutable dirty : bool;
}

val create : ?name:string -> pool:Vm_page.t -> size:int -> unit -> t
(** A new zero-filled memory object with one reference (the creator's).
    Pages are allocated from [pool] on demand (by the fault path) and
    returned to it on termination. *)

val name : t -> string
val size : t -> int
val kobj : t -> Mach_ksync.Kobj.t
val reference : t -> unit
val release : t -> unit
val ref_count : t -> int

(** {1 Locking} *)

val lock : t -> unit
val unlock : t -> unit
val with_lock : t -> (unit -> 'a) -> 'a

(** {1 Resident pages (caller holds the object lock)} *)

val page_at : t -> offset:int -> page option
val insert_page : t -> offset:int -> ppn:int -> page
val remove_page : t -> offset:int -> int option
(** Unhook the page, returning its ppn (the caller frees it). *)

val resident_pages : t -> page list
val resident_count : t -> int
val wire : page -> unit
val unwire : page -> unit

(** {1 Paging count (the hybrid, section 8)} *)

val paging_begin : t -> bool
(** Under the object lock: register a paging operation in progress; false
    when the object is terminating. *)

val paging_end : t -> unit
val paging_in_progress : t -> int

(** {1 Pager ports (the section 5 customized lock)} *)

val ensure_pager_ports : t -> Mach_ipc.Port.t * Mach_ipc.Port.t * Mach_ipc.Port.t
(** Create the pager, pager-request and pager-name ports at most once,
    without holding the object's simple lock across the (blocking)
    allocations.  Concurrent callers wait for the creator. *)

val pager_ports_created : t -> bool

(** {1 Termination} *)

val terminate : t -> unit
(** Deactivate: drain paging operations (new ones are refused), free all
    resident pages back to the pool, destroy the ports.  The data
    structure itself persists until the last reference is released. *)

val is_active : t -> bool
