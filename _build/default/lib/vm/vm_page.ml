module K = Mach_ksync.Ksync

type t = {
  lock : K.Slock.t;
  mutable free_pages : int list;
  total : int;
  mutable free_wanted : bool;
  page_event : K.Ev.event; (* allocators wait here *)
  shortage_event : K.Ev.event; (* the pageout daemon waits here *)
}

let create ?(name = "page-pool") ~pages () =
  {
    lock = K.Slock.make ~name:(name ^ ".lock") ();
    free_pages = List.init pages (fun i -> i);
    total = pages;
    free_wanted = false;
    page_event = K.Ev.fresh_event ();
    shortage_event = K.Ev.fresh_event ();
  }

let total t = t.total

let free_count t =
  K.Slock.with_lock t.lock (fun () -> List.length t.free_pages)

let alloc t =
  K.Slock.with_lock t.lock (fun () ->
      match t.free_pages with
      | [] -> None
      | p :: rest ->
          t.free_pages <- rest;
          Some p)

let alloc_blocking t =
  let rec attempt () =
    K.Slock.lock t.lock;
    match t.free_pages with
    | p :: rest ->
        t.free_pages <- rest;
        K.Slock.unlock t.lock;
        p
    | [] ->
        (* Signal the shortage, then sleep until a page is freed. *)
        t.free_wanted <- true;
        ignore (K.Ev.thread_wakeup t.shortage_event);
        ignore (K.Ev.thread_sleep t.page_event t.lock);
        attempt ()
  in
  attempt ()

let free t page =
  K.Slock.lock t.lock;
  if List.mem page t.free_pages || page < 0 || page >= t.total then begin
    K.Slock.unlock t.lock;
    K.Machine.fatal (Printf.sprintf "vm_page: bad free of page %d" page)
  end
  else begin
    t.free_pages <- page :: t.free_pages;
    t.free_wanted <- false;
    ignore (K.Ev.thread_wakeup t.page_event);
    K.Slock.unlock t.lock
  end

let free_wanted t = t.free_wanted

let wait_free_wanted t =
  K.Slock.lock t.lock;
  if t.free_wanted then K.Slock.unlock t.lock
  else ignore (K.Ev.thread_sleep t.shortage_event t.lock)

let shortage_event_kick t = ignore (K.Ev.thread_wakeup t.shortage_event)
