(** The physical page pool.

    Memory allocation "blocks if memory is not available" (paper,
    section 4) — this pool is where that blocking happens.
    [alloc_blocking] waits on the free-page event when the pool is empty
    and raises the free-wanted flag so a pageout daemon knows to reclaim;
    this wait is an ingredient of the vm_map_pageable deadlock of
    section 7.1 (experiment E6). *)

type t

val create : ?name:string -> pages:int -> unit -> t
(** A pool of physical pages numbered [0 .. pages-1], all free. *)

val total : t -> int
val free_count : t -> int

val alloc : t -> int option
(** Grab a free page, or [None] when the pool is empty.  Never blocks. *)

val alloc_blocking : t -> int
(** Grab a free page, blocking until one is available.  Must not be
    called with simple locks held (it may sleep). *)

val free : t -> int -> unit
(** Return a page; wakes blocked allocators. *)

val free_wanted : t -> bool
(** True when some allocator is (or was recently) blocked on an empty
    pool — the pageout daemon's trigger. *)

val wait_free_wanted : t -> unit
(** Pageout-daemon side: block until an allocator signals shortage. *)

val shortage_event_kick : t -> unit
(** Wake a pageout daemon blocked in {!wait_free_wanted} (used on
    shutdown of a scenario). *)
