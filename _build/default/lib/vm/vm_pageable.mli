(** vm_map_pageable: changing memory pageability — wiring (pinning) pages
    (paper, section 7.1).

    Two implementations, deliberately:

    {!wire_recursive} is the paper's original: acquire the map lock for
    writing, mark the entries wired, downgrade to a {e recursive} read
    lock and fault the pages in (each fault recursively read-locks the
    map).  If a fault cannot be satisfied because physical memory is
    short, the fault drops {e its} lock to wait — but the outer recursive
    read lock remains held, and if obtaining more memory requires a write
    lock on the same map (the pageout path), the system deadlocks.
    "While these deadlocks are difficult to cause, they have been
    observed in practice."

    {!wire_rewritten} is the Mach 3.0 rewrite the paper announces: mark
    the entries under the write lock, record the map version, release the
    lock {e completely}, fault the pages with no map lock held, then
    relock and revalidate against the version.  No recursive locks, no
    deadlock. *)

type wire_error = [ `Bad_address | `Object_terminated | `Map_changed ]

val wire_recursive :
  Vm_map.t -> va:int -> pages:int -> (unit, wire_error) result
(** The original, deadlock-prone implementation (kept for experiment E6;
    do not use in new code — mirroring the paper's own advice). *)

val wire_rewritten :
  Vm_map.t -> va:int -> pages:int -> (unit, wire_error) result
(** The section 7.1 rewrite.  [`Map_changed] is returned when a
    concurrent structural change invalidated the wiring (pageout bumping
    the version does not count; deallocation of the range does). *)

val unwire : Vm_map.t -> va:int -> pages:int -> unit
(** Undo wiring: unwire the pages and clear the entry flags. *)

val wired_page_count : Vm_map.t -> int
(** Number of resident wired pages in the map (diagnostics). *)
