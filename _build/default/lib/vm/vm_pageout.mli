(** The pageout path: reclaiming physical pages under memory pressure.

    In this model, reclaiming a page from a map requires the map's
    {e write} lock (the paper's "obtaining more memory requires a write
    lock on the same map", section 7.1) and then, for each victim page,
    breaking every mapping via the pv lists — the {e reverse} (pv-then-
    pmap) lock order, legal only under the write side of the pmap system
    lock (section 5). *)

val reclaim_from_map : Vm_map.t -> int
(** Steal every resident, unwired page from entries not marked wired:
    returns the number of pages freed back to the pool. *)

type daemon

val start_daemon : victims:Vm_map.t list -> daemon
(** Spawn a pageout daemon thread: it sleeps until an allocator signals a
    shortage on the context's pool, then reclaims from the victim maps.
    All victim maps must share one context. *)

val stop_daemon : daemon -> unit
(** Ask the daemon to exit and join it. *)

val pages_reclaimed : daemon -> int
