test/test_complex_lock.ml: Alcotest List Mach_ksync Mach_sim Printf Test_support
