test/test_complex_lock.mli:
