test/test_event.ml: Alcotest List Mach_core Mach_ksync Mach_sim Printf Test_support
