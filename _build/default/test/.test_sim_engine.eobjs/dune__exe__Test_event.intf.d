test/test_event.mli:
