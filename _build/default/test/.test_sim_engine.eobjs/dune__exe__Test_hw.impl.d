test/test_hw.ml: Alcotest Atomic Domain List Mach_core Mach_hw
