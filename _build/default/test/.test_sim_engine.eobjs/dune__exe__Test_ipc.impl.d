test/test_ipc.ml: Alcotest List Mach_ipc Mach_ksync Mach_sim Printf Test_support
