test/test_kern.ml: Alcotest List Mach_ipc Mach_kern Mach_kernel Mach_ksync Mach_sim Mach_vm Option Printf Test_support
