test/test_kern.mli:
