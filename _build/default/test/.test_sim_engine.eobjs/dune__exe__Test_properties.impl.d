test/test_properties.ml: Alcotest Gen Hashtbl List Mach_kern Mach_ksync Mach_sim Mach_vm QCheck QCheck_alcotest Test_support
