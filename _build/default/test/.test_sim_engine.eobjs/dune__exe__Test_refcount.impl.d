test/test_refcount.ml: Alcotest List Mach_core Mach_ksync Mach_sim Option String
