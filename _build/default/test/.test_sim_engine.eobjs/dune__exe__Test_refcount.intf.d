test/test_refcount.mli:
