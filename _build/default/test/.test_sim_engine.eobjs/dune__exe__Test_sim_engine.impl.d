test/test_sim_engine.ml: Alcotest Array List Mach_core Mach_sim Printf String
