test/test_simple_lock.ml: Alcotest Fun List Mach_core Mach_ksync Mach_sim Option Printf String
