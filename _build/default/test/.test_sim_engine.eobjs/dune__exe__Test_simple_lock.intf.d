test/test_simple_lock.mli:
