test/test_spl.ml: Alcotest List Mach_core QCheck QCheck_alcotest
