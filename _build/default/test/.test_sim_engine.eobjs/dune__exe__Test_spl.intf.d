test/test_spl.mli:
