test/test_timer.ml: Alcotest List Mach_kern Mach_sim Test_support
