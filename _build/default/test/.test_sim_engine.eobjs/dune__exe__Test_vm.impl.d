test/test_vm.ml: Alcotest Array Fun List Mach_core Mach_ipc Mach_ksync Mach_sim Mach_vm Option Test_support
