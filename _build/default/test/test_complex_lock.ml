(* Complex locks: Appendix B semantics — readers/writer with writers'
   priority, upgrades favored over writes, Sleep and Recursive options —
   and the invariants under schedule exploration. *)

module Engine = Mach_sim.Sim_engine
module Explore = Mach_sim.Sim_explore
module K = Mach_ksync.Ksync
module CL = Mach_ksync.Ksync.Clock
open Test_support

(* ------------------------------------------------------------------ *)

let test_read_read_share () =
  in_sim (fun () ->
      let l = CL.make ~can_sleep:true () in
      CL.lock_read l;
      CL.lock_read l |> ignore;
      check_int "two readers" 2 (CL.read_count l);
      CL.lock_done l;
      CL.lock_done l;
      check_int "drained" 0 (CL.read_count l))

let test_write_excludes () =
  in_sim (fun () ->
      let l = CL.make ~can_sleep:true () in
      CL.lock_write l;
      check_bool "held for write" true (CL.held_for_write l);
      check_bool "try read fails" false (CL.lock_try_read l);
      check_bool "try write fails" false (CL.lock_try_write l);
      CL.lock_done l;
      check_bool "released" false (CL.held_for_write l))

let test_rw_invariant_explored () =
  let scenario ~can_sleep () =
    let l = CL.make ~can_sleep () in
    let readers_in = ref 0 and writers_in = ref 0 in
    let reader () =
      for _ = 1 to 3 do
        CL.lock_read l;
        incr readers_in;
        if !writers_in > 0 then Engine.fatal "reader overlaps writer";
        Engine.pause ();
        decr readers_in;
        CL.lock_done l
      done
    in
    let writer () =
      for _ = 1 to 3 do
        CL.lock_write l;
        incr writers_in;
        if !writers_in > 1 then Engine.fatal "two writers";
        if !readers_in > 0 then Engine.fatal "writer overlaps reader";
        Engine.pause ();
        decr writers_in;
        CL.lock_done l
      done
    in
    let ts =
      [
        Engine.spawn ~name:"r1" reader;
        Engine.spawn ~name:"r2" reader;
        Engine.spawn ~name:"w1" writer;
        Engine.spawn ~name:"w2" writer;
      ]
    in
    List.iter Engine.join ts
  in
  List.iter
    (fun can_sleep ->
      let v =
        Explore.run ~cpus:4
          ~seeds:(List.init 25 (fun i -> i + 1))
          (scenario ~can_sleep)
      in
      check_bool
        (Printf.sprintf "rw invariant (can_sleep=%b)" can_sleep)
        true (Explore.all_completed v))
    [ true; false ]

let test_writers_priority () =
  (* Section 4: readers may not be added while a write request is
     outstanding, so the lock drains to the writer. *)
  ignore
    (Engine.run (fun () ->
         let l = CL.make ~name:"wp" ~can_sleep:true () in
         let late_reader_entered_before_writer = ref false in
         let writer_done = ref false in
         CL.lock_read l;
         let writer =
           Engine.spawn ~name:"writer" (fun () ->
               CL.lock_write l;
               writer_done := true;
               CL.lock_done l)
         in
         wait_until (fun () -> CL.pending_write_request l);
         let reader =
           Engine.spawn ~name:"late-reader" (fun () ->
               CL.lock_read l;
               if not !writer_done then
                 late_reader_entered_before_writer := true;
               CL.lock_done l)
         in
         (* the late reader blocks on the pending write request *)
         wait_until (fun () -> K.Ev.waiting_on reader <> None);
         CL.lock_done l;
         Engine.join writer;
         Engine.join reader;
         check_bool "late reader waited for writer" false
           !late_reader_entered_before_writer))

let test_no_priority_ablation_starves () =
  (* Ablation for E4: with writers' priority disabled, readers keep being
     admitted past the waiting writer as long as any reader holds the
     lock. *)
  ignore
    (Engine.run (fun () ->
         let l = CL.make ~name:"nowp" ~can_sleep:true () in
         CL.set_writers_priority l false;
         let writer_done = ref false in
         (* main holds a read lock throughout *)
         CL.lock_read l;
         let writer =
           Engine.spawn ~name:"writer" (fun () ->
               CL.lock_write l;
               writer_done := true;
               CL.lock_done l)
         in
         wait_until (fun () -> CL.pending_write_request l);
         (* new readers are still admitted: no priority *)
         let rounds = ref 0 in
         let r1 =
           Engine.spawn ~name:"r1" (fun () ->
               for _ = 1 to 20 do
                 CL.lock_read l;
                 incr rounds;
                 Engine.pause ();
                 CL.lock_done l
               done)
         in
         Engine.join r1;
         check_int "readers sailed past the waiting writer" 20 !rounds;
         check_bool "writer still starved" false !writer_done;
         CL.lock_done l;
         Engine.join writer;
         check_bool "writer ran once readers drained" true !writer_done))

let test_priority_admits_no_reader_past_request () =
  (* The mirrored positive test: with priority on, the late reader is NOT
     admitted even though the lock is only read-held. *)
  ignore
    (Engine.run (fun () ->
         let l = CL.make ~can_sleep:true () in
         CL.lock_read l;
         let writer =
           Engine.spawn ~name:"writer" (fun () ->
               CL.lock_write l;
               CL.lock_done l)
         in
         wait_until (fun () -> CL.pending_write_request l);
         check_bool "try_read refused during write request" false
           (CL.lock_try_read l);
         CL.lock_done l;
         Engine.join writer))

let test_upgrade_success_and_failure () =
  ignore
    (Engine.run (fun () ->
         let l = CL.make ~name:"up" ~can_sleep:true () in
         (* single reader upgrades successfully *)
         CL.lock_read l;
         check_bool "upgrade succeeds" false (CL.lock_read_to_write l);
         check_bool "now writer" true (CL.held_for_write_by_self l);
         CL.lock_done l;
         (* two readers race to upgrade: exactly one must fail, and the
            failed one loses its read lock *)
         CL.lock_read l;
         let other_failed = ref None in
         let other_reading = ref false in
         let other =
           Engine.spawn ~name:"other-upgrader" (fun () ->
               CL.lock_read l;
               other_reading := true;
               let f = CL.lock_read_to_write l in
               other_failed := Some f;
               if not f then CL.lock_done l)
         in
         wait_until (fun () -> !other_reading);
         let mine = CL.lock_read_to_write l in
         if not mine then CL.lock_done l;
         Engine.join other;
         (match !other_failed with
         | Some f -> check_bool "exactly one upgrade failed" true (f <> mine)
         | None -> Alcotest.fail "other upgrader never decided");
         check_bool "lock free at end" false (CL.held_for_write l);
         check_int "no readers left" 0 (CL.read_count l)))

let test_downgrade () =
  ignore
    (Engine.run (fun () ->
         let l = CL.make ~can_sleep:true () in
         CL.lock_write l;
         CL.lock_write_to_read l;
         check_int "one reader after downgrade" 1 (CL.read_count l);
         check_bool "no writer" false (CL.held_for_write l);
         check_bool "try read ok" true (CL.lock_try_read l);
         CL.lock_done l;
         CL.lock_done l))

let test_try_read_to_write_refuses_without_dropping () =
  ignore
    (Engine.run (fun () ->
         let l = CL.make ~can_sleep:true () in
         CL.lock_read l;
         let other =
           Engine.spawn (fun () ->
               CL.lock_read l;
               (* a real upgrade: waits for main's read to drain *)
               check_bool "other upgrade ok" false (CL.lock_read_to_write l);
               CL.lock_done l)
         in
         wait_until (fun () -> CL.pending_upgrade l);
         (* an upgrade would deadlock now: try refuses, read lock kept *)
         check_bool "try upgrade refused" false (CL.lock_try_read_to_write l);
         check_bool "read lock retained" true (CL.read_count l >= 1);
         CL.lock_done l;
         Engine.join other))

let test_recursive_write_and_read () =
  ignore
    (Engine.run (fun () ->
         let l = CL.make ~name:"rec" ~can_sleep:true () in
         CL.lock_write l;
         CL.lock_set_recursive l;
         CL.lock_write l;
         CL.lock_done l;
         CL.lock_read l;
         CL.lock_done l;
         CL.lock_clear_recursive l;
         CL.lock_done l;
         check_bool "fully released" false (CL.held_for_write l)))

let test_recursive_read_bypasses_pending_writer () =
  (* Section 4: the recursive holder's requests are not blocked by a
     pending write request. *)
  ignore
    (Engine.run (fun () ->
         let l = CL.make ~name:"rec2" ~can_sleep:true () in
         CL.lock_write l;
         CL.lock_set_recursive l;
         CL.lock_write_to_read l;
         let w =
           Engine.spawn ~name:"w" (fun () ->
               CL.lock_write l;
               CL.lock_done l)
         in
         wait_until (fun () -> CL.pending_write_request l);
         (* an ordinary reader is refused... *)
         let probe = ref true in
         let t = Engine.spawn (fun () -> probe := CL.lock_try_read l) in
         Engine.join t;
         check_bool "ordinary reader blocked" false !probe;
         (* ...but the recursive holder gets through *)
         CL.lock_read l;
         CL.lock_done l;
         CL.lock_clear_recursive l;
         CL.lock_done l;
         Engine.join w))

let test_recursion_without_option_panics () =
  match
    Engine.run_outcome (fun () ->
        let l = CL.make ~can_sleep:true () in
        CL.lock_write l;
        CL.lock_write l)
  with
  | Engine.Panicked msg ->
      check_bool "mentions recursion" true (contains msg "Recursive")
  | _ -> Alcotest.fail "double write without Recursive must panic"

let test_set_recursive_requires_write () =
  match
    Engine.run_outcome (fun () ->
        let l = CL.make ~can_sleep:true () in
        CL.lock_read l;
        CL.lock_set_recursive l)
  with
  | Engine.Panicked _ -> ()
  | _ -> Alcotest.fail "set_recursive without write hold must panic"

let test_sleep_lock_holder_may_block () =
  ignore
    (Engine.run (fun () ->
         let l = CL.make ~can_sleep:true () in
         let ev = K.Ev.fresh_event () in
         let holder =
           Engine.spawn ~name:"holder" (fun () ->
               CL.lock_write l;
               (* blocking while holding a Sleep lock is legal *)
               K.Ev.assert_wait ev;
               ignore (K.Ev.thread_block ());
               CL.lock_done l)
         in
         wait_until (fun () -> K.Ev.waiters_count ev = 1);
         ignore (K.Ev.thread_wakeup ev);
         Engine.join holder))

let test_spin_lock_holder_may_not_block () =
  match
    Engine.run_outcome (fun () ->
        let l = CL.make ~can_sleep:false () in
        let ev = K.Ev.fresh_event () in
        CL.lock_write l;
        K.Ev.assert_wait ev;
        ignore (K.Ev.thread_block ()))
  with
  | Engine.Panicked msg ->
      check_bool "names the rule" true (contains msg "Sleep")
  | _ -> Alcotest.fail "blocking with a non-sleep complex lock must panic"

let test_lock_sleepable_toggle () =
  ignore
    (Engine.run (fun () ->
         let l = CL.make ~can_sleep:false () in
         check_bool "spin mode" false (CL.can_sleep l);
         CL.lock_sleepable l true;
         check_bool "sleep mode" true (CL.can_sleep l);
         CL.lock_write l;
         CL.lock_done l))

let test_upgrade_favored_over_write () =
  (* Section 4: upgrades are favored over writes — with both pending, the
     upgrader must win. *)
  ignore
    (Engine.run (fun () ->
         let l = CL.make ~name:"fav" ~can_sleep:true () in
         let order = ref [] in
         CL.lock_read l;
         let writer =
           Engine.spawn ~name:"writer" (fun () ->
               CL.lock_write l;
               order := `Writer :: !order;
               CL.lock_done l)
         in
         wait_until (fun () -> CL.pending_write_request l);
         check_bool "upgrade won" false (CL.lock_read_to_write l);
         order := `Upgrader :: !order;
         CL.lock_done l;
         Engine.join writer;
         match List.rev !order with
         | [ `Upgrader; `Writer ] -> ()
         | _ -> Alcotest.fail "writer got in before the pending upgrade"))

let test_with_read_write_wrappers () =
  in_sim (fun () ->
      let l = CL.make ~can_sleep:true () in
      let v = CL.with_read l (fun () -> 17) in
      check_int "with_read result" 17 v;
      let v = CL.with_write l (fun () -> 23) in
      check_int "with_write result" 23 v;
      check_bool "released on exception" true
        (match CL.with_write l (fun () -> failwith "boom") with
        | exception Failure _ -> not (CL.held_for_write l)
        | _ -> false))

let () =
  Alcotest.run "complex_lock"
    [
      ( "multiple protocol",
        [
          Alcotest.test_case "readers share" `Quick test_read_read_share;
          Alcotest.test_case "writer excludes" `Quick test_write_excludes;
          Alcotest.test_case "writers' priority" `Quick
            test_writers_priority;
          Alcotest.test_case "priority refuses late reader" `Quick
            test_priority_admits_no_reader_past_request;
          Alcotest.test_case "ablation: no priority starves" `Quick
            test_no_priority_ablation_starves;
          Alcotest.test_case "invariant explored" `Slow
            test_rw_invariant_explored;
          Alcotest.test_case "wrappers" `Quick test_with_read_write_wrappers;
        ] );
      ( "upgrades",
        [
          Alcotest.test_case "upgrade success/failure" `Quick
            test_upgrade_success_and_failure;
          Alcotest.test_case "downgrade" `Quick test_downgrade;
          Alcotest.test_case "try upgrade keeps read lock" `Quick
            test_try_read_to_write_refuses_without_dropping;
          Alcotest.test_case "upgrade favored over write" `Quick
            test_upgrade_favored_over_write;
        ] );
      ( "recursive option",
        [
          Alcotest.test_case "recursive write+read" `Quick
            test_recursive_write_and_read;
          Alcotest.test_case "bypasses pending writer" `Quick
            test_recursive_read_bypasses_pending_writer;
          Alcotest.test_case "recursion w/o option panics" `Quick
            test_recursion_without_option_panics;
          Alcotest.test_case "set_recursive needs write" `Quick
            test_set_recursive_requires_write;
        ] );
      ( "sleep option",
        [
          Alcotest.test_case "sleep holder may block" `Quick
            test_sleep_lock_holder_may_block;
          Alcotest.test_case "spin holder may not block" `Quick
            test_spin_lock_holder_may_not_block;
          Alcotest.test_case "sleepable toggle" `Quick
            test_lock_sleepable_toggle;
        ] );
    ]
