(* The section 6 event-wait mechanism: assert_wait / thread_block /
   thread_wakeup / clear_wait, and the no-lost-wakeup atomicity property
   under schedule exploration. *)

module Engine = Mach_sim.Sim_engine
module Explore = Mach_sim.Sim_explore
module K = Mach_ksync.Ksync
module Ev = Mach_ksync.Ksync.Ev
module Wait = Mach_core.Event
open Test_support

(* ------------------------------------------------------------------ *)

let test_basic_sleep_wakeup () =
  let result = ref None in
  ignore
    (Engine.run (fun () ->
         let ev = Ev.fresh_event () in
         let sleeper =
           Engine.spawn ~name:"sleeper" (fun () ->
               Ev.assert_wait ev;
               result := Some (Ev.thread_block ()))
         in
         wait_until (fun () -> Ev.waiters_count ev = 1);
         ignore (Ev.thread_wakeup ev);
         Engine.join sleeper));
  match !result with
  | Some Wait.Awakened -> ()
  | _ -> Alcotest.fail "sleeper not awakened"

let test_canonical_wait_pattern_explored () =
  (* The defining property: a thread that asserts its wait *before*
     releasing the lock under which it checked the condition can never
     miss the wakeup, on any schedule. *)
  let v =
    Explore.run ~cpus:2
      ~seeds:(List.init 50 (fun i -> i + 1))
      (fun () ->
        let guard = K.Slock.make ~name:"guard" () in
        let ev = Ev.fresh_event () in
        let condition = ref false in
        let sleeper =
          Engine.spawn ~name:"sleeper" (fun () ->
              K.Slock.lock guard;
              if not !condition then begin
                (* assert_wait BEFORE releasing the lock: atomic with
                   respect to event occurrence *)
                Ev.assert_wait ev;
                K.Slock.unlock guard;
                ignore (Ev.thread_block ())
              end
              else K.Slock.unlock guard)
        in
        let waker =
          Engine.spawn ~name:"waker" (fun () ->
              K.Slock.lock guard;
              condition := true;
              ignore (Ev.thread_wakeup ev);
              K.Slock.unlock guard)
        in
        Engine.join waker;
        Engine.join sleeper)
  in
  check_bool "no schedule loses the wakeup" true (Explore.all_completed v)

let test_naive_wait_does_lose_wakeups () =
  (* Anti-test: checking the condition and then blocking without the
     assert_wait declaration races with the waker (this is the race the
     split design eliminates). *)
  match
    Explore.find_first_deadlock ~cpus:2 ~max_seeds:100 (fun () ->
        let flag = Engine.Cell.make ~name:"flag" 0 in
        let sleeper =
          Engine.spawn ~name:"sleeper" (fun () ->
              if Engine.Cell.get flag = 0 then
                (* window: the waker can fire entirely in here *)
                Engine.park ())
        in
        let waker =
          Engine.spawn ~name:"waker" (fun () ->
              Engine.Cell.set flag 1;
              (* wake only a *currently parked* sleeper: the naive
                 condition-then-block idiom *)
              ignore (Ev.clear_wait sleeper Wait.Awakened))
        in
        Engine.join waker;
        Engine.join sleeper)
  with
  | Some _ -> ()
  | None -> Alcotest.fail "naive wait should lose a wakeup on some schedule"

let test_wakeup_all_vs_one () =
  ignore
    (Engine.run (fun () ->
         let ev = Ev.fresh_event () in
         let woken = ref 0 in
         let sleepers =
           List.init 5 (fun i ->
               Engine.spawn ~name:(Printf.sprintf "s%d" i) (fun () ->
                   Ev.assert_wait ev;
                   ignore (Ev.thread_block ());
                   incr woken))
         in
         wait_until (fun () -> Ev.waiters_count ev = 5);
         check_bool "wake one" true (Ev.thread_wakeup_one ev);
         wait_until (fun () -> !woken = 1);
         check_int "four remain" 4 (Ev.waiters_count ev);
         check_int "wake rest" 4 (Ev.thread_wakeup ev);
         List.iter Engine.join sleepers;
         check_int "all woken" 5 !woken))

let test_wakeup_result_propagates () =
  let got = ref None in
  ignore
    (Engine.run (fun () ->
         let ev = Ev.fresh_event () in
         let s =
           Engine.spawn (fun () ->
               Ev.assert_wait ev;
               got := Some (Ev.thread_block ()))
         in
         wait_until (fun () -> Ev.waiters_count ev = 1);
         ignore (Ev.thread_wakeup ~result:Wait.Restart ev);
         Engine.join s));
  check_bool "restart result" true (!got = Some Wait.Restart)

let test_clear_wait_on_null_event () =
  (* Section 6: an implementation can block threads on the null event,
     from which only clear_wait can awaken them. *)
  let got = ref None in
  ignore
    (Engine.run (fun () ->
         let s =
           Engine.spawn ~name:"null-waiter" (fun () ->
               Ev.assert_wait Ev.null_event;
               got := Some (Ev.thread_block ()))
         in
         wait_until (fun () -> Ev.waiting_on s <> None);
         check_bool "cleared" true (Ev.clear_wait s Wait.Cleared);
         Engine.join s));
  check_bool "cleared result" true (!got = Some Wait.Cleared)

let test_interrupt_only_when_interruptible () =
  ignore
    (Engine.run (fun () ->
         let ev = Ev.fresh_event () in
         let s =
           Engine.spawn ~name:"uninterruptible" (fun () ->
               Ev.assert_wait ~interruptible:false ev;
               ignore (Ev.thread_block ()))
         in
         wait_until (fun () -> Ev.waiting_on s <> None);
         check_bool "interrupt refused" false (Ev.thread_interrupt s);
         ignore (Ev.thread_wakeup ev);
         Engine.join s;
         let s2 =
           Engine.spawn ~name:"interruptible" (fun () ->
               Ev.assert_wait ~interruptible:true ev;
               ignore (Ev.thread_block ()))
         in
         wait_until (fun () -> Ev.waiting_on s2 <> None);
         check_bool "interrupt honored" true (Ev.thread_interrupt s2);
         Engine.join s2))

let test_thread_sleep_releases_lock () =
  ignore
    (Engine.run (fun () ->
         let l = K.Slock.make ~name:"guard" () in
         let ev = Ev.fresh_event () in
         let s =
           Engine.spawn (fun () ->
               K.Slock.lock l;
               (* atomically release the lock and wait *)
               ignore (Ev.thread_sleep ev l))
         in
         wait_until (fun () -> Ev.waiting_on s <> None);
         (* The lock must come free while s is still waiting: thread_sleep
            released it before blocking.  (If it did not, s blocks holding
            the lock and the engine reports the deadlock.) *)
         wait_until (fun () -> not (K.Slock.is_locked l));
         check_bool "still waiting after releasing the lock" true
           (Ev.waiting_on s <> None);
         ignore (Ev.thread_wakeup ev);
         Engine.join s))

let test_double_assert_wait_panics () =
  match
    Engine.run_outcome (fun () ->
        let ev = Ev.fresh_event () in
        Ev.assert_wait ev;
        Ev.assert_wait ev)
  with
  | Engine.Panicked msg -> check_bool "fatal" true (contains msg "assert_wait")
  | _ -> Alcotest.fail "double assert_wait must panic"

let test_block_with_simple_lock_held_panics () =
  (* Appendix A: simple locks may not be held during blocking
     operations. *)
  match
    Engine.run_outcome (fun () ->
        let l = K.Slock.make () in
        let ev = Ev.fresh_event () in
        K.Slock.lock l;
        Ev.assert_wait ev;
        ignore (Ev.thread_block ()))
  with
  | Engine.Panicked msg ->
      check_bool "names the rule" true (contains msg "simple lock")
  | _ -> Alcotest.fail "blocking while holding a simple lock must panic"

let test_cancel_assert () =
  ignore
    (Engine.run (fun () ->
         let ev = Ev.fresh_event () in
         Ev.assert_wait ev;
         (* re-check shows the wait is unnecessary *)
         Ev.cancel_assert ();
         check_int "queue empty" 0 (Ev.waiters_count ev);
         (* a later wait cycle still works *)
         let s =
           Engine.spawn (fun () ->
               Ev.assert_wait ev;
               ignore (Ev.thread_block ()))
         in
         wait_until (fun () -> Ev.waiters_count ev = 1);
         ignore (Ev.thread_wakeup ev);
         Engine.join s))

let test_herd_no_lost_wakeups_explored () =
  (* N consumers sleep, a driver broadcasts until all are served: no
     schedule may strand a consumer. *)
  let v =
    Explore.run ~cpus:4
      ~seeds:(List.init 30 (fun i -> i + 1))
      (fun () ->
        let ev = Ev.fresh_event () in
        let served = Engine.Cell.make 0 in
        let consumers =
          List.init 4 (fun i ->
              Engine.spawn ~name:(Printf.sprintf "c%d" i) (fun () ->
                  Ev.assert_wait ev;
                  ignore (Ev.thread_block ());
                  ignore (Engine.Cell.fetch_and_add served 1)))
        in
        let rec drive () =
          if Engine.Cell.get served < 4 then begin
            ignore (Ev.thread_wakeup ev);
            Engine.pause ();
            drive ()
          end
        in
        drive ();
        List.iter Engine.join consumers)
  in
  check_bool "herd drained on every schedule" true (Explore.all_completed v)

let () =
  Alcotest.run "event"
    [
      ( "mechanism",
        [
          Alcotest.test_case "sleep/wakeup" `Quick test_basic_sleep_wakeup;
          Alcotest.test_case "wakeup all vs one" `Quick
            test_wakeup_all_vs_one;
          Alcotest.test_case "result propagates" `Quick
            test_wakeup_result_propagates;
          Alcotest.test_case "null event + clear_wait" `Quick
            test_clear_wait_on_null_event;
          Alcotest.test_case "interruptibility" `Quick
            test_interrupt_only_when_interruptible;
          Alcotest.test_case "thread_sleep releases lock" `Quick
            test_thread_sleep_releases_lock;
          Alcotest.test_case "cancel_assert" `Quick test_cancel_assert;
        ] );
      ( "design rules",
        [
          Alcotest.test_case "double assert_wait" `Quick
            test_double_assert_wait_panics;
          Alcotest.test_case "block holding simple lock" `Quick
            test_block_with_simple_lock_held_panics;
        ] );
      ( "atomicity",
        [
          Alcotest.test_case "canonical pattern race-free" `Quick
            test_canonical_wait_pattern_explored;
          Alcotest.test_case "naive wait loses wakeups" `Quick
            test_naive_wait_does_lose_wakeups;
          Alcotest.test_case "herd drained" `Slow
            test_herd_no_lost_wakeups_explored;
        ] );
    ]
