(* The native machine: the same machine-independent synchronization layer
   running on real OCaml 5 domains.  These tests exercise true parallelism
   (no simulator): mutual exclusion, readers/writer invariants, event
   wakeups and refcount exactness under real contention. *)

module HM = Mach_hw.Hw_machine
module HS = Mach_hw.Hw_sync
module Run = Mach_hw.Hw_run

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let domains = min 4 (Domain.recommended_domain_count ())

let test_cell_semantics () =
  let c = HM.Cell.make 5 in
  check_int "get" 5 (HM.Cell.get c);
  HM.Cell.set c 0;
  check_int "tas acquires" 0 (HM.Cell.test_and_set c);
  check_int "tas held" 1 (HM.Cell.test_and_set c);
  check_bool "cas" true (HM.Cell.compare_and_swap c ~expected:1 ~desired:9);
  check_int "faa" 9 (HM.Cell.fetch_and_add c 2);
  check_int "final" 11 (HM.Cell.get c)

let test_parallel_helper () =
  let results = Run.parallel 4 (fun i -> i * i) in
  Alcotest.(check (list int)) "results in order" [ 0; 1; 4; 9 ] results

let test_mutual_exclusion_native () =
  (* A non-atomic counter protected by the simple lock: any exclusion
     failure loses increments. *)
  List.iter
    (fun protocol ->
      let l = HS.Slock.make ~protocol () in
      let counter = ref 0 in
      let iters = 10_000 in
      ignore
        (Run.parallel_with_barrier domains (fun _ () ->
             for _ = 1 to iters do
               HS.Slock.lock l;
               counter := !counter + 1;
               HS.Slock.unlock l
             done));
      check_int
        (Mach_core.Spin.protocol_name protocol ^ " exclusion")
        (domains * iters) !counter)
    Mach_core.Spin.all_protocols

let test_try_lock_native () =
  let l = HS.Slock.make () in
  check_bool "try free" true (HS.Slock.try_lock l);
  (* another domain cannot take it *)
  let stolen = Run.parallel 1 (fun _ -> HS.Slock.try_lock l) in
  check_bool "held against another domain" false (List.hd stolen);
  HS.Slock.unlock l

let test_rw_invariant_native () =
  let l = HS.Clock.make ~can_sleep:true () in
  let readers = Atomic.make 0 in
  let writers = Atomic.make 0 in
  let violations = Atomic.make 0 in
  ignore
    (Run.parallel_with_barrier domains (fun d () ->
         for op = 1 to 2_000 do
           if (op + d) mod 10 = 0 then begin
             HS.Clock.lock_write l;
             let w = Atomic.fetch_and_add writers 1 in
             if w <> 0 || Atomic.get readers > 0 then
               ignore (Atomic.fetch_and_add violations 1);
             ignore (Atomic.fetch_and_add writers (-1));
             HS.Clock.lock_done l
           end
           else begin
             HS.Clock.lock_read l;
             ignore (Atomic.fetch_and_add readers 1);
             if Atomic.get writers > 0 then
               ignore (Atomic.fetch_and_add violations 1);
             ignore (Atomic.fetch_and_add readers (-1));
             HS.Clock.lock_done l
           end
         done));
  check_int "no reader/writer overlap" 0 (Atomic.get violations)

let test_event_wakeup_native () =
  (* N domains sleep on an event; the main domain wakes them all. *)
  let ev = HS.Ev.fresh_event () in
  let woken = Atomic.make 0 in
  let asleep = Atomic.make 0 in
  let sleepers =
    List.init domains (fun _ ->
        Domain.spawn (fun () ->
            HS.Ev.assert_wait ev;
            ignore (Atomic.fetch_and_add asleep 1);
            ignore (HS.Ev.thread_block ());
            ignore (Atomic.fetch_and_add woken 1)))
  in
  (* wait until all have *declared* their wait (being asleep is not
     required: a wakeup after assert_wait is never lost) *)
  while Atomic.get asleep < domains do
    Domain.cpu_relax ()
  done;
  let rec drain () =
    if Atomic.get woken < domains then begin
      ignore (HS.Ev.thread_wakeup ev);
      Domain.cpu_relax ();
      drain ()
    end
  in
  drain ();
  List.iter Domain.join sleepers;
  check_int "all woken" domains (Atomic.get woken)

let test_refcount_native () =
  let r = HS.Ref.make () in
  let iters = 20_000 in
  ignore
    (Run.parallel_with_barrier domains (fun _ () ->
         for _ = 1 to iters do
           HS.Ref.clone r;
           ignore (HS.Ref.release r)
         done));
  check_int "exact count" 1 (HS.Ref.count r)

let test_spl_tracking_native () =
  let old = HM.set_spl Mach_core.Spl.Splvm in
  check_bool "previous level returned" true
    (Mach_core.Spl.equal old Mach_core.Spl.Spl0
    || Mach_core.Spl.equal old (HM.get_spl ()) = false);
  check_bool "level recorded" true
    (Mach_core.Spl.equal (HM.get_spl ()) Mach_core.Spl.Splvm);
  ignore (HM.set_spl old)

let () =
  Alcotest.run "hw"
    [
      ( "machine",
        [
          Alcotest.test_case "cell semantics" `Quick test_cell_semantics;
          Alcotest.test_case "parallel helper" `Quick test_parallel_helper;
          Alcotest.test_case "spl tracking" `Quick test_spl_tracking_native;
        ] );
      ( "locks",
        [
          Alcotest.test_case "mutual exclusion (all protocols)" `Slow
            test_mutual_exclusion_native;
          Alcotest.test_case "try_lock across domains" `Quick
            test_try_lock_native;
          Alcotest.test_case "rw invariant" `Slow test_rw_invariant_native;
        ] );
      ( "events + refs",
        [
          Alcotest.test_case "event wakeup" `Quick test_event_wakeup_native;
          Alcotest.test_case "refcount exact" `Slow test_refcount_native;
        ] );
    ]
