(* Tasks, threads, the zone allocator, the kernel RPC path (section 10)
   and the section 7 interrupt-barrier scenarios (experiment E11). *)

module Engine = Mach_sim.Sim_engine
module Explore = Mach_sim.Sim_explore
module K = Mach_ksync.Ksync
module Kobj = Mach_ksync.Kobj
module Port = Mach_ipc.Port
module Task = Mach_kern.Task
module Zalloc = Mach_kern.Zalloc
module Kernel = Mach_kernel.Kernel
module Scenarios = Mach_kernel.Scenarios
module Vm = Mach_vm
open Test_support

let mk_ctx ?(pages = 64) () = Vm.Vm_map.make_context ~pages ()

(* ------------------------------------------------------------------ *)
(* Zone allocator                                                       *)
(* ------------------------------------------------------------------ *)

let test_zalloc_basics () =
  in_sim (fun () ->
      let z = Zalloc.create ~name:"z" ~capacity:3 () in
      let a = Zalloc.alloc z in
      let b = Zalloc.alloc z in
      check_int "in use" 2 (Zalloc.in_use z);
      Zalloc.free z a;
      Zalloc.free z b;
      check_int "back to empty" 0 (Zalloc.in_use z))

let test_zalloc_blocks_when_exhausted () =
  ignore
    (Engine.run (fun () ->
         let z = Zalloc.create ~capacity:1 () in
         let e = Zalloc.alloc z in
         let got = ref None in
         let waiter =
           Engine.spawn ~name:"allocator" (fun () ->
               got := Some (Zalloc.alloc z))
         in
         wait_until (fun () -> K.Ev.waiting_on waiter <> None);
         check_bool "blocked" true (!got = None);
         Zalloc.free z e;
         Engine.join waiter;
         check_bool "served" true (!got <> None);
         check_int "one sleep recorded" 1 (Zalloc.exhausted_waits z)))

(* ------------------------------------------------------------------ *)
(* Tasks and threads                                                    *)
(* ------------------------------------------------------------------ *)

let test_task_create_basics () =
  in_sim (fun () ->
      let ctx = mk_ctx () in
      let task = Task.create ~name:"t1" ctx in
      check_bool "active" true (Task.is_active task);
      check_int "no threads" 0 (Task.thread_count task);
      check_bool "has self port" true (Task.self_port task <> None);
      (* the self port translates back to the task *)
      (match Port.translate (Option.get (Task.self_port task)) with
      | Some obj ->
          check_bool "translation is the task" true
            (Kobj.uid obj = Kobj.uid (Task.kobj task));
          Kobj.release obj
      | None -> Alcotest.fail "self port does not translate");
      ignore (Task.terminate task))

let test_task_two_locks_in_parallel () =
  (* Section 5: the two task locks let task operations and ipc
     translations proceed in parallel — holding the task lock must not
     block a port-name lookup. *)
  in_sim (fun () ->
      let ctx = mk_ctx () in
      let task = Task.create ~name:"t2" ctx in
      let extra = Port.create ~name:"extra" () in
      Task.register_port_name task "extra" extra;
      Kobj.lock (Task.kobj task);
      (* task lock held: the ipc path still works *)
      (match Task.lookup_port_name task "extra" with
      | Some p ->
          check_int "same port" (Port.uid extra) (Port.uid p);
          Kobj.unlock (Task.kobj task);
          Port.release p
      | None ->
          Kobj.unlock (Task.kobj task);
          Alcotest.fail "lookup failed under task lock");
      ignore (Task.terminate task);
      Port.release extra)

let test_thread_lifecycle () =
  ignore
    (Engine.run (fun () ->
         let ctx = mk_ctx () in
         let task = Task.create ~name:"t3" ctx in
         let ran = ref false in
         (match
            Task.thread_create task (fun _th ->
                ran := true)
          with
         | Ok th ->
             Task.thread_join th;
             check_bool "thread body ran" true !ran;
             check_int "listed" 1 (Task.thread_count task);
             (match Task.thread_terminate th with
             | Ok () -> ()
             | Error `Deactivated -> Alcotest.fail "already dead?");
             check_int "delisted" 0 (Task.thread_count task)
         | Error `Deactivated -> Alcotest.fail "task inactive");
         ignore (Task.terminate task)))

let test_task_terminate_shutdown_protocol () =
  ignore
    (Engine.run (fun () ->
         let ctx = mk_ctx () in
         let task = Task.create ~name:"t4" ctx in
         let port = Option.get (Task.self_port task) in
         Port.reference port;
         (* keep our own right to observe *)
         let stopped = ref false in
         (match
            Task.thread_create task (fun th ->
                (* a long-running thread: interruptible wait loop *)
                let ev = K.Ev.fresh_event () in
                let continue = ref true in
                while !continue do
                  K.Ev.assert_wait ~interruptible:true ev;
                  ignore (K.Ev.thread_block ());
                  if not (Task.thread_is_active th) then continue := false
                done;
                stopped := true)
          with
         | Ok _ -> ()
         | Error `Deactivated -> Alcotest.fail "task inactive");
         (match Task.terminate task with
         | Ok () -> ()
         | Error `Deactivated -> Alcotest.fail "double terminate");
         wait_until (fun () -> !stopped);
         (* step 2 disabled translation *)
         check_bool "translation disabled" true (Port.translate port = None);
         check_bool "port dead" false (Port.is_active port);
         (* second terminate reports the deactivation *)
         check_bool "idempotent" true (Task.terminate task = Error `Deactivated);
         Port.release port))

let test_concurrent_terminate_once_explored () =
  (* Termination races are resolved by whoever gets the task lock first
     (section 9): exactly one terminator wins on every schedule. *)
  let v =
    Explore.run ~cpus:3
      ~seeds:(List.init 15 (fun i -> i + 1))
      (fun () ->
        let ctx = mk_ctx () in
        let task = Task.create ctx in
        let wins = Engine.Cell.make 0 in
        let ts =
          List.init 3 (fun _ ->
              Engine.spawn (fun () ->
                  match Task.terminate task with
                  | Ok () -> ignore (Engine.Cell.fetch_and_add wins 1)
                  | Error `Deactivated -> ()))
        in
        List.iter Engine.join ts;
        if Engine.Cell.get wins <> 1 then
          Engine.fatal "terminate won a wrong number of times")
  in
  check_bool "exactly one winner on all schedules" true
    (Explore.all_completed v)

(* ------------------------------------------------------------------ *)
(* The kernel RPC path                                                  *)
(* ------------------------------------------------------------------ *)

let test_kernel_boot_and_null_rpc () =
  ignore
    (Engine.run (fun () ->
         let kernel = Kernel.start ~pages:32 () in
         (match Kernel.rpc_null kernel with
         | Ok () -> ()
         | Error e -> Alcotest.fail ("null rpc: " ^ e));
         Kernel.shutdown kernel))

let test_kernel_task_lifecycle_via_rpc () =
  ignore
    (Engine.run (fun () ->
         let kernel = Kernel.start ~pages:32 () in
         (match Kernel.rpc_task_create kernel with
         | Error e -> Alcotest.fail ("task_create: " ^ e)
         | Ok task_port -> (
             (* allocate and wire memory in the new task, via RPC *)
             (match Kernel.rpc_vm_allocate task_port ~size:4 with
             | Error e -> Alcotest.fail ("vm_allocate: " ^ e)
             | Ok va -> (
                 match Kernel.rpc_vm_wire task_port ~va ~pages:2 with
                 | Ok () -> ()
                 | Error e -> Alcotest.fail ("vm_wire: " ^ e)));
             (* terminate through the port (consumes the kernel-side
                object reference, Mach 3.0 style) *)
             (match Kernel.rpc_task_terminate task_port with
             | Ok () -> ()
             | Error e -> Alcotest.fail ("task_terminate: " ^ e));
             (* the task port is now dead: further operations fail *)
             match Kernel.rpc_vm_allocate task_port ~size:1 with
             | Error _ -> Port.release task_port
             | Ok _ -> Alcotest.fail "operation on terminated task succeeded"));
         Kernel.shutdown kernel))

let test_null_rpc_workload () =
  ignore
    (Engine.run (fun () ->
         let kernel = Kernel.start ~pages:32 () in
         Scenarios.null_rpc_workload kernel ~clients:3 ~calls_each:5;
         Kernel.shutdown kernel))

(* ------------------------------------------------------------------ *)
(* Locking granularity scenarios (E3 building block)                    *)
(* ------------------------------------------------------------------ *)

let test_granularity_workloads_complete () =
  List.iter
    (fun g ->
      ignore
        (Engine.run
           ~cfg:
             {
               Mach_sim.Sim_config.default with
               Mach_sim.Sim_config.cpus = 4;
             }
           (fun () ->
             Scenarios.object_ops_workload g ~objects:8 ~workers:4
               ~ops_per_worker:10)))
    [ Scenarios.Coarse; Scenarios.Fine; Scenarios.Master_funnel ]

let test_fine_beats_coarse_in_makespan () =
  let makespan g =
    let stats =
      Engine.run
        ~cfg:
          { Mach_sim.Sim_config.default with Mach_sim.Sim_config.cpus = 8 }
        (fun () ->
          Scenarios.object_ops_workload g ~objects:16 ~workers:8
            ~ops_per_worker:20)
    in
    stats.Engine.makespan
  in
  let coarse = makespan Scenarios.Coarse in
  let fine = makespan Scenarios.Fine in
  check_bool
    (Printf.sprintf "fine (%d) beats coarse (%d)" fine coarse)
    true (fine < coarse)

(* ------------------------------------------------------------------ *)
(* The section 7 interrupt-barrier deadlock (E11)                       *)
(* ------------------------------------------------------------------ *)

let test_inconsistent_spl_deadlocks () =
  match
    Explore.find_first_deadlock ~cpus:3 ~max_seeds:60
      (Scenarios.interrupt_barrier_scenario ~disciplined:false)
  with
  | Some (_seed, report) ->
      check_bool "P2 or P3 named in the report" true
        (contains report "spinning")
  | None ->
      Alcotest.fail
        "inconsistent interrupt protection should deadlock on some schedule"

let test_same_spl_rule_prevents_deadlock () =
  let v =
    Explore.run ~cpus:3
      ~seeds:(List.init 60 (fun i -> i + 1))
      (Scenarios.interrupt_barrier_scenario ~disciplined:true)
  in
  check_bool "no schedule deadlocks under the same-spl rule" true
    (Explore.all_completed v)

let () =
  Alcotest.run "kern"
    [
      ( "zalloc",
        [
          Alcotest.test_case "basics" `Quick test_zalloc_basics;
          Alcotest.test_case "blocks when exhausted" `Quick
            test_zalloc_blocks_when_exhausted;
        ] );
      ( "tasks",
        [
          Alcotest.test_case "create" `Quick test_task_create_basics;
          Alcotest.test_case "two locks in parallel" `Quick
            test_task_two_locks_in_parallel;
          Alcotest.test_case "thread lifecycle" `Quick test_thread_lifecycle;
          Alcotest.test_case "shutdown protocol" `Quick
            test_task_terminate_shutdown_protocol;
          Alcotest.test_case "terminate exactly once" `Quick
            test_concurrent_terminate_once_explored;
        ] );
      ( "kernel rpc",
        [
          Alcotest.test_case "boot + null rpc" `Quick
            test_kernel_boot_and_null_rpc;
          Alcotest.test_case "task lifecycle via rpc" `Quick
            test_kernel_task_lifecycle_via_rpc;
          Alcotest.test_case "null rpc workload" `Quick
            test_null_rpc_workload;
        ] );
      ( "granularity",
        [
          Alcotest.test_case "all variants complete" `Quick
            test_granularity_workloads_complete;
          Alcotest.test_case "fine beats coarse" `Quick
            test_fine_beats_coarse_in_makespan;
        ] );
      ( "interrupt barrier (section 7)",
        [
          Alcotest.test_case "inconsistent spl deadlocks" `Quick
            test_inconsistent_spl_deadlocks;
          Alcotest.test_case "same-spl rule prevents it" `Slow
            test_same_spl_rule_prevents_deadlock;
        ] );
    ]
