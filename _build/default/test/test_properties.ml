(* Model-based property tests (qcheck): random operation sequences
   executed against the real modules and simple reference models in
   lockstep.  These run single-threaded inside the simulator (concurrency
   properties live in the exploration tests); what they pin down is the
   sequential semantics of each protocol. *)

module Engine = Mach_sim.Sim_engine
module K = Mach_ksync.Ksync
module Zalloc = Mach_kern.Zalloc
module Vm_page = Mach_vm.Vm_page
open Test_support

let prop name gen f = QCheck.Test.make ~count:100 ~name gen f

(* ------------------------------------------------------------------ *)
(* Zone allocator vs a set model                                        *)
(* ------------------------------------------------------------------ *)

let zalloc_ops_gen =
  QCheck.(list_of_size (Gen.int_range 1 60) (int_range 0 2))
  (* 0 = try_alloc, 1 = free one allocated element, 2 = query in_use *)

let zalloc_conformance ops =
  in_sim (fun () ->
      let capacity = 5 in
      let z = Zalloc.create ~capacity () in
      let model = Hashtbl.create 8 in
      List.for_all
        (fun op ->
          match op with
          | 0 -> (
              match Zalloc.try_alloc z with
              | Some e ->
                  (* must be fresh and capacity respected *)
                  let fresh = not (Hashtbl.mem model e) in
                  Hashtbl.replace model e ();
                  fresh && Hashtbl.length model <= capacity
              | None -> Hashtbl.length model = capacity)
          | 1 -> (
              match Hashtbl.fold (fun e () _ -> Some e) model None with
              | Some e ->
                  Zalloc.free z e;
                  Hashtbl.remove model e;
                  true
              | None -> true)
          | _ -> Zalloc.in_use z = Hashtbl.length model)
        ops)

(* ------------------------------------------------------------------ *)
(* Page pool vs a counter model                                         *)
(* ------------------------------------------------------------------ *)

let pool_conformance ops =
  in_sim (fun () ->
      let pages = 6 in
      let pool = Vm_page.create ~pages () in
      let held = ref [] in
      List.for_all
        (fun op ->
          match op with
          | 0 -> (
              match Vm_page.alloc pool with
              | Some p ->
                  let fresh = not (List.mem p !held) in
                  held := p :: !held;
                  fresh
              | None -> List.length !held = pages)
          | 1 -> (
              match !held with
              | p :: rest ->
                  Vm_page.free pool p;
                  held := rest;
                  true
              | [] -> true)
          | _ -> Vm_page.free_count pool = pages - List.length !held)
        ops)

(* ------------------------------------------------------------------ *)
(* Refcount balance                                                     *)
(* ------------------------------------------------------------------ *)

let refcount_balance clones =
  in_sim (fun () ->
      let r = K.Ref.make () in
      List.iter (fun () -> K.Ref.clone r) (List.init clones (fun _ -> ()));
      let ok_count = K.Ref.count r = clones + 1 in
      (* release all clones: never `Last while the creator ref remains *)
      let all_live =
        List.for_all
          (fun () -> K.Ref.release r = `Live)
          (List.init clones (fun _ -> ()))
      in
      ok_count && all_live && K.Ref.release r = `Last)

(* ------------------------------------------------------------------ *)
(* Complex lock vs a readers/writer state model (single thread, so only
   non-blocking transitions are generated)                              *)
(* ------------------------------------------------------------------ *)

type rw_model = { mutable m_readers : int; mutable m_writer : bool }

let rw_conformance script =
  in_sim (fun () ->
      let l = K.Clock.make ~can_sleep:true () in
      let m = { m_readers = 0; m_writer = false } in
      (* each script element picks among the currently-legal ops *)
      List.for_all
        (fun choice ->
          let legal =
            List.concat
              [
                (if (not m.m_writer) && m.m_readers = 0 then
                   [
                     (fun () ->
                       K.Clock.lock_write l;
                       m.m_writer <- true;
                       true);
                   ]
                 else []);
                (if not m.m_writer then
                   [
                     (fun () ->
                       K.Clock.lock_read l;
                       m.m_readers <- m.m_readers + 1;
                       true);
                   ]
                 else []);
                (if m.m_writer then
                   [
                     (fun () ->
                       K.Clock.lock_done l;
                       m.m_writer <- false;
                       true);
                     (fun () ->
                       K.Clock.lock_write_to_read l;
                       m.m_writer <- false;
                       m.m_readers <- 1;
                       true);
                   ]
                 else []);
                (if m.m_readers > 0 && not m.m_writer then
                   [
                     (fun () ->
                       K.Clock.lock_done l;
                       m.m_readers <- m.m_readers - 1;
                       true);
                   ]
                 else []);
                (if m.m_readers = 1 && not m.m_writer then
                   [
                     (fun () ->
                       (* single reader: upgrade always succeeds *)
                       let failed = K.Clock.lock_read_to_write l in
                       m.m_readers <- 0;
                       m.m_writer <- true;
                       not failed);
                   ]
                 else []);
              ]
          in
          let conforms =
            match legal with
            | [] -> true
            | ops -> (List.nth ops (choice mod List.length ops)) ()
          in
          (* observable state must agree with the model after every op *)
          conforms
          && K.Clock.read_count l = m.m_readers
          && K.Clock.held_for_write l = m.m_writer
          && K.Clock.lock_try_write l
             = ((not m.m_writer) && m.m_readers = 0)
          && (* undo the probe if it succeeded *)
          (if (not m.m_writer) && m.m_readers = 0 then begin
             K.Clock.lock_done l;
             true
           end
           else true))
        script)

(* ------------------------------------------------------------------ *)
(* Event ids                                                            *)
(* ------------------------------------------------------------------ *)

let fresh_events_unique n =
  in_sim (fun () ->
      let evs = List.init n (fun _ -> K.Ev.fresh_event ()) in
      List.length (List.sort_uniq compare evs) = n
      && List.for_all (fun e -> e <> K.Ev.null_event) evs)

let wakeup_no_waiters_is_zero ev =
  in_sim (fun () -> K.Ev.thread_wakeup (abs ev + 1) = 0)

(* ------------------------------------------------------------------ *)

let qcheck_cases =
  List.map QCheck_alcotest.to_alcotest
    [
      prop "zalloc conforms to set model" zalloc_ops_gen zalloc_conformance;
      prop "page pool conforms to counter model" zalloc_ops_gen
        pool_conformance;
      prop "refcount balance" QCheck.(int_range 0 30) refcount_balance;
      prop "complex lock conforms to rw model"
        QCheck.(list_of_size (Gen.int_range 1 80) (int_range 0 5))
        rw_conformance;
      prop "fresh events unique" QCheck.(int_range 1 100) fresh_events_unique;
      prop "wakeup with no waiters wakes none" QCheck.int
        wakeup_no_waiters_is_zero;
    ]

let () = Alcotest.run "properties" [ ("models", qcheck_cases) ]
