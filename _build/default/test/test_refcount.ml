(* Reference counting (section 8), gated (paging) counts, deactivation
   (section 9), and the kernel-object base. *)

module Engine = Mach_sim.Sim_engine
module Explore = Mach_sim.Sim_explore
module K = Mach_ksync.Ksync
module Kobj = Mach_ksync.Kobj
module Deact = Mach_core.Deactivate

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec at i = i + m <= n && (String.sub s i m = sub || at (i + 1)) in
  m = 0 || at 0

let in_sim f =
  let result = ref None in
  ignore (Engine.run (fun () -> result := Some (f ())));
  Option.get !result

(* ------------------------------------------------------------------ *)

let test_create_clone_release () =
  in_sim (fun () ->
      let r = K.Ref.make ~name:"r" () in
      check_int "creation reference" 1 (K.Ref.count r);
      K.Ref.clone r;
      K.Ref.clone r;
      check_int "after clones" 3 (K.Ref.count r);
      check_bool "not last" true (K.Ref.release r = `Live);
      check_bool "not last" true (K.Ref.release r = `Live);
      check_bool "last" true (K.Ref.release r = `Last);
      check_int "zero" 0 (K.Ref.count r))

let test_clone_from_zero_panics () =
  match
    Engine.run_outcome (fun () ->
        let r = K.Ref.make ~name:"dead" () in
        ignore (K.Ref.release r);
        K.Ref.clone r)
  with
  | Engine.Panicked msg ->
      check_bool "no resurrection" true (contains msg "existing reference")
  | _ -> Alcotest.fail "cloning a dead object must panic"

let test_double_release_panics () =
  match
    Engine.run_outcome (fun () ->
        let r = K.Ref.make () in
        ignore (K.Ref.release r);
        ignore (K.Ref.release r))
  with
  | Engine.Panicked msg ->
      check_bool "double free" true (contains msg "double free")
  | _ -> Alcotest.fail "double release must panic"

let test_release_under_simple_lock_panics () =
  (* Section 8: releasing may block, so not under simple locks. *)
  match
    Engine.run_outcome (fun () ->
        let l = K.Slock.make () in
        let r = K.Ref.make () in
        K.Slock.lock l;
        ignore (K.Ref.release r))
  with
  | Engine.Panicked msg ->
      check_bool "names the rule" true (contains msg "simple lock")
  | _ -> Alcotest.fail "release under a simple lock must panic"

let test_release_between_assert_and_block_panics () =
  match
    Engine.run_outcome (fun () ->
        let r = K.Ref.make () in
        let ev = K.Ev.fresh_event () in
        K.Ev.assert_wait ev;
        ignore (K.Ref.release r))
  with
  | Engine.Panicked msg ->
      check_bool "names the rule" true (contains msg "assert_wait")
  | _ -> Alcotest.fail "release between assert_wait and block must panic"

let test_clone_under_lock_is_legal () =
  in_sim (fun () ->
      (* acquiring a reference never blocks, so it is legal under locks *)
      let l = K.Slock.make () in
      let r = K.Ref.make () in
      K.Slock.lock l;
      K.Ref.clone r;
      K.Slock.unlock l;
      ignore (K.Ref.release r);
      check_int "balanced" 1 (K.Ref.count r))

let test_release_not_last () =
  in_sim (fun () ->
      let l = K.Slock.make () in
      let r = K.Ref.make () in
      K.Ref.clone r;
      (* holding another reference, the drop cannot be last: exempt from
         the blocking-context rules *)
      K.Slock.lock l;
      K.Ref.release_not_last r;
      K.Slock.unlock l;
      check_int "one left" 1 (K.Ref.count r))

let test_refcount_exact_under_contention () =
  let v =
    Explore.run ~cpus:4
      ~seeds:(List.init 20 (fun i -> i + 1))
      (fun () ->
        let r = K.Ref.make () in
        let ts =
          List.init 4 (fun _ ->
              Engine.spawn (fun () ->
                  for _ = 1 to 10 do
                    K.Ref.clone r
                  done;
                  for _ = 1 to 10 do
                    ignore (K.Ref.release r)
                  done))
        in
        List.iter Engine.join ts;
        if K.Ref.count r <> 1 then Engine.fatal "refcount drifted")
  in
  check_bool "exact count on all schedules" true (Explore.all_completed v)

(* ------------------------------------------------------------------ *)
(* Gated counts (the memory object's paging count hybrid)              *)
(* ------------------------------------------------------------------ *)

let test_gated_enter_exit () =
  in_sim (fun () ->
      let l = K.Slock.make ~name:"obj" () in
      let g = K.Ref.Gated.make ~name:"paging" ~object_lock:l () in
      K.Slock.lock l;
      check_bool "enter" true (K.Ref.Gated.enter g);
      check_bool "enter again" true (K.Ref.Gated.enter g);
      check_int "two in progress" 2 (K.Ref.Gated.in_progress g);
      K.Ref.Gated.exit g;
      K.Ref.Gated.exit g;
      check_int "drained" 0 (K.Ref.Gated.in_progress g);
      K.Slock.unlock l)

let test_gated_close_excludes_new_entries () =
  ignore
    (Engine.run (fun () ->
         let l = K.Slock.make ~name:"obj" () in
         let g = K.Ref.Gated.make ~object_lock:l () in
         let terminated = ref false in
         (* a paging operation in progress *)
         K.Slock.lock l;
         check_bool "paging starts" true (K.Ref.Gated.enter g);
         K.Slock.unlock l;
         let terminator =
           Engine.spawn ~name:"terminator" (fun () ->
               K.Slock.lock l;
               (* termination cannot proceed while paging is in progress *)
               K.Ref.Gated.close_and_drain g;
               terminated := true;
               K.Slock.unlock l)
         in
         for _ = 1 to 300 do
           Engine.pause ()
         done;
         check_bool "terminator waits for paging" false !terminated;
         (* paging completes *)
         K.Slock.lock l;
         K.Ref.Gated.exit g;
         K.Slock.unlock l;
         Engine.join terminator;
         check_bool "terminated after drain" true !terminated;
         (* and new paging operations are refused *)
         K.Slock.lock l;
         check_bool "gate closed" false (K.Ref.Gated.enter g);
         K.Ref.Gated.reopen g;
         check_bool "reopened" true (K.Ref.Gated.enter g);
         K.Ref.Gated.exit g;
         K.Slock.unlock l))

let test_gated_requires_object_lock () =
  match
    Engine.run_outcome (fun () ->
        let l = K.Slock.make () in
        let g = K.Ref.Gated.make ~object_lock:l () in
        ignore (K.Ref.Gated.enter g))
  with
  | Engine.Panicked msg ->
      check_bool "lock required" true (contains msg "object lock")
  | _ -> Alcotest.fail "gated ops without the object lock must panic"

(* ------------------------------------------------------------------ *)
(* Deactivation                                                        *)
(* ------------------------------------------------------------------ *)

let test_deactivate_basics () =
  let d = Deact.make () in
  check_bool "active" true (Deact.is_active d);
  check_bool "check ok" true (Deact.check d = Ok ());
  check_bool "first deactivate" true (Deact.deactivate d);
  check_bool "second deactivate" false (Deact.deactivate d);
  check_bool "check fails" true (Deact.check d = Error `Deactivated);
  check_bool "guard fails" true (Deact.guard d (fun () -> 1) = Error `Deactivated)

(* ------------------------------------------------------------------ *)
(* Kernel objects                                                      *)
(* ------------------------------------------------------------------ *)

type Kobj.payload += Test_payload of int

let test_kobj_lifecycle () =
  in_sim (fun () ->
      let destroyed = ref false in
      let o =
        Kobj.make ~name:"obj"
          ~destroy:(fun _ -> destroyed := true)
          (Test_payload 42)
      in
      check_int "creation ref" 1 (Kobj.ref_count o);
      Kobj.reference o;
      Kobj.release o;
      check_bool "still alive" false !destroyed;
      (match Kobj.payload o with
      | Test_payload 42 -> ()
      | _ -> Alcotest.fail "payload lost");
      Kobj.release o;
      check_bool "destroyed on last release" true !destroyed)

let test_kobj_deactivation_protocol () =
  in_sim (fun () ->
      let o = Kobj.make ~name:"term" Kobj.No_payload in
      (* an operation checks activity under the object lock *)
      Kobj.with_lock o (fun () ->
          check_bool "active" true (Kobj.is_active o));
      (* termination: lock, set deactivated, unlock (section 10) *)
      Kobj.with_lock o (fun () ->
          check_bool "transition" true (Kobj.deactivate o));
      (* later operations fail but the data structure persists *)
      Kobj.with_lock o (fun () ->
          check_bool "inactive" false (Kobj.is_active o);
          check_bool "check reports" true
            (Kobj.check_active o = Error `Deactivated));
      check_int "refs unaffected" 1 (Kobj.ref_count o);
      Kobj.release o)

let test_kobj_deactivate_requires_lock () =
  match
    Engine.run_outcome (fun () ->
        let o = Kobj.make Kobj.No_payload in
        ignore (Kobj.deactivate o))
  with
  | Engine.Panicked msg ->
      check_bool "lock required" true (contains msg "object lock")
  | _ -> Alcotest.fail "deactivate without the object lock must panic"

let test_kobj_concurrent_ref_release_explored () =
  let v =
    Explore.run ~cpus:4
      ~seeds:(List.init 20 (fun i -> i + 1))
      (fun () ->
        let destroyed = Engine.Cell.make 0 in
        let o =
          Kobj.make ~name:"shared"
            ~destroy:(fun _ -> ignore (Engine.Cell.fetch_and_add destroyed 1))
            Kobj.No_payload
        in
        (* give each worker its own reference up front *)
        let n = 4 in
        for _ = 2 to n do
          Kobj.reference o
        done;
        let ts =
          List.init n (fun _ ->
              Engine.spawn (fun () ->
                  Kobj.reference o;
                  Engine.pause ();
                  Kobj.release o;
                  Kobj.release o))
        in
        List.iter Engine.join ts;
        if Engine.Cell.get destroyed <> 1 then
          Engine.fatal "destructor ran a wrong number of times")
  in
  check_bool "destroyed exactly once on all schedules" true
    (Explore.all_completed v)

let () =
  Alcotest.run "refcount"
    [
      ( "counts",
        [
          Alcotest.test_case "create/clone/release" `Quick
            test_create_clone_release;
          Alcotest.test_case "no resurrection" `Quick
            test_clone_from_zero_panics;
          Alcotest.test_case "no double free" `Quick
            test_double_release_panics;
          Alcotest.test_case "clone under lock legal" `Quick
            test_clone_under_lock_is_legal;
          Alcotest.test_case "release_not_last" `Quick test_release_not_last;
          Alcotest.test_case "exact under contention" `Quick
            test_refcount_exact_under_contention;
        ] );
      ( "section 8 rules",
        [
          Alcotest.test_case "no release under simple lock" `Quick
            test_release_under_simple_lock_panics;
          Alcotest.test_case "no release in assert_wait window" `Quick
            test_release_between_assert_and_block_panics;
        ] );
      ( "gated counts",
        [
          Alcotest.test_case "enter/exit" `Quick test_gated_enter_exit;
          Alcotest.test_case "close excludes termination race" `Quick
            test_gated_close_excludes_new_entries;
          Alcotest.test_case "requires object lock" `Quick
            test_gated_requires_object_lock;
        ] );
      ( "deactivation",
        [ Alcotest.test_case "basics" `Quick test_deactivate_basics ] );
      ( "kernel objects",
        [
          Alcotest.test_case "lifecycle" `Quick test_kobj_lifecycle;
          Alcotest.test_case "deactivation protocol" `Quick
            test_kobj_deactivation_protocol;
          Alcotest.test_case "deactivate requires lock" `Quick
            test_kobj_deactivate_requires_lock;
          Alcotest.test_case "concurrent destroy-once" `Quick
            test_kobj_concurrent_ref_release_explored;
        ] );
    ]
