(* Tests for the simulated multiprocessor engine: scheduling, parking,
   interrupts, deadlock detection, determinism and the cache/bus model. *)

module Engine = Mach_sim.Sim_engine
module Config = Mach_sim.Sim_config
module Explore = Mach_sim.Sim_explore
module Spl = Mach_core.Spl

let cfg ?(cpus = 4) ?(seed = 7) ?(policy = Config.Random_policy) () =
  { Config.default with Config.cpus; seed; policy }

let run ?cpus ?seed ?policy main =
  Engine.run ~cfg:(cfg ?cpus ?seed ?policy ()) main

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec at i = i + m <= n && (String.sub s i m = sub || at (i + 1)) in
  m = 0 || at 0

(* ------------------------------------------------------------------ *)

let test_single_thread_runs () =
  let hit = ref false in
  let stats = run (fun () -> hit := true) in
  check_bool "main ran" true !hit;
  check_int "one thread spawned" 1 stats.Engine.spawned_threads

let test_spawn_join () =
  let order = ref [] in
  let _ =
    run (fun () ->
        let note tag = order := tag :: !order in
        let children =
          List.init 5 (fun i ->
              Engine.spawn ~name:(Printf.sprintf "w%d" i) (fun () ->
                  Engine.pause ();
                  note i))
        in
        List.iter Engine.join children;
        note 99)
  in
  (match !order with
  | 99 :: rest -> check_int "all children before join" 5 (List.length rest)
  | _ -> Alcotest.fail "join returned before children finished");
  ()

let test_join_already_dead () =
  let _ =
    run (fun () ->
        let t = Engine.spawn (fun () -> ()) in
        (* Let it finish first. *)
        for _ = 1 to 50 do
          Engine.pause ()
        done;
        Engine.join t;
        check_bool "dead" true (Engine.is_dead t))
  in
  ()

let test_park_unpark () =
  let got = ref 0 in
  let _ =
    run (fun () ->
        let waiter =
          Engine.spawn ~name:"waiter" (fun () ->
              Engine.park ();
              got := 1)
        in
        for _ = 1 to 10 do
          Engine.pause ()
        done;
        Engine.unpark waiter;
        Engine.join waiter)
  in
  check_int "waiter resumed" 1 !got

let test_permit_before_park () =
  (* unpark before park must not lose the wakeup. *)
  let _ =
    run (fun () ->
        let t = ref None in
        let waiter =
          Engine.spawn ~name:"w" (fun () ->
              for _ = 1 to 20 do
                Engine.pause ()
              done;
              Engine.park ())
        in
        t := Some waiter;
        Engine.unpark waiter;
        Engine.join waiter)
  in
  ()

let test_sleep_deadlock_detected () =
  match
    Engine.run_outcome ~cfg:(cfg ()) (fun () ->
        let t = Engine.spawn ~name:"forever" (fun () -> Engine.park ()) in
        Engine.join t)
  with
  | Engine.Deadlocked (Engine.Sleep_deadlock, report) ->
      check_bool "report mentions parked threads" true
        (contains report "parked")
  | _ -> Alcotest.fail "expected a sleep deadlock"

let test_spin_deadlock_detected () =
  (* Two threads spin forever on cells that never change. *)
  let outcome =
    Engine.run_outcome
      ~cfg:{ (cfg ()) with Config.watchdog_steps = 5_000 }
      (fun () ->
        let c = Engine.Cell.make ~name:"never" 0 in
        let spinner () =
          while Engine.Cell.get c = 0 do
            Engine.pause ()
          done
        in
        let a = Engine.spawn ~name:"s1" spinner in
        let b = Engine.spawn ~name:"s2" spinner in
        Engine.join a;
        Engine.join b)
  in
  match outcome with
  | Engine.Deadlocked (Engine.Spin_deadlock, _) -> ()
  | _ -> Alcotest.fail "expected a spin deadlock (watchdog)"

let test_determinism () =
  let trace_of seed =
    let log = ref [] in
    let _ =
      run ~seed (fun () ->
          let c = Engine.Cell.make 0 in
          let worker i () =
            for _ = 1 to 10 do
              let v = Engine.Cell.fetch_and_add c 1 in
              log := (i, v) :: !log
            done
          in
          let ts = List.init 3 (fun i -> Engine.spawn (worker i)) in
          List.iter Engine.join ts)
    in
    !log
  in
  check_bool "same seed, same schedule" true (trace_of 42 = trace_of 42);
  (* Different seeds almost surely differ for this racy workload. *)
  check_bool "different seed, different schedule" true
    (trace_of 42 <> trace_of 43)

let test_cell_semantics () =
  let _ =
    run (fun () ->
        let c = Engine.Cell.make ~name:"c" 5 in
        check_int "initial" 5 (Engine.Cell.get c);
        Engine.Cell.set c 9;
        check_int "set/get" 9 (Engine.Cell.get c);
        check_int "tas returns old" 9 (Engine.Cell.test_and_set c);
        check_int "tas set to 1" 1 (Engine.Cell.get c);
        Engine.Cell.set c 0;
        check_int "tas acquires" 0 (Engine.Cell.test_and_set c);
        check_bool "cas success" true
          (Engine.Cell.compare_and_swap c ~expected:1 ~desired:7);
        check_bool "cas failure" false
          (Engine.Cell.compare_and_swap c ~expected:1 ~desired:8);
        check_int "faa old" 7 (Engine.Cell.fetch_and_add c 3);
        check_int "faa new" 10 (Engine.Cell.get c))
  in
  ()

let test_fetch_add_atomic_under_contention () =
  let final = ref 0 in
  let _ =
    run ~cpus:4 (fun () ->
        let c = Engine.Cell.make 0 in
        let ts =
          List.init 4 (fun _ ->
              Engine.spawn (fun () ->
                  for _ = 1 to 100 do
                    ignore (Engine.Cell.fetch_and_add c 1)
                  done))
        in
        List.iter Engine.join ts;
        final := Engine.Cell.get c)
  in
  check_int "atomic increments" 400 !final

let test_interrupt_delivery () =
  let fired = ref false in
  let _ =
    run ~cpus:2 (fun () ->
        Engine.post_interrupt ~name:"test" ~cpu:(Engine.current_cpu ())
          ~level:Spl.Splvm (fun () -> fired := true);
        (* Delivery happens at a preemption point. *)
        while not !fired do
          Engine.pause ()
        done)
  in
  check_bool "handler ran" true !fired

let test_interrupt_masked_by_spl () =
  let fired = ref false in
  let _ =
    run ~cpus:1 (fun () ->
        let old = Engine.set_spl Spl.Splhigh in
        Engine.post_interrupt ~name:"masked" ~cpu:0 ~level:Spl.Splvm
          (fun () -> fired := true);
        for _ = 1 to 50 do
          Engine.pause ()
        done;
        check_bool "masked while at splhigh" false !fired;
        ignore (Engine.set_spl old);
        while not !fired do
          Engine.pause ()
        done)
  in
  check_bool "delivered after spl lowered" true !fired

let test_interrupt_nesting_and_spl_restore () =
  let order = ref [] in
  let _ =
    run ~cpus:1 (fun () ->
        Engine.post_interrupt ~name:"low" ~cpu:0 ~level:Spl.Splnet (fun () ->
            order := `Low_start :: !order;
            Engine.post_interrupt ~name:"high" ~cpu:0 ~level:Spl.Splclock
              (fun () -> order := `High :: !order);
            (* The higher-priority interrupt preempts this handler at its
               next preemption point. *)
            for _ = 1 to 20 do
              Engine.pause ()
            done;
            order := `Low_end :: !order);
        for _ = 1 to 200 do
          Engine.pause ()
        done;
        check_bool "spl restored to spl0" true
          (Spl.equal (Engine.get_spl ()) Spl.Spl0))
  in
  match List.rev !order with
  | [ `Low_start; `High; `Low_end ] -> ()
  | _ -> Alcotest.fail "nested interrupt did not preempt the low handler"

let test_interrupt_on_idle_cpu () =
  let fired = ref false in
  let _ =
    run ~cpus:2 (fun () ->
        (* cpu1 is idle: the interrupt must still be delivered there. *)
        let me = Engine.current_cpu () in
        let other = if me = 0 then 1 else 0 in
        Engine.post_interrupt ~name:"idle-ipi" ~cpu:other ~level:Spl.Splvm
          (fun () -> fired := true);
        while not !fired do
          Engine.pause ()
        done)
  in
  check_bool "fired on idle cpu" true !fired

let test_park_in_interrupt_panics () =
  match
    Engine.run_outcome ~cfg:(cfg ~cpus:1 ()) (fun () ->
        Engine.post_interrupt ~name:"bad" ~cpu:0 ~level:Spl.Splvm (fun () ->
            Engine.park ());
        for _ = 1 to 100 do
          Engine.pause ()
        done)
  with
  | Engine.Panicked msg ->
      check_bool "mentions interrupt" true (contains msg "interrupt")
  | _ -> Alcotest.fail "parking in an interrupt must panic"

let test_bound_thread_runs_on_its_cpu () =
  let seen = ref (-1) in
  let _ =
    run ~cpus:4 (fun () ->
        let t =
          Engine.spawn ~name:"pinned" ~bound:2 (fun () ->
              seen := Engine.current_cpu ())
        in
        Engine.join t)
  in
  check_int "ran on cpu 2" 2 !seen

let test_ttas_fewer_bus_transactions_than_tas () =
  (* The section 2 cache claim, at engine level: spinning with plain reads
     (cache hits) generates far less bus traffic than spinning with
     test-and-set, and the bus saturation slows the whole machine down. *)
  let run_for spin_with_tas =
    let stats =
      Engine.run
        ~cfg:{ (cfg ~cpus:8 ~policy:Config.Timed ()) with Config.seed = 3 }
        (fun () ->
          let lock = Engine.Cell.make ~name:"l" 0 in
          (* Shared kernel data protected by the lock: its updates must
             cross the bus, so spin traffic delays useful work. *)
          let data = Array.init 4 (fun _ -> Engine.Cell.make 0) in
          let iters = 30 in
          let worker () =
            for _ = 1 to iters do
              let rec acquire () =
                if spin_with_tas then begin
                  if Engine.Cell.test_and_set lock <> 0 then begin
                    Engine.pause ();
                    acquire ()
                  end
                end
                else if
                  Engine.Cell.get lock = 0
                  && Engine.Cell.test_and_set lock = 0
                then ()
                else begin
                  Engine.pause ();
                  acquire ()
                end
              in
              acquire ();
              Array.iter
                (fun d -> ignore (Engine.Cell.fetch_and_add d 1))
                data;
              Engine.cycles 20;
              Engine.Cell.set lock 0
            done
          in
          let ts = List.init 8 (fun _ -> Engine.spawn worker) in
          List.iter Engine.join ts)
    in
    (stats.Engine.bus_transactions, stats.Engine.makespan)
  in
  let tas_bus, tas_time = run_for true in
  let ttas_bus, ttas_time = run_for false in
  check_bool
    (Printf.sprintf "ttas (%d) uses less bus than tas (%d)" ttas_bus tas_bus)
    true (ttas_bus < tas_bus);
  check_bool
    (Printf.sprintf "ttas (%d) completes before tas (%d)" ttas_time tas_time)
    true (ttas_time < tas_time)

let test_explore_all_completed () =
  let v =
    Explore.run ~cpus:2 ~seeds:(List.init 20 (fun i -> i + 1)) (fun () ->
        let t = Engine.spawn (fun () -> Engine.pause ()) in
        Engine.join t)
  in
  check_bool "all completed" true (Explore.all_completed v)

let test_explore_finds_deadlock () =
  match
    Explore.find_first_deadlock ~max_seeds:5 (fun () ->
        Engine.park () (* nobody will ever unpark main *))
  with
  | Some _ -> ()
  | None -> Alcotest.fail "exploration failed to find an obvious deadlock"

let () =
  Alcotest.run "sim_engine"
    [
      ( "threads",
        [
          Alcotest.test_case "single thread runs" `Quick
            test_single_thread_runs;
          Alcotest.test_case "spawn and join" `Quick test_spawn_join;
          Alcotest.test_case "join already-dead" `Quick
            test_join_already_dead;
          Alcotest.test_case "park/unpark" `Quick test_park_unpark;
          Alcotest.test_case "permit before park" `Quick
            test_permit_before_park;
          Alcotest.test_case "bound thread" `Quick
            test_bound_thread_runs_on_its_cpu;
        ] );
      ( "deadlock",
        [
          Alcotest.test_case "sleep deadlock detected" `Quick
            test_sleep_deadlock_detected;
          Alcotest.test_case "spin deadlock detected" `Quick
            test_spin_deadlock_detected;
        ] );
      ( "cells",
        [
          Alcotest.test_case "cell semantics" `Quick test_cell_semantics;
          Alcotest.test_case "atomic under contention" `Quick
            test_fetch_add_atomic_under_contention;
          Alcotest.test_case "ttas < tas bus traffic" `Quick
            test_ttas_fewer_bus_transactions_than_tas;
        ] );
      ( "interrupts",
        [
          Alcotest.test_case "delivery" `Quick test_interrupt_delivery;
          Alcotest.test_case "masking by spl" `Quick
            test_interrupt_masked_by_spl;
          Alcotest.test_case "nesting + spl restore" `Quick
            test_interrupt_nesting_and_spl_restore;
          Alcotest.test_case "idle cpu" `Quick test_interrupt_on_idle_cpu;
          Alcotest.test_case "park in interrupt panics" `Quick
            test_park_in_interrupt_panics;
        ] );
      ( "exploration",
        [
          Alcotest.test_case "determinism" `Quick test_determinism;
          Alcotest.test_case "all completed" `Quick
            test_explore_all_completed;
          Alcotest.test_case "finds deadlock" `Quick
            test_explore_finds_deadlock;
        ] );
    ]
