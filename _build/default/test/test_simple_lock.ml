(* Simple locks on the simulated machine: Appendix A semantics, the
   design-rule assertions, and mutual exclusion under schedule
   exploration. *)

module Engine = Mach_sim.Sim_engine
module Explore = Mach_sim.Sim_explore
module Spl = Mach_core.Spl
module Spin = Mach_core.Spin
module K = Mach_ksync.Ksync

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec at i = i + m <= n && (String.sub s i m = sub || at (i + 1)) in
  m = 0 || at 0

let in_sim f =
  let result = ref None in
  ignore
    (Engine.run (fun () -> result := Some (f ())));
  Option.get !result

(* ------------------------------------------------------------------ *)

let test_basic_lock_unlock () =
  in_sim (fun () ->
      let l = K.Slock.make ~name:"t" () in
      check_bool "initially free" false (K.Slock.is_locked l);
      K.Slock.lock l;
      check_bool "locked" true (K.Slock.is_locked l);
      check_bool "held by self" true (K.Slock.held_by_self l);
      K.Slock.unlock l;
      check_bool "free again" false (K.Slock.is_locked l))

let test_try_lock () =
  in_sim (fun () ->
      let l = K.Slock.make () in
      check_bool "try succeeds when free" true (K.Slock.try_lock l);
      check_bool "try fails when held" false (K.Slock.try_lock l);
      K.Slock.unlock l;
      check_bool "try succeeds after unlock" true (K.Slock.try_lock l);
      K.Slock.unlock l)

let test_all_protocols_acquire () =
  in_sim (fun () ->
      List.iter
        (fun p ->
          let l = K.Slock.make ~protocol:p () in
          K.Slock.lock l;
          K.Slock.unlock l)
        Spin.all_protocols)

let test_unlock_by_non_holder_panics () =
  match
    Engine.run_outcome (fun () ->
        let l = K.Slock.make ~name:"owned" () in
        K.Slock.lock l;
        let intruder = Engine.spawn ~name:"intruder" (fun () ->
            K.Slock.unlock l)
        in
        Engine.join intruder)
  with
  | Engine.Panicked msg ->
      check_bool "names the lock" true (contains msg "owned")
  | _ -> Alcotest.fail "unlock by non-holder must panic"

let test_recursive_simple_lock_panics () =
  match
    Engine.run_outcome (fun () ->
        let l = K.Slock.make () in
        K.Slock.lock l;
        K.Slock.lock l)
  with
  | Engine.Panicked msg ->
      check_bool "mentions recursion" true (contains msg "recursive")
  | _ -> Alcotest.fail "recursive simple lock acquisition must panic"

let test_same_spl_rule_enforced () =
  (* Section 7: each lock must always be acquired at the same spl. *)
  match
    Engine.run_outcome (fun () ->
        let l = K.Slock.make ~name:"spl-pinned" () in
        let old = Engine.set_spl Spl.Splvm in
        K.Slock.lock l;
        K.Slock.unlock l;
        ignore (Engine.set_spl old);
        (* second acquisition at a different level *)
        K.Slock.lock l)
  with
  | Engine.Panicked msg ->
      check_bool "mentions the spl rule" true (contains msg "same-spl")
  | _ -> Alcotest.fail "acquiring at a different spl must panic"

let test_spl_pinned_at_creation () =
  match
    Engine.run_outcome (fun () ->
        let l = K.Slock.make ~name:"pinned" ~spl:Spl.Splvm () in
        (* acquired at spl0: violates the pin *)
        K.Slock.lock l)
  with
  | Engine.Panicked _ -> ()
  | _ -> Alcotest.fail "violating a pinned spl must panic"

let test_mutual_exclusion_explored () =
  (* The fundamental property, over many schedules: no two threads inside
     the critical section at once. *)
  let scenario protocol () =
    let l = K.Slock.make ~protocol () in
    let inside = ref 0 in
    let worker () =
      for _ = 1 to 5 do
        K.Slock.lock l;
        incr inside;
        if !inside <> 1 then Engine.fatal "mutual exclusion violated";
        Engine.pause ();
        decr inside;
        K.Slock.unlock l
      done
    in
    let ts = List.init 3 (fun i ->
        Engine.spawn ~name:(Printf.sprintf "w%d" i) worker)
    in
    List.iter Engine.join ts
  in
  List.iter
    (fun p ->
      let v =
        Explore.run ~cpus:3
          ~seeds:(List.init 25 (fun i -> i + 1))
          (scenario p)
      in
      check_bool
        (Spin.protocol_name p ^ " exclusion holds on all schedules")
        true (Explore.all_completed v))
    Spin.all_protocols

let test_contention_counted () =
  in_sim (fun () ->
      let l = K.Slock.make () in
      let worker () =
        for _ = 1 to 10 do
          K.Slock.lock l;
          Engine.cycles 20;
          K.Slock.unlock l
        done
      in
      let ts = List.init 4 (fun _ -> Engine.spawn worker) in
      List.iter Engine.join ts;
      let st = K.Slock.stats l in
      check_int "all acquisitions recorded" 40
        (Mach_core.Lock_stats.acquisitions st))

let test_uniprocessor_mode () =
  in_sim (fun () ->
      K.Slock.set_uniprocessor true;
      Fun.protect
        ~finally:(fun () -> K.Slock.set_uniprocessor false)
        (fun () ->
          let l = K.Slock.make () in
          (* Defined out: lock/unlock are no-ops, try always succeeds. *)
          K.Slock.lock l;
          K.Slock.lock l;
          check_bool "try under up mode" true (K.Slock.try_lock l);
          K.Slock.unlock l))

let test_lock_both_by_uid_no_deadlock () =
  (* Two threads locking the same pair in opposite argument orders must
     never deadlock thanks to uid ordering (section 5). *)
  let v =
    Explore.run ~cpus:2
      ~seeds:(List.init 40 (fun i -> i + 1))
      (fun () ->
        let a = K.Slock.make ~name:"a" () in
        let b = K.Slock.make ~name:"b" () in
        let t1 =
          Engine.spawn (fun () ->
              for _ = 1 to 5 do
                K.Order.lock_both_by_uid a b;
                Engine.pause ();
                K.Order.unlock_both a b
              done)
        in
        let t2 =
          Engine.spawn (fun () ->
              for _ = 1 to 5 do
                K.Order.lock_both_by_uid b a;
                Engine.pause ();
                K.Order.unlock_both b a
              done)
        in
        Engine.join t1;
        Engine.join t2)
  in
  check_bool "no deadlocks" true (Explore.all_completed v)

let test_opposite_order_deadlocks () =
  (* The anti-test: naive opposite-order acquisition must deadlock on some
     schedule, and the engine must find it. *)
  match
    Explore.find_first_deadlock ~cpus:2 ~max_seeds:100 (fun () ->
        let a = K.Slock.make ~name:"a" () in
        let b = K.Slock.make ~name:"b" () in
        let t1 =
          Engine.spawn (fun () ->
              K.Slock.lock a;
              Engine.pause ();
              K.Slock.lock b;
              K.Slock.unlock b;
              K.Slock.unlock a)
        in
        let t2 =
          Engine.spawn (fun () ->
              K.Slock.lock b;
              Engine.pause ();
              K.Slock.lock a;
              K.Slock.unlock a;
              K.Slock.unlock b)
        in
        Engine.join t1;
        Engine.join t2)
  with
  | Some (_seed, report) ->
      check_bool "report shows spinning" true (contains report "spinning")
  | None -> Alcotest.fail "opposite-order locking should deadlock somewhere"

let test_backout_protocol_never_deadlocks () =
  (* Same conflict, resolved with the section 5 backout protocol. *)
  let v =
    Explore.run ~cpus:2
      ~seeds:(List.init 40 (fun i -> i + 1))
      (fun () ->
        let a = K.Slock.make ~name:"a" () in
        let b = K.Slock.make ~name:"b" () in
        let t1 =
          Engine.spawn (fun () ->
              for _ = 1 to 3 do
                K.Slock.lock a;
                Engine.pause ();
                K.Slock.lock b;
                K.Slock.unlock b;
                K.Slock.unlock a
              done)
        in
        let t2 =
          Engine.spawn (fun () ->
              for _ = 1 to 3 do
                (* usual order is a-then-b; t2 wants b-then-a, so it uses
                   the backout protocol *)
                ignore (K.Order.backout_lock_pair ~first:b ~second:a);
                Engine.pause ();
                K.Slock.unlock a;
                K.Slock.unlock b
              done)
        in
        Engine.join t1;
        Engine.join t2)
  in
  check_bool "no deadlocks with backout" true (Explore.all_completed v)

let test_order_checker_flags_violation () =
  in_sim (fun () ->
      K.Order.clear_violations ();
      let map_cls = K.Order.define_class ~name:"map" ~rank:1 in
      let obj_cls = K.Order.define_class ~name:"object" ~rank:2 in
      (* correct order: no violation *)
      K.Order.note_acquire map_cls;
      K.Order.note_acquire obj_cls;
      K.Order.note_release obj_cls;
      K.Order.note_release map_cls;
      check_int "no violations yet" 0 (List.length (K.Order.violations ()));
      (* wrong order *)
      K.Order.note_acquire obj_cls;
      K.Order.note_acquire map_cls;
      K.Order.note_release map_cls;
      K.Order.note_release obj_cls;
      check_int "violation recorded" 1 (List.length (K.Order.violations ()));
      K.Order.clear_violations ())

let () =
  Alcotest.run "simple_lock"
    [
      ( "basics",
        [
          Alcotest.test_case "lock/unlock" `Quick test_basic_lock_unlock;
          Alcotest.test_case "try_lock" `Quick test_try_lock;
          Alcotest.test_case "all spin protocols" `Quick
            test_all_protocols_acquire;
          Alcotest.test_case "stats" `Quick test_contention_counted;
          Alcotest.test_case "uniprocessor compile-out" `Quick
            test_uniprocessor_mode;
        ] );
      ( "design rules",
        [
          Alcotest.test_case "unlock by non-holder" `Quick
            test_unlock_by_non_holder_panics;
          Alcotest.test_case "no recursion" `Quick
            test_recursive_simple_lock_panics;
          Alcotest.test_case "same-spl rule" `Quick
            test_same_spl_rule_enforced;
          Alcotest.test_case "spl pin at creation" `Quick
            test_spl_pinned_at_creation;
        ] );
      ( "exploration",
        [
          Alcotest.test_case "mutual exclusion" `Slow
            test_mutual_exclusion_explored;
          Alcotest.test_case "uid-ordered pair never deadlocks" `Quick
            test_lock_both_by_uid_no_deadlock;
          Alcotest.test_case "opposite order deadlocks" `Quick
            test_opposite_order_deadlocks;
          Alcotest.test_case "backout protocol safe" `Quick
            test_backout_protocol_never_deadlocks;
          Alcotest.test_case "order checker" `Quick
            test_order_checker_flags_violation;
        ] );
    ]
