(* The lock-free timing facility (section 2's one exception to
   multiprocessor locking): single-writer discipline, checked multi-word
   reads, and the torn-read anti-test. *)

module Engine = Mach_sim.Sim_engine
module Explore = Mach_sim.Sim_explore
module Timer = Mach_kern.Timer
open Test_support

let test_basic_counting () =
  in_sim (fun () ->
      let t = Timer.create ~owner_cpu:(Engine.current_cpu ()) () in
      check_int "zero" 0 (Timer.read t);
      Timer.tick t ~cycles:100;
      check_int "accumulates" 100 (Timer.read t);
      (* force carries *)
      for _ = 1 to 50 do
        Timer.tick t ~cycles:100
      done;
      check_int "carries counted" 5100 (Timer.read t))

let test_single_writer_enforced () =
  match
    Engine.run_outcome (fun () ->
        let t = Timer.create ~owner_cpu:63 () in
        Timer.tick t ~cycles:1)
  with
  | Engine.Panicked msg ->
      check_bool "names the discipline" true (contains msg "single writer")
  | _ -> Alcotest.fail "tick from the wrong cpu must panic"

let test_checked_read_never_torn () =
  (* A writer bound to cpu 0 ticks through many carries; readers on other
     cpus use the checked protocol.  Values must be monotonic and exact at
     the end, on every explored schedule. *)
  let v =
    Explore.run ~cpus:3
      ~seeds:(List.init 25 (fun i -> i + 1))
      (fun () ->
        let t = Timer.create ~owner_cpu:0 () in
        let total_ticks = 40 in
        let per_tick = 700 (* forces frequent carries: modulus is 1024 *) in
        let writer =
          Engine.spawn ~name:"writer" ~bound:0 (fun () ->
              for _ = 1 to total_ticks do
                Timer.tick t ~cycles:per_tick;
                Engine.pause ()
              done)
        in
        let reader =
          Engine.spawn ~name:"reader" ~bound:1 (fun () ->
              let last = ref 0 in
              for _ = 1 to 60 do
                let v = Timer.read t in
                if v < !last then
                  Engine.fatal "checked read went backwards (torn)";
                if v mod per_tick <> 0 then
                  Engine.fatal "checked read returned a torn value";
                last := v;
                Engine.pause ()
              done)
        in
        Engine.join writer;
        Engine.join reader;
        if Timer.read t <> total_ticks * per_tick then
          Engine.fatal "final total wrong")
  in
  check_bool "checked reads are exact on all schedules" true
    (Explore.all_completed v)

let test_unchecked_read_tears () =
  (* The anti-test: the naive reader observes an inconsistent value on
     some schedule (value not a multiple of the tick size: a (high, low)
     pair from different generations). *)
  let saw_torn = ref false in
  let seeds = List.init 60 (fun i -> i + 1) in
  List.iter
    (fun seed ->
      if not !saw_torn then
        ignore
          (Engine.run_outcome
             ~cfg:(Mach_sim.Sim_config.exploration ~cpus:3 ~seed ())
             (fun () ->
               let t = Timer.create ~owner_cpu:0 () in
               let per_tick = 700 in
               let writer =
                 Engine.spawn ~name:"writer" ~bound:0 (fun () ->
                     for _ = 1 to 40 do
                       Timer.tick t ~cycles:per_tick;
                       Engine.pause ()
                     done)
               in
               let reader =
                 Engine.spawn ~name:"reader" ~bound:1 (fun () ->
                     for _ = 1 to 60 do
                       let v = Timer.read_unchecked t in
                       if v mod per_tick <> 0 then saw_torn := true;
                       Engine.pause ()
                     done)
               in
               Engine.join writer;
               Engine.join reader)))
    seeds;
  check_bool "naive reads tear on some schedule" true !saw_torn

let test_usage_aggregation () =
  ignore
    (Engine.run
       ~cfg:{ Mach_sim.Sim_config.default with Mach_sim.Sim_config.cpus = 4 }
       (fun () ->
         let u = Timer.Usage.create ~cpus:4 in
         let workers =
           List.init 4 (fun cpu ->
               Engine.spawn ~bound:cpu (fun () ->
                   for _ = 1 to 25 do
                     Timer.Usage.charge_current_cpu u ~cycles:100;
                     Engine.pause ()
                   done))
         in
         List.iter Engine.join workers;
         check_int "total across cpus" (4 * 25 * 100) (Timer.Usage.total u)))

let () =
  Alcotest.run "timer"
    [
      ( "facility",
        [
          Alcotest.test_case "basic counting" `Quick test_basic_counting;
          Alcotest.test_case "single-writer discipline" `Quick
            test_single_writer_enforced;
          Alcotest.test_case "usage aggregation" `Quick
            test_usage_aggregation;
        ] );
      ( "torn reads",
        [
          Alcotest.test_case "checked read never torn" `Slow
            test_checked_read_never_torn;
          Alcotest.test_case "unchecked read tears" `Quick
            test_unchecked_read_tears;
        ] );
    ]
