(* Shared infrastructure for the experiment harness: table printing, sim
   runs with fixed configurations, and a thin Bechamel wrapper for native
   per-operation costs. *)

module Engine = Mach_sim.Sim_engine
module Config = Mach_sim.Sim_config

let printf = Printf.printf

let section ~id ~title ~claim =
  printf "\n%s\n" (String.make 78 '=');
  printf "%s: %s\n" id title;
  printf "paper claim: %s\n" claim;
  printf "%s\n" (String.make 78 '-')

let table ~header rows =
  let widths =
    List.fold_left
      (fun acc row ->
        List.map2 (fun w cell -> max w (String.length cell)) acc row)
      (List.map String.length header)
      rows
  in
  let print_row row =
    List.iter2 (fun w cell -> printf "%-*s  " w cell) widths row;
    printf "\n"
  in
  print_row header;
  print_row (List.map (fun w -> String.make w '-') widths);
  List.iter print_row rows

(* Run a workload on the simulated machine with the bench configuration
   and return the stats.  [tweak] post-processes the configuration (e.g.
   to change the backoff cap). *)
let sim_run ?(cpus = 8) ?(seed = 3) ?(tweak = Fun.id) f =
  let cfg = tweak { (Config.bench ~cpus ()) with Config.seed } in
  Engine.run ~cfg f

let f1 x = Printf.sprintf "%.1f" x
let f2 x = Printf.sprintf "%.2f" x
let i = string_of_int

(* ------------------------------------------------------------------ *)
(* Observability: per-experiment latency percentiles + contention       *)
(* ------------------------------------------------------------------ *)

module Obs_metrics = Mach_obs.Obs_metrics
module Obs_profile = Mach_obs.Obs_profile
module Obs_histogram = Mach_obs.Obs_histogram
module Obs_json = Mach_obs.Obs_json

(* Experiments can attach extra JSON sections (keyed objects) to their
   entry in BENCH_observability.json — E18 uses this for its span /
   critical-path / flight sections.  Cleared with the rest of the
   observability state before each experiment. *)
let obs_extra : (string * Obs_json.t) list ref = ref []
let obs_add_json key j = obs_extra := (key, j) :: !obs_extra

(* The metrics registry and contention profiler are process-global; the
   driver resets them before each experiment so each section reports that
   experiment's runs only. *)
let obs_reset () =
  Obs_metrics.reset ();
  Obs_profile.reset ();
  obs_extra := []

let latency_histograms =
  [
    "lock.wait_cycles";
    "lock.hold_cycles";
    "event.wait_cycles";
    "tlb.shootdown_cycles";
    "rpc.latency_cycles";
  ]

let obs_section ~id () =
  printf "\n%s observability (cycles):\n" id;
  let rows =
    List.filter_map
      (fun name ->
        let h = Obs_metrics.merged (Obs_metrics.histogram name) in
        if Obs_histogram.count h = 0 then None
        else
          Some
            [
              name;
              i (Obs_histogram.count h);
              i (Obs_histogram.percentile h 50.);
              i (Obs_histogram.percentile h 90.);
              i (Obs_histogram.percentile h 99.);
              i (Obs_histogram.max_value h);
            ])
      latency_histograms
  in
  if rows = [] then printf "(no lock or event activity recorded)\n"
  else table ~header:[ "histogram"; "n"; "p50"; "p90"; "p99"; "max" ] rows;
  match Obs_profile.top ~n:3 with
  | [] -> ()
  | top ->
      printf "\n";
      table
        ~header:[ "top lock class"; "acquires"; "contended"; "wait-cycles" ]
        (List.map
           (fun (c : Obs_profile.class_stats) ->
             [ c.cls; i c.acquisitions; i c.contended; i c.wait_cycles ])
           top)

let obs_json () =
  Obs_json.Obj
    ([
       ("metrics", Obs_metrics.to_json ());
       ("profile", Obs_profile.to_json ());
     ]
    @ List.rev !obs_extra)

(* ------------------------------------------------------------------ *)
(* Bechamel: native per-operation costs                                 *)
(* ------------------------------------------------------------------ *)

(* Returns (name, ns/run) for each test. *)
let bechamel_run tests =
  let open Bechamel in
  let open Toolkit in
  let instance = Instance.monotonic_clock in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.25) ~kde:None ()
  in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  List.map
    (fun test ->
      let results =
        List.concat_map
          (fun t ->
            let raw = Benchmark.run cfg [ instance ] t in
            let est = Analyze.one ols instance raw in
            match Analyze.OLS.estimates est with
            | Some [ ns ] -> [ (Test.Elt.name t, ns) ]
            | _ -> [ (Test.Elt.name t, nan) ])
          (Test.elements test)
      in
      (Test.name test, results))
    tests
