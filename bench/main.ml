(* The experiment harness.

   "Locking and Reference Counting in the Mach Kernel" (ICPP 1991) is an
   experience paper with no numbered tables or figures; experiments E1-E14
   below (defined in DESIGN.md, results recorded in EXPERIMENTS.md) each
   operationalize one of its qualitative claims.  Every invocation
   regenerates every table; pass experiment ids (e.g. `E1 E4`) to run a
   subset.

   The simulated multiprocessor's cycle model plays the role of the
   paper's shared-bus testbeds (VAX 6000 / Encore Multimax / Sequent
   Symmetry); the N0 section measures native per-operation costs with
   Bechamel on real hardware for calibration. *)

module Engine = Mach_sim.Sim_engine
module Config = Mach_sim.Sim_config
module Explore = Mach_sim.Sim_explore
module Spin = Mach_core.Spin
module Stats = Mach_core.Lock_stats
module K = Mach_ksync.Ksync
module Vm = Mach_vm
module Scenarios = Mach_kernel.Scenarios
module Kernel = Mach_kernel.Kernel
open Bench_util

let cpu_sweep = [ 1; 2; 4; 8; 16 ]

(* ================================================================== *)
(* N0: native per-operation costs (Bechamel, real multicore hardware)  *)
(* ================================================================== *)

module N0 = struct
  let run () =
    section ~id:"N0" ~title:"native per-operation costs (Bechamel)"
      ~claim:
        "calibration only: uncontended primitive costs on the host machine";
    let open Bechamel in
    let module HS = Mach_hw.Hw_sync in
    let slock = HS.Slock.make ~name:"bench" () in
    let clock = HS.Clock.make ~name:"bench" ~can_sleep:false () in
    let refc = HS.Ref.make () in
    let cell = Mach_hw.Hw_machine.Cell.make 0 in
    let tests =
      [
        Test.make_grouped ~name:"native" ~fmt:"%s %s"
          [
            Test.make ~name:"atomic test-and-set"
              (Staged.stage (fun () ->
                   ignore (Mach_hw.Hw_machine.Cell.test_and_set cell);
                   Mach_hw.Hw_machine.Cell.set cell 0));
            Test.make ~name:"simple lock/unlock"
              (Staged.stage (fun () ->
                   HS.Slock.lock slock;
                   HS.Slock.unlock slock));
            Test.make ~name:"complex read/done"
              (Staged.stage (fun () ->
                   HS.Clock.lock_read clock;
                   HS.Clock.lock_done clock));
            Test.make ~name:"complex write/done"
              (Staged.stage (fun () ->
                   HS.Clock.lock_write clock;
                   HS.Clock.lock_done clock));
            Test.make ~name:"refcount clone/release"
              (Staged.stage (fun () ->
                   HS.Ref.clone refc;
                   ignore (HS.Ref.release refc)));
          ];
      ]
    in
    let results = bechamel_run tests in
    let rows =
      List.concat_map
        (fun (_, elts) ->
          List.map (fun (name, ns) -> [ name; f1 ns ]) elts)
        results
    in
    table ~header:[ "operation"; "ns/op" ] rows
end

(* ================================================================== *)
(* E1: spin protocols under contention (section 2)                     *)
(* ================================================================== *)

module E1 = struct
  (* Workers contend for one lock; the critical section updates shared
     kernel data (so spin bus traffic delays useful work).  [cap]
    overrides the ttas-backoff delay ceiling (default 1024 cycles). *)
  let workload ?cap protocol cpus =
    let tweak cfg =
      match cap with
      | Some c -> { cfg with Config.spin_max_backoff = c }
      | None -> cfg
    in
    sim_run ~cpus ~tweak (fun () ->
        let lock = K.Slock.make ~name:"l" ~protocol () in
        let data = Array.init 4 (fun _ -> Engine.Cell.make 0) in
        let worker () =
          for _ = 1 to 30 do
            K.Slock.lock lock;
            Array.iter (fun d -> ignore (Engine.Cell.fetch_and_add d 1)) data;
            Engine.cycles 20;
            K.Slock.unlock lock
          done
        in
        let ts = List.init cpus (fun _ -> Engine.spawn worker) in
        List.iter Engine.join ts)

  let tuned_cap = 128

  let run () =
    section ~id:"E1" ~title:"spin protocols under contention (sim cycles)"
      ~claim:
        "test-and-test-and-set avoids cache misses while spinning; plain \
         test-and-set wastes bus bandwidth and slows everyone down (s.2)";
    let row ?cap name p cpus =
      let s = workload ?cap p cpus in
      [
        i cpus;
        name;
        i s.Engine.makespan;
        i s.Engine.bus_transactions;
        i s.Engine.atomic_ops;
        i s.Engine.cache_misses;
      ]
    in
    let rows =
      List.concat_map
        (fun cpus ->
          List.map
            (fun p -> row (Spin.protocol_name p) p cpus)
            Spin.all_protocols
          @ [
              (* Backoff cap tuned to the workload: at 128 cycles — a
                 fraction of the ~500-cycle lock hold — waiters re-probe
                 a few times per hold instead of sleeping through whole
                 release windows as the generic 1024-cycle cap does. *)
              row ~cap:tuned_cap
                (Printf.sprintf "ttas-backoff(cap=%d)" tuned_cap)
                Spin.Ttas_backoff cpus;
            ])
        cpu_sweep
    in
    table
      ~header:
        [ "cpus"; "protocol"; "makespan"; "bus-txns"; "atomics"; "misses" ]
      rows
end

(* ================================================================== *)
(* E2: low contention and the first-attempt observation (section 2)    *)
(* ================================================================== *)

module E2 = struct
  let workload protocol cpus =
    let stats = ref None in
    let s =
      sim_run ~cpus (fun () ->
          let lock = K.Slock.make ~name:"l" ~protocol () in
          let worker () =
            for _ = 1 to 30 do
              K.Slock.lock lock;
              Engine.cycles 10;
              K.Slock.unlock lock;
              (* think time >> hold time: contention is rare *)
              Engine.cycles 2000;
              Engine.pause ()
            done
          in
          let ts = List.init cpus (fun _ -> Engine.spawn worker) in
          List.iter Engine.join ts;
          stats := Some (K.Slock.stats lock))
    in
    (s, Option.get !stats)

  let run () =
    section ~id:"E2" ~title:"low contention: the first-attempt observation"
      ~claim:
        "most locks in a well designed system are acquired on the first \
         attempt, so try the atomic instruction first (tas+ttas) (s.2)";
    let rows =
      List.concat_map
        (fun cpus ->
          List.map
            (fun p ->
              let s, st = workload p cpus in
              [
                i cpus;
                Spin.protocol_name p;
                i s.Engine.makespan;
                f2 (Stats.first_attempt_rate st);
                i (Stats.total_spins st);
              ])
            Spin.all_protocols)
        [ 2; 8 ]
    in
    table
      ~header:[ "cpus"; "protocol"; "makespan"; "first-attempt"; "spins" ]
      rows
end

(* ================================================================== *)
(* E3: locking granularity (sections 2, 5)                             *)
(* ================================================================== *)

module E3 = struct
  let run () =
    section ~id:"E3" ~title:"coarse vs fine-grained locking"
      ~claim:
        "locking data (one lock per object) lets code run in parallel with \
         itself; locking code (one big lock / master processor) restricts \
         the kernel to one processor and bottlenecks (s.2, s.5)";
    let rows =
      List.concat_map
        (fun cpus ->
          List.map
            (fun g ->
              let ops = cpus * 30 in
              let s =
                sim_run ~cpus (fun () ->
                    Scenarios.object_ops_workload g ~objects:16 ~workers:cpus
                      ~ops_per_worker:30)
              in
              let throughput =
                float_of_int ops *. 1000. /. float_of_int s.Engine.makespan
              in
              [
                i cpus;
                Scenarios.granularity_name g;
                i ops;
                i s.Engine.makespan;
                f2 throughput;
              ])
            [ Scenarios.Coarse; Scenarios.Fine; Scenarios.Master_funnel ])
        cpu_sweep
    in
    table
      ~header:[ "cpus"; "granularity"; "total-ops"; "makespan"; "ops/kcycle" ]
      rows
end

(* ================================================================== *)
(* E4: readers/writer lock and writers' priority (section 4)           *)
(* ================================================================== *)

module E4 = struct
  let workload ~priority ~write_pct cpus =
    let max_writer_wait = ref 0 in
    let s =
      sim_run ~cpus (fun () ->
          let l = K.Clock.make ~name:"rw" ~can_sleep:true () in
          K.Clock.set_writers_priority l priority;
          let worker w () =
            for op = 1 to 30 do
              if (op + w) mod 100 < write_pct then begin
                let t0 = Engine.now_cycles () in
                K.Clock.lock_write l;
                let waited = Engine.now_cycles () - t0 in
                if waited > !max_writer_wait then max_writer_wait := waited;
                Engine.cycles 30;
                K.Clock.lock_done l
              end
              else begin
                K.Clock.lock_read l;
                Engine.cycles 30;
                K.Clock.lock_done l
              end
            done
          in
          let ts = List.init cpus (fun w -> Engine.spawn (worker w)) in
          List.iter Engine.join ts)
    in
    (s, !max_writer_wait)

  let run () =
    section ~id:"E4" ~title:"readers/writer lock: writers' priority"
      ~claim:
        "readers may not be added past an outstanding write request, \
         guaranteeing the lock drains to the writer (no starvation) (s.4); \
         ablation: without priority, writer waits explode under read load";
    let rows =
      List.concat_map
        (fun write_pct ->
          List.map
            (fun priority ->
              let s, wmax = workload ~priority ~write_pct 8 in
              [
                i write_pct;
                (if priority then "yes" else "no (ablation)");
                i s.Engine.makespan;
                i wmax;
              ])
            [ true; false ])
        [ 2; 10; 30 ]
    in
    table
      ~header:[ "write%"; "writers-priority"; "makespan"; "max-writer-wait" ]
      rows
end

(* ================================================================== *)
(* E5: upgrade vs write-then-downgrade (section 7.1)                   *)
(* ================================================================== *)

module E5 = struct
  (* Each operation reads a shared structure and must then modify it.
     Variant A: take a read lock, upgrade; a failed upgrade loses the
     read lock and must restart (the recovery logic section 7.1 complains
     about).  Variant B: take the write lock up front and downgrade after
     the modification. *)
  let workload ~use_upgrade cpus =
    let failed = ref 0 in
    let s =
      sim_run ~cpus (fun () ->
          let l = K.Clock.make ~name:"m" ~can_sleep:true () in
          let worker () =
            for _ = 1 to 20 do
              if use_upgrade then begin
                let rec attempt () =
                  K.Clock.lock_read l;
                  Engine.cycles 20 (* read/validate *);
                  if K.Clock.lock_read_to_write l then begin
                    (* failed: read lock already released; retry *)
                    incr failed;
                    Engine.pause ();
                    attempt ()
                  end
                  else begin
                    Engine.cycles 30 (* modify *);
                    K.Clock.lock_done l
                  end
                in
                attempt ()
              end
              else begin
                K.Clock.lock_write l;
                Engine.cycles 30 (* modify *);
                K.Clock.lock_write_to_read l;
                Engine.cycles 20 (* read under the downgraded lock *);
                K.Clock.lock_done l
              end
            done
          in
          let ts = List.init cpus (fun _ -> Engine.spawn worker) in
          List.iter Engine.join ts)
    in
    (s, !failed)

  let run () =
    section ~id:"E5" ~title:"read-to-write upgrade vs write-then-downgrade"
      ~claim:
        "upgrades fail under contention (releasing the read lock and \
         forcing recovery); locking for write and downgrading cannot fail \
         and is the simpler, preferred alternative (s.7.1)";
    let rows =
      List.concat_map
        (fun cpus ->
          List.map
            (fun use_upgrade ->
              let s, failed = workload ~use_upgrade cpus in
              [
                i cpus;
                (if use_upgrade then "upgrade" else "write+downgrade");
                i s.Engine.makespan;
                i failed;
              ])
            [ true; false ])
        [ 2; 4; 8 ]
    in
    table ~header:[ "cpus"; "strategy"; "makespan"; "failed-upgrades" ] rows
end

(* ================================================================== *)
(* E6: recursive locking: overhead and the vm_map_pageable deadlock    *)
(* ================================================================== *)

module E6 = struct
  let overhead () =
    let acquisition ~recursive =
      let s =
        sim_run ~cpus:1 (fun () ->
            let l = K.Clock.make ~can_sleep:true () in
            if recursive then begin
              K.Clock.lock_write l;
              K.Clock.lock_set_recursive l;
              for _ = 1 to 200 do
                K.Clock.lock_write l;
                K.Clock.lock_done l
              done;
              K.Clock.lock_clear_recursive l;
              K.Clock.lock_done l
            end
            else
              for _ = 1 to 200 do
                K.Clock.lock_write l;
                K.Clock.lock_done l
              done)
      in
      s.Engine.makespan / 200
    in
    [
      [ "plain write acquire/release"; i (acquisition ~recursive:false) ];
      [ "recursive re-acquire/release"; i (acquisition ~recursive:true) ];
    ]

  let pageable_scenario ~use_recursive () =
    let ctx = Vm.Vm_map.make_context ~pages:4 () in
    let map = Vm.Vm_map.create ctx in
    let reclaimable = Vm.Vm_map.vm_allocate map ~size:3 in
    for idx = 0 to 2 do
      match Vm.Vm_fault.fault map ~va:(reclaimable + idx) with
      | Ok _ -> ()
      | Error _ -> Engine.fatal "populate failed"
    done;
    let wired_va = Vm.Vm_map.vm_allocate map ~size:3 in
    let daemon = Vm.Vm_pageout.start_daemon ~victims:[ map ] in
    let wire =
      if use_recursive then Vm.Vm_pageable.wire_recursive
      else Vm.Vm_pageable.wire_rewritten
    in
    (match wire map ~va:wired_va ~pages:3 with
    | Ok () -> ()
    | Error _ -> Engine.fatal "wire failed");
    Vm.Vm_pageout.stop_daemon daemon;
    Vm.Vm_map.release map

  let run () =
    section ~id:"E6" ~title:"recursive locking: cost and the 7.1 deadlock"
      ~claim:
        "recursive locks are less than fully general and caused the \
         vm_map_pageable deadlock against pageout; the Mach 3.0 rewrite \
         removes them (s.4, s.7.1)";
    table ~header:[ "operation"; "cycles/op" ] (overhead ());
    printf "\nvm_map_pageable under memory pressure, 30 schedules each:\n";
    let verdict ~use_recursive =
      Explore.run ~cpus:3
        ~seeds:(List.init 30 (fun s -> s + 1))
        (pageable_scenario ~use_recursive)
    in
    let vr = verdict ~use_recursive:true in
    let vw = verdict ~use_recursive:false in
    table
      ~header:[ "implementation"; "schedules"; "completed"; "deadlocked" ]
      [
        [
          "recursive (paper's original)";
          i vr.Explore.seeds_run;
          i vr.Explore.completed;
          i (vr.Explore.sleep_deadlocks + vr.Explore.spin_deadlocks);
        ];
        [
          "rewritten (Mach 3.0, s.7.1)";
          i vw.Explore.seeds_run;
          i vw.Explore.completed;
          i (vw.Explore.sleep_deadlocks + vw.Explore.spin_deadlocks);
        ];
      ]
end

(* ================================================================== *)
(* E7: event-wait latency and throughput (section 6)                   *)
(* ================================================================== *)

module E7 = struct
  let ping_pong () =
    let rounds = 50 in
    let s =
      sim_run ~cpus:2 (fun () ->
          let ping = K.Ev.fresh_event () and pong = K.Ev.fresh_event () in
          let guard = K.Slock.make ~name:"pp" () in
          let turn = ref 0 in
          let player my_turn my_ev other_ev () =
            for _ = 1 to rounds do
              K.Slock.lock guard;
              if !turn <> my_turn then begin
                K.Ev.assert_wait my_ev;
                K.Slock.unlock guard;
                ignore (K.Ev.thread_block ())
              end
              else K.Slock.unlock guard;
              K.Slock.lock guard;
              turn := 1 - my_turn;
              ignore (K.Ev.thread_wakeup other_ev);
              K.Slock.unlock guard
            done
          in
          let a = Engine.spawn ~name:"ping" (player 0 ping pong) in
          let b = Engine.spawn ~name:"pong" (player 1 pong ping) in
          Engine.join a;
          Engine.join b)
    in
    s.Engine.makespan / rounds

  let herd n =
    let s =
      sim_run ~cpus:8 (fun () ->
          let ev = K.Ev.fresh_event () in
          let served = Engine.Cell.make 0 in
          let sleepers =
            List.init n (fun _ ->
                Engine.spawn (fun () ->
                    K.Ev.assert_wait ev;
                    ignore (K.Ev.thread_block ());
                    ignore (Engine.Cell.fetch_and_add served 1)))
          in
          let rec drive () =
            if Engine.Cell.get served < n then begin
              ignore (K.Ev.thread_wakeup ev);
              Engine.pause ();
              drive ()
            end
          in
          drive ();
          List.iter Engine.join sleepers)
    in
    s.Engine.makespan

  let run () =
    section ~id:"E7" ~title:"event-wait mechanism costs"
      ~claim:
        "the split assert_wait/thread_block design makes release-locks-and-\
         wait atomic w.r.t. wakeup at the cost of one extra declaration \
         step; wakeup is broadcast (s.6)";
    table
      ~header:[ "benchmark"; "cycles" ]
      ([ [ "sleep/wakeup round trip (per round)"; i (ping_pong ()) ] ]
      @ List.map
          (fun n ->
            [ Printf.sprintf "broadcast wakeup herd of %d" n; i (herd n) ])
          [ 2; 8; 32 ])
end

(* ================================================================== *)
(* E8: reference counting costs (section 8)                            *)
(* ================================================================== *)

module E8 = struct
  let contended cpus =
    let ops = 100 in
    let s =
      sim_run ~cpus (fun () ->
          let r = K.Ref.make () in
          let ts =
            List.init cpus (fun _ ->
                Engine.spawn (fun () ->
                    for _ = 1 to ops do
                      K.Ref.clone r;
                      ignore (K.Ref.release r)
                    done))
          in
          List.iter Engine.join ts)
    in
    s.Engine.makespan / ops

  let run () =
    section ~id:"E8" ~title:"reference counting costs"
      ~claim:
        "acquiring a reference never blocks (legal under locks); the count \
         cell is a shared hot spot that scales with contention, which is \
         why counts live with per-object locks rather than globally (s.8)";
    let rows = List.map (fun cpus -> [ i cpus; i (contended cpus) ]) cpu_sweep in
    table
      ~header:[ "cpus"; "cycles per clone+release (one shared object)" ]
      rows
end

(* ================================================================== *)
(* E9: the kernel operation path (section 10)                          *)
(* ================================================================== *)

module E9 = struct
  let rpc_sweep clients =
    let calls = 20 in
    let s =
      sim_run ~cpus:8 (fun () ->
          let kernel = Kernel.start ~pages:32 () in
          Scenarios.null_rpc_workload kernel ~clients ~calls_each:calls;
          Kernel.shutdown kernel)
    in
    (s.Engine.makespan, s.Engine.makespan / (clients * calls))

  let run () =
    section ~id:"E9" ~title:"kernel operation path: null RPC round trip"
      ~claim:
        "every kernel operation pays the section 10 sequence: message, \
         port translation + object reference, operation, reference \
         release, reply (s.10)";
    let rows =
      List.map
        (fun clients ->
          let makespan, per = rpc_sweep clients in
          [ i clients; i makespan; i per ])
        [ 1; 2; 4; 8 ]
    in
    table ~header:[ "clients"; "makespan"; "cycles/rpc" ] rows
end

(* ================================================================== *)
(* E10: TLB shootdown cost (section 7)                                 *)
(* ================================================================== *)

module E10 = struct
  let shootdown_cost participants =
    let removals = 10 in
    let s =
      sim_run ~cpus:(participants + 1) (fun () ->
          let pm = Vm.Pmap.create () in
          (* victims: threads on other cpus spinning at spl0, pmap active *)
          let stop = Engine.Cell.make 0 in
          let victims =
            List.init participants (fun k ->
                let cpu = k + 1 in
                Engine.spawn ~name:(Printf.sprintf "victim%d" cpu) ~bound:cpu
                  (fun () ->
                    Vm.Pmap.activate pm ~cpu;
                    Engine.spin_hint "stop";
                    while Engine.Cell.get stop = 0 do
                      Engine.pause ()
                    done))
          in
          (* the initiator is pinned to cpu0 so it cannot occupy (and
             starve) a victim's cpu while busy-waiting *)
          let initiator =
            Engine.spawn ~name:"initiator" ~bound:0 (fun () ->
                for j = 0 to removals - 1 do
                  Vm.Pmap.enter pm ~va:(0x1000 + j) ~ppn:j
                    ~prot:Vm.Tlb.Read_write
                done;
                Engine.spin_hint "activation";
                while List.length (Vm.Pmap.active_cpus pm) < participants do
                  Engine.pause ()
                done;
                for j = 0 to removals - 1 do
                  ignore (Vm.Pmap.remove pm ~va:(0x1000 + j))
                done;
                Engine.Cell.set stop 1)
          in
          Engine.join initiator;
          List.iter Engine.join victims)
    in
    (s.Engine.makespan / removals, s.Engine.interrupts_delivered)

  let run () =
    section ~id:"E10" ~title:"TLB shootdown: barrier sync at interrupt level"
      ~claim:
        "barrier synchronization at interrupt level is a costly operation \
         and is actively discouraged; cost grows with the number of \
         processors that must rendezvous (s.7)";
    let rows =
      List.map
        (fun p ->
          let per, intrs = shootdown_cost p in
          [ i p; i per; i intrs ])
        [ 0; 1; 2; 4; 8; 15 ]
    in
    table
      ~header:[ "remote participants"; "cycles/shootdown"; "interrupts" ]
      rows
end

(* ================================================================== *)
(* E11: the interrupt-deadlock scenario (section 7)                    *)
(* ================================================================== *)

module E11 = struct
  let run () =
    section ~id:"E11" ~title:"inconsistent spl vs the same-spl rule"
      ~claim:
        "if a lock is held with interrupts enabled on one cpu and awaited \
         with interrupts disabled on another while a third starts barrier \
         synchronization, the system deadlocks; acquiring every lock at \
         the same interrupt priority prevents it (s.7)";
    let verdict disciplined =
      Explore.run ~cpus:3
        ~seeds:(List.init 50 (fun s -> s + 1))
        (Scenarios.interrupt_barrier_scenario ~disciplined)
    in
    let vb = verdict false and vd = verdict true in
    table
      ~header:[ "variant"; "schedules"; "completed"; "deadlocked" ]
      [
        [
          "inconsistent spl (buggy)";
          i vb.Explore.seeds_run;
          i vb.Explore.completed;
          i (vb.Explore.sleep_deadlocks + vb.Explore.spin_deadlocks);
        ];
        [
          "same-spl rule (disciplined)";
          i vd.Explore.seeds_run;
          i vd.Explore.completed;
          i (vd.Explore.sleep_deadlocks + vd.Explore.spin_deadlocks);
        ];
      ]
end

(* ================================================================== *)
(* E12: pmap/pv lock orders: arbiter lock vs backout (section 5)       *)
(* ================================================================== *)

module E12 = struct
  (* The reduced form of the section 5 conflict: forward workers need
     pmap-then-pv; reverse workers need pv-then-pmap.  The arbiter
     strategy runs forward under a read lock and reverse under a write
     lock on a third lock; the backout strategy has reverse workers lock
     pv, then make a single attempt on pmap, releasing and retrying on
     failure. *)
  let workload strategy cpus =
    let retries = ref 0 in
    let s =
      sim_run ~cpus (fun () ->
          let pmap_lock = K.Slock.make ~name:"pmap" () in
          let pv_lock = K.Slock.make ~name:"pv" () in
          let psys = K.Clock.make ~name:"psys" ~can_sleep:false () in
          let ops = 30 in
          let forward () =
            for _ = 1 to ops do
              (match strategy with
              | `Arbiter ->
                  K.Clock.lock_read psys;
                  K.Slock.lock pmap_lock;
                  K.Slock.lock pv_lock;
                  Engine.cycles 30;
                  K.Slock.unlock pv_lock;
                  K.Slock.unlock pmap_lock;
                  K.Clock.lock_done psys
              | `Backout ->
                  (* forward is the canonical order: no arbiter needed *)
                  K.Slock.lock pmap_lock;
                  K.Slock.lock pv_lock;
                  Engine.cycles 30;
                  K.Slock.unlock pv_lock;
                  K.Slock.unlock pmap_lock);
              Engine.cycles 100
            done
          in
          let reverse () =
            for _ = 1 to ops do
              (match strategy with
              | `Arbiter ->
                  K.Clock.lock_write psys;
                  K.Slock.lock pv_lock;
                  K.Slock.lock pmap_lock;
                  Engine.cycles 30;
                  K.Slock.unlock pmap_lock;
                  K.Slock.unlock pv_lock;
                  K.Clock.lock_done psys
              | `Backout ->
                  let rec attempt () =
                    K.Slock.lock pv_lock;
                    if K.Slock.try_lock pmap_lock then begin
                      Engine.cycles 30;
                      K.Slock.unlock pmap_lock;
                      K.Slock.unlock pv_lock
                    end
                    else begin
                      incr retries;
                      K.Slock.unlock pv_lock;
                      Engine.pause ();
                      attempt ()
                    end
                  in
                  attempt ());
              Engine.cycles 100
            done
          in
          let ts =
            List.init cpus (fun k ->
                Engine.spawn (if k mod 4 = 0 then reverse else forward))
          in
          List.iter Engine.join ts)
    in
    (s, !retries)

  let run () =
    section ~id:"E12" ~title:"two lock orders: arbiter lock vs backout"
      ~claim:
        "a third (pmap system) lock arbitrates between the pmap-then-pv \
         and pv-then-pmap orders; the backout protocol is the lighter \
         alternative that pays retries instead of a global read lock (s.5)";
    let rows =
      List.concat_map
        (fun cpus ->
          List.map
            (fun (name, strategy) ->
              let s, retries = workload strategy cpus in
              [ i cpus; name; i s.Engine.makespan; i retries ])
            [ ("arbiter (pmap system lock)", `Arbiter); ("backout", `Backout) ])
        [ 4; 8; 16 ]
    in
    table ~header:[ "cpus"; "strategy"; "makespan"; "backout-retries" ] rows
end

(* ================================================================== *)
(* X1: the lock-free timing facility (section 2's exception)           *)
(* ================================================================== *)

module X1 = struct
  module Timer = Mach_kern.Timer

  (* Ticks happen on every context switch and interrupt: compare the
     lock-free single-writer timer against a lock-protected one. *)
  let tick_cost ~locked =
    let ticks = 200 in
    let s =
      sim_run ~cpus:2 (fun () ->
          if locked then begin
            let l = K.Slock.make ~name:"timer-lock" () in
            let total = ref 0 in
            let owner =
              Engine.spawn ~bound:0 (fun () ->
                  for _ = 1 to ticks do
                    K.Slock.lock l;
                    total := !total + 700;
                    K.Slock.unlock l
                  done)
            in
            Engine.join owner
          end
          else begin
            let t = Timer.create ~owner_cpu:0 () in
            let owner =
              Engine.spawn ~bound:0 (fun () ->
                  for _ = 1 to ticks do
                    Timer.tick t ~cycles:700
                  done)
            in
            Engine.join owner
          end)
    in
    s.Engine.makespan / ticks

  let read_contention readers =
    let s =
      sim_run ~cpus:(readers + 1) (fun () ->
          let t = Timer.create ~owner_cpu:0 () in
          let stop = Engine.Cell.make 0 in
          let rs =
            List.init readers (fun k ->
                Engine.spawn ~bound:(k + 1) (fun () ->
                    while Engine.Cell.get stop = 0 do
                      ignore (Timer.read t);
                      Engine.pause ()
                    done))
          in
          let owner =
            Engine.spawn ~bound:0 (fun () ->
                for _ = 1 to 100 do
                  Timer.tick t ~cycles:700;
                  Engine.pause ()
                done;
                Engine.Cell.set stop 1)
          in
          Engine.join owner;
          List.iter Engine.join rs)
    in
    (s.Engine.makespan / 100, s.Engine.bus_transactions)

  let run () =
    section ~id:"X1" ~title:"lock-free usage timers (extension experiment)"
      ~claim:
        "Mach's one exception to multiprocessor locking: timer data \
         structures use single-writer discipline + checked reads instead \
         of a lock, because ticks happen on every context switch (s.2)";
    table
      ~header:[ "variant"; "cycles/tick" ]
      [
        [ "lock-free (checked read protocol)"; i (tick_cost ~locked:false) ];
        [ "simple-lock protected"; i (tick_cost ~locked:true) ];
      ];
    printf "\nwriter ticking under concurrent checked readers:\n";
    let rows =
      List.map
        (fun readers ->
          let per, bus = read_contention readers in
          [ i readers; i per; i bus ])
        [ 0; 1; 3; 7 ]
    in
    table ~header:[ "readers"; "cycles/tick (writer)"; "bus-txns" ] rows
end

(* ================================================================== *)
(* E13: chaos fault injection: detection rate per fault class          *)
(* ================================================================== *)

module E13 = struct
  module Chaos = Mach_chaos.Chaos
  module Fault = Mach_chaos.Chaos_fault
  module Cs = Mach_chaos.Chaos_scenarios

  let seeds = 15

  let detected_by (s : Chaos.sweep) =
    match
      List.filter_map
        (fun (d, n) ->
          if n > 0 && Chaos.detected d then Some (Chaos.detection_name d)
          else None)
        s.Chaos.counts
    with
    | [] -> "-"
    | ds -> String.concat "+" ds

  let run () =
    section ~id:"E13"
      ~title:"chaos fault injection: detection rate per fault class"
      ~claim:
        "seeded fault injection (lost/late/spurious wakeups, deferred \
         interrupts, schedule perturbation, forced preemption) drives the \
         hazards of sections 6-7 out of hiding, and the waits-for \
         detector names the cycle or the orphaned waiter";
    let rows = ref [] and json = ref [] in
    List.iter
      (fun (sname, scenario) ->
        List.iter
          (fun cls ->
            let s =
              Chaos.sweep ~cpus:4 ~seeds
                ~faults:(Fault.mix ~intensity:2 [ cls ])
                scenario
            in
            let first =
              match s.Chaos.first_failure with
              | Some r -> r.Chaos.seed
              | None -> 0
            in
            rows :=
              [
                sname;
                Fault.name cls;
                i s.Chaos.runs;
                f2 (Chaos.detection_rate s);
                detected_by s;
                (if first = 0 then "-" else i first);
              ]
              :: !rows;
            json :=
              Obs_json.Obj
                [
                  ("scenario", Obs_json.String sname);
                  ("fault", Obs_json.String (Fault.name cls));
                  ("runs", Obs_json.Int s.Chaos.runs);
                  ("detection_rate", Obs_json.Float (Chaos.detection_rate s));
                  ("detected_by", Obs_json.String (detected_by s));
                  ("seeds_to_first_detection", Obs_json.Int first);
                ]
              :: !json)
          Fault.all)
      Cs.all;
    table
      ~header:
        [
          "scenario";
          "fault class";
          "runs";
          "detection rate";
          "detected by";
          "first seed";
        ]
      (List.rev !rows);
    let out = "BENCH_chaos.json" in
    let oc = open_out out in
    output_string oc
      (Obs_json.to_string (Obs_json.Obj [ ("E13", Obs_json.List (List.rev !json)) ]));
    output_char oc '\n';
    close_out oc;
    printf "\ndetection table written to %s\n" out
end

(* ================================================================== *)
(* E14: systematic schedule exploration (bounded DPOR model checking)  *)
(* ================================================================== *)

module E14 = struct
  module Mc = Mach_mc.Mc
  module Cs = Mach_chaos.Chaos_scenarios

  (* Each row is one (scenario, mode, bound) exploration.  Scenarios and
     budgets are sized so the whole experiment stays in CI smoke-test
     range on one core: the wakeup herd is explored under a preemption
     bound (its unbounded DPOR run — 38k schedules, VERIFIED — is
     recorded in EXPERIMENTS.md), and the naive baselines that would be
     intractable are capped and reported as incomplete. *)
  let cases =
    [
      (* scenario, cpus, mode, bound, max executions *)
      ("same-spl", 2, Mc.Naive, None, None);
      ("same-spl", 2, Mc.Sleep_sets, None, None);
      ("same-spl", 2, Mc.Dpor, None, None);
      ("same-spl-buggy", 2, Mc.Dpor, None, None);
      ("handoff", 2, Mc.Naive, None, Some 20_000);
      ("handoff", 2, Mc.Sleep_sets, None, None);
      ("handoff", 2, Mc.Dpor, None, None);
      ("herd", 2, Mc.Dpor, Some 2, None);
      ("interrupt-deadlock", 3, Mc.Dpor, None, None);
      ("interrupt-disciplined", 3, Mc.Dpor, Some 1, None);
      ("interrupt-disciplined", 3, Mc.Dpor, Some 2, None);
    ]

  let scenario_fn = function
    | "same-spl" -> Scenarios.same_spl_holder ~disciplined:true
    | "same-spl-buggy" -> Scenarios.same_spl_holder ~disciplined:false
    | "handoff" -> Cs.lost_wakeup_handoff
    | "herd" -> fun () -> Cs.wakeup_herd ~sleepers:2 ()
    | "interrupt-deadlock" ->
        Scenarios.interrupt_barrier_scenario ~disciplined:false
    | "interrupt-disciplined" ->
        Scenarios.interrupt_barrier_scenario ~disciplined:true
    | s -> failwith ("unknown mc scenario " ^ s)

  let mode_name = function
    | Mc.Naive -> "naive"
    | Mc.Sleep_sets -> "sleep"
    | Mc.Dpor -> "dpor"

  let verdict_of (r : Mc.result) =
    if r.Mc.verified then "verified"
    else
      match r.Mc.failure with
      | Some f ->
          Printf.sprintf "failure(%d transitions, %d preemptions)"
            (Array.length f.Mc.f_trace) f.Mc.f_preemptions
      | None -> "incomplete"

  let run () =
    section ~id:"E14"
      ~title:"systematic schedule exploration (bounded DPOR model checking)"
      ~claim:
        "the section 6 event-wait protocol and the section 7 same-spl \
         rule hold over EVERY schedule of small scenarios, the section 7 \
         deadlocks are found without fault injection with minimal \
         replayable counterexamples, and DPOR makes exhaustive search \
         tractable where naive enumeration is not";
    let rows = ref [] and json = ref [] in
    (* naive execution counts per (scenario, cpus), for reduction ratios *)
    let naive_execs = Hashtbl.create 8 in
    List.iter
      (fun (sname, cpus, mode, bound, max_executions) ->
        let t0 = Unix.gettimeofday () in
        let r =
          Mc.check ~cpus ~mode ?bound ?max_executions (scenario_fn sname)
        in
        let ms = (Unix.gettimeofday () -. t0) *. 1000. in
        let execs = r.Mc.stats.Mc.executions in
        if mode = Mc.Naive && r.Mc.complete then
          Hashtbl.replace naive_execs (sname, cpus) execs;
        let ratio =
          if mode = Mc.Dpor then
            match Hashtbl.find_opt naive_execs (sname, cpus) with
            | Some n when n > 0 -> Some (float_of_int execs /. float_of_int n)
            | _ -> None
          else None
        in
        let bound_s =
          match bound with None -> "-" | Some b -> string_of_int b
        in
        rows :=
          [
            sname;
            i cpus;
            mode_name mode;
            bound_s;
            i execs;
            i r.Mc.stats.Mc.pruned;
            (match ratio with None -> "-" | Some x -> Printf.sprintf "%.4f" x);
            verdict_of r;
            f1 ms;
          ]
          :: !rows;
        json :=
          Obs_json.Obj
            ([
               ("scenario", Obs_json.String sname);
               ("cpus", Obs_json.Int cpus);
               ("mode", Obs_json.String (mode_name mode));
               ( "bound",
                 match bound with
                 | None -> Obs_json.String "unbounded"
                 | Some b -> Obs_json.Int b );
               ("executions", Obs_json.Int execs);
               ("pruned", Obs_json.Int r.Mc.stats.Mc.pruned);
               ("transitions", Obs_json.Int r.Mc.stats.Mc.transitions);
               ("complete", Obs_json.Bool r.Mc.complete);
               ("verdict", Obs_json.String (verdict_of r));
               ("wall_ms", Obs_json.Float ms);
             ]
            @ (match ratio with
              | None -> []
              | Some x -> [ ("reduction_vs_naive", Obs_json.Float x) ]))
          :: !json)
      cases;
    table
      ~header:
        [
          "scenario";
          "cpus";
          "mode";
          "bound";
          "schedules";
          "pruned";
          "vs naive";
          "verdict";
          "ms";
        ]
      (List.rev !rows);
    let out = "BENCH_mc.json" in
    let oc = open_out out in
    output_string oc
      (Obs_json.to_string
         (Obs_json.Obj [ ("E14", Obs_json.List (List.rev !json)) ]));
    output_char oc '\n';
    close_out oc;
    printf "\nexploration table written to %s\n" out
end

(* ================================================================== *)
(* E15: queue locks at scale: ttas -> ticket/MCS crossover              *)
(* ================================================================== *)

module E15 = struct
  module Lock_proto = Mach_core.Lock_proto

  (* E1's contention workload pushed to 64 cpus and extended with the
     lib/locks queue protocols.  Fewer iterations than E1 so the 64-cpu
     rows stay in smoke-test range; the contention level per acquire is
     what matters, not the total operation count. *)
  let sweep = [ 2; 8; 16; 32; 64 ]
  let iters = 12

  let mutex_workload mk cpus =
    sim_run ~cpus (fun () ->
        let lock = mk () in
        let data = Array.init 4 (fun _ -> Engine.Cell.make 0) in
        let worker () =
          for _ = 1 to iters do
            K.Slock.lock lock;
            Array.iter (fun d -> ignore (Engine.Cell.fetch_and_add d 1)) data;
            Engine.cycles 20;
            K.Slock.unlock lock
          done
        in
        let ts = List.init cpus (fun _ -> Engine.spawn worker) in
        List.iter Engine.join ts)

  let protos =
    List.map
      (fun p ->
        ( Spin.protocol_name p,
          fun () -> K.Slock.make ~name:"l" ~protocol:p () ))
      Spin.all_protocols
    @ List.map
        (fun f ->
          (Lock_proto.name f, fun () -> K.Slock.make ~name:"l" ~proto:f ()))
        K.Locks.all

  (* Read-mostly workload (~5% writes): big-reader lock vs the complex
     readers/writer lock vs a plain ttas mutex. *)
  let rw_ops = 20

  let read_mostly impl cpus =
    sim_run ~cpus (fun () ->
        let d = Engine.Cell.make 0 in
        let read () =
          ignore (Engine.Cell.get d);
          Engine.cycles 10
        in
        let write () = ignore (Engine.Cell.fetch_and_add d 1) in
        let run_ops do_read do_write w () =
          for op = 1 to rw_ops do
            if (op + w) mod rw_ops = 0 then do_write () else do_read ()
          done
        in
        let worker =
          match impl with
          | `Brlock ->
              let l = K.Locks.Brlock.make ~name:"br" in
              run_ops
                (fun () -> K.Locks.Brlock.with_read l read)
                (fun () -> K.Locks.Brlock.with_write l write)
          | `Clock ->
              let l = K.Clock.make ~name:"rw" ~can_sleep:false () in
              run_ops
                (fun () ->
                  K.Clock.lock_read l;
                  read ();
                  K.Clock.lock_done l)
                (fun () ->
                  K.Clock.lock_write l;
                  write ();
                  K.Clock.lock_done l)
          | `Ttas ->
              let l = K.Slock.make ~name:"m" ~protocol:Spin.Ttas () in
              run_ops
                (fun () ->
                  K.Slock.lock l;
                  read ();
                  K.Slock.unlock l)
                (fun () ->
                  K.Slock.lock l;
                  write ();
                  K.Slock.unlock l)
        in
        let ts = List.init cpus (fun w -> Engine.spawn (worker w)) in
        List.iter Engine.join ts)

  let run () =
    section ~id:"E15" ~title:"queue locks at scale: the ttas crossover"
      ~claim:
        "spinning on a remote flag costs bus bandwidth proportional to \
         waiters; queue locks (ticket with proportional backoff, MCS, \
         Anderson) spin locally and hand off explicitly, so past a \
         crossover cpu count they beat ttas on both bus traffic and \
         makespan; a big-reader lock makes read-mostly data near-free to \
         read (s.2)";
    let tbl = Hashtbl.create 64 in
    let mutex_rows =
      List.concat_map
        (fun cpus ->
          List.map
            (fun (name, mk) ->
              let s = mutex_workload mk cpus in
              Hashtbl.replace tbl (name, cpus) s;
              [
                i cpus;
                name;
                i s.Engine.makespan;
                i s.Engine.bus_transactions;
                i s.Engine.atomic_ops;
                i s.Engine.cache_misses;
              ])
            protos)
        sweep
    in
    table
      ~header:
        [ "cpus"; "protocol"; "makespan"; "bus-txns"; "atomics"; "misses" ]
      mutex_rows;
    (* Crossover: smallest cpu count at which a queue protocol beats ttas
       on makespan AND bus traffic, and stays ahead for the rest of the
       sweep. *)
    let beats name cpus =
      let s = Hashtbl.find tbl (name, cpus) in
      let t = Hashtbl.find tbl ("ttas", cpus) in
      s.Engine.makespan < t.Engine.makespan
      && s.Engine.bus_transactions < t.Engine.bus_transactions
    in
    let crossover name =
      let rec scan = function
        | [] -> None
        | c :: rest ->
            if beats name c && List.for_all (beats name) rest then Some c
            else scan rest
      in
      scan sweep
    in
    let queue_names = List.map Lock_proto.name K.Locks.all in
    printf "\ncrossover vs ttas (beats on makespan AND bus-txns from here up):\n";
    table
      ~header:[ "protocol"; "crossover-cpus" ]
      (List.map
         (fun n ->
           [ n; (match crossover n with None -> "-" | Some c -> i c) ])
         queue_names);
    printf "\nread-mostly (%d%% writes):\n" (100 / rw_ops);
    let rw_rows =
      List.concat_map
        (fun cpus ->
          List.map
            (fun (name, impl) ->
              let s = read_mostly impl cpus in
              Hashtbl.replace tbl ("rw:" ^ name, cpus) s;
              [
                i cpus;
                name;
                i s.Engine.makespan;
                i s.Engine.bus_transactions;
                i s.Engine.atomic_ops;
              ])
            [
              ("brlock", `Brlock);
              ("complex-rw", `Clock);
              ("ttas-mutex", `Ttas);
            ])
        sweep
    in
    table
      ~header:[ "cpus"; "impl"; "makespan"; "bus-txns"; "atomics" ]
      rw_rows;
    (* JSON export mirroring the printed tables, for the CI artifact. *)
    let stats_fields (s : Engine.stats) =
      [
        ("makespan", Obs_json.Int s.Engine.makespan);
        ("bus_txns", Obs_json.Int s.Engine.bus_transactions);
        ("atomics", Obs_json.Int s.Engine.atomic_ops);
        ("misses", Obs_json.Int s.Engine.cache_misses);
      ]
    in
    let mutex_json =
      List.concat_map
        (fun cpus ->
          List.map
            (fun (name, _) ->
              Obs_json.Obj
                (( "protocol", Obs_json.String name )
                 :: ("cpus", Obs_json.Int cpus)
                 :: stats_fields (Hashtbl.find tbl (name, cpus))))
            protos)
        sweep
    in
    let rw_json =
      List.concat_map
        (fun cpus ->
          List.map
            (fun name ->
              Obs_json.Obj
                (( "impl", Obs_json.String name )
                 :: ("cpus", Obs_json.Int cpus)
                 :: stats_fields (Hashtbl.find tbl ("rw:" ^ name, cpus))))
            [ "brlock"; "complex-rw"; "ttas-mutex" ])
        sweep
    in
    let crossover_json =
      List.map
        (fun n ->
          Obs_json.Obj
            [
              ("protocol", Obs_json.String n);
              ("vs", Obs_json.String "ttas");
              ( "crossover_cpus",
                match crossover n with
                | None -> Obs_json.Null
                | Some c -> Obs_json.Int c );
            ])
        queue_names
    in
    let out = "BENCH_locks.json" in
    let oc = open_out out in
    output_string oc
      (Obs_json.to_string
         (Obs_json.Obj
            [
              ( "E15",
                Obs_json.Obj
                  [
                    ("mutex", Obs_json.List mutex_json);
                    ("read_mostly", Obs_json.List rw_json);
                    ("crossover", Obs_json.List crossover_json);
                  ] );
            ]));
    output_char oc '\n';
    close_out oc;
    printf "\nlock-suite tables written to %s\n" out
end

(* ================================================================== *)
(* E16: range locks over the VM map: fault storms at scale              *)
(* ================================================================== *)

module E16 = struct
  (* Each thread owns a disjoint slice of one map and repeatedly
     allocates, faults and deallocates it (Scenarios.vm_fault_storm).
     Under the coarse discipline every operation takes the one map lock,
     so the storm serializes no matter how disjoint the addresses; under
     range locking only overlapping requests conflict.  The workload is
     deliberately light per thread (the 64-cpu coarse row is quadratic
     in waiters) so the sweep stays in smoke-test range. *)
  let sweep = [ 2; 8; 16; 32; 64 ]
  let pages_per_thread = 2
  let rounds = 1

  let storm locking cpus =
    sim_run ~cpus (fun () ->
        Scenarios.vm_fault_storm ~locking ~threads:cpus ~pages_per_thread
          ~rounds ())

  let run () =
    section ~id:"E16" ~title:"range locks over the VM map: fault storms"
      ~claim:
        "a map-wide lock serializes every allocation, fault and \
         deallocation no matter how disjoint their addresses; a \
         list-based range lock admits all non-overlapping operations at \
         once, so a many-thread fault storm across a large address space \
         scales with cpus instead of collapsing onto the one lock (s.4)";
    let tbl = Hashtbl.create 16 in
    let disciplines = [ Vm.Vm_map.Coarse; Vm.Vm_map.Range ] in
    let rows =
      List.concat_map
        (fun cpus ->
          List.map
            (fun locking ->
              let s = storm locking cpus in
              let name = Vm.Vm_map.locking_name locking in
              Hashtbl.replace tbl (name, cpus) s;
              [
                i cpus;
                name;
                i s.Engine.makespan;
                i s.Engine.bus_transactions;
                i s.Engine.atomic_ops;
              ])
            disciplines)
        sweep
    in
    table
      ~header:[ "cpus"; "locking"; "makespan"; "bus-txns"; "atomics" ]
      rows;
    let speedup cpus =
      let c = Hashtbl.find tbl ("coarse", cpus) in
      let r = Hashtbl.find tbl ("range", cpus) in
      float_of_int c.Engine.makespan /. float_of_int r.Engine.makespan
    in
    printf "\nrange-lock speedup over the coarse map lock (makespan ratio):\n";
    table
      ~header:[ "cpus"; "coarse/range" ]
      (List.map (fun c -> [ i c; f2 (speedup c) ]) sweep);
    (* Crossover: smallest cpu count at which the range-locked map beats
       the coarse one and stays ahead for the rest of the sweep. *)
    let beats c = speedup c > 1.0 in
    let crossover =
      let rec scan = function
        | [] -> None
        | c :: rest ->
            if beats c && List.for_all beats rest then Some c else scan rest
      in
      scan sweep
    in
    (match crossover with
    | Some c -> printf "range beats coarse from %d cpus up\n" c
    | None -> printf "range never beats coarse in this sweep\n");
    let storm_json =
      List.concat_map
        (fun cpus ->
          List.map
            (fun locking ->
              let name = Vm.Vm_map.locking_name locking in
              let s = Hashtbl.find tbl (name, cpus) in
              Obs_json.Obj
                [
                  ("locking", Obs_json.String name);
                  ("cpus", Obs_json.Int cpus);
                  ("makespan", Obs_json.Int s.Engine.makespan);
                  ("bus_txns", Obs_json.Int s.Engine.bus_transactions);
                  ("atomics", Obs_json.Int s.Engine.atomic_ops);
                ])
            disciplines)
        sweep
    in
    let speedup_json =
      List.map
        (fun c ->
          Obs_json.Obj
            [
              ("cpus", Obs_json.Int c);
              ("range_speedup", Obs_json.Float (speedup c));
            ])
        sweep
    in
    let out = "BENCH_vm.json" in
    let oc = open_out out in
    output_string oc
      (Obs_json.to_string
         (Obs_json.Obj
            [
              ( "E16",
                Obs_json.Obj
                  [
                    ("storm", Obs_json.List storm_json);
                    ("speedup", Obs_json.List speedup_json);
                    ( "crossover_cpus",
                      match crossover with
                      | None -> Obs_json.Null
                      | Some c -> Obs_json.Int c );
                  ] );
            ]));
    output_char oc '\n';
    close_out oc;
    printf "\nvm-map tables written to %s\n" out
end

(* ================================================================== *)
(* E18: causal observability: blockers, critical path, flight recorder *)
(* ================================================================== *)

module E18 = struct
  module Obs_span = Mach_obs.Obs_span
  module Obs_cp = Mach_obs.Obs_critical_path
  module Cs = Mach_chaos.Chaos_scenarios

  (* Three workload shapes with different causal structure: E1's
     single-lock hammer (lock spans dominate), E13's event handoff
     (event-wait spans), and E15's 64-cpu ttas point (the scale the
     acceptance run uses). *)
  let ttas_hammer ~iters () =
    let lock = K.Slock.make ~name:"contended" ~protocol:Spin.Ttas () in
    let data = Array.init 4 (fun _ -> Engine.Cell.make 0) in
    let ts =
      List.init
        (Engine.cpu_count ())
        (fun _ ->
          Engine.spawn (fun () ->
              for _ = 1 to iters do
                K.Slock.lock lock;
                Array.iter
                  (fun d -> ignore (Engine.Cell.fetch_and_add d 1))
                  data;
                Engine.cycles 20;
                K.Slock.unlock lock
              done))
    in
    List.iter Engine.join ts

  (* The handoff row runs under the random policy (as E13's chaos sweeps
     do): under Timed the consumer is dispatched after the producer's
     wakeup and never sleeps, so there would be no event span to
     attribute.  The rpc row exercises the ipc and event span kinds. *)
  let timed = Fun.id
  let random cfg = { cfg with Config.policy = Config.Random_policy; seed = 1 }

  let rpc () =
    let kernel = Kernel.start ~pages:64 () in
    Scenarios.null_rpc_workload kernel ~clients:4 ~calls_each:10;
    Kernel.shutdown kernel

  let workloads =
    [
      ("e1-ttas-16cpu", 16, timed, ttas_hammer ~iters:30);
      ("e13-handoff-4cpu", 4, random, Cs.lost_wakeup_handoff);
      ("e15-ttas-64cpu", 64, timed, ttas_hammer ~iters:12);
      ("rpc-4cpu", 4, timed, rpc);
    ]

  let run () =
    section ~id:"E18" ~title:"causal observability: who blocks whom, and why"
      ~claim:
        "span-level blocked-by attribution and offline critical-path \
         analysis explain the measured slowdowns of E1/E15 (lock waits \
         on the makespan's path) and E13's handoff latency (event waits) \
         without perturbing the schedule — spans on is byte-identical to \
         spans off";
    let rows = ref [] in
    List.iter
      (fun (wname, cpus, policy_tweak, workload) ->
        let stats =
          sim_run ~cpus
            ~tweak:(fun cfg ->
              policy_tweak
                { cfg with Config.trace = true; track_waits = true })
            workload
        in
        let view =
          match Obs_span.last () with
          | Some v -> v
          | None -> Obs_span.empty_view
        in
        let evs =
          List.map
            (fun (e : Mach_sim.Sim_trace.event) ->
              {
                Obs_cp.cp_clock = e.Mach_sim.Sim_trace.clock;
                cp_ev = e.Mach_sim.Sim_trace.ev;
              })
            (Engine.trace_events ())
        in
        let cp = Obs_cp.compute ~makespan:stats.Engine.makespan evs in
        let dom_cls, dom_frac =
          match Obs_cp.dominant cp with
          | Some a -> (a.Obs_cp.cls, a.Obs_cp.fraction)
          | None -> ("-", 0.)
        in
        let spans_closed =
          List.fold_left
            (fun acc (s : Obs_span.site) -> acc + s.Obs_span.s_spans)
            0 view.Obs_span.v_sites
        in
        let blocked =
          List.fold_left
            (fun acc (s : Obs_span.site) -> acc + s.Obs_span.s_blocked)
            0 view.Obs_span.v_sites
        in
        let flight_spans =
          List.fold_left
            (fun acc (_, l) -> acc + List.length l)
            0 view.Obs_span.v_flight
        in
        rows :=
          [
            wname;
            i cpus;
            i spans_closed;
            i blocked;
            dom_cls;
            f2 dom_frac;
            f2 cp.Obs_cp.residual;
            i flight_spans;
          ]
          :: !rows;
        obs_add_json wname
          (Obs_json.Obj
             [
               ("cpus", Obs_json.Int cpus);
               ("makespan", Obs_json.Int stats.Engine.makespan);
               ("spans", Obs_span.to_json view);
               ("critical_path", Obs_cp.to_json cp);
             ]))
      workloads;
    table
      ~header:
        [
          "workload";
          "cpus";
          "spans";
          "blocked";
          "dominant class";
          "cp-fraction";
          "residual";
          "flight";
        ]
      (List.rev !rows)
end

(* ================================================================== *)

(* ================================================================== *)
(* E19: scache page cache: read-mostly lookup storm                     *)
(* ================================================================== *)

module E19 = struct
  (* Read-mostly page lookups against one vm_cache under three index
     locks: the scache per-cpu refcount RW lock, the brlock, and a flat
     mutex (every lookup takes the one simple lock — the baseline the
     scache protocol exists to beat).  Writes (evict + refill) are rare
     and staggered so the workload matches the cache's design point:
     under the RW disciplines readers share the lock, under the mutex
     they convoy. *)
  let sweep = [ 2; 8; 16; 32; 64 ]

  let locking_name = function
    | Vm.Vm_cache.Scache -> "scache"
    | Vm.Vm_cache.Brlock_rw -> "brlock"
    | Vm.Vm_cache.Mutex -> "mutex"

  let storm locking cpus =
    sim_run ~cpus (fun () ->
        Scenarios.vm_cache_ops ~locking ~threads:cpus ())

  let run () =
    section ~id:"E19" ~title:"scache page cache: read-mostly lookup storm"
      ~claim:
        "a page-cache index behind one mutex convoys every lookup; the \
         scache protocol counts readers in per-cpu refcount slots so \
         read-mostly lookups proceed in parallel, and the write-side \
         sweep only charges the rare evict/fill (s.5)";
    let tbl = Hashtbl.create 16 in
    let disciplines =
      [ Vm.Vm_cache.Scache; Vm.Vm_cache.Brlock_rw; Vm.Vm_cache.Mutex ]
    in
    let rows =
      List.concat_map
        (fun cpus ->
          List.map
            (fun locking ->
              let s = storm locking cpus in
              let name = locking_name locking in
              Hashtbl.replace tbl (name, cpus) s;
              [
                i cpus;
                name;
                i s.Engine.makespan;
                i s.Engine.bus_transactions;
                i s.Engine.atomic_ops;
              ])
            disciplines)
        sweep
    in
    table
      ~header:[ "cpus"; "locking"; "makespan"; "bus-txns"; "atomics" ]
      rows;
    let speedup name cpus =
      let m = Hashtbl.find tbl ("mutex", cpus) in
      let s = Hashtbl.find tbl (name, cpus) in
      float_of_int m.Engine.makespan /. float_of_int s.Engine.makespan
    in
    printf "\nread-throughput speedup over the mutex cache (makespan ratio):\n";
    table
      ~header:[ "cpus"; "mutex/scache"; "mutex/brlock" ]
      (List.map
         (fun c -> [ i c; f2 (speedup "scache" c); f2 (speedup "brlock" c) ])
         sweep);
    (* Crossover: smallest cpu count from which scache stays ahead. *)
    let beats c = speedup "scache" c > 1.0 in
    let crossover =
      let rec scan = function
        | [] -> None
        | c :: rest ->
            if beats c && List.for_all beats rest then Some c else scan rest
      in
      scan sweep
    in
    (match crossover with
    | Some c -> printf "scache beats the mutex cache from %d cpus up\n" c
    | None -> printf "scache never beats the mutex cache in this sweep\n");
    let storm_json =
      List.concat_map
        (fun cpus ->
          List.map
            (fun locking ->
              let name = locking_name locking in
              let s = Hashtbl.find tbl (name, cpus) in
              Obs_json.Obj
                [
                  ("locking", Obs_json.String name);
                  ("cpus", Obs_json.Int cpus);
                  ("makespan", Obs_json.Int s.Engine.makespan);
                  ("bus_txns", Obs_json.Int s.Engine.bus_transactions);
                  ("atomics", Obs_json.Int s.Engine.atomic_ops);
                ])
            disciplines)
        sweep
    in
    let speedup_json =
      List.map
        (fun c ->
          Obs_json.Obj
            [
              ("cpus", Obs_json.Int c);
              ("scache_speedup", Obs_json.Float (speedup "scache" c));
              ("brlock_speedup", Obs_json.Float (speedup "brlock" c));
            ])
        sweep
    in
    let out = "BENCH_cache.json" in
    let oc = open_out out in
    output_string oc
      (Obs_json.to_string
         (Obs_json.Obj
            [
              ( "E19",
                Obs_json.Obj
                  [
                    ("storm", Obs_json.List storm_json);
                    ("speedup", Obs_json.List speedup_json);
                    ( "crossover_cpus",
                      match crossover with
                      | None -> Obs_json.Null
                      | Some c -> Obs_json.Int c );
                  ] );
            ]));
    output_char oc '\n';
    close_out oc;
    printf "\npage-cache tables written to %s\n" out
end

(* ================================================================== *)
(* E20: RPC serving over ports: batching + a sharded name space        *)
(* ================================================================== *)

module E20 = struct
  (* The first end-to-end workload number (ROADMAP item 3): client cpus
     hammer port-based echo servers through the MiG stubs and the full
     section 10 reference protocol — per-request name lookup, port-right
     translation, refcount take/drop, dispatch, reply, and (in the drain
     leg) clean shutdown under load.  Two throughput mechanisms are
     swept against the flat baseline: batching (the server dequeues up
     to k requests per port-lock acquisition) and a sharded port name
     space (names hashed over S translation tables, each under its own
     lock, in place of the single global table).

     RPCs/sec is simulated time at a nominal 1 GHz (1 cycle = 1 ns):
     sustained = served x 1e9 / makespan-cycles.  The per-request
     latency percentiles come from the rpc.latency_cycles histogram the
     scenario feeds per call. *)

  let sweep = [ 2; 8; 16; 32; 64 ]

  (* (label, shards, batch) *)
  let configs =
    [ ("flat", 1, 1); ("sharded", 8, 1); ("batched", 1, 8); ("sh+batch", 8, 8) ]

  let panics = ref 0

  type res = {
    served : int;
    drained : int;
    makespan : int;
    rps : float;
    p50 : int;
    p99 : int;
  }

  let serve ?(drain = false) ~cpus ~shards ~batch ~calls_each () =
    (* Metrics are reset per run so the latency percentiles are this
       run's, not the sweep's aggregate. *)
    Obs_metrics.reset ();
    let cfg = { (Config.bench ~cpus ()) with Config.seed = 3 } in
    let counts = ref (0, 0) in
    match
      Engine.run_outcome ~cfg (fun () ->
          counts :=
            Scenarios.rpc_serve ~shards ~batch ~calls_each
              ~drain_under_load:drain ())
    with
    | Engine.Completed stats ->
        let served, drained = !counts in
        let h =
          Obs_metrics.merged (Obs_metrics.histogram "rpc.latency_cycles")
        in
        Some
          {
            served;
            drained;
            makespan = stats.Engine.makespan;
            rps =
              float_of_int served *. 1e9
              /. float_of_int (max 1 stats.Engine.makespan);
            p50 = Obs_histogram.percentile h 50.;
            p99 = Obs_histogram.percentile h 99.;
          }
    | Engine.Panicked msg ->
        incr panics;
        printf "PANIC (%d cpus, shards=%d batch=%d): %s\n" cpus shards batch msg;
        None
    | Engine.Deadlocked (_, msg) ->
        incr panics;
        printf "DEADLOCK (%d cpus, shards=%d batch=%d): %s\n" cpus shards batch
          msg;
        None
    | Engine.Hit_step_limit ->
        incr panics;
        printf "STEP LIMIT (%d cpus, shards=%d batch=%d)\n" cpus shards batch;
        None

  let f0 x = Printf.sprintf "%.0f" x

  let run ?(smoke = false) () =
    panics := 0;
    section ~id:"E20" ~title:"RPC serving: batching + sharded port name space"
      ~claim:
        "the section 10 reference protocol (translate, take/drop, \
         dispatch, reply) serves sustained RPC traffic; batched dequeue \
         amortizes the port-lock hold and a sharded name space removes \
         the global translation-table lock from the hot path, so \
         throughput scales with client cpus instead of convoying \
         (Elphinstone et al.: IPC throughput is where lock granularity \
         pays off or collapses)";
    let sweep = if smoke then [ 4 ] else sweep in
    let calls_each = 16 in
    let tbl = Hashtbl.create 32 in
    let rows =
      List.concat_map
        (fun cpus ->
          List.filter_map
            (fun (name, shards, batch) ->
              match serve ~cpus ~shards ~batch ~calls_each () with
              | None -> None
              | Some r ->
                  Hashtbl.replace tbl (name, cpus) r;
                  Some
                    [
                      i cpus;
                      name;
                      i r.served;
                      i r.makespan;
                      f0 r.rps;
                      i r.p50;
                      i r.p99;
                    ])
            configs)
        sweep
    in
    table
      ~header:
        [ "cpus"; "config"; "rpcs"; "makespan"; "RPCs/sec"; "p50-cyc"; "p99-cyc" ]
      rows;
    let ratio name cpus =
      match
        (Hashtbl.find_opt tbl ("flat", cpus), Hashtbl.find_opt tbl (name, cpus))
      with
      | Some flat, Some r ->
          Some (float_of_int flat.makespan /. float_of_int r.makespan)
      | _ -> None
    in
    let fr = function Some x -> f2 x | None -> "-" in
    printf "\nthroughput speedup over flat batch=1 (makespan ratio):\n";
    table
      ~header:[ "cpus"; "sharded"; "batched"; "sh+batch" ]
      (List.map
         (fun c ->
           [
             i c;
             fr (ratio "sharded" c);
             fr (ratio "batched" c);
             fr (ratio "sh+batch" c);
           ])
         sweep);
    (* The headline sustained leg: a longer sharded+batched run at the
       top of the sweep (the smoke variant reuses the small size so it
       stays inside the CI budget). *)
    let sus_cpus, sus_calls = if smoke then (4, 32) else (64, 256) in
    let sustained = serve ~cpus:sus_cpus ~shards:8 ~batch:8 ~calls_each:sus_calls () in
    (match sustained with
    | Some r ->
        printf
          "\nsustained: %d RPCs in %d cycles = %s RPCs/sec at a nominal 1 \
           GHz (sharded+batched, %d cpus)\n"
          r.served r.makespan (f0 r.rps) sus_cpus;
        printf "sustained p99 latency: %d cycles (p50 %d)\n" r.p99 r.p50
    | None -> printf "\nsustained leg FAILED\n");
    (* Shutdown under load: servers terminated mid-traffic must answer
       every in-flight request (err_deactivated) and leak nothing — the
       scenario panics on a §4 double-free or a leaked reference, so a
       Completed outcome IS the clean-drain verdict. *)
    let drain_cpus = if smoke then 4 else 16 in
    let drain_res = serve ~drain:true ~cpus:drain_cpus ~shards:4 ~batch:4 ~calls_each () in
    (match drain_res with
    | Some r ->
        printf
          "shutdown drain: clean (%d cpus: %d served, %d in-flight answered \
           err_deactivated, all references balanced)\n"
          drain_cpus r.served r.drained
    | None -> printf "shutdown drain: FAILED\n");
    printf "refcount panics: %d\n" !panics;
    let res_json r =
      [
        ("served", Obs_json.Int r.served);
        ("drained", Obs_json.Int r.drained);
        ("makespan", Obs_json.Int r.makespan);
        ("rpcs_per_sec", Obs_json.Float r.rps);
        ("p50_cycles", Obs_json.Int r.p50);
        ("p99_cycles", Obs_json.Int r.p99);
      ]
    in
    let sweep_json =
      List.concat_map
        (fun cpus ->
          List.filter_map
            (fun (name, shards, batch) ->
              Hashtbl.find_opt tbl (name, cpus)
              |> Option.map (fun r ->
                     Obs_json.Obj
                       ([
                          ("config", Obs_json.String name);
                          ("cpus", Obs_json.Int cpus);
                          ("shards", Obs_json.Int shards);
                          ("batch", Obs_json.Int batch);
                        ]
                       @ res_json r)))
            configs)
        sweep
    in
    let speedup_json =
      List.map
        (fun c ->
          let f name =
            match ratio name c with
            | Some x -> Obs_json.Float x
            | None -> Obs_json.Null
          in
          Obs_json.Obj
            [
              ("cpus", Obs_json.Int c);
              ("sharded_speedup", f "sharded");
              ("batched_speedup", f "batched");
              ("sharded_batched_speedup", f "sh+batch");
            ])
        sweep
    in
    let opt_obj extra = function
      | Some r -> Obs_json.Obj (extra @ res_json r)
      | None -> Obs_json.Null
    in
    let out = "BENCH_rpc.json" in
    let oc = open_out out in
    output_string oc
      (Obs_json.to_string
         (Obs_json.Obj
            [
              ( "E20",
                Obs_json.Obj
                  [
                    ("mode", Obs_json.String (if smoke then "smoke" else "full"));
                    ("sweep", Obs_json.List sweep_json);
                    ("speedup", Obs_json.List speedup_json);
                    ( "sustained",
                      opt_obj [ ("cpus", Obs_json.Int sus_cpus) ] sustained );
                    ( "drain",
                      opt_obj [ ("cpus", Obs_json.Int drain_cpus) ] drain_res );
                    ("refcount_panics", Obs_json.Int !panics);
                  ] );
            ]));
    output_char oc '\n';
    close_out oc;
    printf "\nrpc tables written to %s\n" out
end

let experiments =
  [
    ("N0", N0.run);
    ("E1", E1.run);
    ("E2", E2.run);
    ("E3", E3.run);
    ("E4", E4.run);
    ("E5", E5.run);
    ("E6", E6.run);
    ("E7", E7.run);
    ("E8", E8.run);
    ("E9", E9.run);
    ("E10", E10.run);
    ("E11", E11.run);
    ("E12", E12.run);
    ("E13", E13.run);
    ("E14", E14.run);
    ("E15", E15.run);
    ("E16", E16.run);
    ("E18", E18.run);
    ("E19", E19.run);
    ("E20", (fun () -> E20.run ()));
    ("E20-smoke", (fun () -> E20.run ~smoke:true ()));
    ("X1", X1.run);
  ]

let () =
  let requested =
    match Array.to_list Sys.argv with
    | _ :: (_ :: _ as ids) -> ids
    | _ -> List.map fst experiments
  in
  let obs = ref [] in
  List.iter
    (fun id ->
      match List.assoc_opt id experiments with
      | Some run ->
          obs_reset ();
          run ();
          obs_section ~id ();
          obs := (id, obs_json ()) :: !obs
      | None ->
          Printf.eprintf "unknown experiment %s (known: %s)\n" id
            (String.concat " " (List.map fst experiments));
          exit 1)
    requested;
  let out = "BENCH_observability.json" in
  let oc = open_out out in
  output_string oc (Obs_json.to_string (Obs_json.Obj (List.rev !obs)));
  output_char oc '\n';
  close_out oc;
  Printf.printf "\nper-experiment observability written to %s\n" out;
  Printf.printf "All requested experiments completed.\n"
