(* The engine perf regression harness.

   Two measurements, both against fixed scenarios so numbers are
   comparable across commits:

   - single-domain engine throughput: the 16-cpu E1 contention scenario
     (one lock, shared data, Timed policy) run repeatedly on one domain;
     reported as scheduler steps/second of wall-clock time.
   - domain-parallel seed sweep: `Sim_explore.run` over a fixed seed set,
     sequential vs. fanned out across domains, with the verdicts checked
     equal; reported as wall-clock speedup.

   Results are written to BENCH_sim_perf.json so CI can archive the perf
   trajectory per PR (`make perf-smoke` runs the `--fast` variant). *)

module Engine = Mach_sim.Sim_engine
module Config = Mach_sim.Sim_config
module Explore = Mach_sim.Sim_explore
module K = Mach_ksync.Ksync
module Obs_json = Mach_obs.Obs_json

let e1_scenario ~iters () =
  let lock = K.Slock.make ~name:"e1" ~protocol:Mach_core.Spin.Ttas () in
  let data = Array.init 4 (fun _ -> Engine.Cell.make ~name:"d" 0) in
  let cpus = Engine.cpu_count () in
  let worker () =
    for _ = 1 to iters do
      K.Slock.lock lock;
      Array.iter (fun d -> ignore (Engine.Cell.fetch_and_add d 1)) data;
      Engine.cycles 20;
      K.Slock.unlock lock
    done
  in
  let ts = List.init cpus (fun _ -> Engine.spawn worker) in
  List.iter Engine.join ts

let wall f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

(* ------------------------------------------------------------------ *)

(* Pre-overhaul reference: steps/sec of the list-based scheduler on this
   same scenario and harness settings (repeats=10, iters=30), measured at
   the commit before the indexed-queue engine landed.  Kept so every
   future run reports its ratio to the same fixed point. *)
let baseline_steps_per_sec = 1_975_301.

(* Host-speed calibration: a fixed-work integer loop with no engine,
   no allocation and no observability hooks.  Engine steps/sec divided
   by calibration ops/sec cancels host speed — frequency scaling, a
   throttled or shared core slow both numerator and denominator — so
   the perf gate can compare the normalized value against a committed
   reference without absolute-throughput noise: only a real engine
   change moves the ratio.  Best-of-5 for the same reason the engine
   row is best-of-N (noise only ever slows a run). *)
let calib_iters = 10_000_000

let calib_once () =
  let x = ref 0x12345 in
  let (), secs =
    wall (fun () ->
        for _ = 1 to calib_iters do
          (* Knuth's 64-bit LCG multiplier, truncated to OCaml's int. *)
          x := (!x * 2862933555777941757) + 3037000493
        done;
        ignore (Sys.opaque_identity !x))
  in
  float_of_int calib_iters /. secs

let engine_throughput ~repeats ~iters =
  (* The gated row is measured with spans OFF: the committed reference
     predates the span layer, so the perf gate polices the disabled-mode
     overhead (the "observability you are not using must be ~free"
     promise).  A second spans-on row records the enabled-mode cost for
     the trajectory without gating it. *)
  let measure ~spans =
    let cfg = { (Config.bench ~cpus:16 ()) with Config.seed = 3; spans } in
    (* Sustained untimed warmup (~0.3s): one run is not enough to carry
       allocator effects AND cpu frequency ramp outside the clock. *)
    let wt0 = Unix.gettimeofday () in
    ignore (Engine.run ~cfg (e1_scenario ~iters));
    while Unix.gettimeofday () -. wt0 < 0.3 do
      ignore (Engine.run ~cfg (e1_scenario ~iters))
    done;
    (* Each repeat is timed on its own and the BEST one is the gated
       statistic: host noise (frequency scaling, a busy core, GC luck)
       only ever slows a run, so best-of-N is the estimate of what the
       engine can do — a mean lets one cold repeat fail the gate. *)
    (* A short calibration sample is interleaved after every repeat so
       that the engine and calibration best-of-N cover the SAME time
       window: on a shared core, disjoint windows can land in different
       throttle modes and make the normalized ratio noisier than the
       absolute number it is meant to stabilize. *)
    let steps = ref 0 in
    let total = ref 0.0 in
    let best = ref 0.0 in
    let best_calib = ref 0.0 in
    for _ = 1 to repeats do
      let s, secs = wall (fun () -> Engine.run ~cfg (e1_scenario ~iters)) in
      steps := !steps + s.Engine.steps;
      total := !total +. secs;
      let sps = float_of_int s.Engine.steps /. secs in
      if sps > !best then best := sps;
      let c = calib_once () in
      if c > !best_calib then best_calib := c
    done;
    (!steps, !total, !best, !best_calib)
  in
  let steps_off, off_s, sps, calib = measure ~spans:false in
  let _, _, sps_on, _ = measure ~spans:true in
  let vs_calib = sps /. calib in
  Printf.printf
    "engine: 16-cpu E1 contention x%d  steps=%d  wall=%.3fs  best \
     steps/sec=%.0f (%.2fx of pre-overhaul baseline)\n%!"
    repeats steps_off off_s sps
    (sps /. baseline_steps_per_sec);
  Printf.printf
    "engine: same workload, spans on  steps/sec=%.0f  (%.3fx of spans-off)\n%!"
    sps_on (sps_on /. sps);
  Printf.printf
    "engine: calibration %.0f ops/sec; normalized steps-per-calib-op=%.5f\n%!"
    calib vs_calib;
  ( sps,
    Obs_json.Obj
      [
        ("scenario", Obs_json.String "e1-contention-16cpu");
        ("repeats", Obs_json.Int repeats);
        ("iters_per_worker", Obs_json.Int iters);
        ("steps", Obs_json.Int steps_off);
        ("wall_s", Obs_json.Float off_s);
        ("steps_per_sec", Obs_json.Float sps);
        ("baseline_steps_per_sec", Obs_json.Float baseline_steps_per_sec);
        ("vs_baseline", Obs_json.Float (sps /. baseline_steps_per_sec));
        ("calib_ops_per_sec", Obs_json.Float calib);
        ("vs_calib", Obs_json.Float vs_calib);
        ( "spans",
          Obs_json.Obj
            [
              ("off_steps_per_sec", Obs_json.Float sps);
              ("on_steps_per_sec", Obs_json.Float sps_on);
              ("on_vs_off", Obs_json.Float (sps_on /. sps));
            ] );
      ] )

let sweep ~seeds ~domains:requested =
  let seed_list = List.init seeds (fun s -> s + 1) in
  let scenario = e1_scenario ~iters:12 in
  let tweak cfg = { cfg with Config.policy = Config.Timed } in
  let run domains () =
    Explore.run ~cpus:4 ~seeds:seed_list ~domains ~tweak scenario
  in
  (* A "speedup" measured with more domains than cores is dominated by
     domain spawn cost and scheduler thrash, not by the engine (a 1-core
     CI runner used to report speedup=0.17x here).  Clamp the fan-out to
     the core count and skip the parallel leg outright on 1-core hosts,
     recording why in the json. *)
  let cores = Domain.recommended_domain_count () in
  let domains = min requested cores in
  let seq, seq_s = wall (run 1) in
  let common =
    [
      ("seeds", Obs_json.Int seeds);
      ("requested_domains", Obs_json.Int requested);
      ("domains", Obs_json.Int domains);
      ("cores", Obs_json.Int cores);
      ("core_bound", Obs_json.Bool (cores < requested));
      ("seq_wall_s", Obs_json.Float seq_s);
      ("completed", Obs_json.Int seq.Explore.completed);
    ]
  in
  if domains < 2 then begin
    Printf.printf
      "sweep: %d seeds  seq=%.3fs  (%d/%d completed); parallel leg SKIPPED: \
       host has %d core(s), a multi-domain speedup would be meaningless\n%!"
      seeds seq_s seq.Explore.completed seq.Explore.seeds_run cores;
    Obs_json.Obj
      (common
      @ [
          ("speedup", Obs_json.Null);
          ( "speedup_skipped",
            Obs_json.String "host has a single core; no parallel leg run" );
        ])
  end
  else begin
    let par, par_s = wall (run domains) in
    if seq <> par then begin
      Printf.eprintf "FATAL: parallel sweep verdict differs from sequential\n";
      exit 1
    end;
    let speedup = seq_s /. par_s in
    Printf.printf
      "sweep: %d seeds  seq=%.3fs  %d-domain=%.3fs  speedup=%.2fx  (%d/%d \
       completed, verdicts equal, %d core(s) available)\n%!"
      seeds seq_s domains par_s speedup seq.Explore.completed
      seq.Explore.seeds_run cores;
    if cores < requested then
      Printf.printf
        "sweep: note: %d domains requested but only %d core(s); fan-out \
         clamped to the core count\n%!"
        requested cores;
    Obs_json.Obj
      (common
      @ [
          ("par_wall_s", Obs_json.Float par_s);
          ("speedup", Obs_json.Float speedup);
          ("verdicts_equal", Obs_json.Bool true);
        ])
  end

(* ------------------------------------------------------------------ *)

(* Deterministic guard on the range-locked fault path: for a fixed
   (cfg, seed) the simulated makespan of the E16 storm is
   schedule-deterministic, so the coarse/range makespan ratio has zero
   host noise — the gate can pin it tightly.  A change that reserializes
   faults (say, a range-lock conversion regressing to whole-map width)
   collapses the ratio towards 1 and trips the gate without any
   wall-clock measurement. *)
let vm_storm locking =
  let cfg = { (Config.bench ~cpus:16 ()) with Config.seed = 3 } in
  let stats =
    Engine.run ~cfg (fun () ->
        Mach_kernel.Scenarios.vm_fault_storm ~locking ~threads:16
          ~pages_per_thread:2 ~rounds:1 ())
  in
  stats.Engine.makespan

let vm_row () =
  let coarse = vm_storm Mach_vm.Vm_map.Coarse in
  let range = vm_storm Mach_vm.Vm_map.Range in
  let speedup = float_of_int coarse /. float_of_int range in
  Printf.printf
    "vm: 16-cpu fault storm  coarse makespan=%d  range makespan=%d  \
     range_speedup=%.2fx (deterministic)\n%!"
    coarse range speedup;
  Obs_json.Obj
    [
      ("scenario", Obs_json.String "vm-fault-storm-16cpu");
      ("coarse_makespan", Obs_json.Int coarse);
      ("range_makespan", Obs_json.Int range);
      ("range_speedup", Obs_json.Float speedup);
    ]

(* Same deterministic-guard idea for the scache page cache (E19): the
   mutex/scache makespan ratio of the 64-cpu read-mostly lookup storm is
   pure simulated time, so the gate can pin the read-side win of the
   per-cpu refcount RW lock.  A change that reserializes readers (say, a
   read path falling back to the write-side sweep) collapses the ratio
   and trips the gate with zero host noise. *)
let cache_storm locking =
  let cfg = { (Config.bench ~cpus:64 ()) with Config.seed = 3 } in
  let stats =
    Engine.run ~cfg (fun () ->
        Mach_kernel.Scenarios.vm_cache_ops ~locking ~threads:64 ())
  in
  stats.Engine.makespan

let cache_row () =
  let mutex = cache_storm Mach_vm.Vm_cache.Mutex in
  let scache = cache_storm Mach_vm.Vm_cache.Scache in
  let speedup = float_of_int mutex /. float_of_int scache in
  Printf.printf
    "cache: 64-cpu lookup storm  mutex makespan=%d  scache makespan=%d  \
     read_speedup=%.2fx (deterministic)\n%!"
    mutex scache speedup;
  Obs_json.Obj
    [
      ("scenario", Obs_json.String "vm-cache-lookup-storm-64cpu");
      ("mutex_makespan", Obs_json.Int mutex);
      ("scache_makespan", Obs_json.Int scache);
      ("read_speedup", Obs_json.Float speedup);
    ]

(* Same deterministic-guard idea for the RPC serving path (E20): the
   flat/sharded+batched makespan ratio of the 64-cpu serving workload is
   pure simulated time, so the gate can pin the end-to-end throughput win
   of batched dequeue + the sharded port name space.  A change that
   reserializes the hot path (say, name lookups falling back to one
   global table lock, or batching degrading to one message per lock
   hold) collapses the ratio and trips the gate with zero host noise. *)
let rpc_serve ~shards ~batch =
  let cfg = { (Config.bench ~cpus:64 ()) with Config.seed = 3 } in
  let stats =
    Engine.run ~cfg (fun () ->
        ignore (Mach_kernel.Scenarios.rpc_serve ~shards ~batch ~calls_each:16 ()))
  in
  stats.Engine.makespan

let rpc_row () =
  let flat = rpc_serve ~shards:1 ~batch:1 in
  let sharded = rpc_serve ~shards:8 ~batch:8 in
  let speedup = float_of_int flat /. float_of_int sharded in
  Printf.printf
    "rpc: 64-cpu serving  flat makespan=%d  sharded+batched makespan=%d  \
     throughput_speedup=%.2fx (deterministic)\n%!"
    flat sharded speedup;
  Obs_json.Obj
    [
      ("scenario", Obs_json.String "rpc-serve-64cpu");
      ("flat_makespan", Obs_json.Int flat);
      ("sharded_batched_makespan", Obs_json.Int sharded);
      ("throughput_speedup", Obs_json.Float speedup);
    ]

let () =
  let fast = Array.exists (fun a -> a = "--fast") Sys.argv in
  let engine_only = Array.exists (fun a -> a = "--engine-only") Sys.argv in
  let repeats = if fast then 3 else 10 in
  let iters = if fast then 20 else 30 in
  let seeds = if fast then 24 else 100 in
  (* The reference sweep is 8-domain; on hosts with fewer cores the
     measured speedup is core-bound (recorded in the json). *)
  let domains = 8 in
  let _sps, engine_json = engine_throughput ~repeats ~iters in
  (* The vm row is deterministic (simulated time), so it is cheap enough
     to emit unconditionally — including --engine-only, which is what
     the CI perf gate runs. *)
  let fields =
    [
      ("engine", engine_json);
      ("vm", vm_row ());
      ("cache", cache_row ());
      ("rpc", rpc_row ());
    ]
  in
  let fields =
    if engine_only then fields
    else fields @ [ ("sweep", sweep ~seeds ~domains) ]
  in
  let doc =
    Obs_json.Obj
      (fields @ [ ("mode", Obs_json.String (if fast then "fast" else "full")) ])
  in
  let out = "BENCH_sim_perf.json" in
  let oc = open_out out in
  output_string oc (Obs_json.to_string doc);
  output_char oc '\n';
  close_out oc;
  Printf.printf "perf results written to %s\n" out
