(* The CI perf-regression gate.

   Reads the engine throughput that `bench/perf.exe` just wrote to
   BENCH_sim_perf.json and compares it against the committed reference
   (bench/perf_reference.json) on TWO estimators of the same quantity:
   `engine.vs_baseline` (absolute best-of-N steps/sec over the pinned
   pre-overhaul baseline) and `engine.vs_calib` (the same steps/sec
   normalized by an in-process pure-compute calibration loop, which
   cancels host speed).  A check fails only when BOTH estimators fall
   below their floor: a real engine regression slows both, while host
   noise — a throttled or shared core slows the absolute number but not
   the normalized one; an unlucky calibration slice slows the
   normalized number but not the absolute one — rarely sinks the two
   together.  Exits 1 when the throughput ratio check (--min-ratio,
   default 0.9) or the dormant-observability check
   (--max-spans-overhead, default 0.03; the engine row is measured with
   spans disabled) fails on both estimators.

   Deterministic rows (vm.range_speedup, cache.read_speedup,
   rpc.throughput_speedup) are simulated-time makespan ratios and are
   checked directly against their committed floors — no estimator
   pairing needed.

   --inject-slowdown halves every measured value before the comparison;
   --inject-row SECTION halves only that deterministic row.  CI runs
   both once per pipeline to prove the gate actually trips on each row
   (a gate that cannot fail gates nothing). *)

module Obs_json = Mach_obs.Obs_json

let die fmt =
  Printf.ksprintf
    (fun s ->
      prerr_endline ("perf-gate: " ^ s);
      exit 2)
    fmt

let json_of_file path =
  let text =
    try In_channel.with_open_text path In_channel.input_all
    with Sys_error msg -> die "%s" msg
  in
  match Obs_json.of_string text with
  | Ok v -> v
  | Error e -> die "%s: parse error: %s" path e

let number = function
  | Some (Obs_json.Float f) -> Some f
  | Some (Obs_json.Int n) -> Some (float_of_int n)
  | _ -> None

let engine_field path field =
  let doc = json_of_file path in
  match Obs_json.member "engine" doc with
  | None -> die "%s: no \"engine\" object" path
  | Some engine -> (
      match number (Obs_json.member field engine) with
      | Some f when f > 0. -> f
      | Some _ -> die "%s: engine.%s must be positive" path field
      | None -> die "%s: engine.%s missing" path field)

let () =
  let perf = ref "BENCH_sim_perf.json" in
  let reference = ref "bench/perf_reference.json" in
  let min_ratio = ref 0.9 in
  let max_spans_overhead = ref 0.03 in
  let inject = ref false in
  let inject_row = ref "" in
  let spec =
    [
      ("--perf", Arg.Set_string perf, "FILE measured perf json (default BENCH_sim_perf.json)");
      ("--reference", Arg.Set_string reference, "FILE committed reference json");
      ("--min-ratio", Arg.Set_float min_ratio, "R fail below R x reference (default 0.9)");
      ( "--max-spans-overhead",
        Arg.Set_float max_spans_overhead,
        "F fail when the spans-disabled run is more than F below the \
         reference (default 0.03)" );
      ("--inject-slowdown", Arg.Set inject, " halve the measured value (gate selftest)");
      ( "--inject-row",
        Arg.Set_string inject_row,
        "SECTION halve only that deterministic row's measured value (vm, \
         cache or rpc; gate selftest per row)" );
    ]
  in
  Arg.parse spec
    (fun a -> die "unexpected argument %S" a)
    "perf_gate [--perf FILE] [--reference FILE] [--min-ratio R] \
     [--max-spans-overhead F] [--inject-slowdown]";
  let estimators =
    List.map
      (fun field ->
        let m = engine_field !perf field in
        let m = if !inject then m /. 2. else m in
        (field, m, engine_field !reference field))
      [ "vs_baseline"; "vs_calib" ]
  in
  (* A check fails only when it fails on EVERY estimator: regressions
     move both, host noise moves them in opposite directions. *)
  let both_below floor_of label fail_msg =
    let bad =
      List.for_all
        (fun (field, m, r) ->
          let floor = floor_of r in
          Printf.printf "perf-gate: %s: engine.%s measured=%.5f  floor=%.5f%s\n"
            label field m floor
            (if !inject then "  [injected 2x slowdown]" else "");
          m < floor)
        estimators
    in
    if bad then Printf.printf "perf-gate: FAIL: %s\n" fail_msg;
    bad
  in
  let ratio_failed =
    both_below
      (fun r -> !min_ratio *. r)
      "throughput"
      (Printf.sprintf
         "engine throughput is below %.0f%% of the committed reference on \
          every estimator (bench/perf_reference.json); if the slowdown is \
          intentional, regenerate the reference with `make perf-reference`"
         (100. *. !min_ratio))
  in
  (* The engine row is measured with spans DISABLED, so this is the
     "observability you are not using" tax: the span layer's dormant
     checks must stay within --max-spans-overhead of the pre-span
     reference.  (The rounded-down reference already absorbs runner
     jitter; see bench/perf_reference.json.) *)
  let spans_failed =
    both_below
      (fun r -> (1. -. !max_spans_overhead) *. r)
      "spans-disabled overhead"
      (Printf.sprintf
         "the spans-disabled engine is more than %.0f%% below the pre-span \
          reference on every estimator; the dormant observability hooks are \
          not free"
         (100. *. !max_spans_overhead))
  in
  (* Deterministic rows (simulated-time makespan ratios): no estimator
     pairing or noise floor needed — the number moves only when the code
     changes.  Each check runs only when the committed reference carries
     the row (older references predate it), and --inject-row SECTION
     halves just that row so the selftest can prove each one trips
     independently of the engine rows. *)
  let det_check ~section ~label ~ref_field ~meas_field ~fail_text =
    let field doc path f =
      match Obs_json.member section doc with
      | None -> None
      | Some obj -> (
          match number (Obs_json.member f obj) with
          | Some v when v > 0. -> Some v
          | Some _ -> die "%s: %s.%s must be positive" path section f
          | None -> None)
    in
    match field (json_of_file !reference) !reference ref_field with
    | None -> false
    | Some floor -> (
        match field (json_of_file !perf) !perf meas_field with
        | None -> die "%s: %s.%s missing" !perf section meas_field
        | Some m ->
            let injected = !inject || !inject_row = section in
            let m = if injected then m /. 2. else m in
            Printf.printf
              "perf-gate: %s: %s.%s measured=%.2f  floor=%.2f%s\n" label
              section meas_field m floor
              (if injected then "  [injected 2x slowdown]" else "");
            if m < floor then begin
              Printf.printf "perf-gate: FAIL: %s (the number is \
                             deterministic simulated time, not host noise)\n"
                (fail_text floor);
              true
            end
            else false)
  in
  (* The range-lock fault path (E16). *)
  let vm_failed =
    det_check ~section:"vm" ~label:"vm fault path"
      ~ref_field:"min_range_speedup" ~meas_field:"range_speedup"
      ~fail_text:(fun floor ->
        Printf.sprintf
          "the range-locked fault storm no longer beats the coarse map lock \
           by at least %.1fx at 16 cpus; the range-lock fault path has \
           reserialized"
          floor)
  in
  (* The scache page-cache read path (E19). *)
  let cache_failed =
    det_check ~section:"cache" ~label:"cache read path"
      ~ref_field:"min_read_speedup" ~meas_field:"read_speedup"
      ~fail_text:(fun floor ->
        Printf.sprintf
          "the scache page cache no longer beats the mutex cache by at \
           least %.1fx at 64 cpus; the read side has reserialized"
          floor)
  in
  (* The RPC serving path (E20): flat/sharded+batched makespan ratio of
     the 64-cpu serving workload. *)
  let rpc_failed =
    det_check ~section:"rpc" ~label:"rpc serving path"
      ~ref_field:"min_throughput_speedup" ~meas_field:"throughput_speedup"
      ~fail_text:(fun floor ->
        Printf.sprintf
          "sharded+batched RPC serving no longer beats the flat batch=1 \
           server by at least %.1fx at 64 cpus; the hot path has \
           reserialized (global name-table lock back on the lookup path, \
           or batching degraded to one message per port-lock hold)"
          floor)
  in
  if ratio_failed || spans_failed || vm_failed || cache_failed || rpc_failed
  then exit 1
  else Printf.printf "perf-gate: OK\n"
