(* The CI perf-regression gate.

   Reads the engine throughput that `bench/perf.exe` just wrote to
   BENCH_sim_perf.json and compares its `engine.vs_baseline` against the
   committed reference (bench/perf_reference.json).  Exits 1 when the
   measured value falls below --min-ratio (default 0.9) of the
   reference, so a >10% engine slowdown fails the pipeline instead of
   silently shipping.

   --inject-slowdown halves the measured value before the comparison;
   CI runs it once per pipeline to prove the gate actually trips
   (a gate that cannot fail gates nothing). *)

module Obs_json = Mach_obs.Obs_json

let die fmt =
  Printf.ksprintf
    (fun s ->
      prerr_endline ("perf-gate: " ^ s);
      exit 2)
    fmt

let json_of_file path =
  let text =
    try In_channel.with_open_text path In_channel.input_all
    with Sys_error msg -> die "%s" msg
  in
  match Obs_json.of_string text with
  | Ok v -> v
  | Error e -> die "%s: parse error: %s" path e

let number = function
  | Some (Obs_json.Float f) -> Some f
  | Some (Obs_json.Int n) -> Some (float_of_int n)
  | _ -> None

let vs_baseline path =
  let doc = json_of_file path in
  match Obs_json.member "engine" doc with
  | None -> die "%s: no \"engine\" object" path
  | Some engine -> (
      match number (Obs_json.member "vs_baseline" engine) with
      | Some f when f > 0. -> f
      | Some _ -> die "%s: engine.vs_baseline must be positive" path
      | None -> die "%s: engine.vs_baseline missing" path)

let () =
  let perf = ref "BENCH_sim_perf.json" in
  let reference = ref "bench/perf_reference.json" in
  let min_ratio = ref 0.9 in
  let inject = ref false in
  let spec =
    [
      ("--perf", Arg.Set_string perf, "FILE measured perf json (default BENCH_sim_perf.json)");
      ("--reference", Arg.Set_string reference, "FILE committed reference json");
      ("--min-ratio", Arg.Set_float min_ratio, "R fail below R x reference (default 0.9)");
      ("--inject-slowdown", Arg.Set inject, " halve the measured value (gate selftest)");
    ]
  in
  Arg.parse spec
    (fun a -> die "unexpected argument %S" a)
    "perf_gate [--perf FILE] [--reference FILE] [--min-ratio R] [--inject-slowdown]";
  let measured = vs_baseline !perf in
  let measured = if !inject then measured /. 2. else measured in
  let reference_v = vs_baseline !reference in
  let ratio = measured /. reference_v in
  Printf.printf
    "perf-gate: measured engine.vs_baseline=%.3f  reference=%.3f  \
     ratio=%.3f  (min %.2f)%s\n"
    measured reference_v ratio !min_ratio
    (if !inject then "  [injected 2x slowdown]" else "");
  if ratio < !min_ratio then begin
    Printf.printf
      "perf-gate: FAIL: engine throughput is below %.0f%% of the committed \
       reference (bench/perf_reference.json); if the slowdown is intentional, \
       regenerate the reference with `make perf-reference`\n"
      (100. *. !min_ratio);
    exit 1
  end
  else Printf.printf "perf-gate: OK\n"
