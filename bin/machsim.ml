(* machsim: command-line driver for the simulated Mach multiprocessor.

   Subcommands:
     run       -- run a named scenario once and print the run statistics
     explore   -- run a scenario across many schedule seeds, tally outcomes
     trace     -- run a scenario with event tracing and dump the trace
                  (or export it as Chrome trace-event JSON with --out)
     profile   -- run a scenario and print the lock contention profile
     report    -- run a scenario and print the causal report: top
                  blockers, critical-path attribution, flight recorder *)

module Engine = Mach_sim.Sim_engine
module Config = Mach_sim.Sim_config
module Explore = Mach_sim.Sim_explore
module Trace = Mach_sim.Sim_trace
module Obs_json = Mach_obs.Obs_json
module Obs_metrics = Mach_obs.Obs_metrics
module Obs_profile = Mach_obs.Obs_profile
module Obs_span = Mach_obs.Obs_span
module Obs_cp = Mach_obs.Obs_critical_path
module Scenarios = Mach_kernel.Scenarios
module Kernel = Mach_kernel.Kernel
module Ksync = Mach_ksync.Ksync
module Vm = Mach_vm
open Cmdliner

(* ------------------------------------------------------------------ *)
(* Scenario registry                                                    *)
(* ------------------------------------------------------------------ *)

let pageable_scenario ~use_recursive () =
  let ctx = Vm.Vm_map.make_context ~pages:4 () in
  let map = Vm.Vm_map.create ctx in
  let reclaimable = Vm.Vm_map.vm_allocate map ~size:3 in
  for i = 0 to 2 do
    match Vm.Vm_fault.fault map ~va:(reclaimable + i) with
    | Ok _ -> ()
    | Error _ -> Engine.fatal "populate failed"
  done;
  let wired_va = Vm.Vm_map.vm_allocate map ~size:3 in
  let daemon = Vm.Vm_pageout.start_daemon ~victims:[ map ] in
  let wire =
    if use_recursive then Vm.Vm_pageable.wire_recursive
    else Vm.Vm_pageable.wire_rewritten
  in
  (match wire map ~va:wired_va ~pages:3 with
  | Ok () -> ()
  | Error _ -> Engine.fatal "wire failed");
  Vm.Vm_pageout.stop_daemon daemon;
  Vm.Vm_map.release map

(* TLB shootdown barrier (adapted from bench E10): victims on every other
   cpu activate the pmap and spin at spl0; the initiator's removals must
   rendezvous with all of them at interrupt level. *)
let shootdown_scenario () =
  let pm = Vm.Pmap.create () in
  (* On a uniprocessor there is nobody to shoot down: the removals still
     run (local invalidates only) rather than waiting forever for a victim
     that can never be dispatched. *)
  let participants = max 0 (Engine.cpu_count () - 1) in
  let removals = 8 in
  let stop = Engine.Cell.make 0 in
  let victims =
    List.init participants (fun k ->
        let cpu = k + 1 in
        Engine.spawn ~name:(Printf.sprintf "victim%d" cpu) ~bound:cpu
          (fun () ->
            Vm.Pmap.activate pm ~cpu;
            Engine.spin_hint "stop";
            while Engine.Cell.get stop = 0 do
              Engine.pause ()
            done))
  in
  let initiator =
    Engine.spawn ~name:"initiator" ~bound:0 (fun () ->
        for j = 0 to removals - 1 do
          Vm.Pmap.enter pm ~va:(0x1000 + j) ~ppn:j ~prot:Vm.Tlb.Read_write
        done;
        Engine.spin_hint "activation";
        while List.length (Vm.Pmap.active_cpus pm) < participants do
          Engine.pause ()
        done;
        for j = 0 to removals - 1 do
          ignore (Vm.Pmap.remove pm ~va:(0x1000 + j))
        done;
        Engine.Cell.set stop 1)
  in
  Engine.join initiator;
  List.iter Engine.join victims

let scenarios : (string * (string * (unit -> unit))) list =
  [
    ( "rpc",
      ( "boot the kernel; 4 clients make null RPCs to the host port",
        fun () ->
          let kernel = Kernel.start ~pages:64 () in
          Scenarios.null_rpc_workload kernel ~clients:4 ~calls_each:25;
          Kernel.shutdown kernel ) );
    ( "task-lifecycle",
      ( "create tasks over RPC, allocate+wire memory, terminate them",
        fun () ->
          let kernel = Kernel.start ~pages:128 () in
          let ports =
            List.init 4 (fun _ ->
                match Kernel.rpc_task_create kernel with
                | Ok p -> p
                | Error e -> Engine.fatal e)
          in
          List.iter
            (fun p ->
              (match Kernel.rpc_vm_allocate p ~size:8 with
              | Ok va -> (
                  match Kernel.rpc_vm_wire p ~va ~pages:4 with
                  | Ok () -> ()
                  | Error e -> Engine.fatal e)
              | Error e -> Engine.fatal e);
              (match Kernel.rpc_task_terminate p with
              | Ok () -> ()
              | Error e -> Engine.fatal e);
              Mach_ipc.Port.release p)
            ports;
          Kernel.shutdown kernel ) );
    ( "coarse",
      ( "object operations under one global kernel lock",
        fun () ->
          Scenarios.object_ops_workload Scenarios.Coarse ~objects:16
            ~workers:(Engine.cpu_count ()) ~ops_per_worker:30 ) );
    ( "fine",
      ( "object operations under per-object locks (the Mach way)",
        fun () ->
          Scenarios.object_ops_workload Scenarios.Fine ~objects:16
            ~workers:(Engine.cpu_count ()) ~ops_per_worker:30 ) );
    ( "funnel",
      ( "object operations funnelled through a master processor",
        fun () ->
          Scenarios.object_ops_workload Scenarios.Master_funnel ~objects:16
            ~workers:(Engine.cpu_count ()) ~ops_per_worker:30 ) );
    ( "contention",
      ( "every cpu hammers one ttas lock (the E1/E15 workload shape)",
        fun () ->
          let lock =
            Ksync.Slock.make ~name:"contended" ~protocol:Mach_core.Spin.Ttas
              ()
          in
          let data = Array.init 4 (fun _ -> Engine.Cell.make ~name:"d" 0) in
          let ts =
            List.init
              (Engine.cpu_count ())
              (fun _ ->
                Engine.spawn (fun () ->
                    for _ = 1 to 10 do
                      Ksync.Slock.lock lock;
                      Array.iter
                        (fun d -> ignore (Engine.Cell.fetch_and_add d 1))
                        data;
                      Engine.cycles 20;
                      Ksync.Slock.unlock lock
                    done))
          in
          List.iter Engine.join ts ) );
    ( "interrupt-deadlock",
      ( "the section 7 three-processor barrier deadlock (buggy variant)",
        Scenarios.interrupt_barrier_scenario ~disciplined:false ) );
    ( "interrupt-disciplined",
      ( "the same scenario under the same-spl rule (never deadlocks)",
        Scenarios.interrupt_barrier_scenario ~disciplined:true ) );
    ( "wire-recursive",
      ( "vm_map_pageable with recursive locks vs pageout (section 7.1 bug)",
        pageable_scenario ~use_recursive:true ) );
    ( "wire-rewritten",
      ( "the Mach 3.0 vm_map_pageable rewrite vs pageout (deadlock-free)",
        pageable_scenario ~use_recursive:false ) );
    ( "vm-fault",
      ( "disjoint-slice allocate/fault/deallocate storm on a range-locked map",
        fun () -> Scenarios.vm_fault_storm ~locking:Vm.Vm_map.Range () ) );
    ( "vm-fault-coarse",
      ( "the same storm under the paper's single coarse map lock",
        fun () -> Scenarios.vm_fault_storm ~locking:Vm.Vm_map.Coarse () ) );
    ( "range-disjoint",
      ( "two threads hold disjoint ranges of one range lock concurrently",
        Scenarios.range_disjoint ) );
    ( "range-overlap",
      ( "two threads contend overlapping write ranges (must serialize)",
        Scenarios.range_overlap ) );
    ( "range-deadlock",
      ( "ABBA across two ranges: the report names the exact ranges held",
        Scenarios.range_abba ) );
    ( "shootdown",
      ( "TLB shootdowns: pmap removals rendezvous with every other cpu",
        shootdown_scenario ) );
    ( "same-spl",
      ( "minimal section 7 same-spl rule: holder at interrupt spl (safe)",
        Scenarios.same_spl_holder ~disciplined:true ) );
    ( "same-spl-buggy",
      ( "the same scenario holding at spl0: the handler spins on its own \
         interrupted holder",
        Scenarios.same_spl_holder ~disciplined:false ) );
    ( "handoff",
      ( "section 6 event-wait handoff: producer hands a flag to a consumer",
        Mach_chaos.Chaos_scenarios.lost_wakeup_handoff ) );
    ( "herd",
      ( "section 6 broadcast wakeup: several sleepers woken at once",
        fun () -> Mach_chaos.Chaos_scenarios.wakeup_herd ~sleepers:2 () ) );
    ( "mcs-handoff",
      ( "workers contending an MCS queue lock (explicit successor handoff)",
        fun () -> Mach_chaos.Chaos_scenarios.mcs_handoff () ) );
    ( "scache-handoff",
      ( "workers contending the scache writer side (FIFO grant handoff)",
        fun () -> Mach_chaos.Chaos_scenarios.scache_handoff () ) );
    ( "scache-rw",
      ( "scache matrix: reader vs writer on one scache RW lock (must \
         serialize)",
        Scenarios.scache_rw ) );
    ( "scache-ww",
      ( "scache matrix: writer vs writer through the FIFO ticket gate \
         (must serialize)",
        Scenarios.scache_ww ) );
    ( "scache-rr",
      ( "scache matrix: two readers on their own refcount slots (may \
         interleave)",
        Scenarios.scache_rr ) );
    ( "vm-cache",
      ( "read-mostly page-lookup storm on a scache-locked page cache",
        fun () -> Scenarios.vm_cache_ops () ) );
    ( "vm-cache-mutex",
      ( "the same storm with the cache index under one flat mutex",
        fun () -> Scenarios.vm_cache_ops ~locking:Vm.Vm_cache.Mutex () ) );
    ( "scache-rrw",
      ( "scache matrix, 3 cpus: two readers racing one writer (readers \
         may interleave; a writer overlap is fatal)",
        fun () -> ignore (Scenarios.scache_rrw ()) ) );
    ( "rpc-serve",
      ( "E20 RPC serving: clients hammer MiG servers through a sharded \
         namespace with batched dispatch, then drain cleanly",
        fun () ->
          let served, drained =
            Scenarios.rpc_serve ~shards:8 ~batch:8 ~calls_each:16 ()
          in
          Printf.printf "rpc-serve: served %d drained %d\n" served drained ) );
    ( "rpc-serve-flat",
      ( "the same workload through the single global registry, batch=1 \
         (the unsharded baseline)",
        fun () ->
          let served, drained = Scenarios.rpc_serve ~calls_each:16 () in
          Printf.printf "rpc-serve: served %d drained %d\n" served drained ) );
    ( "rpc-serve-drain",
      ( "RPC serving terminated under load: in-flight requests are \
         answered err_deactivated, refcounts audited",
        fun () ->
          let served, drained =
            Scenarios.rpc_serve ~shards:4 ~batch:4 ~calls_each:16
              ~drain_under_load:true ()
          in
          Printf.printf "rpc-serve: served %d drained %d\n" served drained ) );
    ( "queue-locks",
      ( "one contended critical section per queue-lock protocol \
         (ticket, MCS, Anderson) plus a big-reader read burst",
        fun () ->
          let module Lp = Mach_core.Lock_proto in
          List.iter
            (fun proto ->
              let l =
                Ksync.Slock.make ~name:("ql." ^ Lp.name proto) ~proto ()
              in
              let c = Engine.Cell.make ~name:"ql.count" 0 in
              let ts =
                List.init
                  (Engine.cpu_count ())
                  (fun _ ->
                    Engine.spawn (fun () ->
                        for _ = 1 to 5 do
                          Ksync.Slock.lock l;
                          ignore (Engine.Cell.fetch_and_add c 1);
                          Engine.cycles 20;
                          Ksync.Slock.unlock l
                        done))
              in
              List.iter Engine.join ts)
            Ksync.Locks.all;
          let br = Ksync.Locks.Brlock.make ~name:"ql.br" in
          let ts =
            List.init
              (Engine.cpu_count ())
              (fun _ ->
                Engine.spawn (fun () ->
                    for _ = 1 to 5 do
                      Ksync.Locks.Brlock.with_read br (fun () ->
                          Engine.cycles 10)
                    done))
          in
          List.iter Engine.join ts ) );
  ]

let scenario_names = List.map fst scenarios

let lookup_scenario name =
  match List.assoc_opt name scenarios with
  | Some (_, f) -> f
  | None ->
      Printf.eprintf "unknown scenario %S; known scenarios:\n" name;
      List.iter
        (fun (n, (d, _)) -> Printf.eprintf "  %-22s %s\n" n d)
        scenarios;
      exit 2

(* ------------------------------------------------------------------ *)
(* Common options                                                       *)
(* ------------------------------------------------------------------ *)

let scenario_arg =
  let doc =
    "Scenario to run. One of: " ^ String.concat ", " scenario_names ^ "."
  in
  Arg.(required & pos 0 (some string) None & info [] ~docv:"SCENARIO" ~doc)

let cpus_arg =
  Arg.(value & opt int 4 & info [ "cpus"; "c" ] ~docv:"N" ~doc:"Virtual cpus.")

let seed_arg =
  Arg.(value & opt int 1 & info [ "seed"; "s" ] ~docv:"SEED" ~doc:"Schedule seed.")

let policy_arg =
  let parse = function
    | "random" -> Ok Config.Random_policy
    | "round-robin" -> Ok Config.Round_robin
    | "timed" -> Ok Config.Timed
    | s -> Error (`Msg (Printf.sprintf "unknown policy %S" s))
  in
  let print ppf p = Format.pp_print_string ppf (Config.policy_name p) in
  Arg.(
    value
    & opt (conv (parse, print)) Config.Timed
    & info [ "policy"; "p" ] ~docv:"POLICY"
        ~doc:"Scheduling policy: random, round-robin or timed.")

(* ------------------------------------------------------------------ *)
(* Subcommands                                                          *)
(* ------------------------------------------------------------------ *)

let run_cmd =
  let run scenario cpus seed policy =
    let cfg = { Config.default with Config.cpus; seed; policy } in
    match Engine.run_outcome ~cfg (lookup_scenario scenario) with
    | Engine.Completed stats ->
        Format.printf "completed: %a@." Engine.pp_stats stats;
        0
    | Engine.Deadlocked (kind, report) ->
        Format.printf "DEADLOCK (%s):@.%s@."
          (match kind with
          | Engine.Sleep_deadlock -> "sleep"
          | Engine.Spin_deadlock -> "spin/livelock")
          report;
        1
    | Engine.Panicked msg ->
        Format.printf "KERNEL PANIC: %s@." msg;
        1
    | Engine.Hit_step_limit ->
        Format.printf "step limit reached@.";
        1
  in
  let term = Term.(const run $ scenario_arg $ cpus_arg $ seed_arg $ policy_arg) in
  Cmd.v
    (Cmd.info "run" ~doc:"Run a scenario once and print the run statistics.")
    term

let explore_cmd =
  let seeds_arg =
    Arg.(
      value & opt int 100
      & info [ "seeds"; "n" ] ~docv:"N" ~doc:"Number of schedule seeds.")
  in
  let domains_arg =
    Arg.(
      value & opt int 1
      & info [ "domains"; "j" ] ~docv:"N"
          ~doc:
            "Fan the seeds out across $(docv) OCaml domains.  The verdict \
             is identical to the sequential run for every value.")
  in
  let run scenario cpus seeds domains =
    if domains < 1 then begin
      Printf.eprintf "explore: --domains must be at least 1 (got %d)\n" domains;
      exit 2
    end;
    let v =
      Explore.run ~cpus ~domains
        ~seeds:(List.init seeds (fun i -> i + 1))
        (lookup_scenario scenario)
    in
    Format.printf "%a@." Explore.pp_verdict v;
    (match v.Explore.failures with
    | (seed, report) :: _ ->
        Format.printf "@.first failure (seed %d):@.%s@." seed report
    | [] -> ());
    if Explore.all_completed v then 0 else 1
  in
  let term =
    Term.(const run $ scenario_arg $ cpus_arg $ seeds_arg $ domains_arg)
  in
  Cmd.v
    (Cmd.info "explore"
       ~doc:
         "Run a scenario across many schedule seeds and tally completions, \
          deadlocks and panics.")
    term

(* Write the Chrome trace-event document, then re-read and parse it: the
   exporter validates its own output, so a malformed document fails loudly
   here rather than in chrome://tracing. *)
let export_chrome_trace ~out events =
  let doc = Trace.chrome_json events in
  match
    let oc = open_out out in
    output_string oc (Obs_json.to_string doc);
    output_char oc '\n';
    close_out oc
  with
  | exception Sys_error msg ->
      Printf.eprintf "cannot write trace (%s)\n" msg;
      1
  | () ->
  (
  let ic = open_in_bin out in
  let len = in_channel_length ic in
  let text = really_input_string ic len in
  close_in ic;
  match Obs_json.of_string text with
  | Error msg ->
      Printf.eprintf "trace JSON INVALID (%s): %s\n" out msg;
      1
  | Ok doc -> (
      match Obs_json.member "traceEvents" doc with
      | Some (Obs_json.List evs) ->
          Printf.printf "trace JSON ok: %d events -> %s\n" (List.length evs)
            out;
          0
      | _ ->
          Printf.eprintf "trace JSON INVALID (%s): no traceEvents array\n" out;
          1))

let trace_cmd =
  let limit_arg =
    Arg.(
      value & opt int 60
      & info [ "limit"; "l" ] ~docv:"N" ~doc:"Trace lines to print (tail).")
  in
  let out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "out"; "o" ] ~docv:"FILE"
          ~doc:
            "Export the full trace as Chrome trace-event JSON (loadable in \
             chrome://tracing or Perfetto) instead of printing the tail.")
  in
  let run scenario cpus seed limit out =
    let cfg = { Config.default with Config.cpus; seed; trace = true } in
    let outcome = Engine.run_outcome ~cfg (lookup_scenario scenario) in
    let events = Engine.trace_events () in
    let status =
      match out with
      | Some out -> export_chrome_trace ~out events
      | None ->
          let total = List.length events in
          let tail =
            if total <= limit then events
            else List.filteri (fun idx _ -> idx >= total - limit) events
          in
          List.iter (fun e -> Format.printf "%a@." Trace.pp_event e) tail;
          Format.printf "(%d of %d events shown)@." (List.length tail) total;
          0
    in
    (* Loss accounting, split span-vs-instant and overflow-vs-disabled:
       "the ring wrapped" and "tracing was off" are different facts, and
       span records matter to the critical-path pass specifically. *)
    (match Engine.trace_drop_stats () with
    | Some d ->
        Format.printf
          "drops: overflow spans=%d events=%d; disabled spans=%d events=%d@."
          d.Trace.dropped_spans d.Trace.dropped_events d.Trace.disabled_spans
          d.Trace.disabled_events
    | None -> ());
    (match outcome with
    | Engine.Completed stats -> Format.printf "completed: %a@." Engine.pp_stats stats
    | Engine.Deadlocked (_, r) -> Format.printf "deadlocked:@.%s@." r
    | Engine.Panicked m -> Format.printf "panicked: %s@." m
    | Engine.Hit_step_limit -> Format.printf "step limit@.");
    status
  in
  let term =
    Term.(const run $ scenario_arg $ cpus_arg $ seed_arg $ limit_arg $ out_arg)
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:
         "Run a scenario with event tracing and dump the tail (or export \
          Chrome trace-event JSON with --out).")
    term

let profile_cmd =
  let top_arg =
    Arg.(
      value & opt int 10
      & info [ "top"; "t" ] ~docv:"N" ~doc:"Lock classes to show.")
  in
  let json_arg =
    Arg.(
      value & flag
      & info [ "json" ]
          ~doc:"Emit the profile and metrics registry as JSON instead of text.")
  in
  let run scenario cpus seed top json =
    (* Profile state is global and survives previous runs in this process;
       start from a clean slate so the report covers this scenario only. *)
    Obs_profile.reset ();
    Obs_metrics.reset ();
    let cfg = { Config.default with Config.cpus; seed } in
    let outcome = Engine.run_outcome ~cfg (lookup_scenario scenario) in
    if json then
      print_endline
        (Obs_json.to_string
           (Obs_json.Obj
              [
                ("scenario", Obs_json.String scenario);
                ("profile", Obs_profile.to_json ());
                ( "spans",
                  match Obs_span.last () with
                  | Some v -> Obs_span.to_json v
                  | None -> Obs_json.Null );
                ("metrics", Obs_metrics.to_json ());
              ]))
    else begin
      Format.printf "%a@." (fun ppf () -> Obs_profile.pp_report ~top_n:top ppf ()) ();
      (match Obs_span.last () with
      | Some v -> Format.printf "%a@." (Obs_span.pp_blockers ~top_n:top) v
      | None -> ());
      Format.printf "metrics:@.%a" Obs_metrics.pp ()
    end;
    match outcome with
    | Engine.Completed _ -> 0
    | Engine.Deadlocked (_, r) ->
        Format.printf "deadlocked:@.%s@." r;
        1
    | Engine.Panicked m ->
        Format.printf "panicked: %s@." m;
        1
    | Engine.Hit_step_limit ->
        Format.printf "step limit@.";
        1
  in
  let term =
    Term.(const run $ scenario_arg $ cpus_arg $ seed_arg $ top_arg $ json_arg)
  in
  Cmd.v
    (Cmd.info "profile"
       ~doc:
         "Run a scenario and print the lock contention profile (top classes \
          by wait cycles, first-attempt rates, waits-for edges) and the \
          metrics registry.")
    term

let report_cmd =
  let top_arg =
    Arg.(
      value & opt int 10
      & info [ "top"; "t" ] ~docv:"N" ~doc:"Sites / edges / classes to show.")
  in
  let json_arg =
    Arg.(
      value & flag
      & info [ "json" ] ~doc:"Emit the causal report as JSON instead of text.")
  in
  let run scenario cpus seed policy top json =
    Obs_profile.reset ();
    (* Tracing feeds the critical-path pass; track_waits feeds the
       waits-for graph so a deadlocked run still prints a diagnosis
       (with the flight-recorder dump the engine appends to it). *)
    let cfg =
      {
        Config.default with
        Config.cpus;
        seed;
        policy;
        trace = true;
        track_waits = true;
      }
    in
    let outcome = Engine.run_outcome ~cfg (lookup_scenario scenario) in
    let view =
      match Obs_span.last () with
      | Some v -> v
      | None -> Obs_span.empty_view
    in
    let makespan =
      match Engine.last_stats () with
      | Some s -> s.Engine.makespan
      | None -> 0
    in
    let evs =
      List.map
        (fun (e : Trace.event) ->
          { Obs_cp.cp_clock = e.Trace.clock; cp_ev = e.Trace.ev })
        (Engine.trace_events ())
    in
    let cp = Obs_cp.compute ~makespan evs in
    if json then
      print_endline
        (Obs_json.to_string
           (Obs_json.Obj
              [
                ("scenario", Obs_json.String scenario);
                ("spans", Obs_span.to_json view);
                ("critical_path", Obs_cp.to_json cp);
                ("profile", Obs_profile.to_json ());
              ]))
    else begin
      Format.printf "%a@." (Obs_span.pp_blockers ~top_n:top) view;
      Format.printf "%a@." Obs_cp.pp cp;
      (match Obs_cp.dominant cp with
      | Some a ->
          Format.printf "dominant: %s  (%.1f%% of the critical path)@."
            a.Obs_cp.cls
            (100. *. a.Obs_cp.fraction)
      | None -> Format.printf "dominant: none (no attributable waits)@.");
      Format.printf "%a" Obs_span.pp_flight view
    end;
    match outcome with
    | Engine.Completed stats ->
        Format.printf "completed: %a@." Engine.pp_stats stats;
        0
    | Engine.Deadlocked (_, r) ->
        (* The report already carries the flight-recorder dump the engine
           appended when it diagnosed the hang. *)
        Format.printf "deadlocked:@.%s@." r;
        1
    | Engine.Panicked m ->
        Format.printf "panicked: %s@." m;
        1
    | Engine.Hit_step_limit ->
        Format.printf "step limit@.";
        1
  in
  let term =
    Term.(
      const run $ scenario_arg $ cpus_arg $ seed_arg $ policy_arg $ top_arg
      $ json_arg)
  in
  Cmd.v
    (Cmd.info "report"
       ~doc:
         "Run a scenario and print the causal observability report: the \
          top-blockers table (which sites stall whom, and what the holder \
          was doing), the critical-path attribution over the trace (which \
          lock class the makespan was spent waiting on), and the \
          flight-recorder tail of recent spans per cpu.")
    term

let list_cmd =
  let run () =
    List.iter (fun (n, (d, _)) -> Printf.printf "%-22s %s\n" n d) scenarios;
    0
  in
  Cmd.v (Cmd.info "list" ~doc:"List available scenarios.") Term.(const run $ const ())

(* ------------------------------------------------------------------ *)
(* chaos: fault injection + deadlock detection                          *)
(* ------------------------------------------------------------------ *)

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec at i = i + nn <= nh && (String.sub hay i nn = needle || at (i + 1)) in
  nn = 0 || at 0

let chaos_cmd =
  let module Chaos = Mach_chaos.Chaos in
  let module Fault = Mach_chaos.Chaos_fault in
  let module Cs = Mach_chaos.Chaos_scenarios in
  let seeds_arg =
    Arg.(
      value & opt int 20
      & info [ "seeds"; "n" ] ~docv:"N" ~doc:"Schedule seeds per sweep.")
  in
  let intensity_arg =
    Arg.(
      value & opt int 2
      & info [ "intensity"; "i" ] ~docv:"N"
          ~doc:"Fault odds: each injected class fires with 1-in-$(docv) \
                probability per opportunity.")
  in
  let run cpus seeds intensity =
    let ok = ref true in
    (* 1. The section 7 interrupt deadlock: no injection needed; the
       detector must close the waits-for cycle. *)
    Format.printf "== section 7 interrupt deadlock (no injection) ==@.";
    (match
       Chaos.find_first_failure ~cpus ~max_seeds:seeds ~faults:(Fault.mix [])
         Cs.interrupt_deadlock
     with
    | Some r when contains r.Chaos.report "waits-for cycle" ->
        Format.printf "seed %d: %s@.%s@." r.Chaos.seed
          (Chaos.detection_name r.Chaos.detection)
          r.Chaos.report
    | Some r ->
        ok := false;
        Format.printf "seed %d: %s (no cycle diagnosed)@.%s@." r.Chaos.seed
          (Chaos.detection_name r.Chaos.detection)
          r.Chaos.report
    | None ->
        ok := false;
        Format.printf "no deadlock within %d seeds@." seeds);
    (* 2. The section 6 lost wakeup: a correct handoff protocol driven
       into a hang by the drop-wakeup injection; the detector must name
       the orphaned waiter.  Prefer the seed whose victim is the event
       waiter itself (the canonical lost-wakeup trace). *)
    Format.printf "@.== section 6 lost wakeup (drop-wakeup injection) ==@.";
    let drop = Fault.mix ~intensity [ Fault.Drop_wakeup ] in
    let first_lost = ref None and first_orphan = ref None in
    let seed = ref 1 in
    while !first_lost = None && !seed <= seeds do
      let r = Chaos.run_one ~cpus ~seed:!seed ~faults:drop Cs.lost_wakeup_handoff in
      (if Chaos.detected r.Chaos.detection then
         if contains r.Chaos.report "never arrived" then first_lost := Some r
         else if !first_orphan = None then first_orphan := Some r);
      incr seed
    done;
    (match (!first_lost, !first_orphan) with
    | Some r, _ | None, Some r ->
        Format.printf "seed %d: %s@.%s@." r.Chaos.seed
          (Chaos.detection_name r.Chaos.detection)
          r.Chaos.report
    | None, None ->
        ok := false;
        Format.printf "no lost wakeup within %d seeds@." seeds);
    (* 2b. The queue-lock analogue of the lost wakeup: MCS release hands
       off by storing to the successor's spin cell; dropping that store
       strands the waiter, and the detector must call it a lost
       handoff. *)
    Format.printf "@.== MCS lost handoff (drop-handoff injection) ==@.";
    let droph = Fault.mix ~intensity [ Fault.Drop_handoff ] in
    (match
       Chaos.find_first_failure ~cpus ~max_seeds:seeds ~faults:droph
         (fun () -> Cs.mcs_handoff ())
     with
    | Some r when contains r.Chaos.report "lost handoff" ->
        Format.printf "seed %d: %s@.%s@." r.Chaos.seed
          (Chaos.detection_name r.Chaos.detection)
          r.Chaos.report
    | Some r ->
        ok := false;
        Format.printf "seed %d: %s (no lost handoff diagnosed)@.%s@."
          r.Chaos.seed
          (Chaos.detection_name r.Chaos.detection)
          r.Chaos.report
    | None ->
        ok := false;
        Format.printf "no lost handoff within %d seeds@." seeds);
    (* 2c. Same hazard on the scache RW lock: the writer release grants
       the next FIFO ticket by a single store; dropping it strands the
       queued writer mid-sweep protocol. *)
    Format.printf "@.== scache lost writer handoff (drop-handoff injection) ==@.";
    (match
       Chaos.find_first_failure ~cpus ~max_seeds:seeds ~faults:droph
         (fun () -> Cs.scache_handoff ())
     with
    | Some r when contains r.Chaos.report "lost handoff" ->
        Format.printf "seed %d: %s@.%s@." r.Chaos.seed
          (Chaos.detection_name r.Chaos.detection)
          r.Chaos.report
    | Some r ->
        ok := false;
        Format.printf "seed %d: %s (no lost handoff diagnosed)@.%s@."
          r.Chaos.seed
          (Chaos.detection_name r.Chaos.detection)
          r.Chaos.report
    | None ->
        ok := false;
        Format.printf "no scache lost handoff within %d seeds@." seeds);
    (* 3. Fault-mix minimization: start from every class at once and
       shrink while the first failing seed keeps failing. *)
    Format.printf "@.== first-failure minimization ==@.";
    let full = Fault.mix ~intensity Fault.all in
    (match
       Chaos.find_first_failure ~cpus ~max_seeds:seeds ~faults:full
         Cs.lost_wakeup_handoff
     with
    | Some r ->
        let minimal = Chaos.minimize ~cpus ~seed:r.Chaos.seed ~faults:full
                        Cs.lost_wakeup_handoff in
        Format.printf "seed %d fails under {%s}; minimal mix {%s}@."
          r.Chaos.seed
          (String.concat ", " (List.map Fault.name (Fault.mix_classes full)))
          (String.concat ", " (List.map Fault.name (Fault.mix_classes minimal)))
    | None -> Format.printf "full mix produced no failure within %d seeds@." seeds);
    (* 4. Detection-rate sweep: one row per fault class per scenario. *)
    Format.printf "@.== detection sweep (%d seeds each) ==@." seeds;
    Format.printf "%-22s %-18s %s@." "scenario" "fault class" "detections";
    List.iter
      (fun (sname, scenario) ->
        List.iter
          (fun cls ->
            let s =
              Chaos.sweep ~cpus ~seeds
                ~faults:(Fault.mix ~intensity [ cls ])
                scenario
            in
            Format.printf "%-22s %-18s %a@." sname (Fault.name cls)
              Chaos.pp_sweep s)
          Fault.all)
      Cs.all;
    if !ok then 0 else 1
  in
  let term = Term.(const run $ cpus_arg $ seeds_arg $ intensity_arg) in
  Cmd.v
    (Cmd.info "chaos"
       ~doc:
         "Fault-injection sweep with the waits-for deadlock detector: \
          reproduce the section 7 interrupt deadlock, the section 6 \
          lost wakeup and the queue-lock lost handoff, minimize a \
          failing fault mix, and tally detection rates per fault class.")
    term

(* ------------------------------------------------------------------ *)
(* mc: systematic schedule-space model checking                         *)
(* ------------------------------------------------------------------ *)

let mc_cmd =
  let module Mc = Mach_mc.Mc in
  let mc_cpus_arg =
    Arg.(
      value & opt int 2
      & info [ "cpus"; "c" ] ~docv:"N"
          ~doc:"Virtual cpus (keep small: the space is exponential).")
  in
  let mode_arg =
    let parse s =
      match Mc.mode_of_string s with
      | Some m -> Ok m
      | None -> Error (`Msg (Printf.sprintf "unknown mode %S" s))
    in
    let print ppf m = Format.pp_print_string ppf (Mc.mode_name m) in
    Arg.(
      value
      & opt (conv (parse, print)) Mc.Dpor
      & info [ "mode" ] ~docv:"MODE"
          ~doc:"Search mode: naive, sleep (sleep sets) or dpor.")
  in
  let bound_arg =
    Arg.(
      value & opt (some int) None
      & info [ "bound"; "b" ] ~docv:"N"
          ~doc:
            "Preemption bound (CHESS style).  Omit for the unbounded, \
             exhaustive search used for verification claims.")
  in
  let max_execs_arg =
    Arg.(
      value & opt int 200_000
      & info [ "max-execs" ] ~docv:"N"
          ~doc:"Stop after exploring $(docv) schedules (search incomplete).")
  in
  let max_steps_arg =
    Arg.(
      value & opt int 20_000
      & info [ "max-steps" ] ~docv:"N" ~doc:"Step bound per execution.")
  in
  let domains_arg =
    Arg.(
      value & opt int 1
      & info [ "domains"; "j" ] ~docv:"N"
          ~doc:"Fan disjoint subtrees across $(docv) OCaml domains.")
  in
  let replay_arg =
    Arg.(
      value & opt (some string) None
      & info [ "replay" ] ~docv:"FILE"
          ~doc:
            "Do not search: replay the choice trace in $(docv) (as printed \
             on failure; - reads stdin) and report the outcome.")
  in
  let no_baseline_arg =
    Arg.(
      value & flag
      & info [ "no-baseline" ]
          ~doc:"Skip the capped naive baseline run (no reduction ratio).")
  in
  let read_file = function
    | "-" -> In_channel.input_all stdin
    | f -> In_channel.with_open_text f In_channel.input_all
  in
  let run scenario cpus mode bound max_execs max_steps domains replay
      no_baseline =
    let scen = lookup_scenario scenario in
    match replay with
    | Some file -> (
        match Mc.trace_of_string (read_file file) with
        | Error e ->
            Printf.eprintf "mc --replay: %s\n" e;
            2
        | Ok trace -> (
            let outcome, recorded =
              Mc.replay ~cpus ~max_steps ~trace scen
            in
            print_string (Mc.trace_to_string recorded);
            match outcome with
            | Engine.Completed stats ->
                Format.printf "replay completed: %a@." Engine.pp_stats stats;
                0
            | Engine.Deadlocked (kind, report) ->
                Format.printf "replay DEADLOCK (%s):@.%s@."
                  (match kind with
                  | Engine.Sleep_deadlock -> "sleep"
                  | Engine.Spin_deadlock -> "spin/livelock")
                  report;
                1
            | Engine.Panicked msg ->
                Format.printf "replay KERNEL PANIC: %s@." msg;
                1
            | Engine.Hit_step_limit ->
                Format.printf "replay hit the step bound@.";
                1))
    | None ->
        let r =
          Mc.check ~cpus ~mode ?bound ~max_steps
            ~max_executions:max_execs ~domains scen
        in
        Format.printf "%a@." Mc.pp_result r;
        (if mode <> Mc.Naive && not no_baseline then begin
           let naive =
             Mc.check ~cpus ~mode:Mc.Naive ?bound ~max_steps
               ~max_executions:max_execs ~domains ~minimize:false scen
           in
           let n = naive.Mc.stats.Mc.executions
           and k = r.Mc.stats.Mc.executions in
           if n > 0 then
             Format.printf
               "naive baseline: %d schedules%s -> reduction ratio %.3f@."
               n
               (if naive.Mc.complete || naive.Mc.failure <> None then ""
                else " (capped)")
               (float_of_int k /. float_of_int n)
         end);
        if r.Mc.verified then 0 else if r.Mc.failure <> None then 1 else 2
  in
  let term =
    Term.(
      const run $ scenario_arg $ mc_cpus_arg $ mode_arg $ bound_arg
      $ max_execs_arg $ max_steps_arg $ domains_arg $ replay_arg
      $ no_baseline_arg)
  in
  Cmd.v
    (Cmd.info "mc"
       ~doc:
         "Model-check a scenario: exhaustively explore every schedule (up \
          to an optional preemption bound) with DPOR/sleep-set pruning, \
          print a replayable counterexample trace on failure, or verify \
          that none exists.")
    term

let () =
  let doc = "Drive the simulated Mach multiprocessor (locking/refcount repro)." in
  let info = Cmd.info "machsim" ~version:"1.0" ~doc in
  exit
    (Cmd.eval'
       (Cmd.group info
          [
            run_cmd;
            explore_cmd;
            trace_cmd;
            profile_cmd;
            report_cmd;
            chaos_cmd;
            mc_cmd;
            list_cmd;
          ]))
