(* A guided tour of every synchronization facility the paper describes:
   simple locks, complex locks (Multiple / Sleep / Recursive), the event
   wait mechanism, reference counting and deactivation — including the
   design-rule checker catching real bugs.

   Run with: dune exec examples/locking_tour.exe *)

module Engine = Mach_sim.Sim_engine
module Config = Mach_sim.Sim_config
module K = Mach_ksync.Ksync
module Kobj = Mach_ksync.Kobj
module Spl = Mach_core.Spl

let say fmt = Printf.printf (fmt ^^ "\n%!")
let section s = say "\n== %s ==" s

let simple_locks () =
  section "Simple locks (Appendix A)";
  let l = K.Slock.make ~name:"demo" () in
  K.Slock.lock l;
  say "locked %s; is_locked=%b" (K.Slock.name l) (K.Slock.is_locked l);
  say "try_lock while held -> %b" (K.Slock.try_lock l);
  K.Slock.unlock l;
  say "unlocked; try_lock -> %b (then unlock)" (K.Slock.try_lock l);
  K.Slock.unlock l;
  (* contention from three threads; the stats record it *)
  let worker () =
    for _ = 1 to 50 do
      K.Slock.lock l;
      Engine.cycles 20;
      K.Slock.unlock l
    done
  in
  let ts = List.init 3 (fun _ -> Engine.spawn worker) in
  List.iter Engine.join ts;
  say "after 3x50 contended acquisitions: %s"
    (Format.asprintf "%a" Mach_core.Lock_stats.pp (K.Slock.stats l))

let complex_locks () =
  section "Complex locks (Appendix B)";
  let l = K.Clock.make ~name:"map-lock" ~can_sleep:true () in
  K.Clock.lock_read l;
  K.Clock.lock_read l;
  say "two concurrent readers: read_count=%d" (K.Clock.read_count l);
  K.Clock.lock_done l;
  say "upgrade the remaining read to write: failed=%b"
    (K.Clock.lock_read_to_write l);
  say "downgrade back to read (cannot fail, needs no recovery logic -- the";
  say "  section 7.1 recommendation over upgrades)";
  K.Clock.lock_write_to_read l;
  K.Clock.lock_done l;
  (* recursive option *)
  K.Clock.lock_write l;
  K.Clock.lock_set_recursive l;
  K.Clock.lock_write l;
  say "recursive write re-acquisition accepted (Recursive option set)";
  K.Clock.lock_done l;
  K.Clock.lock_read l;
  say "recursive read while write-held accepted";
  K.Clock.lock_done l;
  K.Clock.lock_clear_recursive l;
  K.Clock.lock_done l;
  say "fully released; held_for_write=%b" (K.Clock.held_for_write l)

let event_wait () =
  section "Event wait (section 6)";
  let guard = K.Slock.make ~name:"guard" () in
  let ev = K.Ev.fresh_event () in
  let condition = ref false in
  let sleeper =
    Engine.spawn ~name:"sleeper" (fun () ->
        K.Slock.lock guard;
        if not !condition then begin
          (* declare the wait BEFORE releasing the lock: atomic with
             respect to the wakeup *)
          K.Ev.assert_wait ev;
          K.Slock.unlock guard;
          ignore (K.Ev.thread_block ());
          say "sleeper: woke up with the condition = %b" !condition
        end
        else K.Slock.unlock guard)
  in
  while K.Ev.waiters_count ev = 0 do
    Engine.pause ()
  done;
  K.Slock.lock guard;
  condition := true;
  ignore (K.Ev.thread_wakeup ev);
  K.Slock.unlock guard;
  Engine.join sleeper

let refcount_and_deactivation () =
  section "References and deactivation (sections 8-9)";
  let destroyed = ref false in
  let obj =
    Kobj.make ~name:"object" ~destroy:(fun _ -> destroyed := true)
      Kobj.No_payload
  in
  say "created with 1 reference (the creator's): count=%d" (Kobj.ref_count obj);
  Kobj.reference obj;
  say "cloned: count=%d" (Kobj.ref_count obj);
  Kobj.with_lock obj (fun () -> ignore (Kobj.deactivate obj));
  say "deactivated under the object lock; data structure persists:";
  say "  is_active=%b, count=%d" (Kobj.is_active obj) (Kobj.ref_count obj);
  Kobj.release obj;
  say "one release: destroyed=%b" !destroyed;
  Kobj.release obj;
  say "last release: destroyed=%b" !destroyed

let checker_catches_bugs () =
  section "The design-rule checker at work";
  let show what outcome =
    match outcome with
    | Engine.Panicked msg -> say "%s\n  -> kernel panic: %s" what msg
    | _ -> say "%s -> (unexpectedly survived)" what
  in
  show "Blocking while holding a simple lock (Appendix A rule):"
    (Engine.run_outcome (fun () ->
         let l = K.Slock.make ~name:"held" () in
         let ev = K.Ev.fresh_event () in
         K.Slock.lock l;
         K.Ev.assert_wait ev;
         ignore (K.Ev.thread_block ())));
  show "Acquiring one lock at two different spls (section 7 rule):"
    (Engine.run_outcome (fun () ->
         let l = K.Slock.make ~name:"spl-mixed" () in
         let old = Engine.set_spl Spl.Splvm in
         K.Slock.lock l;
         K.Slock.unlock l;
         ignore (Engine.set_spl old);
         K.Slock.lock l));
  show "Releasing a reference while holding a simple lock (section 8 rule):"
    (Engine.run_outcome (fun () ->
         let l = K.Slock.make ~name:"held2" () in
         let r = K.Ref.make () in
         K.Slock.lock l;
         ignore (K.Ref.release r)))

(* Everything above also fed the process-global contention profiler; end
   the tour with its report (the `machsim profile` subcommand prints the
   same table for any scenario). *)
let contention_profile () =
  section "Contention profile (machsim profile)";
  Format.printf "%a@." (Mach_obs.Obs_profile.pp_report ~top_n:8) ()

let () =
  Mach_obs.Obs_profile.reset ();
  let cfg = { Config.default with Config.cpus = 4; seed = 7 } in
  ignore
    (Engine.run ~cfg (fun () ->
         simple_locks ();
         complex_locks ();
         event_wait ();
         refcount_and_deactivation ()));
  checker_catches_bugs ();
  contention_profile ();
  say "\nTour complete."
