module Engine = Mach_sim.Sim_engine
module Sim_config = Mach_sim.Sim_config
module Explore = Mach_sim.Sim_explore

type detection =
  | Cycle
  | Orphan
  | Watchdog
  | Sleep
  | Step_limit
  | Panic
  | Clean

let all_detections = [ Cycle; Orphan; Watchdog; Sleep; Step_limit; Panic ]

let detection_name = function
  | Cycle -> "waits-for-cycle"
  | Orphan -> "orphaned-waiter"
  | Watchdog -> "watchdog"
  | Sleep -> "sleep-deadlock"
  | Step_limit -> "step-limit"
  | Panic -> "panic"
  | Clean -> "clean"

let detected = function Clean -> false | _ -> true

type result = { seed : int; detection : detection; report : string }

let default_max_steps = 400_000
let default_watchdog = 50_000

let chaos_tweak ~faults ~max_steps ~watchdog cfg =
  {
    cfg with
    Sim_config.faults;
    track_waits = true;
    (* The flight recorder rides on spans: force them on regardless of
       the base config so every chaos-detected hang carries the recent
       per-cpu span tail in its report (spans never perturb the
       schedule, so injection results are unaffected). *)
    spans = true;
    max_steps = Some max_steps;
    watchdog_steps = watchdog;
  }

(* Classification looks at the engine's waits-for analysis first: a found
   cycle or an orphaned waiter is a *diagnosed* deadlock; a bare deadlock
   report (tracking found nothing) falls back to its kind, and a run that
   only stopped at the step bound (e.g. spurious wakeups keep resetting
   the watchdog) is its own bucket. *)
let classify outcome =
  match outcome with
  | Engine.Completed _ -> (Clean, "")
  | Engine.Panicked r -> (Panic, r)
  | Engine.Hit_step_limit -> (Step_limit, "step limit reached")
  | Engine.Deadlocked (kind, r) ->
      let d =
        match Engine.last_analysis () with
        | Some { Engine.cycle = _ :: _; _ } -> Cycle
        | Some { Engine.orphans = _ :: _; _ } -> Orphan
        | _ -> (
            match kind with
            | Engine.Spin_deadlock -> Watchdog
            | Engine.Sleep_deadlock -> Sleep)
      in
      (d, r)

let run_one ?(cpus = 4) ?(max_steps = default_max_steps)
    ?(watchdog = default_watchdog) ~seed ~faults scenario =
  let cfg =
    chaos_tweak ~faults ~max_steps ~watchdog
      (Sim_config.exploration ~cpus ~seed ())
  in
  let detection, report = classify (Engine.run_outcome ~cfg scenario) in
  { seed; detection; report }

type sweep = {
  runs : int;
  counts : (detection * int) list;  (* every detection bucket, in order *)
  first_failure : result option;    (* lowest failing seed *)
}

let detection_rate s =
  let failing =
    List.fold_left
      (fun acc (d, n) -> if detected d then acc + n else acc)
      0 s.counts
  in
  if s.runs = 0 then 0.0 else float_of_int failing /. float_of_int s.runs

let sweep ?cpus ?max_steps ?watchdog ?(seeds = 20) ~faults scenario =
  let tally = Hashtbl.create 8 in
  let first = ref None in
  for seed = 1 to seeds do
    let r = run_one ?cpus ?max_steps ?watchdog ~seed ~faults scenario in
    Hashtbl.replace tally r.detection
      (1 + Option.value ~default:0 (Hashtbl.find_opt tally r.detection));
    if !first = None && detected r.detection then first := Some r
  done;
  {
    runs = seeds;
    counts =
      List.map
        (fun d -> (d, Option.value ~default:0 (Hashtbl.find_opt tally d)))
        (all_detections @ [ Clean ]);
    first_failure = !first;
  }

let pp_sweep ppf s =
  Format.fprintf ppf "%d runs:" s.runs;
  List.iter
    (fun (d, n) ->
      if n > 0 then Format.fprintf ppf " %s=%d" (detection_name d) n)
    s.counts;
  match s.first_failure with
  | Some r -> Format.fprintf ppf " (first failure: seed %d)" r.seed
  | None -> ()

(* Does [seed] still fail under [faults]?  Goes through Sim_explore so the
   check shares the exploration configuration with every other sweep in
   the repo; a run counts as failing unless it completed. *)
let fails ~cpus ~max_steps ~watchdog ~seed ~faults scenario =
  let v =
    Explore.run ~cpus ~seeds:[ seed ]
      ~tweak:(chaos_tweak ~faults ~max_steps ~watchdog)
      scenario
  in
  v.Explore.completed < v.Explore.seeds_run

let find_first_failure ?(cpus = 4) ?(max_steps = default_max_steps)
    ?(watchdog = default_watchdog) ?(max_seeds = 50) ~faults scenario =
  let rec search seed =
    if seed > max_seeds then None
    else
      let r = run_one ~cpus ~max_steps ~watchdog ~seed ~faults scenario in
      if detected r.detection then Some r else search (seed + 1)
  in
  search 1

(* Greedy first-failure minimization: starting from a failing (seed, mix),
   drop one fault class at a time and keep the drop whenever the seed
   still fails.  The result is a locally-minimal mix (possibly empty, for
   scenarios like the section 7 bug that deadlock without injection). *)
let minimize ?(cpus = 4) ?(max_steps = default_max_steps)
    ?(watchdog = default_watchdog) ~seed ~faults scenario =
  List.fold_left
    (fun f c ->
      if List.mem c (Chaos_fault.mix_classes f) then begin
        let f' = Chaos_fault.remove c f in
        if fails ~cpus ~max_steps ~watchdog ~seed ~faults:f' scenario then f'
        else f
      end
      else f)
    faults Chaos_fault.all
