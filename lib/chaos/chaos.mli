(** The chaos driver: run scenarios under seeded fault injection with the
    waits-for deadlock detector on, classify how each run failed, sweep
    seeds per fault mix, and minimize a failing mix. *)

type detection =
  | Cycle       (** detector found a waits-for cycle *)
  | Orphan      (** detector found an orphaned waiter / lost wakeup *)
  | Watchdog    (** spin deadlock, no cycle diagnosed *)
  | Sleep       (** sleep deadlock, no analysis produced *)
  | Step_limit  (** step bound hit (e.g. watchdog kept being reset) *)
  | Panic
  | Clean       (** run completed *)

val all_detections : detection list
(** Every failing bucket, in report order ([Clean] excluded). *)

val detection_name : detection -> string
val detected : detection -> bool

type result = { seed : int; detection : detection; report : string }

val run_one :
  ?cpus:int ->
  ?max_steps:int ->
  ?watchdog:int ->
  seed:int ->
  faults:Mach_sim.Sim_config.faults ->
  (unit -> unit) ->
  result
(** One exploration run with [faults] injected and wait tracking on. *)

type sweep = {
  runs : int;
  counts : (detection * int) list;
  first_failure : result option;
}

val detection_rate : sweep -> float
(** Fraction of runs that did not complete. *)

val sweep :
  ?cpus:int ->
  ?max_steps:int ->
  ?watchdog:int ->
  ?seeds:int ->
  faults:Mach_sim.Sim_config.faults ->
  (unit -> unit) ->
  sweep
(** Run seeds 1..[seeds] (default 20) and tally detections. *)

val pp_sweep : Format.formatter -> sweep -> unit

val find_first_failure :
  ?cpus:int ->
  ?max_steps:int ->
  ?watchdog:int ->
  ?max_seeds:int ->
  faults:Mach_sim.Sim_config.faults ->
  (unit -> unit) ->
  result option
(** Lowest seed (up to [max_seeds], default 50) whose run fails. *)

val minimize :
  ?cpus:int ->
  ?max_steps:int ->
  ?watchdog:int ->
  seed:int ->
  faults:Mach_sim.Sim_config.faults ->
  (unit -> unit) ->
  Mach_sim.Sim_config.faults
(** Greedily drop fault classes from a failing mix while [seed] keeps
    failing (re-checked through {!Mach_sim.Sim_explore.run}); returns a
    locally-minimal mix, possibly empty for scenarios that fail without
    injection. *)
