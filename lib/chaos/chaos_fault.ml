module Sim_config = Mach_sim.Sim_config

type cls =
  | Drop_wakeup
  | Delay_wakeup
  | Spurious_wakeup
  | Delay_interrupt
  | Perturb_pick
  | Preempt_acquire
  | Drop_handoff

let all =
  [
    Drop_wakeup;
    Delay_wakeup;
    Spurious_wakeup;
    Delay_interrupt;
    Perturb_pick;
    Preempt_acquire;
    Drop_handoff;
  ]

let name = function
  | Drop_wakeup -> "drop-wakeup"
  | Delay_wakeup -> "delay-wakeup"
  | Spurious_wakeup -> "spurious-wakeup"
  | Delay_interrupt -> "delay-interrupt"
  | Perturb_pick -> "perturb-pick"
  | Preempt_acquire -> "preempt-acquire"
  | Drop_handoff -> "drop-handoff"

let of_name s =
  List.find_opt (fun c -> name c = s) all

(* [intensity] is the 1-in-N odds given to the class; lower = more
   aggressive.  1 fires on every opportunity. *)
let apply ~intensity cls (f : Sim_config.faults) =
  match cls with
  | Drop_wakeup -> { f with Sim_config.drop_wakeup = intensity }
  | Delay_wakeup -> { f with Sim_config.delay_wakeup = intensity }
  | Spurious_wakeup -> { f with Sim_config.spurious_wakeup = intensity }
  | Delay_interrupt -> { f with Sim_config.delay_interrupt = intensity }
  | Perturb_pick -> { f with Sim_config.perturb_pick = intensity }
  | Preempt_acquire -> { f with Sim_config.preempt_on_acquire = intensity }
  | Drop_handoff -> { f with Sim_config.drop_handoff = intensity }

let mix ?(intensity = 2) ?(fault_seed = 0) classes =
  List.fold_left
    (fun f c -> apply ~intensity c f)
    { Sim_config.no_faults with Sim_config.fault_seed }
    classes

let mix_classes (f : Sim_config.faults) =
  List.filter
    (fun c ->
      match c with
      | Drop_wakeup -> f.Sim_config.drop_wakeup > 0
      | Delay_wakeup -> f.Sim_config.delay_wakeup > 0
      | Spurious_wakeup -> f.Sim_config.spurious_wakeup > 0
      | Delay_interrupt -> f.Sim_config.delay_interrupt > 0
      | Perturb_pick -> f.Sim_config.perturb_pick > 0
      | Preempt_acquire -> f.Sim_config.preempt_on_acquire > 0
      | Drop_handoff -> f.Sim_config.drop_handoff > 0)
    all

let remove cls (f : Sim_config.faults) =
  match cls with
  | Drop_wakeup -> { f with Sim_config.drop_wakeup = 0 }
  | Delay_wakeup -> { f with Sim_config.delay_wakeup = 0 }
  | Spurious_wakeup -> { f with Sim_config.spurious_wakeup = 0 }
  | Delay_interrupt -> { f with Sim_config.delay_interrupt = 0 }
  | Perturb_pick -> { f with Sim_config.perturb_pick = 0 }
  | Preempt_acquire -> { f with Sim_config.preempt_on_acquire = 0 }
  | Drop_handoff -> { f with Sim_config.drop_handoff = 0 }
