(** Fault classes for the chaos layer: names for the odds fields of
    {!Mach_sim.Sim_config.faults}, plus mix construction and surgery used
    by the first-failure minimizer. *)

type cls =
  | Drop_wakeup       (** unpark of a parked thread silently dropped (§6) *)
  | Delay_wakeup      (** unpark deferred by a configurable step count *)
  | Spurious_wakeup   (** random parked thread woken without cause *)
  | Delay_interrupt   (** deliverable interrupt deferred when possible *)
  | Perturb_pick      (** scheduling policy overridden by a uniform pick *)
  | Preempt_acquire   (** forced preemption at a test-and-set boundary *)
  | Drop_handoff      (** queue-lock successor handoff silently dropped *)

val all : cls list
val name : cls -> string
val of_name : string -> cls option

val apply : intensity:int -> cls -> Mach_sim.Sim_config.faults -> Mach_sim.Sim_config.faults
(** Set the class's odds field to 1-in-[intensity]. *)

val mix : ?intensity:int -> ?fault_seed:int -> cls list -> Mach_sim.Sim_config.faults
(** A faults record with every listed class at [intensity] (default 2:
    1-in-2 odds per opportunity). *)

val mix_classes : Mach_sim.Sim_config.faults -> cls list
(** The classes active in a faults record. *)

val remove : cls -> Mach_sim.Sim_config.faults -> Mach_sim.Sim_config.faults
(** Zero one class's odds, leaving the rest of the mix intact. *)
