module Engine = Mach_sim.Sim_engine
module K = Mach_ksync.Ksync

(* A correct assert_wait / thread_block / thread_wakeup handoff (the
   protocol section 6 prescribes): the producer publishes the datum, then
   wakes the event; the consumer re-checks the condition around every
   block, so no schedule alone can hang it.  Only an injected fault — a
   dropped or lost wakeup — leaves the consumer parked forever, which is
   exactly what the detector's orphaned-waiter analysis must explain. *)
let lost_wakeup_handoff () =
  let flag = Engine.Cell.make ~name:"handoff.flag" 0 in
  let ev = K.Ev.fresh_event () in
  let consumer =
    Engine.spawn ~name:"consumer" (fun () ->
        let rec wait () =
          if Engine.Cell.get flag = 0 then begin
            K.Ev.assert_wait ev;
            if Engine.Cell.get flag = 0 then ignore (K.Ev.thread_block ())
            else K.Ev.cancel_assert ();
            wait ()
          end
        in
        wait ())
  in
  let producer =
    Engine.spawn ~name:"producer" (fun () ->
        Engine.cycles 200;
        Engine.Cell.set flag 1;
        ignore (K.Ev.thread_wakeup ev))
  in
  Engine.join producer;
  Engine.join consumer

(* Several sleepers on one event woken by a single broadcast; widens the
   window for drop/delay injections (each sleeper's unpark is a separate
   opportunity). *)
let wakeup_herd ?(sleepers = 4) () =
  let flag = Engine.Cell.make ~name:"herd.flag" 0 in
  let ev = K.Ev.fresh_event () in
  let ts =
    List.init sleepers (fun i ->
        Engine.spawn ~name:(Printf.sprintf "sleeper%d" i) (fun () ->
            let rec wait () =
              if Engine.Cell.get flag = 0 then begin
                K.Ev.assert_wait ev;
                if Engine.Cell.get flag = 0 then ignore (K.Ev.thread_block ())
                else K.Ev.cancel_assert ();
                wait ()
              end
            in
            wait ()))
  in
  let waker =
    Engine.spawn ~name:"waker" (fun () ->
        Engine.cycles 300;
        Engine.Cell.set flag 1;
        ignore (K.Ev.thread_wakeup ev))
  in
  Engine.join waker;
  List.iter Engine.join ts

(* The section 7 three-processor interrupt deadlock, undisciplined: the
   canonical waits-for-cycle target. *)
let interrupt_deadlock () =
  Mach_kernel.Scenarios.interrupt_barrier_scenario ~disciplined:false ()

(* Workers contending an MCS queue lock: release is an explicit store to
   the successor's spin cell, so the [Drop_handoff] class can strand a
   waiter in a local spin on a lock nobody holds — the queue-lock
   analogue of the lost wakeup, reported as a "lost handoff" by the
   waits-for analyzer's spin-deadlock orphan pass. *)
let mcs_handoff ?(workers = 3) () =
  let l = K.Slock.make ~name:"mcs" ~proto:K.Locks.mcs () in
  let c = Engine.Cell.make ~name:"mcs.count" 0 in
  let ts =
    List.init workers (fun i ->
        Engine.spawn ~name:(Printf.sprintf "worker%d" i) (fun () ->
            for _ = 1 to 3 do
              K.Slock.lock l;
              ignore (Engine.Cell.fetch_and_add c 1);
              Engine.cycles 30;
              K.Slock.unlock l
            done))
  in
  List.iter Engine.join ts

(* The scache writer release is an explicit handoff too: the grant store
   that admits the next queued writer ticket.  Workers contend the
   writer side through Simple_lock (which supplies the waits-for edges),
   so a dropped grant strands the successor spinning on a lock nobody
   holds — the analyzer's "lost handoff", now on the scache sweep. *)
let scache_handoff ?(workers = 3) () =
  let l = K.Slock.make ~name:"scache" ~proto:K.Locks.scache_writer () in
  let c = Engine.Cell.make ~name:"scache.count" 0 in
  let ts =
    List.init workers (fun i ->
        Engine.spawn ~name:(Printf.sprintf "worker%d" i) (fun () ->
            for _ = 1 to 3 do
              K.Slock.lock l;
              ignore (Engine.Cell.fetch_and_add c 1);
              Engine.cycles 30;
              K.Slock.unlock l
            done))
  in
  List.iter Engine.join ts

let all =
  [
    ("interrupt-deadlock", interrupt_deadlock);
    ("lost-wakeup-handoff", lost_wakeup_handoff);
    ("wakeup-herd", fun () -> wakeup_herd ());
    ("mcs-handoff", fun () -> mcs_handoff ());
    ("scache-handoff", fun () -> scache_handoff ());
  ]
