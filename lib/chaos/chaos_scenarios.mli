(** Target scenarios for the chaos harness.  The wakeup scenarios follow
    the correct section 6 protocol — they hang only when a fault is
    injected; the interrupt scenario is the section 7 bug and deadlocks on
    some schedules with no injection at all. *)

val lost_wakeup_handoff : unit -> unit
(** One producer hands a flag to one consumer over an event. *)

val wakeup_herd : ?sleepers:int -> unit -> unit
(** [sleepers] threads on one event, woken by a single broadcast. *)

val interrupt_deadlock : unit -> unit
(** {!Mach_kernel.Scenarios.interrupt_barrier_scenario} with the same-spl
    discipline off. *)

val mcs_handoff : ?workers:int -> unit -> unit
(** Workers contending an MCS queue lock; hangs only when the
    [Drop_handoff] fault class strands a waiter (lost handoff). *)

val scache_handoff : ?workers:int -> unit -> unit
(** Workers contending the scache writer side (FIFO ticket gate); hangs
    only when [Drop_handoff] drops the release's grant store, stranding
    the next queued writer (lost handoff on the scache sweep). *)

val all : (string * (unit -> unit)) list
(** Name-keyed registry for the CLI and the benchmarks. *)
