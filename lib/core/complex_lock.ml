module Tls_key = Machine_intf.Tls_key
module Obs_metrics = Mach_obs.Obs_metrics
module Obs_profile = Mach_obs.Obs_profile
module Obs_trace = Mach_obs.Obs_trace
module Obs_event = Mach_obs.Obs_event
module Obs_span = Mach_obs.Obs_span

module Make
    (M : Machine_intf.MACHINE)
    (Slock : module type of Simple_lock.Make (M))
    (E : module type of Event.Make (M) (Slock)) =
struct
  (* Same named metrics as the simple locks: interning is idempotent, so
     complex-lock waits land in the same "lock.*" aggregates. *)
  let m_acquisitions = Obs_metrics.counter "lock.acquisitions"
  let m_contentions = Obs_metrics.counter "lock.contentions"
  let h_wait = Obs_metrics.histogram "lock.wait_cycles"
  let h_hold = Obs_metrics.histogram "lock.hold_cycles"

  type t = {
    cl_id : int;
    interlock : Slock.t; (* protects every mutable field below *)
    event : E.event;
    lname : string;
    stats : Lock_stats.t;
    mutable want_write : bool;
    mutable want_upgrade : bool;
    mutable read_count : int;
    mutable can_sleep : bool;
    mutable waiting : bool; (* someone is blocked on [event] *)
    mutable writer : M.thread option; (* current write holder *)
    mutable recursive_holder : M.thread option;
    mutable recursion_depth : int; (* write re-acquisitions beyond first *)
    mutable recursive_reads : int; (* read acquisitions by the recursive holder *)
    mutable writers_priority : bool; (* ablation switch, default true *)
    mutable write_acquired_at : int; (* cycle clock when the writer got in *)
  }

  let next_id = Atomic.make 0

  let make ?name ?proto ~can_sleep () =
    let id = Atomic.fetch_and_add next_id 1 in
    let lname =
      match name with Some n -> n | None -> Printf.sprintf "lock%d" id
    in
    let event = E.fresh_event () in
    (* Sleep-mode waits surface as waits on [event]; alias the event back
       to this lock so the deadlock detector names the lock, not a bare
       event number. *)
    Waits_for.note_event_resource ~event
      (Waits_for.Clock { uid = id; name = lname });
    {
      cl_id = id;
      interlock = Slock.make ~name:(lname ^ ".interlock") ?proto ();
      event;
      lname;
      stats = Lock_stats.make ();
      want_write = false;
      want_upgrade = false;
      read_count = 0;
      can_sleep = true;
      waiting = false;
      writer = None;
      recursive_holder = None;
      recursion_depth = 0;
      recursive_reads = 0;
      writers_priority = true;
      write_acquired_at = 0;
    }
    |> fun t ->
    t.can_sleep <- can_sleep;
    t

  (* [waits] is the number of [lock_wait] rounds the acquisition took;
     contended iff at least one.  [blocker] is the writer observed when
     the wait began, for blocked-by attribution (reader crowds have no
     single holder to blame, so only writer holds attribute). *)
  let obs_acquire t ?blocker ~waits ~wait_cycles () =
    let cpu = M.current_cpu () in
    Obs_metrics.incr ~cpu m_acquisitions;
    if waits > 0 then Obs_metrics.incr ~cpu m_contentions;
    Obs_metrics.observe ~cpu h_wait wait_cycles;
    Obs_profile.note_acquire
      ~tid:(M.thread_id (M.self ()))
      ~name:t.lname ~contended:(waits > 0) ~wait_cycles;
    if Obs_span.enabled () then begin
      (match blocker with
      | Some h when waits > 0 ->
          Obs_span.blocked ~kind:Obs_span.Lock ~name:t.lname
            ~holder_tid:(M.thread_id h) ~wait_cycles
      | _ -> ());
      Obs_span.enter Obs_span.Lock t.lname
    end;
    if Obs_trace.enabled () then
      Obs_trace.emit
        (Obs_event.Lock_acquire { lock = t.lname; spins = waits; wait_cycles })

  (* [held_cycles = 0] means "unknown" (read holds are not individually
     timed); it still balances the profiler's held stack. *)
  let obs_release t ~held_cycles =
    if held_cycles > 0 then
      Obs_metrics.observe ~cpu:(M.current_cpu ()) h_hold held_cycles;
    Obs_profile.note_release
      ~tid:(M.thread_id (M.self ()))
      ~name:t.lname ~held_cycles;
    Obs_span.exit Obs_span.Lock t.lname;
    if Obs_trace.enabled () then
      Obs_trace.emit (Obs_event.Lock_release { lock = t.lname; held_cycles })

  let self_is t holder =
    match holder with
    | Some h -> M.equal_thread h (M.self ())
    | None -> ignore t; false

  let is_recursive_holder t = self_is t t.recursive_holder

  (* Account spin-mode complex locks in TLS so the event layer can reject
     blocking while one is held (Appendix B: locks without the Sleep option
     cannot be held during blocking operations). *)
  let bump_spin_held t delta =
    if not t.can_sleep then begin
      let self = M.self () in
      let k = Tls_key.complex_spin_locks_held in
      M.tls_set self ~key:k (M.tls_get self ~key:k + delta)
    end

  let wf_res t = Waits_for.Clock { uid = t.cl_id; name = t.lname }

  let wf_hold t =
    if Waits_for.tracking () then
      Waits_for.note_hold
        ~tid:(M.thread_id (M.self ()))
        ~tname:(M.thread_name (M.self ()))
        (wf_res t)

  let wf_release t =
    if Waits_for.tracking () then
      Waits_for.note_release ~tid:(M.thread_id (M.self ())) (wf_res t)

  (* Wait for the lock state to change.  Caller holds the interlock; it is
     released across the wait and reacquired before returning.  Sleep mode
     blocks on the lock's event (the event-to-lock alias recorded in [make]
     lets the deadlock detector name the lock); spin mode busy-waits with
     an explicit wait edge per round. *)
  let lock_wait t =
    if t.can_sleep then begin
      t.waiting <- true;
      Lock_stats.record_sleep t.stats;
      E.assert_wait t.event;
      Slock.unlock t.interlock;
      ignore (E.thread_block ());
      Slock.lock t.interlock
    end
    else begin
      Slock.unlock t.interlock;
      let tracking = Waits_for.tracking () in
      if tracking then
        Waits_for.note_wait
          ~tid:(M.thread_id (M.self ()))
          ~tname:(M.thread_name (M.self ()))
          (wf_res t);
      M.spin_hint t.lname;
      M.spin_pause ();
      Slock.lock t.interlock;
      if tracking then
        Waits_for.note_wait_done ~tid:(M.thread_id (M.self ())) (wf_res t)
    end

  (* Wake every thread blocked on the lock (Mach's wakeup is broadcast).
     Caller holds the interlock. *)
  let lock_wakeup t =
    if t.waiting then begin
      t.waiting <- false;
      ignore (E.thread_wakeup t.event)
    end

  let lock_write t =
    Slock.lock t.interlock;
    if self_is t t.writer && is_recursive_holder t then begin
      (* Recursive write acquisition. *)
      t.recursion_depth <- t.recursion_depth + 1;
      Lock_stats.record_recursive t.stats;
      Slock.unlock t.interlock
    end
    else begin
      (if self_is t t.writer then begin
         Slock.unlock t.interlock;
         M.fatal
           (Printf.sprintf
              "complex lock %s: write re-acquisition without the Recursive \
               option (deadlock)"
              t.lname)
       end);
      let t0 = M.now_cycles () in
      let blocker = t.writer in
      let waits = ref 0 in
      (* Claim the writer slot: wait out other writers and upgraders. *)
      while t.want_write || t.want_upgrade do
        incr waits;
        lock_wait t
      done;
      t.want_write <- true;
      (* Drain readers; defer to a pending upgrade (upgrades are favored
         over writes to avoid deadlocked upgrades, section 4). *)
      while t.read_count > 0 || t.want_upgrade do
        incr waits;
        lock_wait t
      done;
      t.writer <- Some (M.self ());
      t.write_acquired_at <- M.now_cycles ();
      Lock_stats.record_write t.stats;
      obs_acquire t ?blocker ~waits:!waits
        ~wait_cycles:(if !waits > 0 then max 0 (M.now_cycles () - t0) else 0)
        ();
      bump_spin_held t 1;
      wf_hold t;
      Slock.unlock t.interlock
    end

  let lock_read t =
    Slock.lock t.interlock;
    if is_recursive_holder t then begin
      (* The recursive holder's requests are not blocked by pending write
         or upgrade requests (section 4). *)
      t.read_count <- t.read_count + 1;
      t.recursive_reads <- t.recursive_reads + 1;
      Lock_stats.record_recursive t.stats;
      Slock.unlock t.interlock
    end
    else begin
      let excluded () =
        if t.writers_priority then t.want_write || t.want_upgrade
        else t.writer <> None
      in
      let t0 = M.now_cycles () in
      let blocker = t.writer in
      let waits = ref 0 in
      while excluded () do
        incr waits;
        lock_wait t
      done;
      t.read_count <- t.read_count + 1;
      Lock_stats.record_read t.stats;
      obs_acquire t ?blocker ~waits:!waits
        ~wait_cycles:(if !waits > 0 then max 0 (M.now_cycles () - t0) else 0)
        ();
      bump_spin_held t 1;
      wf_hold t;
      Slock.unlock t.interlock
    end

  let lock_read_to_write t =
    Slock.lock t.interlock;
    if is_recursive_holder t then begin
      Slock.unlock t.interlock;
      M.fatal
        (Printf.sprintf
           "complex lock %s: upgrade of a recursive read acquisition is \
            prohibited (section 4)"
           t.lname)
    end;
    t.read_count <- t.read_count - 1;
    if t.want_upgrade then begin
      (* Another upgrade is pending: fail, releasing the read lock. *)
      Lock_stats.record_upgrade t.stats ~success:false;
      if t.read_count = 0 then lock_wakeup t;
      bump_spin_held t (-1);
      wf_release t;
      obs_release t ~held_cycles:0;
      Slock.unlock t.interlock;
      true
    end
    else begin
      t.want_upgrade <- true;
      while t.read_count > 0 do
        lock_wait t
      done;
      t.writer <- Some (M.self ());
      t.write_acquired_at <- M.now_cycles ();
      Lock_stats.record_upgrade t.stats ~success:true;
      Slock.unlock t.interlock;
      false
    end

  let lock_write_to_read t =
    Slock.lock t.interlock;
    if not (self_is t t.writer) then begin
      Slock.unlock t.interlock;
      M.fatal
        (Printf.sprintf "complex lock %s: downgrade by non-writer" t.lname)
    end;
    if t.recursion_depth > 0 then begin
      Slock.unlock t.interlock;
      M.fatal
        (Printf.sprintf
           "complex lock %s: downgrade with %d recursive write \
            acquisition(s) outstanding"
           t.lname t.recursion_depth)
    end;
    t.read_count <- t.read_count + 1;
    if t.want_upgrade then t.want_upgrade <- false
    else t.want_write <- false;
    t.writer <- None;
    Lock_stats.record_downgrade t.stats;
    (* The write portion of the hold ends here; the (untimed) read hold
       keeps the profiler's held-stack entry. *)
    Obs_metrics.observe
      ~cpu:(M.current_cpu ())
      h_hold
      (max 0 (M.now_cycles () - t.write_acquired_at));
    lock_wakeup t;
    Slock.unlock t.interlock

  let lock_done t =
    Slock.lock t.interlock;
    if t.read_count > 0 then begin
      t.read_count <- t.read_count - 1;
      if is_recursive_holder t && t.recursive_reads > 0 then
        (* A recursive read release: the matching acquisition did not count
           towards the spin-held balance. *)
        t.recursive_reads <- t.recursive_reads - 1
      else begin
        bump_spin_held t (-1);
        wf_release t;
        obs_release t ~held_cycles:0
      end
    end
    else if self_is t t.writer && t.recursion_depth > 0 then
      t.recursion_depth <- t.recursion_depth - 1
    else if t.want_upgrade then begin
      t.want_upgrade <- false;
      t.writer <- None;
      bump_spin_held t (-1);
      wf_release t;
      obs_release t ~held_cycles:(max 0 (M.now_cycles () - t.write_acquired_at))
    end
    else if t.want_write then begin
      t.want_write <- false;
      t.writer <- None;
      bump_spin_held t (-1);
      wf_release t;
      obs_release t ~held_cycles:(max 0 (M.now_cycles () - t.write_acquired_at))
    end
    else begin
      Slock.unlock t.interlock;
      M.fatal (Printf.sprintf "complex lock %s: lock_done while free" t.lname)
    end;
    lock_wakeup t;
    Slock.unlock t.interlock

  let lock_try_read t =
    Slock.lock t.interlock;
    let ok =
      if is_recursive_holder t then begin
        t.read_count <- t.read_count + 1;
        Lock_stats.record_recursive t.stats;
        true
      end
      else if
        if t.writers_priority then t.want_write || t.want_upgrade
        else t.writer <> None
      then false
      else begin
        t.read_count <- t.read_count + 1;
        Lock_stats.record_read t.stats;
        obs_acquire t ~waits:0 ~wait_cycles:0 ();
        bump_spin_held t 1;
        wf_hold t;
        true
      end
    in
    Lock_stats.record_try t.stats ~success:ok;
    Slock.unlock t.interlock;
    ok

  let lock_try_write t =
    Slock.lock t.interlock;
    let ok =
      if self_is t t.writer && is_recursive_holder t then begin
        t.recursion_depth <- t.recursion_depth + 1;
        Lock_stats.record_recursive t.stats;
        true
      end
      else if t.want_write || t.want_upgrade || t.read_count > 0 then false
      else begin
        t.want_write <- true;
        t.writer <- Some (M.self ());
        t.write_acquired_at <- M.now_cycles ();
        Lock_stats.record_write t.stats;
        obs_acquire t ~waits:0 ~wait_cycles:0 ();
        bump_spin_held t 1;
        wf_hold t;
        true
      end
    in
    Lock_stats.record_try t.stats ~success:ok;
    Slock.unlock t.interlock;
    ok

  let lock_try_read_to_write t =
    Slock.lock t.interlock;
    if t.want_upgrade then begin
      (* Would deadlock against the pending upgrade: refuse without
         dropping the read lock (Appendix B.3). *)
      Lock_stats.record_try t.stats ~success:false;
      Slock.unlock t.interlock;
      false
    end
    else begin
      t.read_count <- t.read_count - 1;
      t.want_upgrade <- true;
      (* May wait for other readers to drop the lock. *)
      while t.read_count > 0 do
        lock_wait t
      done;
      t.writer <- Some (M.self ());
      t.write_acquired_at <- M.now_cycles ();
      Lock_stats.record_upgrade t.stats ~success:true;
      Lock_stats.record_try t.stats ~success:true;
      Slock.unlock t.interlock;
      true
    end

  let lock_sleepable t can_sleep =
    Slock.lock t.interlock;
    t.can_sleep <- can_sleep;
    Slock.unlock t.interlock

  let lock_set_recursive t =
    Slock.lock t.interlock;
    if not (self_is t t.writer) then begin
      Slock.unlock t.interlock;
      M.fatal
        (Printf.sprintf
           "complex lock %s: lock_set_recursive requires the lock held for \
            write (Appendix B.4)"
           t.lname)
    end;
    t.recursive_holder <- Some (M.self ());
    Slock.unlock t.interlock

  let lock_clear_recursive t =
    Slock.lock t.interlock;
    if not (is_recursive_holder t) then begin
      Slock.unlock t.interlock;
      M.fatal
        (Printf.sprintf
           "complex lock %s: lock_clear_recursive by a thread that did not \
            set it"
           t.lname)
    end;
    if t.recursion_depth > 0 then begin
      Slock.unlock t.interlock;
      M.fatal
        (Printf.sprintf
           "complex lock %s: lock_clear_recursive with %d recursive write \
            acquisition(s) outstanding"
           t.lname t.recursion_depth)
    end;
    t.recursive_holder <- None;
    Slock.unlock t.interlock

  let with_read t f =
    lock_read t;
    match f () with
    | v ->
        lock_done t;
        v
    | exception e ->
        lock_done t;
        raise e

  let with_write t f =
    lock_write t;
    match f () with
    | v ->
        lock_done t;
        v
    | exception e ->
        lock_done t;
        raise e

  let name t = t.lname
  let stats t = t.stats

  let read_count t =
    Slock.with_lock t.interlock (fun () -> t.read_count)

  let held_for_write t =
    Slock.with_lock t.interlock (fun () -> t.writer <> None)

  let held_for_write_by_self t =
    Slock.with_lock t.interlock (fun () -> self_is t t.writer)

  let pending_write_request t =
    Slock.with_lock t.interlock (fun () -> t.want_write)

  let pending_upgrade t =
    Slock.with_lock t.interlock (fun () -> t.want_upgrade)

  let can_sleep t = t.can_sleep
  let writers_priority t = t.writers_priority

  let set_writers_priority t b =
    Slock.lock t.interlock;
    t.writers_priority <- b;
    (* Waiting readers may now be admissible. *)
    lock_wakeup t;
    Slock.unlock t.interlock
end
