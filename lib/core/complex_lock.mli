(** Complex locks: the machine-independent Multiple (readers/writer), Sleep
    and Recursive locking protocols (paper, section 4 and Appendix B).

    A complex lock is implemented by a data structure containing a simple
    lock (the {e interlock}) protecting its state — so the only machine
    dependency remains the simple lock implementation.

    Protocol summary (section 4):
    - {b Multiple}: multiple readers / single writer, {e writers' priority}:
      readers may not be added while a write request is outstanding, which
      guarantees the lock drains to the writer (no writer starvation).
    - {b Upgrades} ([read_to_write]) are favored over writes; a second
      concurrent upgrade request fails, {e releasing the read lock}, to
      avoid deadlocked upgrades.
    - {b Sleep}: when enabled, requestors block instead of spinning and
      holders may block while holding the lock.  When disabled the lock may
      not be held across blocking operations.
    - {b Recursive}: lets a single holder recursively acquire the lock.
      The lock must be held for write when the option is set; after a
      downgrade only recursive read acquisitions are permitted.  The
      holder's recursive requests are not blocked by pending write or
      upgrade requests. *)

module Make
    (M : Machine_intf.MACHINE)
    (Slock : module type of Simple_lock.Make (M))
    (E : module type of Event.Make (M) (Slock)) : sig
  type t

  val make :
    ?name:string -> ?proto:Lock_proto.factory -> can_sleep:bool -> unit -> t
  (** [lock_init]: declare and initialize.  [can_sleep] enables the Sleep
      option (most complex locks use it, including the memory-map lock).
      [proto] selects the spin protocol of the interlock guarding the
      lock's state, so a complex lock can ride any lib/locks queue lock
      (the machine-independent layer is untouched; only the interlock's
      spin changes, per the paper's section 4 split). *)

  (** {1 Locking and unlocking (Appendix B.2)} *)

  val lock_read : t -> unit
  val lock_write : t -> unit

  val lock_read_to_write : t -> bool
  (** Upgrade a read lock to a write lock.  Returns [true] when the upgrade
      {e failed} because another upgrade was pending — in that case the
      read lock has been {e released} and the caller must recover (the
      behaviour section 7.1 found burdensome in practice). *)

  val lock_write_to_read : t -> unit
  (** Downgrade; cannot fail and needs no recovery logic in the caller —
      the alternative section 7.1 recommends over upgrades. *)

  val lock_done : t -> unit
  (** Release: the lock is held either by one writer or by one or more
      readers, so [lock_done] can always determine how it is held. *)

  (** {1 Single attempts (Appendix B.3)} *)

  val lock_try_read : t -> bool
  val lock_try_write : t -> bool

  val lock_try_read_to_write : t -> bool
  (** Returns [false] if the upgrade would deadlock (another upgrade
      pending) {e without} dropping the read lock; otherwise may wait for
      other readers to drain and returns [true] holding the write lock.
      (We implement the documented intent; Appendix B notes the Mach 2.5
      version had a bug making it block even with Sleep disabled.) *)

  (** {1 Options (Appendix B.4)} *)

  val lock_sleepable : t -> bool -> unit
  val lock_set_recursive : t -> unit
  val lock_clear_recursive : t -> unit

  (** {1 Convenience} *)

  val with_read : t -> (unit -> 'a) -> 'a
  val with_write : t -> (unit -> 'a) -> 'a

  (** {1 Diagnostics} *)

  val name : t -> string
  val stats : t -> Lock_stats.t
  val read_count : t -> int
  val held_for_write : t -> bool
  val held_for_write_by_self : t -> bool

  val pending_write_request : t -> bool
  (** A writer has claimed the lock (holds it or is draining readers) —
      the condition that excludes new readers under writers' priority. *)

  val pending_upgrade : t -> bool
  (** An upgrade is pending or an upgrader holds the lock for write. *)

  val can_sleep : t -> bool
  val writers_priority : t -> bool

  val set_writers_priority : t -> bool -> unit
  (** Ablation switch for experiment E4: when disabled, readers are admitted
      past a pending write request (only an actually-held write excludes
      them), exhibiting writer starvation under read-heavy load.  Not part
      of the Mach interface. *)
end
