module Tls_key = Machine_intf.Tls_key
module Obs_metrics = Mach_obs.Obs_metrics
module Obs_trace = Mach_obs.Obs_trace
module Obs_event = Mach_obs.Obs_event
module Obs_span = Mach_obs.Obs_span

type wait_result = Awakened | Cleared | Interrupted | Restart

let wait_result_to_string = function
  | Awakened -> "awakened"
  | Cleared -> "cleared"
  | Interrupted -> "interrupted"
  | Restart -> "restart"

let pp_wait_result ppf r = Format.pp_print_string ppf (wait_result_to_string r)

module Make
    (M : Machine_intf.MACHINE)
    (Slock : module type of Simple_lock.Make (M)) =
struct
  type event = int

  let h_wait = Obs_metrics.histogram "event.wait_cycles"

  let null_event = 0

  (* Per-thread wait state.  All transitions of [state] and [event] happen
     under the bucket lock of the event involved, except the owner-only
     Woken -> Running reset in [thread_block] (at which point the waiter is
     no longer enqueued, so no other thread touches it). *)
  type waiter = {
    thread : M.thread;
    mutable event : event option;
    mutable state : wstate;
    mutable interruptible : bool;
    mutable wait_started : int; (* cycle clock at assert_wait *)
  }

  and wstate = Running | Waiting | Woken of wait_result

  let n_buckets = 64

  type bucket = { block : Slock.t; mutable waiters : waiter list }

  (* All mutable event state (wait-queue buckets, the waiter registry and
     the id counter) is machine-scoped: thread ids restart at every
     simulation run, so a waiter record or enqueued waiter surviving one
     run would be found — stale — by an unrelated thread of the next run,
     and parallel simulations in other domains must not share the queues
     at all.  The [Run_reset] hook rebuilds it between runs. *)
  type dstate = {
    mutable counter : int;
    buckets : bucket array;
    registry : (int, waiter) Hashtbl.t;
        (* waiter records, keyed by thread id *)
    registry_lock : Slock.t;
  }

  let mk_dstate () =
    {
      counter = 1;
      buckets =
        Array.init n_buckets (fun i ->
            {
              block = Slock.make ~name:(Printf.sprintf "evt-bucket%d" i) ();
              waiters = [];
            });
      registry = Hashtbl.create 256;
      registry_lock = Slock.make ~name:"evt-registry" ();
    }

  (* The slot holds an option and the dstate is built on first use
     INSIDE the run, not by the reset hook: the hook fires during run
     setup, where a built dstate would allocate lock cells into the
     run's footprint id sequence — and the machine-local slot's own
     one-time lazy init would then allocate an extra batch on the very
     first run of a domain, shifting every later cell id of that run
     relative to re-executions and corrupting the model checker's
     footprint identities. *)
  let dstate_cell = M.machine_local (fun () -> ref None)

  let dstate () =
    let c = dstate_cell () in
    match !c with
    | Some s -> s
    | None ->
        let s = mk_dstate () in
        c := Some s;
        s

  (* Rebuild from scratch rather than clearing in place: a run torn down
     mid-critical-section (step limit, model-checker cut) leaves a
     bucket or registry lock held, and merely emptying the queues would
     hand the next run a lock nobody will ever release. *)
  let () = Run_reset.register (fun () -> dstate_cell () := None)

  let fresh_event () =
    let s = dstate () in
    let v = s.counter in
    s.counter <- v + 1;
    v

  (* splitmix-style mix so that consecutive event ids spread over buckets *)
  let bucket_of ev =
    let h = ev * 0x9E3779B1 in
    let h = h lxor (h lsr 16) in
    (dstate ()).buckets.(h land (n_buckets - 1))

  let waiter_of thread =
    let s = dstate () in
    let tid = M.thread_id thread in
    Slock.with_lock s.registry_lock (fun () ->
        match Hashtbl.find_opt s.registry tid with
        | Some w -> w
        | None ->
            let w =
              {
                thread;
                event = None;
                state = Running;
                interruptible = false;
                wait_started = 0;
              }
            in
            Hashtbl.add s.registry tid w;
            w)

  let my_waiter () = waiter_of (M.self ())

  let set_in_assert_wait v =
    M.tls_set (M.self ()) ~key:Tls_key.in_assert_wait (if v then 1 else 0)

  let assert_wait ?(interruptible = false) ev =
    let w = my_waiter () in
    (match w.event with
    | Some e ->
        M.fatal
          (Printf.sprintf
             "assert_wait: thread %s already waiting on event %d (second \
              assert_wait before thread_block is fatal)"
             (M.thread_name (M.self ()))
             e)
    | None -> ());
    let b = bucket_of ev in
    Slock.lock b.block;
    w.event <- Some ev;
    w.state <- Waiting;
    w.interruptible <- interruptible;
    w.wait_started <- M.now_cycles ();
    b.waiters <- b.waiters @ [ w ];
    Slock.unlock b.block;
    if Waits_for.tracking () then
      Waits_for.note_wait
        ~tid:(M.thread_id (M.self ()))
        ~tname:(M.thread_name (M.self ()))
        (Waits_for.Event { id = ev });
    (* The wait->wake span: closed at the wake in [thread_block] (or at
       [cancel_assert]) with [exit_kind] — the waiter's event slot is
       cleared by then, and a thread has at most one outstanding wait. *)
    if Obs_span.enabled () then
      Obs_span.enter Obs_span.Event ("evt" ^ string_of_int ev);
    if Obs_trace.enabled () then
      Obs_trace.emit (Obs_event.Event_wait { event = ev });
    set_in_assert_wait true

  let check_no_simple_locks what =
    if Slock.checking () then begin
      let self = M.self () in
      let held = M.tls_get self ~key:Tls_key.simple_locks_held in
      if held > 0 then
        M.fatal
          (Printf.sprintf
             "%s while holding %d simple lock(s): simple locks may not be \
              held during blocking operations (paper, Appendix A)"
             what held);
      let spin_held =
        M.tls_get self ~key:Tls_key.complex_spin_locks_held
      in
      if spin_held > 0 then
        M.fatal
          (Printf.sprintf
             "%s while holding %d non-sleep complex lock(s): locks without \
              the Sleep option cannot be held during blocking operations \
              (paper, Appendix B)"
             what spin_held)
    end

  let thread_block () =
    let w = my_waiter () in
    check_no_simple_locks "thread_block";
    if M.in_interrupt () then
      M.fatal "thread_block from interrupt context (interrupts cannot sleep)";
    let rec wait () =
      match w.state with
      | Woken r ->
          w.state <- Running;
          set_in_assert_wait false;
          Obs_metrics.observe
            ~cpu:(M.current_cpu ())
            h_wait
            (max 0 (M.now_cycles () - w.wait_started));
          Obs_span.exit_kind Obs_span.Event;
          r
      | Waiting ->
          M.park ();
          wait ()
      | Running -> M.fatal "thread_block without a prior assert_wait"
    in
    wait ()

  (* The waker (not the waiter) retires the wait edge: the engine's
     dropped-wakeup injection fires downstream in [M.unpark], so a waiter
     whose edge was retired but that stays parked is precisely a lost
     wakeup, and [Waits_for.last_event] names the event it was woken
     from. *)
  let wf_wait_done w ev =
    if Waits_for.tracking () then
      Waits_for.note_wait_done ~tid:(M.thread_id w.thread)
        (Waits_for.Event { id = ev })

  (* Dequeue [w] from bucket [b] and mark it woken; caller holds b.block. *)
  let wake_locked b w result =
    let ev = match w.event with Some e -> e | None -> null_event in
    b.waiters <- List.filter (fun w' -> w' != w) b.waiters;
    w.event <- None;
    w.state <- Woken result;
    wf_wait_done w ev;
    M.unpark w.thread

  let cancel_assert () =
    let w = my_waiter () in
    let rec loop () =
      match w.event with
      | None ->
          (* Already woken concurrently: consume the wakeup. *)
          (match w.state with
          | Woken _ -> w.state <- Running
          | Running | Waiting -> ());
          set_in_assert_wait false;
          Obs_span.exit_kind Obs_span.Event
      | Some ev ->
          let b = bucket_of ev in
          Slock.lock b.block;
          if w.event = Some ev && w.state = Waiting then begin
            b.waiters <- List.filter (fun w' -> w' != w) b.waiters;
            w.event <- None;
            w.state <- Running;
            wf_wait_done w ev;
            Slock.unlock b.block;
            set_in_assert_wait false;
            Obs_span.exit_kind Obs_span.Event
          end
          else begin
            Slock.unlock b.block;
            loop ()
          end
    in
    loop ()

  let thread_wakeup ?(result = Awakened) ev =
    let b = bucket_of ev in
    Slock.lock b.block;
    let matching, rest =
      List.partition (fun w -> w.event = Some ev) b.waiters
    in
    b.waiters <- rest;
    List.iter
      (fun w ->
        w.event <- None;
        w.state <- Woken result;
        wf_wait_done w ev;
        M.unpark w.thread)
      matching;
    Slock.unlock b.block;
    let woken = List.length matching in
    if Obs_trace.enabled () then
      Obs_trace.emit (Obs_event.Event_signal { event = ev; woken });
    woken

  let thread_wakeup_one ?(result = Awakened) ev =
    let b = bucket_of ev in
    Slock.lock b.block;
    let rec first = function
      | [] -> None
      | w :: _ when w.event = Some ev -> Some w
      | _ :: tl -> first tl
    in
    let woke =
      match first b.waiters with
      | Some w ->
          wake_locked b w result;
          true
      | None -> false
    in
    Slock.unlock b.block;
    if Obs_trace.enabled () then
      Obs_trace.emit
        (Obs_event.Event_signal { event = ev; woken = (if woke then 1 else 0) });
    woke

  let clear_wait_gen thread result ~only_interruptible =
    let w = waiter_of thread in
    let rec loop () =
      match w.event with
      | None -> false
      | Some ev ->
          let b = bucket_of ev in
          Slock.lock b.block;
          if w.event = Some ev && w.state = Waiting then
            if only_interruptible && not w.interruptible then begin
              Slock.unlock b.block;
              false
            end
            else begin
              wake_locked b w result;
              Slock.unlock b.block;
              true
            end
          else begin
            Slock.unlock b.block;
            loop ()
          end
    in
    loop ()

  let clear_wait thread result =
    clear_wait_gen thread result ~only_interruptible:false

  let thread_interrupt thread =
    clear_wait_gen thread Interrupted ~only_interruptible:true

  let thread_sleep ev lock =
    assert_wait ev;
    Slock.unlock lock;
    thread_block ()

  let waiting_on thread =
    let w = waiter_of thread in
    w.event

  (* Diagnostic: a racy momentary observation, deliberately taken without
     the bucket lock so that a polling observer cannot starve waiters
     contending for the bucket. *)
  let waiters_count ev =
    let b = bucket_of ev in
    List.length (List.filter (fun w -> w.event = Some ev) b.waiters)
end
