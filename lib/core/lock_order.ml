module Make
    (M : Machine_intf.MACHINE)
    (Slock : module type of Simple_lock.Make (M)) =
struct
  type cls = { cname : string; rank : int }

  let define_class ~name ~rank = { cname = name; rank }
  let class_name c = c.cname
  let class_rank c = c.rank

  (* Per-thread stack of held classes.  The table is domain-local: on
     the simulated machine every fiber of a run shares one domain (and
     the table operations contain no preemption points), while on the
     native machine each thread is its own domain and only ever touches
     its own table — so no lock is needed in either case.  Entries would
     otherwise accumulate forever (thread ids are never reused within a
     domain but runs are), so the engine's teardown clears the table via
     the registered {!Run_reset} hook; stale stacks from a previous
     Sim_explore seed can no longer produce phantom violations. *)
  let held_key : (int, cls list ref) Hashtbl.t Domain.DLS.key =
    Domain.DLS.new_key (fun () -> Hashtbl.create 64)

  let reset_held () = Hashtbl.reset (Domain.DLS.get held_key)
  let () = Run_reset.register reset_held

  let my_stack () =
    let tid = M.thread_id (M.self ()) in
    let held = Domain.DLS.get held_key in
    match Hashtbl.find_opt held tid with
    | Some r -> r
    | None ->
        let r = ref [] in
        Hashtbl.add held tid r;
        r

  let violation_log : string list Atomic.t = Atomic.make []
  let fatal_violations = Atomic.make false
  let set_fatal_violations b = Atomic.set fatal_violations b

  let record_violation msg =
    if Atomic.get fatal_violations then M.fatal msg
    else begin
      let rec push () =
        let old = Atomic.get violation_log in
        if not (Atomic.compare_and_set violation_log old (msg :: old)) then
          push ()
      in
      push ()
    end

  let violations () = Atomic.get violation_log
  let clear_violations () = Atomic.set violation_log []

  let note_acquire c =
    let stack = my_stack () in
    (* Compare against the maximum rank held anywhere in the stack, not
       just the most recent acquisition: holding [rank 1; rank 3] and
       acquiring rank 2 is a violation against the rank-3 class even
       though the top of the stack is rank 1. *)
    let worst =
      List.fold_left
        (fun acc h ->
          match acc with Some w when w.rank >= h.rank -> acc | _ -> Some h)
        None !stack
    in
    (match worst with
    | Some w when w.rank > c.rank ->
        record_violation
          (Printf.sprintf
             "lock order violation: thread %s acquired class %s (rank %d) \
              while holding class %s (rank %d)"
             (M.thread_name (M.self ()))
             c.cname c.rank w.cname w.rank)
    | _ -> ());
    stack := c :: !stack

  let note_release c =
    let stack = my_stack () in
    let rec remove_first = function
      | [] ->
          record_violation
            (Printf.sprintf
               "lock order: thread %s released class %s it does not hold"
               (M.thread_name (M.self ()))
               c.cname);
          []
      | top :: rest when top.cname = c.cname -> rest
      | top :: rest -> top :: remove_first rest
    in
    stack := remove_first !stack

  let lock_both_by_uid a b =
    if Slock.uid a = Slock.uid b then Slock.lock a
    else if Slock.uid a < Slock.uid b then begin
      Slock.lock a;
      Slock.lock b
    end
    else begin
      Slock.lock b;
      Slock.lock a
    end

  let unlock_both a b =
    if Slock.uid a = Slock.uid b then Slock.unlock a
    else begin
      Slock.unlock a;
      Slock.unlock b
    end

  (* Between backouts, delay with the same capped exponential backoff as
     the Ttas_backoff spin protocol: contending backout threads otherwise
     retry in lockstep and burn bus bandwidth on doomed try_locks. *)
  let backout_lock_pair ~first ~second =
    let max_backoff = M.spin_max_backoff () in
    let rec attempt backouts delay =
      Slock.lock first;
      if Slock.try_lock second then backouts
      else begin
        Slock.unlock first;
        M.spin_pause ();
        for _ = 1 to delay do
          M.cycles 1
        done;
        attempt (backouts + 1) (Stdlib.min (delay * 2) max_backoff)
      end
    in
    attempt 0 1
end
