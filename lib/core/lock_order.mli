(** Deadlock-avoidance conventions for lock acquisition (paper, section 5).

    Each kernel subsystem incorporates usage conventions preventing
    deadlock; the range of possible protocols precludes a single lock
    hierarchy.  This module packages the three conventions the paper
    names, plus a runtime discipline checker:

    - order acquisitions by object type (class ranks);
    - order two same-type locks by address ({!lock_both_by_uid});
    - a backout protocol for acquiring two locks in the reverse of the
      usual order: a single attempt on the second lock, failure releasing
      the first to be reacquired later ({!backout_lock_pair}). *)

module Make
    (M : Machine_intf.MACHINE)
    (Slock : module type of Simple_lock.Make (M)) : sig
  (** {1 Class-rank discipline checker} *)

  type cls

  val define_class : name:string -> rank:int -> cls
  (** Declare a lock class; locks of a lower-ranked class must be acquired
      before locks of a higher-ranked class (e.g. memory map before memory
      object). *)

  val class_name : cls -> string
  val class_rank : cls -> int

  val note_acquire : cls -> unit
  (** Record that the current thread acquired a lock of this class; if the
      thread already holds a class of strictly greater rank {e anywhere}
      in its held stack, an order violation naming that class is
      recorded. *)

  val note_release : cls -> unit

  val reset_held : unit -> unit
  (** Clear every thread's held-class stack (this domain).  Registered
      with {!Run_reset} and run by the engine at teardown, so stacks from
      finished runs cannot leak into the next seed. *)

  val violations : unit -> string list
  (** Violations recorded so far (most recent first). *)

  val clear_violations : unit -> unit

  val set_fatal_violations : bool -> unit
  (** When true, an order violation panics instead of being recorded. *)

  (** {1 Same-type pairs, ordered by address} *)

  val lock_both_by_uid : Slock.t -> Slock.t -> unit
  (** Acquire two locks of the same type in uid (address) order; safe
      against another thread locking the same pair. *)

  val unlock_both : Slock.t -> Slock.t -> unit

  (** {1 Backout protocol} *)

  val backout_lock_pair : first:Slock.t -> second:Slock.t -> int
  (** Acquire [second] then [first] when convention orders them
      [first]-then-[second]: hold [second]... — concretely: lock [first];
      a single attempt on [second]; on failure release [first] and retry
      after a capped exponential backoff (the [spin_max_backoff] cap).
      Returns the number of backouts that were needed. *)
end
