(** The common signature of scalable spin-lock protocols.

    The tas/ttas family in {!Spin} operates on a single shared cell; the
    queue locks of lib/locks (ticket, MCS, Anderson) carry per-lock state
    of their own (tickets, qnode pools, slot arrays).  [LOCK_PROTO]
    abstracts over that state so {!Simple_lock} — and through it
    {!Complex_lock} — can be instantiated over any protocol while the
    checking, statistics, waits-for and observability layers stay
    identical.

    The types live in lib/core (next to {!Machine_intf}) so that the
    protocol implementations in lib/locks can depend on lib/core without
    a cycle: lib/core never depends on lib/locks; it only consumes packed
    {!instance} values handed in by the caller. *)

module type S = sig
  type t

  val proto_name : string
  (** Short protocol name ("ticket", "mcs", "anderson", ...), used in
      stats tables and diagnostics. *)

  val make : name:string -> t
  (** Allocate one lock's protocol state, unlocked. *)

  val acquire : t -> int
  (** Spin until the lock is held; returns the number of spin iterations
      (0 = uncontended first-try acquisition, mirroring
      {!Spin.Make.acquire}). *)

  val try_acquire : t -> bool
  (** One bounded attempt; never spins waiting for another thread. *)

  val release : t -> unit
  (** Release; only ever called by the holding thread (enforced by the
      {!Simple_lock} checking layer, not here). *)

  val is_locked : t -> bool
  (** Momentary observation, diagnostics only. *)
end

(** One lock instance packed with its operations: what a protocol-generic
    simple lock stores. *)
type instance = Instance : (module S with type t = 'a) * 'a -> instance

(** A protocol selector: [fname] names the protocol in tables and golden
    rows; [instantiate] allocates one lock's state.  Obtain factories
    from [Mach_locks.Locks.Make(M)] (or build custom ones). *)
type factory = { fname : string; instantiate : name:string -> instance }

let name (f : factory) = f.fname
let make (f : factory) ~name = f.instantiate ~name

let acquire (Instance ((module P), l)) = P.acquire l
let try_acquire (Instance ((module P), l)) = P.try_acquire l
let release (Instance ((module P), l)) = P.release l
let is_locked (Instance ((module P), l)) = P.is_locked l
let proto_name (Instance ((module P), _)) = P.proto_name
