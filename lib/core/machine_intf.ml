(** The machine-dependent interface.

    The paper divides Mach's locking implementation into machine dependent
    simple locks and machine independent complex locks; "the only machine
    dependency is the simple lock implementation" (section 4).  This module
    captures that boundary as an OCaml signature.  Everything in [lib/core]
    is a functor over {!MACHINE}; two implementations exist:

    - [Mach_hw.Hw_machine]: OCaml 5 domains and [Atomic] — real multicore,
      used by the native benchmarks;
    - [Mach_sim.Sim_machine]: the deterministic simulated multiprocessor —
      used by the kernel model, the schedule-exploration tests and the
      cycle-model benchmarks. *)

(** An atomic memory cell holding an [int]; the operand of the machine's
    test-and-set (or similar) instruction.  The paper notes a C integer has
    sufficed on every architecture encountered (section 4). *)
module type CELL = sig
  type t

  val make : ?name:string -> int -> t
  (** [make v] allocates a cell initialized to [v].  [name] is used by
      diagnostics only. *)

  val get : t -> int
  (** Ordinary (cacheable) read. *)

  val set : t -> int -> unit
  (** Ordinary write; invalidates other processors' cached copies. *)

  val test_and_set : t -> int
  (** Atomically set the cell to 1 and return its previous value.  The lock
      has been acquired iff the returned value is 0 (paper, section 2). *)

  val swap : t -> int -> int
  (** Atomically store [v] and return the previous value (unconditional
      exchange).  The enqueue instruction of queue locks: an MCS acquire
      swaps its qnode id into the tail pointer. *)

  val compare_and_swap : t -> expected:int -> desired:int -> bool
  (** Atomic compare-and-swap; true on success. *)

  val fetch_and_add : t -> int -> int
  (** Atomically add, returning the previous value. *)
end

(** The full machine-dependent substrate. *)
module type MACHINE = sig
  val name : string
  (** Human-readable machine name ("native", "sim"). *)

  module Cell : CELL

  (** {1 Execution context} *)

  type thread
  (** A kernel thread.  Holding of a lock is always associated with a thread
      (paper, section 4). *)

  val self : unit -> thread
  (** The current thread.  In interrupt context this is the interrupted
      thread (interrupt routines lack a thread context of their own;
      paper, section 7). *)

  val thread_id : thread -> int
  (** Unique small integer identifying the thread. *)

  val thread_name : thread -> string

  val equal_thread : thread -> thread -> bool

  val in_interrupt : unit -> bool
  (** True when executing in interrupt context (always false natively). *)

  val cpu_count : unit -> int

  val current_cpu : unit -> int

  (** {1 Spinning} *)

  val spin_pause : unit -> unit
  (** Called once per iteration of every spin loop.  Native: cpu relax.
      Sim: a preemption point that also charges spin cycles. *)

  val spin_hint : string -> unit
  (** Diagnostic: record what the current context is spinning on, so that
      deadlock reports can name the lock.  No-op natively. *)

  val spin_max_backoff : unit -> int
  (** Cap (in cycles) on the exponential-backoff delay of backoff spin
      protocols.  The simulator reads it from the run configuration so
      experiments can tune it; native machines use a fixed cap. *)

  (** {1 Blocking} *)

  val park : unit -> unit
  (** Block the current thread until {!unpark}.  Permit semantics: if an
      unpark was delivered since the last park, return immediately and
      consume the permit.  Must not be called from interrupt context. *)

  val unpark : thread -> unit
  (** Make [thread] runnable (or grant it a permit if it is not parked). *)

  (** {1 Interrupt priority} *)

  val set_spl : Spl.t -> Spl.t
  (** Set the current processor's interrupt priority level, returning the
      previous level.  Native machines have no simulated interrupts; there
      the level is tracked for assertion checking only. *)

  val get_spl : unit -> Spl.t

  (** {1 Accounting} *)

  val cycles : int -> unit
  (** Charge [n] cycles of local work to the current processor.  No-op
      natively (real time is measured by the benchmark harness). *)

  val now_cycles : unit -> int
  (** Current processor's cycle clock (native: a monotonic tick counter). *)

  (** {1 Per-thread storage} *)

  val tls_get : thread -> key:int -> int
  (** Small per-thread integer slots, used by the machine-independent layer
      for debug counters (e.g. number of simple locks held).  Unset slots
      read as 0. *)

  val tls_set : thread -> key:int -> int -> unit

  (** {1 Machine-scoped state} *)

  val machine_local : (unit -> 'a) -> unit -> 'a
  (** [machine_local init] returns an accessor for mutable state scoped
      to one machine instance — shared by every thread and interrupt of
      that machine, but never by two machines.  On the native machine
      all domains are cpus of the single process-wide machine, so the
      state is process-global (built once, eagerly).  On the simulated
      machine a domain hosts at most one simulation at a time while
      other domains may run unrelated simulations concurrently, so the
      state is domain-local (built lazily per domain).  Modules holding
      per-run state in a [machine_local] must also register a
      {!Run_reset} hook to rebuild it between runs. *)

  (** {1 Fault injection} *)

  val handoff_fault : unit -> bool
  (** Consulted by queue-lock protocols at the point of an explicit lock
      handoff (e.g. an MCS holder releasing its successor).  True means a
      fault injector asked for this handoff to be dropped — the protocol
      must skip the store that wakes the successor, modelling the lost
      store/IPI of a buggy port.  Always false natively; the simulator
      draws from its chaos RNG when the [drop_handoff] fault class is
      armed. *)

  (** {1 Failure} *)

  val fatal : string -> 'a
  (** Kernel panic: a design-rule violation (e.g. blocking while holding a
      simple lock) was detected. *)
end

(** Keys into the per-thread integer slots. *)
module Tls_key = struct
  let simple_locks_held = 0
  let complex_spin_locks_held = 1
  let in_assert_wait = 2
end
