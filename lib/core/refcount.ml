module Tls_key = Machine_intf.Tls_key
module Obs_trace = Mach_obs.Obs_trace
module Obs_event = Mach_obs.Obs_event

module Make
    (M : Machine_intf.MACHINE)
    (Slock : module type of Simple_lock.Make (M))
    (E : module type of Event.Make (M) (Slock)) =
struct
  type t = { cell : M.Cell.t; rname : string }

  let checking_flag = Atomic.make true
  let set_checking b = Atomic.set checking_flag b
  let checking () = Atomic.get checking_flag

  let next_id = Atomic.make 0

  let make ?name ?(initial = 1) () =
    let id = Atomic.fetch_and_add next_id 1 in
    let rname =
      match name with Some n -> n | None -> Printf.sprintf "ref%d" id
    in
    if initial < 0 then
      M.fatal (Printf.sprintf "refcount %s: negative initial count" rname);
    { cell = M.Cell.make ~name:rname initial; rname }

  let clone t =
    let old = M.Cell.fetch_and_add t.cell 1 in
    if checking () && old <= 0 then
      M.fatal
        (Printf.sprintf
           "refcount %s: clone with count %d — cloning requires an existing \
            reference (section 8)"
           t.rname old)

  let check_release_context t =
    if checking () then begin
      let self = M.self () in
      if M.tls_get self ~key:Tls_key.simple_locks_held > 0 then
        M.fatal
          (Printf.sprintf
             "refcount %s: release while holding simple lock(s) — releasing \
              may block (section 8)"
             t.rname);
      if M.tls_get self ~key:Tls_key.complex_spin_locks_held > 0 then
        M.fatal
          (Printf.sprintf
             "refcount %s: release while holding non-sleep complex lock(s) \
              (section 8)"
             t.rname);
      if M.tls_get self ~key:Tls_key.in_assert_wait > 0 then
        M.fatal
          (Printf.sprintf
             "refcount %s: release between assert_wait and thread_block — \
              destruction would assert_wait a second time, which is fatal \
              (section 8)"
             t.rname)
    end

  let drop t =
    let old = M.Cell.fetch_and_add t.cell (-1) in
    (* Underflow detection is NOT gated on checking mode: a release
       without a matching reference silently wraps the count negative and
       every later release frees an object still in use.  Context checks
       (locks held across release) stay debug-only, but an underflowed
       count is corruption already in progress and always fatal. *)
    if old <= 0 then
      M.fatal
        (Printf.sprintf "refcount %s: release with count %d (double free)"
           t.rname old);
    if Obs_trace.enabled () then
      Obs_trace.emit (Obs_event.Refcount_drop { name = t.rname; count = old - 1 });
    old

  let release t =
    check_release_context t;
    if drop t = 1 then `Last else `Live

  let release_not_last t =
    let old = drop t in
    if old = 1 then
      M.fatal
        (Printf.sprintf
           "refcount %s: release_not_last dropped the final reference"
           t.rname)

  let count t = M.Cell.get t.cell
  let name t = t.rname

  module Gated = struct
    type g = {
      object_lock : Slock.t;
      event : E.event;
      gname : string;
      mutable in_progress : int;
      mutable closed : bool;
      mutable drain_waiting : bool;
    }

    let make ?name ~object_lock () =
      let gname = match name with Some n -> n | None -> "gated" in
      {
        object_lock;
        event = E.fresh_event ();
        gname;
        in_progress = 0;
        closed = false;
        drain_waiting = false;
      }

    let check_locked g what =
      if Slock.checking () && not (Slock.held_by_self g.object_lock) then
        M.fatal
          (Printf.sprintf
             "gated count %s: %s without holding the object lock" g.gname
             what)

    let enter g =
      check_locked g "enter";
      if g.closed then false
      else begin
        g.in_progress <- g.in_progress + 1;
        true
      end

    let exit g =
      check_locked g "exit";
      if g.in_progress <= 0 then
        M.fatal
          (Printf.sprintf "gated count %s: exit with count %d" g.gname
             g.in_progress);
      g.in_progress <- g.in_progress - 1;
      if g.in_progress = 0 && g.drain_waiting then begin
        g.drain_waiting <- false;
        ignore (E.thread_wakeup g.event)
      end

    let in_progress g = g.in_progress

    let wait_until_zero g =
      check_locked g "wait_until_zero";
      while g.in_progress > 0 do
        g.drain_waiting <- true;
        ignore (E.thread_sleep g.event g.object_lock);
        Slock.lock g.object_lock
      done

    let close_and_drain g =
      check_locked g "close_and_drain";
      g.closed <- true;
      wait_until_zero g

    let reopen g =
      check_locked g "reopen";
      g.closed <- false
  end
end
