(* Registry of per-run teardown hooks.  Modules with per-run state that
   outlives any single simulation (the lock-order held stacks, the
   waits-for graph) register a hook once at initialization; the engine
   runs them all at teardown so one run's residue cannot leak into the
   next (e.g. phantom lock-order violations across Sim_explore seeds). *)

let hooks : (unit -> unit) list Atomic.t = Atomic.make []

let register f =
  let rec push () =
    let old = Atomic.get hooks in
    if not (Atomic.compare_and_set hooks old (f :: old)) then push ()
  in
  push ()

let run () = List.iter (fun f -> f ()) (List.rev (Atomic.get hooks))
