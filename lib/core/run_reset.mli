(** Per-run teardown hooks.

    Modules holding state that must not survive from one simulation run
    into the next register a reset hook once; the engine calls {!run} at
    teardown.  Hooks run in registration order, in the domain that ran
    the simulation (domain-local state resets apply to that domain). *)

val register : (unit -> unit) -> unit
val run : unit -> unit
