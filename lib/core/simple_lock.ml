module Tls_key = Machine_intf.Tls_key
module Obs_metrics = Mach_obs.Obs_metrics
module Obs_profile = Mach_obs.Obs_profile
module Obs_trace = Mach_obs.Obs_trace
module Obs_event = Mach_obs.Obs_event
module Obs_span = Mach_obs.Obs_span

module Make (M : Machine_intf.MACHINE) = struct
  module S = Spin.Make (M)

  (* Registry-wide aggregates (interned once per machine instantiation);
     every simple lock of this machine feeds the same named metrics. *)
  let m_acquisitions = Obs_metrics.counter "lock.acquisitions"
  let m_contentions = Obs_metrics.counter "lock.contentions"
  let h_wait = Obs_metrics.histogram "lock.wait_cycles"
  let h_hold = Obs_metrics.histogram "lock.hold_cycles"

  (* A lock spins either on one flat cell via a {!Spin} protocol (the
     tas/ttas family) or on protocol-private state behind a packed
     {!Lock_proto.instance} (the lib/locks queue locks).  Everything
     above the spin — checking, stats, waits-for, observability — is
     shared. *)
  type impl =
    | Flat of { cell : M.Cell.t; protocol : Spin.protocol }
    | Queued of Lock_proto.instance

  type t = {
    id : int;
    impl : impl;
    lname : string;
    stats : Lock_stats.t;
    mutable holder : M.thread option;
    (* Last thread to acquire, NOT cleared on release: a contended
       acquisition that began while the lock was momentarily free (the
       holder released while we were between the snapshot and the first
       test) still attributes its wait to the thread it actually spun
       behind. *)
    mutable last_holder : M.thread option;
    mutable acquired_spl : Spl.t option; (* learned or pinned level *)
    mutable acquired_at : int; (* cycle clock at acquisition *)
  }

  let checking_flag = Atomic.make true
  let uniprocessor = Atomic.make false
  let set_checking b = Atomic.set checking_flag b
  let checking () = Atomic.get checking_flag
  let set_uniprocessor b = Atomic.set uniprocessor b

  let next_id = Atomic.make 0

  let make ?name ?(protocol = Spin.Tas_then_ttas) ?proto ?spl () =
    let id = Atomic.fetch_and_add next_id 1 in
    let lname =
      match name with Some n -> n | None -> Printf.sprintf "slock%d" id
    in
    let impl =
      match proto with
      | Some f -> Queued (Lock_proto.make f ~name:lname)
      | None -> Flat { cell = M.Cell.make ~name:lname 0; protocol }
    in
    {
      id;
      impl;
      lname;
      stats = Lock_stats.make ();
      holder = None;
      last_holder = None;
      acquired_spl = spl;
      acquired_at = 0;
    }

  let protocol_name t =
    match t.impl with
    | Flat { protocol; _ } -> Spin.protocol_name protocol
    | Queued q -> Lock_proto.proto_name q

  let bump_held delta =
    let self = M.self () in
    let k = Tls_key.simple_locks_held in
    M.tls_set self ~key:k (M.tls_get self ~key:k + delta)

  let check_spl t =
    let spl = M.get_spl () in
    match t.acquired_spl with
    | None -> t.acquired_spl <- Some spl
    | Some expected ->
        if not (Spl.equal expected spl) then
          M.fatal
            (Printf.sprintf
               "simple lock %s: acquired at %s but pinned/first acquired at \
                %s (same-spl rule, paper section 7)"
               t.lname (Spl.to_string spl) (Spl.to_string expected))

  (* [blocker] is the holder observed when the wait began: contended
     acquisitions attribute their wait to that holder's acquire site
     (the span enclosing its hold) in the Obs_span blocked-by graph. *)
  let obs_acquire t ?blocker ~spins ~wait_cycles () =
    let cpu = M.current_cpu () in
    Obs_metrics.incr ~cpu m_acquisitions;
    if spins > 0 then Obs_metrics.incr ~cpu m_contentions;
    Obs_metrics.observe ~cpu h_wait wait_cycles;
    Obs_profile.note_acquire
      ~tid:(M.thread_id (M.self ()))
      ~name:t.lname ~contended:(spins > 0) ~wait_cycles;
    if Obs_span.enabled () then begin
      (match blocker with
      | Some h when spins > 0 ->
          Obs_span.blocked ~kind:Obs_span.Lock ~name:t.lname
            ~holder_tid:(M.thread_id h) ~wait_cycles
      | _ -> ());
      Obs_span.enter Obs_span.Lock t.lname
    end;
    if Obs_trace.enabled () then
      Obs_trace.emit
        (Obs_event.Lock_acquire { lock = t.lname; spins; wait_cycles })

  let obs_release t ~held_cycles =
    Obs_metrics.observe ~cpu:(M.current_cpu ()) h_hold held_cycles;
    Obs_profile.note_release
      ~tid:(M.thread_id (M.self ()))
      ~name:t.lname ~held_cycles;
    Obs_span.exit Obs_span.Lock t.lname;
    if Obs_trace.enabled () then
      Obs_trace.emit (Obs_event.Lock_release { lock = t.lname; held_cycles })

  (* Waits-for edges are reported outside the [checking] gate: scenarios
     that disable checking (the section-7 buggy variants) are exactly the
     ones the deadlock detector must be able to explain. *)
  let wf_res t = Waits_for.Slock { uid = t.id; name = t.lname }

  let note_acquired t =
    t.acquired_at <- M.now_cycles ();
    if Waits_for.tracking () then
      Waits_for.note_hold
        ~tid:(M.thread_id (M.self ()))
        ~tname:(M.thread_name (M.self ()))
        (wf_res t);
    if checking () then begin
      check_spl t;
      t.holder <- Some (M.self ());
      t.last_holder <- t.holder;
      bump_held 1
    end

  let note_released t =
    if Waits_for.tracking () then
      Waits_for.note_release ~tid:(M.thread_id (M.self ())) (wf_res t);
    if checking () then begin
      (match t.holder with
      | Some h when M.equal_thread h (M.self ()) -> ()
      | Some h ->
          M.fatal
            (Printf.sprintf "simple lock %s: unlocked by %s but held by %s"
               t.lname
               (M.thread_name (M.self ()))
               (M.thread_name h))
      | None ->
          M.fatal (Printf.sprintf "simple lock %s: unlock while free" t.lname));
      t.holder <- None;
      Lock_stats.record_release t.stats
        ~held_cycles:(M.now_cycles () - t.acquired_at);
      bump_held (-1)
    end

  let lock t =
    if not (Atomic.get uniprocessor) then begin
      (if checking () then
         match t.holder with
         | Some h when M.equal_thread h (M.self ()) ->
             M.fatal
               (Printf.sprintf
                  "simple lock %s: recursive acquisition by %s (simple locks \
                   never permit recursion)"
                  t.lname
                  (M.thread_name h))
         | _ -> ());
      let t0 = M.now_cycles () in
      let blocker = t.holder in
      let tracking = Waits_for.tracking () in
      if tracking then
        Waits_for.note_wait
          ~tid:(M.thread_id (M.self ()))
          ~tname:(M.thread_name (M.self ()))
          (wf_res t);
      let spins =
        match t.impl with
        | Flat { cell; protocol } -> S.acquire ~hint:t.lname protocol cell
        | Queued q ->
            M.spin_hint t.lname;
            Lock_proto.acquire q
      in
      if tracking then
        Waits_for.note_wait_done ~tid:(M.thread_id (M.self ())) (wf_res t);
      let wait_cycles = if spins > 0 then max 0 (M.now_cycles () - t0) else 0 in
      Lock_stats.record_acquire t.stats ~contended:(spins > 0) ~spins;
      (* A contended wait whose entry snapshot missed the holder (it
         released before our first test) still spun behind SOMEBODY:
         [last_holder] is whoever held the lock during the final wait
         segment — read before [note_acquired] overwrites it with us. *)
      let blocker =
        match blocker with
        | Some _ -> blocker
        | None when spins > 0 -> (
            match t.last_holder with
            | Some h when not (M.equal_thread h (M.self ())) -> Some h
            | _ -> None)
        | None -> None
      in
      obs_acquire t ?blocker ~spins ~wait_cycles ();
      note_acquired t
    end

  let unlock t =
    if not (Atomic.get uniprocessor) then begin
      let held_cycles = max 0 (M.now_cycles () - t.acquired_at) in
      note_released t;
      (match t.impl with
      | Flat { cell; _ } -> S.release cell
      | Queued q -> Lock_proto.release q);
      obs_release t ~held_cycles
    end

  let try_lock t =
    if Atomic.get uniprocessor then true
    else begin
      let ok =
        match t.impl with
        | Flat { cell; _ } -> S.try_acquire cell
        | Queued q -> Lock_proto.try_acquire q
      in
      Lock_stats.record_try t.stats ~success:ok;
      if ok then begin
        Lock_stats.record_acquire t.stats ~contended:false ~spins:0;
        obs_acquire t ~spins:0 ~wait_cycles:0 ();
        note_acquired t
      end;
      ok
    end

  let with_lock t f =
    lock t;
    match f () with
    | v ->
        unlock t;
        v
    | exception e ->
        unlock t;
        raise e

  let is_locked t =
    match t.impl with
    | Flat { cell; _ } -> M.Cell.get cell <> 0
    | Queued q -> Lock_proto.is_locked q
  let holder t = t.holder

  let held_by_self t =
    match t.holder with
    | Some h -> M.equal_thread h (M.self ())
    | None -> false

  let name t = t.lname
  let stats t = t.stats
  let uid t = t.id
end
