(** Simple locks: spinning mutual-exclusion locks (paper, section 4 and
    Appendix A).

    The interface mirrors Appendix A: [make] plays the role of
    [decl_simple_lock_data] + [simple_lock_init]; [lock], [unlock] and
    [try_lock] correspond to [simple_lock], [simple_unlock] and
    [simple_lock_try].

    Design rules enforced (in checking mode) exactly as the paper states:
    - a thread may not block while holding a simple lock ("violations of
      this restriction cause kernel deadlocks", section 4 footnote) — the
      event layer consults {!Machine_intf.Tls_key.simple_locks_held};
    - each lock must always be acquired at the same interrupt priority
      level (section 7);
    - the releasing thread must be the holder. *)

module Make (M : Machine_intf.MACHINE) : sig
  type t

  val make :
    ?name:string ->
    ?protocol:Spin.protocol ->
    ?proto:Lock_proto.factory ->
    ?spl:Spl.t ->
    unit ->
    t
  (** Declare and initialize a simple lock in the unlocked state.  [spl]
      optionally pins the lock's interrupt priority level up front; without
      it the level is learned from the first acquisition (checking mode
      then enforces consistency, per section 7).

      The spin implementation is [protocol] (a flat-cell {!Spin} loop) by
      default; passing [proto] instead selects a queue-lock protocol from
      lib/locks (ticket / MCS / Anderson), in which case [protocol] is
      ignored.  Checking, statistics, waits-for edges and observability
      are identical either way. *)

  val protocol_name : t -> string
  (** Name of the spin protocol this lock uses ("tas+ttas", "mcs", ...). *)

  val lock : t -> unit
  (** Spin until the lock is acquired. *)

  val unlock : t -> unit

  val try_lock : t -> bool
  (** Make a single attempt to acquire the lock. *)

  val with_lock : t -> (unit -> 'a) -> 'a
  (** [lock]; run; [unlock] (also on exception). *)

  val is_locked : t -> bool
  (** Momentary observation; for assertions and diagnostics only. *)

  val holder : t -> M.thread option
  (** The holding thread, when checking mode records it. *)

  val held_by_self : t -> bool
  (** True iff checking mode is on and the current thread holds [t]. *)

  val name : t -> string
  val stats : t -> Lock_stats.t

  val uid : t -> int
  (** Unique id, the analog of the lock's kernel address; used to order
      acquisitions of two same-type locks "by address" (section 5). *)

  val set_checking : bool -> unit
  (** Globally enable/disable debug checking (holder tracking, same-spl
      rule, unlock-by-holder).  Default: enabled. *)

  val checking : unit -> bool

  val set_uniprocessor : bool -> unit
  (** When true, lock/unlock become no-ops — the analog of compiling simple
      locks out of uniprocessor kernels via the declaration macro
      (Appendix A).  Default: false. *)
end
