type protocol = Tas | Ttas | Tas_then_ttas | Ttas_backoff

let all_protocols = [ Tas; Ttas; Tas_then_ttas; Ttas_backoff ]

let protocol_name = function
  | Tas -> "tas"
  | Ttas -> "ttas"
  | Tas_then_ttas -> "tas+ttas"
  | Ttas_backoff -> "ttas-backoff"

let protocol_of_string = function
  | "tas" -> Some Tas
  | "ttas" -> Some Ttas
  | "tas+ttas" -> Some Tas_then_ttas
  | "ttas-backoff" -> Some Ttas_backoff
  | _ -> None

module Make (M : Machine_intf.MACHINE) = struct
  (* Spin on the cacheable read until the lock looks free, then attempt the
     atomic instruction; repeat.  Counts iterations for statistics. *)
  let ttas_loop ~backoff cell =
    let max_backoff = M.spin_max_backoff () in
    let rec loop spins delay =
      if M.Cell.get cell = 0 && M.Cell.test_and_set cell = 0 then spins
      else begin
        M.spin_pause ();
        if backoff then begin
          for _ = 1 to delay do
            M.cycles 1
          done;
          loop (spins + 1) (Stdlib.min (delay * 2) max_backoff)
        end
        else loop (spins + 1) delay
      end
    in
    loop 0 1

  let tas_loop cell =
    let rec loop spins =
      if M.Cell.test_and_set cell = 0 then spins
      else begin
        M.spin_pause ();
        loop (spins + 1)
      end
    in
    loop 0

  let acquire ?hint protocol cell =
    (match hint with Some h -> M.spin_hint h | None -> ());
    match protocol with
    | Tas -> tas_loop cell
    | Ttas -> ttas_loop ~backoff:false cell
    | Tas_then_ttas ->
        if M.Cell.test_and_set cell = 0 then 0
        else begin
          M.spin_pause ();
          1 + ttas_loop ~backoff:false cell
        end
    | Ttas_backoff -> ttas_loop ~backoff:true cell

  let try_acquire cell = M.Cell.test_and_set cell = 0
  let release cell = M.Cell.set cell 0
end
