(* Runtime waits-for graph.

   The lock layers (Simple_lock, Complex_lock, Event) and rendezvous
   points (Tlb_shootdown) report exact per-instance wait and hold edges
   here; the engine's deadlock detector walks the edges (together with
   its own frame-stack and pending-interrupt edges) to explain a hang as
   a cycle or an orphaned waiter instead of a raw thread dump.

   All edge state is domain-local: one simulation runs per domain, and
   parallel seed sweeps (Sim_explore ?domains) must not see each other's
   edges.  Tracking is off by default and gated per call site, so the
   hot path costs one domain-local read when disabled. *)

type resource =
  | Slock of { uid : int; name : string }
  | Clock of { uid : int; name : string }
  | Event of { id : int }
  | Rendezvous of { name : string }
  | Range of { uid : int; name : string; lo : int; hi : int }

let res_label = function
  | Slock { name; _ } -> "simple lock " ^ name
  | Clock { name; _ } -> "complex lock " ^ name
  | Event { id } -> "event " ^ string_of_int id
  | Rendezvous { name } -> "rendezvous " ^ name
  | Range { name; lo; hi; _ } ->
      if lo = 0 && hi = max_int then "range lock " ^ name ^ " [whole]"
      else Printf.sprintf "range lock %s [%#x,%#x)" name lo hi

(* Stable node identifier for graph construction (distinct constructors
   use distinct prefixes so a simple lock and a complex lock with equal
   uids never collide).  Range nodes are per-(lock, range): waiters on
   [lo, hi) point at the holders of exactly that range. *)
let res_id = function
  | Slock { uid; _ } -> "S" ^ string_of_int uid
  | Clock { uid; _ } -> "C" ^ string_of_int uid
  | Event { id } -> "E" ^ string_of_int id
  | Rendezvous { name } -> "R" ^ name
  | Range { uid; lo; hi; _ } -> Printf.sprintf "G%d:%d:%d" uid lo hi

type state = {
  waits : (int, (string * resource) list) Hashtbl.t; (* tid -> edges *)
  holds : (resource, (int * string) list) Hashtbl.t; (* res -> holders *)
  last_event : (int, int) Hashtbl.t; (* tid -> last event woken from *)
  mutable tracking : bool;
}

let state_key : state Domain.DLS.key =
  Domain.DLS.new_key (fun () ->
      {
        waits = Hashtbl.create 64;
        holds = Hashtbl.create 64;
        last_event = Hashtbl.create 64;
        tracking = false;
      })

let st () = Domain.DLS.get state_key
let tracking () = (st ()).tracking
let set_tracking b = (st ()).tracking <- b

let reset () =
  let s = st () in
  Hashtbl.reset s.waits;
  Hashtbl.reset s.holds;
  Hashtbl.reset s.last_event

let () = Run_reset.register reset

let note_wait ~tid ~tname res =
  let s = st () in
  let cur = Option.value ~default:[] (Hashtbl.find_opt s.waits tid) in
  Hashtbl.replace s.waits tid ((tname, res) :: cur)

let rec remove_first p = function
  | [] -> []
  | x :: rest -> if p x then rest else x :: remove_first p rest

let note_wait_done ~tid res =
  let s = st () in
  (match res with
  | Event { id } -> Hashtbl.replace s.last_event tid id
  | _ -> ());
  match Hashtbl.find_opt s.waits tid with
  | None -> ()
  | Some l -> (
      match remove_first (fun (_, r) -> r = res) l with
      | [] -> Hashtbl.remove s.waits tid
      | l' -> Hashtbl.replace s.waits tid l')

let note_hold ~tid ~tname res =
  let s = st () in
  let cur = Option.value ~default:[] (Hashtbl.find_opt s.holds res) in
  Hashtbl.replace s.holds res ((tid, tname) :: cur)

let note_release ~tid res =
  let s = st () in
  match Hashtbl.find_opt s.holds res with
  | None -> ()
  | Some l -> (
      match remove_first (fun (t, _) -> t = tid) l with
      | [] -> Hashtbl.remove s.holds res
      | l' -> Hashtbl.replace s.holds res l')

let waits () =
  let s = st () in
  Hashtbl.fold
    (fun tid l acc ->
      List.fold_left (fun acc (tname, r) -> (tid, tname, r) :: acc) acc l)
    s.waits []
  |> List.sort compare

let holds () =
  let s = st () in
  Hashtbl.fold (fun res l acc -> (res, List.rev l) :: acc) s.holds []
  |> List.sort compare

let holders res =
  match Hashtbl.find_opt (st ()).holds res with
  | None -> []
  | Some l -> List.rev l

let waits_of ~tid =
  match Hashtbl.find_opt (st ()).waits tid with
  | None -> []
  | Some l -> List.rev l

let last_event ~tid = Hashtbl.find_opt (st ()).last_event tid

(* Event ids of complex locks (and other event-backed protocols) alias a
   higher-level resource: the detector follows the alias so a cycle
   through a complex lock names the lock, not the anonymous event.
   Registration happens at lock creation (cold path) and locks may cross
   domains, hence a mutex rather than domain-local state. *)

let alias_mu = Mutex.create ()
let aliases : (int, resource) Hashtbl.t = Hashtbl.create 64

let note_event_resource ~event res =
  Mutex.lock alias_mu;
  Hashtbl.replace aliases event res;
  Mutex.unlock alias_mu

let event_resource ~event =
  Mutex.lock alias_mu;
  let r = Hashtbl.find_opt aliases event in
  Mutex.unlock alias_mu;
  r
