(** Runtime waits-for graph: exact per-instance wait/hold edges reported
    by the lock layers and consumed by the engine's deadlock detector.

    Tracking is off by default; when off, every [note_*] call site is
    expected to skip the call after checking {!tracking} (one
    domain-local read).  All edge state is domain-local so parallel seed
    sweeps do not see each other's edges; {!reset} (registered with
    {!Run_reset}) clears it between runs. *)

type resource =
  | Slock of { uid : int; name : string }
  | Clock of { uid : int; name : string }
  | Event of { id : int }
  | Rendezvous of { name : string }
  | Range of { uid : int; name : string; lo : int; hi : int }
      (** One held or wanted range of a range lock; waiters on an
          overlapping range report a wait edge against each conflicting
          holder's exact [Range] node. *)

val res_label : resource -> string
(** Human-readable name ("simple lock the-lock", "event 7", ...). *)

val res_id : resource -> string
(** Stable identifier usable as a graph node id. *)

val tracking : unit -> bool
val set_tracking : bool -> unit

val note_wait : tid:int -> tname:string -> resource -> unit
(** The thread is about to block/spin on [res]. *)

val note_wait_done : tid:int -> resource -> unit
(** The wait on [res] ended (satisfied or cancelled).  May be called by
    the waking thread (event wakeups). *)

val note_hold : tid:int -> tname:string -> resource -> unit
val note_release : tid:int -> resource -> unit

val waits : unit -> (int * string * resource) list
(** All outstanding wait edges, sorted. *)

val waits_of : tid:int -> (string * resource) list
val holds : unit -> (resource * (int * string) list) list
val holders : resource -> (int * string) list

val last_event : tid:int -> int option
(** The event this thread was most recently woken from; used to explain
    lost wakeups (the wait edge is gone, the wakeup never arrived). *)

val note_event_resource : event:int -> resource -> unit
(** Declare that an event id belongs to a higher-level resource (e.g. a
    complex lock's internal event); the detector follows the alias. *)

val event_resource : event:int -> resource option
val reset : unit -> unit
