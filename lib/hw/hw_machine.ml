module Spl = Mach_core.Spl

exception Kernel_panic of string

let name = "native"

module Cell = struct
  type t = { a : int Atomic.t; cname : string }

  let make ?(name = "cell") v = { a = Atomic.make v; cname = name }
  let get t = Atomic.get t.a
  let set t v = Atomic.set t.a v

  (* [Atomic.exchange] gives the true test-and-set; present since 4.12. *)
  let test_and_set t = Atomic.exchange t.a 1
  let swap t v = Atomic.exchange t.a v

  let compare_and_swap t ~expected ~desired =
    Atomic.compare_and_set t.a expected desired

  let fetch_and_add t n = Atomic.fetch_and_add t.a n
  let name t = t.cname
  let _ = name
end

type thread = {
  tid : int;
  tname : string;
  mutex : Mutex.t;
  cond : Condition.t;
  mutable permits : int;
  mutable tls : int array;
  mutable spl : Spl.t;
}

(* Registry keyed by systhread id (unique across domains). *)
let registry : (int, thread) Hashtbl.t = Hashtbl.create 64
let registry_mutex = Mutex.create ()
let tid_counter = Atomic.make 0

let make_thread tname =
  {
    tid = Atomic.fetch_and_add tid_counter 1;
    tname;
    mutex = Mutex.create ();
    cond = Condition.create ();
    permits = 0;
    tls = Array.make 8 0;
    spl = Spl.Spl0;
  }

let key () = Thread.id (Thread.self ())

let register ?name () =
  let k = key () in
  Mutex.lock registry_mutex;
  let t =
    match Hashtbl.find_opt registry k with
    | Some t -> t
    | None ->
        let tname =
          match name with Some n -> n | None -> Printf.sprintf "native-%d" k
        in
        let t = make_thread tname in
        Hashtbl.add registry k t;
        t
  in
  Mutex.unlock registry_mutex;
  t

let self () = register ()
let thread_id t = t.tid
let thread_name t = t.tname
let equal_thread a b = a.tid = b.tid
let in_interrupt () = false
let cpu_count () = Domain.recommended_domain_count ()
let current_cpu () = (Domain.self () :> int)
let spin_pause () = Domain.cpu_relax ()
let spin_hint _ = ()
let spin_max_backoff () = 1024

let park () =
  let t = self () in
  Mutex.lock t.mutex;
  while t.permits = 0 do
    Condition.wait t.cond t.mutex
  done;
  t.permits <- t.permits - 1;
  Mutex.unlock t.mutex

let unpark t =
  Mutex.lock t.mutex;
  t.permits <- t.permits + 1;
  Condition.signal t.cond;
  Mutex.unlock t.mutex

let set_spl level =
  let t = self () in
  let old = t.spl in
  t.spl <- level;
  old

let get_spl () = (self ()).spl
let cycles _ = ()

(* A coarse monotonic tick so that held-time statistics are non-trivial
   natively; granularity is whatever [Sys.time] offers. *)
let now_cycles () = int_of_float (Sys.time () *. 1e6)

let grow_tls t key =
  if key >= Array.length t.tls then begin
    let bigger = Array.make (max (key + 1) (2 * Array.length t.tls)) 0 in
    Array.blit t.tls 0 bigger 0 (Array.length t.tls);
    t.tls <- bigger
  end

let tls_get t ~key =
  if key < Array.length t.tls then t.tls.(key) else 0

let tls_set t ~key v =
  grow_tls t key;
  t.tls.(key) <- v

(* No fault injector on the real machine. *)
let handoff_fault () = false
let fatal msg = raise (Kernel_panic msg)

(* Every domain is a cpu of the one process-wide machine: machine-scoped
   state is plain process-global state, built eagerly so no two domains
   race to initialize it. *)
let machine_local init =
  let v = init () in
  fun () -> v
