(** The machine-independent synchronization layer instantiated on the
    native machine — used by the real-multicore benchmarks and tests. *)

include Mach_core.Sync.Make (Hw_machine)

(** The queue-lock suite on real atomics. *)
module Locks = Mach_locks.Locks.Make (Hw_machine)
