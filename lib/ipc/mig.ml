module Kobj = Mach_ksync.Kobj

type args = Port.element list
type reply = (args, int) result

type routine = {
  routine_id : int;
  routine_name : string;
  handler : Kobj.t option -> args -> reply;
  consumes_reference : bool;
}

type registry = (int, routine) Hashtbl.t

let make_registry () = Hashtbl.create 32

let register reg ?(consumes_reference = false) ~id ~name handler =
  if Hashtbl.mem reg id then
    invalid_arg (Printf.sprintf "Mig.register: duplicate routine id %d" id);
  Hashtbl.replace reg id
    { routine_id = id; routine_name = name; handler; consumes_reference }

let lookup reg id = Hashtbl.find_opt reg id

let err_deactivated = 1001
let err_no_such_routine = 1002
let err_bad_arguments = 1003

(* Replies are encoded as: Int status :: results.  Status 0 = success. *)

type call_error = [ `Dead_port | `Server_failure of int ]

(* A per-call reply port costs a kernel-object allocation and two fresh
   events every RPC; Mach caches one reply port per thread instead
   (mig_get_reply_port).  [reply_port] opts into that reuse: the caller
   owns the port, guarantees it is used by one call at a time, and
   destroys it when the client thread is done.  The reply wait spins
   [poll] unlocked probes before blocking ({!Port.receive}'s
   spin-then-block), which on a loaded server skips the sleep/wakeup
   machinery for most calls. *)
let call ?(poll = 512) ?reply_port port ~id args =
  let rp, owned =
    match reply_port with
    | Some rp -> (rp, false)
    | None -> (Port.create ~name:"reply" ~queue_limit:1 (), true)
  in
  let finish r =
    if owned then begin
      Port.destroy rp;
      Port.release rp
    end;
    r
  in
  match Port.send port { Port.msg_op = id; reply_to = Some rp; body = args } with
  | Error `Dead_port -> finish (Error `Dead_port)
  | Ok () -> (
      match Port.receive ~spin:poll rp with
      | Error `Dead_port | Error `Would_block -> finish (Error `Dead_port)
      | Ok msg -> (
          (* Ownership of any port rights in the reply body transfers to
             the caller, which must release them when done. *)
          match msg.Port.body with
          | Port.Int 0 :: results -> finish (Ok results)
          | Port.Int code :: _ -> finish (Error (`Server_failure code))
          | _ -> finish (Error (`Server_failure err_bad_arguments))))

let send_async port ~id args =
  match Port.send port { Port.msg_op = id; reply_to = None; body = args } with
  | Error `Dead_port -> Error `Dead_port
  | Ok () -> Ok ()

let reply_to_message msg result =
  match msg.Port.reply_to with
  | None -> ()
  | Some rp ->
      let body =
        match result with
        | Ok results -> Port.Int 0 :: results
        | Error code -> [ Port.Int code ]
      in
      (* A dead reply port just drops the reply. *)
      ignore (Port.send rp { Port.msg_op = msg.Port.msg_op; reply_to = None; body });
      (* The receiver owned the reply-port reference carried by the
         request; sending cloned what it needed. *)
      Port.release rp

let release_body msg =
  List.iter
    (function
      | Port.Port_right p -> Port.release p
      | Port.Int _ | Port.Str _ -> ())
    msg.Port.body

(* The per-request steps 2–5 of the section 10 sequence, shared by the
   one-at-a-time and batched serve paths (step 1, the receive, is the
   caller's). *)
let dispatch reg port msg =
  (* Step 2: determine the represented object from the port and obtain
     a reference to it. *)
  let obj = Port.translate port in
  match lookup reg msg.Port.msg_op with
  | None ->
      reply_to_message msg (Error err_no_such_routine);
      release_body msg;
      (match obj with Some o -> Kobj.release o | None -> ())
  | Some routine ->
      (* Step 3: the operation executes with the object reference
         preventing the object and its port from vanishing. *)
      let result = routine.handler obj msg.Port.body in
      (* Step 4: release the object reference.  Mach 3.0 style: a
         successful operation consumed it; release only on failure. *)
      (match (obj, result, routine.consumes_reference) with
      | Some o, Ok _, true -> ignore o
      | Some o, _, _ -> Kobj.release o
      | None, _, _ -> ());
      (* Step 5: the reply message returns the result. *)
      reply_to_message msg result;
      release_body msg

let serve_one ?spin reg port =
  match Port.receive ?spin port with
  | Error `Dead_port | Error `Would_block -> Error `Dead_port
  | Ok msg ->
      dispatch reg port msg;
      Ok ()

(* Batched dispatch: one port-lock acquisition yields up to [max]
   requests, each then dispatched without re-taking the port's message
   lock.  Returns how many were served. *)
let serve_batch ?spin reg port ~max =
  match Port.receive_batch ?spin port ~max with
  | Error `Dead_port | Error `Would_block -> Error `Dead_port
  | Ok msgs ->
      List.iter (fun msg -> dispatch reg port msg) msgs;
      Ok (List.length msgs)

let serve_loop ?(stop = fun () -> false) ?(batch = 1) ?(spin = 256) reg port =
  if batch < 1 then invalid_arg "Mig.serve_loop: batch must be >= 1";
  let rec loop () =
    if stop () then ()
    else if batch = 1 then
      match serve_one ~spin reg port with
      | Ok () -> loop ()
      | Error `Dead_port -> ()
    else
      match serve_batch ~spin reg port ~max:batch with
      | Ok _ -> loop ()
      | Error `Dead_port -> ()
  in
  loop ()

(* Shutdown under load: deactivate the service port and answer every
   in-flight request with [err_deactivated] (section 9's "operations on a
   deactivated object return a failure code"), so no client sleeps
   forever on its reply port and no carried right leaks.  Returns the
   number of requests drained. *)
let drain port =
  let inflight = Port.destroy_drain port in
  List.iter
    (fun msg ->
      reply_to_message msg (Error err_deactivated);
      release_body msg)
    inflight;
  List.length inflight
