(** A MiG analog: the Mach Interface Generator produced stub code that
    packs/unpacks messages and performs the port-to-object translation, so
    programmers never handled message formats directly (paper, section 3).

    Here, [routine] registrations play the role of the generated server
    stubs, {!call} plays the client stub (the msg_rpc pair of messages:
    request + reply = one RPC, section 10), and {!serve_one}/{!serve_loop}
    run the kernel side of the section 10 sequence:

    + receive the request message (it carried a reference to the port);
    + determine the represented object from the port and obtain a
      reference to it (the translation the stubs generate);
    + run the operation (which takes/releases the object lock as needed);
    + release the object reference — in Mach 2.5 style the interface code
      always releases it; in Mach 3.0 style a {e successful} operation
      consumes the reference and the interface code releases it only on
      failure;
    + send the reply carrying the result. *)

type args = Port.element list

type reply = (args, int) result
(** [Error code] is returned to the caller as a failure code (e.g. an
    operation on a deactivated object, section 9). *)

type routine = {
  routine_id : int;
  routine_name : string;
  handler : Mach_ksync.Kobj.t option -> args -> reply;
      (** receives the translated object (with a reference held for the
          duration of the operation) and the request body *)
  consumes_reference : bool;
      (** Mach 3.0 convention: a successful operation consumes the object
          reference itself (e.g. termination), so the interface code must
          not release it. *)
}

type registry

val make_registry : unit -> registry

val register :
  registry ->
  ?consumes_reference:bool ->
  id:int ->
  name:string ->
  (Mach_ksync.Kobj.t option -> args -> reply) ->
  unit

val lookup : registry -> int -> routine option

(** {1 Client side} *)

type call_error = [ `Dead_port | `Server_failure of int ]

val call :
  ?poll:int ->
  ?reply_port:Port.t ->
  Port.t ->
  id:int ->
  args ->
  (args, call_error) result
(** Synchronous RPC: send the request, wait for the reply.  The wait
    probes the reply port up to [poll] times (default 512) before
    blocking — a short RPC's reply arrives within the window, skipping
    the sleep/wakeup machinery entirely; [poll:0] blocks immediately.
    Without [reply_port] a fresh reply port is allocated and destroyed
    per call; passing one (Mach's cached per-thread reply port,
    mig_get_reply_port) skips that allocation — the caller owns it, must
    not use it for two calls at once, and destroys it when done.
    Ownership of any port rights in the returned results transfers to
    the caller, which must release them. *)

val send_async : Port.t -> id:int -> args -> (unit, [ `Dead_port ]) result
(** One-way message, no reply expected. *)

(** {1 Server side} *)

val serve_one : ?spin:int -> registry -> Port.t -> (unit, [ `Dead_port ]) result
(** Receive and dispatch one request on the given service port, executing
    the section 10 sequence, and reply (if a reply port was supplied).
    [spin] is forwarded to {!Port.receive}. *)

val dispatch : registry -> Port.t -> Port.message -> unit
(** Steps 2–5 of the section 10 sequence for an already-received request:
    translate, run the routine, balance the object reference, reply, and
    release the body rights.  Exposed for servers that receive messages
    themselves (e.g. batched). *)

val serve_batch :
  ?spin:int -> registry -> Port.t -> max:int -> (int, [ `Dead_port ]) result
(** Batched dispatch: receive up to [max] requests under a single
    port-lock acquisition ({!Port.receive_batch}) and dispatch each.
    Blocks like {!serve_one} while the queue is empty; [Ok n] is the
    number served (1 <= n <= max). *)

val serve_loop :
  ?stop:(unit -> bool) -> ?batch:int -> ?spin:int -> registry -> Port.t -> unit
(** Serve until the port dies or [stop ()] becomes true (checked between
    receives).  [batch] > 1 uses {!serve_batch} per iteration (default 1,
    one request per port-lock acquisition); [spin] (default 256) probes
    an empty queue before sleeping. *)

val drain : Port.t -> int
(** Shutdown under load: deactivate the service port
    ({!Port.destroy_drain}) and reply [err_deactivated] to every in-flight
    request so no client sleeps forever on its reply port and no carried
    right leaks.  Returns the number of requests drained. *)

(** {1 Well-known failure codes} *)

val err_deactivated : int
val err_no_such_routine : int
val err_bad_arguments : int
