module K = Mach_ksync.Ksync
module Kobj = Mach_ksync.Kobj
module Obs_span = Mach_obs.Obs_span

(* The message queue is a classic front/rear two-list queue with an
   explicit length: enqueue conses onto [q_rear], dequeue pops [q_front]
   (reversing the rear into the front when it empties), and the
   queue-full check reads [q_len] — all O(1) amortized under the port
   lock, where the old single-list representation paid an O(n) append
   per send and an O(n) [List.length] per attempt on the RPC hot path. *)
type t = {
  pobj : Kobj.t;
  mutable object_ptr : Kobj.t option; (* represented object, with a ref *)
  mutable q_front : queued_message list; (* next to dequeue, in order *)
  mutable q_rear : queued_message list; (* most recent first *)
  mutable q_len : int;
  queue_limit : int;
  msg_event : K.Ev.event; (* receivers wait here *)
  space_event : K.Ev.event; (* senders wait here *)
  (* Waiter counts, maintained under the port lock, so the enqueue and
     dequeue paths only pay a thread_wakeup (event-bucket lock, unpark)
     when somebody is actually asleep — on the RPC hot path nobody is,
     and the unconditional wakeup was the dominant cost per message. *)
  mutable recv_waiters : int;
  mutable send_waiters : int;
}

and element = Int of int | Str of string | Port_right of t

and message = { msg_op : int; reply_to : t option; body : element list }

(* While queued, a message holds a reference to the destination port and
   to every port right it carries (section 10, steps 1 and 5). *)
and queued_message = { qm : message; dest : t }

type send_error = [ `Dead_port ]
type receive_error = [ `Dead_port | `Would_block ]

type Kobj.payload += Port_payload of t

let create ?name ?(queue_limit = 16) () =
  let p =
    {
      pobj = Kobj.make ?name Kobj.No_payload;
      object_ptr = None;
      q_front = [];
      q_rear = [];
      q_len = 0;
      queue_limit;
      msg_event = K.Ev.fresh_event ();
      space_event = K.Ev.fresh_event ();
      recv_waiters = 0;
      send_waiters = 0;
    }
  in
  Kobj.set_payload p.pobj (Port_payload p);
  p

let name t = Kobj.name t.pobj
let uid t = Kobj.uid t.pobj
let kobj t = t.pobj
let reference t = Kobj.reference t.pobj
let release t = Kobj.release t.pobj
let ref_count t = Kobj.ref_count t.pobj
let is_active t = Kobj.is_active t.pobj

(* ------------------------------------------------------------------ *)
(* The represented object                                               *)
(* ------------------------------------------------------------------ *)

let set_object t obj =
  Kobj.with_lock t.pobj (fun () -> t.object_ptr <- Some obj)

let clear_object t =
  Kobj.with_lock t.pobj (fun () ->
      let o = t.object_ptr in
      t.object_ptr <- None;
      o)

let translate t =
  Kobj.lock t.pobj;
  let result =
    if not (Kobj.is_active t.pobj) then None
    else
      match t.object_ptr with
      | None -> None
      | Some obj ->
          (* The existing reference held by the port's pointer ensures the
             object cannot vanish while we clone under the port lock. *)
          Kobj.reference_under (Kobj.object_lock t.pobj) obj;
          Some obj
  in
  Kobj.unlock t.pobj;
  result

(* ------------------------------------------------------------------ *)
(* Message references                                                   *)
(* ------------------------------------------------------------------ *)

let reference_rights msg =
  List.iter (function Port_right p -> reference p | Int _ | Str _ -> ()) msg.body;
  match msg.reply_to with Some p -> reference p | None -> ()

let release_rights msg =
  List.iter (function Port_right p -> release p | Int _ | Str _ -> ()) msg.body;
  match msg.reply_to with Some p -> release p | None -> ()

let destroy_message = release_rights

(* ------------------------------------------------------------------ *)
(* Send / receive                                                       *)
(* ------------------------------------------------------------------ *)

let enqueue_locked t msg =
  (* Clone the references the queued message holds. *)
  reference t;
  reference_rights msg;
  t.q_rear <- { qm = msg; dest = t } :: t.q_rear;
  t.q_len <- t.q_len + 1;
  if t.recv_waiters > 0 then ignore (K.Ev.thread_wakeup t.msg_event)

(* The send and receive spans cover the whole operation including
   queue-full / queue-empty sleeps, so span duration is the user-visible
   IPC latency (what the RPC scorecard measures), not just lock time. *)
let send t msg =
  let spans = Obs_span.enabled () in
  if spans then Obs_span.enter Obs_span.Ipc ("send:" ^ name t);
  let rec attempt ~waited =
    Kobj.lock t.pobj;
    if waited then t.send_waiters <- t.send_waiters - 1;
    if not (Kobj.is_active t.pobj) then begin
      Kobj.unlock t.pobj;
      Error `Dead_port
    end
    else if t.q_len >= t.queue_limit then begin
      (* Queue full: release the port lock and wait for space. *)
      t.send_waiters <- t.send_waiters + 1;
      ignore (K.Ev.thread_sleep t.space_event (Kobj.object_lock t.pobj));
      attempt ~waited:true
    end
    else begin
      enqueue_locked t msg;
      Kobj.unlock t.pobj;
      Ok ()
    end
  in
  let r = attempt ~waited:false in
  if spans then Obs_span.exit Obs_span.Ipc ("send:" ^ name t);
  r

let try_send t msg =
  Kobj.lock t.pobj;
  let r =
    if not (Kobj.is_active t.pobj) then Error `Dead_port
    else if t.q_len >= t.queue_limit then Error `Would_block
    else begin
      enqueue_locked t msg;
      Ok ()
    end
  in
  Kobj.unlock t.pobj;
  r

let dequeue_locked t =
  if t.q_len = 0 then None
  else begin
    (if t.q_front = [] then begin
       t.q_front <- List.rev t.q_rear;
       t.q_rear <- []
     end);
    match t.q_front with
    | q :: rest ->
        t.q_front <- rest;
        t.q_len <- t.q_len - 1;
        if t.send_waiters > 0 then ignore (K.Ev.thread_wakeup t.space_event);
        Some q
    | [] -> assert false (* q_len > 0 implies a non-empty side *)
  end

(* Spin-then-block: before committing to the sleep/wakeup machinery
   (waiter registration under a global lock, event-bucket locks,
   park/unpark — the dominant per-message cost once the queue work
   itself is cheap), probe the queue up to [spin] times with an
   UNLOCKED peek at [q_len]: a racy read costing one pause, confirmed
   under the lock only when it looks non-empty.  A dead port makes the
   peek loop exit through the locked path, so spinning receivers still
   observe destroy promptly. *)
let rec spin_for_message t spin =
  if spin <= 0 then `Block
  else if t.q_len > 0 || not (Kobj.is_active t.pobj) then `Try (spin - 1)
  else begin
    K.Machine.spin_pause ();
    spin_for_message t (spin - 1)
  end

let receive ?(spin = 0) t =
  let spans = Obs_span.enabled () in
  if spans then Obs_span.enter Obs_span.Ipc ("recv:" ^ name t);
  let rec attempt ~waited ~spin =
    Kobj.lock t.pobj;
    if waited then t.recv_waiters <- t.recv_waiters - 1;
    if not (Kobj.is_active t.pobj) then begin
      Kobj.unlock t.pobj;
      Error `Dead_port
    end
    else
      match dequeue_locked t with
      | Some q ->
          Kobj.unlock t.pobj;
          (* The queued message's destination-port reference is released;
             body rights and the reply port transfer to the receiver. *)
          release q.dest;
          Ok q.qm
      | None ->
          if spin > 0 then begin
            Kobj.unlock t.pobj;
            match spin_for_message t spin with
            | `Try rest -> attempt ~waited:false ~spin:rest
            | `Block -> attempt ~waited:false ~spin:0
          end
          else begin
            t.recv_waiters <- t.recv_waiters + 1;
            ignore (K.Ev.thread_sleep t.msg_event (Kobj.object_lock t.pobj));
            attempt ~waited:true ~spin:0
          end
  in
  let r = attempt ~waited:false ~spin in
  if spans then Obs_span.exit Obs_span.Ipc ("recv:" ^ name t);
  r

let try_receive t =
  Kobj.lock t.pobj;
  if not (Kobj.is_active t.pobj) then begin
    Kobj.unlock t.pobj;
    Error `Dead_port
  end
  else
    match dequeue_locked t with
    | Some q ->
        Kobj.unlock t.pobj;
        release q.dest;
        Ok q.qm
    | None ->
        Kobj.unlock t.pobj;
        Error `Would_block

(* Batched receive: up to [max] dequeues under ONE port-lock
   acquisition, amortizing the Simple_lock hold across the batch (the
   E20 batching mechanism).  Dequeue order is FIFO, same as [receive]
   called [max] times.  Returns at least one message — if the queue is
   empty the caller sleeps and retries, exactly like [receive]. *)
let receive_batch ?(spin = 0) t ~max =
  if max < 1 then invalid_arg "Port.receive_batch: max must be >= 1";
  let spans = Obs_span.enabled () in
  if spans then Obs_span.enter Obs_span.Ipc ("recv:" ^ name t);
  let rec attempt ~waited ~spin =
    Kobj.lock t.pobj;
    if waited then t.recv_waiters <- t.recv_waiters - 1;
    if not (Kobj.is_active t.pobj) then begin
      Kobj.unlock t.pobj;
      Error `Dead_port
    end
    else begin
      let rec take n acc =
        if n = 0 then acc
        else
          match dequeue_locked t with
          | Some q -> take (n - 1) (q :: acc)
          | None -> acc
      in
      match take max [] with
      | [] ->
          if spin > 0 then begin
            Kobj.unlock t.pobj;
            match spin_for_message t spin with
            | `Try rest -> attempt ~waited:false ~spin:rest
            | `Block -> attempt ~waited:false ~spin:0
          end
          else begin
            t.recv_waiters <- t.recv_waiters + 1;
            ignore (K.Ev.thread_sleep t.msg_event (Kobj.object_lock t.pobj));
            attempt ~waited:true ~spin:0
          end
      | batch_rev ->
          Kobj.unlock t.pobj;
          let batch = List.rev batch_rev in
          (* Destination-port references released outside the lock; body
             rights and reply ports transfer to the receiver. *)
          List.iter (fun q -> release q.dest) batch;
          Ok (List.map (fun q -> q.qm) batch)
    end
  in
  let r = attempt ~waited:false ~spin in
  if spans then Obs_span.exit Obs_span.Ipc ("recv:" ^ name t);
  r

let try_receive_batch t ~max =
  if max < 1 then invalid_arg "Port.try_receive_batch: max must be >= 1";
  Kobj.lock t.pobj;
  if not (Kobj.is_active t.pobj) then begin
    Kobj.unlock t.pobj;
    Error `Dead_port
  end
  else begin
    let rec take n acc =
      if n = 0 then acc
      else
        match dequeue_locked t with
        | Some q -> take (n - 1) (q :: acc)
        | None -> acc
    in
    match take max [] with
    | [] ->
        Kobj.unlock t.pobj;
        Error `Would_block
    | batch_rev ->
        Kobj.unlock t.pobj;
        let batch = List.rev batch_rev in
        List.iter (fun q -> release q.dest) batch;
        Ok (List.map (fun q -> q.qm) batch)
  end

let queued t = Kobj.with_lock t.pobj (fun () -> t.q_len)

(* ------------------------------------------------------------------ *)
(* Death                                                                *)
(* ------------------------------------------------------------------ *)

let destroy t =
  Kobj.lock t.pobj;
  if Kobj.deactivate t.pobj then begin
    let drained = t.q_front @ List.rev t.q_rear in
    t.q_front <- [];
    t.q_rear <- [];
    t.q_len <- 0;
    let obj = t.object_ptr in
    t.object_ptr <- None;
    (* Waiters re-check the active flag and fail with Dead_port. *)
    ignore (K.Ev.thread_wakeup t.msg_event);
    ignore (K.Ev.thread_wakeup t.space_event);
    Kobj.unlock t.pobj;
    (* References are released outside the port lock (section 8). *)
    List.iter
      (fun q ->
        release q.dest;
        release_rights q.qm)
      drained;
    match obj with Some o -> Kobj.release o | None -> ()
  end
  else Kobj.unlock t.pobj

(* Shutdown under load: deactivate like [destroy], but hand the in-flight
   messages back (in FIFO order) instead of silently destroying their
   rights — a server drains these by replying "deactivated" to each, so
   clients blocked on their reply ports wake up instead of sleeping
   forever.  The queued messages' destination references are released
   here; body rights and reply ports transfer to the caller, who must
   consume them ([destroy_message] after replying). *)
let destroy_drain t =
  Kobj.lock t.pobj;
  if Kobj.deactivate t.pobj then begin
    let drained = t.q_front @ List.rev t.q_rear in
    t.q_front <- [];
    t.q_rear <- [];
    t.q_len <- 0;
    let obj = t.object_ptr in
    t.object_ptr <- None;
    ignore (K.Ev.thread_wakeup t.msg_event);
    ignore (K.Ev.thread_wakeup t.space_event);
    Kobj.unlock t.pobj;
    (* References are released outside the port lock (section 8). *)
    List.iter (fun q -> release q.dest) drained;
    (match obj with Some o -> Kobj.release o | None -> ());
    List.map (fun q -> q.qm) drained
  end
  else begin
    Kobj.unlock t.pobj;
    []
  end
