(** Ports: protected communication channels with exactly one receiver and
    one or more senders (paper, section 3).

    Kernel abstractions are exported to user tasks by ports; if the
    abstraction is not a port, the port data structure contains a pointer
    to the actual object, and that pointer carries a reference to the
    object (section 10).  Operations on objects are invoked by sending
    messages to the corresponding port.

    A port is itself a kernel object: it has a simple lock, a reference
    count and a deactivation flag (a deactivated port is a {e dead}
    port).  The represented-object pointer is installed and removed under
    the port lock — removal is step 2 of the shutdown protocol, disabling
    port-to-object translation.

    Simplification vs. Mach (documented in DESIGN.md): there are no
    per-task port name spaces or send/receive right counters; holders keep
    OCaml references to the port structure and the reference count covers
    them uniformly. *)

type t

type element =
  | Int of int
  | Str of string
  | Port_right of t
      (** a port right carried in a message: the message holds a port
          reference while queued *)

type message = {
  msg_op : int;          (** operation / MiG routine id *)
  reply_to : t option;
  body : element list;
}

type send_error = [ `Dead_port ]
type receive_error = [ `Dead_port | `Would_block ]

val create : ?name:string -> ?queue_limit:int -> unit -> t
(** A new active port with one reference (its creator's). *)

val name : t -> string
val uid : t -> int
val kobj : t -> Mach_ksync.Kobj.t
val reference : t -> unit
val release : t -> unit
val ref_count : t -> int
val is_active : t -> bool

(** {1 The represented object} *)

val set_object : t -> Mach_ksync.Kobj.t -> unit
(** Install the object pointer; consumes one reference to the object
    (the pointer's reference, section 8). *)

val clear_object : t -> Mach_ksync.Kobj.t option
(** Remove the pointer and return the object so the caller can release
    the pointer's reference — shutdown step 2 (section 10). *)

val translate : t -> Mach_ksync.Kobj.t option
(** Port-to-object translation: under the port lock, clone a reference to
    the represented object (the MiG-generated step 2 of a kernel
    operation, section 10).  [None] if the port is dead or represents no
    object. *)

(** {1 Messages} *)

val send : t -> message -> (unit, send_error) result
(** Enqueue; blocks when the queue is full until space is available.
    Sending to a dead port fails.  A queued message holds a reference to
    the port (the paper's step 1: "this message contains a reference to
    the port from which it was received") and to any port rights in its
    body. *)

val try_send : t -> message -> (unit, [ send_error | `Would_block ]) result

val receive : ?spin:int -> t -> (message, receive_error) result
(** Dequeue; blocks while the queue is empty.  With [spin] > 0 the empty
    queue is first probed up to [spin] times with an unlocked peek (one
    pause per probe) before the receiver commits to the sleep/wakeup
    machinery — the spin-then-block discipline of the RPC hot path.
    The returned message's port references are transferred to the caller
    (release them via {!destroy_message} or keep the rights). *)

val try_receive : t -> (message, receive_error) result

val receive_batch : ?spin:int -> t -> max:int -> (message list, receive_error) result
(** Dequeue up to [max] messages under a single port-lock acquisition
    (batched dispatch: the lock hold is amortized across the batch).
    Blocks like {!receive} while the queue is empty, with the same
    [spin] probing; always returns at least one message on [Ok].  FIFO
    order is preserved. *)

val try_receive_batch : t -> max:int -> (message list, receive_error) result

val queued : t -> int

val destroy_message : message -> unit
(** Release the port references a received message carries (the "internal
    destruction of original message releases the port reference" of
    section 10, step 5). *)

(** {1 Death} *)

val destroy : t -> unit
(** Deactivate the port: pending and future senders/receivers fail with
    [`Dead_port]; queued messages are destroyed; the represented-object
    pointer (if any) is cleared and its reference released.  The port data
    structure itself persists until its last reference is released. *)

val destroy_drain : t -> message list
(** Deactivate like {!destroy}, but return the in-flight messages (FIFO)
    instead of destroying them, so a server shutting down under load can
    reply to each — without this, clients blocked on their reply ports
    would sleep forever.  The caller owns the returned messages' rights
    and must consume them (reply, then {!destroy_message}).  Returns []
    if the port was already dead. *)
