module K = Mach_ksync.Ksync

(* A port name space: integer port names translated to ports, the
   per-request step the RPC path pays before it can send (the paper's
   section 10 "determine the object from the port" has a sibling on the
   client side: determine the port from the name).  The table holds one
   reference per registered port; [lookup] clones a reference under the
   shard lock — the table's reference is the guarantee the clone needs —
   so a looked-up port cannot vanish between translation and send.

   The namespace is S independent shards, each a hash table under its own
   simple lock; a name's shard is a fixed multiplicative hash, so two
   requests for different names contend only when they collide.  S = 1 is
   the single global registry (the coarse baseline E20 measures against).

   Lock order: a shard lock is taken strictly BEFORE any port lock (the
   only port operations under a shard lock are reference clones/releases,
   never port-lock acquisitions), so shard-then-port nesting in callers
   can never close a cycle against the table. *)

type shard = {
  s_lock : K.Slock.t;
  s_tbl : (int, Port.t) Hashtbl.t;
}

type t = {
  sp_name : string;
  shards : shard array;
  (* Simulated cost of the table walk itself (hash + chain), charged
     while the shard lock is held: the translation work the lock
     serializes, not just the lock handoff. *)
  walk_cycles : int;
}

type insert_error = [ `Name_in_use ]

let create ?(name = "space") ?(shards = 1) ?(walk_cycles = 0) () =
  if shards < 1 then invalid_arg "Port_space.create: shards must be >= 1";
  {
    sp_name = name;
    shards =
      Array.init shards (fun i ->
          {
            s_lock =
              K.Slock.make ~name:(Printf.sprintf "%s.shard%d" name i) ();
            s_tbl = Hashtbl.create 32;
          });
    walk_cycles;
  }

let name t = t.sp_name
let shard_count t = Array.length t.shards

(* Fibonacci-style multiplicative hash: deterministic across runs and
   spreads consecutive names (the common allocation pattern) across
   shards instead of clustering them. *)
let shard_of t pname =
  let h = pname * 0x9E3779B1 land max_int in
  t.shards.(h mod Array.length t.shards)

let walk t = if t.walk_cycles > 0 then K.Machine.cycles t.walk_cycles

let insert t ~pname port =
  let s = shard_of t pname in
  K.Slock.lock s.s_lock;
  walk t;
  let r =
    if Hashtbl.mem s.s_tbl pname then Error `Name_in_use
    else begin
      (* The table's reference: cloned from the caller's (a caller
         without a reference could not name the port at all). *)
      Port.reference port;
      Hashtbl.replace s.s_tbl pname port;
      Ok ()
    end
  in
  K.Slock.unlock s.s_lock;
  r

let lookup t ~pname =
  let s = shard_of t pname in
  K.Slock.lock s.s_lock;
  walk t;
  match Hashtbl.find_opt s.s_tbl pname with
  | None ->
      K.Slock.unlock s.s_lock;
      None
  | Some p ->
      if Port.is_active p then begin
        (* Translation proper: clone a reference under the shard lock
           (the table's reference guarantees the port is live). *)
        Port.reference p;
        K.Slock.unlock s.s_lock;
        Some p
      end
      else begin
        (* Dead name: the port was destroyed while still registered.
           Purge lazily; the table's reference is released OUTSIDE the
           shard lock (section 8: never release a reference you cannot
           prove is not the last one while holding a lock the destroy
           path may want). *)
        Hashtbl.remove s.s_tbl pname;
        K.Slock.unlock s.s_lock;
        Port.release p;
        None
      end

let remove t ~pname =
  let s = shard_of t pname in
  K.Slock.lock s.s_lock;
  walk t;
  match Hashtbl.find_opt s.s_tbl pname with
  | None ->
      K.Slock.unlock s.s_lock;
      false
  | Some p ->
      Hashtbl.remove s.s_tbl pname;
      K.Slock.unlock s.s_lock;
      Port.release p;
      true

let size t =
  Array.fold_left
    (fun acc s ->
      K.Slock.lock s.s_lock;
      let n = Hashtbl.length s.s_tbl in
      K.Slock.unlock s.s_lock;
      acc + n)
    0 t.shards

let clear t =
  Array.iter
    (fun s ->
      K.Slock.lock s.s_lock;
      let ports = Hashtbl.fold (fun _ p acc -> p :: acc) s.s_tbl [] in
      Hashtbl.reset s.s_tbl;
      K.Slock.unlock s.s_lock;
      (* Table references dropped outside the shard lock, as in lookup. *)
      List.iter Port.release ports)
    t.shards
