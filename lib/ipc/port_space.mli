(** A port name space: integer names translated to ports, sharded across
    S independent hash tables each under its own simple lock (the E20
    "sharded port namespace" mechanism; S = 1 is the single global
    registry the sharded runs are measured against).

    The table holds one port reference per registered name.  {!lookup} is
    the translation step of the RPC hot path: under the shard lock it
    clones a port reference (guaranteed live by the table's own
    reference), so the returned port cannot vanish before the send.

    Lock order: shard lock strictly before any port lock — the table
    never acquires a port lock while holding a shard lock, and all
    reference releases that could be "the last one" happen outside the
    shard lock (paper, section 8). *)

type t

type insert_error = [ `Name_in_use ]

val create : ?name:string -> ?shards:int -> ?walk_cycles:int -> unit -> t
(** [shards] (default 1) independent tables; [walk_cycles] (default 0)
    simulated cycles charged inside the shard-lock critical section per
    operation, modeling the hash + chain walk the lock serializes. *)

val name : t -> string
val shard_count : t -> int

val insert : t -> pname:int -> Port.t -> (unit, insert_error) result
(** Register [port] under [pname]; the table takes its own reference
    (cloned from the caller's, which the caller keeps). *)

val lookup : t -> pname:int -> Port.t option
(** Translate a name to a port, cloning a reference for the caller
    (release it when done).  A dead port found under a registered name is
    lazily purged — its table reference released outside the shard lock —
    and the lookup returns [None]. *)

val remove : t -> pname:int -> bool
(** Unregister [pname], releasing the table's port reference (outside the
    shard lock).  False if the name was not registered. *)

val size : t -> int
(** Total registered names across all shards (racy across shards; exact
    when quiescent). *)

val clear : t -> unit
(** Unregister everything, releasing all table references. *)
