module Engine = Mach_sim.Sim_engine
module K = Mach_ksync.Ksync
module Spl = Mach_core.Spl
module Port = Mach_ipc.Port
module Mig = Mach_ipc.Mig

(* ------------------------------------------------------------------ *)
(* The section 7 three-processor interrupt deadlock                     *)
(* ------------------------------------------------------------------ *)

let interrupt_barrier_scenario ~disciplined () =
  if Engine.cpu_count () < 3 then
    invalid_arg "interrupt_barrier_scenario: needs at least 3 cpus";
  (* The same-spl rule is exactly what the buggy variant violates; its
     checker must stand down so we can observe the consequence. *)
  if not disciplined then K.Slock.set_checking false;
  Fun.protect ~finally:(fun () -> K.Slock.set_checking true)
  @@ fun () ->
  let lock = K.Slock.make ~name:"the-lock" () in
  let p1_has_lock = Engine.Cell.make ~name:"p1-has-lock" 0 in
  let p2_spinning = Engine.Cell.make ~name:"p2-spinning" 0 in
  let ipis_posted = Engine.Cell.make ~name:"ipis-posted" 0 in
  let checked_in = Engine.Cell.make ~name:"barrier-in" 0 in
  let barrier_go = Engine.Cell.make ~name:"barrier-go" 0 in
  (* Processor 1: holds the lock.  Disciplined: at splvm (interrupts
     that matter are masked while holding).  Buggy: at spl0 (interrupts
     enabled while holding the lock). *)
  let p1 =
    Engine.spawn ~name:"p1" ~bound:0 (fun () ->
        let old =
          if disciplined then Engine.set_spl Spl.Splvm
          else Engine.get_spl ()
        in
        K.Slock.lock lock;
        Engine.Cell.set p1_has_lock 1;
        (* Hold the lock until the initiator has posted its interrupts. *)
        Engine.spin_hint "ipis-posted";
        while Engine.Cell.get ipis_posted = 0 do
          Engine.pause ()
        done;
        Engine.cycles 100;
        K.Slock.unlock lock;
        if disciplined then ignore (Engine.set_spl old))
  in
  (* Processor 2: disables interrupts, then spins for the lock. *)
  let p2 =
    Engine.spawn ~name:"p2" ~bound:1 (fun () ->
        Engine.spin_hint "p1-has-lock";
        while Engine.Cell.get p1_has_lock = 0 do
          Engine.pause ()
        done;
        let old = Engine.set_spl Spl.Splvm in
        Engine.Cell.set p2_spinning 1;
        K.Slock.lock lock;
        Engine.cycles 50;
        K.Slock.unlock lock;
        ignore (Engine.set_spl old))
  in
  (* Processor 3: initiates barrier synchronization at interrupt level:
     all involved processors must enter the service routine before any
     can leave. *)
  let p3 =
    Engine.spawn ~name:"p3" ~bound:2 (fun () ->
        Engine.spin_hint "p2-spinning";
        while Engine.Cell.get p2_spinning = 0 do
          Engine.pause ()
        done;
        let handler () =
          ignore (Engine.Cell.fetch_and_add checked_in 1);
          Engine.spin_hint "barrier-go";
          while Engine.Cell.get barrier_go = 0 do
            Engine.pause ()
          done
        in
        Engine.post_interrupt ~name:"barrier" ~cpu:0 ~level:Spl.Splvm handler;
        Engine.post_interrupt ~name:"barrier" ~cpu:1 ~level:Spl.Splvm handler;
        Engine.Cell.set ipis_posted 1;
        (* Wait for both processors to enter the barrier. *)
        Engine.spin_hint "barrier-in";
        while Engine.Cell.get checked_in < 2 do
          Engine.pause ()
        done;
        Engine.Cell.set barrier_go 1)
  in
  Engine.join p1;
  Engine.join p2;
  Engine.join p3

(* ------------------------------------------------------------------ *)
(* The section 7 same-spl rule, minimal two-cpu version                 *)
(* ------------------------------------------------------------------ *)

let same_spl_holder ~disciplined () =
  if Engine.cpu_count () < 2 then
    invalid_arg "same_spl_holder: needs at least 2 cpus";
  if not disciplined then K.Slock.set_checking false;
  Fun.protect ~finally:(fun () -> K.Slock.set_checking true)
  @@ fun () ->
  let lock = K.Slock.make ~name:"vm-lock" () in
  let held = Engine.Cell.make ~name:"held" 0 in
  let posted = Engine.Cell.make ~name:"posted" 0 in
  let handled = Engine.Cell.make ~name:"handled" 0 in
  (* The holder takes the lock that the interrupt handler will also
     want.  Disciplined: at the interrupt's spl, so the interrupt stays
     masked for the whole critical section.  Buggy: at spl0, so the
     handler can preempt the critical section on this very cpu and spin
     on a lock its own interrupted thread holds -- unbreakable, because
     the handler runs above the holder's frame. *)
  let holder =
    Engine.spawn ~name:"holder" ~bound:0 (fun () ->
        let old =
          if disciplined then Engine.set_spl Spl.Splvm else Engine.get_spl ()
        in
        K.Slock.lock lock;
        Engine.Cell.set held 1;
        Engine.spin_hint "posted";
        while Engine.Cell.get posted = 0 do
          Engine.pause ()
        done;
        Engine.cycles 50;
        K.Slock.unlock lock;
        if disciplined then ignore (Engine.set_spl old);
        Engine.spin_hint "handled";
        while Engine.Cell.get handled = 0 do
          Engine.pause ()
        done)
  in
  (* The device: once the lock is held, fire an interrupt at the
     holder's cpu whose service routine takes the same lock. *)
  let device =
    Engine.spawn ~name:"device" ~bound:1 (fun () ->
        Engine.spin_hint "held";
        while Engine.Cell.get held = 0 do
          Engine.pause ()
        done;
        Engine.post_interrupt ~name:"vm-intr" ~cpu:0 ~level:Spl.Splvm
          (fun () ->
            K.Slock.lock lock;
            Engine.cycles 10;
            K.Slock.unlock lock;
            Engine.Cell.set handled 1);
        Engine.Cell.set posted 1)
  in
  Engine.join holder;
  Engine.join device

(* ------------------------------------------------------------------ *)
(* Locking granularity                                                  *)
(* ------------------------------------------------------------------ *)

type granularity = Coarse | Fine | Master_funnel

let granularity_name = function
  | Coarse -> "coarse"
  | Fine -> "fine"
  | Master_funnel -> "master-funnel"

type sim_object = {
  olock : K.Slock.t;
  counter : Engine.Cell.t;
}

let operate obj =
  (* An object operation: a shared-data update plus local work. *)
  ignore (Engine.Cell.fetch_and_add obj.counter 1);
  Engine.cycles 40

let object_ops_workload granularity ~objects ~workers ~ops_per_worker =
  let objs =
    Array.init objects (fun i ->
        {
          olock = K.Slock.make ~name:(Printf.sprintf "obj%d" i) ();
          counter = Engine.Cell.make ~name:(Printf.sprintf "ctr%d" i) 0;
        })
  in
  match granularity with
  | Coarse ->
      (* One lock protects all of the code/data: kernel execution is
         effectively restricted to one processor at a time. *)
      let big_lock = K.Slock.make ~name:"kernel-lock" () in
      let worker w () =
        for i = 0 to ops_per_worker - 1 do
          let obj = objs.((w + i) mod objects) in
          K.Slock.lock big_lock;
          operate obj;
          K.Slock.unlock big_lock
        done
      in
      let ts = List.init workers (fun w -> Engine.spawn (worker w)) in
      List.iter Engine.join ts
  | Fine ->
      (* Locks are associated with data structures: code runs in parallel
         with itself when different objects are involved (section 2). *)
      let worker w () =
        for i = 0 to ops_per_worker - 1 do
          let obj = objs.((w + i) mod objects) in
          K.Slock.lock obj.olock;
          operate obj;
          K.Slock.unlock obj.olock
        done
      in
      let ts = List.init workers (fun w -> Engine.spawn (worker w)) in
      List.iter Engine.join ts
  | Master_funnel ->
      (* A master processor executes every operation; other processors
         hand their work over, sleep, and are awakened with the result
         (the master-processor design the paper contrasts with,
         section 2).  The handoff uses the canonical event-wait pattern
         under a guard lock. *)
      let guard = K.Slock.make ~name:"funnel-guard" () in
      let req_ev = K.Ev.fresh_event () in
      let done_ev = K.Ev.fresh_event () in
      let slot_ev = K.Ev.fresh_event () in
      let pending = ref None (* (worker, object index), under guard *) in
      let completed = Array.make workers false (* under guard *) in
      let remaining = ref (workers * ops_per_worker) (* under guard *) in
      let master =
        Engine.spawn ~name:"master" ~bound:0 (fun () ->
            let continue = ref true in
            while !continue do
              K.Slock.lock guard;
              match !pending with
              | None ->
                  if !remaining = 0 then begin
                    continue := false;
                    K.Slock.unlock guard
                  end
                  else ignore (K.Ev.thread_sleep req_ev guard)
              | Some (w, idx) ->
                  pending := None;
                  K.Slock.unlock guard;
                  operate objs.(idx);
                  K.Slock.lock guard;
                  remaining := !remaining - 1;
                  completed.(w) <- true;
                  ignore (K.Ev.thread_wakeup done_ev);
                  ignore (K.Ev.thread_wakeup slot_ev);
                  K.Slock.unlock guard
            done)
      in
      let worker w () =
        for i = 0 to ops_per_worker - 1 do
          K.Slock.lock guard;
          while !pending <> None do
            ignore (K.Ev.thread_sleep slot_ev guard);
            K.Slock.lock guard
          done;
          pending := Some (w, (w + i) mod objects);
          ignore (K.Ev.thread_wakeup req_ev);
          while not completed.(w) do
            ignore (K.Ev.thread_sleep done_ev guard);
            K.Slock.lock guard
          done;
          completed.(w) <- false;
          K.Slock.unlock guard
        done
      in
      let ts = List.init workers (fun w -> Engine.spawn (worker w)) in
      List.iter Engine.join ts;
      (* All work submitted and acknowledged; let the master observe
         remaining = 0. *)
      ignore (K.Ev.thread_wakeup req_ev);
      Engine.join master

(* ------------------------------------------------------------------ *)
(* RPC null round-trip                                                  *)
(* ------------------------------------------------------------------ *)

let null_rpc_workload kernel ~clients ~calls_each =
  let client i () =
    for _ = 1 to calls_each do
      match Kernel.rpc_null kernel with
      | Ok () -> ()
      | Error e ->
          Engine.fatal (Printf.sprintf "client %d: null rpc failed: %s" i e)
    done
  in
  let ts =
    List.init clients (fun i ->
        Engine.spawn ~name:(Printf.sprintf "client%d" i) (client i))
  in
  List.iter Engine.join ts

(* ------------------------------------------------------------------ *)
(* Range locks over the VM map (experiment E16)                         *)
(* ------------------------------------------------------------------ *)

module RL = Mach_locks.Range_lock
module Vm_map = Mach_vm.Vm_map
module Vm_fault = Mach_vm.Vm_fault

(* One cell of the 2-cpu range matrix: two threads acquire one range
   each and meet in the critical section if the lock lets them.
   Conflicting requests held concurrently are fatal (so Mc.check proves
   overlap serializes on every schedule); the returned flag witnesses
   that some schedule did interleave the holds (so Mc.check over the
   disjoint cells proves disjoint ranges are not serialized). *)
let range_pair ~r1 ~m1 ~r2 ~m2 ~expect_parallel () =
  let l = K.Rlock.make ~name:"matrix.range" () in
  (* The occupancy count is an engine cell, not a plain ref: every
     access is a visible operation, so the model checker has choice
     points inside the critical section and can actually interleave the
     two holds.  With an invisible ref the incr..decr window would fuse
     into one transition and concurrency could never be witnessed. *)
  let active = Engine.Cell.make ~name:"matrix.active" 0 in
  let witnessed = ref false in
  let worker name (lo, hi) m =
    Engine.spawn ~name (fun () ->
        let h = K.Rlock.acquire l ~lo ~hi m in
        if Engine.Cell.fetch_and_add active 1 > 0 then begin
          witnessed := true;
          if not expect_parallel then
            Engine.fatal
              "range matrix: conflicting ranges held concurrently"
        end;
        Engine.cycles 5;
        ignore (Engine.Cell.fetch_and_add active (-1));
        K.Rlock.release l h)
  in
  let a = worker "req-a" r1 m1 in
  let b = worker "req-b" r2 m2 in
  Engine.join a;
  Engine.join b;
  !witnessed

let range_disjoint () =
  ignore
    (range_pair ~r1:(0, 4) ~m1:RL.Write ~r2:(8, 12) ~m2:RL.Write
       ~expect_parallel:true ())

let range_overlap () =
  ignore
    (range_pair ~r1:(0, 8) ~m1:RL.Write ~r2:(4, 12) ~m2:RL.Write
       ~expect_parallel:false ())

(* ABBA across two ranges of one lock: each thread holds its first range
   and then wants the other's.  Deadlocks on every schedule once both
   first acquisitions are in — the point is the report: the waits-for
   edges name the exact ranges, so the detector prints the cycle through
   "range lock abba.range [0x0,0x4)" rather than a bare event. *)
let range_abba () =
  let l = K.Rlock.make ~name:"abba.range" () in
  let ready = Engine.Cell.make ~name:"abba.ready" 0 in
  let worker name (lo1, hi1) (lo2, hi2) =
    Engine.spawn ~name (fun () ->
        let h1 = K.Rlock.acquire l ~lo:lo1 ~hi:hi1 RL.Write in
        ignore (Engine.Cell.fetch_and_add ready 1);
        Engine.spin_hint "abba.ready";
        while Engine.Cell.get ready < 2 do
          Engine.pause ()
        done;
        let h2 = K.Rlock.acquire l ~lo:lo2 ~hi:hi2 RL.Write in
        K.Rlock.release l h2;
        K.Rlock.release l h1)
  in
  let a = worker "abba-a" (0, 4) (8, 12) in
  let b = worker "abba-b" (8, 12) (0, 4) in
  Engine.join a;
  Engine.join b

(* The E16 workload: every thread owns a disjoint slice of a huge
   address space and repeatedly allocates, faults and deallocates there.
   Under the coarse map lock the allocate/deallocate writes serialize
   everything; under range locks the threads never conflict. *)
let vm_fault_storm ?(locking = Vm_map.Coarse) ?threads
    ?(pages_per_thread = 4) ?(rounds = 2) () =
  let threads =
    match threads with Some t -> t | None -> Engine.cpu_count ()
  in
  let ctx =
    Vm_map.make_context ~name:"storm" ~pages:(threads * pages_per_thread) ()
  in
  let map = Vm_map.create ~name:"storm" ~locking ctx in
  let ts =
    List.init threads (fun w ->
        Engine.spawn ~name:(Printf.sprintf "faulter%d" w) (fun () ->
            let va = 0x1000 + (w * pages_per_thread) in
            for _ = 1 to rounds do
              (match Vm_map.vm_allocate_at map ~va ~size:pages_per_thread with
              | Ok _ -> ()
              | Error `Overlap -> Engine.fatal "storm: unexpected overlap");
              for i = 0 to pages_per_thread - 1 do
                match Vm_fault.fault map ~va:(va + i) with
                | Ok _ -> ()
                | Error _ -> Engine.fatal "storm: fault failed"
              done;
              match Vm_map.vm_deallocate map ~va with
              | Ok () -> ()
              | Error `No_entry -> Engine.fatal "storm: deallocate failed"
            done))
  in
  List.iter Engine.join ts;
  Vm_map.release map

(* The vm-level matrix cell: one thread faults a region while another
   deallocates a region that either overlaps it or not.  Checks the
   deallocate revalidation path: the fault must see the entry fully or
   not at all, and a disjoint deallocate must never disturb it. *)
let vm_fault_vs_deallocate ~overlapping () =
  let ctx = Vm_map.make_context ~name:"pair" ~pages:8 () in
  let map = Vm_map.create ~name:"pair" ~locking:Vm_map.Range ctx in
  let a = Vm_map.vm_allocate map ~size:2 in
  let b = if overlapping then a else Vm_map.vm_allocate map ~size:2 in
  let faulter =
    Engine.spawn ~name:"faulter" (fun () ->
        match Vm_fault.fault map ~va:a with
        | Ok _ -> ()
        | Error `Bad_address when overlapping ->
            (* the deallocate won the race; legal *)
            ()
        | Error `Bad_address -> Engine.fatal "pair: disjoint fault lost entry"
        | Error `Object_terminated when overlapping -> ()
        | Error `Object_terminated -> Engine.fatal "pair: object terminated")
  in
  let deallocator =
    Engine.spawn ~name:"deallocator" (fun () ->
        match Vm_map.vm_deallocate map ~va:b with
        | Ok () -> ()
        | Error `No_entry -> Engine.fatal "pair: deallocate lost entry")
  in
  Engine.join faulter;
  Engine.join deallocator;
  (match Vm_map.lookup_entry map ~va:a with
  | Some _ when overlapping -> Engine.fatal "pair: deallocated entry survived"
  | None when not overlapping -> Engine.fatal "pair: disjoint entry vanished"
  | _ -> ());
  Vm_map.release map

module Vm_page = Mach_vm.Vm_page
module Vm_cache = Mach_vm.Vm_cache

(* One cell of the 2-cpu scache matrix: two threads take the given sides
   of one Scache_rwlock and meet in the critical section if the protocol
   admits them.  Same shape as [range_pair]: the occupancy count is an
   engine cell so the model checker has choice points inside the
   critical section; conflicting sides held concurrently are fatal, and
   the returned flag witnesses that some schedule interleaved the holds
   (reader parallelism). *)
let scache_pair ~m1 ~m2 ~expect_parallel () =
  let l = K.Locks.Scache.make ~name:"matrix.scache" in
  let active = Engine.Cell.make ~name:"matrix.active" 0 in
  let witnessed = ref false in
  let side name m =
    Engine.spawn ~name (fun () ->
        let release =
          match m with
          | `Read ->
              let slot = K.Locks.Scache.read_lock l in
              fun () -> K.Locks.Scache.read_unlock l ~slot
          | `Write ->
              ignore (K.Locks.Scache.write_lock l);
              fun () -> K.Locks.Scache.write_unlock l
        in
        if Engine.Cell.fetch_and_add active 1 > 0 then begin
          witnessed := true;
          if not expect_parallel then
            Engine.fatal
              "scache matrix: conflicting sides held concurrently"
        end;
        Engine.cycles 5;
        ignore (Engine.Cell.fetch_and_add active (-1));
        release ())
  in
  let a = side "side-a" m1 in
  let b = side "side-b" m2 in
  Engine.join a;
  Engine.join b;
  !witnessed

let scache_rw () =
  ignore (scache_pair ~m1:`Read ~m2:`Write ~expect_parallel:false ())

let scache_ww () =
  ignore (scache_pair ~m1:`Write ~m2:`Write ~expect_parallel:false ())

let scache_rr () =
  ignore (scache_pair ~m1:`Read ~m2:`Read ~expect_parallel:true ())

(* The E19 workload: a page cache warmed to full residency, then
   [threads] workers doing read-mostly lookups with an occasional
   evict-and-refill (1 in [write_every] ops takes the write side).
   Under the scache index lock the lookups touch only the caller's own
   refcount slot; under the mutex baseline every lookup serializes. *)
let vm_cache_ops ?(locking = Vm_cache.Scache) ?threads ?(pages = 64)
    ?(ops = 64) ?(write_every = 32) () =
  let threads =
    match threads with Some t -> t | None -> Engine.cpu_count ()
  in
  let pool = Vm_page.create ~name:"cache.pool" ~pages:(pages + 4) () in
  let cache = Vm_cache.create ~name:"cache" ~locking ~pool ~size:pages () in
  for offset = 0 to pages - 1 do
    match Vm_cache.lookup_or_fill cache ~offset with
    | Ok _ -> ()
    | Error _ -> Engine.fatal "vm_cache: warm fill failed"
  done;
  let ts =
    List.init threads (fun w ->
        Engine.spawn ~name:(Printf.sprintf "cache%d" w) (fun () ->
            for i = 1 to ops do
              (* Staggered writes (no convoy): each worker evicts and
                 refills only its own stripe page; everyone reads the
                 whole cache.  A read that races an eviction just counts
                 the miss — the owner refills it — so the read path
                 never escalates to the write side. *)
              if (i + (w * 7)) mod write_every = 0 then begin
                let offset = w mod pages in
                ignore (Vm_cache.evict cache ~offset);
                match Vm_cache.lookup_or_fill cache ~offset with
                | Ok _ -> ()
                | Error `No_memory -> Engine.fatal "vm_cache: out of memory"
                | Error `Terminating -> Engine.fatal "vm_cache: terminating"
              end
              else
                match
                  Vm_cache.lookup cache ~offset:(((w * 13) + (i * 7)) mod pages)
                with
                | Some _ -> Engine.cycles 2
                | None -> () (* raced an eviction; owner will refill *)
            done))
  in
  List.iter Engine.join ts;
  Vm_cache.terminate cache

(* ------------------------------------------------------------------ *)
(* The 3-cpu scache matrix cell: two readers racing one writer          *)
(* ------------------------------------------------------------------ *)

module Kobj = Mach_ksync.Kobj
module Port_space = Mach_ipc.Port_space
module Obs_metrics = Mach_obs.Obs_metrics

(* Two readers race one writer on a single Scache_rwlock.  Occupancy is
   one engine cell with weighted increments — readers add 1, the writer
   adds 100 — so every entry is a single atomic visible op: any count
   >= 100 seen by a reader, or > 0 seen by the writer, is a
   reader/writer (or writer/writer) overlap and is fatal.  The returned
   flag witnesses that some schedule interleaved the two READERS (0 <
   prior count < 100), so DPOR over this one scenario both refutes
   writer conflicts and proves the protocol still admits reader
   parallelism with a writer contending — the 2-cpu matrix cannot show
   that, because its reader-parallel cell has no writer in the mix. *)
let scache_rrw () =
  let l = K.Locks.Scache.make ~name:"matrix.scache" in
  let active = Engine.Cell.make ~name:"rrw.active" 0 in
  let witnessed = ref false in
  let reader name =
    Engine.spawn ~name (fun () ->
        let slot = K.Locks.Scache.read_lock l in
        let prior = Engine.Cell.fetch_and_add active 1 in
        if prior >= 100 then
          Engine.fatal "scache rrw: reader and writer held concurrently"
        else if prior > 0 then witnessed := true;
        ignore (Engine.Cell.fetch_and_add active (-1));
        K.Locks.Scache.read_unlock l ~slot)
  in
  let a = reader "reader-a" in
  let b = reader "reader-b" in
  (* The writer runs on the main thread: a fourth thread would multiply
     the schedule tree for no extra coverage, and the 3-cpu search is
     already the expensive cell of the matrix. *)
  ignore (K.Locks.Scache.write_lock l);
  if Engine.Cell.fetch_and_add active 100 > 0 then
    Engine.fatal "scache rrw: writer entered an occupied section";
  ignore (Engine.Cell.fetch_and_add active (-100));
  K.Locks.Scache.write_unlock l;
  Engine.join a;
  Engine.join b;
  !witnessed

(* ------------------------------------------------------------------ *)
(* High-throughput RPC serving (experiment E20)                         *)
(* ------------------------------------------------------------------ *)

(* The first end-to-end workload: [clients] threads hammer [servers]
   port-based RPC servers through the full section 10 reference
   protocol — name-to-port translation ({!Mach_ipc.Port_space.lookup}
   clones a port reference under a shard lock), send (the queued message
   references the port and its rights), server receive, port-to-object
   translation (an object reference per request), dispatch, reply, and
   reference releases at every step.  The two throughput mechanisms
   under test: [shards] splits the translation table's lock ([shards] =
   1 is the single global registry), and [batch] > 1 dequeues up to
   [batch] requests per port-lock acquisition (Mig.serve_batch).

   Shutdown always runs under the drain protocol: names are unregistered,
   then each service port is deactivated with its in-flight requests
   answered [err_deactivated] (Mig.drain), so no client sleeps forever on
   its reply port.  With [drain_under_load] a terminator thread does this
   while clients are still calling, and clients treat dead-port /
   deactivated failures as the signal to stop.  Either way the scenario
   ends by checking every port and represented object for the section 4
   failure modes: a leaked reference (count above the creator's) or a
   double release (count below it) is fatal.

   Returns (completed RPCs, requests drained in flight). *)
let rpc_serve ?(shards = 1) ?(batch = 1) ?servers ?clients ?(calls_each = 8)
    ?(work_cycles = 4) ?(walk_cycles = 64) ?(spin = 8192)
    ?(drain_under_load = false) () =
  let cpus = Engine.cpu_count () in
  let servers =
    match servers with Some s -> s | None -> max 1 (cpus / 8)
  in
  let clients =
    match clients with Some c -> c | None -> max 1 (cpus - servers)
  in
  let space = Port_space.create ~name:"rpc.space" ~shards ~walk_cycles () in
  let lat = Obs_metrics.histogram "rpc.latency_cycles" in
  let completed = Engine.Cell.make ~name:"rpc.completed" 0 in
  let reg = Mig.make_registry () in
  Mig.register reg ~id:1 ~name:"echo" (fun obj args ->
      match obj with
      | None ->
          (* Port drained between receive and translate: the object
             pointer is gone, so fail the request like section 9 says. *)
          Error Mig.err_deactivated
      | Some _ ->
          Engine.cycles work_cycles;
          Ok args);
  let ports =
    Array.init servers (fun j ->
        let p =
          Port.create ~name:(Printf.sprintf "svc%d" j) ~queue_limit:16 ()
        in
        let obj = Kobj.make ~name:(Printf.sprintf "svcobj%d" j) Kobj.No_payload in
        (* The port's object pointer takes its own reference; keep the
           creator's so the object outlives the drain for the final
           refcount audit. *)
        Kobj.reference obj;
        Port.set_object p obj;
        (match Port_space.insert space ~pname:(j + 1) p with
        | Ok () -> ()
        | Error `Name_in_use -> Engine.fatal "rpc: duplicate name");
        (p, obj))
  in
  let server_threads =
    Array.to_list
      (Array.mapi
         (fun j (p, _) ->
           Engine.spawn ~name:(Printf.sprintf "server%d" j) (fun () ->
               (* Spin-then-block with a budget that covers steady-state
                  request gaps: an RPC server parks only when traffic
                  actually stops (or the port dies at drain).  [spin = 0]
                  forces the park-on-every-wait path — the chaos tests
                  use it to make dropped wakeups lethal. *)
               Mig.serve_loop ~batch ~spin reg p))
         ports)
  in
  let drained = ref 0 in
  let shutdown () =
    for j = 1 to servers do
      ignore (Port_space.remove space ~pname:j)
    done;
    Array.iter (fun (p, _) -> drained := !drained + Mig.drain p) ports
  in
  let client i () =
    (* Mach's per-thread cached reply port: one allocation per client,
       not one per call. *)
    let reply_port =
      Port.create ~name:(Printf.sprintf "reply%d" i) ~queue_limit:1 ()
    in
    let rec go k =
      if k > 0 then
        let pname = 1 + ((i + k) mod servers) in
        match Port_space.lookup space ~pname with
        | None ->
            if not drain_under_load then
              Engine.fatal "rpc: name vanished before shutdown"
        | Some port -> (
            let t0 = Engine.now_cycles () in
            let r =
              Mig.call ~poll:spin ~reply_port port ~id:1
                [ Port.Int i; Port.Int k ]
            in
            Port.release port;
            match r with
            | Ok reply ->
                (match reply with
                | [ Port.Int a; Port.Int b ] when a = i && b = k -> ()
                | _ -> Engine.fatal "rpc: reply does not echo the request");
                Obs_metrics.observe lat (Engine.now_cycles () - t0);
                ignore (Engine.Cell.fetch_and_add completed 1);
                go (k - 1)
            | Error `Dead_port when drain_under_load -> ()
            | Error (`Server_failure code)
              when drain_under_load && code = Mig.err_deactivated ->
                ()
            | Error `Dead_port -> Engine.fatal "rpc: dead port before shutdown"
            | Error (`Server_failure code) ->
                Engine.fatal (Printf.sprintf "rpc: server failure %d" code))
    in
    go calls_each;
    Port.destroy reply_port;
    let rc = Port.ref_count reply_port in
    if rc <> 1 then
      Engine.fatal
        (Printf.sprintf "rpc: reply port refcount %d at client exit (leak)" rc);
    Port.release reply_port
  in
  let client_threads =
    List.init clients (fun i ->
        Engine.spawn ~name:(Printf.sprintf "client%d" i) (client i))
  in
  let terminator =
    if not drain_under_load then None
    else
      (* Deactivate mid-run, once enough calls have completed that the
         queues are hot: what's in flight must be answered, not leaked. *)
      let threshold = max 1 (clients * calls_each / 4) in
      Some
        (Engine.spawn ~name:"terminator" (fun () ->
             Engine.spin_hint "rpc.completed";
             (* Bounded wait: under fault injection (chaos) a client can
                be orphaned before [threshold] completions ever happen.
                Giving up and draining anyway converts that hang into a
                parked waiter the deadlock analyzer can attribute — a
                terminator spinning forever would mask it as livelock. *)
             let budget = ref 50_000 in
             while Engine.Cell.get completed < threshold && !budget > 0 do
               decr budget;
               Engine.pause ()
             done;
             shutdown ()))
  in
  List.iter Engine.join client_threads;
  (match terminator with
  | None -> shutdown ()
  | Some t -> Engine.join t);
  List.iter Engine.join server_threads;
  let total = Engine.Cell.get completed in
  if (not drain_under_load) && total <> clients * calls_each then
    Engine.fatal
      (Printf.sprintf "rpc: %d of %d calls completed" total
         (clients * calls_each));
  Array.iter
    (fun (p, obj) ->
      (* The section 4 audit: exactly the creator's reference must
         remain on the port and on the represented object.  More is a
         leak (some path cloned without releasing); fewer is the
         double-free. *)
      let pc = Port.ref_count p in
      if pc <> 1 then
        Engine.fatal
          (Printf.sprintf "rpc: port %s refcount %d at shutdown (leak)"
             (Port.name p) pc);
      Port.release p;
      let oc = Kobj.ref_count obj in
      if oc <> 1 then
        Engine.fatal
          (Printf.sprintf "rpc: object %s refcount %d at shutdown (leak)"
             (Kobj.name obj) oc);
      Kobj.release obj)
    ports;
  (total, !drained)
