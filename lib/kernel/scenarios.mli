(** Canonical multiprocessor scenarios from the paper, shared by the
    tests, the examples and the benchmark harness. *)

(** {1 The section 7 three-processor interrupt deadlock (experiment E11)}

    Processor 1 holds a lock; processor 2 spins for it with interrupts
    disabled; processor 3 initiates barrier synchronization at interrupt
    level.  If interrupt protection is inconsistent — P1 holds the lock
    with interrupts {e enabled} — P1 enters the barrier handler while
    still holding the lock, P2 never takes its interrupt because it spins
    with interrupts masked, and the system deadlocks.  Acquiring the lock
    at the same interrupt priority on both processors (the section 7
    rule) makes the deadlock impossible. *)

val interrupt_barrier_scenario : disciplined:bool -> unit -> unit
(** Run inside a simulation with at least 3 cpus.  With
    [disciplined:false] the same-spl checking is disabled (the scenario
    exists to show what the rule prevents) and some schedules deadlock;
    with [disciplined:true] every schedule completes. *)

val same_spl_holder : disciplined:bool -> unit -> unit
(** The same-spl rule at its smallest: two cpus, one lock, one
    interrupt.  A holder takes the lock while a device interrupt aimed
    at its cpu has a service routine that takes the same lock.
    [disciplined:true] holds at the interrupt's spl (the section 7
    rule), so the interrupt waits and every schedule completes —
    exhaustively checkable with [Mc].  [disciplined:false] holds at
    spl0 (checking disabled): the handler preempts its own lock holder
    and spins forever. *)

(** {1 Locking granularity (experiments E3)} *)

type granularity =
  | Coarse       (** one lock protects every object (locking code) *)
  | Fine         (** one lock per object (locking data, the Mach way) *)
  | Master_funnel  (** all operations funnel to a master processor *)

val granularity_name : granularity -> string

val object_ops_workload :
  granularity -> objects:int -> workers:int -> ops_per_worker:int -> unit
(** Each worker performs [ops_per_worker] operations, each picking an
    object (round-robin per worker), acquiring the relevant lock(s) and
    updating the object (some local work plus shared-data updates).
    Run inside a simulation; makespan is read from the run stats. *)

(** {1 RPC null round-trip (experiment E9)} *)

val null_rpc_workload : Kernel.t -> clients:int -> calls_each:int -> unit
(** Spawn [clients] threads each performing [calls_each] null RPCs to the
    kernel host port; joins them all. *)

(** {1 Range locks over the VM map (experiment E16)} *)

val range_pair :
  r1:int * int ->
  m1:Mach_locks.Range_lock.mode ->
  r2:int * int ->
  m2:Mach_locks.Range_lock.mode ->
  expect_parallel:bool ->
  unit ->
  bool
(** One cell of the 2-cpu range-lock matrix: two threads acquire the
    given ranges and meet in the critical section if the lock lets
    them.  Fatal if conflicting requests are held concurrently (unless
    [expect_parallel]); returns whether this schedule interleaved the
    holds, so a model checker can both refute overlap concurrency and
    witness disjoint parallelism. *)

val range_disjoint : unit -> unit
(** [range_pair] on disjoint write ranges; never fatal. *)

val range_overlap : unit -> unit
(** [range_pair] on overlapping write ranges; fatal iff the lock ever
    admits both. *)

val range_abba : unit -> unit
(** Two threads each hold one range and want the other's: deadlocks on
    every schedule, with the waits-for edges naming the exact ranges. *)

val vm_fault_storm :
  ?locking:Mach_vm.Vm_map.locking ->
  ?threads:int ->
  ?pages_per_thread:int ->
  ?rounds:int ->
  unit ->
  unit
(** The E16 workload: [threads] (default [cpu_count]) threads each own a
    disjoint [pages_per_thread]-page slice of one map and repeatedly
    allocate_at / fault / deallocate it, [rounds] times.  Run inside a
    simulation; makespan is read from the run stats. *)

val vm_fault_vs_deallocate : overlapping:bool -> unit -> unit
(** Model-checkable pair on a [Range] map: one thread faults region A
    while another deallocates region B (= A when [overlapping]).  Fatal
    on any outcome the range-locked map must not produce. *)

(** {1 scache RW lock and the page cache (experiment E19)} *)

val scache_pair :
  m1:[ `Read | `Write ] ->
  m2:[ `Read | `Write ] ->
  expect_parallel:bool ->
  unit ->
  bool
(** One cell of the 2-cpu scache matrix: two threads take the given
    sides of one {!Mach_locks.Scache_rwlock} and meet in the critical
    section if the protocol admits them.  Fatal if conflicting sides are
    held concurrently (unless [expect_parallel]); returns whether this
    schedule interleaved the holds, so a model checker can both refute
    reader/writer concurrency and witness reader parallelism. *)

val scache_rw : unit -> unit
(** [scache_pair] reader vs writer; fatal iff the lock ever admits both. *)

val scache_ww : unit -> unit
(** [scache_pair] writer vs writer; fatal iff the sweep admits both. *)

val scache_rr : unit -> unit
(** [scache_pair] reader vs reader; never fatal (readers share). *)

val vm_cache_ops :
  ?locking:Mach_vm.Vm_cache.locking ->
  ?threads:int ->
  ?pages:int ->
  ?ops:int ->
  ?write_every:int ->
  unit ->
  unit
(** The E19 workload: a fully-warmed page cache, then [threads] (default
    [cpu_count]) workers doing [ops] read-mostly lookups each, with 1 in
    [write_every] operations evicting and refilling its page (the write
    side).  Run inside a simulation; makespan is read from run stats. *)

val scache_rrw : unit -> bool
(** The 3-cpu scache matrix cell: two readers racing one writer on one
    {!Mach_locks.Scache_rwlock}.  Fatal if a reader and the writer (or
    two writers) ever hold the lock concurrently; returns whether this
    schedule interleaved the two readers, so DPOR over the cell both
    refutes reader/writer concurrency and witnesses reader parallelism
    with a writer contending. *)

(** {1 High-throughput RPC serving (experiment E20)} *)

val rpc_serve :
  ?shards:int ->
  ?batch:int ->
  ?servers:int ->
  ?clients:int ->
  ?calls_each:int ->
  ?work_cycles:int ->
  ?walk_cycles:int ->
  ?spin:int ->
  ?drain_under_load:bool ->
  unit ->
  int * int
(** [clients] (default [cpu_count - servers]) client threads each make
    [calls_each] RPCs to [servers] (default [cpu_count / 8]) server
    ports through the full reference protocol: name translation via a
    [shards]-way {!Mach_ipc.Port_space} ([walk_cycles] simulated cycles
    under the shard lock per operation), send, batched receive
    ([batch] requests per port-lock acquisition), port-to-object
    translation, dispatch, reply.  Shutdown drains in-flight requests
    with [err_deactivated] replies ({!Mach_ipc.Mig.drain}) — under load
    if [drain_under_load], after the clients finish otherwise — then
    ([spin], default 8192, is the spin-then-block budget on both the
    server receive and the client reply wait; 0 parks on every wait)
    audits every port and object refcount (a leak or double-free is
    fatal).  Latency per call is recorded in the [rpc.latency_cycles]
    histogram.  Returns (completed RPCs, requests drained in flight). *)
