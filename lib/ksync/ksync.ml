(** The kernel's synchronization layer: the machine-independent lock /
    event / refcount modules instantiated once on the simulated machine.
    Every kernel subsystem (ipc, vm, kern) shares this instance so that
    lock checking, events and TLS counters compose across subsystems. *)

include Mach_core.Sync.Make (Mach_sim.Sim_machine)

(** The scalable queue-lock suite on the same machine; [Locks.ticket],
    [Locks.mcs], [Locks.anderson] are factories for [Slock.make ?proto]
    (and [Clock.make ?proto]); [Locks.Brlock] is the big-reader
    readers/writer lock. *)
module Locks = Mach_locks.Locks.Make (Mach_sim.Sim_machine)

(** The list-based range lock (Kogan et al.) on the same machine,
    sharing the simple-lock and event layers so checking, waits-for
    edges and observability compose with the rest of the kernel. *)
module Rlock = Mach_locks.Range_lock.Make (Mach_sim.Sim_machine) (Slock) (Ev)
