(** The kernel's synchronization layer: the machine-independent lock /
    event / refcount modules instantiated once on the simulated machine.
    Every kernel subsystem (ipc, vm, kern) shares this instance so that
    lock checking, events and TLS counters compose across subsystems. *)

include Mach_core.Sync.Make (Mach_sim.Sim_machine)

(** The scalable queue-lock suite on the same machine; [Locks.ticket],
    [Locks.mcs], [Locks.anderson] are factories for [Slock.make ?proto]
    (and [Clock.make ?proto]); [Locks.Brlock] is the big-reader
    readers/writer lock. *)
module Locks = Mach_locks.Locks.Make (Mach_sim.Sim_machine)
