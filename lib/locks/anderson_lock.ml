(* Anderson array lock (Anderson, 1990).

   A fetch-and-increment assigns each acquirer a private slot in a
   circular flag array; the waiter spins on its own slot until the
   previous holder's release sets it.  Like MCS the spin is on a cell no
   other waiter reads, so waiting costs no bus traffic; unlike MCS the
   handoff target is computed (slot + 1) rather than linked, which trades
   the qnode bookkeeping for a fixed-size array — and therefore a hard
   cap on simultaneous waiters ([n_slots], 128 here, comfortably above
   the simulator's 64 cpus).

   Protocol invariant: at most one slot is "set" (grantable) at any time;
   an acquire consumes its slot's flag, a release sets the next slot's.
   The release store is an explicit handoff, so it shares the chaos
   [handoff_fault] hook with MCS: a dropped store leaves every future
   waiter spinning on flags that will never be set. *)

module Make (M : Mach_core.Machine_intf.MACHINE) = struct
  type t = {
    slots : M.Cell.t array;
    tail : M.Cell.t; (* next slot to hand out (monotonic; mod n_slots) *)
    mutable holder_slot : int;
  }

  let proto_name = "anderson"
  let n_slots = 128

  let make ~name =
    let slots =
      Array.init n_slots (fun i ->
          M.Cell.make ~name:(Printf.sprintf "%s.s%d" name i)
            (if i = 0 then 1 else 0))
    in
    { slots; tail = M.Cell.make ~name:(name ^ ".tail") 0; holder_slot = 0 }

  let acquire t =
    let slot = M.Cell.fetch_and_add t.tail 1 mod n_slots in
    let flag = t.slots.(slot) in
    let rec spin spins =
      if M.Cell.get flag = 1 then spins
      else begin
        M.spin_pause ();
        spin (spins + 1)
      end
    in
    let spins = spin 0 in
    (* Consume the grant so the slot reads 0 when the array wraps. *)
    M.Cell.set flag 0;
    t.holder_slot <- slot;
    spins

  let try_acquire t =
    let cur = M.Cell.get t.tail in
    let slot = cur mod n_slots in
    M.Cell.get t.slots.(slot) = 1
    && M.Cell.compare_and_swap t.tail ~expected:cur ~desired:(cur + 1)
    && begin
         M.Cell.set t.slots.(slot) 0;
         t.holder_slot <- slot;
         true
       end

  let release t =
    if not (M.handoff_fault ()) then
      M.Cell.set t.slots.((t.holder_slot + 1) mod n_slots) 1

  let is_locked t =
    (* The lock is free iff the next slot to be handed out is grantable. *)
    M.Cell.get t.slots.(M.Cell.get t.tail mod n_slots) = 0
end
