(* Big-reader ("brlock") distributed readers/writer lock.

   One reader-count cell per cpu plus one writer flag.  An uncontended
   read acquisition is a single interlocked increment of the caller's OWN
   per-cpu cell — no shared cache line, no reader-reader bus traffic —
   which is the whole read-mostly win (Kogan et al.'s scalable reader
   locks; Linux's historical brlock).  The price is paid by writers: a
   write acquisition takes the writer flag and then sweeps every per-cpu
   slot, waiting for each to drain to zero.

   Writer preference: a reader that increments its slot and then finds
   the writer flag raised backs out (decrements) and waits for the flag
   to clear before retrying, so a writer's sweep always terminates.

   Slot identity: the slot is chosen by the cpu at read-lock time, and
   the matching decrement MUST hit the same slot even if the thread has
   migrated between lock and unlock (kernels disable preemption here; the
   simulator cannot).  [read_lock] therefore returns the slot index as a
   token that [read_unlock] takes back; [with_read] hides the plumbing.

   Writer fairness: the writer flag is a bare test-and-set, so with two
   or more writers admission is a race the same loser can keep losing —
   and every inter-write gap admits a fresh reader herd the loser must
   then sweep, so its wait grows without bound even though each
   individual sweep terminates.  A FIFO writer-pending gate fixes this:
   a writer that loses the fast path takes a ticket and waits its turn,
   and while any writer is queued ([pending] > 0) new readers hold off
   before counting themselves.  The gate lives in ordinary OCaml
   [Atomic]s, not simulated cells: it is fairness bookkeeping (the
   analogue of the mcs qnode pool index), engaged only on the contended
   multi-writer path, so single-writer workloads execute a byte-identical
   cell-op sequence (the golden determinism rows pin this). *)

module Obs_metrics = Mach_obs.Obs_metrics
module Obs_span = Mach_obs.Obs_span

module Make (M : Mach_core.Machine_intf.MACHINE) = struct
  (* Cycles a writer spends sweeping reader slots, across all brlocks. *)
  let h_sweep = Obs_metrics.histogram "lock.brlock.sweep_spins"

  type t = {
    bname : string;
    readers : M.Cell.t array;
    writer : M.Cell.t;
    (* FIFO writer-pending gate (fairness bookkeeping; see header). *)
    wq_ticket : int Atomic.t;
    wq_grant : int Atomic.t;
    pending : int Atomic.t; (* writers queued but not yet holding *)
  }

  let proto_name = "brlock"

  (* Fixed at the simulator's cpu ceiling: hardware cpu ids (domain ids)
     can exceed it over a process lifetime, so slots are taken mod
     [n_slots] — same-slot sharing is a contention cost, never an
     error. *)
  let n_slots = 64

  let make ~name =
    {
      bname = name;
      readers =
        Array.init n_slots (fun i ->
            M.Cell.make ~name:(Printf.sprintf "%s.r%d" name i) 0);
      writer = M.Cell.make ~name:(name ^ ".w") 0;
      wq_ticket = Atomic.make 0;
      wq_grant = Atomic.make 0;
      pending = Atomic.make 0;
    }

  let read_lock t =
    let slot = M.current_cpu () mod n_slots in
    let mine = t.readers.(slot) in
    let rec go () =
      (* Hold off while writers are queued so a reader herd cannot keep
         overtaking a waiting writer (the loop body never runs in the
         single-writer fast-path case: [pending] stays 0). *)
      let rec defer () =
        if Atomic.get t.pending > 0 then begin
          M.spin_pause ();
          defer ()
        end
      in
      defer ();
      ignore (M.Cell.fetch_and_add mine 1);
      if M.Cell.get t.writer = 0 then slot
      else begin
        (* Back out and let the writer's sweep drain; retry after. *)
        ignore (M.Cell.fetch_and_add mine (-1));
        let rec wait () =
          if M.Cell.get t.writer <> 0 || Atomic.get t.pending > 0 then begin
            M.spin_pause ();
            wait ()
          end
        in
        wait ();
        go ()
      end
    in
    let slot = go () in
    (* The brlock sits outside Simple_lock's instrumentation, so it opens
       and closes its own hold spans (read and write sides as distinct
       sites: their costs differ by design). *)
    if Obs_span.enabled () then
      Obs_span.enter Obs_span.Lock (t.bname ^ ".read");
    slot

  let read_unlock t ~slot =
    Obs_span.exit Obs_span.Lock (t.bname ^ ".read");
    ignore (M.Cell.fetch_and_add t.readers.(slot) (-1))

  let write_lock t =
    (* Take the writer flag (writers exclude each other on it), then
       sweep every per-cpu slot until it drains.  Fast path: no writer
       queued and the flag is free — one test-and-set, exactly the
       pre-gate sequence.  Contended path: queue FIFO on the ticket
       gate; readers defer while [pending] > 0, so the herd cannot
       overtake the queued writers. *)
    let contended_flag () =
      let my = Atomic.fetch_and_add t.wq_ticket 1 in
      Atomic.incr t.pending;
      let rec turn spins =
        if Atomic.get t.wq_grant = my then spins
        else begin
          M.spin_pause ();
          turn (spins + 1)
        end
      in
      let rec flag spins =
        if M.Cell.get t.writer = 0 && M.Cell.test_and_set t.writer = 0 then
          spins
        else begin
          M.spin_pause ();
          flag (spins + 1)
        end
      in
      let s = flag (turn 1) in
      (* Flag in hand: pass the turn to the next queued writer (it will
         contend the flag at our release) and leave the reader gate up
         if — and only if — someone is still queued behind us. *)
      Atomic.incr t.wq_grant;
      Atomic.decr t.pending;
      s
    in
    let spins =
      ref
        (if
           Atomic.get t.pending = 0
           && M.Cell.get t.writer = 0
           && M.Cell.test_and_set t.writer = 0
         then 0
         else contended_flag ())
    in
    let sweep = ref 0 in
    for i = 0 to n_slots - 1 do
      while M.Cell.get t.readers.(i) <> 0 do
        incr sweep;
        M.spin_pause ()
      done
    done;
    spins := !spins + !sweep;
    Obs_metrics.observe ~cpu:(M.current_cpu ()) h_sweep !sweep;
    if Obs_span.enabled () then
      Obs_span.enter Obs_span.Lock (t.bname ^ ".write");
    !spins

  let write_unlock t =
    Obs_span.exit Obs_span.Lock (t.bname ^ ".write");
    M.Cell.set t.writer 0

  let with_read t f =
    let slot = read_lock t in
    match f () with
    | v ->
        read_unlock t ~slot;
        v
    | exception e ->
        read_unlock t ~slot;
        raise e

  let with_write t f =
    ignore (write_lock t);
    match f () with
    | v ->
        write_unlock t;
        v
    | exception e ->
        write_unlock t;
        raise e

  let is_locked t =
    M.Cell.get t.writer <> 0
    || Array.exists (fun r -> M.Cell.get r <> 0) t.readers

  (* The writer side alone satisfies {!Mach_core.Lock_proto.S}: useful for
     conformance tests and for instantiating a Simple_lock over the
     brlock's writer path. *)
  module Writer = struct
    type nonrec t = t

    let proto_name = "brlock-writer"
    let make ~name = make ~name
    let acquire = write_lock

    let try_acquire t =
      Atomic.get t.pending = 0
      && M.Cell.get t.writer = 0
      && M.Cell.test_and_set t.writer = 0
      && begin
           let clear = ref true in
           for i = 0 to n_slots - 1 do
             if M.Cell.get t.readers.(i) <> 0 then clear := false
           done;
           if !clear then true
           else begin
             M.Cell.set t.writer 0;
             false
           end
         end

    let release = write_unlock
    let is_locked = is_locked
  end
end
