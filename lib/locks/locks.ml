(* The scalable-lock suite, bundled per machine and packaged as
   {!Mach_core.Lock_proto.factory} values so [Simple_lock.make ?proto]
   (and through it [Complex_lock.make ?proto]) can be instantiated over
   any protocol. *)

module Lock_proto = Mach_core.Lock_proto

module Make (M : Mach_core.Machine_intf.MACHINE) = struct
  module Ticket = Ticket_lock.Make (M)
  module Mcs = Mcs_lock.Make (M)
  module Anderson = Anderson_lock.Make (M)
  module Brlock = Brlock.Make (M)
  module Scache = Scache_rwlock.Make (M)

  let pack (type a) (module P : Lock_proto.S with type t = a) =
    {
      Lock_proto.fname = P.proto_name;
      instantiate =
        (fun ~name -> Lock_proto.Instance ((module P), P.make ~name));
    }

  let ticket = pack (module Ticket)
  let mcs = pack (module Mcs)
  let anderson = pack (module Anderson)
  let brlock_writer = pack (module Brlock.Writer)
  let scache_writer = pack (module Scache.Writer)

  (* The queue-lock mutexes, in table order. *)
  let all = [ ticket; mcs; anderson ]

  let factory_of_string s =
    List.find_opt
      (fun f -> String.equal f.Lock_proto.fname s)
      (all @ [ brlock_writer; scache_writer ])
end
