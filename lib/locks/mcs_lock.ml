(* MCS queue lock (Mellor-Crummey & Scott, 1991).

   Waiters form an explicit queue: an acquire swaps its qnode's id into
   the lock's [tail] and, if there was a predecessor, links behind it and
   spins on its OWN qnode's [go] cell.  That cell is written exactly once
   — by the predecessor's release — so a waiter's spin loop runs entirely
   out of its local cache: zero bus transactions until the handoff store
   invalidates it.  This is the protocol's whole point, and it is visible
   directly in the simulator's [bus-txns] column (E15).

   Qnodes.  The canonical kernel implementation spins on a per-CPU qnode;
   in the simulator threads outnumber cpus and can be preempted (or
   chaos-migrated) mid-spin, so per-CPU reuse would let two waiters share
   a node.  Instead each lock preallocates a circular pool of qnodes and
   acquires allocate slots round-robin.  Preallocation also keeps cell
   identities independent of the schedule, which the model checker's
   footprint comparison (lib/mc) relies on; the pool index lives in an
   ordinary OCaml [Atomic] because it is bookkeeping (the analogue of
   "my qnode's address"), not simulated shared memory.  A slot is in
   flight from acquire to consumed handoff, so the pool bounds concurrent
   *threads* per lock, not total acquisitions: [pool_size] must exceed
   the thread count, which 128 does for every workload here (the
   simulator tops out at 64 cpus).

   The explicit handoff is also a new fault surface: [M.handoff_fault]
   lets the chaos layer drop the [go] store, stranding the successor in a
   local spin on a lock nobody holds — the queue-lock analogue of the
   paper's section 6 lost wakeup, reported by the deadlock analyzer as a
   "lost handoff". *)

module Obs_metrics = Mach_obs.Obs_metrics

module Make (M : Mach_core.Machine_intf.MACHINE) = struct
  (* Explicit-handoff count across every MCS lock of this machine. *)
  let m_handoffs = Obs_metrics.counter "lock.handoffs"
  let m_dropped = Obs_metrics.counter "lock.handoffs_dropped"

  type qnode = {
    go : M.Cell.t; (* 0 = granted; written once, by the predecessor *)
    next : M.Cell.t; (* successor's qnode id; 0 = none yet *)
  }

  type t = {
    tail : M.Cell.t; (* qnode id of the last waiter; 0 = free *)
    pool : qnode array; (* slot for qnode id q is pool.(q - 1) *)
    alloc : int Atomic.t;
    mutable holder : int; (* holder's qnode id, acquire -> release *)
  }

  let proto_name = "mcs"
  let pool_size = 128

  let make ~name =
    {
      tail = M.Cell.make ~name:(name ^ ".tail") 0;
      pool =
        Array.init pool_size (fun i ->
            {
              go = M.Cell.make ~name:(Printf.sprintf "%s.q%d.go" name i) 0;
              next = M.Cell.make ~name:(Printf.sprintf "%s.q%d.next" name i) 0;
            });
      alloc = Atomic.make 0;
      holder = 0;
    }

  let node t qid = t.pool.(qid - 1)

  let fresh_qnode t =
    let qid = (Atomic.fetch_and_add t.alloc 1 mod pool_size) + 1 in
    (* Reset the link before publishing the id via the tail swap; [go] is
       only raised on the contended path, after the swap reveals a
       predecessor, so the uncontended acquire is set + swap. *)
    M.Cell.set (node t qid).next 0;
    qid

  let acquire t =
    let qid = fresh_qnode t in
    let qn = node t qid in
    let pred = M.Cell.swap t.tail qid in
    let spins =
      if pred = 0 then 0
      else begin
        M.Cell.set qn.go 1;
        M.Cell.set (node t pred).next qid;
        let rec spin spins =
          if M.Cell.get qn.go = 0 then spins
          else begin
            M.spin_pause ();
            spin (spins + 1)
          end
        in
        spin 1
      end
    in
    t.holder <- qid;
    spins

  let try_acquire t =
    M.Cell.get t.tail = 0
    && begin
         (* A failed race burns the slot, but an unpublished slot is dead
            (never linked, never spun on), so pool reuse stays safe. *)
         let qid = fresh_qnode t in
         M.Cell.compare_and_swap t.tail ~expected:0 ~desired:qid
         && begin
              t.holder <- qid;
              true
            end
       end

  let handoff t qn =
    let succ = M.Cell.get qn.next in
    if M.handoff_fault () then
      Obs_metrics.incr ~cpu:(M.current_cpu ()) m_dropped
    else begin
      Obs_metrics.incr ~cpu:(M.current_cpu ()) m_handoffs;
      M.Cell.set (node t succ).go 0
    end

  let release t =
    let qid = t.holder in
    let qn = node t qid in
    if M.Cell.get qn.next <> 0 then handoff t qn
    else if M.Cell.compare_and_swap t.tail ~expected:qid ~desired:0 then ()
    else begin
      (* A successor swapped itself in but has not linked yet; wait for
         the link, then hand off. *)
      let rec wait () =
        if M.Cell.get qn.next = 0 then begin
          M.spin_pause ();
          wait ()
        end
      in
      wait ();
      handoff t qn
    end

  let is_locked t = M.Cell.get t.tail <> 0
end
