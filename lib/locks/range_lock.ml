(* Range locks: readers/writer locks over address ranges (Kogan, Dice &
   Issa, "Scalable Range Locks for Scalable Address Spaces").

   This is the list-based variant: every request — granted or waiting —
   sits in one list ordered by arrival, protected by an internal simple
   lock.  A request for [lo, hi) conflicts with another iff the ranges
   overlap and at least one side wants write access, and it is granted
   exactly when no EARLIER request conflicts with it.  Grant order is
   therefore FIFO-fair: a writer cannot be starved by a stream of later
   readers, and a reader never overtakes a queued writer it overlaps
   (the same no-barging rule the paper's complex locks get from
   want_write/want_upgrade).

   Waiting is the standard sleep protocol: assert_wait on the lock's
   (broadcast) event, drop the interlock, thread_block, retry.  Because
   grants are monotone — requests only ever leave the list ahead of us —
   a request that becomes grantable stays grantable.

   The RANGE_LOCK signature ([S]) deliberately hides the list so a
   skip-list variant (the paper's scalable implementation) can slot in
   behind the same interface later. *)

module Obs_metrics = Mach_obs.Obs_metrics
module Obs_profile = Mach_obs.Obs_profile
module Obs_trace = Mach_obs.Obs_trace
module Obs_event = Mach_obs.Obs_event
module Obs_span = Mach_obs.Obs_span
module Waits_for = Mach_core.Waits_for

type mode = Read | Write

let mode_name = function Read -> "read" | Write -> "write"

(* Whole-lock range: acquiring [whole_lo, whole_hi) in write mode is the
   coarse lock's lock_write — it conflicts with every other request. *)
let whole_lo = 0
let whole_hi = max_int

module type S = sig
  type t
  type handle

  val proto_name : string
  val make : ?name:string -> unit -> t
  val name : t -> string

  val acquire : t -> lo:int -> hi:int -> mode -> handle
  (** Block until no earlier conflicting request exists, then hold
      [lo, hi) in [mode].  Ranges are half-open; [hi <= lo] is an error. *)

  val try_acquire : t -> lo:int -> hi:int -> mode -> handle option
  (** Acquire only if no conflicting request (granted or queued — no
      barging past FIFO waiters) exists right now. *)

  val release : t -> handle -> unit
  (** Drop a held range and wake conflicting waiters.  Must be called by
      the acquiring thread (spans and profile holds are per-thread). *)

  val holders : t -> (int * int * mode) list
  (** Diagnostic: currently granted ranges. *)

  val waiting_requests : t -> int
  (** Diagnostic: momentary number of queued (not yet granted) requests. *)
end

module Make
    (M : Mach_core.Machine_intf.MACHINE)
    (Slock : module type of Mach_core.Simple_lock.Make (M))
    (E : module type of Mach_core.Event.Make (M) (Slock)) : S = struct
  (* Same named metrics as the simple and complex locks: interning is
     idempotent, so range-lock waits land in the same "lock.*"
     aggregates. *)
  let m_acquisitions = Obs_metrics.counter "lock.acquisitions"
  let m_contentions = Obs_metrics.counter "lock.contentions"
  let h_wait = Obs_metrics.histogram "lock.wait_cycles"
  let h_hold = Obs_metrics.histogram "lock.hold_cycles"
  let proto_name = "range-list"

  type req = {
    r_lo : int;
    r_hi : int;
    r_mode : mode;
    r_seq : int; (* arrival order; grants strictly respect it *)
    r_thread : M.thread;
    mutable r_acquired_at : int; (* cycle clock at grant *)
  }

  type handle = req

  type t = {
    rl_id : int;
    lname : string;
    il : Slock.t; (* protects reqs / next_seq / waiting *)
    event : E.event;
    mutable reqs : req list; (* ascending r_seq *)
    mutable next_seq : int;
    mutable waiting : bool; (* someone is blocked on [event] *)
  }

  let next_id = Atomic.make 0

  let make ?name () =
    let id = Atomic.fetch_and_add next_id 1 in
    let lname =
      match name with Some n -> n | None -> Printf.sprintf "range%d" id
    in
    let event = E.fresh_event () in
    (* Sleep waits surface as waits on [event]; alias it to the lock's
       whole-range node so the deadlock detector names the lock even
       when the finer per-range edges are not being tracked. *)
    Waits_for.note_event_resource ~event
      (Waits_for.Range { uid = id; name = lname; lo = whole_lo; hi = whole_hi });
    {
      rl_id = id;
      lname;
      il = Slock.make ~name:(lname ^ ".interlock") ();
      event;
      reqs = [];
      next_seq = 0;
      waiting = false;
    }

  let name t = t.lname

  let conflicts a b =
    a.r_lo < b.r_hi && b.r_lo < a.r_hi
    && (a.r_mode = Write || b.r_mode = Write)

  (* Requests ahead of [r] (in arrival order) that exclude it.  Caller
     holds the interlock. *)
  let earlier_conflicts t r =
    List.filter (fun r' -> r'.r_seq < r.r_seq && conflicts r' r) t.reqs

  let granted t r =
    List.for_all (fun r' -> r'.r_seq >= r.r_seq || not (conflicts r' r)) t.reqs

  let wf_res t r =
    Waits_for.Range { uid = t.rl_id; name = t.lname; lo = r.r_lo; hi = r.r_hi }

  let obs_acquire t ?blocker ~waits ~wait_cycles () =
    let cpu = M.current_cpu () in
    Obs_metrics.incr ~cpu m_acquisitions;
    if waits > 0 then Obs_metrics.incr ~cpu m_contentions;
    Obs_metrics.observe ~cpu h_wait wait_cycles;
    Obs_profile.note_acquire
      ~tid:(M.thread_id (M.self ()))
      ~name:t.lname ~contended:(waits > 0) ~wait_cycles;
    if Obs_span.enabled () then begin
      (match blocker with
      | Some h when waits > 0 ->
          Obs_span.blocked ~kind:Obs_span.Lock ~name:t.lname
            ~holder_tid:(M.thread_id h) ~wait_cycles
      | _ -> ());
      Obs_span.enter Obs_span.Lock t.lname
    end;
    if Obs_trace.enabled () then
      Obs_trace.emit
        (Obs_event.Lock_acquire { lock = t.lname; spins = waits; wait_cycles })

  let acquire t ~lo ~hi mode =
    if hi <= lo then
      invalid_arg
        (Printf.sprintf "Range_lock.acquire %s: empty range [%d,%d)" t.lname lo
           hi);
    Slock.lock t.il;
    let self = M.self () in
    let seq = t.next_seq in
    t.next_seq <- seq + 1;
    let r =
      {
        r_lo = lo;
        r_hi = hi;
        r_mode = mode;
        r_seq = seq;
        r_thread = self;
        r_acquired_at = 0;
      }
    in
    t.reqs <- t.reqs @ [ r ];
    let t0 = M.now_cycles () in
    (* Blocked-by attribution: the earliest conflicting request's thread
       (usually a granted holder; with a FIFO chain, the head of the
       chain we are queued behind). *)
    let blocker =
      match earlier_conflicts t r with [] -> None | b :: _ -> Some b.r_thread
    in
    let tid = M.thread_id self and tname = M.thread_name self in
    let waits = ref 0 in
    let rec wait_loop () =
      match earlier_conflicts t r with
      | [] -> ()
      | blockers ->
          incr waits;
          (* One wait edge per conflicting holder's exact range node, so
             deadlock cycles thread through the ranges actually held. *)
          let edges =
            if Waits_for.tracking () then List.map (wf_res t) blockers else []
          in
          List.iter (fun res -> Waits_for.note_wait ~tid ~tname res) edges;
          t.waiting <- true;
          E.assert_wait t.event;
          Slock.unlock t.il;
          ignore (E.thread_block ());
          Slock.lock t.il;
          List.iter (fun res -> Waits_for.note_wait_done ~tid res) edges;
          wait_loop ()
    in
    wait_loop ();
    r.r_acquired_at <- M.now_cycles ();
    obs_acquire t ?blocker ~waits:!waits
      ~wait_cycles:(if !waits > 0 then max 0 (M.now_cycles () - t0) else 0)
      ();
    if Waits_for.tracking () then Waits_for.note_hold ~tid ~tname (wf_res t r);
    Slock.unlock t.il;
    r

  let try_acquire t ~lo ~hi mode =
    if hi <= lo then
      invalid_arg
        (Printf.sprintf "Range_lock.try_acquire %s: empty range [%d,%d)"
           t.lname lo hi);
    Slock.lock t.il;
    let self = M.self () in
    let r =
      {
        r_lo = lo;
        r_hi = hi;
        r_mode = mode;
        r_seq = t.next_seq;
        r_thread = self;
        r_acquired_at = 0;
      }
    in
    if List.exists (fun r' -> conflicts r' r) t.reqs then begin
      Slock.unlock t.il;
      None
    end
    else begin
      t.next_seq <- r.r_seq + 1;
      t.reqs <- t.reqs @ [ r ];
      r.r_acquired_at <- M.now_cycles ();
      obs_acquire t ~waits:0 ~wait_cycles:0 ();
      if Waits_for.tracking () then
        Waits_for.note_hold ~tid:(M.thread_id self)
          ~tname:(M.thread_name self) (wf_res t r);
      Slock.unlock t.il;
      Some r
    end

  let release t r =
    Slock.lock t.il;
    if not (List.memq r t.reqs) then begin
      Slock.unlock t.il;
      M.fatal
        (Printf.sprintf
           "range lock %s: release of a request not held ([%#x,%#x) %s)"
           t.lname r.r_lo r.r_hi (mode_name r.r_mode))
    end;
    t.reqs <- List.filter (fun r' -> r' != r) t.reqs;
    let held_cycles = max 0 (M.now_cycles () - r.r_acquired_at) in
    if held_cycles > 0 then
      Obs_metrics.observe ~cpu:(M.current_cpu ()) h_hold held_cycles;
    Obs_profile.note_release
      ~tid:(M.thread_id r.r_thread)
      ~name:t.lname ~held_cycles;
    Obs_span.exit Obs_span.Lock t.lname;
    if Obs_trace.enabled () then
      Obs_trace.emit (Obs_event.Lock_release { lock = t.lname; held_cycles });
    if Waits_for.tracking () then
      Waits_for.note_release ~tid:(M.thread_id r.r_thread) (wf_res t r);
    (* Mach's wakeup is broadcast: every waiter re-checks its own grant
       condition; newly admissible disjoint requests all proceed. *)
    if t.waiting then begin
      t.waiting <- false;
      ignore (E.thread_wakeup t.event)
    end;
    Slock.unlock t.il

  let holders t =
    Slock.with_lock t.il (fun () ->
        List.filter_map
          (fun r ->
            if granted t r then Some (r.r_lo, r.r_hi, r.r_mode) else None)
          t.reqs)

  let waiting_requests t =
    Slock.with_lock t.il (fun () ->
        List.length (List.filter (fun r -> not (granted t r)) t.reqs))
end
