(* scache-style distributed readers/writer lock.

   The verified-betrfs scache slice (SNIPPETS.md; ROADMAP item 4) ships
   the production form of the paper's dual-refcount memory objects:
   per-cpu atomic refcount slots, an [ExcLockPending] writer sweep that
   waits for every slot to drain, and an explicit acquisition state
   machine.  This module generalizes our {!Brlock} into that protocol.

   Acquisition states (the names are the scache protocol's own):

     reader:  ReadPending  --inc own slot-->  ReadCounted
              ReadCounted  --exc is Free-->   Obtained
              ReadCounted  --exc raised-->    back out (dec), wait, retry
     writer:  spin on the FIFO ticket gate until granted
              Free --CAS--> ExcLockPending    (announce; new readers defer)
              sweep every slot to zero        (drain ReadCounted readers)
              ExcLockPending --> ExcLockObtained

   Two deliberate differences from {!Brlock}:

   - Writers queue on a ticket/grant cell pair instead of racing a
     test-and-set flag, so writer admission is FIFO and release is an
     explicit handoff store to the next ticket — which makes it a fault
     surface: [M.handoff_fault] can drop the grant store when a
     successor is queued, stranding it in a local spin on a lock nobody
     holds (the "lost handoff" the deadlock analyzer reports).

   - The writer announce is a compare-and-swap [Free -> ExcLockPending]
     that can only be attempted by the granted ticket holder, so it
     failing is a protocol-invariant violation ([M.fatal]), not a retry
     — exactly the kind of claim the lib/mc matrix checks exhaustively.

   Slot identity follows brlock: the slot is chosen by the cpu at
   read-lock time and returned as a token so the matching decrement hits
   the same slot even if the thread migrated (kernels disable preemption
   here; the simulator cannot). *)

module Obs_metrics = Mach_obs.Obs_metrics
module Obs_span = Mach_obs.Obs_span
module Waits_for = Mach_core.Waits_for

module Make (M : Mach_core.Machine_intf.MACHINE) = struct
  (* Cycles a writer spends sweeping reader slots, across all scache
     locks of this machine. *)
  let h_sweep = Obs_metrics.histogram "lock.scache.sweep_spins"
  let m_handoffs = Obs_metrics.counter "lock.scache.handoffs"
  let m_dropped = Obs_metrics.counter "lock.scache.handoffs_dropped"

  (* The [exc] cell holds the writer-side state machine. *)
  let free = 0
  let exc_lock_pending = 1
  let exc_lock_obtained = 2

  type t = {
    sname : string;
    id : int;
    refcounts : M.Cell.t array; (* per-cpu reader refcount slots *)
    exc : M.Cell.t; (* Free / ExcLockPending / ExcLockObtained *)
    wticket : M.Cell.t; (* next writer ticket to hand out *)
    wgrant : M.Cell.t; (* ticket currently admitted to [exc] *)
    mutable holder_ticket : int; (* granted ticket, acquire -> release *)
  }

  let proto_name = "scache"

  (* Same ceiling and mod-slot policy as brlock: same-slot sharing is a
     contention cost, never an error. *)
  let n_slots = 64
  let next_id = Atomic.make 0

  let make ~name =
    {
      sname = name;
      id = Atomic.fetch_and_add next_id 1;
      refcounts =
        Array.init n_slots (fun i ->
            M.Cell.make ~name:(Printf.sprintf "%s.rc%d" name i) 0);
      exc = M.Cell.make ~name:(name ^ ".exc") free;
      wticket = M.Cell.make ~name:(name ^ ".wticket") 0;
      wgrant = M.Cell.make ~name:(name ^ ".wgrant") 0;
      holder_ticket = 0;
    }

  (* Raw-path waits-for edges.  When the writer side is instantiated
     under Simple_lock (the {!Writer} LOCK_PROTO below), Simple_lock
     reports its own Slock edges, so the protocol stays silent there;
     the raw read/write API used directly (vm_cache, scenarios) reports
     here instead.  The uid offset keeps these nodes disjoint from
     Simple_lock's uid counter. *)
  let wf_uid_base = 1_000_000
  let wf_res t = Waits_for.Slock { uid = wf_uid_base + t.id; name = t.sname }

  let wf_wait t =
    if Waits_for.tracking () then
      Waits_for.note_wait
        ~tid:(M.thread_id (M.self ()))
        ~tname:(M.thread_name (M.self ()))
        (wf_res t)

  let wf_wait_done t =
    if Waits_for.tracking () then
      Waits_for.note_wait_done ~tid:(M.thread_id (M.self ())) (wf_res t)

  let wf_hold t =
    if Waits_for.tracking () then
      Waits_for.note_hold
        ~tid:(M.thread_id (M.self ()))
        ~tname:(M.thread_name (M.self ()))
        (wf_res t)

  let wf_release t =
    if Waits_for.tracking () then
      Waits_for.note_release ~tid:(M.thread_id (M.self ())) (wf_res t)

  (* Reader acquisition: ReadPending -> ReadCounted -> Obtained, with
     the ReadCounted -> back-out transition when a writer has announced.
     Readers defer during both ExcLockPending (so the sweep terminates:
     each reader pulses its slot at most once per write) and
     ExcLockObtained (the write is in progress). *)
  type read_phase = Read_pending | Read_counted | Obtained of int

  let read_lock_raw t ~wf =
    let slot = M.current_cpu () mod n_slots in
    let mine = t.refcounts.(slot) in
    let rec step phase =
      match phase with
      | Read_pending ->
          ignore (M.Cell.fetch_and_add mine 1);
          step Read_counted
      | Read_counted ->
          if M.Cell.get t.exc = free then step (Obtained slot)
          else begin
            (* Back out and let the writer's sweep drain; wait for the
               exclusive side to clear before re-entering ReadPending. *)
            ignore (M.Cell.fetch_and_add mine (-1));
            if wf then wf_wait t;
            let rec wait () =
              if M.Cell.get t.exc <> free then begin
                M.spin_pause ();
                wait ()
              end
            in
            wait ();
            if wf then wf_wait_done t;
            step Read_pending
          end
      | Obtained slot -> slot
    in
    let slot = step Read_pending in
    if wf then wf_hold t;
    (* Like brlock, the raw lock sits outside Simple_lock's
       instrumentation and opens its own hold spans; read and write
       sides are distinct sites because their costs differ by design. *)
    if Obs_span.enabled () then
      Obs_span.enter Obs_span.Lock (t.sname ^ ".read");
    slot

  let read_lock t = read_lock_raw t ~wf:true

  let read_unlock t ~slot =
    Obs_span.exit Obs_span.Lock (t.sname ^ ".read");
    wf_release t;
    ignore (M.Cell.fetch_and_add t.refcounts.(slot) (-1))

  let write_lock_raw t ~wf =
    (* FIFO admission: take a ticket, spin until granted. *)
    let my = M.Cell.fetch_and_add t.wticket 1 in
    if wf then wf_wait t;
    let rec gate spins =
      if M.Cell.get t.wgrant = my then spins
      else begin
        M.spin_pause ();
        gate (spins + 1)
      end
    in
    let spins = ref (gate 0) in
    (* Announce: Free -> ExcLockPending.  Only the granted ticket holder
       reaches this CAS, and the previous writer restored Free before
       granting, so failure is a protocol violation, not contention. *)
    if
      not (M.Cell.compare_and_swap t.exc ~expected:free ~desired:exc_lock_pending)
    then
      M.fatal
        (Printf.sprintf
           "scache %s: exc not Free at granted ticket %d (protocol invariant)"
           t.sname my);
    (* Sweep: wait for every refcount slot to drain.  New readers see
       ExcLockPending and back out, so each slot's count is monotonically
       pulsing toward zero. *)
    let sweep = ref 0 in
    for i = 0 to n_slots - 1 do
      while M.Cell.get t.refcounts.(i) <> 0 do
        incr sweep;
        M.spin_pause ()
      done
    done;
    M.Cell.set t.exc exc_lock_obtained;
    t.holder_ticket <- my;
    spins := !spins + !sweep;
    Obs_metrics.observe ~cpu:(M.current_cpu ()) h_sweep !sweep;
    if wf then begin
      wf_wait_done t;
      wf_hold t
    end;
    if Obs_span.enabled () then
      Obs_span.enter Obs_span.Lock (t.sname ^ ".write");
    !spins

  let write_lock t = write_lock_raw t ~wf:true

  let write_unlock_raw t ~wf =
    Obs_span.exit Obs_span.Lock (t.sname ^ ".write");
    if wf then wf_release t;
    let next = t.holder_ticket + 1 in
    M.Cell.set t.exc free;
    (* Release is an explicit handoff: grant the next ticket.  When a
       successor is already queued the store is a droppable handoff
       (chaos: the successor spins on [wgrant] which nobody will ever
       advance — a lost handoff). *)
    let successor_queued = M.Cell.get t.wticket <> next in
    if successor_queued && M.handoff_fault () then
      Obs_metrics.incr ~cpu:(M.current_cpu ()) m_dropped
    else begin
      if successor_queued then
        Obs_metrics.incr ~cpu:(M.current_cpu ()) m_handoffs;
      M.Cell.set t.wgrant next
    end

  let write_unlock t = write_unlock_raw t ~wf:true

  let with_read t f =
    let slot = read_lock t in
    match f () with
    | v ->
        read_unlock t ~slot;
        v
    | exception e ->
        read_unlock t ~slot;
        raise e

  let with_write t f =
    ignore (write_lock t);
    match f () with
    | v ->
        write_unlock t;
        v
    | exception e ->
        write_unlock t;
        raise e

  let is_locked t =
    M.Cell.get t.exc <> free
    || M.Cell.get t.wticket <> M.Cell.get t.wgrant
    || Array.exists (fun r -> M.Cell.get r <> 0) t.refcounts

  (* The writer side alone satisfies {!Mach_core.Lock_proto.S}, so
     Simple_lock/Complex_lock can instantiate the protocol.  Simple_lock
     supplies the waits-for edges on this path. *)
  module Writer = struct
    type nonrec t = t

    let proto_name = proto_name
    let make ~name = make ~name
    let acquire t = write_lock_raw t ~wf:false

    (* Non-barging: only succeeds when no ticket is outstanding, by
       taking the front ticket with a CAS.  A failed sweep backs out by
       restoring Free and granting our own (now burned) ticket. *)
    let try_acquire t =
      let g = M.Cell.get t.wgrant in
      M.Cell.get t.wticket = g
      && M.Cell.compare_and_swap t.wticket ~expected:g ~desired:(g + 1)
      && begin
           if
             not
               (M.Cell.compare_and_swap t.exc ~expected:free
                  ~desired:exc_lock_pending)
           then
             M.fatal
               (Printf.sprintf
                  "scache %s: exc not Free at granted ticket %d (protocol \
                   invariant)"
                  t.sname g);
           let clear = ref true in
           for i = 0 to n_slots - 1 do
             if M.Cell.get t.refcounts.(i) <> 0 then clear := false
           done;
           if !clear then begin
             M.Cell.set t.exc exc_lock_obtained;
             t.holder_ticket <- g;
             true
           end
           else begin
             M.Cell.set t.exc free;
             M.Cell.set t.wgrant (g + 1);
             false
           end
         end

    let release t = write_unlock_raw t ~wf:false
    let is_locked = is_locked
  end
end
