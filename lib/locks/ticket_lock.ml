(* Ticket lock: FIFO by construction, with proportional backoff.

   One fetch-and-increment takes a ticket; the holder's release publishes
   the next ticket in [owner].  Every waiter spins reading the single
   [owner] cell — each release therefore still invalidates all waiters
   (one miss per waiter per handoff), but unlike tas there is exactly one
   interlocked bus operation per acquisition no matter how contended the
   lock is, and the grant order is the arrival order.  The proportional
   backoff (Mellor-Crummey & Scott, 1991) spaces re-reads by the caller's
   distance from the head of the queue, trimming the per-handoff miss
   storm. *)

module Make (M : Mach_core.Machine_intf.MACHINE) = struct
  type t = {
    next_ticket : M.Cell.t;
    owner : M.Cell.t;
    (* Ticket of the current holder, stashed between acquire and release.
       Written only by the thread inside the critical section, published
       to its successor by the [owner] store of [release]. *)
    mutable holder_ticket : int;
  }

  let proto_name = "ticket"

  let make ~name =
    {
      next_ticket = M.Cell.make ~name:(name ^ ".next") 0;
      owner = M.Cell.make ~name:(name ^ ".owner") 0;
      holder_ticket = 0;
    }

  (* Delay proportional to queue position: a waiter [d] tickets from the
     head backs off [d * unit] cycles between probes, capped by the
     machine's backoff cap so a long queue cannot overshoot the grant. *)
  let backoff_unit = 16

  let acquire t =
    let my = M.Cell.fetch_and_add t.next_ticket 1 in
    let cap = M.spin_max_backoff () in
    let rec spin spins =
      let cur = M.Cell.get t.owner in
      if cur = my then spins
      else begin
        M.spin_pause ();
        M.cycles (Stdlib.min ((my - cur) * backoff_unit) cap);
        spin (spins + 1)
      end
    in
    let spins = spin 0 in
    t.holder_ticket <- my;
    spins

  let try_acquire t =
    let cur = M.Cell.get t.owner in
    let nt = M.Cell.get t.next_ticket in
    nt = cur
    && M.Cell.compare_and_swap t.next_ticket ~expected:cur ~desired:(cur + 1)
    && begin
         t.holder_ticket <- cur;
         true
       end

  let release t = M.Cell.set t.owner (t.holder_ticket + 1)
  let is_locked t = M.Cell.get t.owner <> M.Cell.get t.next_ticket
end
