module C = Mach_sim.Sim_config
module E = Mach_sim.Sim_engine

type mode = Naive | Sleep_sets | Dpor

let mode_name = function
  | Naive -> "naive"
  | Sleep_sets -> "sleep"
  | Dpor -> "dpor"

let mode_of_string = function
  | "naive" -> Some Naive
  | "sleep" -> Some Sleep_sets
  | "dpor" -> Some Dpor
  | _ -> None

type trace = C.mc_transition array

(* ------------------------------------------------------------------ *)
(* Trace text format                                                    *)
(* ------------------------------------------------------------------ *)

(* One transition per line.  The human-readable name (interrupt, frame or
   thread) comes last and may contain spaces; replay matches on the
   structural fields (cpu, slot, tseq), never on names. *)
let pp_transition ppf (t : C.mc_transition) =
  match t.mc_what with
  | C.Mc_deliver { slot; intr; level } ->
      Format.fprintf ppf "c%d deliver slot=%d level=%s %s" t.mc_cpu slot level
        intr
  | C.Mc_resume { frame } -> Format.fprintf ppf "c%d resume %s" t.mc_cpu frame
  | C.Mc_dispatch { thread; tseq } ->
      Format.fprintf ppf "c%d dispatch tseq=%d %s" t.mc_cpu tseq thread

let trace_to_string (tr : trace) =
  let b = Buffer.create 256 in
  Array.iter
    (fun t -> Buffer.add_string b (Format.asprintf "%a@." pp_transition t))
    tr;
  Buffer.contents b

let trace_of_string s =
  let parse_line ln lineno =
    let fail what =
      Error (Printf.sprintf "trace line %d: %s: %S" lineno what ln)
    in
    match String.split_on_char ' ' ln with
    | cpu :: "deliver" :: slot :: level :: rest
      when String.length cpu > 1 && cpu.[0] = 'c' -> (
        match
          ( int_of_string_opt (String.sub cpu 1 (String.length cpu - 1)),
            String.split_on_char '=' slot,
            String.split_on_char '=' level )
        with
        | Some mc_cpu, [ "slot"; s ], [ "level"; l ] -> (
            match int_of_string_opt s with
            | Some slot ->
                Ok
                  {
                    C.mc_cpu;
                    mc_what =
                      C.Mc_deliver
                        { slot; intr = String.concat " " rest; level = l };
                  }
            | None -> fail "bad slot")
        | _ -> fail "bad deliver line")
    | cpu :: "resume" :: rest when String.length cpu > 1 && cpu.[0] = 'c' -> (
        match int_of_string_opt (String.sub cpu 1 (String.length cpu - 1)) with
        | Some mc_cpu ->
            Ok
              {
                C.mc_cpu;
                mc_what = C.Mc_resume { frame = String.concat " " rest };
              }
        | None -> fail "bad cpu")
    | cpu :: "dispatch" :: tseq :: rest
      when String.length cpu > 1 && cpu.[0] = 'c' -> (
        match
          ( int_of_string_opt (String.sub cpu 1 (String.length cpu - 1)),
            String.split_on_char '=' tseq )
        with
        | Some mc_cpu, [ "tseq"; n ] -> (
            match int_of_string_opt n with
            | Some tseq ->
                Ok
                  {
                    C.mc_cpu;
                    mc_what =
                      C.Mc_dispatch { thread = String.concat " " rest; tseq };
                  }
            | None -> fail "bad tseq")
        | _ -> fail "bad dispatch line")
    | _ -> fail "unrecognized transition"
  in
  let lines =
    String.split_on_char '\n' s
    |> List.map String.trim
    |> List.filteri (fun _ ln -> ln <> "" && ln.[0] <> '#')
  in
  let rec go acc lineno = function
    | [] -> Ok (Array.of_list (List.rev acc))
    | ln :: rest -> (
        match parse_line ln lineno with
        | Ok t -> go (t :: acc) (lineno + 1) rest
        | Error _ as e -> e)
  in
  go [] 1 lines

(* ------------------------------------------------------------------ *)
(* Dependence                                                           *)
(* ------------------------------------------------------------------ *)

(* Two accesses conflict when reordering the slices that made them could
   change an outcome: same cell with a write on either side, the same
   thread's scheduling state, the shared run-queue order, or the same
   cpu's interrupt plumbing (a pending-queue access and an spl change on
   one cpu conflict with each other: spl gates delivery). *)
let access_conflict a b =
  match (a, b) with
  | C.Mc_cell x, C.Mc_cell y -> x.cell = y.cell && (x.write || y.write)
  | C.Mc_thread x, C.Mc_thread y -> x = y
  | C.Mc_runq, C.Mc_runq -> true
  | C.Mc_intrq x, C.Mc_intrq y | C.Mc_spl x, C.Mc_spl y -> x = y
  | C.Mc_intrq x, C.Mc_spl y | C.Mc_spl x, C.Mc_intrq y -> x = y
  | _ -> false

let fp_conflict f1 f2 =
  List.exists (fun a -> List.exists (fun b -> access_conflict a b) f2) f1

(* Transitions on the same cpu are always dependent (program order). *)
let dependent (t1 : C.mc_transition) fp1 (t2 : C.mc_transition) fp2 =
  t1.mc_cpu = t2.mc_cpu || fp_conflict fp1 fp2

let same_transition (a : C.mc_transition) (b : C.mc_transition) =
  a.mc_cpu = b.mc_cpu
  &&
  match (a.mc_what, b.mc_what) with
  | C.Mc_deliver x, C.Mc_deliver y -> x.slot = y.slot
  | C.Mc_resume _, C.Mc_resume _ -> true
  | C.Mc_dispatch x, C.Mc_dispatch y -> x.tseq = y.tseq
  | _ -> false

(* ------------------------------------------------------------------ *)
(* The DFS over choice prefixes                                         *)
(* ------------------------------------------------------------------ *)

(* One decision point on the current path.  The search is stateless in
   the Verisoft sense: only the path's nodes are retained, and switching
   a node's [chosen] branch re-executes the scenario from scratch,
   replaying the prefix by stored choice. *)
type node = {
  cands : C.mc_transition array;  (* enabled transitions, engine order *)
  costs : int array;  (* preemption cost of picking each candidate *)
  budget : int;  (* preemption budget on entry to this node *)
  locked : bool;  (* prefix frozen by the domain fan-out: never backtrack *)
  explored : bool array;
  backtrack : bool array;  (* Dpor: candidates scheduled for exploration *)
  mutable sleep : (C.mc_transition * C.mc_access list) list;
  mutable chosen : int;
  mutable fp : C.mc_access list;  (* footprint of [chosen], set at commit *)
  mutable vc : (string * int) list;
      (* per-process vector clock after [chosen]: process -> latest
         happens-before depth (Dpor mode only) *)
}

type failure = {
  f_trace : trace;
  f_kind : E.deadlock_kind option;
  f_report : string;
  f_preemptions : int;
}

type stats = {
  executions : int;
  pruned : int;
  transitions : int;
  choice_points : int;
  max_depth : int;
  truncated : int;
}

type result = {
  mode : mode;
  bound : int option;
  complete : bool;
  verified : bool;
  failure : failure option;
  stats : stats;
}

exception Cut
(* Every selectable candidate at a fresh node is asleep: this execution
   only commutes independent transitions of an already-explored one. *)

exception Diverged of string

type search = {
  s_mode : mode;
  s_bound : int;  (* max_int = unbounded *)
  s_cpus : int;
  mutable stack_arr : node array;  (* depth order; capacity >= stack_len *)
  mutable stack_len : int;  (* retained path length *)
  mutable depth : int;  (* current execution's depth *)
  mutable pending_sleep : (C.mc_transition * C.mc_access list) list;
  mutable st_executions : int;
  mutable st_pruned : int;
  mutable st_transitions : int;
  mutable st_choice_points : int;
  mutable st_max_depth : int;
  mutable st_truncated : int;
}

let push_node s node =
  if Array.length s.stack_arr = s.stack_len then begin
    let cap = max 64 (2 * s.stack_len) in
    let a = Array.make cap node in
    Array.blit s.stack_arr 0 a 0 s.stack_len;
    s.stack_arr <- a
  end;
  s.stack_arr.(s.stack_len) <- node;
  s.stack_len <- s.stack_len + 1

let trace_of_stack s =
  Array.map (fun n -> n.cands.(n.chosen)) (Array.sub s.stack_arr 0 s.depth)

let preemptions_of s tr_len =
  let p = ref 0 in
  for d = 0 to tr_len - 1 do
    let n = s.stack_arr.(d) in
    p := !p + n.costs.(n.chosen)
  done;
  !p

(* A candidate costs one unit of preemption budget iff taking it switches
   away from the previously-running cpu while that cpu could still run.
   There is always a zero-cost candidate: if the previous cpu is enabled,
   its own candidate costs zero; if it is not, nothing is preemptive. *)
let candidate_costs prev_cpu (cands : C.mc_transition array) =
  let prev_enabled =
    prev_cpu >= 0 && Array.exists (fun t -> t.C.mc_cpu = prev_cpu) cands
  in
  Array.map
    (fun t -> if prev_enabled && t.C.mc_cpu <> prev_cpu then 1 else 0)
    cands

let sleeping node i =
  List.exists (fun (t, _) -> same_transition t node.cands.(i)) node.sleep

let selectable node i =
  node.costs.(i) <= node.budget && not (sleeping node i)

(* A candidate the backtracking pass may still switch to. *)
let next_candidate s node =
  let n = Array.length node.cands in
  let ok = ref None in
  for i = 0 to n - 1 do
    if
      !ok = None && i <> node.chosen
      && (not node.explored.(i))
      && selectable node i
      && (s.s_mode <> Dpor || node.backtrack.(i))
    then ok := Some i
  done;
  !ok

(* The process a transition belongs to, for happens-before purposes.  A
   thread is one process across dispatches, resumes and migrations (its
   name is unique per run); an interrupt frame never migrates, so its
   delivery and its handler slices are keyed by name plus cpu — which
   also separates same-named interrupt instances aimed at different
   cpus.  Crucially this is *not* the cpu: which cpu a transition lands
   on is itself a scheduling choice, so two processes serialized onto
   one cpu are still unordered for race detection. *)
let proc_of (t : C.mc_transition) =
  match t.C.mc_what with
  | C.Mc_dispatch { thread; _ } -> thread
  | C.Mc_resume { frame } ->
      if String.length frame >= 5 && String.sub frame 0 5 = "intr:" then
        Printf.sprintf "%s@%d" frame t.C.mc_cpu
      else frame
  | C.Mc_deliver { intr; _ } -> Printf.sprintf "intr:%s@%d" intr t.C.mc_cpu

let vc_get r p = match List.assoc_opt p r with Some v -> v | None -> -1

let vc_put r p v =
  if vc_get r p >= v then r else (p, v) :: List.remove_assoc p r

(* DPOR backward race scan, run when transition [d] commits.  [r] is the
   running vector-clock join of the transitions that happen-before [d]
   (program order within a process, plus footprint conflicts); an
   earlier conflicting transition of another process not already ordered
   before [d] (r(its process) < its depth) is a race, and its node must
   also explore alternatives.  Because the alternative that reverses the
   race is not directly identifiable from the candidate list, we add
   every budget-eligible candidate at the racing node (a sound,
   conservative superset of the classic "the racing thread or all"
   rule). *)
let dpor_commit s node d =
  if s.s_mode = Dpor then begin
    let t = node.cands.(node.chosen) in
    let p = proc_of t in
    let r = ref [] in
    for d' = d - 1 downto 0 do
      let n' = s.stack_arr.(d') in
      let t' = n'.cands.(n'.chosen) in
      let p' = proc_of t' in
      if p' = p || fp_conflict n'.fp node.fp then begin
        if p' <> p && vc_get !r p' < d' then
          Array.iteri
            (fun i _ ->
              if n'.costs.(i) <= n'.budget then n'.backtrack.(i) <- true)
            n'.cands;
        List.iter (fun (q, v) -> r := vc_put !r q v) n'.vc
      end
    done;
    r := vc_put !r p d;
    node.vc <- !r
  end

(* The hooks driving one execution.  Depths below the retained stack
   replay the stored choice; beyond it, fresh nodes pick the cheapest
   (least-preemptive, lowest-index) selectable candidate. *)
let hooks_of s ~forced =
  let choose (cands : C.mc_transition array) =
    let d = s.depth in
    if d < s.stack_len then begin
      let node = s.stack_arr.(d) in
      if Array.length node.cands <> Array.length cands then begin
        let show a =
          String.concat " | "
            (Array.to_list
               (Array.map (fun t -> Format.asprintf "%a" pp_transition t) a))
        in
        raise
          (Diverged
             (Printf.sprintf
                "depth %d: %d candidates [%s], expected %d [%s]; prefix: %s" d
                (Array.length cands) (show cands) (Array.length node.cands)
                (show node.cands)
                (show (trace_of_stack { s with depth = d }))))
      end;
      s.depth <- d + 1;
      node.chosen
    end
    else begin
      let prev_cpu =
        if d = 0 then -1
        else
          let p = s.stack_arr.(d - 1) in
          p.cands.(p.chosen).C.mc_cpu
      in
      let costs = candidate_costs prev_cpu cands in
      let budget =
        if d = 0 then s.s_bound
        else
          let p = s.stack_arr.(d - 1) in
          p.budget - p.costs.(p.chosen)
      in
      let node =
        {
          cands;
          costs;
          budget;
          locked = d < Array.length forced;
          explored = Array.make (Array.length cands) false;
          backtrack = Array.make (Array.length cands) false;
          sleep = s.pending_sleep;
          chosen = -1;
          fp = [];
          vc = [];
        }
      in
      let chosen =
        if d < Array.length forced then begin
          (* Domain fan-out: this depth's choice is frozen. *)
          let want = forced.(d) in
          let k = ref (-1) in
          Array.iteri
            (fun i t -> if !k < 0 && same_transition t want then k := i)
            cands;
          if !k < 0 then
            raise (Diverged (Printf.sprintf "depth %d: forced choice absent" d));
          !k
        end
        else begin
          let best = ref (-1) in
          let nsel = ref 0 in
          Array.iteri
            (fun i _ ->
              if selectable node i then begin
                incr nsel;
                if
                  !best < 0
                  || costs.(i) < costs.(!best)
                then best := i
              end)
            cands;
          if !nsel >= 2 then s.st_choice_points <- s.st_choice_points + 1;
          if !best < 0 then raise Cut;
          !best
        end
      in
      node.chosen <- chosen;
      node.backtrack.(chosen) <- true;
      push_node s node;
      s.depth <- d + 1;
      chosen
    end
  in
  let commit fp =
    let d = s.depth - 1 in
    let node = s.stack_arr.(d) in
    node.fp <- fp;
    s.st_transitions <- s.st_transitions + 1;
    dpor_commit s node d;
    if s.s_mode <> Naive then
      s.pending_sleep <-
        List.filter
          (fun (t, tfp) ->
            not (dependent t tfp node.cands.(node.chosen) fp))
          node.sleep
    else s.pending_sleep <- []
  in
  { C.mc_choose = choose; mc_commit = commit }

(* Deepest node with an unexplored selectable alternative; switching to
   it puts the branch just explored to sleep (it may only be re-woken by
   a dependent transition, which [commit]'s filter implements). *)
let backtrack s =
  let rec go d =
    if d < 0 then false
    else
      let node = s.stack_arr.(d) in
      if node.locked then false
      else
        match next_candidate s node with
        | Some j ->
            node.explored.(node.chosen) <- true;
            if s.s_mode <> Naive then
              node.sleep <- (node.cands.(node.chosen), node.fp) :: node.sleep;
            node.chosen <- j;
            node.fp <- [];
            s.stack_len <- d + 1;
            true
        | None -> go (d - 1)
  in
  go (s.stack_len - 1)

let preemptions (tr : trace) =
  (* Recomputed from the trace alone: a transition is preemptive iff the
     previous transition's cpu differs and still appears later-or-now as
     enabled... the trace does not carry enabled sets, so count cpu
     switches where the previous cpu reappears later in the trace (it
     still had work). *)
  let n = Array.length tr in
  let p = ref 0 in
  for i = 1 to n - 1 do
    let prev = tr.(i - 1).C.mc_cpu and cur = tr.(i).C.mc_cpu in
    if cur <> prev then begin
      let rec reappears j =
        j < n && (tr.(j).C.mc_cpu = prev || reappears (j + 1))
      in
      if reappears i then incr p
    end
  done;
  !p

(* ------------------------------------------------------------------ *)
(* The search driver                                                    *)
(* ------------------------------------------------------------------ *)

let make_cfg ~cpus ~max_steps hooks =
  {
    C.default with
    C.cpus;
    seed = 0;
    preempt_on_cell_ops = true;
    max_steps = Some max_steps;
    track_waits = true;
    (* Spans stay on through the whole search: they consume no engine
       randomness and make no scheduling choices, so DPOR's replayed
       prefixes stay bit-identical, and the counterexample report the
       checker returns carries the flight-recorder tail of the failing
       execution. *)
    spans = true;
    mc = Some hooks;
  }

type exec_outcome =
  | X_ok
  | X_fail of E.deadlock_kind option * string
  | X_cut
  | X_truncated

let run_one s ~cpus ~max_steps ~forced scenario =
  s.depth <- 0;
  s.pending_sleep <- [];
  let hooks = hooks_of s ~forced in
  let cfg = make_cfg ~cpus ~max_steps hooks in
  let out =
    match E.run ~cfg scenario with
    | _ -> X_ok
    | exception Cut -> X_cut
    | exception E.Deadlock (k, r) -> X_fail (Some k, r)
    | exception E.Kernel_panic r -> X_fail (None, r)
    | exception E.Step_limit -> X_truncated
  in
  if s.depth > s.st_max_depth then s.st_max_depth <- s.depth;
  (match out with
  | X_cut -> s.st_pruned <- s.st_pruned + 1
  | X_truncated ->
      s.st_truncated <- s.st_truncated + 1;
      s.st_executions <- s.st_executions + 1
  | X_ok | X_fail _ -> s.st_executions <- s.st_executions + 1);
  out

let stats_of s =
  {
    executions = s.st_executions;
    pruned = s.st_pruned;
    transitions = s.st_transitions;
    choice_points = s.st_choice_points;
    max_depth = s.st_max_depth;
    truncated = s.st_truncated;
  }

(* Exhaust one subtree sequentially.  [forced] freezes a choice prefix
   (empty outside the domain fan-out). *)
let search_subtree ~mode ~bound ~cpus ~max_steps ~max_executions ~forced
    scenario =
  let s =
    {
      s_mode = mode;
      s_bound = (match bound with None -> max_int | Some b -> b);
      s_cpus = cpus;
      stack_arr = [||];
      stack_len = 0;
      depth = 0;
      pending_sleep = [];
      st_executions = 0;
      st_pruned = 0;
      st_transitions = 0;
      st_choice_points = 0;
      st_max_depth = 0;
      st_truncated = 0;
    }
  in
  let failure = ref None in
  let hit_cap = ref false in
  let continue_ = ref true in
  while !continue_ do
    (match run_one s ~cpus ~max_steps ~forced scenario with
    | X_fail (k, report) when !failure = None ->
        let tr = trace_of_stack s in
        failure :=
          Some
            {
              f_trace = tr;
              f_kind = k;
              f_report = report;
              f_preemptions = preemptions_of s (Array.length tr);
            }
    | _ -> ());
    if !failure <> None then continue_ := false
    else if s.st_executions + s.st_pruned >= max_executions then begin
      hit_cap := true;
      continue_ := false
    end
    else continue_ := backtrack s
  done;
  let stats = stats_of s in
  let complete = (not !hit_cap) && stats.truncated = 0 && !failure = None in
  (!failure, stats, complete)

let merge_stats a b =
  {
    executions = a.executions + b.executions;
    pruned = a.pruned + b.pruned;
    transitions = a.transitions + b.transitions;
    choice_points = a.choice_points + b.choice_points;
    max_depth = max a.max_depth b.max_depth;
    truncated = a.truncated + b.truncated;
  }

let zero_stats =
  {
    executions = 0;
    pruned = 0;
    transitions = 0;
    choice_points = 0;
    max_depth = 0;
    truncated = 0;
  }

(* Shallowest decision point with >= 2 selectable candidates on the
   default path, found by one probe execution; the domain fan-out sends
   each of its branches (prefix frozen) to a worker.  Branch workers
   start with empty sleep sets at the branch node — a sound superset of
   the sequential exploration. *)
let probe_branch_point ~bound ~cpus ~max_steps scenario =
  let s =
    {
      s_mode = Naive;
      s_bound = (match bound with None -> max_int | Some b -> b);
      s_cpus = cpus;
      stack_arr = [||];
      stack_len = 0;
      depth = 0;
      pending_sleep = [];
      st_executions = 0;
      st_pruned = 0;
      st_transitions = 0;
      st_choice_points = 0;
      st_max_depth = 0;
      st_truncated = 0;
    }
  in
  ignore (run_one s ~cpus ~max_steps ~forced:[||] scenario);
  let arr = s.stack_arr and len = s.stack_len in
  let rec find d =
    if d >= len then None
    else
      let node = arr.(d) in
      let sel = ref [] in
      Array.iteri
        (fun i _ -> if selectable node i then sel := i :: !sel)
        node.cands;
      match List.rev !sel with
      | _ :: _ :: _ as sel ->
          let prefix =
            Array.map (fun n -> n.cands.(n.chosen)) (Array.sub arr 0 d)
          in
          Some (prefix, List.map (fun i -> node.cands.(i)) sel)
      | _ -> find (d + 1)
  in
  find 0

let check_once ~mode ~bound ~cpus ~max_steps ~max_executions ~domains scenario
    =
  if domains <= 1 then
    search_subtree ~mode ~bound ~cpus ~max_steps ~max_executions ~forced:[||]
      scenario
  else
    match probe_branch_point ~bound ~cpus ~max_steps scenario with
    | None ->
        (* Single schedule: nothing to fan out. *)
        search_subtree ~mode ~bound ~cpus ~max_steps ~max_executions
          ~forced:[||] scenario
    | Some (prefix, branches) ->
        let jobs = Array.of_list branches in
        let per_worker = max 1 (max_executions / Array.length jobs) in
        let results =
          Mach_sim.Sim_explore.parallel_map ~domains jobs (fun branch ->
              search_subtree ~mode ~bound ~cpus ~max_steps
                ~max_executions:per_worker
                ~forced:(Array.append prefix [| branch |])
                scenario)
        in
        Array.fold_left
          (fun (f, st, c) (f', st', c') ->
            ((if f = None then f' else f), merge_stats st st', c && c'))
          (None, zero_stats, true) results

let default_max_steps = 20_000

let check ?(cpus = 2) ?(mode = Dpor) ?bound ?(max_steps = default_max_steps)
    ?(max_executions = 1_000_000) ?(domains = 1) ?(minimize = true) scenario =
  let failure, stats, complete =
    check_once ~mode ~bound ~cpus ~max_steps ~max_executions ~domains scenario
  in
  (* Iterative bound deepening: re-search with budgets below the found
     counterexample's preemption count, so the reported trace uses as few
     preemptions as the bug allows (the CHESS small-bound heuristic). *)
  let failure, stats =
    match failure with
    | Some f when minimize && f.f_preemptions > 0 ->
        let rec deepen b stats =
          if b >= f.f_preemptions then (f, stats)
          else
            match
              check_once ~mode ~bound:(Some b) ~cpus ~max_steps
                ~max_executions ~domains:1 scenario
            with
            | Some f', st, _ -> (f', merge_stats stats st)
            | None, st, _ -> deepen (b + 1) (merge_stats stats st)
        in
        let f, stats = deepen 0 stats in
        (Some f, stats)
    | _ -> (failure, stats)
  in
  {
    mode;
    bound;
    complete;
    verified = complete && failure = None;
    failure;
    stats;
  }

let replay ?(cpus = 2) ?(max_steps = default_max_steps) ~trace scenario =
  let i = ref 0 in
  let recorded = ref [] in
  let choose (cands : C.mc_transition array) =
    if !i >= Array.length trace then
      failwith
        (Printf.sprintf
           "Mc.replay: trace exhausted at step %d but the run wants another \
            choice"
           !i);
    let want = trace.(!i) in
    incr i;
    let k = ref (-1) in
    Array.iteri
      (fun j t -> if !k < 0 && same_transition t want then k := j)
      cands;
    if !k < 0 then
      failwith
        (Format.asprintf "Mc.replay: trace diverged at step %d: %a not enabled"
           (!i - 1) pp_transition want);
    recorded := cands.(!k) :: !recorded;
    !k
  in
  let hooks = { C.mc_choose = choose; mc_commit = (fun _ -> ()) } in
  let cfg = make_cfg ~cpus ~max_steps hooks in
  let outcome = E.run_outcome ~cfg scenario in
  (outcome, Array.of_list (List.rev !recorded))

(* ------------------------------------------------------------------ *)
(* Reporting                                                            *)
(* ------------------------------------------------------------------ *)

let pp_result ppf r =
  let open Format in
  fprintf ppf "@[<v>mode: %s%s@," (mode_name r.mode)
    (match r.bound with
    | None -> " (unbounded)"
    | Some b -> sprintf " (preemption bound %d)" b);
  fprintf ppf "schedules executed: %d (+%d pruned)@," r.stats.executions
    r.stats.pruned;
  fprintf ppf "transitions: %d, choice points: %d, max depth: %d@,"
    r.stats.transitions r.stats.choice_points r.stats.max_depth;
  (if r.stats.truncated > 0 then
     fprintf ppf "WARNING: %d execution(s) hit the step bound@,"
       r.stats.truncated);
  match r.failure with
  | None ->
      if r.verified then fprintf ppf "VERIFIED: no failing schedule@]"
      else fprintf ppf "NO FAILURE FOUND (search incomplete)@]"
  | Some f ->
      fprintf ppf "FAILED (%s, %d preemption(s)); schedule:@,"
        (match f.f_kind with
        | Some E.Sleep_deadlock -> "sleep deadlock"
        | Some E.Spin_deadlock -> "spin deadlock / livelock"
        | None -> "kernel panic")
        f.f_preemptions;
      Array.iter (fun t -> fprintf ppf "  %a@," pp_transition t) f.f_trace;
      fprintf ppf "%s@]" f.f_report

let to_verdict r =
  {
    Mach_sim.Sim_explore.seeds_run = r.stats.executions;
    completed = (r.stats.executions - (match r.failure with Some _ -> 1 | None -> 0));
    sleep_deadlocks =
      (match r.failure with
      | Some { f_kind = Some E.Sleep_deadlock; _ } -> 1
      | _ -> 0);
    spin_deadlocks =
      (match r.failure with
      | Some { f_kind = Some E.Spin_deadlock; _ } -> 1
      | _ -> 0);
    panics = (match r.failure with Some { f_kind = None; _ } -> 1 | _ -> 0);
    step_limits = r.stats.truncated;
    failures =
      (match r.failure with Some f -> [ (0, f.f_report) ] | None -> []);
  }
