(** Systematic schedule-space model checking over the deterministic
    simulator.

    Where {!Mach_sim.Sim_explore} {e samples} schedules (one per seed),
    this module {e enumerates} them: the engine's model-checking hooks
    ({!Mach_sim.Sim_config.mc_hooks}) reify every scheduler decision —
    which pending interrupt slot to deliver, which cpu's context to
    resume, which queued thread an idle cpu dispatches — and a
    depth-first search over choice prefixes re-executes the scenario once
    per distinct schedule, in the stateless style of Verisoft and CHESS.
    A run is fully determined by its choice trace, so any counterexample
    replays byte-identically from the printed trace alone.

    Three search modes trade exhaustiveness bookkeeping for pruning:
    [Naive] enumerates every schedule; [Sleep_sets] prunes schedules that
    merely commute independent adjacent transitions (Godefroid's sleep
    sets); [Dpor] additionally restricts branching to transitions that
    participate in a detected race (dynamic partial-order reduction,
    Flanagan & Godefroid 2005, conservative backtrack-set variant).  All
    three explore the same reachable states; the pruned modes just visit
    exponentially fewer interleavings.

    An optional {e preemption bound} in the CHESS style caps the number
    of voluntary cpu switches (switching away from a cpu that could still
    run): most concurrency bugs need only a couple of preemptions, so
    small bounds find bugs in scenarios whose unbounded space is
    intractable.  Unbounded mode ([bound] absent) is the sound,
    exhaustive mode used for verification claims. *)

type mode = Naive | Sleep_sets | Dpor

val mode_name : mode -> string
val mode_of_string : string -> mode option

type trace = Mach_sim.Sim_config.mc_transition array
(** A schedule, as the sequence of transitions chosen at each step. *)

val pp_transition : Format.formatter -> Mach_sim.Sim_config.mc_transition -> unit

val trace_to_string : trace -> string
(** One transition per line, parseable by {!trace_of_string}. *)

val trace_of_string : string -> (trace, string) result

type failure = {
  f_trace : trace;  (** the schedule that exhibits the failure *)
  f_kind : Mach_sim.Sim_engine.deadlock_kind option;
      (** [None] = kernel panic, [Some k] = deadlock/livelock *)
  f_report : string;  (** engine report: machine state, waits-for cycle *)
  f_preemptions : int;  (** preemptive switches in [f_trace] *)
}

type stats = {
  executions : int;  (** complete schedules executed *)
  pruned : int;  (** executions cut short by sleep-set pruning *)
  transitions : int;  (** transitions committed across all executions *)
  choice_points : int;  (** decision points with >= 2 selectable options *)
  max_depth : int;  (** longest schedule, in transitions *)
  truncated : int;  (** executions stopped by the step bound *)
}

type result = {
  mode : mode;
  bound : int option;
  complete : bool;
      (** the bounded space was exhausted (not stopped by
          [max_executions], and no execution hit the step bound) *)
  verified : bool;  (** [complete] and no failure *)
  failure : failure option;  (** first failure in DFS order, if any *)
  stats : stats;
}

val pp_result : Format.formatter -> result -> unit

val check :
  ?cpus:int ->
  ?mode:mode ->
  ?bound:int ->
  ?max_steps:int ->
  ?max_executions:int ->
  ?domains:int ->
  ?minimize:bool ->
  (unit -> unit) ->
  result
(** [check scenario] explores every schedule of [scenario] (up to
    [bound] preemptions if given) on [cpus] (default 2) simulated
    processors and reports the first failing schedule, if any.

    [max_steps] (default 20_000) bounds a single execution's length;
    an execution that hits it is counted in [stats.truncated] and makes
    the verdict incomplete.  [max_executions] (default 1_000_000) bounds
    the search as a whole.  [domains] (default 1) fans disjoint subtrees
    of the choice tree across OCaml domains at the shallowest branching
    point; the merged result is deterministic.  [minimize] (default
    [true]) re-searches with iteratively deepened preemption bounds when
    a failure is found, so the reported counterexample uses as few
    preemptions as the bug allows.

    Incompatible with fault injection ({!Mach_sim.Sim_config.faults});
    the scenario must not itself call {!Mach_sim.Sim_engine.run}. *)

val replay :
  ?cpus:int ->
  ?max_steps:int ->
  trace:trace ->
  (unit -> unit) ->
  Mach_sim.Sim_engine.outcome * trace
(** [replay ~trace scenario] re-executes exactly the schedule in [trace]
    and returns the outcome plus the re-recorded trace (equal to the
    input when the replay is faithful).  Raises [Failure] if the trace
    diverges from the scenario — e.g. it was recorded for different
    code, a different cpu count, or has been edited. *)

val preemptions : trace -> int
(** Number of preemptive cpu switches in a schedule (a switch away from
    a cpu that still had an enabled transition). *)

val to_verdict : result -> Mach_sim.Sim_explore.verdict
(** View a model-checking result in {!Mach_sim.Sim_explore}'s verdict
    shape, so mc slots into tooling built for seed fan-out: every
    explored schedule counts as a "seed", and the failure (if any) is
    reported under pseudo-seed 0. *)
