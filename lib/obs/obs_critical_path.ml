(* Offline critical-path attribution over a recorded trace.

   Which lock (class) actually bounds the makespan?  Per-class totals
   cannot say: wait cycles accumulated in parallel with useful work cost
   nothing, and summing them happily exceeds the runtime.  This pass
   walks the trace *backwards* from the end of the run, following the
   wake -> run -> release causal chain one blocking interval at a time:

     - the last thing that happened before the makespan's end is, by
       construction, on the critical path;
     - a blocking interval [c - dur, c] on the path means whatever
       enabled it (the holder's release, the signaller's wake) ended at
       its start, so the cursor jumps to [c - dur] and the walk
       continues from there;
     - events later than the cursor were concurrent with an interval
       already attributed and are skipped.

   Each attribution moves the cursor down by at least the cycles it
   claims, so the attributed totals are disjoint and sum to at most the
   makespan — the "fractions sum to <= 1.0" invariant the tests pin.
   The walk is an approximation (between blocking intervals it cannot
   see which cpu's computation was critical; that remainder is reported
   as the residual), but the *ranking* of lock classes it produces is
   exactly the per-class share of blocked time on one maximal causal
   chain, which is what "which lock should we split first?" needs. *)

type ev = { cp_clock : int; cp_ev : Obs_event.t }

type attribution = { cls : string; cycles : int; fraction : float }

type t = {
  makespan : int;
  attributed : attribution list; (* largest share first *)
  residual : float; (* 1.0 - sum of fractions: compute + untraced waits *)
}

(* A candidate blocking interval: [clock - dur, clock], charged to a
   class.  Lock waits are charged to the lock class (matching
   Obs_profile); non-lock span closes to "kind:class". *)
let candidate { cp_clock; cp_ev } =
  match cp_ev with
  | Obs_event.Lock_acquire { lock; wait_cycles; _ } when wait_cycles > 0 ->
      Some (cp_clock, Obs_profile.class_of_name lock, wait_cycles)
  | Obs_event.Span_close { kind; site; dur } when dur > 0 && kind <> "lock" ->
      (* Strip the "kind:" prefix the span layer bakes into the site. *)
      let name =
        match String.index_opt site ':' with
        | Some i -> String.sub site (i + 1) (String.length site - i - 1)
        | None -> site
      in
      Some (cp_clock, kind ^ ":" ^ Obs_profile.class_of_name name, dur)
  | _ -> None

let compute ~makespan evs =
  if makespan <= 0 then { makespan; attributed = []; residual = 1.0 }
  else begin
    let cands =
      List.filter_map candidate evs
      |> List.sort (fun (c1, _, _) (c2, _, _) -> compare c2 c1)
    in
    let totals : (string, int) Hashtbl.t = Hashtbl.create 16 in
    let cursor = ref makespan in
    List.iter
      (fun (clock, cls, dur) ->
        if clock <= !cursor && !cursor > 0 then begin
          (* The interval cannot extend below clock 0; clip the claim. *)
          let take = min dur clock in
          if take > 0 then begin
            Hashtbl.replace totals cls
              (take + Option.value ~default:0 (Hashtbl.find_opt totals cls));
            cursor := clock - take
          end
        end)
      cands;
    let attributed =
      Hashtbl.fold
        (fun cls cycles acc ->
          { cls; cycles; fraction = float_of_int cycles /. float_of_int makespan }
          :: acc)
        totals []
      |> List.sort (fun a b ->
             match compare b.cycles a.cycles with
             | 0 -> String.compare a.cls b.cls
             | c -> c)
    in
    let total_frac =
      List.fold_left (fun acc a -> acc +. a.fraction) 0.0 attributed
    in
    { makespan; attributed; residual = 1.0 -. total_frac }
  end

let dominant t = match t.attributed with [] -> None | a :: _ -> Some a

let pp ppf t =
  Format.fprintf ppf "critical path over makespan %d cycles:@." t.makespan;
  if t.attributed = [] then
    Format.fprintf ppf "  (no blocking intervals on the critical path)@."
  else
    List.iter
      (fun a ->
        Format.fprintf ppf "  %-28s %10d cycles  %5.1f%%@." a.cls a.cycles
          (100.0 *. a.fraction))
      t.attributed;
  Format.fprintf ppf "  %-28s %21s %5.1f%%@." "(compute / untraced)" ""
    (100.0 *. t.residual)

let to_json t =
  let open Obs_json in
  Obj
    [
      ("makespan", Int t.makespan);
      ( "attributed",
        List
          (List.map
             (fun a ->
               Obj
                 [
                   ("class", String a.cls);
                   ("cycles", Int a.cycles);
                   ("fraction", Float a.fraction);
                 ])
             t.attributed) );
      ("residual", Float t.residual);
    ]
