(** Offline critical-path attribution over a recorded trace.

    Walks the trace backwards from the end of the run along
    wake -> run -> release causal edges, attributing each blocking
    interval (contended lock wait, event/ipc/vm span) on the path to its
    lock class or site.  Attributed intervals are disjoint by
    construction, so the fractions always sum to at most 1.0 of the
    makespan; the remainder (compute and untraced waits) is the
    residual. *)

type ev = { cp_clock : int; cp_ev : Obs_event.t }
(** One trace record: the simulated clock at which the event fired. *)

type attribution = {
  cls : string;  (** lock class, or "kind:class" for non-lock spans *)
  cycles : int;  (** critical-path cycles charged to the class *)
  fraction : float;  (** cycles / makespan *)
}

type t = {
  makespan : int;
  attributed : attribution list;  (** largest share first *)
  residual : float;  (** 1.0 - sum of fractions *)
}

val compute : makespan:int -> ev list -> t
(** [compute ~makespan evs] over the run's trace (any order; sorted
    internally).  A non-positive makespan yields an empty attribution
    with residual 1.0. *)

val dominant : t -> attribution option
(** The class with the largest critical-path share, if any. *)

val pp : Format.formatter -> t -> unit
val to_json : t -> Obs_json.t
