type t =
  (* scheduler / machine events (previously string tags in Sim_trace) *)
  | Spawn of { thread : string }
  | Thread_exit of { thread : string }
  | Park of { thread : string }
  | Unpark of { thread : string }
  | Permit of { thread : string }
  | Dispatch of { thread : string; cpu : int }
  | Intr_post of { name : string; cpu : int; level : string }
  | Intr_deliver of { name : string; level : string }
  | Intr_done of { name : string }
  | Spl_raise of { from_lvl : string; to_lvl : string }
  | Cell_set of { cell : string; value : int }
  | Tas of { cell : string; old_value : int }
  (* synchronization-layer events *)
  | Lock_acquire of { lock : string; spins : int; wait_cycles : int }
  | Lock_release of { lock : string; held_cycles : int }
  | Event_wait of { event : int }
  | Event_signal of { event : int; woken : int }
  | Refcount_drop of { name : string; count : int }
  (* vm events *)
  | Tlb_shootdown_start of { initiator : int; participants : int; lazies : int }
  | Tlb_shootdown_done of { participants : int; cycles : int }
  (* causal spans (Obs_span): emitted when a span closes *)
  | Span_close of { kind : string; site : string; dur : int }
  (* chaos / deadlock-detection events *)
  | Chaos_inject of { kind : string; victim : string }
  | Deadlock_note of { line : string }
  (* escape hatch for ad-hoc instrumentation *)
  | Raw of { tag : string; detail : string }

let name = function
  | Spawn _ -> "Spawn"
  | Thread_exit _ -> "Thread_exit"
  | Park _ -> "Park"
  | Unpark _ -> "Unpark"
  | Permit _ -> "Permit"
  | Dispatch _ -> "Dispatch"
  | Intr_post _ -> "Intr_post"
  | Intr_deliver _ -> "Intr_deliver"
  | Intr_done _ -> "Intr_done"
  | Spl_raise _ -> "Spl_raise"
  | Cell_set _ -> "Cell_set"
  | Tas _ -> "Tas"
  | Lock_acquire _ -> "Lock_acquire"
  | Lock_release _ -> "Lock_release"
  | Event_wait _ -> "Event_wait"
  | Event_signal _ -> "Event_signal"
  | Refcount_drop _ -> "Refcount_drop"
  | Tlb_shootdown_start _ -> "Tlb_shootdown_start"
  | Tlb_shootdown_done _ -> "Tlb_shootdown_done"
  | Span_close _ -> "Span_close"
  | Chaos_inject _ -> "Chaos_inject"
  | Deadlock_note _ -> "Deadlock_note"
  | Raw { tag; _ } -> tag

(* The short tags the string-tagged trace used; kept so text dumps look
   the same as before the typed-event change. *)
let tag = function
  | Spawn _ -> "spawn"
  | Thread_exit _ -> "exit"
  | Park _ -> "park"
  | Unpark _ -> "unpark"
  | Permit _ -> "permit"
  | Dispatch _ -> "dispatch"
  | Intr_post _ -> "post-intr"
  | Intr_deliver _ -> "intr"
  | Intr_done _ -> "intr-done"
  | Spl_raise _ -> "spl"
  | Cell_set _ -> "set"
  | Tas _ -> "tas"
  | Lock_acquire _ -> "lock"
  | Lock_release _ -> "unlock"
  | Event_wait _ -> "evt-wait"
  | Event_signal _ -> "evt-signal"
  | Refcount_drop _ -> "ref-drop"
  | Tlb_shootdown_start _ -> "shoot-start"
  | Tlb_shootdown_done _ -> "shoot-done"
  | Span_close _ -> "span"
  | Chaos_inject _ -> "chaos"
  | Deadlock_note _ -> "deadlock"
  | Raw { tag; _ } -> tag

let detail = function
  | Spawn { thread } | Thread_exit { thread } | Park { thread }
  | Unpark { thread }
  | Permit { thread } ->
      thread
  | Dispatch { thread; cpu } -> Printf.sprintf "%s on cpu%d" thread cpu
  | Intr_post { name; cpu; level } ->
      Printf.sprintf "%s -> cpu%d at %s" name cpu level
  | Intr_deliver { name; level } -> Printf.sprintf "%s at %s" name level
  | Intr_done { name } -> name
  | Spl_raise { from_lvl; to_lvl } ->
      Printf.sprintf "%s -> %s" from_lvl to_lvl
  | Cell_set { cell; value } -> Printf.sprintf "%s=%d" cell value
  | Tas { cell; old_value } -> Printf.sprintf "%s old=%d" cell old_value
  | Lock_acquire { lock; spins; wait_cycles } ->
      Printf.sprintf "%s spins=%d waited=%d" lock spins wait_cycles
  | Lock_release { lock; held_cycles } ->
      Printf.sprintf "%s held=%d" lock held_cycles
  | Event_wait { event } -> Printf.sprintf "event%d" event
  | Event_signal { event; woken } ->
      Printf.sprintf "event%d woke %d" event woken
  | Refcount_drop { name; count } -> Printf.sprintf "%s -> %d" name count
  | Tlb_shootdown_start { initiator; participants; lazies } ->
      Printf.sprintf "cpu%d waits for %d cpus (%d lazy)" initiator
        participants lazies
  | Tlb_shootdown_done { participants; cycles } ->
      Printf.sprintf "%d cpus released after %d cycles" participants cycles
  | Span_close { kind; site; dur } ->
      Printf.sprintf "%s %s dur=%d" kind site dur
  | Chaos_inject { kind; victim } -> Printf.sprintf "%s -> %s" kind victim
  | Deadlock_note { line } -> line
  | Raw { detail; _ } -> detail

(* Structured payload as Chrome trace-event "args". *)
let args ev =
  let open Obs_json in
  match ev with
  | Spawn { thread } | Thread_exit { thread } | Park { thread }
  | Unpark { thread }
  | Permit { thread } ->
      [ ("thread", String thread) ]
  | Dispatch { thread; cpu } ->
      [ ("thread", String thread); ("cpu", Int cpu) ]
  | Intr_post { name; cpu; level } ->
      [ ("intr", String name); ("cpu", Int cpu); ("level", String level) ]
  | Intr_deliver { name; level } ->
      [ ("intr", String name); ("level", String level) ]
  | Intr_done { name } -> [ ("intr", String name) ]
  | Spl_raise { from_lvl; to_lvl } ->
      [ ("from", String from_lvl); ("to", String to_lvl) ]
  | Cell_set { cell; value } ->
      [ ("cell", String cell); ("value", Int value) ]
  | Tas { cell; old_value } ->
      [ ("cell", String cell); ("old", Int old_value) ]
  | Lock_acquire { lock; spins; wait_cycles } ->
      [
        ("lock", String lock);
        ("spins", Int spins);
        ("wait_cycles", Int wait_cycles);
      ]
  | Lock_release { lock; held_cycles } ->
      [ ("lock", String lock); ("held_cycles", Int held_cycles) ]
  | Event_wait { event } -> [ ("event", Int event) ]
  | Event_signal { event; woken } ->
      [ ("event", Int event); ("woken", Int woken) ]
  | Refcount_drop { name; count } ->
      [ ("refcount", String name); ("count", Int count) ]
  | Tlb_shootdown_start { initiator; participants; lazies } ->
      [
        ("initiator", Int initiator);
        ("participants", Int participants);
        ("lazies", Int lazies);
      ]
  | Tlb_shootdown_done { participants; cycles } ->
      [ ("participants", Int participants); ("cycles", Int cycles) ]
  | Span_close { kind; site; dur } ->
      [ ("kind", String kind); ("site", String site); ("dur", Int dur) ]
  | Chaos_inject { kind; victim } ->
      [ ("kind", String kind); ("victim", String victim) ]
  | Deadlock_note { line } -> [ ("line", String line) ]
  | Raw { tag; detail } ->
      [ ("tag", String tag); ("detail", String detail) ]

(* Span records and plain instants are accounted separately in the trace
   rings (dropped-span vs dropped-event counters). *)
let is_span = function Span_close _ -> true | _ -> false

let pp ppf ev = Format.fprintf ppf "%-12s %s" (tag ev) (detail ev)
