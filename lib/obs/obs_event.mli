(** Typed trace events.

    The simulator's trace used to carry [tag : string] + [detail : string];
    this variant replaces it with structured payloads so exporters (the
    Chrome trace-event writer, the contention profiler) can consume events
    without re-parsing strings.  Interrupt-priority levels and threads are
    carried as strings to keep this module at the bottom of the dependency
    stack (everything — core, sim, vm — may emit events).

    [Raw] is the escape hatch for ad-hoc instrumentation and keeps old
    string-tagged call sites expressible. *)

type t =
  | Spawn of { thread : string }
  | Thread_exit of { thread : string }
  | Park of { thread : string }
  | Unpark of { thread : string }
  | Permit of { thread : string }
  | Dispatch of { thread : string; cpu : int }
  | Intr_post of { name : string; cpu : int; level : string }
  | Intr_deliver of { name : string; level : string }
  | Intr_done of { name : string }
  | Spl_raise of { from_lvl : string; to_lvl : string }
  | Cell_set of { cell : string; value : int }
  | Tas of { cell : string; old_value : int }
  | Lock_acquire of { lock : string; spins : int; wait_cycles : int }
  | Lock_release of { lock : string; held_cycles : int }
  | Event_wait of { event : int }
  | Event_signal of { event : int; woken : int }
  | Refcount_drop of { name : string; count : int }
  | Tlb_shootdown_start of { initiator : int; participants : int; lazies : int }
  | Tlb_shootdown_done of { participants : int; cycles : int }
  | Span_close of { kind : string; site : string; dur : int }
      (** an [Obs_span] causal span closed: [kind] is the span kind
          ("lock", "event", "ipc", "vm"), [site] the acquire-site label,
          [dur] the span duration in cycles *)
  | Chaos_inject of { kind : string; victim : string }
      (** a fault-injection hook fired ([kind] names the fault class) *)
  | Deadlock_note of { line : string }
      (** one line of the deadlock detector's waits-for analysis *)
  | Raw of { tag : string; detail : string }

val name : t -> string
(** Constructor name ("Lock_acquire", "Tlb_shootdown_start", ...); used as
    the Chrome trace-event name. *)

val tag : t -> string
(** Back-compat short tag ("spawn", "tas", "spl", ...) matching the old
    string-tagged trace, so text dumps render as before. *)

val detail : t -> string
(** Back-compat human-readable detail string. *)

val args : t -> (string * Obs_json.t) list
(** The structured payload as Chrome trace-event args. *)

val is_span : t -> bool
(** [true] exactly for [Span_close]: trace rings account span records
    separately from plain instants when counting drops. *)

val pp : Format.formatter -> t -> unit
