(* Log-bucketed (HDR-style) histogram of non-negative integers.

   Layout: 32 sub-buckets per power of two.  Values below 64 are recorded
   exactly (bucket width 1); above that, bucket width doubles with each
   power of two, bounding the relative quantization error at 1/32.  With
   62-bit values the bucket array tops out below 1920 entries, so a
   histogram is a flat int array — cheap enough to put one in every
   lock-class profile. *)

let sub_buckets = 32 (* must be a power of two *)
let sub_bits = 5
let n_buckets = 1920

let msb_position v =
  (* position of the highest set bit; v > 0 *)
  let rec go v acc = if v = 0 then acc - 1 else go (v lsr 1) (acc + 1) in
  go v 0

let bucket_index v =
  let v = if v < 0 then 0 else v in
  if v < sub_buckets then v
  else
    let b = msb_position v - sub_bits in
    (b * sub_buckets) + (v lsr b)

let bucket_bounds i =
  let b = Stdlib.max 0 ((i / sub_buckets) - 1) in
  let sub = i - (b * sub_buckets) in
  (sub lsl b, ((sub + 1) lsl b) - 1)

type t = {
  buckets : int array;
  mutable count : int;
  mutable sum : int;
  mutable min_v : int;
  mutable max_v : int;
}

let make () =
  { buckets = Array.make n_buckets 0; count = 0; sum = 0; min_v = max_int; max_v = 0 }

let record_n t v ~n =
  if n > 0 then begin
    let v = if v < 0 then 0 else v in
    let i = bucket_index v in
    t.buckets.(i) <- t.buckets.(i) + n;
    t.count <- t.count + n;
    t.sum <- t.sum + (v * n);
    if v < t.min_v then t.min_v <- v;
    if v > t.max_v then t.max_v <- v
  end

let record t v = record_n t v ~n:1

let count t = t.count
let sum t = t.sum
let min_value t = if t.count = 0 then 0 else t.min_v
let max_value t = t.max_v

let mean t =
  if t.count = 0 then 0.0 else float_of_int t.sum /. float_of_int t.count

(* Value at or below which at least p% of recorded values fall; reported
   as the bucket's upper bound (clamped to the observed maximum), so the
   answer is exact for values below 64 and within 1/32 above. *)
let percentile t p =
  if t.count = 0 then 0
  else begin
    let p = Float.min 100.0 (Float.max 0.0 p) in
    let rank =
      Stdlib.max 1
        (int_of_float (Float.ceil (p /. 100.0 *. float_of_int t.count)))
    in
    let rec walk i seen =
      if i >= n_buckets then t.max_v
      else
        let seen = seen + t.buckets.(i) in
        if seen >= rank then Stdlib.min (snd (bucket_bounds i)) t.max_v
        else walk (i + 1) seen
    in
    walk 0 0
  end

let merge_into ~dst src =
  Array.iteri
    (fun i n -> if n > 0 then dst.buckets.(i) <- dst.buckets.(i) + n)
    src.buckets;
  dst.count <- dst.count + src.count;
  dst.sum <- dst.sum + src.sum;
  if src.count > 0 then begin
    if src.min_v < dst.min_v then dst.min_v <- src.min_v;
    if src.max_v > dst.max_v then dst.max_v <- src.max_v
  end

let reset t =
  Array.fill t.buckets 0 n_buckets 0;
  t.count <- 0;
  t.sum <- 0;
  t.min_v <- max_int;
  t.max_v <- 0

let pp ppf t =
  if t.count = 0 then Format.pp_print_string ppf "(empty)"
  else
    Format.fprintf ppf
      "n=%d mean=%.1f min=%d p50=%d p90=%d p99=%d max=%d" t.count (mean t)
      (min_value t) (percentile t 50.0) (percentile t 90.0)
      (percentile t 99.0) t.max_v

let to_json t =
  let open Obs_json in
  Obj
    [
      ("count", Int t.count);
      ("sum", Int t.sum);
      ("mean", Float (mean t));
      ("min", Int (min_value t));
      ("p50", Int (percentile t 50.0));
      ("p90", Int (percentile t 90.0));
      ("p99", Int (percentile t 99.0));
      ("max", Int t.max_v);
    ]
