(** Log-bucketed (HDR-style) histograms of non-negative integers.

    Blocking and hold-time {e distributions}, not averages, are what
    distinguish locking protocols (Brandenburg's survey, PAPERS.md), so
    the metrics registry records latencies here rather than as flat sums.
    32 sub-buckets per power of two: values below 64 are exact, larger
    values are quantized with at most 1/32 relative error.  Not
    thread-safe on its own; the registry shards per cpu and merges at
    read time. *)

type t

val make : unit -> t

val record : t -> int -> unit
(** Record one value; negative values clamp to 0. *)

val record_n : t -> int -> n:int -> unit
(** Record the same value [n] times. *)

val count : t -> int
val sum : t -> int
val min_value : t -> int
val max_value : t -> int
val mean : t -> float

val percentile : t -> float -> int
(** [percentile t p] for [p] in [0, 100]: smallest bucket upper bound at
    or below which at least p%% of values fall (clamped to the observed
    maximum); 0 when empty. *)

val merge_into : dst:t -> t -> unit
val reset : t -> unit
val pp : Format.formatter -> t -> unit
val to_json : t -> Obs_json.t

(** {1 Bucket geometry} (exposed for boundary tests) *)

val bucket_index : int -> int
val bucket_bounds : int -> int * int
(** [(lo, hi)] inclusive value range of a bucket index. *)
