type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

let escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let rec write buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int n -> Buffer.add_string buf (string_of_int n)
  | Float f ->
      if Float.is_integer f && Float.abs f < 1e15 then
        Buffer.add_string buf (Printf.sprintf "%.1f" f)
      else Buffer.add_string buf (Printf.sprintf "%.6g" f)
  | String s ->
      Buffer.add_char buf '"';
      Buffer.add_string buf (escape s);
      Buffer.add_char buf '"'
  | List xs ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_char buf ',';
          write buf x)
        xs;
      Buffer.add_char buf ']'
  | Obj kvs ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          write buf (String k);
          Buffer.add_char buf ':';
          write buf v)
        kvs;
      Buffer.add_char buf '}'

let to_string t =
  let buf = Buffer.create 1024 in
  write buf t;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* A small recursive-descent parser, used to validate exported traces. *)
(* ------------------------------------------------------------------ *)

exception Parse_error of string

type cursor = { s : string; mutable pos : int }

let peek c = if c.pos < String.length c.s then Some c.s.[c.pos] else None

let advance c = c.pos <- c.pos + 1

let fail c msg = raise (Parse_error (Printf.sprintf "at byte %d: %s" c.pos msg))

let rec skip_ws c =
  match peek c with
  | Some (' ' | '\t' | '\n' | '\r') ->
      advance c;
      skip_ws c
  | _ -> ()

let expect c ch =
  match peek c with
  | Some x when x = ch -> advance c
  | _ -> fail c (Printf.sprintf "expected %C" ch)

let parse_literal c word value =
  let n = String.length word in
  if
    c.pos + n <= String.length c.s
    && String.sub c.s c.pos n = word
  then begin
    c.pos <- c.pos + n;
    value
  end
  else fail c (Printf.sprintf "expected %s" word)

let parse_string_raw c =
  expect c '"';
  let buf = Buffer.create 16 in
  let rec loop () =
    match peek c with
    | None -> fail c "unterminated string"
    | Some '"' -> advance c
    | Some '\\' -> (
        advance c;
        match peek c with
        | Some 'n' -> advance c; Buffer.add_char buf '\n'; loop ()
        | Some 't' -> advance c; Buffer.add_char buf '\t'; loop ()
        | Some 'r' -> advance c; Buffer.add_char buf '\r'; loop ()
        | Some 'u' ->
            advance c;
            if c.pos + 4 > String.length c.s then fail c "bad \\u escape";
            let hex = String.sub c.s c.pos 4 in
            let code =
              try int_of_string ("0x" ^ hex)
              with _ -> fail c "bad \\u escape"
            in
            c.pos <- c.pos + 4;
            (* keep it simple: encode BMP code points as UTF-8 *)
            if code < 0x80 then Buffer.add_char buf (Char.chr code)
            else if code < 0x800 then begin
              Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
              Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
            end
            else begin
              Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
              Buffer.add_char buf
                (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
              Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
            end;
            loop ()
        | Some x -> advance c; Buffer.add_char buf x; loop ()
        | None -> fail c "unterminated escape")
    | Some x ->
        advance c;
        Buffer.add_char buf x;
        loop ()
  in
  loop ();
  Buffer.contents buf

let parse_number c =
  let start = c.pos in
  let is_num_char = function
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  let rec loop () =
    match peek c with Some x when is_num_char x -> advance c; loop () | _ -> ()
  in
  loop ();
  let text = String.sub c.s start (c.pos - start) in
  match int_of_string_opt text with
  | Some n -> Int n
  | None -> (
      match float_of_string_opt text with
      | Some f -> Float f
      | None -> fail c (Printf.sprintf "bad number %S" text))

let rec parse_value c =
  skip_ws c;
  match peek c with
  | None -> fail c "unexpected end of input"
  | Some 'n' -> parse_literal c "null" Null
  | Some 't' -> parse_literal c "true" (Bool true)
  | Some 'f' -> parse_literal c "false" (Bool false)
  | Some '"' -> String (parse_string_raw c)
  | Some '[' ->
      advance c;
      skip_ws c;
      if peek c = Some ']' then begin
        advance c;
        List []
      end
      else begin
        let rec elems acc =
          let v = parse_value c in
          skip_ws c;
          match peek c with
          | Some ',' ->
              advance c;
              elems (v :: acc)
          | Some ']' ->
              advance c;
              List.rev (v :: acc)
          | _ -> fail c "expected ',' or ']'"
        in
        List (elems [])
      end
  | Some '{' ->
      advance c;
      skip_ws c;
      if peek c = Some '}' then begin
        advance c;
        Obj []
      end
      else begin
        let member () =
          skip_ws c;
          let k = parse_string_raw c in
          skip_ws c;
          expect c ':';
          let v = parse_value c in
          (k, v)
        in
        let rec members acc =
          let kv = member () in
          skip_ws c;
          match peek c with
          | Some ',' ->
              advance c;
              members (kv :: acc)
          | Some '}' ->
              advance c;
              List.rev (kv :: acc)
          | _ -> fail c "expected ',' or '}'"
        in
        Obj (members [])
      end
  | Some ('-' | '0' .. '9') -> parse_number c
  | Some x -> fail c (Printf.sprintf "unexpected character %C" x)

let of_string s =
  let c = { s; pos = 0 } in
  match parse_value c with
  | v ->
      skip_ws c;
      if c.pos <> String.length s then Error "trailing garbage after value"
      else Ok v
  | exception Parse_error msg -> Error msg

let member key = function
  | Obj kvs -> List.assoc_opt key kvs
  | _ -> None
