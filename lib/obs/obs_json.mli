(** A minimal JSON value type with a printer and a validating parser.

    Used by the observability layer's exporters (Chrome trace-event files,
    metrics snapshots, bench summaries) so that [lib/obs] needs no external
    JSON dependency.  The parser exists so that exporters can round-trip
    their own output in tests and smoke targets. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact (single-line) rendering. *)

val of_string : string -> (t, string) result
(** Parse a complete JSON document; [Error msg] on malformed input or
    trailing garbage. *)

val member : string -> t -> t option
(** [member key (Obj _)] looks up a field; [None] for other constructors. *)
