(* The kernel-wide metrics registry: named counters, gauges and latency
   histograms.  Writes go to per-cpu shards (cpu index masked into a fixed
   shard count) and are merged at read time, so the hot update path is one
   array-indexed atomic add with no shared cache line between cpus. *)

let shards = 16 (* power of two *)
let shard_of cpu = (if cpu < 0 then 0 else cpu) land (shards - 1)

type counter = { c_name : string; c_shards : int Atomic.t array }
type gauge = { g_name : string; g_cell : int Atomic.t }
type histogram = { h_name : string; h_shards : Obs_histogram.t array }

type entry = Counter of counter | Gauge of gauge | Histogram of histogram

let entry_name = function
  | Counter c -> c.c_name
  | Gauge g -> g.g_name
  | Histogram h -> h.h_name

(* Registration is rare (first use of a name) and guarded by a real mutex
   so native-domain users are safe; updates touch only the entry. *)
let registry : (string, entry) Hashtbl.t = Hashtbl.create 64
let registry_mu = Mutex.create ()

let intern name mk classify =
  Mutex.lock registry_mu;
  let entry =
    match Hashtbl.find_opt registry name with
    | Some e -> e
    | None ->
        let e = mk () in
        Hashtbl.add registry name e;
        e
  in
  Mutex.unlock registry_mu;
  match classify entry with
  | Some v -> v
  | None ->
      invalid_arg
        (Printf.sprintf "Obs_metrics: %S already registered with another type"
           name)

let counter name =
  intern name
    (fun () ->
      Counter
        { c_name = name; c_shards = Array.init shards (fun _ -> Atomic.make 0) })
    (function Counter c -> Some c | _ -> None)

let gauge name =
  intern name
    (fun () -> Gauge { g_name = name; g_cell = Atomic.make 0 })
    (function Gauge g -> Some g | _ -> None)

let histogram name =
  intern name
    (fun () ->
      Histogram
        {
          h_name = name;
          h_shards = Array.init shards (fun _ -> Obs_histogram.make ());
        })
    (function Histogram h -> Some h | _ -> None)

let add ?(cpu = 0) c n =
  ignore (Atomic.fetch_and_add c.c_shards.(shard_of cpu) n)

let incr ?cpu c = add ?cpu c 1

let counter_value c =
  Array.fold_left (fun acc a -> acc + Atomic.get a) 0 c.c_shards

let set g v = Atomic.set g.g_cell v
let gauge_value g = Atomic.get g.g_cell

let observe ?(cpu = 0) h v = Obs_histogram.record h.h_shards.(shard_of cpu) v

let merged h =
  let out = Obs_histogram.make () in
  Array.iter (fun s -> Obs_histogram.merge_into ~dst:out s) h.h_shards;
  out

let counter_name c = c.c_name
let gauge_name g = g.g_name
let histogram_name h = h.h_name

(* ------------------------------------------------------------------ *)
(* Reading the whole registry                                           *)
(* ------------------------------------------------------------------ *)

let entries () =
  Mutex.lock registry_mu;
  let es = Hashtbl.fold (fun _ e acc -> e :: acc) registry [] in
  Mutex.unlock registry_mu;
  List.sort (fun a b -> String.compare (entry_name a) (entry_name b)) es

let reset () =
  List.iter
    (function
      | Counter c -> Array.iter (fun a -> Atomic.set a 0) c.c_shards
      | Gauge g -> Atomic.set g.g_cell 0
      | Histogram h -> Array.iter Obs_histogram.reset h.h_shards)
    (entries ())

let pp ppf () =
  let es = entries () in
  if es = [] then Format.fprintf ppf "(no metrics registered)@."
  else
    List.iter
      (fun e ->
        match e with
        | Counter c ->
            Format.fprintf ppf "%-28s %d@." c.c_name (counter_value c)
        | Gauge g -> Format.fprintf ppf "%-28s %d@." g.g_name (gauge_value g)
        | Histogram h ->
            Format.fprintf ppf "%-28s %a@." h.h_name Obs_histogram.pp
              (merged h))
      es

let to_json () =
  let open Obs_json in
  Obj
    (List.map
       (fun e ->
         match e with
         | Counter c -> (c.c_name, Int (counter_value c))
         | Gauge g -> (g.g_name, Int (gauge_value g))
         | Histogram h -> (h.h_name, Obs_histogram.to_json (merged h)))
       (entries ()))
