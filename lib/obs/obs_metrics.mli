(** The kernel-wide metrics registry.

    Named counters, gauges and log-bucketed latency histograms, with
    per-cpu shards merged at read time.  The paper's Appendix A wraps
    every simple lock "in a structure to allow the simple addition of
    debugging and statistics information"; this registry is where that
    information becomes legible system-wide: {!Lock_stats} mirrors its
    counters here, and the lock / event / shootdown layers record their
    latency distributions here (see the well-known names below).

    Names are interned: calling [counter "x"] twice returns the same
    counter.  Registering a name with two different types raises
    [Invalid_argument].

    Well-known names populated by the kernel layers:
    - ["lock.wait_cycles"] — simple+complex lock acquisition wait time
    - ["lock.hold_cycles"] — simple lock hold time
    - ["event.wait_cycles"] — assert_wait → wakeup latency
    - ["tlb.shootdown_cycles"] — shootdown round-trip at the initiator
    - ["lock.acquisitions"], ["lock.contentions"], ... — the
      {!Lock_stats} counters aggregated over every lock. *)

type counter
type gauge
type histogram

val counter : string -> counter
val gauge : string -> gauge
val histogram : string -> histogram

(** {1 Updating} ([cpu] selects the shard; defaults to 0) *)

val add : ?cpu:int -> counter -> int -> unit
val incr : ?cpu:int -> counter -> unit
val set : gauge -> int -> unit
val observe : ?cpu:int -> histogram -> int -> unit

(** {1 Reading} (shards are merged at read time) *)

val counter_value : counter -> int
val gauge_value : gauge -> int
val merged : histogram -> Obs_histogram.t
val counter_name : counter -> string
val gauge_name : gauge -> string
val histogram_name : histogram -> string

(** {1 The whole registry} *)

val reset : unit -> unit
(** Zero every registered metric (names stay registered). *)

val pp : Format.formatter -> unit -> unit
(** One line per metric, sorted by name. *)

val to_json : unit -> Obs_json.t
(** Object keyed by metric name; histograms render as
    count/sum/mean/min/p50/p90/p99/max objects. *)
