(* The contention profiler: per-lock-class aggregation of acquisition
   outcomes, wait/hold time, and a waits-for edge list.

   Individual locks are too numerous to report on (every vm object carries
   several), so locks aggregate into *classes* derived from their names by
   deleting digits: "slock12" and "slock40" are both class "slock",
   "lock3.interlock" is "lock.interlock", "evt-bucket17" is "evt-bucket".
   The class plays the role the declaration site plays in the paper's
   Appendix A macros.

   The waits-for list records, for each contended acquisition, an edge
   from the most recently acquired still-held lock class to the wanted
   class.  A cycle in that list is the shape of the section 4 deadlock
   ("a thread holding A spins for B while another holding B spins for A"),
   and the three-processor interrupt deadlock of section 7 shows up as the
   barrier cell being wanted while a lock class is held. *)

type class_stats = {
  cls : string;
  mutable acquisitions : int;
  mutable contended : int;
  mutable wait_cycles : int;
  mutable hold_cycles : int;
  wait_hist : Obs_histogram.t;
}

let mu = Mutex.create ()
let classes_tbl : (string, class_stats) Hashtbl.t = Hashtbl.create 64
let edges_tbl : (string * string, int ref) Hashtbl.t = Hashtbl.create 64
let held_stacks : (int, string list ref) Hashtbl.t = Hashtbl.create 64

let class_of_name name =
  let buf = Buffer.create (String.length name) in
  String.iter (fun c -> if c < '0' || c > '9' then Buffer.add_char buf c) name;
  if Buffer.length buf = 0 then "lock" else Buffer.contents buf

let locked f =
  Mutex.lock mu;
  match f () with
  | v ->
      Mutex.unlock mu;
      v
  | exception e ->
      Mutex.unlock mu;
      raise e

let class_stats_locked cls =
  match Hashtbl.find_opt classes_tbl cls with
  | Some cs -> cs
  | None ->
      let cs =
        {
          cls;
          acquisitions = 0;
          contended = 0;
          wait_cycles = 0;
          hold_cycles = 0;
          wait_hist = Obs_histogram.make ();
        }
      in
      Hashtbl.add classes_tbl cls cs;
      cs

let stack_locked tid =
  match Hashtbl.find_opt held_stacks tid with
  | Some s -> s
  | None ->
      let s = ref [] in
      Hashtbl.add held_stacks tid s;
      s

let note_acquire ~tid ~name ~contended ~wait_cycles =
  let cls = class_of_name name in
  locked (fun () ->
      let cs = class_stats_locked cls in
      cs.acquisitions <- cs.acquisitions + 1;
      if contended then cs.contended <- cs.contended + 1;
      if wait_cycles > 0 then cs.wait_cycles <- cs.wait_cycles + wait_cycles;
      Obs_histogram.record cs.wait_hist wait_cycles;
      let stack = stack_locked tid in
      (if contended then
         match !stack with
         | holder :: _ when holder <> cls ->
             let key = (holder, cls) in
             (match Hashtbl.find_opt edges_tbl key with
             | Some r -> Stdlib.incr r
             | None -> Hashtbl.add edges_tbl key (ref 1))
         | _ -> ());
      stack := cls :: !stack)

let note_release ~tid ~name ~held_cycles =
  let cls = class_of_name name in
  locked (fun () ->
      let cs = class_stats_locked cls in
      if held_cycles > 0 then cs.hold_cycles <- cs.hold_cycles + held_cycles;
      let stack = stack_locked tid in
      (* remove the first (innermost) occurrence; releases need not nest *)
      let rec remove = function
        | [] -> []
        | c :: rest when c = cls -> rest
        | c :: rest -> c :: remove rest
      in
      stack := remove !stack)

let first_attempt_rate cs =
  if cs.acquisitions = 0 then 1.0
  else
    float_of_int (cs.acquisitions - cs.contended)
    /. float_of_int cs.acquisitions

let classes () =
  locked (fun () -> Hashtbl.fold (fun _ cs acc -> cs :: acc) classes_tbl [])
  |> List.sort (fun a b -> String.compare a.cls b.cls)

let top ~n =
  let by_wait =
    List.sort
      (fun a b ->
        match compare b.wait_cycles a.wait_cycles with
        | 0 -> compare b.acquisitions a.acquisitions
        | c -> c)
      (classes ())
  in
  List.filteri (fun i _ -> i < n) by_wait

let edges () =
  locked (fun () ->
      Hashtbl.fold (fun (a, b) n acc -> (a, b, !n) :: acc) edges_tbl [])
  |> List.sort (fun (_, _, x) (_, _, y) -> compare y x)

let reset () =
  locked (fun () ->
      Hashtbl.reset classes_tbl;
      Hashtbl.reset edges_tbl;
      Hashtbl.reset held_stacks)

let pp_report ?(top_n = 10) ppf () =
  let tops = top ~n:top_n in
  if tops = [] then Format.fprintf ppf "(no lock activity recorded)@."
  else begin
    Format.fprintf ppf "%-22s %9s %9s %7s %11s %11s %8s %8s@." "lock class"
      "acquires" "contended" "1st-try" "wait-cycles" "hold-cycles" "p50-wait"
      "p99-wait";
    List.iter
      (fun cs ->
        Format.fprintf ppf "%-22s %9d %9d %7.3f %11d %11d %8d %8d@." cs.cls
          cs.acquisitions cs.contended (first_attempt_rate cs) cs.wait_cycles
          cs.hold_cycles
          (Obs_histogram.percentile cs.wait_hist 50.0)
          (Obs_histogram.percentile cs.wait_hist 99.0))
      tops;
    match edges () with
    | [] -> ()
    | es ->
        Format.fprintf ppf "@.waits-for edges (holder -> wanted, count):@.";
        List.iter
          (fun (a, b, n) -> Format.fprintf ppf "  %s -> %s  (%d)@." a b n)
          es
  end

let to_json () =
  let open Obs_json in
  Obj
    [
      ( "classes",
        List
          (List.map
             (fun cs ->
               Obj
                 [
                   ("class", String cs.cls);
                   ("acquisitions", Int cs.acquisitions);
                   ("contended", Int cs.contended);
                   ("first_attempt_rate", Float (first_attempt_rate cs));
                   ("wait_cycles", Int cs.wait_cycles);
                   ("hold_cycles", Int cs.hold_cycles);
                   ("wait", Obs_histogram.to_json cs.wait_hist);
                 ])
             (classes ())) );
      ( "waits_for",
        List
          (List.map
             (fun (a, b, n) ->
               Obj
                 [
                   ("holder", String a); ("wanted", String b); ("count", Int n);
                 ])
             (edges ())) );
    ]
