(** The contention profiler.

    Aggregates lock acquisitions by {e lock class} (the lock's name with
    digits deleted, so "slock12" and "slock40" profile together) and
    maintains a waits-for edge list: each contended acquisition records an
    edge from the most recently acquired still-held lock class of the
    acquiring thread to the wanted class.  A cycle among those edges is
    the shape of the paper's deadlocks (section 4, section 7).

    Fed by the simple/complex lock implementations in [lib/core]; read by
    [machsim profile], the bench harness, and [examples/locking_tour].
    All entry points are mutex-protected and safe from native domains. *)

type class_stats = {
  cls : string;
  mutable acquisitions : int;
  mutable contended : int;
  mutable wait_cycles : int;
  mutable hold_cycles : int;
  wait_hist : Obs_histogram.t;
}

val class_of_name : string -> string
(** Lock name -> class: digits deleted; "lock" when nothing remains. *)

(** {1 Recording} (called from the lock layer) *)

val note_acquire :
  tid:int -> name:string -> contended:bool -> wait_cycles:int -> unit
(** Record an acquisition by thread [tid]; pushes the class onto the
    thread's held stack and, when contended, records a waits-for edge
    from the innermost held class. *)

val note_release : tid:int -> name:string -> held_cycles:int -> unit
(** Record a release; pops the innermost occurrence of the class from the
    thread's held stack. *)

(** {1 Reading} *)

val first_attempt_rate : class_stats -> float
(** 1.0 when the class has no acquisitions (mirrors
    {!Mach_core.Lock_stats.first_attempt_rate}). *)

val classes : unit -> class_stats list
(** All classes, sorted by name. *)

val top : n:int -> class_stats list
(** Top [n] classes by accumulated wait cycles. *)

val edges : unit -> (string * string * int) list
(** Waits-for edges (holder class, wanted class, count), most frequent
    first. *)

val reset : unit -> unit

val pp_report : ?top_n:int -> Format.formatter -> unit -> unit
(** The contention table (top classes with first-attempt rate and wait
    percentiles) followed by the waits-for edge list. *)

val to_json : unit -> Obs_json.t
