(* Causal span layer: per-thread nested spans, blocked-by attribution and
   the always-on flight recorder.

   A *span* brackets one causally meaningful interval — a lock hold
   (acquire -> release), an event wait (assert_wait -> wake), an IPC
   send/receive, a VM fault — and carries an acquire-site identity (the
   kind plus the instrumented name).  Spans nest per thread: the stack of
   open spans of a thread at any instant is what that thread "was doing",
   which is exactly what blocked-by attribution needs to say about a lock
   holder.

   State is domain-local (one simulation per domain; parallel seed sweeps
   must not share), costs one domain-local read plus a boolean when
   disabled, and deliberately consumes no engine randomness and charges
   no simulated cycles: a spans-on run is schedule- and stats-identical
   to a spans-off run (pinned by the determinism tests).

   The engine installs the clock/identity callbacks at run start and
   latches a frozen [view] at run end, before the [Run_reset] hook wipes
   the live tables — so post-run reporting ([machsim report], bench E18)
   reads [last] while in-run post-mortems (the deadlock flight dump) read
   [current]. *)

type kind = Lock | Event | Ipc | Vm

let kind_name = function
  | Lock -> "lock"
  | Event -> "event"
  | Ipc -> "ipc"
  | Vm -> "vm"

type ctx = {
  now : unit -> int;
  tid : unit -> int;
  tname : unit -> string;
  cpu : unit -> int;
}

type site = {
  s_label : string;
  s_kind : kind;
  mutable s_spans : int; (* closed spans *)
  mutable s_busy : int; (* total closed duration (hold / service time) *)
  mutable s_max : int; (* longest single span *)
  mutable s_blocked : int; (* contended waits against this site *)
  mutable s_blocked_cycles : int;
}

type flight_span = {
  f_label : string;
  f_tname : string;
  f_cpu : int;
  f_t0 : int;
  f_t1 : int;
}

type edge = {
  e_wanted : string;
  e_holder : string; (* the holder's enclosing span label *)
  mutable e_count : int;
  mutable e_cycles : int;
}

type view = {
  v_sites : site list; (* sorted by label *)
  v_edges : edge list; (* heaviest (blocked cycles) first *)
  v_flight : (int * flight_span list) list; (* per cpu, oldest first *)
  v_open : int; (* spans still open when the view was taken *)
}

let empty_view = { v_sites = []; v_edges = []; v_flight = []; v_open = 0 }

(* ------------------------------------------------------------------ *)
(* Domain-local state                                                   *)
(* ------------------------------------------------------------------ *)

(* [o_tname] is captured at enter so post-mortem dumps can name the
   thread without its tid: tids come from a globally monotonic counter,
   so printing them would make otherwise-identical runs' reports differ
   (the determinism tests compare reports byte-for-byte). *)
type open_span = {
  o_label : string;
  o_kind : kind;
  o_t0 : int;
  o_tname : string;
}

(* Bounded per-cpu ring of recently closed spans (the flight recorder).
   Sixteen per cpu is enough to reconstruct "what was everyone doing"
   at a post-mortem without letting a long run grow without bound. *)
let flight_cap = 16

type flight_ring = {
  fbuf : flight_span option array;
  mutable fnext : int;
}

type state = {
  mutable on : bool;
  mutable sctx : ctx option;
  sites : (string, site) Hashtbl.t;
  stacks : (int, open_span list) Hashtbl.t; (* tid -> innermost first *)
  edges : (string * string, edge) Hashtbl.t;
  mutable flight : flight_ring array; (* index cpu+1; slot 0 = off-cpu *)
}

let state_key : state Domain.DLS.key =
  Domain.DLS.new_key (fun () ->
      {
        on = false;
        sctx = None;
        sites = Hashtbl.create 64;
        stacks = Hashtbl.create 64;
        edges = Hashtbl.create 64;
        flight = [||];
      })

let st () = Domain.DLS.get state_key

let last_key : view option Domain.DLS.key = Domain.DLS.new_key (fun () -> None)

let set_enabled b = (st ()).on <- b
let install c = (st ()).sctx <- c
let enabled () = let s = st () in s.on && s.sctx <> None

(* Clears the per-run tables only: the enabled gate and callbacks belong
   to the engine's run lifecycle, not to the [Run_reset] hook (which also
   fires at run *setup*, after the engine has installed itself). *)
let reset () =
  let s = st () in
  Hashtbl.reset s.sites;
  Hashtbl.reset s.stacks;
  Hashtbl.reset s.edges;
  s.flight <- [||]

(* ------------------------------------------------------------------ *)
(* Recording                                                            *)
(* ------------------------------------------------------------------ *)

let label kind name = kind_name kind ^ ":" ^ name

let site_of s kind lbl =
  match Hashtbl.find_opt s.sites lbl with
  | Some site -> site
  | None ->
      let site =
        {
          s_label = lbl;
          s_kind = kind;
          s_spans = 0;
          s_busy = 0;
          s_max = 0;
          s_blocked = 0;
          s_blocked_cycles = 0;
        }
      in
      Hashtbl.add s.sites lbl site;
      site

let ring_of s cpu =
  let i = if cpu < 0 then 0 else cpu + 1 in
  let n = Array.length s.flight in
  if i >= n then begin
    let bigger =
      Array.init (i + 1) (fun k ->
          if k < n then s.flight.(k)
          else { fbuf = Array.make flight_cap None; fnext = 0 })
    in
    s.flight <- bigger
  end;
  s.flight.(i)

let push_flight s fs =
  let r = ring_of s fs.f_cpu in
  r.fbuf.(r.fnext) <- Some fs;
  r.fnext <- (r.fnext + 1) mod flight_cap

let enter kind name =
  let s = st () in
  match s.sctx with
  | Some c when s.on ->
      let tid = c.tid () in
      let sp =
        {
          o_label = label kind name;
          o_kind = kind;
          o_t0 = c.now ();
          o_tname = c.tname ();
        }
      in
      let cur = Option.value ~default:[] (Hashtbl.find_opt s.stacks tid) in
      Hashtbl.replace s.stacks tid (sp :: cur)
  | _ -> ()

let rec remove_first p = function
  | [] -> None
  | x :: rest ->
      if p x then Some (x, rest)
      else (
        match remove_first p rest with
        | Some (y, rest') -> Some (y, x :: rest')
        | None -> None)

let close s (c : ctx) tid sp =
  let t1 = c.now () in
  let dur = max 0 (t1 - sp.o_t0) in
  let site = site_of s sp.o_kind sp.o_label in
  site.s_spans <- site.s_spans + 1;
  site.s_busy <- site.s_busy + dur;
  if dur > site.s_max then site.s_max <- dur;
  push_flight s
    {
      f_label = sp.o_label;
      f_tname = c.tname ();
      f_cpu = c.cpu ();
      f_t0 = sp.o_t0;
      f_t1 = t1;
    };
  ignore tid;
  if Obs_trace.enabled () then
    Obs_trace.emit
      (Obs_event.Span_close
         { kind = kind_name sp.o_kind; site = sp.o_label; dur })

let exit_matching pred =
  let s = st () in
  match s.sctx with
  | Some c when s.on -> (
      let tid = c.tid () in
      match Hashtbl.find_opt s.stacks tid with
      | None -> ()
      | Some stack -> (
          match remove_first pred stack with
          | None -> ()
          | Some (sp, rest) ->
              (if rest = [] then Hashtbl.remove s.stacks tid
               else Hashtbl.replace s.stacks tid rest);
              close s c tid sp))
  | _ -> ()

let exit kind name =
  (* Compute the label lazily-enough: only when active. *)
  let s = st () in
  if s.on && s.sctx <> None then
    let lbl = label kind name in
    exit_matching (fun sp -> sp.o_label = lbl)

let exit_kind kind = exit_matching (fun sp -> sp.o_kind = kind)

(* The holder's "acquire site": the span enclosing its open span for the
   wanted resource — i.e. what the holder was doing when it took the
   lock the waiter wants.  Falls back to the holder's innermost span
   (event-aliased holds may not have opened the wanted span), then to
   "(top-level)". *)
let holder_context stack wanted =
  let rec after = function
    | [] -> None
    | sp :: rest when sp.o_label = wanted -> (
        match rest with
        | [] -> Some "(top-level)"
        | outer :: _ -> Some outer.o_label)
    | _ :: rest -> after rest
  in
  match after stack with
  | Some l -> l
  | None -> ( match stack with sp :: _ -> sp.o_label | [] -> "(top-level)")

let blocked ~kind ~name ~holder_tid ~wait_cycles =
  let s = st () in
  match s.sctx with
  | Some _ when s.on ->
      let wanted = label kind name in
      let site = site_of s kind wanted in
      site.s_blocked <- site.s_blocked + 1;
      site.s_blocked_cycles <- site.s_blocked_cycles + max 0 wait_cycles;
      let hstack =
        Option.value ~default:[] (Hashtbl.find_opt s.stacks holder_tid)
      in
      let holder = holder_context hstack wanted in
      let key = (wanted, holder) in
      (match Hashtbl.find_opt s.edges key with
      | Some e ->
          e.e_count <- e.e_count + 1;
          e.e_cycles <- e.e_cycles + max 0 wait_cycles
      | None ->
          Hashtbl.add s.edges key
            {
              e_wanted = wanted;
              e_holder = holder;
              e_count = 1;
              e_cycles = max 0 wait_cycles;
            })
  | _ -> ()

(* ------------------------------------------------------------------ *)
(* Views                                                                *)
(* ------------------------------------------------------------------ *)

let copy_site s = { s with s_label = s.s_label }
let copy_edge e = { e with e_wanted = e.e_wanted }

let flight_of_ring r =
  let out = ref [] in
  for i = 0 to flight_cap - 1 do
    let idx = (r.fnext + i) mod flight_cap in
    match r.fbuf.(idx) with Some fs -> out := fs :: !out | None -> ()
  done;
  List.rev !out

let current () =
  let s = st () in
  let sites =
    Hashtbl.fold (fun _ site acc -> copy_site site :: acc) s.sites []
    |> List.sort (fun a b -> String.compare a.s_label b.s_label)
  in
  let edges =
    Hashtbl.fold (fun _ e acc -> copy_edge e :: acc) s.edges []
    |> List.sort (fun a b ->
           match compare b.e_cycles a.e_cycles with
           | 0 -> compare (a.e_wanted, a.e_holder) (b.e_wanted, b.e_holder)
           | c -> c)
  in
  let flight =
    Array.to_list
      (Array.mapi (fun i r -> (i - 1, flight_of_ring r)) s.flight)
    |> List.filter (fun (_, l) -> l <> [])
  in
  let open_spans =
    Hashtbl.fold (fun _ stack acc -> acc + List.length stack) s.stacks 0
  in
  { v_sites = sites; v_edges = edges; v_flight = flight; v_open = open_spans }

let latch () = Domain.DLS.set last_key (Some (current ()))
let last () = Domain.DLS.get last_key

(* ------------------------------------------------------------------ *)
(* Rendering                                                            *)
(* ------------------------------------------------------------------ *)

let pp_blockers ?(top_n = 10) ppf v =
  let by_blocked =
    List.sort
      (fun a b ->
        match compare b.s_blocked_cycles a.s_blocked_cycles with
        | 0 -> String.compare a.s_label b.s_label
        | c -> c)
      v.v_sites
  in
  match by_blocked with
  | [] -> Format.fprintf ppf "(no spans recorded)@."
  | sites ->
      Format.fprintf ppf "%-28s %7s %11s %8s %8s %12s@." "site" "spans"
        "busy-cycles" "max" "blocked" "blocked-cyc";
      List.iteri
        (fun i site ->
          if i < top_n then
            Format.fprintf ppf "%-28s %7d %11d %8d %8d %12d@." site.s_label
              site.s_spans site.s_busy site.s_max site.s_blocked
              site.s_blocked_cycles)
        sites;
      if v.v_edges <> [] then begin
        Format.fprintf ppf "@.blocked-by edges (wanted <- holder context):@.";
        List.iteri
          (fun i e ->
            if i < top_n then
              Format.fprintf ppf "  %s <- %s  (%d waits, %d cycles)@."
                e.e_wanted e.e_holder e.e_count e.e_cycles)
          v.v_edges
      end

let pp_flight ppf v =
  if v.v_flight <> [] then begin
    Format.fprintf ppf "flight recorder (most recent spans per cpu):@.";
    List.iter
      (fun (cpu, spans) ->
        Format.fprintf ppf "  cpu%d:@." cpu;
        List.iter
          (fun fs ->
            Format.fprintf ppf "    [%8d..%8d] %-26s %s@." fs.f_t0 fs.f_t1
              fs.f_label fs.f_tname)
          spans)
      v.v_flight
  end

(* The post-mortem suffix appended to deadlock reports; empty when the
   recorder saw nothing (spans off or no activity).  Open spans are the
   diagnostic half at a hang — a deadlocked run often completed few or
   no spans (the §7 holder never releases), but what every thread still
   HOLDS at dump time is exactly the evidence the cycle is made of. *)
let flight_dump () =
  let s = st () in
  let v = current () in
  let opens =
    Hashtbl.fold (fun tid stack acc -> (tid, stack) :: acc) s.stacks []
    |> List.filter (fun (_, stack) -> stack <> [])
    |> List.sort (fun (a, _) (b, _) -> compare a b)
  in
  if v.v_flight = [] && opens = [] then ""
  else
    Format.asprintf "%a%a" pp_flight v
      (fun ppf -> function
        | [] -> ()
        | opens ->
            Format.fprintf ppf
              "open spans at the hang (per thread, innermost first):@.";
            List.iter
              (fun ((_ : int), stack) ->
                (* Sorted by tid (stable across identical runs) but
                   printed by name: the raw tid would differ between
                   byte-compared repeat runs. *)
                let tname =
                  match stack with sp :: _ -> sp.o_tname | [] -> "?"
                in
                Format.fprintf ppf "  %s: %s@." tname
                  (String.concat " < "
                     (List.map
                        (fun sp ->
                          Printf.sprintf "%s since %d" sp.o_label sp.o_t0)
                        stack)))
              opens)
      opens

let to_json v =
  let open Obs_json in
  Obj
    [
      ( "sites",
        List
          (List.map
             (fun s ->
               Obj
                 [
                   ("site", String s.s_label);
                   ("kind", String (kind_name s.s_kind));
                   ("spans", Int s.s_spans);
                   ("busy_cycles", Int s.s_busy);
                   ("max_cycles", Int s.s_max);
                   ("blocked", Int s.s_blocked);
                   ("blocked_cycles", Int s.s_blocked_cycles);
                 ])
             v.v_sites) );
      ( "blocked_by",
        List
          (List.map
             (fun e ->
               Obj
                 [
                   ("wanted", String e.e_wanted);
                   ("holder", String e.e_holder);
                   ("count", Int e.e_count);
                   ("cycles", Int e.e_cycles);
                 ])
             v.v_edges) );
      ( "flight",
        List
          (List.map
             (fun (cpu, spans) ->
               Obj
                 [
                   ("cpu", Int cpu);
                   ( "spans",
                     List
                       (List.map
                          (fun fs ->
                            Obj
                              [
                                ("site", String fs.f_label);
                                ("thread", String fs.f_tname);
                                ("t0", Int fs.f_t0);
                                ("t1", Int fs.f_t1);
                              ])
                          spans) );
                 ])
             v.v_flight) );
      ("open_spans", Int v.v_open);
    ]
