(** Causal spans, blocked-by attribution and the flight recorder.

    A span brackets one causally meaningful interval on a thread — a lock
    hold (acquire -> release), an event wait (assert_wait -> wake), an IPC
    send/receive, a VM fault (fault -> resolve) — identified by an
    acquire-site label ["kind:name"].  Spans nest per thread; the stack of
    a thread's open spans is "what it is doing right now", which is what
    blocked-by attribution reports about a lock holder.

    Recording is doubly gated like {!Obs_trace}: the engine installs the
    clock/identity callbacks ({!install}) at run start and switches the
    layer on from [cfg.spans] ({!set_enabled}).  When either gate is off
    every entry point is a near-free no-op, and recording never consumes
    engine randomness nor charges simulated cycles — a spans-on run is
    schedule- and stats-identical to a spans-off run.

    Post-run readers use the {!view} the engine {!latch}es at run end
    (before the [Run_reset] hook clears the live tables); in-run
    post-mortems (the deadlock flight dump) read {!current}. *)

type kind = Lock | Event | Ipc | Vm

val kind_name : kind -> string
(** "lock" / "event" / "ipc" / "vm". *)

type ctx = {
  now : unit -> int;  (** current simulated clock, cycles *)
  tid : unit -> int;  (** running thread id *)
  tname : unit -> string;  (** running thread name *)
  cpu : unit -> int;  (** current cpu (-1 off-cpu) *)
}

(** {1 Gates (engine-managed)} *)

val install : ctx option -> unit
val set_enabled : bool -> unit

val enabled : unit -> bool
(** True iff a context is installed and spans are on; guard label
    construction at call sites that build names dynamically. *)

(** {1 Recording} *)

val enter : kind -> string -> unit
(** Open a span at site ["kind:name"] on the running thread. *)

val exit : kind -> string -> unit
(** Close the running thread's innermost open span matching the site;
    updates site stats, appends to the cpu's flight ring, and emits an
    {!Obs_event.Span_close} when tracing is on.  No-op if no span at that
    site is open (unbalanced calls are tolerated, never fatal). *)

val exit_kind : kind -> unit
(** Close the innermost open span of the given kind regardless of site —
    for waiters that cannot cheaply recover the site name at wake. *)

val blocked :
  kind:kind -> name:string -> holder_tid:int -> wait_cycles:int -> unit
(** Record one contended wait: the running thread wanted site
    ["kind:name"] while [holder_tid] held it.  Accumulates an edge from
    the wanted site to the holder's acquire-site context (the span
    enclosing its hold — what the holder was doing when it took the
    resource) weighted by count and [wait_cycles]. *)

(** {1 Views} *)

type site = {
  s_label : string;
  s_kind : kind;
  mutable s_spans : int;  (** closed spans *)
  mutable s_busy : int;  (** total closed duration (hold/service cycles) *)
  mutable s_max : int;  (** longest single span *)
  mutable s_blocked : int;  (** contended waits against this site *)
  mutable s_blocked_cycles : int;
}

type flight_span = {
  f_label : string;
  f_tname : string;
  f_cpu : int;
  f_t0 : int;
  f_t1 : int;
}

type edge = {
  e_wanted : string;
  e_holder : string;
  mutable e_count : int;
  mutable e_cycles : int;
}

type view = {
  v_sites : site list;  (** sorted by label *)
  v_edges : edge list;  (** heaviest (blocked cycles) first *)
  v_flight : (int * flight_span list) list;  (** per cpu, oldest first *)
  v_open : int;  (** spans still open when the view was taken *)
}

val empty_view : view

val current : unit -> view
(** Snapshot of the live (in-run) state. *)

val latch : unit -> unit
(** Freeze {!current} as the last-run view; the engine calls this at run
    end, before [Run_reset] clears the live tables. *)

val last : unit -> view option
(** The view latched at the end of the most recent run, if any. *)

val reset : unit -> unit
(** Clear the live tables (sites, stacks, edges, flight rings); the
    engine registers this with [Run_reset].  Gates and the latched view
    are left alone. *)

(** {1 Rendering} *)

val pp_blockers : ?top_n:int -> Format.formatter -> view -> unit
(** Lockstat-style table: per-site span/hold/blocked breakdown followed
    by the blocked-by edges (wanted <- holder context). *)

val pp_flight : Format.formatter -> view -> unit
(** The flight-recorder dump (most recent spans per cpu); prints nothing
    for an empty recorder. *)

val flight_dump : unit -> string
(** {!pp_flight} of {!current}, followed by each thread's still-open
    spans (at a hang, what every thread still holds is the evidence the
    cycle is made of); [""] when both are empty.  Appended to the
    engine's deadlock/livelock reports. *)

val to_json : view -> Obs_json.t
