let sink : (Obs_event.t -> unit) option ref = ref None
let on = ref false

let set_sink f = sink := f
let set_enabled b = on := b
let enabled () = !on && !sink <> None

let emit ev =
  if !on then match !sink with Some f -> f ev | None -> ()
