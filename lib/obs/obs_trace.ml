(* Sink and gate are domain-local: each domain runs at most one simulator
   engine, and parallel seed sweeps must not have one domain's engine
   receive another domain's events. *)

let sink : (Obs_event.t -> unit) option Domain.DLS.key =
  Domain.DLS.new_key (fun () -> None)

let on : bool Domain.DLS.key = Domain.DLS.new_key (fun () -> false)

let set_sink f = Domain.DLS.set sink f
let set_enabled b = Domain.DLS.set on b
let enabled () = Domain.DLS.get on && Domain.DLS.get sink <> None

let emit ev =
  if Domain.DLS.get on then
    match Domain.DLS.get sink with Some f -> f ev | None -> ()
