(** The domain-local typed-event sink.

    Layers that have no handle on the trace buffer (the lock and event
    modules in [lib/core], the vm layer) emit through this hook; the
    simulator engine installs itself as the sink and stamps each event
    with its scheduling context (step, cpu, clock, running frame).

    Emission is gated twice: a sink must be installed ([set_sink]) and
    tracing must be switched on ([set_enabled], done by the engine from
    its run configuration).  Hot paths should guard payload construction
    with {!enabled} — e.g.
    [if Obs_trace.enabled () then Obs_trace.emit (Lock_acquire ...)]. *)

val set_sink : (Obs_event.t -> unit) option -> unit
val set_enabled : bool -> unit

val enabled : unit -> bool
(** True iff a sink is installed and tracing is on. *)

val emit : Obs_event.t -> unit
(** Forward [ev] to the sink; no-op when disabled. *)
