type policy = Random_policy | Round_robin | Timed

let policy_name = function
  | Random_policy -> "random"
  | Round_robin -> "round-robin"
  | Timed -> "timed"

(* Fault-injection odds: each field is a 1-in-N chance per opportunity
   (0 = never).  Draws come from a dedicated chaos RNG seeded by
   [fault_seed] (or the schedule seed when 0), so enabling a fault class
   never consumes schedule randomness, and all-zero odds leave the run
   byte-identical to an uninjected one. *)
type faults = {
  fault_seed : int;
  drop_wakeup : int; (* unpark of a parked thread silently dropped *)
  delay_wakeup : int; (* unpark deferred by [wakeup_delay_steps] steps *)
  wakeup_delay_steps : int;
  spurious_wakeup : int; (* per-step chance to unpark a random parked thread *)
  delay_interrupt : int; (* deliverable interrupt deferred when possible *)
  perturb_pick : int; (* per-step chance to pick a uniform-random candidate *)
  preempt_on_acquire : int; (* forced preemption at test-and-set boundaries *)
  drop_handoff : int; (* queue-lock successor handoff silently dropped *)
}

let no_faults =
  {
    fault_seed = 0;
    drop_wakeup = 0;
    delay_wakeup = 0;
    wakeup_delay_steps = 40;
    spurious_wakeup = 0;
    delay_interrupt = 0;
    perturb_pick = 0;
    preempt_on_acquire = 0;
    drop_handoff = 0;
  }

let faults_active f =
  f.drop_wakeup > 0 || f.delay_wakeup > 0 || f.spurious_wakeup > 0
  || f.delay_interrupt > 0 || f.perturb_pick > 0 || f.preempt_on_acquire > 0
  || f.drop_handoff > 0

(* Model-checking hooks.  When [mc] is set the engine stops drawing from
   its RNG: at every scheduler step it enumerates the enabled transitions
   (in a deterministic order) and asks [mc_choose] which to execute, then
   reports the executed slice's shared-state footprint to [mc_commit].
   The driver lives in lib/mc; the types live here so lib/mc can depend
   on lib/sim without a cycle. *)

(* Transition descriptors are stable across re-executions of the same
   choice prefix: threads are named by their per-run spawn sequence (not
   the process-global tid) and interrupts by their FIFO slot, so a
   descriptor recorded in one execution identifies the same transition in
   a sibling execution. *)
type mc_action =
  | Mc_deliver of { slot : int; intr : string; level : string }
      (* take pending interrupt [slot] (FIFO position within the highest
         deliverable level) on this cpu *)
  | Mc_resume of { frame : string }
      (* run the cpu's top frame to its next preemption point *)
  | Mc_dispatch of { thread : string; tseq : int }
      (* context-switch the queued thread with per-run spawn index [tseq]
         onto this (idle) cpu *)

type mc_transition = { mc_cpu : int; mc_what : mc_action }

(* One shared-state access of an executed slice.  Cells created during a
   run carry negative per-run ids (deterministic across re-executions);
   cells created outside any run keep stable positive global ids. *)
type mc_access =
  | Mc_cell of { cell : int; write : bool }
  | Mc_thread of int (* per-run spawn index: state/permit/joiner access *)
  | Mc_runq (* global run-queue order *)
  | Mc_intrq of int (* a cpu's pending-interrupt queues *)
  | Mc_spl of int (* a cpu's interrupt priority level *)

type mc_hooks = {
  mc_choose : mc_transition array -> int;
      (* pick the next transition; the array is non-empty and in
         deterministic (cpu-ascending) order *)
  mc_commit : mc_access list -> unit;
      (* footprint of the transition just executed, in program order with
         duplicates removed *)
}

type t = {
  cpus : int;
  seed : int;
  policy : policy;
  read_hit_cost : int;
  read_miss_cost : int;
  write_cost : int;
  atomic_cost : int;
  bus_occupancy : int;
  pause_cost : int;
  local_cost : int;
  context_switch_cost : int;
  interrupt_cost : int;
  preempt_on_cell_ops : bool;
  spin_max_backoff : int;
  watchdog_steps : int;
  max_steps : int option;
  trace : bool;
  trace_capacity : int;
  spans : bool;
  faults : faults;
  track_waits : bool;
  mc : mc_hooks option;
      (* systematic-exploration hooks; None = seeded scheduling *)
}

let default =
  {
    cpus = 4;
    seed = 1;
    policy = Timed;
    read_hit_cost = 1;
    read_miss_cost = 40;
    write_cost = 20;
    atomic_cost = 50;
    bus_occupancy = 20;
    pause_cost = 4;
    local_cost = 1;
    context_switch_cost = 300;
    interrupt_cost = 150;
    preempt_on_cell_ops = true;
    spin_max_backoff = 1024;
    watchdog_steps = 1_000_000;
    max_steps = None;
    trace = false;
    trace_capacity = 65536;
    spans = true;
    faults = no_faults;
    track_waits = false;
    mc = None;
  }

let exploration ?(cpus = 4) ~seed () =
  {
    default with
    cpus;
    seed;
    policy = Random_policy;
    preempt_on_cell_ops = true;
    watchdog_steps = 200_000;
  }

let bench ?(cpus = 8) () =
  { default with cpus; policy = Timed; preempt_on_cell_ops = true }
