type policy = Random_policy | Round_robin | Timed

let policy_name = function
  | Random_policy -> "random"
  | Round_robin -> "round-robin"
  | Timed -> "timed"

type t = {
  cpus : int;
  seed : int;
  policy : policy;
  read_hit_cost : int;
  read_miss_cost : int;
  write_cost : int;
  atomic_cost : int;
  bus_occupancy : int;
  pause_cost : int;
  local_cost : int;
  context_switch_cost : int;
  interrupt_cost : int;
  preempt_on_cell_ops : bool;
  spin_max_backoff : int;
  watchdog_steps : int;
  max_steps : int option;
  trace : bool;
  trace_capacity : int;
}

let default =
  {
    cpus = 4;
    seed = 1;
    policy = Timed;
    read_hit_cost = 1;
    read_miss_cost = 40;
    write_cost = 20;
    atomic_cost = 50;
    bus_occupancy = 20;
    pause_cost = 4;
    local_cost = 1;
    context_switch_cost = 300;
    interrupt_cost = 150;
    preempt_on_cell_ops = true;
    spin_max_backoff = 1024;
    watchdog_steps = 1_000_000;
    max_steps = None;
    trace = false;
    trace_capacity = 65536;
  }

let exploration ?(cpus = 4) ~seed () =
  {
    default with
    cpus;
    seed;
    policy = Random_policy;
    preempt_on_cell_ops = true;
    watchdog_steps = 200_000;
  }

let bench ?(cpus = 8) () =
  { default with cpus; policy = Timed; preempt_on_cell_ops = true }
