type policy = Random_policy | Round_robin | Timed

let policy_name = function
  | Random_policy -> "random"
  | Round_robin -> "round-robin"
  | Timed -> "timed"

(* Fault-injection odds: each field is a 1-in-N chance per opportunity
   (0 = never).  Draws come from a dedicated chaos RNG seeded by
   [fault_seed] (or the schedule seed when 0), so enabling a fault class
   never consumes schedule randomness, and all-zero odds leave the run
   byte-identical to an uninjected one. *)
type faults = {
  fault_seed : int;
  drop_wakeup : int; (* unpark of a parked thread silently dropped *)
  delay_wakeup : int; (* unpark deferred by [wakeup_delay_steps] steps *)
  wakeup_delay_steps : int;
  spurious_wakeup : int; (* per-step chance to unpark a random parked thread *)
  delay_interrupt : int; (* deliverable interrupt deferred when possible *)
  perturb_pick : int; (* per-step chance to pick a uniform-random candidate *)
  preempt_on_acquire : int; (* forced preemption at test-and-set boundaries *)
}

let no_faults =
  {
    fault_seed = 0;
    drop_wakeup = 0;
    delay_wakeup = 0;
    wakeup_delay_steps = 40;
    spurious_wakeup = 0;
    delay_interrupt = 0;
    perturb_pick = 0;
    preempt_on_acquire = 0;
  }

let faults_active f =
  f.drop_wakeup > 0 || f.delay_wakeup > 0 || f.spurious_wakeup > 0
  || f.delay_interrupt > 0 || f.perturb_pick > 0 || f.preempt_on_acquire > 0

type t = {
  cpus : int;
  seed : int;
  policy : policy;
  read_hit_cost : int;
  read_miss_cost : int;
  write_cost : int;
  atomic_cost : int;
  bus_occupancy : int;
  pause_cost : int;
  local_cost : int;
  context_switch_cost : int;
  interrupt_cost : int;
  preempt_on_cell_ops : bool;
  spin_max_backoff : int;
  watchdog_steps : int;
  max_steps : int option;
  trace : bool;
  trace_capacity : int;
  faults : faults;
  track_waits : bool;
}

let default =
  {
    cpus = 4;
    seed = 1;
    policy = Timed;
    read_hit_cost = 1;
    read_miss_cost = 40;
    write_cost = 20;
    atomic_cost = 50;
    bus_occupancy = 20;
    pause_cost = 4;
    local_cost = 1;
    context_switch_cost = 300;
    interrupt_cost = 150;
    preempt_on_cell_ops = true;
    spin_max_backoff = 1024;
    watchdog_steps = 1_000_000;
    max_steps = None;
    trace = false;
    trace_capacity = 65536;
    faults = no_faults;
    track_waits = false;
  }

let exploration ?(cpus = 4) ~seed () =
  {
    default with
    cpus;
    seed;
    policy = Random_policy;
    preempt_on_cell_ops = true;
    watchdog_steps = 200_000;
  }

let bench ?(cpus = 8) () =
  { default with cpus; policy = Timed; preempt_on_cell_ops = true }
