(** Simulator configuration: machine size, scheduling policy and the cycle
    cost model.

    The cost model captures the quantities section 2 of the paper reasons
    about: a spinning read that hits the processor cache is nearly free; a
    cache miss or an atomic (interlocked) operation crosses the shared bus
    and serializes against all other bus traffic.  Absolute values are
    loosely calibrated to late-1980s shared-bus multiprocessors (Encore
    Multimax class); only ratios matter for the experiment shapes. *)

type policy =
  | Random_policy   (** pick uniformly among advanceable cpus (exploration) *)
  | Round_robin     (** cycle through cpus (exploration, deterministic) *)
  | Timed           (** advance the cpu with the smallest clock (cost model) *)

val policy_name : policy -> string

type faults = {
  fault_seed : int;
      (** seed of the dedicated chaos RNG; 0 = derive from the schedule
          seed.  Fault draws never consume schedule randomness. *)
  drop_wakeup : int;
      (** 1-in-N chance (0 = never) that an unpark of a parked thread is
          silently dropped — the lost-wakeup hazard of section 6 *)
  delay_wakeup : int;
      (** 1-in-N chance that an unpark is deferred *)
  wakeup_delay_steps : int;
      (** scheduler steps a delayed wakeup is deferred by *)
  spurious_wakeup : int;
      (** per-step 1-in-N chance to unpark a random parked thread
          (spurious [thread_wakeup]; wait loops must tolerate it) *)
  delay_interrupt : int;
      (** 1-in-N chance a deliverable interrupt is deferred for a step
          when the cpu has an alternative action *)
  perturb_pick : int;
      (** per-step 1-in-N chance to override the scheduling policy with a
          uniform-random candidate pick *)
  preempt_on_acquire : int;
      (** 1-in-N chance of a forced preemption (thread descheduled and
          re-enqueued) immediately before a test-and-set *)
  drop_handoff : int;
      (** 1-in-N chance that a queue-lock's explicit successor handoff
          (e.g. the MCS holder's store to its successor's spin cell) is
          silently dropped — the spin-lock analogue of a lost wakeup *)
}

val no_faults : faults
(** All odds zero: injection disabled, schedules byte-identical to a
    configuration without the faults record. *)

val faults_active : faults -> bool

(** {1 Model-checking hooks}

    When {!t.mc} is set the engine runs under a {e systematic} scheduler
    instead of a seeded one: at every step it enumerates the enabled
    transitions in a deterministic order and asks [mc_choose] which one to
    execute, then reports the executed slice's shared-state footprint to
    [mc_commit].  The DFS/DPOR driver over these hooks lives in [lib/mc];
    the types live here so that library can depend on [lib/sim] without a
    dependency cycle. *)

type mc_action =
  | Mc_deliver of { slot : int; intr : string; level : string }
      (** deliver the pending interrupt at FIFO position [slot] within
          the cpu's highest deliverable level *)
  | Mc_resume of { frame : string }
      (** run the cpu's top frame to its next preemption point *)
  | Mc_dispatch of { thread : string; tseq : int }
      (** context-switch the queued thread with per-run spawn index
          [tseq] onto this (idle) cpu *)

type mc_transition = { mc_cpu : int; mc_what : mc_action }
(** Descriptors are stable across re-executions of the same choice
    prefix: threads are identified by per-run spawn sequence, interrupts
    by FIFO slot — never by process-global ids. *)

type mc_access =
  | Mc_cell of { cell : int; write : bool }
      (** a shared cell; negative ids are per-run (deterministic),
          positive ids belong to cells created outside any run *)
  | Mc_thread of int  (** thread state/permits/joiners, by spawn index *)
  | Mc_runq  (** the global run-queue order *)
  | Mc_intrq of int  (** a cpu's pending-interrupt queues *)
  | Mc_spl of int  (** a cpu's interrupt priority level *)

type mc_hooks = {
  mc_choose : mc_transition array -> int;
      (** pick the index of the next transition to execute; the array is
          non-empty, in deterministic (cpu-ascending) order *)
  mc_commit : mc_access list -> unit;
      (** the footprint of the transition just executed, in program
          order, duplicates removed *)
}

type t = {
  cpus : int;               (** number of virtual processors *)
  seed : int;               (** scheduling seed *)
  policy : policy;
  read_hit_cost : int;      (** cached read *)
  read_miss_cost : int;     (** read that misses and crosses the bus *)
  write_cost : int;         (** write (invalidates other caches) *)
  atomic_cost : int;        (** interlocked operation (test-and-set etc.) *)
  bus_occupancy : int;      (** bus cycles a miss/atomic keeps the bus busy *)
  pause_cost : int;         (** one spin-loop iteration's local work *)
  local_cost : int;         (** generic local work unit *)
  context_switch_cost : int;
  interrupt_cost : int;     (** dispatch overhead of taking an interrupt *)
  preempt_on_cell_ops : bool;
      (** make every shared-cell operation a preemption point (finest
          interleaving granularity; on for exploration) *)
  spin_max_backoff : int;
      (** cap (in cycles) on the exponential-backoff delay of the
          [Ttas_backoff] spin protocol *)
  watchdog_steps : int;
      (** scheduler steps without productive work before declaring a
          spin deadlock / livelock *)
  max_steps : int option;   (** hard step bound, None = unbounded *)
  trace : bool;             (** record an event trace *)
  trace_capacity : int;
  spans : bool;
      (** record causal spans and blocked-by edges ([Obs_span]) and feed
          the flight recorder.  On by default: recording consumes no
          schedule randomness and charges no cycles, so stats are
          byte-identical either way (pinned by the determinism tests). *)
  faults : faults;          (** fault-injection odds; {!no_faults} = off *)
  track_waits : bool;
      (** report exact wait/hold edges into [Waits_for] so the engine's
          deadlock detector can name cycles and orphaned waiters *)
  mc : mc_hooks option;
      (** systematic-exploration hooks; [None] = seeded scheduling.
          Incompatible with fault injection. *)
}

val default : t
(** 4 cpus, seed 1, [Timed], the calibrated cost table, checking-friendly
    watchdog. *)

val exploration : ?cpus:int -> seed:int -> unit -> t
(** Random policy with per-cell preemption: the configuration used by the
    schedule-exploration tests. *)

val bench : ?cpus:int -> unit -> t
(** Timed policy without per-cell preemption pauses beyond spin loops:
    the configuration used by the cycle-model benchmarks. *)
