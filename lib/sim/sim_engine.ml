module Spl = Mach_core.Spl
module Waits_for = Mach_core.Waits_for
module Run_reset = Mach_core.Run_reset
module Obs_event = Mach_obs.Obs_event
module Obs_trace = Mach_obs.Obs_trace

type deadlock_kind = Sleep_deadlock | Spin_deadlock

exception Kernel_panic of string
exception Deadlock of deadlock_kind * string
exception Step_limit

type tstate = Runnable | Parked | Dead

type cont = (unit, unit) Effect.Deep.continuation

type thread = {
  tid : int;
  tname : string;
  mutable state : tstate;
  mutable permits : int;
  mutable cont : cont option;
  mutable start : (unit -> unit) option;
  mutable tls : int array;
  mutable saved_spl : Spl.t;
  mutable bound : int option;
  mutable ready_clock : int;
  mutable hint : string option;
  mutable joiners : thread list;
  mutable on_cpu : int; (* -1 when not on a cpu *)
  mutable enq_seq : int; (* global enqueue order across all run queues *)
}

type intr = {
  iname : string;
  ilevel : Spl.t;
  mutable ihandler : (unit -> unit) option;
  mutable icont : cont option;
  mutable isaved_spl : Spl.t;
  mutable ihint : string option;
}

type frame = Fthread of thread | Fintr of intr

(* ------------------------------------------------------------------ *)
(* Array-backed FIFO (power-of-two ring, grows on demand).  The        *)
(* scheduler's queues were lists with O(n) tail appends and O(n)       *)
(* scans; every operation here is O(1) and allocation-free.            *)
(* ------------------------------------------------------------------ *)

module Tq = struct
  type 'a t = {
    mutable buf : 'a array;
    mutable head : int;
    mutable len : int;
    dummy : 'a;
  }

  let make dummy = { buf = Array.make 16 dummy; head = 0; len = 0; dummy }
  let is_empty q = q.len = 0

  let grow q =
    let cap = Array.length q.buf in
    let bigger = Array.make (2 * cap) q.dummy in
    for i = 0 to q.len - 1 do
      bigger.(i) <- q.buf.((q.head + i) land (cap - 1))
    done;
    q.buf <- bigger;
    q.head <- 0

  let push q x =
    if q.len = Array.length q.buf then grow q;
    q.buf.((q.head + q.len) land (Array.length q.buf - 1)) <- x;
    q.len <- q.len + 1

  (* Valid only when [not (is_empty q)]; callers check. *)
  let peek q = q.buf.(q.head)

  let pop q =
    let x = q.buf.(q.head) in
    q.buf.(q.head) <- q.dummy;
    q.head <- (q.head + 1) land (Array.length q.buf - 1);
    q.len <- q.len - 1;
    x

  let iter f q =
    for i = 0 to q.len - 1 do
      f q.buf.((q.head + i) land (Array.length q.buf - 1))
    done
end

(* Interrupt priority levels are dense ranks 0..n_spl-1; pending
   interrupts live in one FIFO per level with a summary bitmask, so both
   "is anything deliverable at this spl?" and "highest-priority pending"
   are O(1) instead of list scans. *)
let n_spl = Spl.rank Spl.Splhigh + 1

type cpu = {
  idx : int;
  mutable clock : int;
  mutable spl : Spl.t;
  mutable frames : frame list; (* top first; thread frame at the bottom *)
  pend : intr Tq.t array; (* queued interrupts, FIFO per level rank *)
  mutable pend_mask : int; (* bit r set iff pend.(r) is non-empty *)
  mutable pend_count : int;
}

type mstats = {
  mutable m_steps : int;
  mutable m_bus : int;
  mutable m_misses : int;
  mutable m_atomics : int;
  mutable m_intrs : int;
  mutable m_switches : int;
  mutable m_spawned : int;
  mutable m_parks : int;
  mutable m_unparks : int;
  mutable m_spin_pauses : int;
}

(* Injection tallies, deliberately separate from [stats]: the stats
   record and its printer are pinned byte-for-byte by the golden
   determinism tests, and with injection disabled every count here is
   zero anyway. *)
type chaos_stats = {
  dropped_wakeups : int;
  delayed_wakeups : int;
  spurious_wakeups : int;
  delayed_interrupts : int;
  perturbed_picks : int;
  forced_preemptions : int;
}

type cstate = {
  mutable c_dropped : int;
  mutable c_delayed : int;
  mutable c_spurious : int;
  mutable c_delayed_intr : int;
  mutable c_perturbed : int;
  mutable c_preempted : int;
}

let pp_chaos_stats ppf c =
  Format.fprintf ppf
    "dropped=%d delayed=%d spurious=%d delayed-intrs=%d perturbed-picks=%d \
     forced-preemptions=%d"
    c.dropped_wakeups c.delayed_wakeups c.spurious_wakeups c.delayed_interrupts
    c.perturbed_picks c.forced_preemptions

(* What the waits-for detector concluded about the most recent deadlock:
   the cycle (node labels in order, closing back on the first) and/or
   orphaned waiters (parked threads whose wakeup can no longer arrive). *)
type deadlock_analysis = { cycle : string list; orphans : string list }

type stats = {
  steps : int;
  makespan : int;
  bus_transactions : int;
  cache_misses : int;
  atomic_ops : int;
  interrupts_delivered : int;
  context_switches : int;
  spawned_threads : int;
  parks : int;
  unparks : int;
  spin_pauses : int;
}

let pp_stats ppf s =
  Format.fprintf ppf
    "steps=%d makespan=%d bus=%d misses=%d atomics=%d intrs=%d switches=%d \
     spawned=%d parks=%d unparks=%d spin-pauses=%d"
    s.steps s.makespan s.bus_transactions s.cache_misses s.atomic_ops
    s.interrupts_delivered s.context_switches s.spawned_threads s.parks
    s.unparks s.spin_pauses

type engine = {
  cfg : Sim_config.t;
  rng : Sim_rng.t;
  (* Chaos draws come from their own RNG so enabling a fault class never
     shifts the schedule stream; [faults_on] is precomputed so the
     disabled case costs one boolean test per hook. *)
  crng : Sim_rng.t;
  faults_on : bool;
  ch : cstate;
  mutable delayed : (int * thread) list; (* (due step, victim) in order *)
  cpus : cpu array;
  (* Run queues: one FIFO of unbound threads plus one per-cpu FIFO of
     bound threads.  [enq_seq] stamps restore the single global FIFO
     order the scheduler had when these were one list: a cpu dispatches
     whichever eligible head was enqueued first. *)
  anyq : thread Tq.t;
  boundq : thread Tq.t array;
  limbo : thread Tq.t; (* bound to a cpu that does not exist *)
  mutable enq_ctr : int;
  mutable threads : thread list; (* every thread ever spawned, for reports *)
  mutable live : int;
  mutable stale : int; (* steps since the last productive operation *)
  mutable bus_free_at : int;
  trace : Sim_trace.t;
  st : mstats;
  mutable cur : (cpu * frame) option;
  mutable rr_next : int;
  mutable name_ctr : int; (* per-run counter for generated thread names *)
  idle_identity : thread array; (* self() for interrupts on idle cpus *)
  (* Scratch for the candidate picker: cpu indices of this step's
     candidates (ascending), per-cpu action codes, and the Timed policy's
     near-minimum subset.  Reused every step, never allocated. *)
  cand : int array;
  act : int array; (* 0 none / 1 deliver / 2 resume / 3 dispatch *)
  near : int array;
}

(* ------------------------------------------------------------------ *)
(* Domain-local state: the engine slot, cross-run identifiers, the     *)
(* identity used when core code runs outside any simulation.  One      *)
(* engine may run per domain, so seed sweeps fan out with Domain.spawn *)
(* while each domain's simulation stays fully deterministic.           *)
(* ------------------------------------------------------------------ *)

let tid_counter = Atomic.make 1000 (* distinct from native machine tids *)

let make_thread ?(bound = None) tname =
  {
    tid = Atomic.fetch_and_add tid_counter 1;
    tname;
    state = Runnable;
    permits = 0;
    cont = None;
    start = None;
    tls = Array.make 8 0;
    saved_spl = Spl.Spl0;
    bound;
    ready_clock = 0;
    hint = None;
    joiners = [];
    on_cpu = -1;
    enq_seq = 0;
  }

let engine_key : engine option Domain.DLS.key =
  Domain.DLS.new_key (fun () -> None)

let the_engine () = Domain.DLS.get engine_key

let external_identity_key : thread Domain.DLS.key =
  Domain.DLS.new_key (fun () -> make_thread "external")

let last_stats_key : stats option Domain.DLS.key =
  Domain.DLS.new_key (fun () -> None)

let last_trace_key : Sim_trace.event list Domain.DLS.key =
  Domain.DLS.new_key (fun () -> [])

let last_chaos_key : chaos_stats option Domain.DLS.key =
  Domain.DLS.new_key (fun () -> None)

let last_analysis_key : deadlock_analysis option Domain.DLS.key =
  Domain.DLS.new_key (fun () -> None)

let running () = the_engine () <> None

let eng_exn () =
  match the_engine () with
  | Some e -> e
  | None -> raise (Kernel_panic "no simulation is running")

let fatal msg = raise (Kernel_panic msg)

(* The currently-executing (cpu, frame), if a fiber is running. *)
let ctx () = match the_engine () with None -> None | Some e -> e.cur

let frame_name = function
  | Fthread t -> t.tname
  | Fintr i -> "intr:" ^ i.iname

let self () =
  match ctx () with
  | None -> Domain.DLS.get external_identity_key
  | Some (c, Fthread t) ->
      ignore c;
      t
  | Some (c, Fintr _) -> (
      (* Interrupt context: the current thread is the interrupted thread;
         on an idle cpu, a per-cpu identity stands in (Mach's idle
         thread). *)
      let rec bottom = function
        | [ Fthread t ] -> Some t
        | _ :: rest -> bottom rest
        | [] -> None
      in
      match bottom c.frames with
      | Some t -> t
      | None -> (
          match the_engine () with
          | Some e -> e.idle_identity.(c.idx)
          | None -> Domain.DLS.get external_identity_key))

let thread_id t = t.tid
let thread_name t = t.tname
let equal_thread a b = a.tid == b.tid
let is_dead t = t.state = Dead

let tls_get t ~key = if key < Array.length t.tls then t.tls.(key) else 0

let tls_set t ~key v =
  if key >= Array.length t.tls then begin
    let bigger = Array.make (max (key + 1) (2 * Array.length t.tls)) 0 in
    Array.blit t.tls 0 bigger 0 (Array.length t.tls);
    t.tls <- bigger
  end;
  t.tls.(key) <- v

let in_interrupt () =
  match ctx () with Some (_, Fintr _) -> true | _ -> false

let productive e = e.stale <- 0

(* Record unconditionally: a disabled trace counts the discard itself, so
   "tracing was off" is distinguishable from "the ring overflowed". *)
let trace_e e ev =
  let step = e.st.m_steps in
  let cpu, context, clock =
    match e.cur with
    | Some (c, f) -> (c.idx, frame_name f, c.clock)
    | None -> (-1, "sched", 0)
  in
  Sim_trace.record e.trace ~step ~clock ~cpu ~context ev

let trace ev =
  match the_engine () with Some e -> trace_e e ev | None -> ()

(* ------------------------------------------------------------------ *)
(* Effects                                                              *)
(* ------------------------------------------------------------------ *)

type _ Effect.t +=
  | Pause_eff : unit Effect.t
  | Park_eff : unit Effect.t
  | Preempt_eff : unit Effect.t
        (* forced preemption (chaos): the thread is descheduled and
           re-enqueued runnable, instead of staying on its cpu *)

(* One 1-in-[n] draw from the chaos RNG; no draw at all when the class is
   disabled, so fault classes do not perturb each other's streams any
   more than necessary and odds 0 is free. *)
let chaos_hit e n = n > 0 && Sim_rng.int e.crng n = 0

let charge e n =
  match e.cur with Some (c, _) -> c.clock <- c.clock + n | None -> ()

let pause () =
  match the_engine () with
  | None -> ()
  | Some e -> (
      match e.cur with
      | None -> ()
      | Some _ ->
          charge e e.cfg.pause_cost;
          Effect.perform Pause_eff)

let cycles n =
  match the_engine () with None -> () | Some e -> charge e n

let now_cycles () =
  match ctx () with Some (c, _) -> c.clock | None -> 0

let current_cpu () = match ctx () with Some (c, _) -> c.idx | None -> 0

let cpu_count () =
  match the_engine () with Some e -> e.cfg.cpus | None -> 1

let spin_max_backoff () =
  match the_engine () with
  | Some e -> e.cfg.spin_max_backoff
  | None -> Sim_config.default.spin_max_backoff

let set_spl level =
  match ctx () with
  | Some (c, _) ->
      let old = c.spl in
      c.spl <- level;
      trace
        (Obs_event.Spl_raise
           { from_lvl = Spl.to_string old; to_lvl = Spl.to_string level });
      old
  | None ->
      let t = Domain.DLS.get external_identity_key in
      let old = t.saved_spl in
      t.saved_spl <- level;
      old

let get_spl () =
  match ctx () with
  | Some (c, _) -> c.spl
  | None -> (Domain.DLS.get external_identity_key).saved_spl

let spin_hint s =
  match ctx () with
  | Some (_, Fthread t) -> t.hint <- Some s
  | Some (_, Fintr i) -> i.ihint <- Some s
  | None -> ()

(* ------------------------------------------------------------------ *)
(* Shared cells with a cache and bus cost model                         *)
(* ------------------------------------------------------------------ *)

let max_cpus = 64

module Cell = struct
  type t = {
    cname : string;
    mutable v : int;
    mutable version : int;
    cached : int array; (* per-cpu version last observed; -1 = invalid *)
  }

  let make ?(name = "cell") v =
    { cname = name; v; version = 0; cached = Array.make max_cpus (-1) }

  let name t = t.cname

  (* Bus access: serialize on the global bus and charge [cost]. *)
  let bus_access e c cost =
    let start = max c.clock e.bus_free_at in
    c.clock <- start + cost;
    e.bus_free_at <- start + e.cfg.bus_occupancy;
    e.st.m_bus <- e.st.m_bus + 1

  (* Bumping the version invalidates every cpu's cached copy by itself:
     a stale slot holds an older version and can never compare equal
     again.  (The previous implementation also memset the whole per-cpu
     array on every write -- 64 stores on the hottest path in the
     machine, all redundant.) *)
  let invalidate t writer_cpu =
    t.version <- t.version + 1;
    if writer_cpu >= 0 then t.cached.(writer_cpu) <- t.version

  let maybe_preempt e =
    if e.cfg.preempt_on_cell_ops && e.cur <> None then
      Effect.perform Pause_eff

  let get t =
    match the_engine () with
    | None -> t.v
    | Some e -> (
        match e.cur with
        | None -> t.v
        | Some (c, _) ->
            if t.cached.(c.idx) = t.version then
              c.clock <- c.clock + e.cfg.read_hit_cost
            else begin
              bus_access e c e.cfg.read_miss_cost;
              e.st.m_misses <- e.st.m_misses + 1;
              t.cached.(c.idx) <- t.version
            end;
            let v = t.v in
            maybe_preempt e;
            v)

  let set t v =
    (match the_engine () with
    | None -> t.v <- v
    | Some e -> (
        match e.cur with
        | None -> t.v <- v
        | Some (c, _) ->
            bus_access e c e.cfg.write_cost;
            t.v <- v;
            invalidate t c.idx;
            productive e;
            trace (Obs_event.Cell_set { cell = t.cname; value = v });
            maybe_preempt e));
    ()

  (* [stores old] tells whether the instruction performs its store even
     when the value is unchanged: test-and-set always writes (this is
     precisely the bus-bandwidth waste of spinning on it, section 2),
     while a failed compare-and-swap does not take the line exclusive.
     Only an actual value change counts as progress for the watchdog. *)
  let atomic_op t ~stores f =
    match the_engine () with
    | None ->
        let old = t.v in
        t.v <- f old;
        old
    | Some e -> (
        match e.cur with
        | None ->
            let old = t.v in
            t.v <- f old;
            old
        | Some (c, _) ->
            bus_access e c e.cfg.atomic_cost;
            e.st.m_atomics <- e.st.m_atomics + 1;
            let old = t.v in
            let nv = f old in
            t.v <- nv;
            if stores old then invalidate t c.idx
            else t.cached.(c.idx) <- t.version;
            if nv <> old then productive e;
            maybe_preempt e;
            old)

  (* Forced preemption at a lock-acquire boundary: deschedule the thread
     right before its test-and-set, so it re-runs the acquire from the
     run queue later (possibly on another cpu, at spl0) — the adversarial
     schedule for protocols that assume acquire is atomic with respect to
     preemption.  Interrupt frames are exempt: they cannot leave the
     cpu. *)
  let chaos_preempt e =
    match e.cur with
    | Some (_, Fthread t) when chaos_hit e e.cfg.faults.preempt_on_acquire ->
        e.ch.c_preempted <- e.ch.c_preempted + 1;
        trace_e e
          (Obs_event.Chaos_inject
             { kind = "preempt-acquire"; victim = t.tname });
        Effect.perform Preempt_eff
    | _ -> ()

  let test_and_set t =
    (match the_engine () with
    | Some e when e.faults_on -> chaos_preempt e
    | _ -> ());
    let old = atomic_op t ~stores:(fun _ -> true) (fun _ -> 1) in
    trace (Obs_event.Tas { cell = t.cname; old_value = old });
    old

  let compare_and_swap t ~expected ~desired =
    let old =
      atomic_op t
        ~stores:(fun old -> old = expected)
        (fun v -> if v = expected then desired else v)
    in
    old = expected

  let fetch_and_add t n =
    atomic_op t ~stores:(fun _ -> true) (fun v -> v + n)
end

(* ------------------------------------------------------------------ *)
(* Threads                                                              *)
(* ------------------------------------------------------------------ *)

(* Enqueue preserving the old single-list FIFO semantics: the stamp
   records global arrival order; bound threads go to their cpu's queue
   (or limbo when the cpu does not exist -- such a thread can never be
   dispatched, exactly as before, but still shows up in reports). *)
let enqueue e t =
  t.enq_seq <- e.enq_ctr;
  e.enq_ctr <- e.enq_ctr + 1;
  match t.bound with
  | None -> Tq.push e.anyq t
  | Some b when b >= 0 && b < Array.length e.cpus -> Tq.push e.boundq.(b) t
  | Some _ -> Tq.push e.limbo t

let spawn ?name ?bound f =
  let e = eng_exn () in
  e.name_ctr <- e.name_ctr + 1;
  let tname =
    match name with
    | Some n -> n
    | None -> Printf.sprintf "thread%d" e.name_ctr
  in
  let t = make_thread ~bound tname in
  t.start <- Some f;
  t.ready_clock <- (match e.cur with Some (c, _) -> c.clock | None -> 0);
  enqueue e t;
  e.threads <- t :: e.threads;
  e.live <- e.live + 1;
  e.st.m_spawned <- e.st.m_spawned + 1;
  productive e;
  trace (Obs_event.Spawn { thread = tname });
  t

(* The injection-free wakeup path, also used to deliver delayed and
   spurious wakeups (injection must not re-inject on its own deliveries,
   or a delayed wakeup could be dropped/re-delayed forever). *)
let unpark_now e t =
  match t.state with
  | Parked ->
      t.state <- Runnable;
      t.ready_clock <- (match e.cur with Some (c, _) -> c.clock | None -> 0);
      enqueue e t;
      e.st.m_unparks <- e.st.m_unparks + 1;
      productive e;
      trace_e e (Obs_event.Unpark { thread = t.tname })
  | Runnable ->
      t.permits <- t.permits + 1;
      productive e;
      trace_e e (Obs_event.Permit { thread = t.tname })
  | Dead -> ()

let unpark t =
  match the_engine () with
  | None -> () (* outside simulation: nothing can be parked *)
  | Some e ->
      if e.faults_on && t.state = Parked && chaos_hit e e.cfg.faults.drop_wakeup
      then begin
        (* Dropped wakeup: the caller believes the waiter is awake; the
           waiter stays parked with no future wakeup — section 6's lost
           wakeup, provoked on purpose. *)
        e.ch.c_dropped <- e.ch.c_dropped + 1;
        trace_e e
          (Obs_event.Chaos_inject { kind = "drop-wakeup"; victim = t.tname })
      end
      else if
        e.faults_on && t.state = Parked
        && chaos_hit e e.cfg.faults.delay_wakeup
      then begin
        e.ch.c_delayed <- e.ch.c_delayed + 1;
        e.delayed <-
          e.delayed
          @ [ (e.st.m_steps + e.cfg.faults.wakeup_delay_steps, t) ];
        trace_e e
          (Obs_event.Chaos_inject { kind = "delay-wakeup"; victim = t.tname })
      end
      else unpark_now e t

let park () =
  let e = eng_exn () in
  (match e.cur with
  | None -> fatal "park outside a simulated thread"
  | Some (_, Fintr i) ->
      fatal
        (Printf.sprintf
           "park in interrupt handler %s: interrupt routines lack the \
            thread context required to sleep (paper, section 7)"
           i.iname)
  | Some (_, Fthread _) -> ());
  let t = self () in
  if t.permits > 0 then begin
    t.permits <- t.permits - 1;
    (* Still a schedule point, so wakeup-before-block schedules explore
       the same interleavings as real blocking. *)
    Effect.perform Pause_eff
  end
  else begin
    e.st.m_parks <- e.st.m_parks + 1;
    productive e;
    trace (Obs_event.Park { thread = t.tname });
    Effect.perform Park_eff
  end

let join target =
  let t = self () in
  if equal_thread t target then fatal "join on self";
  if target.state <> Dead then begin
    target.joiners <- t :: target.joiners;
    while target.state <> Dead do
      park ()
    done
  end

(* ------------------------------------------------------------------ *)
(* Interrupts                                                           *)
(* ------------------------------------------------------------------ *)

let post_interrupt ?(name = "ipi") ~cpu ~level handler =
  let e = eng_exn () in
  if cpu < 0 || cpu >= e.cfg.cpus then
    fatal (Printf.sprintf "post_interrupt: no cpu %d" cpu);
  let i =
    {
      iname = name;
      ilevel = level;
      ihandler = Some handler;
      icont = None;
      isaved_spl = Spl.Spl0;
      ihint = None;
    }
  in
  let c = e.cpus.(cpu) in
  let r = Spl.rank level in
  Tq.push c.pend.(r) i;
  c.pend_mask <- c.pend_mask lor (1 lsl r);
  c.pend_count <- c.pend_count + 1;
  productive e;
  trace (Obs_event.Intr_post { name; cpu; level = Spl.to_string level })

let pending_interrupts ~cpu =
  let e = eng_exn () in
  e.cpus.(cpu).pend_count

(* ------------------------------------------------------------------ *)
(* Scheduler                                                            *)
(* ------------------------------------------------------------------ *)

(* An interrupt is deliverable iff some pending level is strictly above
   the cpu's current spl: one shift of the level bitmask. *)
let deliverable c = c.pend_mask lsr (Spl.rank c.spl + 1) <> 0

let dispatchable e c =
  not (Tq.is_empty e.anyq && Tq.is_empty e.boundq.(c.idx))

let finish_frame e (c : cpu) (f : frame) =
  (match c.frames with
  | top :: rest when top == f -> c.frames <- rest
  | _ -> fatal "internal: finishing a frame that is not on top");
  productive e;
  match f with
  | Fthread t ->
      t.state <- Dead;
      t.on_cpu <- -1;
      e.live <- e.live - 1;
      c.spl <- Spl.Spl0;
      trace (Obs_event.Thread_exit { thread = t.tname });
      List.iter unpark t.joiners;
      t.joiners <- []
  | Fintr i ->
      c.spl <- i.isaved_spl;
      trace (Obs_event.Intr_done { name = i.iname })

(* The handler closures must find the *current* cpu and frame at effect
   time (from [e.cur], which [resume] maintains): a thread that parks and
   is later dispatched again may be running on a different cpu than the
   one it started on, while the handler installed by [match_with] stays
   the same for the fiber's whole life. *)
let run_fiber e (body : unit -> unit) =
  let open Effect.Deep in
  let cur () =
    match e.cur with
    | Some cf -> cf
    | None -> fatal "internal: fiber effect with no current frame"
  in
  match_with body ()
    {
      retc =
        (fun () ->
          let c, f = cur () in
          finish_frame e c f);
      exnc =
        (fun exn ->
          (* A fiber exception is a kernel panic: annotate and propagate
             out of the scheduler. *)
          let c, f = cur () in
          match exn with
          | Kernel_panic msg ->
              raise
                (Kernel_panic
                   (Printf.sprintf "[cpu%d %s] %s" c.idx (frame_name f) msg))
          | exn ->
              raise
                (Kernel_panic
                   (Printf.sprintf "[cpu%d %s] unhandled exception: %s"
                      c.idx (frame_name f) (Printexc.to_string exn))));
      effc =
        (fun (type a) (eff : a Effect.t) ->
          match eff with
          | Pause_eff ->
              Some
                (fun (k : (a, unit) continuation) ->
                  (* Stay on the cpu, suspended at a preemption point. *)
                  match cur () with
                  | _, Fthread t -> t.cont <- Some k
                  | _, Fintr i -> i.icont <- Some k)
          | Park_eff ->
              Some
                (fun (k : (a, unit) continuation) ->
                  match cur () with
                  | c, (Fthread t as f) ->
                      t.cont <- Some k;
                      t.state <- Parked;
                      t.saved_spl <- c.spl;
                      t.on_cpu <- -1;
                      (match c.frames with
                      | top :: rest when top == f -> c.frames <- rest
                      | _ -> fatal "internal: parking a non-top frame");
                      c.spl <- Spl.Spl0
                  | _, Fintr _ -> fatal "internal: park effect in interrupt")
          | Preempt_eff ->
              Some
                (fun (k : (a, unit) continuation) ->
                  (* Like parking, but the thread stays runnable and goes
                     straight back on the run queue. *)
                  match cur () with
                  | c, (Fthread t as f) ->
                      t.cont <- Some k;
                      t.saved_spl <- c.spl;
                      t.on_cpu <- -1;
                      t.ready_clock <- c.clock;
                      (match c.frames with
                      | top :: rest when top == f -> c.frames <- rest
                      | _ -> fatal "internal: preempting a non-top frame");
                      c.spl <- Spl.Spl0;
                      enqueue e t
                  | _, Fintr _ ->
                      fatal "internal: preempt effect in interrupt")
          | _ -> None);
    }

let resume e c =
  match c.frames with
  | [] -> fatal "internal: resume on idle cpu"
  | f :: _ -> (
      e.cur <- Some (c, f);
      (match f with
      | Fthread t -> (
          match (t.start, t.cont) with
          | Some body, _ ->
              t.start <- None;
              run_fiber e body
          | None, Some k ->
              t.cont <- None;
              Effect.Deep.continue k ()
          | None, None -> fatal "internal: thread frame with no continuation")
      | Fintr i -> (
          match (i.ihandler, i.icont) with
          | Some body, _ ->
              i.ihandler <- None;
              run_fiber e body
          | None, Some k ->
              i.icont <- None;
              Effect.Deep.continue k ()
          | None, None -> fatal "internal: interrupt frame w/o continuation"));
      e.cur <- None)

let deliver e c =
  (* Highest-priority deliverable level; FIFO within the level (this is
     the order the old single pending list produced). *)
  let base = Spl.rank c.spl in
  let rec find r =
    if r <= base then fatal "internal: deliver with nothing deliverable"
    else if Tq.is_empty c.pend.(r) then find (r - 1)
    else r
  in
  let r = find (n_spl - 1) in
  let i = Tq.pop c.pend.(r) in
  if Tq.is_empty c.pend.(r) then c.pend_mask <- c.pend_mask land lnot (1 lsl r);
  c.pend_count <- c.pend_count - 1;
  i.isaved_spl <- c.spl;
  c.spl <- i.ilevel;
  c.frames <- Fintr i :: c.frames;
  c.clock <- c.clock + e.cfg.interrupt_cost;
  e.st.m_intrs <- e.st.m_intrs + 1;
  productive e;
  e.cur <- Some (c, Fintr i);
  trace
    (Obs_event.Intr_deliver
       { name = i.iname; level = Spl.to_string i.ilevel });
  e.cur <- None

(* Dispatch whichever eligible head (unbound, or bound to this cpu) was
   enqueued first -- identical to scanning the old global FIFO for the
   first thread this cpu may run. *)
let take_thread e c =
  let bq = e.boundq.(c.idx) in
  if Tq.is_empty bq then Tq.pop e.anyq
  else if Tq.is_empty e.anyq then Tq.pop bq
  else if (Tq.peek e.anyq).enq_seq < (Tq.peek bq).enq_seq then Tq.pop e.anyq
  else Tq.pop bq

let dispatch e c =
  if not (dispatchable e c) then
    fatal "internal: dispatch with empty run queue";
  let t = take_thread e c in
  t.on_cpu <- c.idx;
  c.clock <- max c.clock t.ready_clock + e.cfg.context_switch_cost;
  c.spl <- t.saved_spl;
  c.frames <- [ Fthread t ];
  e.st.m_switches <- e.st.m_switches + 1;
  productive e;
  trace (Obs_event.Dispatch { thread = t.tname; cpu = c.idx })

(* All queued-but-not-running threads in global enqueue order (the order
   the old single run-queue list reported). *)
let runq_threads e =
  let acc = ref [] in
  let add t = acc := t :: !acc in
  Tq.iter add e.anyq;
  Array.iter (Tq.iter add) e.boundq;
  Tq.iter add e.limbo;
  List.sort (fun a b -> compare a.enq_seq b.enq_seq) !acc

let all_threads_report e =
  let buf = Buffer.create 256 in
  Array.iter
    (fun c ->
      Buffer.add_string buf
        (Printf.sprintf "  cpu%d clock=%d spl=%s frames=[%s] pending=%d\n"
           c.idx c.clock (Spl.to_string c.spl)
           (String.concat "; "
              (List.map
                 (fun f ->
                   let hint =
                     match f with
                     | Fthread t -> t.hint
                     | Fintr i -> i.ihint
                   in
                   frame_name f
                   ^ match hint with
                     | Some h -> " (spinning on " ^ h ^ ")"
                     | None -> "")
                 c.frames))
           c.pend_count))
    e.cpus;
  Buffer.add_string buf
    (Printf.sprintf "  runq=[%s]\n"
       (String.concat "; " (List.map (fun t -> t.tname) (runq_threads e))));
  let parked = List.filter (fun t -> t.state = Parked) e.threads in
  Buffer.add_string buf
    (Printf.sprintf "  parked=[%s]\n"
       (String.concat "; "
          (List.map
             (fun t ->
               t.tname
               ^ match t.hint with Some h -> " (last spin: " ^ h ^ ")" | None -> "")
             parked)));
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Waits-for deadlock analysis                                          *)
(* ------------------------------------------------------------------ *)

(* A directed blocking graph over threads, resources, interrupt frames
   and pending interrupts:

     thread -> resource          the thread waits for the resource
     resource -> thread          a current holder of the resource
     event -> resource           the event aliases a complex lock
     frame below -> frame above  a thread/handler waits for interrupts
                                 nested above it on its cpu
     pending -> top frame        a masked pending interrupt waits for
                                 whatever holds the cpu's spl
     active intr -> pending peer barrier heuristic: an in-service
                                 interrupt named N rendezvouses with
                                 pending interrupts named N elsewhere
     rendezvous -> pending peer  likewise for declared rendezvous waits
                                 (tlb shootdown)

   A cycle through these edges is a deadlock explanation; the section 7
   three-processor interrupt deadlock closes through exactly one such
   cycle (spinner -> lock -> holder -> in-service barrier -> masked
   pending barrier -> spinner). *)
module Dgraph = struct
  type t = {
    labels : (string, string) Hashtbl.t;
    adj : (string, string list ref) Hashtbl.t;
    mutable nodes : string list;
  }

  let make () =
    { labels = Hashtbl.create 64; adj = Hashtbl.create 64; nodes = [] }

  let node g id label =
    if not (Hashtbl.mem g.labels id) then begin
      Hashtbl.add g.labels id label;
      Hashtbl.add g.adj id (ref []);
      g.nodes <- id :: g.nodes
    end

  let edge g a b =
    match Hashtbl.find_opt g.adj a with
    | Some l -> if not (List.mem b !l) then l := b :: !l
    | None -> ()

  let label g id = try Hashtbl.find g.labels id with Not_found -> id

  (* Depth-first cycle search, nodes visited in sorted-id order and edges
     in insertion order, so the result is deterministic for a given
     graph.  Returns the node ids along the first cycle found. *)
  let find_cycle g =
    let color = Hashtbl.create 64 in
    (* 1 = on the current path, 2 = fully explored *)
    let rec dfs path id =
      match Hashtbl.find_opt color id with
      | Some 2 -> None
      | Some _ ->
          let rec cut = function
            | [] -> []
            | x :: rest -> if x = id then [ x ] else x :: cut rest
          in
          Some (List.rev (cut path))
      | None ->
          Hashtbl.replace color id 1;
          let succs =
            match Hashtbl.find_opt g.adj id with
            | Some l -> List.rev !l
            | None -> []
          in
          let r =
            List.fold_left
              (fun acc s ->
                match acc with Some _ -> acc | None -> dfs (id :: path) s)
              None succs
          in
          if r = None then Hashtbl.replace color id 2;
          r
    in
    List.fold_left
      (fun acc id -> match acc with Some _ -> acc | None -> dfs [] id)
      None
      (List.sort compare g.nodes)
end

let analyze e ~sleep =
  let g = Dgraph.make () in
  let tnode_tid tid tname =
    let id = "T:" ^ string_of_int tid in
    Dgraph.node g id tname;
    id
  in
  let tnode t = tnode_tid t.tid t.tname in
  let rnode r =
    let id = Waits_for.res_id r in
    Dgraph.node g id (Waits_for.res_label r);
    id
  in
  let wait_edges = Waits_for.waits () in
  List.iter
    (fun (tid, tname, r) ->
      let tn = tnode_tid tid tname and rn = rnode r in
      Dgraph.edge g tn rn;
      match r with
      | Waits_for.Event { id } -> (
          match Waits_for.event_resource ~event:id with
          | Some res -> Dgraph.edge g rn (rnode res)
          | None -> ())
      | _ -> ())
    wait_edges;
  List.iter
    (fun (r, hs) ->
      let rn = rnode r in
      List.iter (fun (tid, tname) -> Dgraph.edge g rn (tnode_tid tid tname)) hs)
    (Waits_for.holds ());
  let active = ref [] and pending = ref [] in
  Array.iter
    (fun c ->
      let fid pos = function
        | Fthread t -> tnode t
        | Fintr i ->
            let id = Printf.sprintf "F:%d:%d" c.idx pos in
            Dgraph.node g id
              (Printf.sprintf "interrupt %s on cpu%d" i.iname c.idx);
            active := (i.iname, id) :: !active;
            id
      in
      let ids = List.mapi fid c.frames in
      let rec chain = function
        | above :: (below :: _ as rest) ->
            Dgraph.edge g below above;
            chain rest
        | _ -> ()
      in
      chain ids;
      let top = match ids with id :: _ -> Some id | [] -> None in
      for r = 0 to n_spl - 1 do
        let j = ref 0 in
        Tq.iter
          (fun i ->
            let id = Printf.sprintf "P:%d:%d:%d" c.idx r !j in
            incr j;
            Dgraph.node g id
              (Printf.sprintf "pending interrupt %s on cpu%d at %s" i.iname
                 c.idx (Spl.to_string i.ilevel));
            pending := (i.iname, id) :: !pending;
            if r <= Spl.rank c.spl then
              match top with Some tf -> Dgraph.edge g id tf | None -> ())
          c.pend.(r)
      done)
    e.cpus;
  let pending = List.rev !pending and active = List.rev !active in
  List.iter
    (fun (name, fn) ->
      List.iter
        (fun (pname, pid) -> if pname = name then Dgraph.edge g fn pid)
        pending)
    active;
  List.iter
    (fun (_, _, r) ->
      match r with
      | Waits_for.Rendezvous { name } ->
          List.iter
            (fun (pname, pid) -> if pname = name then Dgraph.edge g (rnode r) pid)
            pending
      | _ -> ())
    wait_edges;
  let cycle =
    match Dgraph.find_cycle g with
    | Some ids -> List.map (Dgraph.label g) ids
    | None -> []
  in
  (* Orphaned waiters are only meaningful at a sleep deadlock: with every
     thread parked, a recorded wait has provably no remaining waker, and
     a parked thread whose wait edge is gone was woken in the event layer
     but never actually delivered (the lost wakeup of section 6). *)
  let orphans =
    if not sleep then []
    else
      List.concat_map
        (fun t ->
          if t.state <> Parked then []
          else
            match Waits_for.waits_of ~tid:t.tid with
            | [] -> (
                match Waits_for.last_event ~tid:t.tid with
                | Some ev when e.ch.c_dropped > 0 || e.ch.c_delayed > 0 ->
                    [
                      Printf.sprintf
                        "thread %s: woken from event %d but the wakeup never \
                         arrived (lost wakeup)"
                        t.tname ev;
                    ]
                | _ when e.ch.c_dropped > 0 ->
                    [
                      Printf.sprintf
                        "thread %s: parked with no recorded wait; a dropped \
                         wakeup is the likely cause"
                        t.tname;
                    ]
                | _ -> [])
            | waits ->
                List.map
                  (fun (_, r) ->
                    Printf.sprintf
                      "thread %s: blocked on %s with no remaining waker \
                       (orphaned waiter)"
                      t.tname (Waits_for.res_label r))
                  waits)
        (List.rev e.threads)
  in
  { cycle; orphans }

(* Run the analysis (when wait tracking is on), remember it for
   [last_analysis], dump each line into the obs trace, and render the
   suffix appended to the deadlock report. *)
let analyze_deadlock e ~sleep =
  if not e.cfg.track_waits then ""
  else begin
    let a = analyze e ~sleep in
    Domain.DLS.set last_analysis_key (Some a);
    let buf = Buffer.create 128 in
    let note line =
      Buffer.add_string buf ("  " ^ line ^ "\n");
      trace_e e (Obs_event.Deadlock_note { line })
    in
    (match a.cycle with
    | [] -> ()
    | ls -> note ("waits-for cycle: " ^ String.concat " -> " (ls @ [ List.hd ls ])));
    List.iter note a.orphans;
    if Buffer.length buf = 0 then ""
    else "waits-for analysis:\n" ^ Buffer.contents buf
  end

let mkstats e =
  {
    steps = e.st.m_steps;
    makespan = Array.fold_left (fun acc c -> max acc c.clock) 0 e.cpus;
    bus_transactions = e.st.m_bus;
    cache_misses = e.st.m_misses;
    atomic_ops = e.st.m_atomics;
    interrupts_delivered = e.st.m_intrs;
    context_switches = e.st.m_switches;
    spawned_threads = e.st.m_spawned;
    parks = e.st.m_parks;
    unparks = e.st.m_unparks;
    spin_pauses = e.st.m_spin_pauses;
  }

(* Fill the scratch candidate arrays; returns the candidate count.
   Candidates appear in ascending cpu order, as the old list did. *)
let collect_candidates e =
  let n = Array.length e.cpus in
  let m = ref 0 in
  for idx = 0 to n - 1 do
    let c = e.cpus.(idx) in
    let a =
      if deliverable c then
        (* Delayed interrupt delivery: defer to the cpu's alternative
           action for this step when it has one.  Never suppress the only
           possible action — that would turn a live machine into a false
           sleep-deadlock report. *)
        if
          e.faults_on
          && (match c.frames with _ :: _ -> true | [] -> dispatchable e c)
          && chaos_hit e e.cfg.faults.delay_interrupt
        then begin
          e.ch.c_delayed_intr <- e.ch.c_delayed_intr + 1;
          match c.frames with _ :: _ -> 2 | [] -> 3
        end
        else 1
      else
        match c.frames with
        | _ :: _ -> 2
        | [] -> if dispatchable e c then 3 else 0
    in
    e.act.(idx) <- a;
    if a <> 0 then begin
      e.cand.(!m) <- idx;
      incr m
    end
  done;
  !m

(* Choose a candidate cpu index.  Each policy consumes the RNG exactly as
   the list-based picker did, so (seed, cfg) schedules are unchanged. *)
let pick_cpu e m =
  if e.faults_on && chaos_hit e e.cfg.faults.perturb_pick then begin
    (* Perturbed pick: override the policy with a uniform draw from the
       chaos RNG — adversarial scheduling noise under any policy. *)
    e.ch.c_perturbed <- e.ch.c_perturbed + 1;
    e.cand.(Sim_rng.int e.crng m)
  end
  else
  match e.cfg.policy with
  | Sim_config.Random_policy -> e.cand.(Sim_rng.int e.rng m)
  | Sim_config.Round_robin ->
      let n = Array.length e.cpus in
      let rec scan k =
        let idx = (e.rr_next + k) mod n in
        if e.act.(idx) <> 0 then begin
          e.rr_next <- (idx + 1) mod n;
          idx
        end
        else scan (k + 1)
      in
      scan 0
  | Sim_config.Timed ->
      (* Advance the least-advanced cpu, but choose randomly among cpus
         within a small clock window of the minimum: without this jitter,
         two contenders can phase-lock into a deterministic cycle where
         one always samples a lock while the other holds it (a livelock
         real machines escape through timing noise). *)
      let minimum = ref max_int in
      for k = 0 to m - 1 do
        let clk = e.cpus.(e.cand.(k)).clock in
        if clk < !minimum then minimum := clk
      done;
      let window = (2 * e.cfg.atomic_cost) + (2 * e.cfg.bus_occupancy) in
      let limit = !minimum + window in
      let p = ref 0 in
      for k = 0 to m - 1 do
        let idx = e.cand.(k) in
        if e.cpus.(idx).clock <= limit then begin
          e.near.(!p) <- idx;
          incr p
        end
      done;
      e.near.(Sim_rng.int e.rng !p)

(* Deliver chaos-delayed wakeups whose due step has arrived ([force]
   delivers everything: used when the machine would otherwise be declared
   sleep-deadlocked while deliveries are still owed). *)
let deliver_delayed e ~force =
  match e.delayed with
  | [] -> ()
  | l ->
      let due, future =
        if force then (l, [])
        else List.partition (fun (d, _) -> d <= e.st.m_steps) l
      in
      e.delayed <- future;
      List.iter (fun (_, t) -> unpark_now e t) due

(* Spurious wakeup: unpark a chaos-chosen parked thread.  Correct wait
   loops re-check their predicate and re-park; protocols that treat a
   wakeup as proof of their condition break — exactly the discipline the
   event-wait protocol of section 6 demands. *)
let maybe_spurious e =
  if chaos_hit e e.cfg.faults.spurious_wakeup then begin
    let parked = List.filter (fun t -> t.state = Parked) e.threads in
    match parked with
    | [] -> ()
    | l ->
        let t = List.nth l (Sim_rng.int e.crng (List.length l)) in
        e.ch.c_spurious <- e.ch.c_spurious + 1;
        trace_e e
          (Obs_event.Chaos_inject
             { kind = "spurious-wakeup"; victim = t.tname });
        unpark_now e t
  end

let sched_loop e =
  let watchdog_fired () =
    let report =
      "no productive operation for "
      ^ string_of_int e.cfg.watchdog_steps
      ^ " steps; machine state:\n" ^ all_threads_report e
      ^ analyze_deadlock e ~sleep:false
    in
    raise (Deadlock (Spin_deadlock, report))
  in
  let rec loop () =
    if e.live = 0 then mkstats e
    else begin
      (match e.cfg.max_steps with
      | Some limit when e.st.m_steps >= limit -> raise Step_limit
      | _ -> ());
      if e.stale > e.cfg.watchdog_steps then watchdog_fired ();
      if e.faults_on then begin
        deliver_delayed e ~force:false;
        maybe_spurious e
      end;
      let m = collect_candidates e in
      if m = 0 then
        if e.faults_on && e.delayed <> [] then begin
          (* Not a deadlock yet: delayed wakeups are still owed.  Flush
             them all rather than report a machine the injector itself
             stalled. *)
          deliver_delayed e ~force:true;
          loop ()
        end
        else begin
          let report =
            "all cpus idle, run queue empty, but "
            ^ string_of_int e.live
            ^ " thread(s) still parked; machine state:\n"
            ^ all_threads_report e
            ^ analyze_deadlock e ~sleep:true
          in
          raise (Deadlock (Sleep_deadlock, report))
        end
      else begin
        e.st.m_steps <- e.st.m_steps + 1;
        e.stale <- e.stale + 1;
        let idx = pick_cpu e m in
        let c = e.cpus.(idx) in
        (match e.act.(idx) with
        | 1 -> deliver e c
        | 2 -> resume e c
        | _ -> dispatch e c);
        loop ()
      end
    end
  in
  loop ()

let dummy_intr =
  {
    iname = "(none)";
    ilevel = Spl.Spl0;
    ihandler = None;
    icont = None;
    isaved_spl = Spl.Spl0;
    ihint = None;
  }

let run ?(cfg = Sim_config.default) main =
  if the_engine () <> None then
    invalid_arg "Sim_engine.run: a simulation is already running";
  if cfg.cpus < 1 || cfg.cpus > max_cpus then
    invalid_arg "Sim_engine.run: cpu count out of range";
  let qdummy = make_thread "(none)" in
  let e =
    {
      cfg;
      rng = Sim_rng.make cfg.seed;
      crng =
        Sim_rng.make
          (if cfg.faults.fault_seed <> 0 then cfg.faults.fault_seed
           else cfg.seed lxor 0x6368616f);
      faults_on = Sim_config.faults_active cfg.faults;
      ch =
        {
          c_dropped = 0;
          c_delayed = 0;
          c_spurious = 0;
          c_delayed_intr = 0;
          c_perturbed = 0;
          c_preempted = 0;
        };
      delayed = [];
      cpus =
        Array.init cfg.cpus (fun idx ->
            {
              idx;
              clock = 0;
              spl = Spl.Spl0;
              frames = [];
              pend = Array.init n_spl (fun _ -> Tq.make dummy_intr);
              pend_mask = 0;
              pend_count = 0;
            });
      anyq = Tq.make qdummy;
      boundq = Array.init cfg.cpus (fun _ -> Tq.make qdummy);
      limbo = Tq.make qdummy;
      enq_ctr = 0;
      threads = [];
      live = 0;
      stale = 0;
      bus_free_at = 0;
      trace =
        Sim_trace.make ~cpus:cfg.cpus ~capacity:cfg.trace_capacity
          ~enabled:cfg.trace ();
      st =
        {
          m_steps = 0;
          m_bus = 0;
          m_misses = 0;
          m_atomics = 0;
          m_intrs = 0;
          m_switches = 0;
          m_spawned = 0;
          m_parks = 0;
          m_unparks = 0;
          m_spin_pauses = 0;
        };
      cur = None;
      rr_next = 0;
      name_ctr = 0;
      idle_identity =
        Array.init cfg.cpus (fun i ->
            make_thread (Printf.sprintf "cpu%d-idle" i));
      cand = Array.make cfg.cpus 0;
      act = Array.make cfg.cpus 0;
      near = Array.make cfg.cpus 0;
    }
  in
  Domain.DLS.set engine_key (Some e);
  (* Start from a clean slate: per-run domain-local state (lock-order
     held stacks, waits-for edges) from an earlier run in this domain
     must not leak in, even if that run tore down abnormally. *)
  Run_reset.run ();
  Domain.DLS.set last_analysis_key None;
  Waits_for.set_tracking cfg.track_waits;
  (* Core layers (locks, events, refcounts) emit typed events through the
     domain's [Obs_trace] sink without knowing about the engine; route
     them into this run's trace. *)
  Obs_trace.set_sink (Some trace);
  Obs_trace.set_enabled cfg.trace;
  let finish () =
    Domain.DLS.set last_trace_key (Sim_trace.events e.trace);
    Domain.DLS.set last_chaos_key
      (Some
         {
           dropped_wakeups = e.ch.c_dropped;
           delayed_wakeups = e.ch.c_delayed;
           spurious_wakeups = e.ch.c_spurious;
           delayed_interrupts = e.ch.c_delayed_intr;
           perturbed_picks = e.ch.c_perturbed;
           forced_preemptions = e.ch.c_preempted;
         });
    Obs_trace.set_enabled false;
    Waits_for.set_tracking false;
    (* Engine teardown hook: clears lock-order held stacks and waits-for
       edges so nothing leaks into the next run (or the next Sim_explore
       seed in this domain). *)
    Run_reset.run ();
    Domain.DLS.set engine_key None
  in
  match
    ignore (spawn ~name:"main" main);
    sched_loop e
  with
  | stats ->
      Domain.DLS.set last_stats_key (Some stats);
      finish ();
      stats
  | exception exn ->
      Domain.DLS.set last_stats_key (Some (mkstats e));
      finish ();
      raise exn

type outcome =
  | Completed of stats
  | Deadlocked of deadlock_kind * string
  | Panicked of string
  | Hit_step_limit

let run_outcome ?cfg main =
  match run ?cfg main with
  | stats -> Completed stats
  | exception Deadlock (k, r) -> Deadlocked (k, r)
  | exception Kernel_panic msg -> Panicked msg
  | exception Step_limit -> Hit_step_limit

let trace_events () =
  match the_engine () with
  | Some e -> Sim_trace.events e.trace
  | None -> Domain.DLS.get last_trace_key

let last_stats () = Domain.DLS.get last_stats_key
let last_chaos () = Domain.DLS.get last_chaos_key
let last_analysis () = Domain.DLS.get last_analysis_key

let live_threads () =
  match the_engine () with Some e -> e.live | None -> 0

(* spin pauses are counted where the machine layer calls [pause]; expose a
   hook for Sim_machine. *)
let count_spin_pause () =
  match the_engine () with
  | Some e -> e.st.m_spin_pauses <- e.st.m_spin_pauses + 1
  | None -> ()
