module Spl = Mach_core.Spl
module Obs_event = Mach_obs.Obs_event
module Obs_trace = Mach_obs.Obs_trace

type deadlock_kind = Sleep_deadlock | Spin_deadlock

exception Kernel_panic of string
exception Deadlock of deadlock_kind * string
exception Step_limit

type tstate = Runnable | Parked | Dead

type cont = (unit, unit) Effect.Deep.continuation

type thread = {
  tid : int;
  tname : string;
  mutable state : tstate;
  mutable permits : int;
  mutable cont : cont option;
  mutable start : (unit -> unit) option;
  mutable tls : int array;
  mutable saved_spl : Spl.t;
  mutable bound : int option;
  mutable ready_clock : int;
  mutable hint : string option;
  mutable joiners : thread list;
  mutable on_cpu : int; (* -1 when not on a cpu *)
}

type intr = {
  iname : string;
  ilevel : Spl.t;
  mutable ihandler : (unit -> unit) option;
  mutable icont : cont option;
  mutable isaved_spl : Spl.t;
  mutable ihint : string option;
}

type frame = Fthread of thread | Fintr of intr

type cpu = {
  idx : int;
  mutable clock : int;
  mutable spl : Spl.t;
  mutable frames : frame list; (* top first; thread frame at the bottom *)
  mutable pending : intr list; (* queued interrupts, FIFO per level *)
}

type mstats = {
  mutable m_steps : int;
  mutable m_bus : int;
  mutable m_misses : int;
  mutable m_atomics : int;
  mutable m_intrs : int;
  mutable m_switches : int;
  mutable m_spawned : int;
  mutable m_parks : int;
  mutable m_unparks : int;
  mutable m_spin_pauses : int;
}

type stats = {
  steps : int;
  makespan : int;
  bus_transactions : int;
  cache_misses : int;
  atomic_ops : int;
  interrupts_delivered : int;
  context_switches : int;
  spawned_threads : int;
  parks : int;
  unparks : int;
  spin_pauses : int;
}

let pp_stats ppf s =
  Format.fprintf ppf
    "steps=%d makespan=%d bus=%d misses=%d atomics=%d intrs=%d switches=%d \
     spawned=%d parks=%d unparks=%d spin-pauses=%d"
    s.steps s.makespan s.bus_transactions s.cache_misses s.atomic_ops
    s.interrupts_delivered s.context_switches s.spawned_threads s.parks
    s.unparks s.spin_pauses

type engine = {
  cfg : Sim_config.t;
  rng : Sim_rng.t;
  cpus : cpu array;
  mutable runq : thread list;
  mutable threads : thread list; (* every thread ever spawned, for reports *)
  mutable live : int;
  mutable stale : int; (* steps since the last productive operation *)
  mutable bus_free_at : int;
  trace : Sim_trace.t;
  st : mstats;
  mutable cur : (cpu * frame) option;
  mutable rr_next : int;
  idle_identity : thread array; (* self() for interrupts on idle cpus *)
}

(* ------------------------------------------------------------------ *)
(* Globals: the engine singleton, cross-run identifiers, the identity  *)
(* used when core code runs outside any simulation.                    *)
(* ------------------------------------------------------------------ *)

let the_engine : engine option ref = ref None
let tid_counter = Atomic.make 1000 (* distinct from native machine tids *)

let make_thread ?(bound = None) tname =
  {
    tid = Atomic.fetch_and_add tid_counter 1;
    tname;
    state = Runnable;
    permits = 0;
    cont = None;
    start = None;
    tls = Array.make 8 0;
    saved_spl = Spl.Spl0;
    bound;
    ready_clock = 0;
    hint = None;
    joiners = [];
    on_cpu = -1;
  }

let external_identity = lazy (make_thread "external")
let last_run_stats : stats option ref = ref None
let last_run_trace : Sim_trace.event list ref = ref []

let running () = !the_engine <> None

let eng_exn () =
  match !the_engine with
  | Some e -> e
  | None -> raise (Kernel_panic "no simulation is running")

let fatal msg = raise (Kernel_panic msg)

(* The currently-executing (cpu, frame), if a fiber is running. *)
let ctx () = match !the_engine with None -> None | Some e -> e.cur

let frame_name = function
  | Fthread t -> t.tname
  | Fintr i -> "intr:" ^ i.iname

let self () =
  match ctx () with
  | None -> Lazy.force external_identity
  | Some (c, Fthread t) ->
      ignore c;
      t
  | Some (c, Fintr _) -> (
      (* Interrupt context: the current thread is the interrupted thread;
         on an idle cpu, a per-cpu identity stands in (Mach's idle
         thread). *)
      let rec bottom = function
        | [ Fthread t ] -> Some t
        | _ :: rest -> bottom rest
        | [] -> None
      in
      match bottom c.frames with
      | Some t -> t
      | None -> (
          match !the_engine with
          | Some e -> e.idle_identity.(c.idx)
          | None -> Lazy.force external_identity))

let thread_id t = t.tid
let thread_name t = t.tname
let equal_thread a b = a.tid == b.tid
let is_dead t = t.state = Dead

let tls_get t ~key = if key < Array.length t.tls then t.tls.(key) else 0

let tls_set t ~key v =
  if key >= Array.length t.tls then begin
    let bigger = Array.make (max (key + 1) (2 * Array.length t.tls)) 0 in
    Array.blit t.tls 0 bigger 0 (Array.length t.tls);
    t.tls <- bigger
  end;
  t.tls.(key) <- v

let in_interrupt () =
  match ctx () with Some (_, Fintr _) -> true | _ -> false

let productive e = e.stale <- 0

(* Record unconditionally: a disabled trace counts the discard itself, so
   "tracing was off" is distinguishable from "the ring overflowed". *)
let trace ev =
  match !the_engine with
  | Some e ->
      let step = e.st.m_steps in
      let cpu, context, clock =
        match e.cur with
        | Some (c, f) -> (c.idx, frame_name f, c.clock)
        | None -> (-1, "sched", 0)
      in
      Sim_trace.record e.trace ~step ~clock ~cpu ~context ev
  | None -> ()

(* ------------------------------------------------------------------ *)
(* Effects                                                              *)
(* ------------------------------------------------------------------ *)

type _ Effect.t += Pause_eff : unit Effect.t | Park_eff : unit Effect.t

let charge e n =
  match e.cur with Some (c, _) -> c.clock <- c.clock + n | None -> ()

let pause () =
  match !the_engine with
  | None -> ()
  | Some e -> (
      match e.cur with
      | None -> ()
      | Some _ ->
          charge e e.cfg.pause_cost;
          Effect.perform Pause_eff)

let cycles n =
  match !the_engine with None -> () | Some e -> charge e n

let now_cycles () =
  match ctx () with Some (c, _) -> c.clock | None -> 0

let current_cpu () = match ctx () with Some (c, _) -> c.idx | None -> 0

let cpu_count () =
  match !the_engine with Some e -> e.cfg.cpus | None -> 1

let set_spl level =
  match ctx () with
  | Some (c, _) ->
      let old = c.spl in
      c.spl <- level;
      trace
        (Obs_event.Spl_raise
           { from_lvl = Spl.to_string old; to_lvl = Spl.to_string level });
      old
  | None ->
      let t = Lazy.force external_identity in
      let old = t.saved_spl in
      t.saved_spl <- level;
      old

let get_spl () =
  match ctx () with
  | Some (c, _) -> c.spl
  | None -> (Lazy.force external_identity).saved_spl

let spin_hint s =
  match ctx () with
  | Some (_, Fthread t) -> t.hint <- Some s
  | Some (_, Fintr i) -> i.ihint <- Some s
  | None -> ()

(* ------------------------------------------------------------------ *)
(* Shared cells with a cache and bus cost model                         *)
(* ------------------------------------------------------------------ *)

let max_cpus = 64

module Cell = struct
  type t = {
    cname : string;
    mutable v : int;
    mutable version : int;
    cached : int array; (* per-cpu version last observed; -1 = invalid *)
  }

  let make ?(name = "cell") v =
    { cname = name; v; version = 0; cached = Array.make max_cpus (-1) }

  let name t = t.cname

  (* Bus access: serialize on the global bus and charge [cost]. *)
  let bus_access e c cost =
    let start = max c.clock e.bus_free_at in
    c.clock <- start + cost;
    e.bus_free_at <- start + e.cfg.bus_occupancy;
    e.st.m_bus <- e.st.m_bus + 1

  let invalidate t writer_cpu =
    t.version <- t.version + 1;
    Array.fill t.cached 0 max_cpus (-1);
    if writer_cpu >= 0 then t.cached.(writer_cpu) <- t.version

  let maybe_preempt e =
    if e.cfg.preempt_on_cell_ops && e.cur <> None then
      Effect.perform Pause_eff

  let get t =
    match !the_engine with
    | None -> t.v
    | Some e -> (
        match e.cur with
        | None -> t.v
        | Some (c, _) ->
            if t.cached.(c.idx) = t.version then
              c.clock <- c.clock + e.cfg.read_hit_cost
            else begin
              bus_access e c e.cfg.read_miss_cost;
              e.st.m_misses <- e.st.m_misses + 1;
              t.cached.(c.idx) <- t.version
            end;
            let v = t.v in
            maybe_preempt e;
            v)

  let set t v =
    (match !the_engine with
    | None -> t.v <- v
    | Some e -> (
        match e.cur with
        | None -> t.v <- v
        | Some (c, _) ->
            bus_access e c e.cfg.write_cost;
            t.v <- v;
            invalidate t c.idx;
            productive e;
            trace (Obs_event.Cell_set { cell = t.cname; value = v });
            maybe_preempt e));
    ()

  (* [stores old] tells whether the instruction performs its store even
     when the value is unchanged: test-and-set always writes (this is
     precisely the bus-bandwidth waste of spinning on it, section 2),
     while a failed compare-and-swap does not take the line exclusive.
     Only an actual value change counts as progress for the watchdog. *)
  let atomic_op t ~stores f =
    match !the_engine with
    | None ->
        let old = t.v in
        t.v <- f old;
        old
    | Some e -> (
        match e.cur with
        | None ->
            let old = t.v in
            t.v <- f old;
            old
        | Some (c, _) ->
            bus_access e c e.cfg.atomic_cost;
            e.st.m_atomics <- e.st.m_atomics + 1;
            let old = t.v in
            let nv = f old in
            t.v <- nv;
            if stores old then invalidate t c.idx
            else t.cached.(c.idx) <- t.version;
            if nv <> old then productive e;
            maybe_preempt e;
            old)

  let test_and_set t =
    let old = atomic_op t ~stores:(fun _ -> true) (fun _ -> 1) in
    trace (Obs_event.Tas { cell = t.cname; old_value = old });
    old

  let compare_and_swap t ~expected ~desired =
    let old =
      atomic_op t
        ~stores:(fun old -> old = expected)
        (fun v -> if v = expected then desired else v)
    in
    old = expected

  let fetch_and_add t n =
    atomic_op t ~stores:(fun _ -> true) (fun v -> v + n)
end

(* ------------------------------------------------------------------ *)
(* Threads                                                              *)
(* ------------------------------------------------------------------ *)

let thread_counter_per_run = ref 0

let spawn ?name ?bound f =
  let e = eng_exn () in
  incr thread_counter_per_run;
  let tname =
    match name with
    | Some n -> n
    | None -> Printf.sprintf "thread%d" !thread_counter_per_run
  in
  let t = make_thread ~bound tname in
  t.start <- Some f;
  t.ready_clock <- (match e.cur with Some (c, _) -> c.clock | None -> 0);
  e.runq <- e.runq @ [ t ];
  e.threads <- t :: e.threads;
  e.live <- e.live + 1;
  e.st.m_spawned <- e.st.m_spawned + 1;
  productive e;
  trace (Obs_event.Spawn { thread = tname });
  t

let unpark t =
  match !the_engine with
  | None -> () (* outside simulation: nothing can be parked *)
  | Some e -> (
      match t.state with
      | Parked ->
          t.state <- Runnable;
          t.ready_clock <-
            (match e.cur with Some (c, _) -> c.clock | None -> 0);
          e.runq <- e.runq @ [ t ];
          e.st.m_unparks <- e.st.m_unparks + 1;
          productive e;
          trace (Obs_event.Unpark { thread = t.tname })
      | Runnable ->
          t.permits <- t.permits + 1;
          productive e;
          trace (Obs_event.Permit { thread = t.tname })
      | Dead -> ())

let park () =
  let e = eng_exn () in
  (match e.cur with
  | None -> fatal "park outside a simulated thread"
  | Some (_, Fintr i) ->
      fatal
        (Printf.sprintf
           "park in interrupt handler %s: interrupt routines lack the \
            thread context required to sleep (paper, section 7)"
           i.iname)
  | Some (_, Fthread _) -> ());
  let t = self () in
  if t.permits > 0 then begin
    t.permits <- t.permits - 1;
    (* Still a schedule point, so wakeup-before-block schedules explore
       the same interleavings as real blocking. *)
    Effect.perform Pause_eff
  end
  else begin
    e.st.m_parks <- e.st.m_parks + 1;
    productive e;
    trace (Obs_event.Park { thread = t.tname });
    Effect.perform Park_eff
  end

let join target =
  let t = self () in
  if equal_thread t target then fatal "join on self";
  if target.state <> Dead then begin
    target.joiners <- t :: target.joiners;
    while target.state <> Dead do
      park ()
    done
  end

(* ------------------------------------------------------------------ *)
(* Interrupts                                                           *)
(* ------------------------------------------------------------------ *)

let post_interrupt ?(name = "ipi") ~cpu ~level handler =
  let e = eng_exn () in
  if cpu < 0 || cpu >= e.cfg.cpus then
    fatal (Printf.sprintf "post_interrupt: no cpu %d" cpu);
  let i =
    {
      iname = name;
      ilevel = level;
      ihandler = Some handler;
      icont = None;
      isaved_spl = Spl.Spl0;
      ihint = None;
    }
  in
  let c = e.cpus.(cpu) in
  c.pending <- c.pending @ [ i ];
  productive e;
  trace (Obs_event.Intr_post { name; cpu; level = Spl.to_string level })

let pending_interrupts ~cpu =
  let e = eng_exn () in
  List.length e.cpus.(cpu).pending

(* ------------------------------------------------------------------ *)
(* Scheduler                                                            *)
(* ------------------------------------------------------------------ *)

let deliverable c =
  List.exists (fun i -> not (Spl.masks ~at:c.spl i.ilevel)) c.pending

let dispatchable e c =
  List.exists
    (fun t -> match t.bound with None -> true | Some b -> b = c.idx)
    e.runq

type action = Deliver | Resume | Dispatch

let cpu_action e c =
  if deliverable c then Some Deliver
  else
    match c.frames with
    | _ :: _ -> Some Resume
    | [] -> if dispatchable e c then Some Dispatch else None

let finish_frame e (c : cpu) (f : frame) =
  (match c.frames with
  | top :: rest when top == f -> c.frames <- rest
  | _ -> fatal "internal: finishing a frame that is not on top");
  productive e;
  match f with
  | Fthread t ->
      t.state <- Dead;
      t.on_cpu <- -1;
      e.live <- e.live - 1;
      c.spl <- Spl.Spl0;
      trace (Obs_event.Thread_exit { thread = t.tname });
      List.iter unpark t.joiners;
      t.joiners <- []
  | Fintr i ->
      c.spl <- i.isaved_spl;
      trace (Obs_event.Intr_done { name = i.iname })

(* The handler closures must find the *current* cpu and frame at effect
   time (from [e.cur], which [resume] maintains): a thread that parks and
   is later dispatched again may be running on a different cpu than the
   one it started on, while the handler installed by [match_with] stays
   the same for the fiber's whole life. *)
let run_fiber e (body : unit -> unit) =
  let open Effect.Deep in
  let cur () =
    match e.cur with
    | Some cf -> cf
    | None -> fatal "internal: fiber effect with no current frame"
  in
  match_with body ()
    {
      retc =
        (fun () ->
          let c, f = cur () in
          finish_frame e c f);
      exnc =
        (fun exn ->
          (* A fiber exception is a kernel panic: annotate and propagate
             out of the scheduler. *)
          let c, f = cur () in
          match exn with
          | Kernel_panic msg ->
              raise
                (Kernel_panic
                   (Printf.sprintf "[cpu%d %s] %s" c.idx (frame_name f) msg))
          | exn ->
              raise
                (Kernel_panic
                   (Printf.sprintf "[cpu%d %s] unhandled exception: %s"
                      c.idx (frame_name f) (Printexc.to_string exn))));
      effc =
        (fun (type a) (eff : a Effect.t) ->
          match eff with
          | Pause_eff ->
              Some
                (fun (k : (a, unit) continuation) ->
                  (* Stay on the cpu, suspended at a preemption point. *)
                  match cur () with
                  | _, Fthread t -> t.cont <- Some k
                  | _, Fintr i -> i.icont <- Some k)
          | Park_eff ->
              Some
                (fun (k : (a, unit) continuation) ->
                  match cur () with
                  | c, (Fthread t as f) ->
                      t.cont <- Some k;
                      t.state <- Parked;
                      t.saved_spl <- c.spl;
                      t.on_cpu <- -1;
                      (match c.frames with
                      | top :: rest when top == f -> c.frames <- rest
                      | _ -> fatal "internal: parking a non-top frame");
                      c.spl <- Spl.Spl0
                  | _, Fintr _ -> fatal "internal: park effect in interrupt")
          | _ -> None);
    }

let resume e c =
  match c.frames with
  | [] -> fatal "internal: resume on idle cpu"
  | f :: _ -> (
      e.cur <- Some (c, f);
      (match f with
      | Fthread t -> (
          match (t.start, t.cont) with
          | Some body, _ ->
              t.start <- None;
              run_fiber e body
          | None, Some k ->
              t.cont <- None;
              Effect.Deep.continue k ()
          | None, None -> fatal "internal: thread frame with no continuation")
      | Fintr i -> (
          match (i.ihandler, i.icont) with
          | Some body, _ ->
              i.ihandler <- None;
              run_fiber e body
          | None, Some k ->
              i.icont <- None;
              Effect.Deep.continue k ()
          | None, None -> fatal "internal: interrupt frame w/o continuation"));
      e.cur <- None)

let deliver e c =
  (* Highest-priority deliverable interrupt first. *)
  let best =
    List.fold_left
      (fun acc i ->
        if Spl.masks ~at:c.spl i.ilevel then acc
        else
          match acc with
          | Some b when Spl.rank b.ilevel >= Spl.rank i.ilevel -> acc
          | _ -> Some i)
      None c.pending
  in
  match best with
  | None -> fatal "internal: deliver with nothing deliverable"
  | Some i ->
      c.pending <- List.filter (fun i' -> i' != i) c.pending;
      i.isaved_spl <- c.spl;
      c.spl <- i.ilevel;
      c.frames <- Fintr i :: c.frames;
      c.clock <- c.clock + e.cfg.interrupt_cost;
      e.st.m_intrs <- e.st.m_intrs + 1;
      productive e;
      e.cur <- Some (c, Fintr i);
      trace
        (Obs_event.Intr_deliver
           { name = i.iname; level = Spl.to_string i.ilevel });
      e.cur <- None

let dispatch e c =
  let rec take acc = function
    | [] -> None
    | t :: rest -> (
        match t.bound with
        | Some b when b <> c.idx -> take (t :: acc) rest
        | _ -> Some (t, List.rev_append acc rest))
  in
  match take [] e.runq with
  | None -> fatal "internal: dispatch with empty run queue"
  | Some (t, rest) ->
      e.runq <- rest;
      t.on_cpu <- c.idx;
      c.clock <- max c.clock t.ready_clock + e.cfg.context_switch_cost;
      c.spl <- t.saved_spl;
      c.frames <- [ Fthread t ];
      e.st.m_switches <- e.st.m_switches + 1;
      productive e;
      trace (Obs_event.Dispatch { thread = t.tname; cpu = c.idx })

let all_threads_report e =
  let buf = Buffer.create 256 in
  Array.iter
    (fun c ->
      Buffer.add_string buf
        (Printf.sprintf "  cpu%d clock=%d spl=%s frames=[%s] pending=%d\n"
           c.idx c.clock (Spl.to_string c.spl)
           (String.concat "; "
              (List.map
                 (fun f ->
                   let hint =
                     match f with
                     | Fthread t -> t.hint
                     | Fintr i -> i.ihint
                   in
                   frame_name f
                   ^ match hint with
                     | Some h -> " (spinning on " ^ h ^ ")"
                     | None -> "")
                 c.frames))
           (List.length c.pending)))
    e.cpus;
  Buffer.add_string buf
    (Printf.sprintf "  runq=[%s]\n"
       (String.concat "; " (List.map (fun t -> t.tname) e.runq)));
  let parked = List.filter (fun t -> t.state = Parked) e.threads in
  Buffer.add_string buf
    (Printf.sprintf "  parked=[%s]\n"
       (String.concat "; "
          (List.map
             (fun t ->
               t.tname
               ^ match t.hint with Some h -> " (last spin: " ^ h ^ ")" | None -> "")
             parked)));
  Buffer.contents buf

let mkstats e =
  {
    steps = e.st.m_steps;
    makespan = Array.fold_left (fun acc c -> max acc c.clock) 0 e.cpus;
    bus_transactions = e.st.m_bus;
    cache_misses = e.st.m_misses;
    atomic_ops = e.st.m_atomics;
    interrupts_delivered = e.st.m_intrs;
    context_switches = e.st.m_switches;
    spawned_threads = e.st.m_spawned;
    parks = e.st.m_parks;
    unparks = e.st.m_unparks;
    spin_pauses = e.st.m_spin_pauses;
  }

let pick_cpu e candidates =
  match e.cfg.policy with
  | Sim_config.Random_policy ->
      List.nth candidates (Sim_rng.int e.rng (List.length candidates))
  | Sim_config.Round_robin ->
      let n = Array.length e.cpus in
      let rec scan k =
        let idx = (e.rr_next + k) mod n in
        match List.find_opt (fun (c, _) -> c.idx = idx) candidates with
        | Some choice ->
            e.rr_next <- (idx + 1) mod n;
            choice
        | None -> scan (k + 1)
      in
      scan 0
  | Sim_config.Timed ->
      (* Advance the least-advanced cpu, but choose randomly among cpus
         within a small clock window of the minimum: without this jitter,
         two contenders can phase-lock into a deterministic cycle where
         one always samples a lock while the other holds it (a livelock
         real machines escape through timing noise). *)
      let minimum =
        List.fold_left (fun acc (c, _) -> min acc c.clock) max_int candidates
      in
      let window = (2 * e.cfg.atomic_cost) + (2 * e.cfg.bus_occupancy) in
      let near =
        List.filter (fun (c, _) -> c.clock <= minimum + window) candidates
      in
      List.nth near (Sim_rng.int e.rng (List.length near))

let sched_loop e =
  let watchdog_fired () =
    let report =
      "no productive operation for "
      ^ string_of_int e.cfg.watchdog_steps
      ^ " steps; machine state:\n" ^ all_threads_report e
    in
    raise (Deadlock (Spin_deadlock, report))
  in
  let rec loop () =
    if e.live = 0 then mkstats e
    else begin
      (match e.cfg.max_steps with
      | Some limit when e.st.m_steps >= limit -> raise Step_limit
      | _ -> ());
      if e.stale > e.cfg.watchdog_steps then watchdog_fired ();
      let candidates =
        Array.fold_right
          (fun c acc ->
            match cpu_action e c with
            | Some a -> (c, a) :: acc
            | None -> acc)
          e.cpus []
      in
      match candidates with
      | [] ->
          let report =
            "all cpus idle, run queue empty, but "
            ^ string_of_int e.live
            ^ " thread(s) still parked; machine state:\n"
            ^ all_threads_report e
          in
          raise (Deadlock (Sleep_deadlock, report))
      | _ ->
          e.st.m_steps <- e.st.m_steps + 1;
          e.stale <- e.stale + 1;
          let c, a = pick_cpu e candidates in
          (match a with
          | Deliver -> deliver e c
          | Resume -> resume e c
          | Dispatch -> dispatch e c);
          loop ()
    end
  in
  loop ()

let run ?(cfg = Sim_config.default) main =
  if !the_engine <> None then
    invalid_arg "Sim_engine.run: a simulation is already running";
  if cfg.cpus < 1 || cfg.cpus > max_cpus then
    invalid_arg "Sim_engine.run: cpu count out of range";
  let e =
    {
      cfg;
      rng = Sim_rng.make cfg.seed;
      cpus =
        Array.init cfg.cpus (fun idx ->
            { idx; clock = 0; spl = Spl.Spl0; frames = []; pending = [] });
      runq = [];
      threads = [];
      live = 0;
      stale = 0;
      bus_free_at = 0;
      trace =
        Sim_trace.make ~cpus:cfg.cpus ~capacity:cfg.trace_capacity
          ~enabled:cfg.trace ();
      st =
        {
          m_steps = 0;
          m_bus = 0;
          m_misses = 0;
          m_atomics = 0;
          m_intrs = 0;
          m_switches = 0;
          m_spawned = 0;
          m_parks = 0;
          m_unparks = 0;
          m_spin_pauses = 0;
        };
      cur = None;
      rr_next = 0;
      idle_identity =
        Array.init cfg.cpus (fun i ->
            make_thread (Printf.sprintf "cpu%d-idle" i));
    }
  in
  thread_counter_per_run := 0;
  the_engine := Some e;
  (* Core layers (locks, events, refcounts) emit typed events through the
     global [Obs_trace] sink without knowing about the engine; route them
     into this run's trace. *)
  Obs_trace.set_sink (Some trace);
  Obs_trace.set_enabled cfg.trace;
  let finish () =
    last_run_trace := Sim_trace.events e.trace;
    Obs_trace.set_enabled false;
    the_engine := None
  in
  match
    ignore (spawn ~name:"main" main);
    sched_loop e
  with
  | stats ->
      last_run_stats := Some stats;
      finish ();
      stats
  | exception exn ->
      last_run_stats := Some (mkstats e);
      finish ();
      raise exn

type outcome =
  | Completed of stats
  | Deadlocked of deadlock_kind * string
  | Panicked of string
  | Hit_step_limit

let run_outcome ?cfg main =
  match run ?cfg main with
  | stats -> Completed stats
  | exception Deadlock (k, r) -> Deadlocked (k, r)
  | exception Kernel_panic msg -> Panicked msg
  | exception Step_limit -> Hit_step_limit

let trace_events () =
  match !the_engine with
  | Some e -> Sim_trace.events e.trace
  | None -> !last_run_trace

let last_stats () = !last_run_stats

let live_threads () =
  match !the_engine with Some e -> e.live | None -> 0

(* spin pauses are counted where the machine layer calls [pause]; expose a
   hook for Sim_machine. *)
let count_spin_pause () =
  match !the_engine with
  | Some e -> e.st.m_spin_pauses <- e.st.m_spin_pauses + 1
  | None -> ()
