(** The simulated multiprocessor.

    A single OS thread runs a deterministic scheduler over effect-handler
    fibers.  Each virtual cpu executes a stack of contexts: at the bottom a
    kernel thread, above it nested interrupt handlers.  Fibers run native
    OCaml code between {e preemption points} (spin pauses and shared-cell
    operations); at each point the scheduler may switch to another cpu,
    deliver a pending interrupt whose priority exceeds the cpu's current
    spl, or context-switch a parked thread off the cpu.  A seeded policy
    chooses among cpus, so a (seed, config) pair fully determines the run.

    Shared-memory cells carry a MESI-like cache model and serialize their
    misses and interlocked operations on a global bus, reproducing the
    cache behaviour section 2 of the paper reasons about.

    The engine detects both deadlock flavours the paper's design rules
    exist to prevent: {e sleep deadlocks} (every thread parked, nothing
    runnable) and {e spin deadlocks / livelocks} (a progress watchdog: no
    productive operation for a configurable number of steps). *)

type thread

val schedule_version : int
(** Bumped whenever an engine change may legitimately alter seeded
    schedules (and therefore the determinism goldens).  [gen_golden]
    stamps it into regenerated goldens and [test_determinism] checks the
    stamp, so a stale golden fails with "regenerate" instead of an opaque
    byte diff. *)

type deadlock_kind = Sleep_deadlock | Spin_deadlock

exception Kernel_panic of string
exception Deadlock of deadlock_kind * string
exception Step_limit

type stats = {
  steps : int;
  makespan : int;          (** max cpu cycle clock at completion *)
  bus_transactions : int;
  cache_misses : int;
  atomic_ops : int;
  interrupts_delivered : int;
  context_switches : int;
  spawned_threads : int;
  parks : int;
  unparks : int;
  spin_pauses : int;
}

val pp_stats : Format.formatter -> stats -> unit

type chaos_stats = {
  dropped_wakeups : int;
  delayed_wakeups : int;
  spurious_wakeups : int;
  delayed_interrupts : int;
  perturbed_picks : int;
  forced_preemptions : int;
  dropped_handoffs : int;
}
(** Counts of the fault injections actually fired during a run.  Kept out
    of {!stats} so the golden determinism format is untouched. *)

val pp_chaos_stats : Format.formatter -> chaos_stats -> unit

type deadlock_analysis = {
  cycle : string list;
      (** labels of the waits-for cycle, in order (empty when none found) *)
  orphans : string list;
      (** orphaned-waiter / lost-wakeup explanations for parked threads *)
}

(** {1 Running} *)

val run : ?cfg:Sim_config.t -> (unit -> unit) -> stats
(** Boot the machine, run [main] as the first thread, schedule until every
    thread has finished.  @raise Deadlock, @raise Kernel_panic,
    @raise Step_limit. *)

type outcome =
  | Completed of stats
  | Deadlocked of deadlock_kind * string
  | Panicked of string
  | Hit_step_limit

val run_outcome : ?cfg:Sim_config.t -> (unit -> unit) -> outcome
(** Like {!run} but captures the engine's own failure modes as data
    (other exceptions still propagate). *)

val running : unit -> bool
(** True between boot and completion of {!run} (i.e. inside a fiber or the
    scheduler). *)

(** {1 Threads} *)

val spawn : ?name:string -> ?bound:int -> (unit -> unit) -> thread
(** Create a runnable thread; [bound] pins it to one cpu. *)

val join : thread -> unit
val self : unit -> thread
val thread_id : thread -> int
val thread_name : thread -> string
val equal_thread : thread -> thread -> bool
val is_dead : thread -> bool

val park : unit -> unit
(** Block the current thread (permit semantics).  Fatal in interrupt
    context or outside the simulator. *)

val unpark : thread -> unit

val tls_get : thread -> key:int -> int
val tls_set : thread -> key:int -> int -> unit

(** {1 Preemption, time, spl} *)

val pause : unit -> unit
(** Preemption point; charges the configured pause cost. *)

val cycles : int -> unit
val now_cycles : unit -> int
val current_cpu : unit -> int
val cpu_count : unit -> int
val in_interrupt : unit -> bool
val set_spl : Mach_core.Spl.t -> Mach_core.Spl.t
val get_spl : unit -> Mach_core.Spl.t
val spin_hint : string -> unit

val spin_max_backoff : unit -> int
(** The running configuration's [spin_max_backoff] (the default cap when
    no simulation is running). *)

val fatal : string -> 'a

(** {1 Interrupts} *)

val post_interrupt :
  ?name:string -> cpu:int -> level:Mach_core.Spl.t -> (unit -> unit) -> unit
(** Queue an interrupt for [cpu]; it is delivered at the cpu's next
    preemption point once its spl admits [level].  The handler runs as a
    nested context on that cpu and may spin on locks (other cpus keep
    running meanwhile) but must not block. *)

val pending_interrupts : cpu:int -> int

(** {1 Shared cells (used by Sim_machine.Cell)} *)

module Cell : sig
  type t

  val make : ?name:string -> int -> t
  val get : t -> int
  val set : t -> int -> unit
  val test_and_set : t -> int
  val swap : t -> int -> int
  val compare_and_swap : t -> expected:int -> desired:int -> bool
  val fetch_and_add : t -> int -> int
  val name : t -> string
end

val handoff_fault : unit -> bool
(** One chaos draw against the [drop_handoff] fault class (false, with no
    draw, when the class is off).  See
    {!Mach_core.Machine_intf.MACHINE.handoff_fault}. *)

(** {1 Introspection} *)

val trace_events : unit -> Sim_trace.event list
(** Events of the current (or most recent) run, when tracing is enabled. *)

val trace_drop_stats : unit -> Sim_trace.drop_stats option
(** The trace's loss counters (ring overflow vs disabled, split span vs
    plain event) for the current or most recent run. *)

val last_stats : unit -> stats option
(** Stats of the most recently completed run. *)

val last_chaos : unit -> chaos_stats option
(** Injection counts of the most recently completed run (this domain). *)

val last_analysis : unit -> deadlock_analysis option
(** The waits-for analysis of the most recent deadlock report, when the
    run had [track_waits] on.  [None] when the run ended cleanly. *)

val live_threads : unit -> int

val count_spin_pause : unit -> unit
(** Statistics hook used by [Sim_machine.spin_pause]. *)
