type verdict = {
  seeds_run : int;
  completed : int;
  sleep_deadlocks : int;
  spin_deadlocks : int;
  panics : int;
  step_limits : int;
  failures : (int * string) list;
}

let pp_verdict ppf v =
  Format.fprintf ppf
    "seeds=%d completed=%d sleep-deadlocks=%d spin-deadlocks=%d panics=%d \
     step-limits=%d"
    v.seeds_run v.completed v.sleep_deadlocks v.spin_deadlocks v.panics
    v.step_limits

let default_seeds = List.init 100 (fun i -> i + 1)

let empty_verdict =
  {
    seeds_run = 0;
    completed = 0;
    sleep_deadlocks = 0;
    spin_deadlocks = 0;
    panics = 0;
    step_limits = 0;
    failures = [];
  }

let max_failures = 16

(* Fold one outcome into the tally.  Outcomes arrive in seed order;
   failure reports accumulate in *reverse* order here (cheap prepend) and
   [finish] flips them, so the verdict carries the first 16 failing
   seeds, ascending. *)
let tally v (seed, outcome) =
  let add_failure report v =
    if List.length v.failures >= max_failures then v
    else { v with failures = (seed, report) :: v.failures }
  in
  let v = { v with seeds_run = v.seeds_run + 1 } in
  match outcome with
  | Sim_engine.Completed _ -> { v with completed = v.completed + 1 }
  | Sim_engine.Deadlocked (Sim_engine.Sleep_deadlock, r) ->
      add_failure r { v with sleep_deadlocks = v.sleep_deadlocks + 1 }
  | Sim_engine.Deadlocked (Sim_engine.Spin_deadlock, r) ->
      add_failure r { v with spin_deadlocks = v.spin_deadlocks + 1 }
  | Sim_engine.Panicked r -> add_failure r { v with panics = v.panics + 1 }
  | Sim_engine.Hit_step_limit ->
      add_failure "step limit" { v with step_limits = v.step_limits + 1 }

let finish v = { v with failures = List.rev v.failures }

(* Run [f] on each element of [jobs] across [domains] domains and return
   the results in input order.  Work-stealing over a shared index: domains
   grab the next unclaimed job, so an uneven mix of long and short seeds
   still load-balances.  Each result lands in its input slot, making the
   merge a left fold in seed order — observably identical to the
   sequential fold regardless of which domain ran which seed. *)
let parallel_map ~domains jobs f =
  let n = Array.length jobs in
  let results = Array.make n None in
  let next = Atomic.make 0 in
  let worker () =
    let rec grab () =
      let i = Atomic.fetch_and_add next 1 in
      if i < n then begin
        results.(i) <- Some (f jobs.(i));
        grab ()
      end
    in
    grab ()
  in
  let spawned =
    List.init (domains - 1) (fun _ -> Domain.spawn worker)
  in
  worker ();
  List.iter Domain.join spawned;
  Array.map
    (function Some r -> r | None -> invalid_arg "parallel_map: missing")
    results

let run ?(cpus = 4) ?policy ?(seeds = default_seeds) ?(domains = 1)
    ?(tweak = Fun.id) scenario =
  if domains < 1 then invalid_arg "Sim_explore.run: domains < 1";
  let outcome_of seed =
    let cfg = Sim_config.exploration ~cpus ~seed () in
    let cfg =
      match policy with Some p -> { cfg with Sim_config.policy = p } | None -> cfg
    in
    (seed, Sim_engine.run_outcome ~cfg:(tweak cfg) scenario)
  in
  let outcomes =
    if domains = 1 then List.map outcome_of seeds
    else
      Array.to_list
        (parallel_map ~domains (Array.of_list seeds) outcome_of)
  in
  finish (List.fold_left tally empty_verdict outcomes)

let all_completed v = v.completed = v.seeds_run && v.panics = 0

let some_deadlock v = v.sleep_deadlocks > 0 || v.spin_deadlocks > 0

let find_first_deadlock ?(cpus = 4) ?(max_seeds = 200) ?(tweak = Fun.id)
    scenario =
  let rec search seed =
    if seed > max_seeds then None
    else
      let cfg = tweak (Sim_config.exploration ~cpus ~seed ()) in
      match Sim_engine.run_outcome ~cfg scenario with
      | Sim_engine.Deadlocked (_, report) -> Some (seed, report)
      | _ -> search (seed + 1)
  in
  search 1
