(** Schedule exploration: run one scenario under many seeds (and therefore
    many interleavings) and aggregate the outcomes.  This is the tool the
    correctness experiments (E6, E7, E11) use to show that a buggy locking
    protocol deadlocks on {e some} schedule while the disciplined protocol
    deadlocks on {e none}. *)

type verdict = {
  seeds_run : int;
  completed : int;
  sleep_deadlocks : int;
  spin_deadlocks : int;
  panics : int;
  step_limits : int;
  failures : (int * string) list;
      (** (seed, report) for the first 16 non-completed outcomes, in
          ascending seed order. *)
}

val pp_verdict : Format.formatter -> verdict -> unit

val parallel_map : domains:int -> 'a array -> ('a -> 'b) -> 'b array
(** [parallel_map ~domains jobs f] applies [f] to every job across
    [domains] OCaml domains (work-stealing over a shared index) and
    returns the results in input order.  [f] must be safe to run in a
    fresh domain — in particular each call may host its own
    [Sim_engine.run].  This is the fan-out primitive behind [run] and the
    model checker's subtree parallelism ([Mc.check ~domains]). *)

val run :
  ?cpus:int ->
  ?policy:Sim_config.policy ->
  ?seeds:int list ->
  ?domains:int ->
  ?tweak:(Sim_config.t -> Sim_config.t) ->
  (unit -> unit) ->
  verdict
(** [run scenario] executes the scenario once per seed (default seeds
    1..100) under the exploration configuration and tallies outcomes.
    [tweak] post-processes the configuration (e.g. to bound steps).

    [domains] (default 1) fans the seeds out across that many OCaml
    domains.  Each seed's simulation is single-domain deterministic and
    the merge preserves seed order, so the verdict — counts and failure
    reports alike — is identical to the sequential run for every
    [domains] value. *)

val all_completed : verdict -> bool
val some_deadlock : verdict -> bool

val find_first_deadlock :
  ?cpus:int ->
  ?max_seeds:int ->
  ?tweak:(Sim_config.t -> Sim_config.t) ->
  (unit -> unit) ->
  (int * string) option
(** Search seeds 1,2,... until a deadlock is found; [None] if none within
    [max_seeds] (default 200).  [tweak] post-processes each seed's
    configuration (e.g. to enable fault injection or wait tracking). *)
