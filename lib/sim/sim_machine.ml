(** {!Mach_core.Machine_intf.MACHINE} implemented on the simulated
    multiprocessor: the machine the kernel model runs on. *)

let name = "sim"

module Cell = Sim_engine.Cell

type thread = Sim_engine.thread

let self = Sim_engine.self
let thread_id = Sim_engine.thread_id
let thread_name = Sim_engine.thread_name
let equal_thread = Sim_engine.equal_thread
let in_interrupt = Sim_engine.in_interrupt
let cpu_count = Sim_engine.cpu_count
let current_cpu = Sim_engine.current_cpu

let spin_pause () =
  Sim_engine.count_spin_pause ();
  Sim_engine.pause ()

let spin_hint = Sim_engine.spin_hint
let spin_max_backoff = Sim_engine.spin_max_backoff
let park = Sim_engine.park
let unpark = Sim_engine.unpark
let set_spl = Sim_engine.set_spl
let get_spl = Sim_engine.get_spl
let cycles = Sim_engine.cycles
let now_cycles = Sim_engine.now_cycles
let tls_get = Sim_engine.tls_get
let tls_set = Sim_engine.tls_set
let handoff_fault = Sim_engine.handoff_fault
let fatal = Sim_engine.fatal

(* One domain hosts at most one simulation at a time, and concurrent
   explorations in other domains must not share machine state. *)
let machine_local init =
  let key = Domain.DLS.new_key init in
  fun () -> Domain.DLS.get key
