module Obs_event = Mach_obs.Obs_event
module Obs_json = Mach_obs.Obs_json

type event = {
  seq : int;
  step : int;
  clock : int;
  cpu : int;
  context : string;
  ev : Obs_event.t;
}

(* One bounded ring per cpu (slot 0 is the scheduler, cpu c is slot c+1),
   so a chatty cpu cannot evict every other cpu's recent history.  Events
   carry a global sequence number; [events] merges the rings on it. *)
type ring = {
  buf : event option array;
  mutable next : int;
  mutable count : int;
  mutable overflowed : int;
}

(* Span records ([Obs_event.Span_close]) and plain instants are lost for
   different reasons and debugged differently (a missing span breaks
   critical-path attribution; a missing instant breaks event forensics),
   so both loss counters are kept per kind.  Overflow classifies the
   EVICTED record, not the incoming one — the evicted record is the one
   actually lost. *)
type drop_stats = {
  dropped_spans : int;
  dropped_events : int;
  disabled_spans : int;
  disabled_events : int;
}

type t = {
  per_ring : int;
  on : bool;
  rings : ring array;
  mutable seq : int;
  mutable disabled_discards : int;
  mutable dropped_spans : int;
  mutable dropped_events : int;
  mutable disabled_spans : int;
}

let make ?(cpus = 1) ~capacity ~enabled () =
  let nrings = max 1 cpus + 1 in
  let per_ring = max 1 (capacity / nrings) in
  {
    per_ring;
    on = enabled;
    rings =
      Array.init nrings (fun _ ->
          { buf = Array.make per_ring None; next = 0; count = 0; overflowed = 0 });
    seq = 0;
    disabled_discards = 0;
    dropped_spans = 0;
    dropped_events = 0;
    disabled_spans = 0;
  }

let enabled t = t.on
let capacity t = t.per_ring * Array.length t.rings

let ring_of t cpu =
  let n = Array.length t.rings in
  let i = cpu + 1 in
  t.rings.(if i < 0 || i >= n then 0 else i)

let record t ~step ~clock ~cpu ~context ev =
  if not t.on then begin
    t.disabled_discards <- t.disabled_discards + 1;
    if Obs_event.is_span ev then t.disabled_spans <- t.disabled_spans + 1
  end
  else begin
    let r = ring_of t cpu in
    if r.count = t.per_ring then begin
      r.overflowed <- r.overflowed + 1;
      (* The slot about to be overwritten holds the record we lose. *)
      match r.buf.(r.next) with
      | Some evicted when Obs_event.is_span evicted.ev ->
          t.dropped_spans <- t.dropped_spans + 1
      | _ -> t.dropped_events <- t.dropped_events + 1
    end
    else r.count <- r.count + 1;
    r.buf.(r.next) <- Some { seq = t.seq; step; clock; cpu; context; ev };
    t.seq <- t.seq + 1;
    r.next <- (r.next + 1) mod t.per_ring
  end

let events t =
  let out = ref [] in
  Array.iter
    (fun r ->
      for i = 0 to t.per_ring - 1 do
        let idx = (r.next + i) mod t.per_ring in
        match r.buf.(idx) with Some e -> out := e :: !out | None -> ()
      done)
    t.rings;
  List.sort (fun (a : event) (b : event) -> compare a.seq b.seq) !out

let dropped t =
  Array.fold_left (fun acc r -> acc + r.overflowed) 0 t.rings

let disabled_discards t = t.disabled_discards

let drop_stats t =
  {
    dropped_spans = t.dropped_spans;
    dropped_events = t.dropped_events;
    disabled_spans = t.disabled_spans;
    disabled_events = t.disabled_discards - t.disabled_spans;
  }

let clear t =
  Array.iter
    (fun r ->
      Array.fill r.buf 0 t.per_ring None;
      r.next <- 0;
      r.count <- 0;
      r.overflowed <- 0)
    t.rings;
  t.seq <- 0;
  t.disabled_discards <- 0;
  t.dropped_spans <- 0;
  t.dropped_events <- 0;
  t.disabled_spans <- 0

let pp_event ppf e =
  Format.fprintf ppf "[%8d c%d @%8d] %-12s %-8s %s" e.step e.cpu e.clock
    e.context (Obs_event.tag e.ev) (Obs_event.detail e.ev)

let dump ppf t =
  List.iter (fun e -> Format.fprintf ppf "%a@." pp_event e) (events t);
  if dropped t > 0 then
    Format.fprintf ppf "... (%d earlier events dropped)@." (dropped t)

(* ------------------------------------------------------------------ *)
(* Chrome trace-event export                                            *)
(* ------------------------------------------------------------------ *)

(* One process per run; one Chrome "thread" per cpu (the scheduler's
   cpu -1 renders as tid 0, cpu c as tid c+1).  Cycle clocks are written
   as microseconds.  Every event becomes an instant ("i") named after its
   constructor; additionally, Tlb_shootdown_start/_done pairs and
   Lock_release events (which carry their own durations) synthesize
   complete ("X") spans so chrome://tracing / Perfetto render the
   shootdown barrier and lock hold times as bars. *)
let chrome_json events =
  let open Obs_json in
  let tid cpu = cpu + 1 in
  let common e =
    [
      ("pid", Int 1);
      ("tid", Int (tid e.cpu));
      ("ts", Float (float_of_int e.clock));
    ]
  in
  let instant e =
    Obj
      (("name", String (Obs_event.name e.ev))
       :: ("ph", String "i")
       :: ("s", String "t")
       :: common e
      @ [
          ( "args",
            Obj
              (("context", String e.context)
               :: ("step", Int e.step)
               :: Obs_event.args e.ev) );
        ])
  in
  let span ~name ~ts ~dur e =
    Obj
      [
        ("name", String name);
        ("ph", String "X");
        ("pid", Int 1);
        ("tid", Int (tid e.cpu));
        ("ts", Float (float_of_int ts));
        ("dur", Float (float_of_int (max 1 dur)));
        ("args", Obj (("context", String e.context) :: Obs_event.args e.ev));
      ]
  in
  let spans =
    List.filter_map
      (fun e ->
        match e.ev with
        | Obs_event.Tlb_shootdown_done { cycles; _ } ->
            Some (span ~name:"Tlb_shootdown" ~ts:(e.clock - cycles) ~dur:cycles e)
        | Obs_event.Lock_release { lock; held_cycles } ->
            Some
              (span ~name:("hold:" ^ lock) ~ts:(e.clock - held_cycles)
                 ~dur:held_cycles e)
        | Obs_event.Span_close { site; dur; _ } ->
            Some (span ~name:("span:" ^ site) ~ts:(e.clock - dur) ~dur e)
        | _ -> None)
      events
  in
  let thread_names =
    let cpus =
      List.sort_uniq compare (List.map (fun e -> e.cpu) events)
    in
    List.map
      (fun cpu ->
        Obj
          [
            ("name", String "thread_name");
            ("ph", String "M");
            ("pid", Int 1);
            ("tid", Int (tid cpu));
            ( "args",
              Obj
                [
                  ( "name",
                    String
                      (if cpu < 0 then "scheduler"
                       else Printf.sprintf "cpu%d" cpu) );
                ] );
          ])
      cpus
  in
  Obj
    [
      ( "traceEvents",
        List (thread_names @ List.map instant events @ spans) );
      ("displayTimeUnit", String "ms");
    ]
