(** Bounded typed event trace for the simulator.

    One ring buffer per cpu (plus one for the scheduler), merged on read:
    a chatty cpu cannot evict other cpus' recent history.  Events carry
    the typed payloads of {!Mach_obs.Obs_event} rather than string tags,
    so tests can match on structure and the Chrome exporter can emit real
    args; [pp_event] renders the same text format as the original
    string-tagged trace. *)

module Obs_event = Mach_obs.Obs_event
module Obs_json = Mach_obs.Obs_json

type event = {
  seq : int;           (** global record order, monotonically increasing *)
  step : int;          (** scheduler step at which the event occurred *)
  clock : int;         (** the cpu's cycle clock *)
  cpu : int;           (** -1 = the scheduler itself *)
  context : string;    (** thread or interrupt name *)
  ev : Obs_event.t;    (** the typed payload *)
}

type t

val make : ?cpus:int -> capacity:int -> enabled:bool -> unit -> t
(** [capacity] is the {e total} event budget; it is divided evenly over
    the per-cpu rings ([cpus]+1 of them, at least 1 slot each). *)

val enabled : t -> bool

val capacity : t -> int
(** Total events the trace can retain (per-ring capacity × rings; may be
    slightly below the requested capacity due to even division). *)

val record :
  t -> step:int -> clock:int -> cpu:int -> context:string -> Obs_event.t -> unit
(** Append an event.  On a disabled trace this counts the discard (see
    {!disabled_discards}) instead of silently dropping. *)

val events : t -> event list
(** All retained events merged across rings, oldest first. *)

val dropped : t -> int
(** Events lost to ring overflow while the trace was {e enabled}. *)

val disabled_discards : t -> int
(** Events discarded because the trace was disabled — kept distinct from
    {!dropped} so "trace off" and "trace overflowed" are distinguishable. *)

type drop_stats = {
  dropped_spans : int;  (** span records evicted by ring overflow *)
  dropped_events : int;  (** plain instants evicted by ring overflow *)
  disabled_spans : int;  (** span records discarded while disabled *)
  disabled_events : int;  (** plain instants discarded while disabled *)
}

val drop_stats : t -> drop_stats
(** The loss counters split by record kind ([Obs_event.is_span]).
    Overflow counters classify the {e evicted} record (the one actually
    lost), so [dropped_spans + dropped_events = dropped] and
    [disabled_spans + disabled_events = disabled_discards] exactly. *)

val clear : t -> unit
val pp_event : Format.formatter -> event -> unit
val dump : Format.formatter -> t -> unit

val chrome_json : event list -> Obs_json.t
(** Export as a Chrome trace-event document (loadable in chrome://tracing
    and Perfetto): every event as an instant on its cpu's track, plus
    synthesized complete-spans for TLB shootdowns (from
    [Tlb_shootdown_done.cycles]), lock hold times (from
    [Lock_release.held_cycles]) and causal spans (from
    [Span_close.dur]). *)
