module Engine = Mach_sim.Sim_engine
module Spl = Mach_core.Spl
module Waits_for = Mach_core.Waits_for
module Obs_metrics = Mach_obs.Obs_metrics
module Obs_trace = Mach_obs.Obs_trace
module Obs_event = Mach_obs.Obs_event

let h_round_trip = Obs_metrics.histogram "tlb.shootdown_cycles"

let max_cpus = 64

(* Per-cpu count of threads attempting/holding pmap locks.  Only the
   owning cpu updates its slot (pmap code runs at splvm, so it cannot be
   preempted off the cpu mid-update).  The array is domain-local: the
   "cpus" are one simulator engine's virtual cpus, and engines in other
   domains (parallel seed sweeps) have their own counts. *)
let critical_key : int array Domain.DLS.key =
  Domain.DLS.new_key (fun () -> Array.make max_cpus 0)

let note_pmap_critical_enter ~cpu =
  let critical = Domain.DLS.get critical_key in
  critical.(cpu) <- critical.(cpu) + 1

let note_pmap_critical_exit ~cpu =
  let critical = Domain.DLS.get critical_key in
  if critical.(cpu) <= 0 then
    Engine.fatal "tlb_shootdown: unbalanced pmap-critical exit";
  critical.(cpu) <- critical.(cpu) - 1

let in_pmap_critical ~cpu = (Domain.DLS.get critical_key).(cpu) > 0

let performed = Atomic.make 0
let shootdowns_performed () = Atomic.get performed

let shootdown ~pmap_id ~targets ~invalidate ~commit =
  ignore pmap_id;
  let me = Engine.current_cpu () in
  if Spl.rank (Engine.get_spl ()) < Spl.rank Spl.Splvm then
    Engine.fatal
      "tlb_shootdown: initiator must hold splvm (locks and their interrupt \
       priority go together, section 7)";
  let remote = List.sort_uniq compare (List.filter (fun c -> c <> me) targets) in
  (* Section 7 special logic: processors in pmap critical sections are
     removed from the barrier; the update is still posted to them. *)
  let participants, lazies =
    List.partition (fun c -> not (in_pmap_critical ~cpu:c)) remote
  in
  let n = List.length participants in
  let started_at = Engine.now_cycles () in
  if Obs_trace.enabled () then
    Obs_trace.emit
      (Obs_event.Tlb_shootdown_start
         {
           initiator = me;
           participants = n;
           lazies = List.length lazies;
         });
  let checked_in = Engine.Cell.make ~name:"shootdown.checked_in" 0 in
  let go = Engine.Cell.make ~name:"shootdown.go" 0 in
  List.iter
    (fun cpu ->
      Engine.post_interrupt ~name:"tlb-shootdown" ~cpu ~level:Spl.Splvm
        (fun () ->
          ignore (Engine.Cell.fetch_and_add checked_in 1);
          (* Wait for the initiator to commit the update: the barrier —
             no participant leaves before all have entered and the page
             table is consistent. *)
          Engine.spin_hint "shootdown.go";
          while Engine.Cell.get go = 0 do
            Engine.pause ()
          done;
          invalidate ~cpu:(Engine.current_cpu ())))
    participants;
  List.iter
    (fun cpu ->
      (* Lazy flush: delivered whenever that cpu leaves its pmap critical
         section and re-enables interrupts; no rendezvous. *)
      Engine.post_interrupt ~name:"tlb-flush" ~cpu ~level:Spl.Splvm
        (fun () -> invalidate ~cpu:(Engine.current_cpu ())))
    lazies;
  Engine.spin_hint "shootdown.checked_in";
  (* Report the rendezvous as a wait edge: if a participant cpu never
     checks in (the section-7 interrupt deadlock), the detector can close
     the cycle through this barrier instead of showing a silent spin. *)
  let wf_rendezvous = Waits_for.Rendezvous { name = "tlb-shootdown" } in
  let tracking = Waits_for.tracking () in
  if tracking then
    Waits_for.note_wait
      ~tid:(Engine.thread_id (Engine.self ()))
      ~tname:(Engine.thread_name (Engine.self ()))
      wf_rendezvous;
  while Engine.Cell.get checked_in < n do
    Engine.pause ()
  done;
  if tracking then
    Waits_for.note_wait_done
      ~tid:(Engine.thread_id (Engine.self ()))
      wf_rendezvous;
  commit ();
  invalidate ~cpu:me;
  Engine.Cell.set go 1;
  let cycles = max 0 (Engine.now_cycles () - started_at) in
  Obs_metrics.observe ~cpu:me h_round_trip cycles;
  if Obs_trace.enabled () then
    Obs_trace.emit (Obs_event.Tlb_shootdown_done { participants = n; cycles });
  ignore (Atomic.fetch_and_add performed 1)
