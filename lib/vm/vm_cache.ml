(* Page cache over Vm_object: a resident-page index under a distributed
   readers/writer lock (see vm_cache.mli).

   Locking order: cache RW lock, then the backing object's simple lock.
   The index (offset -> ppn) mirrors the object's residency exactly; the
   pair only changes under the cache's write side plus the object lock,
   so a mismatch is a fatal invariant violation, not a race to retry. *)

module K = Mach_ksync.Ksync

type locking = Scache | Brlock_rw | Mutex

type rw =
  | Rw_scache of K.Locks.Scache.t
  | Rw_brlock of K.Locks.Brlock.t
  | Rw_mutex of K.Slock.t

type t = {
  cname : string;
  vobj : Vm_object.t;
  pool : Vm_page.t;
  index : (int, int) Hashtbl.t; (* offset -> ppn, mirrors residency *)
  rw : rw;
  mutable n_hits : int;
  mutable n_misses : int;
  mutable n_evictions : int;
}

let create ?(name = "vm_cache") ?(locking = Scache) ~pool ~size () =
  {
    cname = name;
    vobj = Vm_object.create ~name:(name ^ ".obj") ~pool ~size ();
    pool;
    index = Hashtbl.create 64;
    rw =
      (match locking with
      | Scache -> Rw_scache (K.Locks.Scache.make ~name:(name ^ ".rw"))
      | Brlock_rw -> Rw_brlock (K.Locks.Brlock.make ~name:(name ^ ".rw"))
      | Mutex -> Rw_mutex (K.Slock.make ~name:(name ^ ".mu") ()));
    n_hits = 0;
    n_misses = 0;
    n_evictions = 0;
  }

let name t = t.cname
let obj t = t.vobj

let with_read t f =
  match t.rw with
  | Rw_scache l -> K.Locks.Scache.with_read l f
  | Rw_brlock l -> K.Locks.Brlock.with_read l f
  | Rw_mutex l -> K.Slock.with_lock l f

let with_write t f =
  match t.rw with
  | Rw_scache l -> K.Locks.Scache.with_write l f
  | Rw_brlock l -> K.Locks.Brlock.with_write l f
  | Rw_mutex l -> K.Slock.with_lock l f

let lookup t ~offset =
  with_read t (fun () ->
      match Hashtbl.find_opt t.index offset with
      | Some ppn ->
          t.n_hits <- t.n_hits + 1;
          Some ppn
      | None -> None)

(* Caller holds the write side.  Returns the freed ppn, if any. *)
let evict_locked t ~offset =
  match Hashtbl.find_opt t.index offset with
  | None -> None
  | Some _ ->
      Vm_object.with_lock t.vobj (fun () ->
          match Vm_object.page_at t.vobj ~offset with
          | None ->
              K.Machine.fatal
                (Printf.sprintf
                   "vm_cache %s: index has offset %d but object does not"
                   t.cname offset)
          | Some page when page.Vm_object.wired > 0 -> None
          | Some _ ->
              let ppn = Option.get (Vm_object.remove_page t.vobj ~offset) in
              Hashtbl.remove t.index offset;
              t.n_evictions <- t.n_evictions + 1;
              Some ppn)

(* Shortage path, caller holds the write side: steal any unwired page. *)
let evict_any_locked t =
  let victim =
    Hashtbl.fold
      (fun offset _ acc -> match acc with Some _ -> acc | None -> Some offset)
      t.index None
  in
  match victim with None -> None | Some offset -> evict_locked t ~offset

let lookup_or_fill t ~offset =
  match lookup t ~offset with
  | Some ppn -> Ok ppn
  | None ->
      with_write t (fun () ->
          match Hashtbl.find_opt t.index offset with
          | Some ppn ->
              (* Filled while we waited for the write side: a late hit. *)
              t.n_hits <- t.n_hits + 1;
              Ok ppn
          | None ->
              t.n_misses <- t.n_misses + 1;
              (* The fill is a paging operation on the backing object:
                 termination excludes it (the section 8 hybrid count). *)
              if not (Vm_object.with_lock t.vobj (fun () ->
                          Vm_object.paging_begin t.vobj))
              then Error `Terminating
              else begin
                let ppn =
                  match Vm_page.alloc t.pool with
                  | Some ppn -> Some ppn
                  | None -> (
                      (* Pool empty: evict one of our own unwired pages
                         (cooperating with pageout, which reclaims from
                         maps on the same shortage signal). *)
                      match evict_any_locked t with
                      | Some freed ->
                          Vm_page.free t.pool freed;
                          Vm_page.alloc t.pool
                      | None -> None)
                in
                match ppn with
                | None ->
                    Vm_object.with_lock t.vobj (fun () ->
                        Vm_object.paging_end t.vobj);
                    Error `No_memory
                | Some ppn ->
                    Vm_object.with_lock t.vobj (fun () ->
                        ignore (Vm_object.insert_page t.vobj ~offset ~ppn);
                        Vm_object.paging_end t.vobj);
                    Hashtbl.replace t.index offset ppn;
                    Ok ppn
              end)

let evict t ~offset =
  with_write t (fun () ->
      match evict_locked t ~offset with
      | None -> false
      | Some ppn ->
          Vm_page.free t.pool ppn;
          true)

let reclaim t ~target =
  with_write t (fun () ->
      let freed = ref 0 in
      let continue_ = ref true in
      while !continue_ && !freed < target do
        match evict_any_locked t with
        | Some ppn ->
            Vm_page.free t.pool ppn;
            incr freed
        | None -> continue_ := false
      done;
      !freed)

let wire t ~offset =
  with_read t (fun () ->
      Vm_object.with_lock t.vobj (fun () ->
          match Vm_object.page_at t.vobj ~offset with
          | None -> false
          | Some page ->
              Vm_object.wire page;
              true))

let unwire t ~offset =
  with_read t (fun () ->
      Vm_object.with_lock t.vobj (fun () ->
          match Vm_object.page_at t.vobj ~offset with
          | None ->
              K.Machine.fatal
                (Printf.sprintf "vm_cache %s: unwire of non-resident offset %d"
                   t.cname offset)
          | Some page -> Vm_object.unwire page))

let terminate t =
  with_write t (fun () -> Hashtbl.reset t.index);
  (* Vm_object.terminate drains paging operations and frees the
     remaining resident pages back to the pool itself. *)
  Vm_object.terminate t.vobj

let resident t = Vm_object.resident_count t.vobj
let hits t = t.n_hits
let misses t = t.n_misses
let evictions t = t.n_evictions
