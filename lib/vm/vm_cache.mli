(** Page cache over {!Vm_object} with a readers/writer-locked index.

    The resident-page index is protected by a distributed RW lock
    (default: the scache protocol of {!Mach_locks.Scache_rwlock}):
    lookups take the read side — one interlocked increment of the
    caller's own per-cpu refcount slot, no shared line — while fills and
    evictions take the write side (the [ExcLockPending] sweep).  This is
    the read-mostly page-lookup workload of ROADMAP item 4, benched in
    E19 and gated by [perf_reference.json]'s [cache] row.

    Eviction cooperates with the pageout machinery: a fill that finds
    the pool empty evicts an unwired page from this cache before
    failing, and {!reclaim} lets a shortage handler (the pageout
    daemon's trigger, {!Vm_page.free_wanted}) steal pages in bulk.
    Fills register as paging operations on the backing object
    ({!Vm_object.paging_begin}), so object termination excludes them. *)

type t

type locking =
  | Scache  (** scache distributed RW lock (default) *)
  | Brlock_rw  (** big-reader RW lock *)
  | Mutex  (** one flat simple lock — the E19 baseline *)

val create :
  ?name:string -> ?locking:locking -> pool:Vm_page.t -> size:int -> unit -> t
(** A cache over a fresh memory object of [size] pages backed by
    [pool]. *)

val name : t -> string
val obj : t -> Vm_object.t

val lookup : t -> offset:int -> int option
(** Read-side index probe: the resident ppn, or [None] on a miss. *)

val lookup_or_fill : t -> offset:int -> (int, [ `No_memory | `Terminating ]) result
(** Read-side probe; on a miss, take the write side, re-check, and fill
    from the pool (evicting an unwired page of this cache if the pool is
    empty).  The fill runs as a paging operation on the backing object. *)

val evict : t -> offset:int -> bool
(** Write side: drop the page at [offset] back to the pool.  False when
    not resident or wired. *)

val reclaim : t -> target:int -> int
(** Write side: evict up to [target] unwired pages (shortage path);
    returns the number freed. *)

val wire : t -> offset:int -> bool
(** Pin a resident page against eviction (false on a miss). *)

val unwire : t -> offset:int -> unit

val terminate : t -> unit
(** Drop the whole index and terminate the backing object. *)

val resident : t -> int
val hits : t -> int
val misses : t -> int
val evictions : t -> int
