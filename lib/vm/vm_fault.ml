module K = Mach_ksync.Ksync
module Obs_span = Mach_obs.Obs_span

type fault_error = [ `Bad_address | `Object_terminated ]

let retried = Atomic.make 0
let faults_retried () = Atomic.get retried

(* The fault holds only the faulting page's range ([va, va+1)) for
   reading: on a Range map, faults on different pages — and allocations
   of disjoint regions — proceed in parallel; on a Coarse map this is
   the classic whole-map read lock. *)
let rec fault_inner ~wire ~prealloc map ~va =
  let ctx = Vm_map.context map in
  let h = Vm_map.lock_range_read map ~lo:va ~hi:(va + 1) in
  match Vm_map.lookup_entry map ~va with
  | None ->
      Vm_map.unlock_range map h;
      (match prealloc with Some ppn -> Vm_page.free ctx.pool ppn | None -> ());
      Error `Bad_address
  | Some e -> (
      let offset = e.Vm_map.e_offset + (va - e.Vm_map.va_start) in
      let obj = e.Vm_map.e_object in
      Vm_object.lock obj;
      if not (Vm_object.paging_begin obj) then begin
        Vm_object.unlock obj;
        Vm_map.unlock_range map h;
        (match prealloc with
        | Some ppn -> Vm_page.free ctx.pool ppn
        | None -> ());
        Error `Object_terminated
      end
      else
        let finish page =
          if wire then Vm_object.wire page;
          let ppn = page.Vm_object.ppn in
          Vm_object.unlock obj;
          (* Install the translation with the paging count held: the
             object cannot be terminated under us. *)
          Vm_map.map_page map e ~va ~ppn;
          Vm_object.lock obj;
          Vm_object.paging_end obj;
          Vm_object.unlock obj;
          Vm_map.unlock_range map h;
          Ok ppn
        in
        match Vm_object.page_at obj ~offset with
        | Some page ->
            (match prealloc with
            | Some ppn ->
                (* We raced: the page appeared while we waited.  Put the
                   spare back (without locks held). *)
                Vm_object.paging_end obj;
                Vm_object.unlock obj;
                Vm_map.unlock_range map h;
                Vm_page.free ctx.pool ppn;
                fault_inner ~wire ~prealloc:None map ~va
            | None -> finish page)
        | None -> (
            let grabbed =
              match prealloc with
              | Some ppn -> Some ppn
              | None -> Vm_page.alloc ctx.pool
            in
            match grabbed with
            | Some ppn -> finish (Vm_object.insert_page obj ~offset ~ppn)
            | None ->
                (* Physical memory shortage: the fault routine drops its
                   locks to wait for memory (section 7.1), then retries.
                   Note that only the fault's OWN read lock is dropped —
                   an enclosing recursive read hold remains. *)
                ignore (Atomic.fetch_and_add retried 1);
                Vm_object.paging_end obj;
                Vm_object.unlock obj;
                Vm_map.unlock_range map h;
                let ppn = Vm_page.alloc_blocking ctx.pool in
                fault_inner ~wire ~prealloc:(Some ppn) map ~va))

(* The fault->resolve span covers memory-shortage retries too: its
   duration is the full latency the faulting thread observed. *)
let fault ?(wire = false) map ~va =
  let spans = Obs_span.enabled () in
  if spans then Obs_span.enter Obs_span.Vm ("fault:" ^ Vm_map.name map);
  let r = fault_inner ~wire ~prealloc:None map ~va in
  if spans then Obs_span.exit Obs_span.Vm ("fault:" ^ Vm_map.name map);
  r
