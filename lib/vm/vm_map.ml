module K = Mach_ksync.Ksync
module Obs_span = Mach_obs.Obs_span

type context = {
  pool : Vm_page.t;
  pv : Pv_list.t;
  psys : Pmap_system.t;
}

let make_context ?(name = "vm") ~pages () =
  {
    pool = Vm_page.create ~name:(name ^ ".pool") ~pages ();
    pv = Pv_list.create ~name:(name ^ ".pv") ();
    psys = Pmap_system.create ~name:(name ^ ".pmap-system") ();
  }

type entry = {
  mutable va_start : int;
  mutable va_end : int;
  e_object : Vm_object.t;
  mutable e_offset : int;
  mutable e_wired : bool;
  mutable e_prot : Tlb.prot;
}

(* Which lock protects the map: the paper's single sleep complex lock
   (Coarse, section 4), or a range lock where operations hold only the
   address range they touch (Kogan et al., PAPERS.md).  Coarse stays the
   default so existing scenarios and goldens are unchanged. *)
type locking = Coarse | Range

let locking_name = function Coarse -> "coarse" | Range -> "range"
let default_locking_flag = Atomic.make Coarse
let set_default_locking m = Atomic.set default_locking_flag m
let default_locking () = Atomic.get default_locking_flag

type t = {
  mname : string;
  ctx : context;
  locking : locking;
  lock : K.Clock.t; (* Coarse: protects everything below *)
  rlock : K.Rlock.t; (* Range: ranges of the address space *)
  elock : K.Slock.t; (* Range: entry list / next_va / ver / reserved *)
  mutable map_entries : entry list; (* sorted by va_start *)
  map_pmap : Pmap.t;
  refs : K.Ref.t;
  mutable ver : int;
  mutable next_va : int; (* naive address allocator *)
  (* Range mode: address ranges claimed by an in-flight allocation whose
     entry is not inserted yet, so a concurrent vm_allocate_at cannot
     hand out an overlapping region.  Always empty in Coarse mode. *)
  mutable reserved : (int * int) list;
}

let map_counter = Atomic.make 0

let create ?name ?locking ctx =
  let id = Atomic.fetch_and_add map_counter 1 in
  let mname =
    match name with Some n -> n | None -> Printf.sprintf "map%d" id
  in
  let locking =
    match locking with Some l -> l | None -> Atomic.get default_locking_flag
  in
  {
    mname;
    ctx;
    locking;
    lock = K.Clock.make ~name:(mname ^ ".lock") ~can_sleep:true ();
    rlock = K.Rlock.make ~name:(mname ^ ".range") ();
    elock = K.Slock.make ~name:(mname ^ ".entries") ();
    map_entries = [];
    map_pmap = Pmap.create ~name:(mname ^ ".pmap") ();
    refs = K.Ref.make ~name:(mname ^ ".refs") ();
    ver = 0;
    next_va = 0x1000;
    reserved = [];
  }

let name t = t.mname
let context t = t.ctx
let pmap t = t.map_pmap
let map_lock t = t.lock
let locking t = t.locking
let reference t = K.Ref.clone t.refs

(* Entry-list access: in Coarse mode the complex lock the caller already
   holds covers the list; in Range mode range holders only exclude
   overlapping ranges, so list walks and mutations take the entry simple
   lock.  Must not block under [f] in Range mode. *)
let with_entries t f =
  match t.locking with
  | Coarse -> f ()
  | Range -> K.Slock.with_lock t.elock f

let version t = t.ver
let bump_version t = with_entries t (fun () -> t.ver <- t.ver + 1)

(* ------------------------------------------------------------------ *)
(* Range-lock dispatch                                                  *)
(*                                                                      *)
(* Every locked section goes through these handles.  Coarse mode maps   *)
(* them 1:1 onto the old complex-lock calls (the range arguments are    *)
(* ignored), so coarse behaviour — and golden output — is unchanged.    *)
(* ------------------------------------------------------------------ *)

type rhandle = H_coarse | H_range of K.Rlock.handle

let whole_lo = Mach_locks.Range_lock.whole_lo
let whole_hi = Mach_locks.Range_lock.whole_hi

let lock_range_read t ~lo ~hi =
  match t.locking with
  | Coarse ->
      K.Clock.lock_read t.lock;
      H_coarse
  | Range -> H_range (K.Rlock.acquire t.rlock ~lo ~hi Mach_locks.Range_lock.Read)

let lock_range_write t ~lo ~hi =
  match t.locking with
  | Coarse ->
      K.Clock.lock_write t.lock;
      H_coarse
  | Range -> H_range (K.Rlock.acquire t.rlock ~lo ~hi Mach_locks.Range_lock.Write)

let lock_map_read t = lock_range_read t ~lo:whole_lo ~hi:whole_hi
let lock_map_write t = lock_range_write t ~lo:whole_lo ~hi:whole_hi

let unlock_range t = function
  | H_coarse -> K.Clock.lock_done t.lock
  | H_range h -> K.Rlock.release t.rlock h

(* ------------------------------------------------------------------ *)
(* Mapping helpers: forward (pmap-then-pv) order under the read side of
   the pmap system lock (section 5).                                    *)
(* ------------------------------------------------------------------ *)

let map_page t entry ~va ~ppn =
  Pmap_system.forward t.ctx.psys (fun () ->
      Pmap.enter t.map_pmap ~va ~ppn ~prot:entry.e_prot;
      Pv_list.enter t.ctx.pv ~ppn ~pmap:t.map_pmap ~va)

let unmap_page t ~va ~ppn =
  Pmap_system.forward t.ctx.psys (fun () ->
      ignore (Pmap.remove t.map_pmap ~va);
      Pv_list.remove t.ctx.pv ~ppn ~pmap:t.map_pmap ~va)

(* ------------------------------------------------------------------ *)
(* Entries                                                              *)
(* ------------------------------------------------------------------ *)

let lookup_entry_unlocked t ~va =
  List.find_opt (fun e -> va >= e.va_start && va < e.va_end) t.map_entries

let lookup_entry t ~va = with_entries t (fun () -> lookup_entry_unlocked t ~va)
let entries t = with_entries t (fun () -> t.map_entries)

let size t =
  with_entries t (fun () ->
      List.fold_left
        (fun acc e -> acc + (e.va_end - e.va_start))
        0 t.map_entries)

let overlap_unlocked t ~va ~size =
  List.exists
    (fun e -> va < e.va_end && va + size > e.va_start)
    t.map_entries
  || List.exists (fun (lo, hi) -> va < hi && va + size > lo) t.reserved

let overlap t ~va ~size = with_entries t (fun () -> overlap_unlocked t ~va ~size)

let insert_entry_unlocked t e =
  t.map_entries <-
    List.sort (fun a b -> compare a.va_start b.va_start) (e :: t.map_entries);
  t.ver <- t.ver + 1

let make_object t ~va ~size =
  Vm_object.create
    ~name:(Printf.sprintf "%s.obj@%x" t.mname va)
    ~pool:t.ctx.pool ~size ()

let fresh_entry ~va ~size obj =
  {
    va_start = va;
    va_end = va + size;
    e_object = obj;
    e_offset = 0;
    e_wired = false;
    e_prot = Tlb.Read_write;
  }

(* Reservations are pairwise disjoint, so the start address identifies
   one uniquely. *)
let unreserve t ~va =
  t.reserved <- List.filter (fun (lo, _) -> lo <> va) t.reserved

let vm_allocate_at t ~va ~size =
  let spans = Obs_span.enabled () in
  if spans then Obs_span.enter Obs_span.Vm ("alloc_at:" ^ t.mname);
  let r =
    match t.locking with
    | Coarse ->
        K.Clock.lock_write t.lock;
        if overlap_unlocked t ~va ~size then begin
          K.Clock.lock_done t.lock;
          Error `Overlap
        end
        else begin
          let obj = make_object t ~va ~size in
          insert_entry_unlocked t (fresh_entry ~va ~size obj);
          if va + size > t.next_va then t.next_va <- va + size;
          K.Clock.lock_done t.lock;
          Ok va
        end
    | Range ->
        let h = K.Rlock.acquire t.rlock ~lo:va ~hi:(va + size) Mach_locks.Range_lock.Write in
        (* Claiming (overlap check + reservation + next_va bump) is one
           entry-lock section, atomic against vm_allocate's reservation
           from next_va. *)
        let clash =
          K.Slock.with_lock t.elock (fun () ->
              if overlap_unlocked t ~va ~size then true
              else begin
                t.reserved <- (va, va + size) :: t.reserved;
                if va + size > t.next_va then t.next_va <- va + size;
                false
              end)
        in
        if clash then begin
          K.Rlock.release t.rlock h;
          Error `Overlap
        end
        else begin
          let obj = make_object t ~va ~size in
          K.Slock.with_lock t.elock (fun () ->
              unreserve t ~va;
              insert_entry_unlocked t (fresh_entry ~va ~size obj));
          K.Rlock.release t.rlock h;
          Ok va
        end
  in
  if spans then Obs_span.exit Obs_span.Vm ("alloc_at:" ^ t.mname);
  r

let vm_allocate t ~size =
  let spans = Obs_span.enabled () in
  if spans then Obs_span.enter Obs_span.Vm ("alloc:" ^ t.mname);
  let va =
    match t.locking with
    | Coarse ->
        K.Clock.lock_write t.lock;
        let va = t.next_va in
        t.next_va <- va + size;
        let obj = make_object t ~va ~size in
        insert_entry_unlocked t (fresh_entry ~va ~size obj);
        K.Clock.lock_done t.lock;
        va
    | Range ->
        (* Reserve a fresh region first (invariant: every entry and
           reservation lies below next_va, so the region overlaps
           nothing), then take only that region's range. *)
        let va =
          K.Slock.with_lock t.elock (fun () ->
              let va = t.next_va in
              t.next_va <- va + size;
              t.reserved <- (va, va + size) :: t.reserved;
              va)
        in
        let h = K.Rlock.acquire t.rlock ~lo:va ~hi:(va + size) Mach_locks.Range_lock.Write in
        let obj = make_object t ~va ~size in
        K.Slock.with_lock t.elock (fun () ->
            unreserve t ~va;
            insert_entry_unlocked t (fresh_entry ~va ~size obj));
        K.Rlock.release t.rlock h;
        va
  in
  if spans then Obs_span.exit Obs_span.Vm ("alloc:" ^ t.mname);
  va

(* Tear one entry down: break its mappings, free its resident pages,
   terminate the object.  Caller holds the map lock for writing (Coarse)
   or a write hold on the entry's range (Range); the entry is already
   off the list in the Range case.

   Refcount discipline (audited for ISSUE 8): the entry's object starts
   life with the single reference [Vm_object.create] returns.
   [Vm_object.terminate] shuts the object down but does NOT consume that
   reference; the caller drops it with exactly one [Vm_object.release]
   after the lock is gone.  One create-reference, one release — no
   double release.  [K.Ref] now traps underflow unconditionally, so a
   future double release dies loudly instead of wrapping. *)
let destroy_entry_locked t e =
  let resident =
    Vm_object.with_lock e.e_object (fun () ->
        Vm_object.resident_pages e.e_object)
  in
  List.iter
    (fun (p : Vm_object.page) ->
      let va = e.va_start + (p.Vm_object.offset - e.e_offset) in
      unmap_page t ~va ~ppn:p.Vm_object.ppn)
    resident;
  bump_version t;
  Vm_object.terminate e.e_object

let vm_deallocate t ~va =
  let spans = Obs_span.enabled () in
  if spans then Obs_span.enter Obs_span.Vm ("dealloc:" ^ t.mname);
  let r =
    match t.locking with
    | Coarse -> (
        K.Clock.lock_write t.lock;
        match lookup_entry_unlocked t ~va with
        | None ->
            K.Clock.lock_done t.lock;
            Error `No_entry
        | Some e ->
            t.map_entries <- List.filter (fun e' -> e' != e) t.map_entries;
            destroy_entry_locked t e;
            K.Clock.lock_done t.lock;
            (* The entry's object reference is dropped outside the map lock
               (releasing may destroy, section 8 — the map lock is a sleep
               lock so this is belt-and-braces rather than required). *)
            Vm_object.release e.e_object;
            Ok ())
    | Range ->
        (* Find the entry, lock its range, then revalidate: the entry can
           be deallocated by someone else between the lookup and the
           range acquisition. *)
        let rec attempt () =
          match
            K.Slock.with_lock t.elock (fun () -> lookup_entry_unlocked t ~va)
          with
          | None -> Error `No_entry
          | Some e -> (
              let lo = e.va_start and hi = e.va_end in
              let h = K.Rlock.acquire t.rlock ~lo ~hi Mach_locks.Range_lock.Write in
              let still =
                K.Slock.with_lock t.elock (fun () ->
                    match lookup_entry_unlocked t ~va with
                    | Some e' when e' == e ->
                        t.map_entries <-
                          List.filter (fun x -> x != e) t.map_entries;
                        true
                    | Some _ | None -> false)
              in
              match still with
              | true ->
                  destroy_entry_locked t e;
                  K.Rlock.release t.rlock h;
                  Vm_object.release e.e_object;
                  Ok ()
              | false ->
                  (* Raced with another deallocate (or a realloc of the
                     same address): retry against the current entry. *)
                  K.Rlock.release t.rlock h;
                  attempt ())
        in
        attempt ()
  in
  if spans then Obs_span.exit Obs_span.Vm ("dealloc:" ^ t.mname);
  r

let release t =
  match K.Ref.release t.refs with
  | `Live -> ()
  | `Last -> (
      (* Passive destruction: no deactivation flag (section 9). *)
      match t.locking with
      | Coarse ->
          K.Clock.lock_write t.lock;
          let doomed = t.map_entries in
          t.map_entries <- [];
          List.iter (destroy_entry_locked t) doomed;
          Pmap.remove_all t.map_pmap;
          K.Clock.lock_done t.lock;
          List.iter (fun e -> Vm_object.release e.e_object) doomed
      | Range ->
          let h =
            K.Rlock.acquire t.rlock ~lo:whole_lo ~hi:whole_hi Mach_locks.Range_lock.Write
          in
          let doomed =
            K.Slock.with_lock t.elock (fun () ->
                let d = t.map_entries in
                t.map_entries <- [];
                d)
          in
          List.iter (destroy_entry_locked t) doomed;
          Pmap.remove_all t.map_pmap;
          K.Rlock.release t.rlock h;
          List.iter (fun e -> Vm_object.release e.e_object) doomed)
