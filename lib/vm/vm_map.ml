module K = Mach_ksync.Ksync
module Obs_span = Mach_obs.Obs_span

type context = {
  pool : Vm_page.t;
  pv : Pv_list.t;
  psys : Pmap_system.t;
}

let make_context ?(name = "vm") ~pages () =
  {
    pool = Vm_page.create ~name:(name ^ ".pool") ~pages ();
    pv = Pv_list.create ~name:(name ^ ".pv") ();
    psys = Pmap_system.create ~name:(name ^ ".pmap-system") ();
  }

type entry = {
  mutable va_start : int;
  mutable va_end : int;
  e_object : Vm_object.t;
  mutable e_offset : int;
  mutable e_wired : bool;
  mutable e_prot : Tlb.prot;
}

type t = {
  mname : string;
  ctx : context;
  lock : K.Clock.t;
  mutable map_entries : entry list; (* sorted by va_start *)
  map_pmap : Pmap.t;
  refs : K.Ref.t;
  mutable ver : int;
  mutable next_va : int; (* naive address allocator *)
}

let map_counter = Atomic.make 0

let create ?name ctx =
  let id = Atomic.fetch_and_add map_counter 1 in
  let mname =
    match name with Some n -> n | None -> Printf.sprintf "map%d" id
  in
  {
    mname;
    ctx;
    lock = K.Clock.make ~name:(mname ^ ".lock") ~can_sleep:true ();
    map_entries = [];
    map_pmap = Pmap.create ~name:(mname ^ ".pmap") ();
    refs = K.Ref.make ~name:(mname ^ ".refs") ();
    ver = 0;
    next_va = 0x1000;
  }

let name t = t.mname
let context t = t.ctx
let pmap t = t.map_pmap
let map_lock t = t.lock
let reference t = K.Ref.clone t.refs
let version t = t.ver
let bump_version t = t.ver <- t.ver + 1

(* ------------------------------------------------------------------ *)
(* Mapping helpers: forward (pmap-then-pv) order under the read side of
   the pmap system lock (section 5).                                    *)
(* ------------------------------------------------------------------ *)

let map_page t entry ~va ~ppn =
  Pmap_system.forward t.ctx.psys (fun () ->
      Pmap.enter t.map_pmap ~va ~ppn ~prot:entry.e_prot;
      Pv_list.enter t.ctx.pv ~ppn ~pmap:t.map_pmap ~va)

let unmap_page t ~va ~ppn =
  Pmap_system.forward t.ctx.psys (fun () ->
      ignore (Pmap.remove t.map_pmap ~va);
      Pv_list.remove t.ctx.pv ~ppn ~pmap:t.map_pmap ~va)

(* ------------------------------------------------------------------ *)
(* Entries                                                              *)
(* ------------------------------------------------------------------ *)

let lookup_entry t ~va =
  List.find_opt (fun e -> va >= e.va_start && va < e.va_end) t.map_entries

let entries t = t.map_entries

let size t =
  List.fold_left (fun acc e -> acc + (e.va_end - e.va_start)) 0 t.map_entries

let overlap t ~va ~size =
  List.exists
    (fun e -> va < e.va_end && va + size > e.va_start)
    t.map_entries

let insert_entry t e =
  t.map_entries <-
    List.sort (fun a b -> compare a.va_start b.va_start) (e :: t.map_entries);
  bump_version t

let vm_allocate_at t ~va ~size =
  K.Clock.lock_write t.lock;
  if overlap t ~va ~size then begin
    K.Clock.lock_done t.lock;
    Error `Overlap
  end
  else begin
    let obj =
      Vm_object.create
        ~name:(Printf.sprintf "%s.obj@%x" t.mname va)
        ~pool:t.ctx.pool ~size ()
    in
    insert_entry t
      {
        va_start = va;
        va_end = va + size;
        e_object = obj;
        e_offset = 0;
        e_wired = false;
        e_prot = Tlb.Read_write;
      };
    if va + size > t.next_va then t.next_va <- va + size;
    K.Clock.lock_done t.lock;
    Ok va
  end

let vm_allocate t ~size =
  let spans = Obs_span.enabled () in
  if spans then Obs_span.enter Obs_span.Vm ("alloc:" ^ t.mname);
  K.Clock.lock_write t.lock;
  let va = t.next_va in
  t.next_va <- va + size;
  let obj =
    Vm_object.create
      ~name:(Printf.sprintf "%s.obj@%x" t.mname va)
      ~pool:t.ctx.pool ~size ()
  in
  insert_entry t
    {
      va_start = va;
      va_end = va + size;
      e_object = obj;
      e_offset = 0;
      e_wired = false;
      e_prot = Tlb.Read_write;
    };
  K.Clock.lock_done t.lock;
  if spans then Obs_span.exit Obs_span.Vm ("alloc:" ^ t.mname);
  va

(* Tear one entry down: break its mappings, free its resident pages,
   release the object reference the entry held.  Caller holds the map
   lock for writing. *)
let destroy_entry_locked t e =
  let resident =
    Vm_object.with_lock e.e_object (fun () ->
        Vm_object.resident_pages e.e_object)
  in
  List.iter
    (fun (p : Vm_object.page) ->
      let va = e.va_start + (p.Vm_object.offset - e.e_offset) in
      unmap_page t ~va ~ppn:p.Vm_object.ppn)
    resident;
  bump_version t;
  Vm_object.terminate e.e_object

let vm_deallocate t ~va =
  let spans = Obs_span.enabled () in
  if spans then Obs_span.enter Obs_span.Vm ("dealloc:" ^ t.mname);
  K.Clock.lock_write t.lock;
  let r =
    match lookup_entry t ~va with
    | None ->
        K.Clock.lock_done t.lock;
        Error `No_entry
    | Some e ->
        t.map_entries <- List.filter (fun e' -> e' != e) t.map_entries;
        destroy_entry_locked t e;
        K.Clock.lock_done t.lock;
        (* The entry's object reference is dropped outside the map lock
           (releasing may destroy, section 8 — the map lock is a sleep lock
           so this is belt-and-braces rather than required). *)
        Vm_object.release e.e_object;
        Ok ()
  in
  if spans then Obs_span.exit Obs_span.Vm ("dealloc:" ^ t.mname);
  r

let release t =
  match K.Ref.release t.refs with
  | `Live -> ()
  | `Last ->
      (* Passive destruction: no deactivation flag (section 9). *)
      K.Clock.lock_write t.lock;
      let doomed = t.map_entries in
      t.map_entries <- [];
      List.iter (destroy_entry_locked t) doomed;
      Pmap.remove_all t.map_pmap;
      K.Clock.lock_done t.lock;
      List.iter (fun e -> Vm_object.release e.e_object) doomed
