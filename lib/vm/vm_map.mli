(** Memory maps: the address-space data structure (paper, sections 3, 5).

    A map is a sorted list of entries, each mapping a virtual range onto a
    memory object.  Two locking disciplines are available per map:

    - {!Coarse} — the paper's single {e sleep} complex lock (most complex
      locks use the Sleep option, "including the lock on a memory map
      data structure", section 4).  Every fault, wire and pageout
      serializes on it.
    - {!Range} — a list-based range lock (Kogan, Dice & Issa, PAPERS.md):
      operations hold only the address range they touch, so
      disjoint-range faults and allocations proceed in parallel, while
      whole-map operations ({!release}, pageout) take a full-range
      write.  A simple lock covers the entry list itself, which range
      holders no longer mutually exclude.

    Coarse is the default; the locked sections are dispatched through
    {!rhandle} so the coarse path issues exactly the complex-lock calls
    it always did (goldens are byte-identical).

    Maps are passively destroyed when their last reference vanishes
    (they are {e not} deactivated, section 9).  The section 5 type-order
    convention applies: always lock the memory map before the memory
    object. *)

type context = {
  pool : Vm_page.t;
  pv : Pv_list.t;
  psys : Pmap_system.t;
}
(** Machine-wide VM state shared by all maps. *)

val make_context : ?name:string -> pages:int -> unit -> context

type entry = {
  mutable va_start : int;
  mutable va_end : int; (* exclusive *)
  e_object : Vm_object.t;
  mutable e_offset : int; (* offset of va_start within the object *)
  mutable e_wired : bool; (* wiring requested for the whole entry *)
  mutable e_prot : Tlb.prot;
}

type t

(** {1 Locking discipline} *)

type locking = Coarse | Range

val locking_name : locking -> string

val set_default_locking : locking -> unit
(** Discipline for maps created without an explicit [?locking].
    Default: [Coarse]. *)

val default_locking : unit -> locking
val locking : t -> locking

val create : ?name:string -> ?locking:locking -> context -> t
val name : t -> string
val context : t -> context
val pmap : t -> Pmap.t

val map_lock : t -> Mach_ksync.Ksync.Clock.t
(** The coarse complex lock.  Meaningful only on [Coarse] maps (the
    recursive-wire scenario manipulates it directly); [Range] maps do
    not consult it. *)

val reference : t -> unit

val release : t -> unit
(** Drop a reference; the last one tears the map down (entries, mappings,
    pages, pmap) — passive destruction.  Takes the map lock / full-range
    write. *)

val version : t -> int
(** Incremented by every structural modification; the rewritten
    vm_map_pageable uses it to revalidate after relocking (section 7.1). *)

val bump_version : t -> unit

(** {1 Locked-section handles}

    All readers/writers of map state go through these.  On a [Coarse]
    map they perform the classic complex-lock calls and the range
    arguments are ignored; on a [Range] map they acquire [[lo, hi)] of
    the map's range lock. *)

type rhandle

val lock_range_read : t -> lo:int -> hi:int -> rhandle
val lock_range_write : t -> lo:int -> hi:int -> rhandle
val lock_map_read : t -> rhandle
(** Whole-map read: full-range in [Range] mode. *)

val lock_map_write : t -> rhandle
(** Whole-map write: excludes every other operation in both modes. *)

val unlock_range : t -> rhandle -> unit

(** {1 Entry management} *)

val vm_allocate : t -> size:int -> int
(** Allocate a fresh zero-filled region backed by a new memory object;
    returns its start address.  Coarse: map lock for writing.  Range:
    reserves the region under the entry lock, then write-locks only that
    region. *)

val vm_allocate_at : t -> va:int -> size:int -> (int, [ `Overlap ]) result

val vm_deallocate : t -> va:int -> (unit, [ `No_entry ]) result
(** Remove the entry containing [va]: break its mappings (with
    shootdowns), free its pages, release the object.  Coarse: map lock
    for writing.  Range: write-locks the entry's range and revalidates
    the entry after acquisition. *)

val lookup_entry : t -> va:int -> entry option
(** Caller must hold a covering {!rhandle} (read suffices). *)

val entries : t -> entry list
(** Caller must hold a whole-map {!rhandle}. *)

val size : t -> int
(** Total mapped bytes (pages in this model). *)

val overlap : t -> va:int -> size:int -> bool
(** Does [[va, va+size)] intersect an existing entry (or, in Range mode,
    an in-flight reservation)? *)

(** {1 Mapping helper (used by the fault path)} *)

val map_page : t -> entry -> va:int -> ppn:int -> unit
(** Install va -> ppn in the pmap and the pv list, in the forward
    (pmap-then-pv) order under the read side of the pmap system lock. *)

val unmap_page : t -> va:int -> ppn:int -> unit
(** Break one mapping in the forward order. *)
