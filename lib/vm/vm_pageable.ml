module K = Mach_ksync.Ksync

type wire_error = [ `Bad_address | `Object_terminated | `Map_changed ]

let mark_entries_locked map ~va ~pages ~wired =
  let rec mark i =
    if i >= pages then Ok ()
    else
      match Vm_map.lookup_entry map ~va:(va + i) with
      | None -> Error `Bad_address
      | Some e ->
          e.Vm_map.e_wired <- wired;
          (* skip to the end of this entry *)
          mark (max (i + 1) (e.Vm_map.va_end - va))
  in
  mark 0

let fault_range map ~va ~pages =
  let rec go i =
    if i >= pages then Ok ()
    else
      match Vm_fault.fault ~wire:true map ~va:(va + i) with
      | Ok _ -> go (i + 1)
      | Error (`Bad_address | `Object_terminated) as e -> e
  in
  go 0

(* The Mach 3.0 rewrite: no recursive locking.  Mark under the write
   lock, remember the version, unlock completely, fault without the map
   lock, relock and revalidate.  On a Range map only [va, va+pages) is
   write-locked, so wiring one region does not stall faults elsewhere. *)
let wire_rewritten map ~va ~pages =
  let h = Vm_map.lock_range_write map ~lo:va ~hi:(va + pages) in
  match mark_entries_locked map ~va ~pages ~wired:true with
  | Error _ as e ->
      Vm_map.unlock_range map h;
      e
  | Ok () ->
      Vm_map.unlock_range map h;
      let result = fault_range map ~va ~pages in
      (match result with
      | Error _ as e -> (e :> (unit, wire_error) result)
      | Ok () ->
          (* Revalidate: the entries must still exist and still be marked
             wired (a concurrent deallocate would have removed them). *)
          let h = Vm_map.lock_range_read map ~lo:va ~hi:(va + pages) in
          let rec check i =
            if i >= pages then Ok ()
            else
              match Vm_map.lookup_entry map ~va:(va + i) with
              | Some e when e.Vm_map.e_wired ->
                  check (max (i + 1) (e.Vm_map.va_end - va))
              | Some _ | None -> Error `Map_changed
          in
          let r = check 0 in
          Vm_map.unlock_range map h;
          r)

(* The paper's original implementation: write lock -> mark -> set
   recursive -> downgrade -> fault with the recursive read lock held.
   The recursion is a property of the coarse complex lock; a Range map
   has no recursive range holds (the fault takes its own disjoint
   per-page range), so the buggy algorithm cannot be expressed there and
   we dispatch to the rewrite. *)
let wire_recursive map ~va ~pages =
  match Vm_map.locking map with
  | Vm_map.Range -> wire_rewritten map ~va ~pages
  | Vm_map.Coarse -> (
      let lock = Vm_map.map_lock map in
      K.Clock.lock_write lock;
      match mark_entries_locked map ~va ~pages ~wired:true with
      | Error _ as e ->
          K.Clock.lock_done lock;
          e
      | Ok () ->
          K.Clock.lock_set_recursive lock;
          K.Clock.lock_write_to_read lock;
          (* Faults below recursively read-lock the map; a memory shortage
             makes a fault drop its own recursive read and sleep — with the
             outer read still held.  A pageout needing the write lock on this
             map then deadlocks the system (section 7.1). *)
          let result = fault_range map ~va ~pages in
          K.Clock.lock_clear_recursive lock;
          K.Clock.lock_done lock;
          (result :> (unit, wire_error) result))

let unwire map ~va ~pages =
  let h = Vm_map.lock_range_write map ~lo:va ~hi:(va + pages) in
  ignore (mark_entries_locked map ~va ~pages ~wired:false);
  for i = 0 to pages - 1 do
    match Vm_map.lookup_entry map ~va:(va + i) with
    | None -> ()
    | Some e ->
        let offset = e.Vm_map.e_offset + (va + i - e.Vm_map.va_start) in
        Vm_object.with_lock e.Vm_map.e_object (fun () ->
            match Vm_object.page_at e.Vm_map.e_object ~offset with
            | Some page when page.Vm_object.wired > 0 ->
                Vm_object.unwire page
            | Some _ | None -> ())
  done;
  Vm_map.unlock_range map h

let wired_page_count map =
  let h = Vm_map.lock_map_read map in
  let count =
    List.fold_left
      (fun acc e ->
        acc
        + Vm_object.with_lock e.Vm_map.e_object (fun () ->
              List.length
                (List.filter
                   (fun p -> p.Vm_object.wired > 0)
                   (Vm_object.resident_pages e.Vm_map.e_object))))
      0 (Vm_map.entries map)
  in
  Vm_map.unlock_range map h;
  count
