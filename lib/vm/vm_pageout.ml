module Engine = Mach_sim.Sim_engine

let reclaim_from_map map =
  let ctx = Vm_map.context map in
  (* "Obtaining more memory requires a write lock on the same map"
     (section 7.1) — the pageout scans every entry, so on a Range map
     this is a full-range write. *)
  let h = Vm_map.lock_map_write map in
  let victims =
    List.concat_map
      (fun e ->
        if e.Vm_map.e_wired then []
        else
          Vm_object.with_lock e.Vm_map.e_object (fun () ->
              List.filter_map
                (fun (p : Vm_object.page) ->
                  if p.Vm_object.wired = 0 then
                    Some (e, p.Vm_object.offset, p.Vm_object.ppn)
                  else None)
                (Vm_object.resident_pages e.Vm_map.e_object)))
      (Vm_map.entries map)
  in
  let freed = ref 0 in
  List.iter
    (fun (e, offset, ppn) ->
      (* Reverse order (pv list, then pmaps): exclusive access to the pv
         lists via the write side of the pmap system lock (section 5). *)
      Pmap_system.reverse ctx.psys (fun () ->
          ignore (Pv_list.remove_all_mappings ctx.pv ~ppn));
      let removed =
        Vm_object.with_lock e.Vm_map.e_object (fun () ->
            match Vm_object.page_at e.Vm_map.e_object ~offset with
            | Some p when p.Vm_object.wired = 0 ->
                Vm_object.remove_page e.Vm_map.e_object ~offset
            | Some _ | None -> None)
      in
      match removed with
      | Some ppn' ->
          Vm_page.free ctx.pool ppn';
          incr freed
      | None -> ())
    victims;
  Vm_map.bump_version map;
  Vm_map.unlock_range map h;
  !freed

type daemon = {
  thread : Engine.thread;
  stop_flag : bool ref;
  reclaimed : int ref;
  pool : Vm_page.t;
}

let start_daemon ~victims =
  let pool =
    match victims with
    | [] -> invalid_arg "Vm_pageout.start_daemon: no victim maps"
    | m :: _ -> (Vm_map.context m).Vm_map.pool
  in
  let stop_flag = ref false in
  let reclaimed = ref 0 in
  let thread =
    Engine.spawn ~name:"pageout" (fun () ->
        while not !stop_flag do
          Vm_page.wait_free_wanted pool;
          if not !stop_flag then
            List.iter
              (fun m -> reclaimed := !reclaimed + reclaim_from_map m)
              victims
        done)
  in
  { thread; stop_flag; reclaimed; pool }

let stop_daemon d =
  d.stop_flag := true;
  Vm_page.shortage_event_kick d.pool;
  Engine.join d.thread

let pages_reclaimed d = !(d.reclaimed)
