(* Regenerate test/golden/determinism.expected from the current engine.
   Run from the repository root:

     dune exec test/gen_golden.exe -- test/golden/determinism.expected

   With no argument the rendering is printed to stdout.  Only commit a
   regenerated expectation when a schedule change is intentional: the
   whole point of the golden file is that engine refactors keep the
   (seed, cfg) -> stats mapping byte-identical. *)

let () =
  let text = Test_support.Golden_scenarios.render () in
  match Sys.argv with
  | [| _; path |] ->
      let oc = open_out path in
      output_string oc text;
      close_out oc;
      Printf.printf "wrote %s (%d bytes)\n" path (String.length text)
  | _ -> print_string text
