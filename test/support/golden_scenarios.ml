(* Golden determinism scenarios: three representative workloads (lock
   contention, TLB shootdown barrier, pageout vs wire) run under a fixed
   matrix of (cpus, seed, policy) configurations.  The formatted stats are
   compared byte-for-byte against test/golden/determinism.expected, so any
   change to the engine's schedule, RNG consumption or cost model is
   caught immediately.  Regenerate the expectation with
   `dune exec test/gen_golden.exe` ONLY when a schedule change is
   intentional. *)

module Engine = Mach_sim.Sim_engine
module Config = Mach_sim.Sim_config
module K = Mach_ksync.Ksync
module Vm = Mach_vm

(* E1-style contention: every cpu hammers one simple lock whose critical
   section updates shared cells (bus traffic delays useful work). *)
let contention () =
  let lock =
    K.Slock.make ~name:"golden" ~protocol:Mach_core.Spin.Tas_then_ttas ()
  in
  let data = Array.init 4 (fun _ -> Engine.Cell.make ~name:"d" 0) in
  let cpus = Engine.cpu_count () in
  let worker () =
    for _ = 1 to 20 do
      K.Slock.lock lock;
      Array.iter (fun d -> ignore (Engine.Cell.fetch_and_add d 1)) data;
      Engine.cycles 20;
      K.Slock.unlock lock
    done
  in
  let ts = List.init cpus (fun _ -> Engine.spawn worker) in
  List.iter Engine.join ts

(* TLB shootdown: victims on every other cpu activate the pmap and spin;
   the initiator's removals rendezvous with all of them at splvm. *)
let shootdown () =
  let pm = Vm.Pmap.create () in
  let participants = max 0 (Engine.cpu_count () - 1) in
  let removals = 8 in
  let stop = Engine.Cell.make ~name:"stop" 0 in
  let victims =
    List.init participants (fun k ->
        let cpu = k + 1 in
        Engine.spawn ~name:(Printf.sprintf "victim%d" cpu) ~bound:cpu
          (fun () ->
            Vm.Pmap.activate pm ~cpu;
            Engine.spin_hint "stop";
            while Engine.Cell.get stop = 0 do
              Engine.pause ()
            done))
  in
  let initiator =
    Engine.spawn ~name:"initiator" ~bound:0 (fun () ->
        for j = 0 to removals - 1 do
          Vm.Pmap.enter pm ~va:(0x1000 + j) ~ppn:j ~prot:Vm.Tlb.Read_write
        done;
        Engine.spin_hint "activation";
        while List.length (Vm.Pmap.active_cpus pm) < participants do
          Engine.pause ()
        done;
        for j = 0 to removals - 1 do
          ignore (Vm.Pmap.remove pm ~va:(0x1000 + j))
        done;
        Engine.Cell.set stop 1)
  in
  Engine.join initiator;
  List.iter Engine.join victims

(* vm_map_pageable (Mach 3.0 rewrite) racing the pageout daemon. *)
let pageout () =
  let ctx = Vm.Vm_map.make_context ~pages:4 () in
  let map = Vm.Vm_map.create ctx in
  let reclaimable = Vm.Vm_map.vm_allocate map ~size:3 in
  for idx = 0 to 2 do
    match Vm.Vm_fault.fault map ~va:(reclaimable + idx) with
    | Ok _ -> ()
    | Error _ -> Engine.fatal "populate failed"
  done;
  let wired_va = Vm.Vm_map.vm_allocate map ~size:3 in
  let daemon = Vm.Vm_pageout.start_daemon ~victims:[ map ] in
  (match Vm.Vm_pageable.wire_rewritten map ~va:wired_va ~pages:3 with
  | Ok () -> ()
  | Error _ -> Engine.fatal "wire failed");
  Vm.Vm_pageout.stop_daemon daemon;
  Vm.Vm_map.release map

(* The same contention workload over each lib/locks queue-lock protocol,
   plus a read-mostly workload over the big-reader lock: pins the exact
   cell-op sequence (and hence schedule and cost model) of every new
   protocol. *)
let queue_contention proto () =
  let lock = K.Slock.make ~name:"golden" ~proto () in
  let data = Array.init 4 (fun _ -> Engine.Cell.make ~name:"d" 0) in
  let cpus = Engine.cpu_count () in
  let worker () =
    for _ = 1 to 20 do
      K.Slock.lock lock;
      Array.iter (fun d -> ignore (Engine.Cell.fetch_and_add d 1)) data;
      Engine.cycles 20;
      K.Slock.unlock lock
    done
  in
  let ts = List.init cpus (fun _ -> Engine.spawn worker) in
  List.iter Engine.join ts

let brlock_readers () =
  let module B = K.Locks.Brlock in
  let l = B.make ~name:"golden-br" in
  let d = Engine.Cell.make ~name:"d" 0 in
  let cpus = Engine.cpu_count () in
  let worker i () =
    for j = 1 to 20 do
      (* One write per eight ops on one worker; everyone else reads. *)
      if i = 0 && j mod 8 = 0 then
        B.with_write l (fun () -> ignore (Engine.Cell.fetch_and_add d 1))
      else
        B.with_read l (fun () ->
            ignore (Engine.Cell.get d);
            Engine.cycles 10)
    done
  in
  let ts = List.init cpus (fun i -> Engine.spawn (worker i)) in
  List.iter Engine.join ts

(* The brlock read-mostly workload over the scache RW lock: pins the
   explicit ReadPending/ReadCounted acquisition loop and the FIFO
   writer-gate handoff cell ops. *)
let scache_readers () =
  let module S = K.Locks.Scache in
  let l = S.make ~name:"golden-sc" in
  let d = Engine.Cell.make ~name:"d" 0 in
  let cpus = Engine.cpu_count () in
  let worker i () =
    for j = 1 to 20 do
      if i = 0 && j mod 8 = 0 then
        S.with_write l (fun () -> ignore (Engine.Cell.fetch_and_add d 1))
      else
        S.with_read l (fun () ->
            ignore (Engine.Cell.get d);
            Engine.cycles 10)
    done
  in
  let ts = List.init cpus (fun i -> Engine.spawn (worker i)) in
  List.iter Engine.join ts

(* scache under the Complex_lock: the RW state machine rides the scache
   writer as its interlock protocol. *)
let cx_scache () =
  let l =
    K.Clock.make ~name:"golden-cx-sc" ~proto:K.Locks.scache_writer
      ~can_sleep:false ()
  in
  let d = Engine.Cell.make ~name:"d" 0 in
  let cpus = Engine.cpu_count () in
  let worker i () =
    for j = 1 to 12 do
      if i = 0 && j mod 6 = 0 then begin
        K.Clock.lock_write l;
        ignore (Engine.Cell.fetch_and_add d 1);
        K.Clock.lock_done l
      end
      else begin
        K.Clock.lock_read l;
        ignore (Engine.Cell.get d);
        Engine.cycles 10;
        K.Clock.lock_done l
      end
    done
  in
  let ts = List.init cpus (fun i -> Engine.spawn (worker i)) in
  List.iter Engine.join ts

let scenarios : (string * (unit -> unit)) list =
  [
    ("contention", contention);
    ("shootdown", shootdown);
    ("pageout", pageout);
    ("contention-ticket", queue_contention K.Locks.ticket);
    ("contention-mcs", queue_contention K.Locks.mcs);
    ("contention-anderson", queue_contention K.Locks.anderson);
    ("brlock-readers", brlock_readers);
    ("contention-scache", queue_contention K.Locks.scache_writer);
    ("scache-readers", scache_readers);
    ("cx-scache", cx_scache);
  ]

(* The configuration matrix exercises every scheduler policy (and thus
   every RNG-consuming code path in the candidate picker). *)
let matrix : (string * int * int * Config.policy) list =
  [
    ("contention", 8, 3, Config.Timed);
    ("contention", 4, 11, Config.Random_policy);
    ("contention", 4, 7, Config.Round_robin);
    ("contention", 16, 5, Config.Timed);
    ("shootdown", 4, 3, Config.Timed);
    ("shootdown", 4, 5, Config.Random_policy);
    ("pageout", 3, 2, Config.Random_policy);
    ("pageout", 3, 9, Config.Timed);
    (* New-protocol rows are appended so every pre-existing line of the
       golden file stays byte-identical. *)
    ("contention-ticket", 8, 3, Config.Timed);
    ("contention-ticket", 4, 11, Config.Random_policy);
    ("contention-mcs", 8, 3, Config.Timed);
    ("contention-mcs", 4, 11, Config.Random_policy);
    ("contention-anderson", 8, 3, Config.Timed);
    ("contention-anderson", 4, 7, Config.Round_robin);
    ("brlock-readers", 8, 3, Config.Timed);
    ("brlock-readers", 4, 5, Config.Random_policy);
    (* scache rows: under Simple_lock (contention-scache), raw RW
       (scache-readers) and Complex_lock (cx-scache). *)
    ("contention-scache", 8, 3, Config.Timed);
    ("contention-scache", 4, 11, Config.Random_policy);
    ("scache-readers", 8, 3, Config.Timed);
    ("scache-readers", 4, 5, Config.Random_policy);
    ("cx-scache", 4, 7, Config.Round_robin);
    ("cx-scache", 8, 3, Config.Timed);
  ]

let line (name, cpus, seed, policy) =
  let f = List.assoc name scenarios in
  let cfg = { Config.default with Config.cpus; seed; policy } in
  let head =
    Printf.sprintf "%s cpus=%d seed=%d policy=%s -> " name cpus seed
      (Config.policy_name policy)
  in
  match Engine.run_outcome ~cfg f with
  | Engine.Completed stats ->
      head ^ Format.asprintf "%a" Engine.pp_stats stats
  | Engine.Deadlocked (Engine.Sleep_deadlock, _) -> head ^ "sleep-deadlock"
  | Engine.Deadlocked (Engine.Spin_deadlock, _) -> head ^ "spin-deadlock"
  | Engine.Panicked msg -> head ^ "panic: " ^ msg
  | Engine.Hit_step_limit -> head ^ "step-limit"

(* The expectation opens with the engine's schedule version: a golden
   file generated before an intentional schedule change then fails with
   a clear "stale golden" message instead of a wall of stats diffs. *)
let version_line () =
  Printf.sprintf "# engine schedule_version %d\n" Engine.schedule_version

let render () =
  version_line ()
  ^ String.concat "" (List.map (fun row -> line row ^ "\n") matrix)
