(* Shared helpers for the test suites. *)

module Engine = Mach_sim.Sim_engine

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec at i = i + m <= n && (String.sub s i m = sub || at (i + 1)) in
  m = 0 || at 0

(* Run [f] inside a fresh simulation and return its result. *)
let in_sim ?cfg f =
  let result = ref None in
  ignore (Engine.run ?cfg (fun () -> result := Some (f ())));
  Option.get !result

(* Condition-based synchronization for tests: simulated time offers no
   guarantee that "N pauses" let another thread progress, so tests must
   wait on observable state.  The engine watchdog catches a condition
   that never becomes true. *)
let wait_until pred =
  while not (pred ()) do
    Engine.pause ()
  done

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* Re-export for the golden-determinism generator and test. *)
module Golden_scenarios = Golden_scenarios
