(* Shared helpers for the test suites. *)

module Engine = Mach_sim.Sim_engine

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec at i = i + m <= n && (String.sub s i m = sub || at (i + 1)) in
  m = 0 || at 0

(* Run [f] inside a fresh simulation and return its result. *)
let in_sim ?cfg f =
  let result = ref None in
  ignore (Engine.run ?cfg (fun () -> result := Some (f ())));
  Option.get !result

(* Condition-based synchronization for tests: simulated time offers no
   guarantee that "N pauses" let another thread progress, so tests must
   wait on observable state.  The engine watchdog catches a condition
   that never becomes true. *)
let wait_until pred =
  while not (pred ()) do
    Engine.pause ()
  done

(* Shared deterministic RNG for tests that want arbitrary-but-stable
   values (shuffled start orders, fuzzed payload sizes).  A bare
   module-level [Sim_rng.make] would leak position across [in_sim]
   calls: the second simulation of a test binary would see a different
   draw sequence than the first, so a test's behavior would depend on
   which tests ran before it.  The engine runs the registered
   [Run_reset] hook at every run setup/teardown, which reseeds the
   generator — every simulation sees the same stream. *)
let rng_seed = 0x7357
let test_rng = ref (Mach_sim.Sim_rng.make rng_seed)

let () =
  Mach_core.Run_reset.register (fun () ->
      test_rng := Mach_sim.Sim_rng.make rng_seed)

let rng_int bound = Mach_sim.Sim_rng.int !test_rng bound

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* Re-export for the golden-determinism generator and test. *)
module Golden_scenarios = Golden_scenarios
