(* The chaos layer: schedule preservation with injection off, the
   waits-for deadlock detector on the section 7 interrupt deadlock, the
   section 6 lost wakeup under drop-wakeup injection, and fault-mix
   minimization. *)

module Engine = Mach_sim.Sim_engine
module Config = Mach_sim.Sim_config
module Chaos = Mach_chaos.Chaos
module Fault = Mach_chaos.Chaos_fault
module Cs = Mach_chaos.Chaos_scenarios
module Scenarios = Mach_kernel.Scenarios

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec at i = i + m <= n && (String.sub s i m = sub || at (i + 1)) in
  m = 0 || at 0

(* With every fault's odds at zero the chaos RNG is never drawn and the
   stats must be byte-identical to a run without the faults record (the
   golden determinism test pins the text format; this pins the invariance
   under the chaos plumbing, tracking included). *)
let test_injection_off_preserves_schedule () =
  let scenario () = Cs.lost_wakeup_handoff () in
  let base = Config.exploration ~cpus:4 ~seed:7 () in
  let plain = Engine.run ~cfg:base scenario in
  let with_fields =
    Engine.run
      ~cfg:
        {
          base with
          Config.faults = { Config.no_faults with Config.fault_seed = 999 };
          track_waits = true;
        }
      scenario
  in
  let pp s = Format.asprintf "%a" Engine.pp_stats s in
  Alcotest.(check string)
    "stats byte-identical with injection off" (pp plain) (pp with_fields)

let test_chaos_counters_zero_when_off () =
  ignore
    (Engine.run ~cfg:(Config.exploration ~cpus:4 ~seed:3 ()) (fun () ->
         Cs.wakeup_herd ()));
  match Engine.last_chaos () with
  | Some c ->
      check_int "dropped" 0 c.Engine.dropped_wakeups;
      check_int "delayed" 0 c.Engine.delayed_wakeups;
      check_int "spurious" 0 c.Engine.spurious_wakeups;
      check_int "delayed intr" 0 c.Engine.delayed_interrupts;
      check_int "perturbed" 0 c.Engine.perturbed_picks;
      check_int "preempted" 0 c.Engine.forced_preemptions
  | None -> Alcotest.fail "no chaos stats recorded"

let test_section7_cycle_detected () =
  match
    Chaos.find_first_failure ~cpus:4 ~max_seeds:10 ~faults:(Fault.mix [])
      Cs.interrupt_deadlock
  with
  | Some r ->
      check_bool "classified as cycle" true (r.Chaos.detection = Chaos.Cycle);
      check_bool "cycle in report" true
        (contains r.Chaos.report "waits-for cycle");
      check_bool "cycle goes through the lock" true
        (contains r.Chaos.report "simple lock the-lock");
      check_bool "cycle goes through the pending interrupt" true
        (contains r.Chaos.report "pending interrupt barrier")
  | None -> Alcotest.fail "section 7 deadlock not reproduced within 10 seeds"

let test_section7_deterministic () =
  let faults = Fault.mix [] in
  let r1 = Chaos.run_one ~cpus:4 ~seed:1 ~faults Cs.interrupt_deadlock in
  let r2 = Chaos.run_one ~cpus:4 ~seed:1 ~faults Cs.interrupt_deadlock in
  check_bool "same detection" true (r1.Chaos.detection = r2.Chaos.detection);
  Alcotest.(check string) "same report" r1.Chaos.report r2.Chaos.report

let test_lost_wakeup_detected () =
  let faults = Fault.mix ~intensity:2 [ Fault.Drop_wakeup ] in
  let found = ref None in
  let seed = ref 1 in
  while !found = None && !seed <= 20 do
    let r = Chaos.run_one ~cpus:4 ~seed:!seed ~faults Cs.lost_wakeup_handoff in
    if
      Chaos.detected r.Chaos.detection
      && contains r.Chaos.report "never arrived"
    then found := Some r;
    incr seed
  done;
  match !found with
  | Some r ->
      check_bool "classified as orphan" true
        (r.Chaos.detection = Chaos.Orphan);
      check_bool "names the waiter's event" true
        (contains r.Chaos.report "woken from event");
      (* Reproducible: event ids are process-global (they keep counting
         across runs), so compare the stable parts of the report rather
         than the raw string. *)
      let r' = Chaos.run_one ~cpus:4 ~seed:r.Chaos.seed ~faults
                 Cs.lost_wakeup_handoff in
      check_bool "reproducible detection" true
        (r'.Chaos.detection = r.Chaos.detection);
      check_bool "reproducible lost-wakeup line" true
        (contains r'.Chaos.report "never arrived");
      (match Engine.last_chaos () with
      | Some c -> check_bool "drops counted" true (c.Engine.dropped_wakeups > 0)
      | None -> Alcotest.fail "no chaos stats")
  | None -> Alcotest.fail "no lost wakeup detected within 20 seeds"

(* The scache writer release is a droppable grant store (the FIFO
   ticket handoff): under drop-handoff injection the queued writer spins
   on a grant that never lands and the analyzer must call it a lost
   handoff — the same search [machsim chaos] runs in its scache
   section, pinned here with a reproducibility check. *)
let test_scache_lost_handoff_detected () =
  let faults = Fault.mix ~intensity:2 [ Fault.Drop_handoff ] in
  match
    Chaos.find_first_failure ~cpus:3 ~max_seeds:20 ~faults (fun () ->
        Cs.scache_handoff ())
  with
  | Some r ->
      check_bool "diagnosed as lost handoff" true
        (contains r.Chaos.report "lost handoff");
      let r' =
        Chaos.run_one ~cpus:3 ~seed:r.Chaos.seed ~faults (fun () ->
            Cs.scache_handoff ())
      in
      check_bool "reproducible detection" true
        (r'.Chaos.detection = r.Chaos.detection);
      check_bool "reproducible diagnosis" true
        (contains r'.Chaos.report "lost handoff");
      (match Engine.last_chaos () with
      | Some c ->
          check_bool "handoff drops counted" true
            (c.Engine.dropped_handoffs > 0)
      | None -> Alcotest.fail "no chaos stats")
  | None -> Alcotest.fail "no scache lost handoff within 20 seeds"

let test_scache_handoff_clean_without_faults () =
  let v =
    Mach_sim.Sim_explore.run ~cpus:3
      ~seeds:(List.init 25 (fun i -> i + 1))
      (fun () -> Cs.scache_handoff ())
  in
  check_bool "scache handoff never hangs uninjected" true
    (Mach_sim.Sim_explore.all_completed v)

(* The E20 ride-along: shutdown drain under load with wakeup drops.  The
   drain protocol's promise is that no client sleeps forever on its reply
   port — every in-flight request gets an [err_deactivated] reply.  A
   dropped reply wakeup breaks exactly that promise; the analyzer must
   name the orphaned waiter ("never arrived") instead of the run hanging
   silently.  The terminator's bounded give-up spin in [rpc_serve] is
   what keeps this a sleep deadlock rather than a livelock.  [spin = 0]
   forces every wait onto the park path — with the default spin budget a
   dropped wakeup usually lands while the receiver is still probing and
   is recovered for free, which is the production configuration's
   defense but would starve this test of failures. *)
let rpc_drain () =
  ignore
    (Scenarios.rpc_serve ~shards:2 ~batch:2 ~calls_each:4 ~spin:0
       ~drain_under_load:true ())

let test_rpc_drain_lost_wakeup_detected () =
  let faults = Fault.mix ~intensity:2 [ Fault.Drop_wakeup ] in
  let found = ref None in
  let seed = ref 1 in
  while !found = None && !seed <= 30 do
    let r = Chaos.run_one ~cpus:4 ~seed:!seed ~faults rpc_drain in
    if
      Chaos.detected r.Chaos.detection
      && contains r.Chaos.report "never arrived"
    then found := Some r;
    incr seed
  done;
  match !found with
  | Some r ->
      check_bool "classified as orphan" true (r.Chaos.detection = Chaos.Orphan);
      check_bool "names the waiter's event" true
        (contains r.Chaos.report "woken from event");
      let r' = Chaos.run_one ~cpus:4 ~seed:r.Chaos.seed ~faults rpc_drain in
      check_bool "reproducible detection" true
        (r'.Chaos.detection = r.Chaos.detection);
      check_bool "reproducible lost-wakeup line" true
        (contains r'.Chaos.report "never arrived")
  | None ->
      Alcotest.fail "no lost wakeup during rpc drain within 30 seeds"

let test_rpc_drain_clean_without_faults () =
  let v =
    Mach_sim.Sim_explore.run ~cpus:4
      ~seeds:(List.init 10 (fun i -> i + 1))
      rpc_drain
  in
  check_bool "rpc drain never hangs uninjected" true
    (Mach_sim.Sim_explore.all_completed v)

let test_handoff_clean_without_faults () =
  let v =
    Mach_sim.Sim_explore.run ~cpus:4
      ~seeds:(List.init 25 (fun i -> i + 1))
      Cs.lost_wakeup_handoff
  in
  check_bool "correct protocol never hangs uninjected" true
    (Mach_sim.Sim_explore.all_completed v)

let test_minimize_keeps_failing () =
  let full = Fault.mix ~intensity:2 Fault.all in
  match
    Chaos.find_first_failure ~cpus:4 ~max_seeds:20 ~faults:full
      Cs.lost_wakeup_handoff
  with
  | None -> Alcotest.fail "full mix produced no failure"
  | Some r ->
      let minimal =
        Chaos.minimize ~cpus:4 ~seed:r.Chaos.seed ~faults:full
          Cs.lost_wakeup_handoff
      in
      let kept = Fault.mix_classes minimal in
      check_bool "minimal mix is a subset" true
        (List.for_all (fun c -> List.mem c Fault.all) kept);
      check_bool "did shrink" true
        (List.length kept < List.length Fault.all);
      let r' =
        Chaos.run_one ~cpus:4 ~seed:r.Chaos.seed ~faults:minimal
          Cs.lost_wakeup_handoff
      in
      check_bool "minimal mix still fails" true
        (Chaos.detected r'.Chaos.detection)

let test_forced_preemption_counted () =
  let faults = Fault.mix ~intensity:1 [ Fault.Preempt_acquire ] in
  let r = Chaos.run_one ~cpus:4 ~seed:2 ~faults Cs.lost_wakeup_handoff in
  ignore r;
  match Engine.last_chaos () with
  | Some c ->
      check_bool "preemptions fired" true (c.Engine.forced_preemptions > 0)
  | None -> Alcotest.fail "no chaos stats"

let () =
  Alcotest.run "chaos"
    [
      ( "schedule preservation",
        [
          Alcotest.test_case "injection off = identical stats" `Quick
            test_injection_off_preserves_schedule;
          Alcotest.test_case "counters zero when off" `Quick
            test_chaos_counters_zero_when_off;
        ] );
      ( "deadlock detection",
        [
          Alcotest.test_case "section 7 cycle" `Quick
            test_section7_cycle_detected;
          Alcotest.test_case "section 7 deterministic" `Quick
            test_section7_deterministic;
          Alcotest.test_case "section 6 lost wakeup" `Quick
            test_lost_wakeup_detected;
          Alcotest.test_case "handoff clean uninjected" `Quick
            test_handoff_clean_without_faults;
          Alcotest.test_case "scache lost writer handoff" `Quick
            test_scache_lost_handoff_detected;
          Alcotest.test_case "scache handoff clean uninjected" `Quick
            test_scache_handoff_clean_without_faults;
          Alcotest.test_case "rpc drain lost wakeup" `Quick
            test_rpc_drain_lost_wakeup_detected;
          Alcotest.test_case "rpc drain clean uninjected" `Quick
            test_rpc_drain_clean_without_faults;
        ] );
      ( "injection",
        [
          Alcotest.test_case "minimization" `Slow test_minimize_keeps_failing;
          Alcotest.test_case "forced preemption fires" `Quick
            test_forced_preemption_counted;
        ] );
    ]
