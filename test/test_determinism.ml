(* Golden determinism regression + parallel-exploration equivalence.

   The golden test pins the exact (seed, cfg) -> stats mapping of the
   simulated machine across three scenario families; see
   test/support/golden_scenarios.ml.  The exploration tests check that
   [Sim_explore.run ~domains:n] is observably identical to the
   sequential fold for every n. *)

module Engine = Mach_sim.Sim_engine
module Config = Mach_sim.Sim_config
module Explore = Mach_sim.Sim_explore
module Golden = Test_support.Golden_scenarios

let read_file path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let s = really_input_string ic len in
  close_in ic;
  s

let test_golden_stats () =
  let expected = read_file "golden/determinism.expected" in
  let actual = Golden.render () in
  if String.equal expected actual then ()
  else begin
    Printf.printf
      "golden mismatch.\n--- expected ---\n%s--- actual ---\n%s" expected
      actual;
    Alcotest.fail
      "golden (seed, cfg) -> stats changed; if intentional, regenerate \
       with `dune exec test/gen_golden.exe -- test/golden/determinism.expected`"
  end

let test_repeat_identical () =
  (* The same process, run twice: the engine must not leak state between
     runs (per-run counters, caches, traces). *)
  let a = Golden.render () in
  let b = Golden.render () in
  Alcotest.(check string) "second render identical" a b

(* ------------------------------------------------------------------ *)
(* Parallel exploration equivalence                                     *)
(* ------------------------------------------------------------------ *)

(* All locks named explicitly: failure reports quote lock names, and
   unnamed locks embed a process-global allocation id that depends on run
   order.  Named locks make the verdict (including report strings)
   independent of which domain ran which seed. *)
let clean_scenario () =
  let module K = Mach_ksync.Ksync in
  let l = K.Slock.make ~name:"clean" () in
  let c = Engine.Cell.make ~name:"n" 0 in
  let ts =
    List.init 3 (fun _ ->
        Engine.spawn (fun () ->
            for _ = 1 to 5 do
              K.Slock.lock l;
              ignore (Engine.Cell.fetch_and_add c 1);
              K.Slock.unlock l
            done))
  in
  List.iter Engine.join ts

(* AB/BA ordering bug: deadlocks on some schedules, completes on others —
   the mixed-outcome case the failure list must report identically. *)
let abba_scenario () =
  let module K = Mach_ksync.Ksync in
  let a = K.Slock.make ~name:"A" () in
  let b = K.Slock.make ~name:"B" () in
  let forward () =
    for _ = 1 to 3 do
      K.Slock.lock a;
      Engine.cycles 10;
      K.Slock.lock b;
      Engine.cycles 10;
      K.Slock.unlock b;
      K.Slock.unlock a;
      Engine.pause ()
    done
  in
  let backward () =
    for _ = 1 to 3 do
      K.Slock.lock b;
      Engine.cycles 10;
      K.Slock.lock a;
      Engine.cycles 10;
      K.Slock.unlock a;
      K.Slock.unlock b;
      Engine.pause ()
    done
  in
  let t1 = Engine.spawn ~name:"fwd" forward in
  let t2 = Engine.spawn ~name:"bwd" backward in
  Engine.join t1;
  Engine.join t2

let verdict_testable =
  let pp ppf (v : Explore.verdict) =
    Format.fprintf ppf "%a failures=[%s]" Explore.pp_verdict v
      (String.concat "; "
         (List.map (fun (s, _) -> string_of_int s) v.Explore.failures))
  in
  Alcotest.testable pp ( = )

let check_parallel_matches scenario ~seeds ~watchdog =
  let tweak cfg = { cfg with Config.watchdog_steps = watchdog } in
  let seeds = List.init seeds (fun s -> s + 1) in
  let sequential = Explore.run ~cpus:3 ~seeds ~tweak scenario in
  List.iter
    (fun domains ->
      let par = Explore.run ~cpus:3 ~seeds ~tweak ~domains scenario in
      Alcotest.check verdict_testable
        (Printf.sprintf "domains=%d verdict" domains)
        sequential par)
    [ 1; 2; 4 ]

let test_parallel_equivalence_clean () =
  check_parallel_matches clean_scenario ~seeds:24 ~watchdog:200_000

let test_parallel_equivalence_mixed () =
  let v =
    Explore.run ~cpus:3
      ~seeds:(List.init 40 (fun s -> s + 1))
      ~tweak:(fun cfg -> { cfg with Config.watchdog_steps = 20_000 })
      abba_scenario
  in
  (* The scenario must actually produce both outcomes, or the test below
     proves nothing about failure aggregation. *)
  Alcotest.(check bool) "some seeds deadlock" true (Explore.some_deadlock v);
  Alcotest.(check bool) "some seeds complete" true (v.Explore.completed > 0);
  check_parallel_matches abba_scenario ~seeds:40 ~watchdog:20_000

let test_failures_first_ascending () =
  (* Every seed of a guaranteed deadlock: the failure list must hold the
     FIRST 16 seeds in ascending order (not the last 16 reversed). *)
  let always_deadlock () = Engine.park () in
  let v =
    Explore.run ~cpus:2
      ~seeds:(List.init 25 (fun s -> s + 1))
      always_deadlock
  in
  Alcotest.(check int) "capped at 16" 16 (List.length v.Explore.failures);
  Alcotest.(check (list int)) "first 16 seeds, ascending"
    (List.init 16 (fun s -> s + 1))
    (List.map fst v.Explore.failures)

let () =
  Alcotest.run "determinism"
    [
      ( "golden",
        [
          Alcotest.test_case "stats byte-identical" `Quick test_golden_stats;
          Alcotest.test_case "no cross-run state leak" `Quick
            test_repeat_identical;
        ] );
      ( "explore",
        [
          Alcotest.test_case "parallel == sequential (all complete)" `Quick
            test_parallel_equivalence_clean;
          Alcotest.test_case "parallel == sequential (mixed outcomes)" `Quick
            test_parallel_equivalence_mixed;
          Alcotest.test_case "failure list: first 16 ascending" `Quick
            test_failures_first_ascending;
        ] );
    ]
