(* Ports, messages and the MiG-analog RPC layer (sections 3, 10). *)

module Engine = Mach_sim.Sim_engine
module Explore = Mach_sim.Sim_explore
module K = Mach_ksync.Ksync
module Kobj = Mach_ksync.Kobj
module Port = Mach_ipc.Port
module Mig = Mach_ipc.Mig
open Test_support

type Kobj.payload += Widget of int ref

(* ------------------------------------------------------------------ *)

let test_send_receive () =
  in_sim (fun () ->
      let p = Port.create ~name:"p" () in
      let msg = { Port.msg_op = 7; reply_to = None; body = [ Port.Int 42 ] } in
      (match Port.send p msg with
      | Ok () -> ()
      | Error `Dead_port -> Alcotest.fail "send failed");
      check_int "queued" 1 (Port.queued p);
      (match Port.receive p with
      | Ok m ->
          check_int "op" 7 m.Port.msg_op;
          check_bool "body" true (m.Port.body = [ Port.Int 42 ])
      | Error _ -> Alcotest.fail "receive failed");
      Port.destroy p;
      Port.release p)

let test_receive_blocks_until_send () =
  ignore
    (Engine.run (fun () ->
         let p = Port.create () in
         let got = ref None in
         let receiver =
           Engine.spawn ~name:"receiver" (fun () ->
               match Port.receive p with
               | Ok m -> got := Some m.Port.msg_op
               | Error _ -> ())
         in
         wait_until (fun () -> K.Ev.waiting_on receiver <> None);
         check_bool "not yet" true (!got = None);
         ignore (Port.send p { Port.msg_op = 9; reply_to = None; body = [] });
         Engine.join receiver;
         check_bool "received" true (!got = Some 9);
         Port.destroy p;
         Port.release p))

let test_send_blocks_when_full () =
  ignore
    (Engine.run (fun () ->
         let p = Port.create ~queue_limit:2 () in
         let msg n = { Port.msg_op = n; reply_to = None; body = [] } in
         ignore (Port.send p (msg 1));
         ignore (Port.send p (msg 2));
         (match Port.try_send p (msg 3) with
         | Error `Would_block -> ()
         | _ -> Alcotest.fail "queue limit not enforced");
         let sender =
           Engine.spawn ~name:"sender" (fun () -> ignore (Port.send p (msg 3)))
         in
         wait_until (fun () -> K.Ev.waiting_on sender <> None);
         (* draining one slot lets the sender through *)
         ignore (Port.receive p);
         Engine.join sender;
         check_int "two queued" 2 (Port.queued p);
         Port.destroy p;
         Port.release p))

let test_dead_port_fails () =
  in_sim (fun () ->
      let p = Port.create () in
      Port.destroy p;
      (match Port.send p { Port.msg_op = 1; reply_to = None; body = [] } with
      | Error `Dead_port -> ()
      | Ok () -> Alcotest.fail "send to dead port succeeded");
      (match Port.try_receive p with
      | Error `Dead_port -> ()
      | _ -> Alcotest.fail "receive from dead port succeeded");
      Port.release p)

let test_destroy_wakes_blocked_receiver () =
  ignore
    (Engine.run (fun () ->
         let p = Port.create () in
         let outcome = ref None in
         let receiver =
           Engine.spawn ~name:"receiver" (fun () ->
               outcome := Some (Port.receive p))
         in
         wait_until (fun () -> K.Ev.waiting_on receiver <> None);
         Port.destroy p;
         Engine.join receiver;
         (match !outcome with
         | Some (Error `Dead_port) -> ()
         | _ -> Alcotest.fail "blocked receiver not failed with Dead_port");
         Port.release p))

let test_translation_and_deactivation () =
  in_sim (fun () ->
      let counter = ref 0 in
      let obj = Kobj.make ~name:"widget" (Widget counter) in
      let p = Port.create ~name:"widget-port" () in
      Kobj.reference obj;
      Port.set_object p obj;
      (* Translation clones a reference under the port lock. *)
      (match Port.translate p with
      | Some o ->
          check_bool "same object" true (Kobj.uid o = Kobj.uid obj);
          check_int "three refs: creator + pointer + translation" 3
            (Kobj.ref_count obj);
          Kobj.release o
      | None -> Alcotest.fail "translation failed");
      (* Shutdown step 2: strip the pointer; translation now fails. *)
      (match Port.clear_object p with
      | Some o -> Kobj.release o
      | None -> Alcotest.fail "no object to clear");
      check_bool "translation disabled" true (Port.translate p = None);
      check_int "creator ref remains" 1 (Kobj.ref_count obj);
      Port.destroy p;
      Port.release p;
      Kobj.release obj)

let test_message_carries_port_reference () =
  in_sim (fun () ->
      let dest = Port.create ~name:"dest" () in
      let carried = Port.create ~name:"carried" () in
      let base_dest = Port.ref_count dest in
      let base_carried = Port.ref_count carried in
      ignore
        (Port.send dest
           {
             Port.msg_op = 1;
             reply_to = None;
             body = [ Port.Port_right carried ];
           });
      check_int "queued message holds dest ref" (base_dest + 1)
        (Port.ref_count dest);
      check_int "queued message holds carried right" (base_carried + 1)
        (Port.ref_count carried);
      (match Port.receive dest with
      | Ok m ->
          check_int "dest ref released on dequeue" base_dest
            (Port.ref_count dest);
          (* the right transfers to the receiver *)
          check_int "carried right transferred" (base_carried + 1)
            (Port.ref_count carried);
          Port.destroy_message m;
          check_int "right released with message" base_carried
            (Port.ref_count carried)
      | Error _ -> Alcotest.fail "receive failed");
      Port.destroy dest;
      Port.release dest;
      Port.destroy carried;
      Port.release carried)

let test_destroy_releases_queued_refs () =
  in_sim (fun () ->
      let dest = Port.create ~name:"dest" () in
      let carried = Port.create ~name:"carried" () in
      let base = Port.ref_count carried in
      ignore
        (Port.send dest
           {
             Port.msg_op = 1;
             reply_to = None;
             body = [ Port.Port_right carried ];
           });
      Port.destroy dest;
      check_int "queued right released by destroy" base
        (Port.ref_count carried);
      Port.release dest;
      Port.destroy carried;
      Port.release carried)

let test_receive_batch () =
  in_sim (fun () ->
      let p = Port.create () in
      let msg n = { Port.msg_op = n; reply_to = None; body = [] } in
      List.iter (fun n -> ignore (Port.send p (msg n))) [ 1; 2; 3; 4; 5 ];
      (* One lock hold, FIFO, capped at [max]. *)
      (match Port.receive_batch p ~max:3 with
      | Ok ms ->
          check_bool "first three in order" true
            (List.map (fun m -> m.Port.msg_op) ms = [ 1; 2; 3 ])
      | Error _ -> Alcotest.fail "batch receive failed");
      (* A batch never over-claims: only the remainder comes back. *)
      (match Port.receive_batch p ~max:8 with
      | Ok ms ->
          check_bool "remainder in order" true
            (List.map (fun m -> m.Port.msg_op) ms = [ 4; 5 ])
      | Error _ -> Alcotest.fail "batch receive failed");
      (match Port.try_receive_batch p ~max:4 with
      | Error `Would_block -> ()
      | _ -> Alcotest.fail "empty queue must not yield a batch");
      Port.destroy p;
      Port.release p)

let test_receive_batch_blocks_until_send () =
  ignore
    (Engine.run (fun () ->
         let p = Port.create () in
         let got = ref [] in
         let receiver =
           Engine.spawn ~name:"receiver" (fun () ->
               match Port.receive_batch ~spin:0 p ~max:4 with
               | Ok ms -> got := List.map (fun m -> m.Port.msg_op) ms
               | Error _ -> ())
         in
         wait_until (fun () -> K.Ev.waiting_on receiver <> None);
         check_bool "not yet" true (!got = []);
         ignore (Port.send p { Port.msg_op = 6; reply_to = None; body = [] });
         Engine.join receiver;
         (* At least one message on Ok; a single send wakes the batch. *)
         check_bool "woke with the message" true (!got = [ 6 ]);
         Port.destroy p;
         Port.release p))

let test_destroy_drain_returns_in_flight () =
  in_sim (fun () ->
      let p = Port.create () in
      let carried = Port.create ~name:"carried" () in
      let base = Port.ref_count carried in
      ignore
        (Port.send p
           {
             Port.msg_op = 1;
             reply_to = None;
             body = [ Port.Port_right carried ];
           });
      ignore (Port.send p { Port.msg_op = 2; reply_to = None; body = [] });
      let drained = Port.destroy_drain p in
      check_bool "port is dead" true (not (Port.is_active p));
      check_int "both in-flight messages returned" 2 (List.length drained);
      check_bool "FIFO order preserved" true
        (List.map (fun m -> m.Port.msg_op) drained = [ 1; 2 ]);
      (* The caller now owns the carried rights and must destroy them. *)
      check_int "carried right survives the drain" (base + 1)
        (Port.ref_count carried);
      List.iter Port.destroy_message drained;
      check_int "right released with message" base (Port.ref_count carried);
      Port.release p;
      Port.destroy carried;
      Port.release carried)

(* ------------------------------------------------------------------ *)
(* MiG RPC                                                              *)
(* ------------------------------------------------------------------ *)

let test_rpc_roundtrip () =
  ignore
    (Engine.run (fun () ->
         let reg = Mig.make_registry () in
         Mig.register reg ~id:5 ~name:"add" (fun _obj args ->
             match args with
             | [ Port.Int a; Port.Int b ] -> Ok [ Port.Int (a + b) ]
             | _ -> Error Mig.err_bad_arguments);
         let service = Port.create ~name:"service" () in
         let stop = ref false in
         let server =
           Engine.spawn ~name:"server" (fun () ->
               Mig.serve_loop ~stop:(fun () -> !stop) reg service)
         in
         (match Mig.call service ~id:5 [ Port.Int 2; Port.Int 3 ] with
         | Ok [ Port.Int 5 ] -> ()
         | Ok _ -> Alcotest.fail "wrong reply"
         | Error _ -> Alcotest.fail "rpc failed");
         (* unknown routine *)
         (match Mig.call service ~id:999 [] with
         | Error (`Server_failure code) ->
             check_int "no such routine" Mig.err_no_such_routine code
         | _ -> Alcotest.fail "unknown routine not failed");
         stop := true;
         Port.destroy service;
         Engine.join server;
         Port.release service))

let test_rpc_object_reference_management () =
  (* The section 10 sequence: the object reference taken by translation
     is released after the operation; with consume-on-success, the
     handler keeps it. *)
  ignore
    (Engine.run (fun () ->
         let counter = ref 0 in
         let obj = Kobj.make ~name:"svc-obj" (Widget counter) in
         let service = Port.create ~name:"svc" () in
         Kobj.reference obj;
         Port.set_object service obj;
         let during = ref 0 in
         let reg = Mig.make_registry () in
         Mig.register reg ~id:1 ~name:"probe" (fun o _args ->
             (match o with
             | Some o -> during := Kobj.ref_count o
             | None -> ());
             Ok []);
         let stop = ref false in
         let server =
           Engine.spawn ~name:"server" (fun () ->
               Mig.serve_loop ~stop:(fun () -> !stop) reg service)
         in
         let base = Kobj.ref_count obj in
         (match Mig.call service ~id:1 [] with
         | Ok _ -> ()
         | Error _ -> Alcotest.fail "rpc failed");
         check_int "one extra ref during the operation" (base + 1) !during;
         check_int "reference released after the operation" base
           (Kobj.ref_count obj);
         stop := true;
         (* Destroying the port releases the pointer's object reference;
            only the creator's reference remains for us to drop. *)
         Port.destroy service;
         Engine.join server;
         Port.release service;
         Kobj.release obj))

let test_rpc_batched_server () =
  ignore
    (Engine.run (fun () ->
         let reg = Mig.make_registry () in
         Mig.register reg ~id:1 ~name:"double" (fun _obj args ->
             match args with
             | [ Port.Int n ] -> Ok [ Port.Int (2 * n) ]
             | _ -> Error Mig.err_bad_arguments);
         let service = Port.create ~name:"service" () in
         let stop = ref false in
         let server =
           Engine.spawn ~name:"server" (fun () ->
               Mig.serve_loop ~stop:(fun () -> !stop) ~batch:4 reg service)
         in
         let clients =
           List.init 3 (fun i ->
               Engine.spawn ~name:(Printf.sprintf "c%d" i) (fun () ->
                   for n = 1 to 5 do
                     match Mig.call service ~id:1 [ Port.Int n ] with
                     | Ok [ Port.Int r ] when r = 2 * n -> ()
                     | _ -> Engine.fatal "batched rpc wrong reply"
                   done))
         in
         List.iter Engine.join clients;
         stop := true;
         Port.destroy service;
         Engine.join server;
         Port.release service))

let test_rpc_cached_reply_port () =
  ignore
    (Engine.run (fun () ->
         let reg = Mig.make_registry () in
         Mig.register reg ~id:1 ~name:"echo" (fun _obj args -> Ok args);
         let service = Port.create ~name:"service" () in
         let stop = ref false in
         let server =
           Engine.spawn ~name:"server" (fun () ->
               Mig.serve_loop ~stop:(fun () -> !stop) reg service)
         in
         (* One reply port reused across calls — the per-call
            create/destroy disappears from the client's hot path. *)
         let reply_port = Port.create ~name:"reply" ~queue_limit:1 () in
         let base = Port.ref_count reply_port in
         for n = 1 to 4 do
           match Mig.call ~reply_port service ~id:1 [ Port.Int n ] with
           | Ok [ Port.Int r ] when r = n -> ()
           | _ -> Engine.fatal "cached-reply rpc failed"
         done;
         check_bool "reply port still live" true (Port.is_active reply_port);
         check_int "no reply-port references leaked across calls" base
           (Port.ref_count reply_port);
         stop := true;
         Port.destroy service;
         Engine.join server;
         Port.release service;
         Port.destroy reply_port;
         Port.release reply_port))

let test_rpc_drain_answers_in_flight () =
  ignore
    (Engine.run (fun () ->
         let reg = Mig.make_registry () in
         Mig.register reg ~id:1 ~name:"echo" (fun _obj args -> Ok args);
         let service = Port.create ~name:"service" () in
         let outcome = ref None in
         let client =
           Engine.spawn ~name:"client" (fun () ->
               outcome := Some (Mig.call ~poll:0 service ~id:1 [ Port.Int 7 ]))
         in
         (* Let the request land in the queue with no server running,
            then drain: the client must get err_deactivated, not sleep
            forever on its reply port. *)
         wait_until (fun () -> Port.queued service > 0);
         let n = Mig.drain service in
         check_int "one in-flight request drained" 1 n;
         Engine.join client;
         (match !outcome with
         | Some (Error (`Server_failure code)) ->
             check_int "deactivated" Mig.err_deactivated code
         | _ -> Alcotest.fail "drained client not answered err_deactivated");
         Port.release service))

let test_concurrent_senders_receivers_explored () =
  let v =
    Explore.run ~cpus:4
      ~seeds:(List.init 20 (fun i -> i + 1))
      (fun () ->
        let p = Port.create ~queue_limit:4 () in
        let received = Engine.Cell.make 0 in
        let senders =
          List.init 3 (fun i ->
              Engine.spawn ~name:(Printf.sprintf "s%d" i) (fun () ->
                  for j = 1 to 5 do
                    match
                      Port.send p
                        { Port.msg_op = (i * 10) + j; reply_to = None; body = [] }
                    with
                    | Ok () -> ()
                    | Error `Dead_port -> Engine.fatal "send failed"
                  done))
        in
        let receivers =
          List.init 2 (fun i ->
              Engine.spawn ~name:(Printf.sprintf "r%d" i) (fun () ->
                  let continue = ref true in
                  while !continue do
                    if Engine.Cell.get received >= 15 then continue := false
                    else
                      match Port.try_receive p with
                      | Ok _ -> ignore (Engine.Cell.fetch_and_add received 1)
                      | Error `Would_block -> Engine.pause ()
                      | Error `Dead_port -> continue := false
                  done))
        in
        List.iter Engine.join senders;
        List.iter Engine.join receivers;
        if Engine.Cell.get received <> 15 then
          Engine.fatal "messages lost or duplicated")
  in
  check_bool "all messages delivered exactly once" true
    (Explore.all_completed v)

let () =
  Alcotest.run "ipc"
    [
      ( "ports",
        [
          Alcotest.test_case "send/receive" `Quick test_send_receive;
          Alcotest.test_case "receive blocks" `Quick
            test_receive_blocks_until_send;
          Alcotest.test_case "send blocks when full" `Quick
            test_send_blocks_when_full;
          Alcotest.test_case "dead port" `Quick test_dead_port_fails;
          Alcotest.test_case "destroy wakes receiver" `Quick
            test_destroy_wakes_blocked_receiver;
          Alcotest.test_case "batched receive" `Quick test_receive_batch;
          Alcotest.test_case "batched receive blocks" `Quick
            test_receive_batch_blocks_until_send;
          Alcotest.test_case "destroy_drain returns in-flight" `Quick
            test_destroy_drain_returns_in_flight;
        ] );
      ( "references",
        [
          Alcotest.test_case "translation + deactivation" `Quick
            test_translation_and_deactivation;
          Alcotest.test_case "message carries refs" `Quick
            test_message_carries_port_reference;
          Alcotest.test_case "destroy releases queued refs" `Quick
            test_destroy_releases_queued_refs;
        ] );
      ( "rpc",
        [
          Alcotest.test_case "roundtrip" `Quick test_rpc_roundtrip;
          Alcotest.test_case "object reference management" `Quick
            test_rpc_object_reference_management;
          Alcotest.test_case "batched server" `Quick test_rpc_batched_server;
          Alcotest.test_case "cached reply port" `Quick
            test_rpc_cached_reply_port;
          Alcotest.test_case "drain answers in-flight" `Quick
            test_rpc_drain_answers_in_flight;
          Alcotest.test_case "concurrent senders/receivers" `Quick
            test_concurrent_senders_receivers_explored;
        ] );
    ]
