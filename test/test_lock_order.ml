(* Lock-order conventions (section 5): the class-rank discipline checker,
   uid-ordered pairs, the backout protocol's capped backoff, and the
   per-run reset of the checker's held stacks. *)

module Engine = Mach_sim.Sim_engine
module Explore = Mach_sim.Sim_explore
module Run_reset = Mach_core.Run_reset
module K = Mach_ksync.Ksync

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec at i = i + m <= n && (String.sub s i m = sub || at (i + 1)) in
  m = 0 || at 0

let in_sim f =
  let result = ref None in
  ignore (Engine.run (fun () -> result := Some (f ())));
  Option.get !result

(* The fixed fix: acquiring rank 2 while the stack holds [rank 3; rank 1]
   must be flagged against the rank-3 class even though the most recent
   acquisition is the rank-1 class. *)
let test_deep_stack_violation () =
  in_sim (fun () ->
      K.Order.clear_violations ();
      let low = K.Order.define_class ~name:"low" ~rank:1 in
      let mid = K.Order.define_class ~name:"mid" ~rank:2 in
      let high = K.Order.define_class ~name:"high" ~rank:3 in
      K.Order.note_acquire high;
      (* low-after-high is the first violation; it leaves the stack as
         [low; high] with the lower rank on top *)
      K.Order.note_acquire low;
      check_int "low-after-high flagged" 1 (List.length (K.Order.violations ()));
      (* top of stack is rank 1 < 2: only a whole-stack comparison sees
         the rank-3 hold underneath *)
      K.Order.note_acquire mid;
      (match K.Order.violations () with
      | v :: _ ->
          check_bool "names the offending class" true (contains v "high");
          check_bool "names its rank" true (contains v "rank 3");
          check_bool "names the acquired class" true (contains v "mid")
      | [] -> Alcotest.fail "deep-stack violation not recorded");
      check_int "both violations recorded" 2
        (List.length (K.Order.violations ()));
      K.Order.note_release mid;
      K.Order.note_release low;
      K.Order.note_release high;
      K.Order.clear_violations ())

let test_release_not_held () =
  in_sim (fun () ->
      K.Order.clear_violations ();
      let c = K.Order.define_class ~name:"phantom" ~rank:1 in
      K.Order.note_release c;
      (match K.Order.violations () with
      | [ v ] ->
          check_bool "flags release-not-held" true
            (contains v "does not hold");
          check_bool "names the class" true (contains v "phantom")
      | vs -> Alcotest.failf "expected 1 violation, got %d" (List.length vs));
      K.Order.clear_violations ())

(* A stale stack from a previous run must not produce phantom violations
   in the next one: the Run_reset hook clears every thread's stack. *)
let test_per_run_reset () =
  in_sim (fun () ->
      K.Order.clear_violations ();
      let high = K.Order.define_class ~name:"stale-high" ~rank:9 in
      (* leak a hold (a buggy scenario that never released) *)
      K.Order.note_acquire high);
  in_sim (fun () ->
      let low = K.Order.define_class ~name:"fresh-low" ~rank:1 in
      K.Order.note_acquire low;
      K.Order.note_release low;
      check_int "no phantom violation from the previous run" 0
        (List.length (K.Order.violations ()));
      K.Order.clear_violations ())

let test_reset_held_direct () =
  in_sim (fun () ->
      K.Order.clear_violations ();
      let high = K.Order.define_class ~name:"h" ~rank:5 in
      let low = K.Order.define_class ~name:"l" ~rank:1 in
      K.Order.note_acquire high;
      K.Order.reset_held ();
      K.Order.note_acquire low;
      check_int "reset cleared the held stack" 0
        (List.length (K.Order.violations ()));
      K.Order.note_release low;
      K.Order.clear_violations ())

let test_lock_both_by_uid_orders () =
  in_sim (fun () ->
      let a = K.Slock.make ~name:"pair-a" () in
      let b = K.Slock.make ~name:"pair-b" () in
      check_bool "distinct uids" true (K.Slock.uid a <> K.Slock.uid b);
      (* both argument orders acquire both locks *)
      K.Order.lock_both_by_uid a b;
      check_bool "a locked" true (K.Slock.is_locked a);
      check_bool "b locked" true (K.Slock.is_locked b);
      K.Order.unlock_both a b;
      K.Order.lock_both_by_uid b a;
      check_bool "a locked (swapped)" true (K.Slock.is_locked a);
      check_bool "b locked (swapped)" true (K.Slock.is_locked b);
      K.Order.unlock_both b a;
      (* the same lock twice is a single acquisition, not a recursion *)
      K.Order.lock_both_by_uid a a;
      check_bool "self pair locked once" true (K.Slock.is_locked a);
      K.Order.unlock_both a a;
      check_bool "self pair released" false (K.Slock.is_locked a))

(* Two threads running the backout protocol against an opposing-order
   holder: must complete on every schedule (the protocol exists for
   exactly this), and the capped backoff keeps retries bounded. *)
let test_backout_backs_off () =
  let backouts = ref (-1) in
  in_sim (fun () ->
      let first = K.Slock.make ~name:"bo-first" () in
      let second = K.Slock.make ~name:"bo-second" () in
      (* Hold [second] until the contender's single-attempt try has
         observably failed twice (visible in the lock's try stats), so the
         protocol must back off at least twice regardless of timing. *)
      let held = Engine.Cell.make ~name:"bo-held" 0 in
      let holder =
        Engine.spawn ~name:"holder" (fun () ->
            K.Slock.lock second;
            Engine.Cell.set held 1;
            let stats = K.Slock.stats second in
            Engine.spin_hint "bo-failed-tries";
            while Mach_core.Lock_stats.failed_tries stats < 2 do
              Engine.pause ()
            done;
            K.Slock.unlock second)
      in
      let contender =
        Engine.spawn ~name:"contender" (fun () ->
            Engine.spin_hint "bo-held";
            while Engine.Cell.get held = 0 do
              Engine.pause ()
            done;
            backouts := K.Order.backout_lock_pair ~first ~second;
            K.Order.unlock_both first second)
      in
      Engine.join holder;
      Engine.join contender);
  check_bool "protocol completed" true (!backouts >= 0);
  check_bool "backed out at least twice" true (!backouts >= 2)

let test_backout_explored () =
  let v =
    Explore.run ~cpus:3
      ~seeds:(List.init 20 (fun i -> i + 1))
      (fun () ->
        let first = K.Slock.make ~name:"x-first" () in
        let second = K.Slock.make ~name:"x-second" () in
        let t1 =
          Engine.spawn ~name:"fwd" (fun () ->
              K.Slock.lock first;
              Engine.cycles 50;
              if K.Slock.try_lock second then K.Slock.unlock second;
              K.Slock.unlock first)
        in
        let t2 =
          Engine.spawn ~name:"bwd" (fun () ->
              ignore (K.Order.backout_lock_pair ~first:second ~second:first);
              K.Order.unlock_both second first)
        in
        Engine.join t1;
        Engine.join t2)
  in
  check_bool "no deadlocks under exploration" true (Explore.all_completed v)

let () =
  Alcotest.run "lock_order"
    [
      ( "rank discipline",
        [
          Alcotest.test_case "deep-stack violation" `Quick
            test_deep_stack_violation;
          Alcotest.test_case "release not held" `Quick test_release_not_held;
          Alcotest.test_case "per-run reset" `Quick test_per_run_reset;
          Alcotest.test_case "reset_held direct" `Quick test_reset_held_direct;
        ] );
      ( "pairs and backout",
        [
          Alcotest.test_case "lock_both_by_uid orders" `Quick
            test_lock_both_by_uid_orders;
          Alcotest.test_case "backout backs off" `Quick test_backout_backs_off;
          Alcotest.test_case "backout explored" `Quick test_backout_explored;
        ] );
    ]
