(* The scalable queue-lock suite (lib/locks): lockstep conformance
   against the flat simple-lock model, mutual-exclusion and FIFO-order
   properties, big-reader semantics, complex-lock-over-queue-lock
   composition, an exhaustive model-checking pass over the MCS handoff,
   and the drop-handoff chaos class with its "lost handoff" diagnosis. *)

module Engine = Mach_sim.Sim_engine
module Config = Mach_sim.Sim_config
module K = Mach_ksync.Ksync
module Lock_proto = Mach_core.Lock_proto
module Mc = Mach_mc.Mc
open Test_support

let mutex_factories =
  [
    K.Locks.ticket;
    K.Locks.mcs;
    K.Locks.anderson;
    K.Locks.brlock_writer;
    K.Locks.scache_writer;
  ]

let factory_name = Lock_proto.name

(* ------------------------------------------------------------------ *)
(* Lockstep conformance (qcheck): a queue-lock Slock and a flat Slock    *)
(* driven by the same op script must agree on every observable.          *)
(* ------------------------------------------------------------------ *)

let conformance_script proto script =
  in_sim (fun () ->
      let queued = K.Slock.make ~name:"queued" ~proto () in
      let flat = K.Slock.make ~name:"flat" () in
      let held = ref false in
      List.iter
        (fun op ->
          (* Map the raw int to an op legal in the current state, as the
             model-based tests do: shrinking stays structure-free. *)
          match (!held, op mod 4) with
          | false, (0 | 1) ->
              K.Slock.lock queued;
              K.Slock.lock flat;
              held := true
          | false, 2 ->
              let a = K.Slock.try_lock queued in
              let b = K.Slock.try_lock flat in
              if a <> b then
                Alcotest.failf "try_lock disagreement (free): %b vs %b" a b;
              held := a
          | true, (0 | 1) ->
              K.Slock.unlock queued;
              K.Slock.unlock flat;
              held := false
          | true, 2 ->
              (* Both are held by us; a try must fail on both. *)
              let a = K.Slock.try_lock queued in
              let b = K.Slock.try_lock flat in
              if a || b then
                Alcotest.failf "try_lock disagreement (held): %b vs %b" a b
          | _, _ ->
              let a = K.Slock.is_locked queued in
              let b = K.Slock.is_locked flat in
              if a <> b then
                Alcotest.failf "is_locked disagreement: %b vs %b" a b)
        script;
      if !held then begin
        K.Slock.unlock queued;
        K.Slock.unlock flat
      end;
      true)

let conformance_tests =
  List.map
    (fun proto ->
      QCheck_alcotest.to_alcotest
        (QCheck.Test.make ~count:120
           ~name:(Printf.sprintf "lockstep: %s == flat" (factory_name proto))
           QCheck.(list_of_size (Gen.int_range 1 40) (int_range 0 11))
           (conformance_script proto)))
    mutex_factories

(* ------------------------------------------------------------------ *)
(* Mutual exclusion under contention                                     *)
(* ------------------------------------------------------------------ *)

(* The critical section reads, pauses and writes through shared cells
   (every access a preemption point), plus an occupancy flag: any
   exclusion failure shows up as a lost update or a double entry. *)
let exclusion_scenario ~proto ~workers ~iters () =
  let l = K.Slock.make ~name:"excl" ~proto () in
  let count = Engine.Cell.make ~name:"count" 0 in
  let inside = Engine.Cell.make ~name:"inside" 0 in
  let ts =
    List.init workers (fun i ->
        Engine.spawn ~name:(Printf.sprintf "w%d" i) (fun () ->
            for _ = 1 to iters do
              K.Slock.lock l;
              if Engine.Cell.get inside <> 0 then
                Engine.fatal "two threads inside the critical section";
              Engine.Cell.set inside 1;
              let v = Engine.Cell.get count in
              Engine.cycles 5;
              Engine.Cell.set count (v + 1);
              Engine.Cell.set inside 0;
              K.Slock.unlock l
            done))
  in
  List.iter Engine.join ts;
  check_int "no lost update" (workers * iters) (Engine.Cell.get count)

let test_mutual_exclusion () =
  List.iter
    (fun proto ->
      List.iter
        (fun seed ->
          let cfg = Config.exploration ~cpus:4 ~seed () in
          in_sim ~cfg (exclusion_scenario ~proto ~workers:4 ~iters:6))
        [ 1; 2; 3 ])
    mutex_factories

(* ------------------------------------------------------------------ *)
(* FIFO grant order (ticket, MCS, Anderson are all FIFO by construction) *)
(* ------------------------------------------------------------------ *)

let test_fifo_order () =
  List.iter
    (fun proto ->
      let arrivals, grants =
        in_sim
          ~cfg:{ Config.default with Config.cpus = 6 }
          (fun () ->
            let l = K.Slock.make ~name:"fifo" ~proto () in
            let arrivals = ref [] and grants = ref [] in
            K.Slock.lock l;
            let ts =
              List.init 4 (fun i ->
                  (* Each waiter bound to its own cpu: dispatches happen
                     at the same clock, so the 200-cycle stagger alone
                     fixes the arrival order, and under the Timed policy
                     the gaps dwarf the few cycles between the arrival
                     note and the enqueue instruction — the noted order
                     IS the enqueue order. *)
                  Engine.spawn ~bound:(i + 1)
                    ~name:(Printf.sprintf "w%d" i)
                    (fun () ->
                      Engine.cycles (200 * (i + 1));
                      (* End the slice so the arrival note below runs in
                         clock order, not spawn-tie order: Engine.cycles
                         is not a preemption point. *)
                      Engine.pause ();
                      arrivals := i :: !arrivals;
                      K.Slock.lock l;
                      grants := i :: !grants;
                      Engine.cycles 20;
                      K.Slock.unlock l))
            in
            (* Hold until every waiter is provably enqueued. *)
            Engine.cycles 5_000;
            K.Slock.unlock l;
            List.iter Engine.join ts;
            (List.rev !arrivals, List.rev !grants))
      in
      Alcotest.(check (list int))
        (Printf.sprintf "%s: all four waiters arrived" (factory_name proto))
        [ 0; 1; 2; 3 ]
        (List.sort compare arrivals);
      Alcotest.(check (list int))
        (Printf.sprintf "%s grants in arrival order" (factory_name proto))
        arrivals grants)
    [ K.Locks.ticket; K.Locks.mcs; K.Locks.anderson ]

(* ------------------------------------------------------------------ *)
(* Big-reader lock semantics                                             *)
(* ------------------------------------------------------------------ *)

(* Writers keep two cells equal; readers snapshot both under the read
   lock.  Any reader observing a torn pair proves a writer ran inside a
   read-side section. *)
let brlock_scenario ~readers ~writers ~iters () =
  let module B = K.Locks.Brlock in
  let l = B.make ~name:"br" in
  let a = Engine.Cell.make ~name:"a" 0 in
  let b = Engine.Cell.make ~name:"b" 0 in
  let rs =
    List.init readers (fun i ->
        Engine.spawn ~name:(Printf.sprintf "r%d" i) (fun () ->
            for _ = 1 to iters do
              B.with_read l (fun () ->
                  let x = Engine.Cell.get a in
                  Engine.cycles 3;
                  let y = Engine.Cell.get b in
                  if x <> y then Engine.fatal "torn read under read lock")
            done))
  in
  let ws =
    List.init writers (fun i ->
        Engine.spawn ~name:(Printf.sprintf "wr%d" i) (fun () ->
            for _ = 1 to iters do
              B.with_write l (fun () ->
                  let v = Engine.Cell.get a + 1 in
                  Engine.Cell.set a v;
                  Engine.cycles 3;
                  Engine.Cell.set b v)
            done))
  in
  List.iter Engine.join rs;
  List.iter Engine.join ws;
  check_int "every write landed" (writers * iters) (Engine.Cell.get a);
  check_bool "drained" false (B.is_locked l)

let test_brlock_exclusion () =
  List.iter
    (fun seed ->
      let cfg = Config.exploration ~cpus:4 ~seed () in
      in_sim ~cfg (brlock_scenario ~readers:3 ~writers:2 ~iters:5))
    [ 1; 2; 3; 4 ]

(* The read-mostly win: concurrent readers on their own per-cpu slots
   never disturb each other, while readers serializing on one ttas lock
   invalidate every other reader's cached copy on each release — so the
   distributed lock must cost markedly fewer bus transactions for the
   same all-reader workload. *)
let test_brlock_read_local () =
  let runs reads =
    let cfg = { Config.default with Config.cpus = 4 } in
    let stats =
      Engine.run ~cfg (fun () ->
          let ts =
            List.init 4 (fun i ->
                Engine.spawn ~name:(Printf.sprintf "r%d" i) reads)
          in
          List.iter Engine.join ts)
    in
    stats.Engine.bus_transactions
  in
  let module B = K.Locks.Brlock in
  let br = B.make ~name:"br" in
  let brlock_bus =
    runs (fun () ->
        for _ = 1 to 30 do
          B.with_read br (fun () -> Engine.cycles 5)
        done)
  in
  let tt = K.Slock.make ~name:"tt" ~protocol:Mach_core.Spin.Ttas () in
  let ttas_bus =
    runs (fun () ->
        for _ = 1 to 30 do
          K.Slock.with_lock tt (fun () -> Engine.cycles 5)
        done)
  in
  if brlock_bus >= ttas_bus then
    Alcotest.failf "brlock reads not bus-quiet: %d >= %d bus txns" brlock_bus
      ttas_bus

(* ------------------------------------------------------------------ *)
(* Complex lock over a queue-lock interlock                              *)
(* ------------------------------------------------------------------ *)

let test_complex_over_mcs () =
  let cfg = Config.exploration ~cpus:4 ~seed:7 () in
  in_sim ~cfg (fun () ->
      let cl = K.Clock.make ~name:"cl" ~proto:K.Locks.mcs ~can_sleep:false () in
      let c = Engine.Cell.make ~name:"c" 0 in
      let ts =
        List.init 3 (fun i ->
            Engine.spawn ~name:(Printf.sprintf "t%d" i) (fun () ->
                for _ = 1 to 4 do
                  K.Clock.lock_write cl;
                  let v = Engine.Cell.get c in
                  Engine.cycles 2;
                  Engine.Cell.set c (v + 1);
                  K.Clock.lock_done cl;
                  K.Clock.lock_read cl;
                  ignore (Engine.Cell.get c);
                  K.Clock.lock_done cl
                done))
      in
      List.iter Engine.join ts;
      check_int "writes serialized" 12 (Engine.Cell.get c))

(* ------------------------------------------------------------------ *)
(* Exhaustive model checking: MCS handoff at 2 cpus                      *)
(* ------------------------------------------------------------------ *)

let mcs_mc_scenario () =
  let l = K.Slock.make ~name:"m" ~proto:K.Locks.mcs () in
  let c = Engine.Cell.make ~name:"c" 0 in
  let ts =
    List.init 2 (fun i ->
        Engine.spawn ~name:(Printf.sprintf "w%d" i) (fun () ->
            K.Slock.lock l;
            ignore (Engine.Cell.fetch_and_add c 1);
            K.Slock.unlock l))
  in
  List.iter Engine.join ts;
  if Engine.Cell.get c <> 2 then Engine.fatal "lost increment"

let test_mc_mcs_handoff () =
  let r = Mc.check ~cpus:2 ~mode:Mc.Dpor mcs_mc_scenario in
  check_bool "complete" true r.Mc.complete;
  check_bool "verified" true r.Mc.verified;
  check_bool "explored more than one schedule" true
    (r.Mc.stats.Mc.executions > 1)

(* ------------------------------------------------------------------ *)
(* Chaos: dropped handoff -> spin deadlock diagnosed as a lost handoff   *)
(* ------------------------------------------------------------------ *)

let test_drop_handoff_detected () =
  let faults =
    { Config.no_faults with Config.drop_handoff = 1 (* every handoff *) }
  in
  let cfg =
    {
      (Config.exploration ~cpus:3 ~seed:5 ()) with
      Config.faults;
      track_waits = true;
      watchdog_steps = 30_000;
    }
  in
  match
    Engine.run_outcome ~cfg (fun () ->
        Mach_chaos.Chaos_scenarios.mcs_handoff ~workers:3 ())
  with
  | Engine.Deadlocked (Engine.Spin_deadlock, report) ->
      check_bool "report names the lost handoff" true
        (contains report "lost handoff");
      let chaos = Option.get (Engine.last_chaos ()) in
      check_bool "handoff drops counted" true
        (chaos.Engine.dropped_handoffs > 0)
  | Engine.Deadlocked (Engine.Sleep_deadlock, _) ->
      Alcotest.fail "expected a spin deadlock, got a sleep deadlock"
  | Engine.Completed _ -> Alcotest.fail "expected a deadlock, ran clean"
  | Engine.Panicked msg -> Alcotest.failf "panic: %s" msg
  | Engine.Hit_step_limit -> Alcotest.fail "hit step limit"

(* With the class disabled the chaos RNG must not be consumed: stats are
   byte-identical to a run with no faults record at all. *)
let test_drop_handoff_zero_draw () =
  let scenario () = Mach_chaos.Chaos_scenarios.mcs_handoff ~workers:3 () in
  let base = Config.exploration ~cpus:3 ~seed:11 () in
  let off =
    { base with Config.faults = { Config.no_faults with Config.drop_wakeup = 0 } }
  in
  let a = Format.asprintf "%a" Engine.pp_stats (Engine.run ~cfg:base scenario) in
  let b = Format.asprintf "%a" Engine.pp_stats (Engine.run ~cfg:off scenario) in
  Alcotest.(check string) "byte-identical stats" a b

(* ------------------------------------------------------------------ *)
(* scache RW lock (lib/locks/scache_rwlock)                              *)
(* ------------------------------------------------------------------ *)

module Scenarios = Mach_kernel.Scenarios

(* Writers keep two cells equal; readers snapshot both under the read
   side.  Any torn pair proves a writer ran inside a read-side section
   (the sweep failed to drain a counted reader). *)
let scache_scenario ~readers ~writers ~iters () =
  let module S = K.Locks.Scache in
  let l = S.make ~name:"sc" in
  let a = Engine.Cell.make ~name:"a" 0 in
  let b = Engine.Cell.make ~name:"b" 0 in
  let rs =
    List.init readers (fun i ->
        Engine.spawn ~name:(Printf.sprintf "r%d" i) (fun () ->
            for _ = 1 to iters do
              S.with_read l (fun () ->
                  let x = Engine.Cell.get a in
                  Engine.cycles 3;
                  let y = Engine.Cell.get b in
                  if x <> y then Engine.fatal "torn read under scache read side")
            done))
  in
  let ws =
    List.init writers (fun i ->
        Engine.spawn ~name:(Printf.sprintf "wr%d" i) (fun () ->
            for _ = 1 to iters do
              S.with_write l (fun () ->
                  let v = Engine.Cell.get a + 1 in
                  Engine.Cell.set a v;
                  Engine.cycles 3;
                  Engine.Cell.set b v)
            done))
  in
  List.iter Engine.join rs;
  List.iter Engine.join ws;
  check_int "every write landed" (writers * iters) (Engine.Cell.get a);
  check_bool "drained" false (S.is_locked l)

let test_scache_exclusion () =
  List.iter
    (fun seed ->
      let cfg = Config.exploration ~cpus:4 ~seed () in
      in_sim ~cfg (scache_scenario ~readers:3 ~writers:2 ~iters:5))
    [ 1; 2; 3; 4 ]

(* ------------------------------------------------------------------ *)
(* Exhaustive model checking: the scache handoff matrix at 2 cpus        *)
(* ------------------------------------------------------------------ *)

(* Reader vs writer: the ReadCounted->back-out transition and the
   ExcLockPending sweep must never admit both sides at once, on ANY
   schedule (the occupancy cell makes a violation fatal). *)
let test_mc_scache_rw () =
  let r = Mc.check ~cpus:2 ~mode:Mc.Dpor Scenarios.scache_rw in
  check_bool "complete" true r.Mc.complete;
  check_bool "verified" true r.Mc.verified;
  check_bool "explored more than one schedule" true
    (r.Mc.stats.Mc.executions > 1)

(* Writer vs writer: the FIFO ticket gate plus the Free->ExcLockPending
   CAS must serialize every schedule (the CAS invariant fataling is part
   of what is being checked). *)
let test_mc_scache_ww () =
  let r = Mc.check ~cpus:2 ~mode:Mc.Dpor Scenarios.scache_ww in
  check_bool "complete" true r.Mc.complete;
  check_bool "verified" true r.Mc.verified;
  check_bool "explored more than one schedule" true
    (r.Mc.stats.Mc.executions > 1)

(* Reader vs reader: no schedule may fail, and at least one schedule
   must witness both readers inside simultaneously — per-cpu refcount
   slots do not serialize the read side.  The witness accumulates across
   executions (any one execution may happen to serialize). *)
let test_mc_scache_rr () =
  let witnessed = ref false in
  let r =
    Mc.check ~cpus:2 ~mode:Mc.Dpor (fun () ->
        if Scenarios.scache_pair ~m1:`Read ~m2:`Read ~expect_parallel:true ()
        then witnessed := true)
  in
  check_bool "complete" true r.Mc.complete;
  check_bool "verified" true r.Mc.verified;
  check_bool "some schedule interleaved the two readers" true !witnessed

(* ------------------------------------------------------------------ *)
(* Brlock writer starvation: the FIFO writer-pending gate                *)
(* ------------------------------------------------------------------ *)

(* A greedy writer in a tight re-acquire loop plus a herd of readers,
   against one victim writer that wants the lock exactly once.  Without
   the pending gate the victim must win an unfair test-and-set race
   against the greedy writer while fresh readers slip in at every
   release; its overtake count (acquisitions completed while it waits)
   grows with the workload.  With the gate the victim enqueues, readers
   hold off, and the greedy writer falls in line behind it: only
   operations already in flight (plus at most one fast-path barge) can
   finish first. *)
let starvation_overtakes ~seed =
  let cfg = Config.exploration ~cpus:6 ~seed () in
  in_sim ~cfg (fun () ->
      let module B = K.Locks.Brlock in
      let l = B.make ~name:"starve" in
      let ops = Engine.Cell.make ~name:"ops" 0 in
      let victim_done = Engine.Cell.make ~name:"vdone" 0 in
      let greedy =
        Engine.spawn ~name:"greedy" (fun () ->
            while Engine.Cell.get victim_done = 0 do
              B.with_write l (fun () ->
                  ignore (Engine.Cell.fetch_and_add ops 1);
                  Engine.cycles 5)
            done)
      in
      let readers =
        List.init 4 (fun i ->
            Engine.spawn ~name:(Printf.sprintf "r%d" i) (fun () ->
                while Engine.Cell.get victim_done = 0 do
                  B.with_read l (fun () ->
                      ignore (Engine.Cell.fetch_and_add ops 1);
                      Engine.cycles 2)
                done))
      in
      let overtakes = ref 0 in
      let victim =
        Engine.spawn ~name:"victim" (fun () ->
            (* Let the loop establish itself first. *)
            Engine.cycles 400;
            let before = Engine.Cell.get ops in
            ignore (B.write_lock l);
            overtakes := Engine.Cell.get ops - before;
            B.write_unlock l;
            Engine.Cell.set victim_done 1)
      in
      Engine.join victim;
      Engine.join greedy;
      List.iter Engine.join readers;
      !overtakes)

(* In-flight bound: greedy writer + 4 readers + one barge.  The old
   tas-race brlock blows far past this on these seeds (dozens of
   overtakes); the FIFO gate keeps every seed under it. *)
let test_brlock_writer_no_starvation () =
  List.iter
    (fun seed ->
      let n = starvation_overtakes ~seed in
      if n > 6 then
        Alcotest.failf "seed %d: %d acquisitions overtook the waiting writer"
          seed n)
    [ 1; 2; 3; 4; 5 ]

(* ------------------------------------------------------------------ *)
(* Chaos: dropped scache grant -> lost handoff on the writer gate        *)
(* ------------------------------------------------------------------ *)

let test_scache_drop_handoff_detected () =
  let faults =
    { Config.no_faults with Config.drop_handoff = 1 (* every handoff *) }
  in
  let cfg =
    {
      (Config.exploration ~cpus:3 ~seed:5 ()) with
      Config.faults;
      track_waits = true;
      watchdog_steps = 30_000;
    }
  in
  match
    Engine.run_outcome ~cfg (fun () ->
        Mach_chaos.Chaos_scenarios.scache_handoff ~workers:3 ())
  with
  | Engine.Deadlocked (Engine.Spin_deadlock, report) ->
      check_bool "report names the lost handoff" true
        (contains report "lost handoff");
      let chaos = Option.get (Engine.last_chaos ()) in
      check_bool "handoff drops counted" true
        (chaos.Engine.dropped_handoffs > 0)
  | Engine.Deadlocked (Engine.Sleep_deadlock, _) ->
      Alcotest.fail "expected a spin deadlock, got a sleep deadlock"
  | Engine.Completed _ -> Alcotest.fail "expected a deadlock, ran clean"
  | Engine.Panicked msg -> Alcotest.failf "panic: %s" msg
  | Engine.Hit_step_limit -> Alcotest.fail "hit step limit"

(* Zero-draw identity for the scache handoff site: with the class
   disabled, the release-path hook must not consume chaos RNG. *)
let test_scache_drop_handoff_zero_draw () =
  let scenario () = Mach_chaos.Chaos_scenarios.scache_handoff ~workers:3 () in
  let base = Config.exploration ~cpus:3 ~seed:11 () in
  let off =
    { base with Config.faults = { Config.no_faults with Config.drop_wakeup = 0 } }
  in
  let a = Format.asprintf "%a" Engine.pp_stats (Engine.run ~cfg:base scenario) in
  let b = Format.asprintf "%a" Engine.pp_stats (Engine.run ~cfg:off scenario) in
  Alcotest.(check string) "byte-identical stats" a b

(* ------------------------------------------------------------------ *)
(* Range locks (lib/locks/range_lock)                                    *)
(* ------------------------------------------------------------------ *)

module RL = Mach_locks.Range_lock

(* Disjoint ranges never conflict: a single thread can hold both (a
   blocking acquire would deadlock the simulation and trip the
   watchdog), and try_acquire distinguishes overlap from disjointness. *)
let test_range_disjoint_nonblocking () =
  in_sim (fun () ->
      let l = K.Rlock.make ~name:"rdis" () in
      let a = K.Rlock.acquire l ~lo:0 ~hi:4 RL.Write in
      let b = K.Rlock.acquire l ~lo:8 ~hi:12 RL.Write in
      check_int "two holders" 2 (List.length (K.Rlock.holders l));
      check_bool "overlap refused" true
        (K.Rlock.try_acquire l ~lo:2 ~hi:10 RL.Write = None);
      (match K.Rlock.try_acquire l ~lo:4 ~hi:8 RL.Write with
      | Some c -> K.Rlock.release l c
      | None -> Alcotest.fail "disjoint try_acquire refused");
      K.Rlock.release l a;
      K.Rlock.release l b;
      check_int "drained" 0 (List.length (K.Rlock.holders l)))

(* Readers share an overlapping range; a writer waits for both. *)
let test_range_read_sharing () =
  in_sim (fun () ->
      let l = K.Rlock.make ~name:"rshare" () in
      let r1 = K.Rlock.acquire l ~lo:0 ~hi:8 RL.Read in
      let r2 = K.Rlock.acquire l ~lo:4 ~hi:12 RL.Read in
      let got = Engine.Cell.make ~name:"got" 0 in
      let w =
        Engine.spawn ~name:"writer" (fun () ->
            let h = K.Rlock.acquire l ~lo:6 ~hi:7 RL.Write in
            Engine.Cell.set got 1;
            K.Rlock.release l h)
      in
      wait_until (fun () -> K.Rlock.waiting_requests l = 1);
      check_int "writer still waiting behind two readers" 0
        (Engine.Cell.get got);
      K.Rlock.release l r1;
      Engine.cycles 50;
      check_int "writer still waiting behind one reader" 0
        (Engine.Cell.get got);
      K.Rlock.release l r2;
      Engine.join w;
      check_int "writer ran after both readers left" 1 (Engine.Cell.get got))

(* An overlapping writer blocks until the holder releases. *)
let test_range_overlap_blocks () =
  in_sim (fun () ->
      let l = K.Rlock.make ~name:"rblk" () in
      let h = K.Rlock.acquire l ~lo:0 ~hi:4 RL.Write in
      let got = Engine.Cell.make ~name:"got" 0 in
      let t =
        Engine.spawn ~name:"waiter" (fun () ->
            let h2 = K.Rlock.acquire l ~lo:2 ~hi:6 RL.Write in
            Engine.Cell.set got 1;
            K.Rlock.release l h2)
      in
      wait_until (fun () -> K.Rlock.waiting_requests l = 1);
      check_int "waiter blocked on overlap" 0 (Engine.Cell.get got);
      K.Rlock.release l h;
      Engine.join t;
      check_int "waiter ran after release" 1 (Engine.Cell.get got))

(* FIFO fairness: a later request must not overtake an earlier waiter it
   conflicts with, even when the later request's range is free right
   now.  Main holds [0,8); A wants [4,12) (blocked on main); B wants
   [8,16) — disjoint from main's hold but overlapping A — so B must wait
   for A, and try_acquire must refuse to barge past A too. *)
let test_range_fifo_no_overtake () =
  in_sim (fun () ->
      let l = K.Rlock.make ~name:"rfifo" () in
      let h = K.Rlock.acquire l ~lo:0 ~hi:8 RL.Write in
      let grants = ref [] in
      let a =
        Engine.spawn ~name:"a" (fun () ->
            let ha = K.Rlock.acquire l ~lo:4 ~hi:12 RL.Write in
            grants := "a" :: !grants;
            Engine.cycles 10;
            K.Rlock.release l ha)
      in
      wait_until (fun () -> K.Rlock.waiting_requests l = 1);
      let b =
        Engine.spawn ~name:"b" (fun () ->
            let hb = K.Rlock.acquire l ~lo:8 ~hi:16 RL.Write in
            grants := "b" :: !grants;
            K.Rlock.release l hb)
      in
      wait_until (fun () -> K.Rlock.waiting_requests l = 2);
      (* [8,10) is held by nobody, but it overlaps waiter A's request:
         granting it would let a newcomer overtake A. *)
      check_bool "try_acquire does not barge past a waiter" true
        (K.Rlock.try_acquire l ~lo:8 ~hi:10 RL.Write = None);
      check_int "no waiter overtook the holder" 0 (List.length !grants);
      K.Rlock.release l h;
      Engine.join a;
      Engine.join b;
      Alcotest.(check (list string))
        "grants in arrival order" [ "a"; "b" ] (List.rev !grants))

(* Mutual exclusion under contention across seeds: overlapping writers
   are serialized (occupancy flag), disjoint writers may interleave, and
   no update is lost either way. *)
let range_exclusion_scenario ~workers ~iters () =
  let l = K.Rlock.make ~name:"rexcl" () in
  let count = Engine.Cell.make ~name:"rcount" 0 in
  let inside = Engine.Cell.make ~name:"rinside" 0 in
  let ts =
    List.init workers (fun i ->
        Engine.spawn ~name:(Printf.sprintf "rw%d" i) (fun () ->
            for it = 1 to iters do
              (* Odd iterations fight over [0,4); even ones take a
                 per-worker disjoint slice. *)
              let lo = if it mod 2 = 1 then 0 else 16 + (4 * i) in
              let h = K.Rlock.acquire l ~lo ~hi:(lo + 4) RL.Write in
              if lo = 0 then begin
                if Engine.Cell.get inside <> 0 then
                  Engine.fatal "two writers inside an overlapping range";
                Engine.Cell.set inside 1;
                (* A plain read-modify-write: safe only because the
                   overlapping range serializes us. *)
                let v = Engine.Cell.get count in
                Engine.cycles 5;
                Engine.Cell.set count (v + 1);
                Engine.Cell.set inside 0
              end
              else Engine.cycles 5;
              K.Rlock.release l h
            done))
  in
  List.iter Engine.join ts;
  check_int "no lost update in the serialized range"
    (workers * ((iters + 1) / 2))
    (Engine.Cell.get count)

let test_range_exclusion () =
  List.iter
    (fun seed ->
      let cfg = Config.exploration ~cpus:4 ~seed () in
      in_sim ~cfg (range_exclusion_scenario ~workers:4 ~iters:4))
    [ 1; 2; 3 ]

let () =
  Alcotest.run "locks"
    [
      ("conformance", conformance_tests);
      ( "properties",
        [
          Alcotest.test_case "mutual exclusion" `Quick test_mutual_exclusion;
          Alcotest.test_case "FIFO grant order" `Quick test_fifo_order;
          Alcotest.test_case "brlock exclusion" `Quick test_brlock_exclusion;
          Alcotest.test_case "brlock reads are bus-quiet" `Quick
            test_brlock_read_local;
          Alcotest.test_case "brlock writer never starves" `Quick
            test_brlock_writer_no_starvation;
          Alcotest.test_case "scache exclusion" `Quick test_scache_exclusion;
          Alcotest.test_case "complex lock over mcs" `Quick
            test_complex_over_mcs;
        ] );
      ( "range",
        [
          Alcotest.test_case "disjoint ranges do not block" `Quick
            test_range_disjoint_nonblocking;
          Alcotest.test_case "readers share, writer waits" `Quick
            test_range_read_sharing;
          Alcotest.test_case "overlap blocks until release" `Quick
            test_range_overlap_blocks;
          Alcotest.test_case "FIFO: no overtaking a waiter" `Quick
            test_range_fifo_no_overtake;
          Alcotest.test_case "exclusion under contention" `Quick
            test_range_exclusion;
        ] );
      ( "mc",
        [
          Alcotest.test_case "mcs handoff exhaustive at 2 cpus" `Quick
            test_mc_mcs_handoff;
          Alcotest.test_case "scache reader/writer serializes (all schedules)"
            `Quick test_mc_scache_rw;
          Alcotest.test_case "scache writer/writer serializes (all schedules)"
            `Quick test_mc_scache_ww;
          Alcotest.test_case "scache readers interleave (some schedule)"
            `Quick test_mc_scache_rr;
        ] );
      ( "chaos",
        [
          Alcotest.test_case "dropped handoff diagnosed" `Quick
            test_drop_handoff_detected;
          Alcotest.test_case "disabled class draws nothing" `Quick
            test_drop_handoff_zero_draw;
          Alcotest.test_case "dropped scache grant diagnosed" `Quick
            test_scache_drop_handoff_detected;
          Alcotest.test_case "scache drop disabled draws nothing" `Quick
            test_scache_drop_handoff_zero_draw;
        ] );
    ]
