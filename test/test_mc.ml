(* Model-checker tests: exhaustive-verification verdicts for the
   section 6 event-wait protocol and the section 7 same-spl rule, a
   golden minimal counterexample for the section 7 deadlock, and the
   mechanics the verdicts rest on (trace round-trip, byte-identical
   replay, preemption bounding, mode agreement, fault-injection
   exclusion). *)

module Mc = Mach_mc.Mc
module Engine = Mach_sim.Sim_engine
module Config = Mach_sim.Sim_config
module Scenarios = Mach_kernel.Scenarios
module Chaos_scenarios = Mach_chaos.Chaos_scenarios
open Test_support

let same_spl ~disciplined () = Scenarios.same_spl_holder ~disciplined ()

let read_file path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let s = really_input_string ic len in
  close_in ic;
  s

(* ------------------------------------------------------------------ *)
(* Exhaustive verification verdicts                                     *)
(* ------------------------------------------------------------------ *)

let test_same_spl_verified () =
  (* Section 7: holding at the interrupt's spl makes the deadlock
     impossible — over EVERY schedule, not a sample of seeds. *)
  let r = Mc.check ~cpus:2 (same_spl ~disciplined:true) in
  check_bool "complete" true r.Mc.complete;
  check_bool "verified" true r.Mc.verified;
  check_bool "no failure" true (r.Mc.failure = None)

let test_event_wait_verified () =
  (* Section 6: the assert_wait / re-test / thread_block protocol never
     loses a wakeup under any interleaving (no fault injection). *)
  let r = Mc.check ~cpus:2 Chaos_scenarios.lost_wakeup_handoff in
  check_bool "complete" true r.Mc.complete;
  check_bool "verified" true r.Mc.verified

let test_same_spl_buggy_fails () =
  let r = Mc.check ~cpus:2 (same_spl ~disciplined:false) in
  check_bool "not verified" false r.Mc.verified;
  match r.Mc.failure with
  | None -> Alcotest.fail "expected a failing schedule"
  | Some f ->
      check_bool "spin deadlock / livelock" true
        (f.Mc.f_kind = Some Engine.Spin_deadlock);
      check_bool "report names the lock" true
        (contains f.Mc.f_report "vm-lock");
      (* minimization: the handler preempting its own holder needs no
         preemptive switch at all *)
      check_int "preemptions" 0 f.Mc.f_preemptions

(* ------------------------------------------------------------------ *)
(* Golden minimal counterexample (section 7, two-cpu form)              *)
(* ------------------------------------------------------------------ *)

let test_golden_counterexample () =
  let r = Mc.check ~cpus:2 (same_spl ~disciplined:false) in
  let f =
    match r.Mc.failure with
    | Some f -> f
    | None -> Alcotest.fail "expected a failing schedule"
  in
  let kind_line =
    match f.Mc.f_kind with
    | Some Engine.Spin_deadlock -> "spin-deadlock"
    | Some Engine.Sleep_deadlock -> "sleep-deadlock"
    | None -> "panic"
  in
  let actual = kind_line ^ "\n" ^ Mc.trace_to_string f.Mc.f_trace in
  let expected = read_file "golden/mc_counterexample.expected" in
  if not (String.equal expected actual) then begin
    Printf.printf "counterexample mismatch.\n--- expected ---\n%s--- actual ---\n%s"
      expected actual;
    Alcotest.fail
      "minimal section 7 counterexample changed; if the schedule change is \
       intentional, regenerate golden/mc_counterexample.expected from this \
       test's output"
  end

let test_golden_replays () =
  (* The golden trace alone — as parsed from disk — must reproduce the
     deadlock and re-record byte-identically. *)
  let text = read_file "golden/mc_counterexample.expected" in
  let body =
    match String.index_opt text '\n' with
    | Some i -> String.sub text (i + 1) (String.length text - i - 1)
    | None -> Alcotest.fail "golden counterexample is empty"
  in
  let trace =
    match Mc.trace_of_string body with
    | Ok t -> t
    | Error e -> Alcotest.failf "golden trace does not parse: %s" e
  in
  let outcome, recorded = Mc.replay ~cpus:2 ~trace (same_spl ~disciplined:false) in
  (match outcome with
  | Engine.Deadlocked (Engine.Spin_deadlock, _) -> ()
  | _ -> Alcotest.fail "replay did not reproduce the spin deadlock");
  Alcotest.(check string)
    "re-recorded trace byte-identical" (Mc.trace_to_string trace)
    (Mc.trace_to_string recorded)

(* ------------------------------------------------------------------ *)
(* Mechanics                                                            *)
(* ------------------------------------------------------------------ *)

let test_trace_round_trip () =
  let r = Mc.check ~cpus:2 (same_spl ~disciplined:false) in
  let f = Option.get r.Mc.failure in
  let text = Mc.trace_to_string f.Mc.f_trace in
  match Mc.trace_of_string text with
  | Error e -> Alcotest.failf "round-trip parse failed: %s" e
  | Ok t ->
      Alcotest.(check string) "round-trip identical" text
        (Mc.trace_to_string t)

let test_modes_agree () =
  (* All three modes explore the same state space: identical verdicts,
     and the pruned modes visit no more schedules than naive. *)
  let naive = Mc.check ~cpus:2 ~mode:Mc.Naive (same_spl ~disciplined:true) in
  let sleep =
    Mc.check ~cpus:2 ~mode:Mc.Sleep_sets (same_spl ~disciplined:true)
  in
  let dpor = Mc.check ~cpus:2 ~mode:Mc.Dpor (same_spl ~disciplined:true) in
  check_bool "naive verified" true naive.Mc.verified;
  check_bool "sleep verified" true sleep.Mc.verified;
  check_bool "dpor verified" true dpor.Mc.verified;
  check_bool "sleep prunes" true
    (sleep.Mc.stats.Mc.executions <= naive.Mc.stats.Mc.executions);
  check_bool "dpor prunes hardest" true
    (dpor.Mc.stats.Mc.executions <= sleep.Mc.stats.Mc.executions);
  (* the acceptance bar: DPOR explores at most a quarter of the naive
     schedule count on the flagship scenario (it is in fact ~0.1%) *)
  check_bool "dpor <= 25% of naive" true
    (4 * dpor.Mc.stats.Mc.executions <= naive.Mc.stats.Mc.executions)

let test_domains_agree () =
  let seq = Mc.check ~cpus:2 (same_spl ~disciplined:true) in
  let par = Mc.check ~cpus:2 ~domains:2 (same_spl ~disciplined:true) in
  check_bool "sequential verified" true seq.Mc.verified;
  check_bool "parallel verified" true par.Mc.verified;
  let seqb = Mc.check ~cpus:2 (same_spl ~disciplined:false) in
  let parb = Mc.check ~cpus:2 ~domains:2 (same_spl ~disciplined:false) in
  let kind r =
    match r.Mc.failure with Some f -> f.Mc.f_kind | None -> None
  in
  check_bool "parallel finds the same failure kind" true
    (kind seqb = kind parb && kind seqb = Some Engine.Spin_deadlock)

let test_preemption_bound () =
  (* Bound 0 must still find the same-spl deadlock (it needs no
     preemptions) and bound exploration must be cheaper than unbounded. *)
  let b0 = Mc.check ~cpus:2 ~bound:0 (same_spl ~disciplined:false) in
  check_bool "bound 0 finds it" true (b0.Mc.failure <> None);
  let v0 = Mc.check ~cpus:2 ~bound:0 (same_spl ~disciplined:true) in
  let full = Mc.check ~cpus:2 (same_spl ~disciplined:true) in
  check_bool "bound 0 no failure" true (v0.Mc.failure = None);
  check_bool "bound 0 explores fewer schedules" true
    (v0.Mc.stats.Mc.executions <= full.Mc.stats.Mc.executions)

(* ------------------------------------------------------------------ *)
(* Range-lock matrix at 2 cpus (experiment E16 acceptance)              *)
(* ------------------------------------------------------------------ *)

module RL = Mach_locks.Range_lock

(* Conflicting cells: the scenario is fatal if both threads are ever in
   the critical section together, so [verified] over every schedule is
   exactly "overlap serializes". *)
let test_range_matrix_overlap_serializes () =
  List.iter
    (fun (label, m1, m2) ->
      let r =
        Mc.check ~cpus:2 (fun () ->
            ignore
              (Scenarios.range_pair ~r1:(0, 8) ~m1 ~r2:(4, 12) ~m2
                 ~expect_parallel:false ()))
      in
      check_bool (label ^ ": complete") true r.Mc.complete;
      check_bool (label ^ ": verified") true r.Mc.verified)
    [
      ("overlap W/W", RL.Write, RL.Write);
      ("overlap R/W", RL.Read, RL.Write);
      ("overlap W/R", RL.Write, RL.Read);
    ]

(* Compatible cells: no schedule may be fatal AND some schedule must
   witness both threads holding at once.  The witness ref lives outside
   the scenario closure, so it accumulates across every execution the
   checker runs. *)
let test_range_matrix_disjoint_interleaves () =
  List.iter
    (fun (label, r1, m1, r2, m2) ->
      let witnessed = ref false in
      let r =
        Mc.check ~cpus:2 (fun () ->
            if Scenarios.range_pair ~r1 ~m1 ~r2 ~m2 ~expect_parallel:true ()
            then witnessed := true)
      in
      check_bool (label ^ ": complete") true r.Mc.complete;
      check_bool (label ^ ": verified") true r.Mc.verified;
      check_bool (label ^ ": some schedule interleaves the holds") true
        !witnessed)
    [
      ("disjoint W/W", (0, 8), RL.Write, (8, 16), RL.Write);
      ("overlap R/R", (0, 8), RL.Read, (4, 12), RL.Read);
    ]

(* The map itself, model-checked: fault vs deallocate on a Range map,
   overlapping (fault may lose the race but must never see a stale
   entry) and disjoint (both must succeed on every schedule). *)
let test_range_map_fault_vs_deallocate () =
  List.iter
    (fun overlapping ->
      let r =
        Mc.check ~cpus:2 (Scenarios.vm_fault_vs_deallocate ~overlapping)
      in
      let label =
        if overlapping then "overlapping fault/deallocate"
        else "disjoint fault/deallocate"
      in
      check_bool (label ^ ": complete") true r.Mc.complete;
      check_bool (label ^ ": verified") true r.Mc.verified)
    [ false; true ]

(* ------------------------------------------------------------------ *)
(* Scache matrix at 3 cpus: two readers racing one writer               *)
(* ------------------------------------------------------------------ *)

(* The 2-cpu scache cells (cache-smoke) cannot show reader parallelism
   WITH a writer contending — their reader-parallel cell has no writer
   in the mix.  This cell model-checks exactly that: over every 3-cpu
   schedule no reader ever overlaps the writer (verified), and at least
   one schedule interleaves the two readers' holds (witnessed).  Same
   witness-ref-outside-the-closure pattern as the range matrix. *)
let test_scache_rrw_matrix () =
  let witnessed = ref false in
  let r =
    Mc.check ~cpus:3 (fun () ->
        if Scenarios.scache_rrw () then witnessed := true)
  in
  check_bool "complete" true r.Mc.complete;
  check_bool "verified (no reader/writer overlap on any schedule)" true
    r.Mc.verified;
  check_bool "some schedule interleaves the two readers" true !witnessed

let test_faults_excluded () =
  let cfg =
    {
      Config.default with
      Config.faults = { Config.no_faults with Config.drop_wakeup = 2 };
      mc =
        Some
          {
            Config.mc_choose = (fun _ -> 0);
            mc_commit = (fun _ -> ());
          };
    }
  in
  match Engine.run ~cfg (fun () -> ()) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "mc + fault injection must be rejected"

let () =
  Alcotest.run "mc"
    [
      ( "verdicts",
        [
          Alcotest.test_case "section 7 disciplined: verified" `Quick
            test_same_spl_verified;
          Alcotest.test_case "section 6 event-wait: verified" `Quick
            test_event_wait_verified;
          Alcotest.test_case "section 7 buggy: deadlock found" `Quick
            test_same_spl_buggy_fails;
        ] );
      ( "counterexample",
        [
          Alcotest.test_case "golden minimal trace" `Quick
            test_golden_counterexample;
          Alcotest.test_case "golden trace replays byte-identically" `Quick
            test_golden_replays;
        ] );
      ( "range matrix",
        [
          Alcotest.test_case "overlapping ranges serialize" `Quick
            test_range_matrix_overlap_serializes;
          Alcotest.test_case "compatible ranges interleave" `Quick
            test_range_matrix_disjoint_interleaves;
          Alcotest.test_case "fault vs deallocate on a Range map" `Quick
            test_range_map_fault_vs_deallocate;
        ] );
      ( "scache matrix",
        [
          Alcotest.test_case "3-cpu two readers vs one writer" `Slow
            test_scache_rrw_matrix;
        ] );
      ( "mechanics",
        [
          Alcotest.test_case "trace round-trip" `Quick test_trace_round_trip;
          Alcotest.test_case "modes agree; reduction holds" `Quick
            test_modes_agree;
          Alcotest.test_case "domain fan-out agrees" `Quick test_domains_agree;
          Alcotest.test_case "preemption bounding" `Quick test_preemption_bound;
          Alcotest.test_case "fault injection excluded" `Quick
            test_faults_excluded;
        ] );
    ]
