(* The observability layer: lock statistics invariants, histogram bucket
   geometry and percentiles, trace accounting (disabled vs overflow), and
   the Chrome trace-event export round-trip. *)

module Stats = Mach_core.Lock_stats
module Hist = Mach_obs.Obs_histogram
module Metrics = Mach_obs.Obs_metrics
module Profile = Mach_obs.Obs_profile
module Json = Mach_obs.Obs_json
module Event = Mach_obs.Obs_event
module Trace = Mach_sim.Sim_trace
open Test_support

(* ------------------------------------------------------------------ *)
(* Lock_stats                                                           *)
(* ------------------------------------------------------------------ *)

(* Populate every counter with a distinct value pattern. *)
let populated () =
  let s = Stats.make () in
  Stats.record_acquire s ~contended:false ~spins:0;
  Stats.record_acquire s ~contended:true ~spins:7;
  Stats.record_release s ~held_cycles:40;
  Stats.record_try s ~success:true;
  Stats.record_try s ~success:false;
  Stats.record_sleep s;
  Stats.record_read s;
  Stats.record_read s;
  Stats.record_write s;
  Stats.record_upgrade s ~success:true;
  Stats.record_upgrade s ~success:false;
  Stats.record_downgrade s;
  Stats.record_recursive s;
  s

let readers =
  [
    ("acquisitions", Stats.acquisitions);
    ("contentions", Stats.contentions);
    ("total_spins", Stats.total_spins);
    ("tries", Stats.tries);
    ("failed_tries", Stats.failed_tries);
    ("sleeps", Stats.sleeps);
    ("reads", Stats.reads);
    ("writes", Stats.writes);
    ("upgrades", Stats.upgrades);
    ("failed_upgrades", Stats.failed_upgrades);
    ("downgrades", Stats.downgrades);
    ("recursive_acquires", Stats.recursive_acquires);
    ("held_cycles", Stats.held_cycles);
  ]

let test_stats_merge_sums_every_counter () =
  let a = populated () and b = populated () in
  let dst = populated () in
  Stats.merge_into ~dst a;
  Stats.merge_into ~dst b;
  List.iter
    (fun (name, read) ->
      check_int (name ^ " tripled by two merges") (3 * read a) (read dst))
    readers;
  (* every reader must see a nonzero source value, or the sum test above
     proves nothing for that counter *)
  List.iter
    (fun (name, read) ->
      check_bool (name ^ " exercised by populate") true (read a > 0))
    readers

let test_stats_reset_zeroes_every_counter () =
  let s = populated () in
  Stats.reset s;
  List.iter
    (fun (name, read) -> check_int (name ^ " zero after reset") 0 (read s))
    readers;
  check_bool "first_attempt_rate back to the empty case" true
    (Stats.first_attempt_rate s = 1.0)

let test_stats_zero_acquisition_rate () =
  let s = Stats.make () in
  check_bool "no acquisitions -> rate 1.0" true
    (Stats.first_attempt_rate s = 1.0);
  Stats.record_acquire s ~contended:true ~spins:3;
  check_bool "all contended -> rate 0.0" true
    (Stats.first_attempt_rate s = 0.0)

(* ------------------------------------------------------------------ *)
(* Histogram                                                            *)
(* ------------------------------------------------------------------ *)

let test_hist_bucket_boundaries () =
  (* below 2 * sub_buckets the mapping is the identity: values are exact *)
  for v = 0 to 63 do
    check_int (Printf.sprintf "identity bucket for %d" v) v
      (Hist.bucket_index v)
  done;
  (* bucket bounds partition the value space: each bucket's hi + 1 is the
     next bucket's lo, and every value maps into its own bucket's range *)
  let last = Hist.bucket_index max_int in
  let prev_hi = ref (-1) in
  for idx = 0 to min last 200 do
    let lo, hi = Hist.bucket_bounds idx in
    check_int (Printf.sprintf "bucket %d contiguous" idx) (!prev_hi + 1) lo;
    check_bool (Printf.sprintf "bucket %d ordered" idx) true (lo <= hi);
    check_int (Printf.sprintf "lo of bucket %d maps back" idx) idx
      (Hist.bucket_index lo);
    check_int (Printf.sprintf "hi of bucket %d maps back" idx) idx
      (Hist.bucket_index hi);
    prev_hi := hi
  done;
  (* relative quantization error is bounded by 1/32 *)
  List.iter
    (fun v ->
      let lo, hi = Hist.bucket_bounds (Hist.bucket_index v) in
      check_bool (Printf.sprintf "%d within its bucket" v) true
        (lo <= v && v <= hi);
      check_bool
        (Printf.sprintf "bucket width at %d within 1/32 relative" v)
        true
        (hi - lo + 1 <= max 1 (v / 32 + 1)))
    [ 64; 100; 1000; 65536; 1_000_000; 123_456_789 ]

let test_hist_percentiles_known_distribution () =
  let h = Hist.make () in
  (* 1..100, once each: percentiles are known exactly (all values < 64
     are exact, the rest quantized by < 1/32) *)
  for v = 1 to 100 do
    Hist.record h v
  done;
  check_int "count" 100 (Hist.count h);
  check_int "sum" 5050 (Hist.sum h);
  check_int "min" 1 (Hist.min_value h);
  check_int "max" 100 (Hist.max_value h);
  check_int "p50 of 1..100" 50 (Hist.percentile h 50.);
  check_int "p0 is min" 1 (Hist.percentile h 0.);
  check_int "p100 is max" 100 (Hist.percentile h 100.);
  (* 90 and 99 land in log buckets; allow the documented 1/32 error *)
  let near name expected got =
    check_bool
      (Printf.sprintf "%s: |%d - %d| <= %d" name got expected
         (expected / 32 + 1))
      true
      (abs (got - expected) <= (expected / 32) + 1)
  in
  near "p90" 90 (Hist.percentile h 90.);
  near "p99" 99 (Hist.percentile h 99.);
  check_int "empty percentile" 0 (Hist.percentile (Hist.make ()) 50.)

let test_hist_merge_and_reset () =
  let a = Hist.make () and b = Hist.make () in
  Hist.record_n a 10 ~n:5;
  Hist.record_n b 1000 ~n:3;
  Hist.merge_into ~dst:a b;
  check_int "merged count" 8 (Hist.count a);
  check_int "merged max" 1000 (Hist.max_value a);
  check_int "merged min" 10 (Hist.min_value a);
  Hist.reset a;
  check_int "reset count" 0 (Hist.count a);
  check_int "reset max" 0 (Hist.max_value a)

(* ------------------------------------------------------------------ *)
(* Trace ring accounting                                                *)
(* ------------------------------------------------------------------ *)

let test_trace_disabled_vs_overflow () =
  (* disabled: nothing stored, discards counted separately *)
  let off = Trace.make ~cpus:2 ~capacity:30 ~enabled:false () in
  for i = 0 to 9 do
    Trace.record off ~step:i ~clock:i ~cpu:0 ~context:"t"
      (Event.Raw { tag = "x"; detail = "" })
  done;
  check_int "disabled stores nothing" 0 (List.length (Trace.events off));
  check_int "disabled discards counted" 10 (Trace.disabled_discards off);
  check_int "disabled is not overflow" 0 (Trace.dropped off);
  (* enabled: overflow evicts oldest per ring and counts as dropped *)
  let on = Trace.make ~cpus:2 ~capacity:30 ~enabled:true () in
  check_int "capacity = per-ring x rings" 30 (Trace.capacity on);
  for i = 0 to 14 do
    Trace.record on ~step:i ~clock:i ~cpu:0 ~context:"t"
      (Event.Raw { tag = "x"; detail = string_of_int i })
  done;
  check_int "cpu0 ring keeps its 10 newest" 10 (List.length (Trace.events on));
  check_int "overflow counted" 5 (Trace.dropped on);
  check_int "no disabled discards when enabled" 0 (Trace.disabled_discards on);
  (* the 5 oldest were evicted; events come back in seq order *)
  (match Trace.events on with
  | first :: _ -> check_int "oldest surviving event" 5 first.Trace.step
  | [] -> Alcotest.fail "expected events");
  (* a chatty cpu must not evict another cpu's history *)
  Trace.record on ~step:99 ~clock:99 ~cpu:1 ~context:"u"
    (Event.Raw { tag = "y"; detail = "" });
  check_int "cpu1 unaffected by cpu0 overflow" 11
    (List.length (Trace.events on));
  Trace.clear on;
  check_int "clear empties" 0 (List.length (Trace.events on));
  check_int "clear resets dropped" 0 (Trace.dropped on)

(* ------------------------------------------------------------------ *)
(* Chrome export + JSON round-trip                                      *)
(* ------------------------------------------------------------------ *)

let test_chrome_export_round_trip () =
  let t = Trace.make ~cpus:2 ~capacity:100 ~enabled:true () in
  let record ~clock ~cpu ev =
    Trace.record t ~step:clock ~clock ~cpu ~context:"thr" ev
  in
  record ~clock:10 ~cpu:0 (Event.Lock_acquire { lock = "slock1"; spins = 3; wait_cycles = 12 });
  record ~clock:50 ~cpu:0 (Event.Lock_release { lock = "slock1"; held_cycles = 40 });
  record ~clock:60 ~cpu:1
    (Event.Tlb_shootdown_start { initiator = 1; participants = 1; lazies = 0 });
  record ~clock:200 ~cpu:1
    (Event.Tlb_shootdown_done { participants = 1; cycles = 140 });
  let text = Json.to_string (Trace.chrome_json (Trace.events t)) in
  match Json.of_string text with
  | Error msg -> Alcotest.fail ("export does not parse: " ^ msg)
  | Ok doc -> (
      check_bool "shootdown start present" true
        (contains text "Tlb_shootdown_start");
      check_bool "shootdown done present" true
        (contains text "Tlb_shootdown_done");
      check_bool "a complete span synthesized" true (contains text "\"X\"");
      match Json.member "traceEvents" doc with
      | Some (Json.List evs) ->
          (* 2 thread-name metadata records (scheduler track absent: no
             cpu -1 events) + 4 instants + 2 spans *)
          check_int "event count" 8 (List.length evs);
          let span_names =
            List.filter_map
              (fun e ->
                match (Json.member "ph" e, Json.member "name" e) with
                | Some (Json.String "X"), Some (Json.String n) -> Some n
                | _ -> None)
              evs
          in
          check_bool "hold span" true (List.mem "hold:slock1" span_names);
          check_bool "shootdown span" true
            (List.mem "Tlb_shootdown" span_names)
      | _ -> Alcotest.fail "no traceEvents array")

let test_json_parser () =
  let cases =
    [
      ({|{"a":1,"b":[true,false,null,"x\n\"y\""],"c":-2.5}|}, true);
      ({|[1,2,3]|}, true);
      ({|"lone string"|}, true);
      ({|{"unterminated":|}, false);
      ({|{"trailing":1} garbage|}, false);
      ("", false);
    ]
  in
  List.iter
    (fun (text, ok) ->
      match Json.of_string text with
      | Ok _ ->
          check_bool (Printf.sprintf "%S should parse" text) true ok
      | Error _ ->
          check_bool (Printf.sprintf "%S should not parse" text) false ok)
    cases;
  (* round-trip a document through to_string/of_string *)
  let doc =
    Json.Obj
      [
        ("i", Json.Int 42);
        ("f", Json.Float 1.5);
        ("s", Json.String "esc\"ape\n");
        ("l", Json.List [ Json.Bool true; Json.Null ]);
      ]
  in
  match Json.of_string (Json.to_string doc) with
  | Ok d -> check_bool "round-trip equal" true (d = doc)
  | Error m -> Alcotest.fail ("round-trip: " ^ m)

(* ------------------------------------------------------------------ *)
(* Metrics registry + profiler                                          *)
(* ------------------------------------------------------------------ *)

let test_metrics_registry () =
  Metrics.reset ();
  let c = Metrics.counter "test.counter" in
  Metrics.incr c;
  Metrics.add ~cpu:3 c 4;
  check_int "shards merge at read" 5 (Metrics.counter_value c);
  check_bool "interning returns the same counter" true
    (Metrics.counter_value (Metrics.counter "test.counter") = 5);
  (match Metrics.histogram "test.counter" with
  | _ -> Alcotest.fail "type clash must raise"
  | exception Invalid_argument _ -> ());
  let h = Metrics.histogram "test.hist" in
  Metrics.observe ~cpu:0 h 10;
  Metrics.observe ~cpu:7 h 30;
  check_int "histogram shards merge" 2 (Hist.count (Metrics.merged h));
  Metrics.reset ();
  check_int "reset zeroes counters" 0 (Metrics.counter_value c);
  check_int "reset zeroes histograms" 0 (Hist.count (Metrics.merged h))

let test_profile_classes_and_edges () =
  Profile.reset ();
  check_bool "class strips digits" true
    (Profile.class_of_name "slock12" = "slock");
  check_bool "class keeps dots" true
    (Profile.class_of_name "lock3.interlock" = "lock.interlock");
  check_bool "all-digit name falls back" true
    (Profile.class_of_name "42" = "lock");
  (* thread 1 holds a pmap lock, then contends on a pv lock: edge *)
  Profile.note_acquire ~tid:1 ~name:"pmap0" ~contended:false ~wait_cycles:0;
  Profile.note_acquire ~tid:1 ~name:"pv3" ~contended:true ~wait_cycles:250;
  Profile.note_release ~tid:1 ~name:"pv3" ~held_cycles:10;
  Profile.note_release ~tid:1 ~name:"pmap0" ~held_cycles:100;
  (match Profile.edges () with
  | [ (holder, wanted, n) ] ->
      check_bool "edge holder" true (holder = "pmap");
      check_bool "edge wanted" true (wanted = "pv");
      check_int "edge count" 1 n
  | es -> Alcotest.fail (Printf.sprintf "expected 1 edge, got %d" (List.length es)));
  (match Profile.top ~n:1 with
  | [ c ] ->
      check_bool "top class by wait" true (c.Profile.cls = "pv");
      check_int "wait cycles" 250 c.Profile.wait_cycles
  | _ -> Alcotest.fail "expected a top class");
  let empty =
    {
      Profile.cls = "x";
      acquisitions = 0;
      contended = 0;
      wait_cycles = 0;
      hold_cycles = 0;
      wait_hist = Hist.make ();
    }
  in
  check_bool "zero-acquisition rate is 1.0" true
    (Profile.first_attempt_rate empty = 1.0);
  Profile.reset ();
  check_bool "reset clears classes" true (Profile.classes () = [])

(* ------------------------------------------------------------------ *)
(* End-to-end: a traced simulation run                                  *)
(* ------------------------------------------------------------------ *)

let test_traced_run_has_typed_lock_events () =
  let module K = Mach_ksync.Ksync in
  Profile.reset ();
  let cfg =
    { Mach_sim.Sim_config.default with Mach_sim.Sim_config.cpus = 2; trace = true }
  in
  ignore
    (Mach_sim.Sim_engine.run ~cfg (fun () ->
         let l = K.Slock.make ~name:"shared" () in
         let ts =
           List.init 2 (fun k ->
               Mach_sim.Sim_engine.spawn ~name:(Printf.sprintf "w%d" k)
                 (fun () ->
                   for _ = 1 to 5 do
                     K.Slock.lock l;
                     Mach_sim.Sim_engine.cycles 20;
                     K.Slock.unlock l
                   done))
         in
         List.iter Mach_sim.Sim_engine.join ts));
  let events = Mach_sim.Sim_engine.trace_events () in
  let has p = List.exists (fun e -> p e.Trace.ev) events in
  check_bool "typed Lock_acquire traced" true
    (has (function Event.Lock_acquire { lock = "shared"; _ } -> true | _ -> false));
  check_bool "typed Lock_release traced" true
    (has (function Event.Lock_release { lock = "shared"; _ } -> true | _ -> false));
  check_bool "profiler saw the lock class" true
    (List.exists
       (fun c -> c.Profile.cls = "shared")
       (Profile.classes ()))

(* ------------------------------------------------------------------ *)
(* Spans: nesting/pairing invariants, blocked-by, critical path,        *)
(* determinism, and cross-run leak regression                           *)
(* ------------------------------------------------------------------ *)

module Span = Mach_obs.Obs_span
module Cp = Mach_obs.Obs_critical_path
module Engine = Mach_sim.Sim_engine
module Config = Mach_sim.Sim_config

(* Drive the span layer outside the engine with a fake context: a
   strictly increasing counter clock, one thread, cpu 0. *)
let with_fake_ctx f =
  let clock = ref 0 in
  Span.reset ();
  Span.install
    (Some
       {
         Span.now =
           (fun () ->
             incr clock;
             !clock);
         tid = (fun () -> 7);
         tname = (fun () -> "t7");
         cpu = (fun () -> 0);
       });
  Span.set_enabled true;
  Fun.protect
    ~finally:(fun () ->
      Span.set_enabled false;
      Span.install None;
      Span.reset ())
    f

(* Ops over a 4-label alphabet; the model mirrors the documented
   semantics: enter pushes, exit closes the innermost matching label,
   exit_kind the innermost of the kind, unmatched exits are no-ops. *)
let apply_ops ops =
  with_fake_ctx (fun () ->
      let model = ref [] and closed = ref 0 in
      let remove_first p l =
        let rec go acc = function
          | [] -> None
          | x :: rest ->
              if p x then Some (List.rev_append acc rest) else go (x :: acc) rest
        in
        go [] l
      in
      List.iter
        (fun op ->
          if op < 4 then begin
            Span.enter Span.Lock (Printf.sprintf "l%d" op);
            model := op :: !model
          end
          else if op < 8 then begin
            let lbl = op - 4 in
            Span.exit Span.Lock (Printf.sprintf "l%d" lbl);
            match remove_first (fun x -> x = lbl) !model with
            | Some rest ->
                model := rest;
                incr closed
            | None -> ()
          end
          else begin
            Span.exit_kind Span.Lock;
            match !model with
            | _ :: rest ->
                model := rest;
                incr closed
            | [] -> ()
          end)
        ops;
      let v = Span.current () in
      let total_closed =
        List.fold_left (fun acc s -> acc + s.Span.s_spans) 0 v.Span.v_sites
      in
      total_closed = !closed
      && v.Span.v_open = List.length !model
      && List.for_all
           (fun s -> s.Span.s_busy >= s.Span.s_spans && s.Span.s_max >= 0)
           v.Span.v_sites)

let span_pairing_prop =
  QCheck.Test.make ~count:300 ~name:"span nesting/pairing matches the model"
    QCheck.(list_of_size (Gen.int_range 0 60) (int_range 0 9))
    apply_ops

(* Critical-path attribution: for any event soup and makespan, fractions
   are non-negative, disjoint-by-construction, and sum to <= 1.0. *)
let cp_sums_prop =
  let gen =
    QCheck.(
      pair (int_range 1 2000)
        (list_of_size (Gen.int_range 0 40)
           (triple (int_range 0 2000) (int_range 0 3) (int_range 0 800))))
  in
  QCheck.Test.make ~count:300
    ~name:"critical-path fractions sum to <= 1.0" gen
    (fun (makespan, raw) ->
      let evs =
        List.map
          (fun (clock, which, c) ->
            let ev =
              match which with
              | 0 ->
                  Event.Lock_acquire
                    { lock = "l" ^ string_of_int (c mod 3); spins = 1; wait_cycles = c }
              | 1 -> Event.Span_close { kind = "event"; site = "event:evt1"; dur = c }
              | 2 -> Event.Span_close { kind = "ipc"; site = "ipc:send:p"; dur = c }
              | _ -> Event.Lock_release { lock = "l0"; held_cycles = c }
            in
            { Cp.cp_clock = clock; cp_ev = ev })
          raw
      in
      let r = Cp.compute ~makespan evs in
      let sum =
        List.fold_left (fun acc a -> acc +. a.Cp.fraction) 0. r.Cp.attributed
      in
      sum <= 1.0 +. 1e-9
      && List.for_all
           (fun a -> a.Cp.fraction >= 0. && a.Cp.cycles >= 0)
           r.Cp.attributed
      && r.Cp.residual >= -1e-9
      && abs_float (1.0 -. sum -. r.Cp.residual) <= 1e-6)

(* The span layer must be schedule-invisible: the same (seed, cfg)
   contention run produces byte-identical stats with spans on and off. *)
let contention_scenario () =
  let module K = Mach_ksync.Ksync in
  let l = K.Slock.make ~name:"contended" ~protocol:Mach_core.Spin.Ttas () in
  let ts =
    List.init 4 (fun k ->
        Engine.spawn ~name:(Printf.sprintf "w%d" k) (fun () ->
            for _ = 1 to 8 do
              K.Slock.lock l;
              Engine.cycles 20;
              K.Slock.unlock l
            done))
  in
  List.iter Engine.join ts

let stats_line ~spans =
  let cfg = { Config.default with Config.cpus = 4; seed = 11; spans } in
  Format.asprintf "%a" Engine.pp_stats (Engine.run ~cfg contention_scenario)

let test_spans_do_not_perturb_schedule () =
  let on = stats_line ~spans:true in
  let off = stats_line ~spans:false in
  Alcotest.(check string) "spans-on stats byte-identical to spans-off" off on;
  (* and the on-run really recorded spans, or the equality proves nothing *)
  match Span.last () with
  | Some v ->
      check_bool "spans-off run latches an empty view" true (v.Span.v_sites = [])
  | None -> ()

let run_contention_spans () =
  let cfg = { Config.default with Config.cpus = 4; seed = 11 } in
  ignore (Engine.run ~cfg contention_scenario);
  match Span.last () with
  | Some v -> v
  | None -> Alcotest.fail "no span view latched"

(* Blocked-by pinned: with checking on, every contended acquisition of
   the hammered lock lands one edge attributed to the holder's context
   (the workers hold nothing else, so it is "(top-level)"). *)
let test_blocked_by_edges_pinned () =
  Profile.reset ();
  let v = run_contention_spans () in
  let site =
    match
      List.find_opt (fun s -> s.Span.s_label = "lock:contended") v.Span.v_sites
    with
    | Some s -> s
    | None -> Alcotest.fail "no lock:contended site"
  in
  check_int "all 32 acquisitions closed spans" 32 site.Span.s_spans;
  let contended =
    match List.find_opt (fun c -> c.Profile.cls = "contended") (Profile.classes ()) with
    | Some c -> c.Profile.contended
    | None -> Alcotest.fail "profiler missed the lock class"
  in
  check_bool "the run was actually contended" true (contended > 0);
  check_int "every contended wait attributed" contended site.Span.s_blocked;
  match v.Span.v_edges with
  | [ e ] ->
      Alcotest.(check string) "edge wanted" "lock:contended" e.Span.e_wanted;
      Alcotest.(check string) "edge holder context" "(top-level)" e.Span.e_holder;
      check_int "edge count = contended waits" contended e.Span.e_count
  | edges ->
      Alcotest.fail
        (Printf.sprintf "expected exactly one blocked-by edge, got %d"
           (List.length edges))

(* Cross-run leak regression (the PR-4 Event-registry bug shape): a
   second identical run must latch an identical view, not a doubled
   one — Run_reset really clears the live span tables between runs. *)
let test_spans_reset_between_runs () =
  let v1 = run_contention_spans () in
  let v2 = run_contention_spans () in
  let summarize v =
    List.map
      (fun s -> (s.Span.s_label, s.Span.s_spans, s.Span.s_blocked))
      v.Span.v_sites
  in
  check_bool "second run's sites identical (no accumulation)" true
    (summarize v1 = summarize v2);
  check_int "no spans left open across runs" 0 v2.Span.v_open

(* vm_allocate_at must bracket every exit path — including the
   Error `Overlap early return — in its Vm span: after successes and
   failures on both map disciplines, the site shows all calls closed
   and the view has nothing left open. *)
let test_alloc_at_span_pairing () =
  let module Vm_map = Mach_vm.Vm_map in
  let cfg = { Config.default with Config.cpus = 2; seed = 3 } in
  ignore
    (Engine.run ~cfg (fun () ->
         List.iter
           (fun locking ->
             let ctx = Vm_map.make_context ~pages:16 () in
             let map = Vm_map.create ~name:"spanmap" ~locking ctx in
             (match Vm_map.vm_allocate_at map ~va:0x2000 ~size:2 with
             | Ok _ -> ()
             | Error `Overlap -> Engine.fatal "unexpected overlap");
             (match Vm_map.vm_allocate_at map ~va:0x2001 ~size:2 with
             | Error `Overlap -> ()
             | Ok _ -> Engine.fatal "overlap admitted");
             Vm_map.release map)
           [ Vm_map.Coarse; Vm_map.Range ]));
  match Span.last () with
  | None -> Alcotest.fail "no span view latched"
  | Some v -> (
      check_int "no spans left open" 0 v.Span.v_open;
      match
        List.find_opt
          (fun s -> s.Span.s_label = "vm:alloc_at:spanmap")
          v.Span.v_sites
      with
      | Some site ->
          check_int "all four alloc_at calls closed their spans" 4
            site.Span.s_spans
      | None -> Alcotest.fail "no vm:alloc_at:spanmap site")

(* The section 7 three-processor interrupt deadlock (lib/chaos): the
   post-mortem must carry the open-span dump naming the held lock. *)
let test_section7_deadlock_flight_dump () =
  let module Chaos = Mach_chaos.Chaos in
  let module Fault = Mach_chaos.Chaos_fault in
  let r =
    Chaos.run_one ~cpus:4 ~seed:1 ~faults:(Fault.mix [])
      Mach_chaos.Chaos_scenarios.interrupt_deadlock
  in
  check_bool "the seeded run deadlocks" true (Chaos.detected r.Chaos.detection);
  check_bool "report names the waits-for cycle" true
    (contains r.Chaos.report "waits-for cycle");
  check_bool "report carries the open-span dump" true
    (contains r.Chaos.report "open spans at the hang");
  check_bool "the dump names the held section 7 lock" true
    (contains r.Chaos.report "lock:the-lock")

(* Span records in the drop accounting: both the disabled and the
   overflow counters split exactly by record kind. *)
let test_drop_stats_split () =
  let mk_span i = Event.Span_close { kind = "lock"; site = "lock:l"; dur = i } in
  let mk_raw i = Event.Raw { tag = "x"; detail = string_of_int i } in
  let off = Trace.make ~cpus:2 ~capacity:30 ~enabled:false () in
  for i = 0 to 2 do
    Trace.record off ~step:i ~clock:i ~cpu:0 ~context:"t" (mk_span i)
  done;
  for i = 0 to 3 do
    Trace.record off ~step:i ~clock:i ~cpu:0 ~context:"t" (mk_raw i)
  done;
  let d = Trace.drop_stats off in
  check_int "disabled spans" 3 d.Trace.disabled_spans;
  check_int "disabled events" 4 d.Trace.disabled_events;
  check_int "disabled split is exact" (Trace.disabled_discards off)
    (d.Trace.disabled_spans + d.Trace.disabled_events);
  (* per-cpu ring capacity is 10 (30 over 3 rings): 12 instants overflow
     by 2, then 10 spans evict the remaining 10 instants, then 5 more
     spans evict 5 spans — the counters classify the EVICTED record. *)
  let on = Trace.make ~cpus:2 ~capacity:30 ~enabled:true () in
  for i = 0 to 11 do
    Trace.record on ~step:i ~clock:i ~cpu:0 ~context:"t" (mk_raw i)
  done;
  for i = 0 to 9 do
    Trace.record on ~step:i ~clock:i ~cpu:0 ~context:"t" (mk_span i)
  done;
  let d = Trace.drop_stats on in
  check_int "overflow events after phase 2" 12 d.Trace.dropped_events;
  check_int "overflow spans after phase 2" 0 d.Trace.dropped_spans;
  for i = 10 to 14 do
    Trace.record on ~step:i ~clock:i ~cpu:0 ~context:"t" (mk_span i)
  done;
  let d = Trace.drop_stats on in
  check_int "overflow spans after phase 3" 5 d.Trace.dropped_spans;
  check_int "overflow split is exact" (Trace.dropped on)
    (d.Trace.dropped_spans + d.Trace.dropped_events);
  Trace.clear on;
  let d = Trace.drop_stats on in
  check_int "clear resets the span counters" 0
    (d.Trace.dropped_spans + d.Trace.dropped_events + d.Trace.disabled_spans
   + d.Trace.disabled_events)

(* Span_close records survive to the Chrome export as complete spans. *)
let test_chrome_export_has_spans () =
  let t = Trace.make ~cpus:2 ~capacity:100 ~enabled:true () in
  Trace.record t ~step:1 ~clock:120 ~cpu:0 ~context:"thr"
    (Event.Span_close { kind = "ipc"; site = "ipc:send:p"; dur = 100 });
  let text = Json.to_string (Trace.chrome_json (Trace.events t)) in
  check_bool "span name present" true (contains text "span:ipc:send:p");
  check_bool "Span_close record present" true (contains text "Span_close")

let () =
  let open Alcotest in
  run "obs"
    [
      ( "lock stats",
        [
          test_case "merge_into sums every counter" `Quick
            test_stats_merge_sums_every_counter;
          test_case "reset zeroes every counter" `Quick
            test_stats_reset_zeroes_every_counter;
          test_case "first_attempt_rate edge cases" `Quick
            test_stats_zero_acquisition_rate;
        ] );
      ( "histogram",
        [
          test_case "bucket boundaries" `Quick test_hist_bucket_boundaries;
          test_case "percentiles on a known distribution" `Quick
            test_hist_percentiles_known_distribution;
          test_case "merge and reset" `Quick test_hist_merge_and_reset;
        ] );
      ( "trace",
        [
          test_case "disabled vs overflow accounting" `Quick
            test_trace_disabled_vs_overflow;
          test_case "chrome export round-trip" `Quick
            test_chrome_export_round_trip;
          test_case "traced run emits typed lock events" `Quick
            test_traced_run_has_typed_lock_events;
        ] );
      ( "json",
        [ test_case "parser accepts/rejects" `Quick test_json_parser ] );
      ( "metrics + profile",
        [
          test_case "registry counters and shards" `Quick test_metrics_registry;
          test_case "classes and waits-for edges" `Quick
            test_profile_classes_and_edges;
        ] );
      ( "spans",
        [
          QCheck_alcotest.to_alcotest span_pairing_prop;
          QCheck_alcotest.to_alcotest cp_sums_prop;
          test_case "spans-on stats byte-identical to spans-off" `Quick
            test_spans_do_not_perturb_schedule;
          test_case "blocked-by edges pinned on the contention run" `Quick
            test_blocked_by_edges_pinned;
          test_case "live tables reset between runs (no leak)" `Quick
            test_spans_reset_between_runs;
          test_case "vm_allocate_at spans pair on every path" `Quick
            test_alloc_at_span_pairing;
          test_case "section 7 deadlock report carries the span dump" `Quick
            test_section7_deadlock_flight_dump;
          test_case "drop accounting splits spans from instants" `Quick
            test_drop_stats_split;
          test_case "chrome export carries causal spans" `Quick
            test_chrome_export_has_spans;
        ] );
    ]
